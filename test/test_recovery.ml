(* Crash-safety tests: the WAL line codec, committed-frame replay, the
   fault-point crash matrix (every registered point gets a simulated
   crash and recovery must land on exactly the pre- or post-transaction
   state), checkpointing, exception-table re-attachment, and the
   SC-guarded plan fallback of paper §4.1. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ---- WAL line codec ------------------------------------------------------ *)

let nasty_row =
  [|
    Value.Int 42;
    Value.Null;
    Value.String "tab\there|and\nnewline\\backslash";
    Value.Float 0.1;
    Value.Bool true;
    Value.Date (Date.of_ymd 1999 6 15);
  |]

let codec_records =
  let snap =
    {
      Wal.sc_name = "s1";
      sc_table = "t";
      sc_absolute = true;
      sc_confidence = 1.0;
      sc_state = "violated";
      sc_anchor = 42;
      sc_violations = 3;
      sc_repr =
        Core.Sc_codec.statement_repr
          (Core.Soft_constraint.Ic_stmt
             (Icdef.Check
                (Expr.Between (Expr.column "b", Expr.int 0, Expr.int 100))));
    }
  in
  [
    Wal.Begin { txn = 7 };
    Wal.Insert { txn = 7; table = "t"; rid = 3; row = nasty_row; shard = -1 };
    Wal.Delete { txn = 7; table = "t"; rid = 0; row = nasty_row; shard = 2 };
    Wal.Update
      {
        txn = 7;
        table = "t";
        rid = 1;
        before = nasty_row;
        after = [| Value.Int 1; Value.Float (1.0 /. 3.0) |];
        shard = 0;
      };
    Wal.Ddl { txn = 7; sql = "CREATE TABLE t (a INT)" };
    Wal.Sc { txn = 7; change = Wal.Sc_installed snap };
    Wal.Sc { txn = 7; change = Wal.Sc_state { name = "s1"; state = "active" } };
    Wal.Sc
      {
        txn = 7;
        change = Wal.Sc_kind { name = "s1"; absolute = false; confidence = 0.9 };
      };
    Wal.Sc { txn = 7; change = Wal.Sc_anchor { name = "s1"; anchor = 99 } };
    Wal.Sc { txn = 7; change = Wal.Sc_violations { name = "s1"; count = 2 } };
    Wal.Sc
      {
        txn = 7;
        change = Wal.Sc_statement { name = "s1"; repr = snap.Wal.sc_repr };
      };
    Wal.Sc { txn = 7; change = Wal.Sc_dropped { name = "s1" } };
    Wal.Sc
      { txn = 7; change = Wal.Sc_exception { name = "s1"; table = "s1_exc" } };
    Wal.Commit { txn = 7 };
    Wal.Abort { txn = 8 };
  ]

let test_wal_line_roundtrip () =
  List.iter
    (fun r ->
      let line = Wal.record_to_line r in
      check tbool "single line" false (String.contains line '\n');
      check tbool
        (Printf.sprintf "roundtrip %s" line)
        true
        (Wal.record_of_line line = r))
    codec_records

let test_wal_corrupt_line_rejected () =
  List.iter
    (fun line ->
      match Wal.record_of_line line with
      | exception Wal.Wal_error _ -> ()
      | _ -> Alcotest.failf "accepted corrupt line %S" line)
    [ ""; "Z\t1"; "I\t1\tt"; "I\t1\tt\t0\t2\tI1" ]

let test_sc_codec_roundtrip () =
  let stmts =
    [
      Core.Soft_constraint.Ic_stmt
        (Icdef.Check
           (Expr.Between (Expr.column "b", Expr.int 0, Expr.int 100)));
      Core.Soft_constraint.Fd_stmt
        { Mining.Fd_mine.table = "t"; lhs = [ "a"; "b" ]; rhs = "c" };
    ]
  in
  List.iter
    (fun stmt ->
      let repr = Core.Sc_codec.statement_repr stmt in
      check tbool "repr fixpoint" true
        (Core.Sc_codec.statement_repr (Core.Sc_codec.statement_of_repr repr)
        = repr))
    stmts

(* ---- shared fixture: a table, five rows, one check-shaped ASC ------------ *)

let fixture () =
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (a INT, b INT)");
  for i = 1 to 5 do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 2)))
  done;
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE t ADD CONSTRAINT asc_b CHECK (b < 100) SOFT");
  Core.Recovery.flush link;
  (sdb, wal, link)

(* one explicit transaction that overturns the ASC and commits *)
let probe_commit sdb =
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (10, 500)");
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (11, 22)");
  Core.Txn.commit t

let rows_of sdb =
  let r = Core.Softdb.query_baseline sdb "SELECT a, b FROM t" in
  List.sort compare (List.map Tuple.to_list r.Exec.Executor.rows)

let pre_rows =
  List.init 5 (fun i -> [ Value.Int (i + 1); Value.Int ((i + 1) * 2) ])

let post_rows =
  List.sort compare
    (pre_rows @ [ [ Value.Int 10; Value.Int 500 ]; [ Value.Int 11; Value.Int 22 ] ])

let find_sc sdb name = Core.Sc_catalog.find (Core.Softdb.catalog sdb) name

(* ---- basic durability ---------------------------------------------------- *)

let test_recover_replays_committed_state () =
  let sdb, wal, link = fixture () in
  ignore (Core.Softdb.exec sdb "UPDATE t SET b = 99 WHERE a = 1");
  ignore (Core.Softdb.exec sdb "DELETE FROM t WHERE a = 5");
  Core.Recovery.flush link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tbool "rows identical" true (rows_of sdb = rows_of sdb2);
  let sc = Option.get (find_sc sdb2 "asc_b") in
  check tbool "ASC survives" true (Core.Soft_constraint.is_usable sc);
  Core.Recovery.detach link

let test_recover_skips_rolled_back_txn () =
  let sdb, wal, link = fixture () in
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (10, 500)");
  check tbool "overturned inside txn" false
    (Core.Soft_constraint.is_usable (Option.get (find_sc sdb "asc_b")));
  Core.Txn.rollback t;
  Core.Recovery.flush link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tbool "pre state" true (rows_of sdb2 = pre_rows);
  check tbool "ASC re-instated" true
    (Core.Soft_constraint.is_usable (Option.get (find_sc sdb2 "asc_b")));
  Core.Recovery.detach link

let test_recover_keeps_committed_overturn () =
  let sdb, wal, link = fixture () in
  probe_commit sdb;
  Core.Recovery.flush link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tbool "post state" true (rows_of sdb2 = post_rows);
  let sc = Option.get (find_sc sdb2 "asc_b") in
  check tbool "overturn durable" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
  check tbool "violated ASC out of the usable set" false
    (List.exists
       (fun s -> s.Core.Soft_constraint.name = "asc_b")
       (Core.Sc_catalog.usable (Core.Softdb.catalog sdb2)));
  Core.Recovery.detach link

(* ---- the crash matrix (every registered fault point) --------------------- *)

let run_crashed_probe point =
  let sdb, wal, link = fixture () in
  Obs.Fault.arm point Obs.Fault.Crash;
  let crashed =
    try
      probe_commit sdb;
      false
    with Obs.Fault.Injected_crash _ -> true
  in
  Core.Txn.abandon_current ();
  Core.Recovery.kill link;
  Obs.Fault.reset ();
  (crashed, Core.Recovery.recover (Wal.records wal))

let test_crash_matrix () =
  (* a first fixture registers every fault point with the harness *)
  let _ = fixture () in
  let points = Obs.Fault.registered () in
  check tbool "matrix covers the fault points" true (List.length points >= 11);
  List.iter
    (fun pt ->
      let crashed, sdb2 = run_crashed_probe pt in
      let rows = rows_of sdb2 in
      let committed = rows = post_rows in
      (* atomicity: never a state in between *)
      check tbool (pt ^ ": pre or post state, nothing between") true
        (rows = pre_rows || committed);
      if not crashed then
        check tbool (pt ^ ": point unhit, so the probe committed") true
          committed;
      let sc = Option.get (find_sc sdb2 "asc_b") in
      if committed then begin
        check tbool (pt ^ ": committed overturn sticks") true
          (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
        check tbool (pt ^ ": violated ASC never re-enters the usable set")
          false
          (List.exists
             (fun s -> s.Core.Soft_constraint.name = "asc_b")
             (Core.Sc_catalog.usable (Core.Softdb.catalog sdb2)))
      end
      else
        check tbool (pt ^ ": uncommitted overturn re-instates the ASC") true
          (Core.Soft_constraint.is_usable sc))
    points;
  (* pin the headline points to their exact outcome *)
  let expect_pre pt =
    let crashed, sdb2 = run_crashed_probe pt in
    check tbool (pt ^ ": crashed") true crashed;
    check tbool (pt ^ ": pre state exactly") true (rows_of sdb2 = pre_rows)
  in
  expect_pre "txn.begin";
  expect_pre "wal.pre_commit";
  let crashed, sdb2 = run_crashed_probe "wal.post_commit" in
  check tbool "wal.post_commit: crashed" true crashed;
  check tbool "wal.post_commit: durable commit" true (rows_of sdb2 = post_rows)

let test_crash_during_rollback () =
  (* a crash in the middle of rollback: compensation never ran in memory,
     but the frame has no commit record, so recovery lands on pre-state
     with the ASC re-instated *)
  let sdb, wal, link = fixture () in
  Obs.Fault.arm "txn.rollback" Obs.Fault.Crash;
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (10, 500)");
  (try Core.Txn.rollback t with Obs.Fault.Injected_crash _ -> ());
  Core.Txn.abandon_current ();
  Core.Recovery.kill link;
  Obs.Fault.reset ();
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tbool "pre state" true (rows_of sdb2 = pre_rows);
  check tbool "ASC re-instated" true
    (Core.Soft_constraint.is_usable (Option.get (find_sc sdb2 "asc_b")))

(* ---- the other fault modes ----------------------------------------------- *)

let test_io_error_is_single_shot () =
  Obs.Fault.reset ();
  let path = Filename.temp_file "softdb_io" ".wal" in
  let sdb = Core.Softdb.create () in
  let wal = Wal.open_file path in
  let link = Core.Recovery.attach sdb wal in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (a INT, b INT)");
  Core.Recovery.flush link;
  Obs.Fault.arm "wal.io" Obs.Fault.Io_error;
  (match Core.Softdb.exec sdb "INSERT INTO t VALUES (1, 2)" with
  | exception Obs.Fault.Injected_io_error _ -> ()
  | _ -> Alcotest.fail "expected the injected I/O error");
  check tbool "hit counted" true (Obs.Fault.hits "wal.io" >= 1);
  (* the failure does not stop the world: the next statement logs fine *)
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (2, 4)");
  Core.Recovery.flush link;
  Obs.Fault.reset ();
  let sdb2 = Core.Recovery.recover (Wal.load_file path) in
  check tbool "surviving insert recovered" true
    (List.mem [ Value.Int 2; Value.Int 4 ] (rows_of sdb2));
  Core.Recovery.detach link;
  Wal.close wal;
  Sys.remove path

let test_latency_counts_hits () =
  Obs.Fault.reset ();
  Obs.Fault.arm "wal.append" (Obs.Fault.Latency 0.001);
  let sdb, _, link = fixture () in
  ignore sdb;
  check tbool "latency point hit" true (Obs.Fault.hits "wal.append" > 0);
  Obs.Fault.disarm "wal.append";
  Obs.Fault.reset ();
  Core.Recovery.detach link

(* ---- checkpointing ------------------------------------------------------- *)

let test_checkpoint_roundtrip () =
  let sdb, wal, link = fixture () in
  probe_commit sdb;
  Core.Recovery.flush link;
  Core.Recovery.checkpoint link;
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (12, 24)");
  Core.Recovery.flush link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tbool "checkpoint + tail replayed" true
    (rows_of sdb2
    = List.sort compare ([ Value.Int 12; Value.Int 24 ] :: post_rows));
  let sc = Option.get (find_sc sdb2 "asc_b") in
  check tbool "violated state captured by checkpoint" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
  Core.Recovery.detach link

let test_checkpoint_rejected_inside_txn () =
  let sdb, _, link = fixture () in
  let t = Core.Txn.begin_ sdb in
  (match Core.Recovery.checkpoint link with
  | exception Core.Recovery.Recovery_error _ -> ()
  | () -> Alcotest.fail "checkpoint accepted inside a transaction");
  Core.Txn.rollback t;
  Core.Recovery.detach link

let test_checkpoint_crash_preserves_log () =
  Obs.Fault.reset ();
  let path = Filename.temp_file "softdb_ckpt" ".wal" in
  let sdb = Core.Softdb.create () in
  let wal = Wal.open_file path in
  let link = Core.Recovery.attach sdb wal in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (a INT, b INT)");
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (1, 2)");
  Core.Recovery.flush link;
  let before = Wal.load_file path in
  Obs.Fault.arm "wal.checkpoint" Obs.Fault.Crash;
  (try Core.Recovery.checkpoint link
   with Obs.Fault.Injected_crash _ -> ());
  Obs.Fault.reset ();
  (* the rename never happened: the original log is intact and recoverable *)
  let after = Wal.load_file path in
  check tint "log untouched" (List.length before) (List.length after);
  let sdb2 = Core.Recovery.recover after in
  check tbool "recoverable" true
    (rows_of sdb2 = [ [ Value.Int 1; Value.Int 2 ] ]);
  Core.Recovery.kill link;
  Wal.close wal;
  Sys.remove path;
  if Sys.file_exists (path ^ ".ckpt") then Sys.remove (path ^ ".ckpt")

(* ---- file sink resume (the CLI --wal path) ------------------------------- *)

let test_file_resume () =
  Obs.Fault.reset ();
  let path = Filename.temp_file "softdb_resume" ".wal" in
  Sys.remove path;
  let sdb, link, _ = Core.Recovery.resume path in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (a INT, b INT)");
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (1, 2)");
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE t ADD CONSTRAINT asc_b CHECK (b < 100) SOFT");
  Core.Recovery.detach link;
  Wal.close (Core.Recovery.wal link);
  let sdb2, link2, _ = Core.Recovery.resume path in
  check tbool "state recovered" true
    (rows_of sdb2 = [ [ Value.Int 1; Value.Int 2 ] ]);
  check tbool "ASC recovered" true
    (Core.Soft_constraint.is_usable (Option.get (find_sc sdb2 "asc_b")));
  ignore (Core.Softdb.exec sdb2 "INSERT INTO t VALUES (2, 4)");
  Core.Recovery.detach link2;
  Wal.close (Core.Recovery.wal link2);
  let sdb3, link3, _ = Core.Recovery.resume path in
  check tint "appended across sessions" 2
    (List.length (rows_of sdb3));
  Core.Recovery.detach link3;
  Wal.close (Core.Recovery.wal link3);
  Sys.remove path

(* ---- exception tables across recovery ------------------------------------ *)

let exc_count sdb =
  Table.cardinality (Database.table_exn (Core.Softdb.db sdb) "late_exc")

let violating_purchase_insert =
  "INSERT INTO purchase VALUES (900001, 1, DATE '1999-01-05', DATE \
   '1999-06-15', 100.0, 3, 'north')"

let test_exception_table_ddl_replay () =
  (* exception table created after the checkpoint: recovery re-executes
     the CREATE EXCEPTION TABLE statement and re-populates it from the
     replayed base table *)
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows = 800 }
    (Core.Softdb.db sdb);
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  Core.Recovery.checkpoint link;
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
        order_date BETWEEN 0 AND 21) SOFT");
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_exc FOR CONSTRAINT ship_3w");
  Core.Recovery.flush link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tint "same exceptions" (exc_count sdb) (exc_count sdb2);
  check tbool "registration recovered" true
    (Core.Sc_catalog.exception_table_for (Core.Softdb.catalog sdb2) "ship_3w"
    = Some "late_exc");
  Core.Recovery.detach link

let test_exception_table_reattach () =
  (* exception table inside the checkpoint image: recovery must re-attach
     (rows come from the log; re-populating would duplicate them) and the
     maintenance listener must keep working afterwards *)
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows = 800 }
    (Core.Softdb.db sdb);
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
        order_date BETWEEN 0 AND 21) SOFT");
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_exc FOR CONSTRAINT ship_3w");
  Core.Recovery.checkpoint link;
  let n = exc_count sdb in
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tint "no duplicated exceptions" n (exc_count sdb2);
  (* the re-attached listener still routes new violators *)
  ignore (Core.Softdb.exec sdb2 violating_purchase_insert);
  check tint "listener live after reattach" (n + 1) (exc_count sdb2);
  Core.Recovery.detach link

(* ---- guarded execution (§4.1 flag-and-revert) ---------------------------- *)

let band_fixture () =
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:
      { Workload.Purchase.default_config with rows = 3000; late_fraction = 0.0 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"band" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b100)));
  sdb

let test_guarded_plan_falls_back () =
  let sdb = band_fixture () in
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15) in
  let query = Sqlfe.Parser.parse_query_string sql in
  let report = Core.Softdb.optimize sdb query in
  check tbool "plan is guarded by the band" true
    (List.mem "band" report.Opt.Explain.guards);
  check tbool "backup plan compiled" true
    (report.Opt.Explain.backup_plan <> None);
  let metric () =
    Obs.Metrics.counter (Core.Softdb.metrics sdb) "sc_guard_fallbacks"
  in
  let r0, fb0 = Core.Softdb.execute_report sdb report in
  check tbool "guards valid: fast plan" false fb0;
  check tbool "fast plan correct" true
    (Exec.Executor.same_rows (Core.Softdb.query_baseline sdb sql) r0);
  let before = metric () in
  (* overturn the guarding ASC between planning and execution: the fast
     plan's introduced range would miss the January order below *)
  ignore (Core.Softdb.exec sdb violating_purchase_insert);
  check tbool "guard invalid now" false (Core.Softdb.guard_ok sdb "band");
  let r1, fb1 = Core.Softdb.execute_report sdb report in
  check tbool "degraded to the backup plan" true fb1;
  check tint "fallback counted" (before + 1) (metric ());
  check tbool "identical results via backup" true
    (Exec.Executor.same_rows (Core.Softdb.query_baseline sdb sql) r1);
  check tbool "new row visible" true
    (List.exists
       (fun row -> Tuple.get row 0 = Value.Int 900001)
       r1.Exec.Executor.rows)

let test_violated_asc_out_of_rewrites_after_recovery () =
  (* committed overturn: after recovery the band must not re-enter the
     rewrite set; uncommitted overturn: it must *)
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15) in
  let cites_band sdb =
    List.exists
      (fun a -> a.Opt.Rewrite.sc = Some "band")
      (Core.Softdb.explain sdb sql).Opt.Explain.applied
  in
  (* A: the overturning statement committed *)
  let sdb = band_fixture () in
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  Core.Recovery.checkpoint link;
  check tbool "band cited before overturn" true (cites_band sdb);
  ignore (Core.Softdb.exec sdb violating_purchase_insert);
  Core.Recovery.flush link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  Core.Softdb.runstats sdb2;
  check tbool "A: overturn durable" true
    ((Option.get (find_sc sdb2 "band")).Core.Soft_constraint.state
    = Core.Soft_constraint.Violated);
  check tbool "A: violated band never re-enters rewrites" false
    (cites_band sdb2);
  check tbool "A: answers still sound" true
    (Exec.Executor.same_rows
       (Core.Softdb.query_baseline sdb2 sql)
       (Core.Softdb.query sdb2 sql));
  Core.Recovery.detach link;
  (* B: the overturning transaction crashed before its commit record *)
  let sdb = band_fixture () in
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  Core.Recovery.checkpoint link;
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb violating_purchase_insert);
  Obs.Fault.arm "wal.pre_commit" Obs.Fault.Crash;
  (try Core.Txn.commit t with Obs.Fault.Injected_crash _ -> ());
  Core.Txn.abandon_current ();
  Core.Recovery.kill link;
  Obs.Fault.reset ();
  let sdb3 = Core.Recovery.recover (Wal.records wal) in
  Core.Softdb.runstats sdb3;
  check tbool "B: ASC re-instated" true
    (Core.Soft_constraint.is_usable (Option.get (find_sc sdb3 "band")));
  check tbool "B: band back in the rewrite set" true (cites_band sdb3);
  check tbool "B: crashed row absent" false
    (List.exists
       (fun row -> Tuple.get row 0 = Value.Int 900001)
       (Core.Softdb.query_baseline sdb3 "SELECT * FROM purchase")
         .Exec.Executor.rows)

(* ---- Txn.rollback collects listener failures (satellite b) --------------- *)

let test_rollback_incomplete_keeps_compensating () =
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (a INT)");
  ignore (Core.Softdb.exec sdb "CREATE TABLE u (a INT)");
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "INSERT INTO u VALUES (1)");
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (1)");
  (* dropping t makes its compensating delete impossible; the rollback
     must still undo u's insert and report the failure *)
  ignore (Core.Softdb.exec sdb "DROP TABLE t");
  (match Core.Txn.rollback t with
  | exception Core.Txn.Rollback_incomplete errors ->
      check tbool "failures collected" true (List.length errors >= 1)
  | () -> Alcotest.fail "expected Rollback_incomplete");
  check tint "u compensated anyway" 0
    (Table.cardinality (Database.table_exn (Core.Softdb.db sdb) "u"))

(* ---- the salvage matrix (WAL v2: CRC + LSN, torn tails, bit flips) ------- *)

let read_bytes p = In_channel.with_open_bin p In_channel.input_all

let cleanup_wal path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".salvage"; path ^ ".ckpt"; path ^ ".salvtmp" ]

(* a real file-sink WAL holding the shared fixture's committed state *)
let file_fixture () =
  Obs.Fault.reset ();
  let path = Filename.temp_file "softdb_salvage" ".wal" in
  Sys.remove path;
  let sdb, link, _ = Core.Recovery.resume path in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (a INT, b INT)");
  for i = 1 to 5 do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 2)))
  done;
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE t ADD CONSTRAINT asc_b CHECK (b < 100) SOFT");
  Core.Recovery.flush link;
  (sdb, link, path)

(* run the overturning probe with a write fault armed at [point]; freeze
   the log at the crash instant (partial bytes included) and return the
   path *)
let torn_probe ~point ~after mode =
  let sdb, link, path = file_fixture () in
  Obs.Fault.arm ~after point mode;
  (try probe_commit sdb with Obs.Fault.Injected_crash _ -> ());
  Core.Txn.abandon_current ();
  Core.Recovery.kill link;
  Wal.close (Core.Recovery.wal link);
  Obs.Fault.reset ();
  path

let recovery_row sdb =
  match
    (Core.Softdb.query_baseline sdb
       "SELECT mode, torn_tail, dropped_txns, corrupt_lines FROM sys.recovery")
      .Exec.Executor.rows
  with
  | [ row ] -> Tuple.to_list row
  | rows -> Alcotest.failf "sys.recovery has %d rows" (List.length rows)

let test_v2_line_codec () =
  List.iteri
    (fun i r ->
      let line = Wal.line_of_record ~lsn:(i + 1) r in
      (match Wal.parse_line line with
      | Ok (Some lsn, r') ->
          check tint "lsn roundtrip" (i + 1) lsn;
          check tbool "record roundtrip" true (r' = r)
      | Ok (None, _) -> Alcotest.fail "v2 line parsed as v1"
      | Error m -> Alcotest.failf "v2 line rejected: %s" m);
      (* v1 payloads still parse *)
      (match Wal.parse_line (Wal.record_to_line r) with
      | Ok (None, r') -> check tbool "v1 still readable" true (r' = r)
      | Ok (Some _, _) | Error _ -> Alcotest.fail "v1 line misparsed");
      (* any single corrupted byte must be caught *)
      let b = Bytes.of_string line in
      let pos = String.length line / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      match Wal.parse_line (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "flipped byte accepted in %S" line)
    codec_records

let test_torn_tail_mid_record () =
  (* the tear hits the probe's first data record: everything before the
     tear replays byte-identically, the tail is quarantined *)
  let path = torn_probe ~point:"wal.io" ~after:1 (Obs.Fault.Torn_write 10) in
  let untorn = Core.Recovery.recover (Wal.scan_string (read_bytes path)
                                      |> List.filter_map (fun (s : Wal.scanned) ->
                                             match s.Wal.parsed with
                                             | Ok r -> Some r
                                             | Error _ -> None)) in
  let sdb2, report = Core.Recovery.recover_file path in
  check tbool "pre state (probe txn torn away)" true (rows_of sdb2 = pre_rows);
  check tbool "identical to clean-prefix replay" true
    (rows_of sdb2 = rows_of untorn);
  check tbool "torn tail flagged" true report.Core.Recovery.torn_tail;
  check tbool "bytes quarantined" true
    (report.Core.Recovery.quarantined_bytes > 0);
  check tbool "salvage file written" true
    (Sys.file_exists (path ^ ".salvage"));
  check tbool "no dropped txns (tail was uncommitted)" true
    (report.Core.Recovery.dropped_txns = []);
  (* the truncated log is clean: a second, strict pass replays equal *)
  let sdb3 = Core.Recovery.recover (Wal.load_file path) in
  check tbool "repaired log replays equal" true (rows_of sdb3 = rows_of sdb2);
  (match recovery_row sdb2 with
  | [ Value.String "strict"; Value.Bool true; _; Value.Int c ] ->
      check tbool "corrupt line counted" true (c >= 1)
  | row ->
      Alcotest.failf "unexpected sys.recovery row: %s"
        (String.concat "," (List.map Value.to_string row)));
  cleanup_wal path

let test_torn_tail_mid_commit () =
  (* Begin + both inserts land; the commit record itself is torn: the
     frame never committed, recovery lands on pre-state *)
  let path = torn_probe ~point:"wal.io" ~after:3 (Obs.Fault.Torn_write 7) in
  let sdb2, report = Core.Recovery.recover_file path in
  check tbool "pre state" true (rows_of sdb2 = pre_rows);
  check tbool "torn tail flagged" true report.Core.Recovery.torn_tail;
  check tbool "ASC re-instated" true
    (Core.Soft_constraint.is_usable (Option.get (find_sc sdb2 "asc_b")));
  (* the quarantine holds the torn bytes *)
  let salvaged = read_bytes (path ^ ".salvage") in
  check tbool "quarantine non-empty" true (String.length salvaged > 0);
  cleanup_wal path

let test_torn_checkpoint_preserves_log () =
  (* a torn write inside the checkpoint rewrite dies before the rename:
     the original log survives untouched *)
  let sdb, link, path = file_fixture () in
  probe_commit sdb;
  Core.Recovery.flush link;
  let before = read_bytes path in
  Obs.Fault.arm "wal.checkpoint" (Obs.Fault.Torn_write 12);
  (match Core.Recovery.checkpoint link with
  | exception Obs.Fault.Injected_crash _ -> ()
  | () -> Alcotest.fail "expected the torn checkpoint to crash");
  Core.Recovery.kill link;
  Wal.close (Core.Recovery.wal link);
  Obs.Fault.reset ();
  check tbool "log bytes untouched" true (read_bytes path = before);
  let sdb2, report = Core.Recovery.recover_file path in
  check tbool "post state recovered" true (rows_of sdb2 = post_rows);
  check tbool "no tear in the log itself" false report.Core.Recovery.torn_tail;
  cleanup_wal path

let test_bit_flip_before_last_commit () =
  (* silent corruption of a mid-transaction record, then the commit
     lands: interior corruption.  Strict refuses; salvage drops exactly
     that transaction and reports it. *)
  let sdb, link, path = file_fixture () in
  Obs.Fault.arm ~after:1 "wal.io" (Obs.Fault.Bit_flip 5);
  probe_commit sdb;
  Core.Recovery.detach link;
  Wal.close (Core.Recovery.wal link);
  Obs.Fault.reset ();
  (match Core.Recovery.recover_file path with
  | exception Core.Recovery.Recovery_error _ -> ()
  | _ -> Alcotest.fail "strict mode accepted interior corruption");
  let sdb2, report =
    Core.Recovery.recover_file ~mode:Core.Recovery.Salvage path
  in
  check tbool "affected txn dropped" true
    (List.length report.Core.Recovery.dropped_txns = 1);
  check tbool "pre state (probe dropped whole)" true (rows_of sdb2 = pre_rows);
  check tbool "interior, not torn" false report.Core.Recovery.torn_tail;
  check tbool "corrupt line quarantined" true
    (Sys.file_exists (path ^ ".salvage"));
  (* the rewritten log replays to exactly the salvaged state, strictly *)
  let sdb3 = Core.Recovery.recover (Wal.load_file path) in
  check tbool "repaired log replays equal" true (rows_of sdb3 = rows_of sdb2);
  (match recovery_row sdb2 with
  | [ Value.String "salvage"; Value.Bool false; Value.String dropped; _ ] ->
      check tbool "dropped txn listed" true (String.length dropped > 0)
  | row ->
      Alcotest.failf "unexpected sys.recovery row: %s"
        (String.concat "," (List.map Value.to_string row)));
  cleanup_wal path

let test_bit_flip_after_last_commit () =
  (* the flipped record belongs to a transaction that never committed:
     corruption strictly after the last committed frame is a torn tail,
     salvaged even in strict mode *)
  let sdb, link, path = file_fixture () in
  Obs.Fault.arm ~after:1 "wal.io" (Obs.Fault.Bit_flip 9);
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (10, 500)");
  ignore t;
  Core.Txn.abandon_current ();
  Core.Recovery.kill link;
  Wal.close (Core.Recovery.wal link);
  Obs.Fault.reset ();
  let sdb2, report = Core.Recovery.recover_file path in
  check tbool "pre state" true (rows_of sdb2 = pre_rows);
  check tbool "classified as torn tail" true report.Core.Recovery.torn_tail;
  check tbool "nothing dropped" true (report.Core.Recovery.dropped_txns = []);
  cleanup_wal path

let test_lsn_regression_detected () =
  (* a stale line spliced onto the tail (duplicated LSN) is corruption
     even though its checksum is fine *)
  let _, link, path = file_fixture () in
  Core.Recovery.detach link;
  Wal.close (Core.Recovery.wal link);
  let raw = read_bytes path in
  let lines = String.split_on_char '\n' raw in
  let dup = List.nth lines 2 in
  Out_channel.with_open_gen
    [ Open_append; Open_binary ] 0o644 path
    (fun oc -> Out_channel.output_string oc (dup ^ "\n"));
  let sdb2, report = Core.Recovery.recover_file path in
  check tbool "spliced line cut as torn tail" true
    report.Core.Recovery.torn_tail;
  check tbool "fixture state intact" true (rows_of sdb2 = pre_rows);
  check tbool "reason names the regression" true
    (List.exists
       (fun (c : Core.Recovery.corrupt_line) ->
         String.length c.Core.Recovery.reason >= 3)
       report.Core.Recovery.corrupt);
  cleanup_wal path

let test_sharded_salvage_equivalent () =
  (* the sharded replayer must make the identical salvage decisions *)
  let sdb, link, path = file_fixture () in
  Obs.Fault.arm ~after:1 "wal.io" (Obs.Fault.Bit_flip 5);
  probe_commit sdb;
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (20, 40)");
  Core.Recovery.detach link;
  Wal.close (Core.Recovery.wal link);
  Obs.Fault.reset ();
  let scanned = Wal.scan_string (read_bytes path) in
  let seq, seq_report =
    Core.Recovery.recover_scan ~mode:Core.Recovery.Salvage scanned
  in
  let shd, shd_report =
    Core.Recovery.recover_sharded_scan ~mode:Core.Recovery.Salvage scanned
  in
  check tbool "same rows" true (rows_of seq = rows_of shd);
  check tbool "same report" true (seq_report = shd_report);
  check tbool "later autocommit survives the drop" true
    (List.mem [ Value.Int 20; Value.Int 40 ] (rows_of seq));
  cleanup_wal path

(* ---- recovery edge cases -------------------------------------------------- *)

let test_zero_length_log () =
  let path = Filename.temp_file "softdb_empty" ".wal" in
  let sdb, report = Core.Recovery.recover_file path in
  check tint "nothing scanned" 0 report.Core.Recovery.scanned_lines;
  check tbool "no tear" false report.Core.Recovery.torn_tail;
  check tbool "fresh database" true
    (Database.table_names (Core.Softdb.db sdb) = []);
  (* resume on the same empty file works and can write *)
  let sdb2, link, _ = Core.Recovery.resume path in
  ignore (Core.Softdb.exec sdb2 "CREATE TABLE t (a INT)");
  Core.Recovery.detach link;
  Wal.close (Core.Recovery.wal link);
  cleanup_wal path

let test_log_ends_at_commit_boundary () =
  (* the file's last line is a commit record: nothing to salvage, every
     committed frame replays *)
  let sdb, link, path = file_fixture () in
  probe_commit sdb;
  Core.Recovery.flush link;
  Core.Recovery.detach link;
  Wal.close (Core.Recovery.wal link);
  let raw = read_bytes path in
  check tbool "fixture ends in newline" true
    (raw.[String.length raw - 1] = '\n');
  let sdb2, report = Core.Recovery.recover_file path in
  check tbool "post state" true (rows_of sdb2 = post_rows);
  check tbool "clean" true
    ((not report.Core.Recovery.torn_tail)
    && report.Core.Recovery.corrupt = []);
  check tbool "commit count positive" true
    (report.Core.Recovery.committed_txns > 0);
  cleanup_wal path

let test_ckpt_present_empty_tail () =
  (* a leftover .ckpt sibling (crashed checkpoint) next to a log
     truncated to zero: recovery of the log itself succeeds empty and
     never reads the sibling *)
  let _, link, path = file_fixture () in
  Core.Recovery.detach link;
  Wal.close (Core.Recovery.wal link);
  let raw = read_bytes path in
  Out_channel.with_open_bin (path ^ ".ckpt") (fun oc ->
      Out_channel.output_string oc raw);
  Out_channel.with_open_bin path (fun _ -> ());
  let sdb2, report = Core.Recovery.recover_file path in
  check tint "empty tail scanned" 0 report.Core.Recovery.scanned_lines;
  check tbool "sibling ignored" true
    (Database.table_names (Core.Softdb.db sdb2) = []);
  check tbool "ckpt sibling still on disk" true
    (Sys.file_exists (path ^ ".ckpt"));
  cleanup_wal path

(* -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "recovery"
    [
      ( "wal",
        [
          Alcotest.test_case "line roundtrip" `Quick test_wal_line_roundtrip;
          Alcotest.test_case "corrupt lines rejected" `Quick
            test_wal_corrupt_line_rejected;
          Alcotest.test_case "sc codec roundtrip" `Quick
            test_sc_codec_roundtrip;
        ] );
      ( "replay",
        [
          Alcotest.test_case "committed state" `Quick
            test_recover_replays_committed_state;
          Alcotest.test_case "rolled-back txn skipped" `Quick
            test_recover_skips_rolled_back_txn;
          Alcotest.test_case "committed overturn kept" `Quick
            test_recover_keeps_committed_overturn;
        ] );
      ( "crash_matrix",
        [
          Alcotest.test_case "every fault point" `Quick test_crash_matrix;
          Alcotest.test_case "crash during rollback" `Quick
            test_crash_during_rollback;
          Alcotest.test_case "io error single shot" `Quick
            test_io_error_is_single_shot;
          Alcotest.test_case "latency counts hits" `Quick
            test_latency_counts_hits;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "rejected inside txn" `Quick
            test_checkpoint_rejected_inside_txn;
          Alcotest.test_case "crash preserves log" `Quick
            test_checkpoint_crash_preserves_log;
          Alcotest.test_case "file resume" `Quick test_file_resume;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "ddl replay repopulates" `Quick
            test_exception_table_ddl_replay;
          Alcotest.test_case "checkpoint reattaches" `Quick
            test_exception_table_reattach;
        ] );
      ( "guards",
        [
          Alcotest.test_case "stale plan falls back" `Quick
            test_guarded_plan_falls_back;
          Alcotest.test_case "violated ASC out of rewrites after recovery"
            `Quick test_violated_asc_out_of_rewrites_after_recovery;
        ] );
      ( "txn",
        [
          Alcotest.test_case "rollback incomplete keeps compensating" `Quick
            test_rollback_incomplete_keeps_compensating;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "v2 line codec" `Quick test_v2_line_codec;
          Alcotest.test_case "torn tail mid-record" `Quick
            test_torn_tail_mid_record;
          Alcotest.test_case "torn tail mid-commit" `Quick
            test_torn_tail_mid_commit;
          Alcotest.test_case "torn checkpoint preserves log" `Quick
            test_torn_checkpoint_preserves_log;
          Alcotest.test_case "bit flip before last commit" `Quick
            test_bit_flip_before_last_commit;
          Alcotest.test_case "bit flip after last commit" `Quick
            test_bit_flip_after_last_commit;
          Alcotest.test_case "lsn regression" `Quick
            test_lsn_regression_detected;
          Alcotest.test_case "sharded salvage equivalent" `Quick
            test_sharded_salvage_equivalent;
        ] );
      ( "edges",
        [
          Alcotest.test_case "zero-length log" `Quick test_zero_length_log;
          Alcotest.test_case "log ends at commit boundary" `Quick
            test_log_ends_at_commit_boundary;
          Alcotest.test_case "ckpt sibling, empty tail" `Quick
            test_ckpt_present_empty_tail;
        ] );
    ]
