(* lib/idx tests: the online build lifecycle under interleaved writes,
   unique-violation demotion, the mid-backfill crash matrix over the
   idx.backfill.* fault points, WAL replay of online index DDL, the
   guarded index-only fallback when an index is demoted mid-flight,
   rewrite certificates, the sys.indexes / sys.index_advisor views, and
   the advisor's ranking rules. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ---- fixtures ------------------------------------------------------------ *)

(* [t] with [rows] rows: id unique, k = id mod 10 (duplicates), v = 3*id *)
let make_sdb ?(rows = 300) () =
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (id INT, k INT, v INT)");
  for i = 1 to rows do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d)" i (i mod 10)
            (i * 3)))
  done;
  sdb

(* Register just the Write_only shell: exec_statement does not finish
   ONLINE builds (the string-level [exec] would). *)
let shell ?(unique = false) sdb name columns =
  let sql =
    Printf.sprintf "CREATE %sINDEX %s ON t (%s) ONLINE"
      (if unique then "UNIQUE " else "")
      name (String.concat ", " columns)
  in
  ignore (Core.Softdb.exec_statement sdb (Sqlfe.Parser.parse_statement sql));
  Option.get (Database.find_index_by_name (Core.Softdb.db sdb) name)

(* Zero lost maintenance records: the index holds exactly the live rows,
   each under its current key. *)
let index_consistent sdb idx =
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db (Index.table_name idx) in
  let live =
    List.filter_map
      (fun rid -> Option.map (fun row -> (rid, row)) (Table.get tbl rid))
      (Table.rids tbl)
  in
  List.length live = Index.entries idx
  && List.for_all
       (fun (rid, row) -> List.mem rid (Index.lookup idx (Index.key_of idx row)))
       live

let sorted_rows (r : Exec.Executor.result) =
  List.sort compare (List.map Tuple.to_list r.Exec.Executor.rows)

(* ---- online build under interleaved concurrent writes -------------------- *)

let test_online_build_interleaved_writes () =
  let sdb = make_sdb () in
  let db = Core.Softdb.db sdb in
  let idx = shell sdb "t_k" [ "k" ] in
  check tbool "shell is write-only" true (Index.state idx = Index.Write_only);
  let build = Idx.Lifecycle.start ~batch:32 db idx in
  check tbool "backfilling" true (Index.state idx = Index.Backfilling);
  (* between every backfill batch: an insert (above the watermark, so
     maintenance-only), a delete and an update of backfilled territory —
     the races the idempotent (key, rid) tree must absorb *)
  let n = ref 300 in
  let continue = ref true in
  while !continue do
    incr n;
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d)" !n (!n mod 10)
            (!n * 3)));
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "DELETE FROM t WHERE id = %d" (!n - 250)));
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "UPDATE t SET k = %d WHERE id = %d" ((!n * 7) mod 10)
            (!n - 100)));
    continue := Idx.Lifecycle.step build
  done;
  check tbool "built" true (Idx.Lifecycle.finish build = Idx.Lifecycle.Built);
  check tbool "readable" true (Index.is_readable idx);
  check tbool "zero lost maintenance records" true (index_consistent sdb idx);
  let p = Idx.Lifecycle.progress build in
  check tint "cursor reached the watermark" p.Idx.Lifecycle.p_watermark
    p.Idx.Lifecycle.p_cursor;
  (* the probe path agrees with a full scan *)
  let via_index = Core.Softdb.query sdb "SELECT id FROM t WHERE k = 3" in
  let oracle = Core.Softdb.query_baseline sdb "SELECT id FROM t WHERE k = 3" in
  check tbool "probe matches oracle" true
    (sorted_rows via_index = sorted_rows oracle)

let test_unique_violation_demotes_not_fails () =
  let sdb = make_sdb ~rows:50 () in
  (* k = id mod 10: duplicates guaranteed *)
  let db = Core.Softdb.db sdb in
  let idx = shell ~unique:true sdb "t_uk" [ "k" ] in
  (match Idx.Lifecycle.run ~batch:8 db idx with
  | Idx.Lifecycle.Built -> Alcotest.fail "duplicate keys must demote the build"
  | Idx.Lifecycle.Demoted_build _ ->
      check tbool "demoted" true (Index.state idx = Index.Demoted));
  (* the promise of ONLINE: foreground traffic was never broken *)
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (51, 1, 153)");
  let r = Core.Softdb.query sdb "SELECT id FROM t WHERE k = 1" in
  check tbool "foreground queries still run" true
    (List.length r.Exec.Executor.rows > 0)

let test_start_batch_validation () =
  let sdb = make_sdb ~rows:10 () in
  let db = Core.Softdb.db sdb in
  let idx = shell sdb "t_k" [ "k" ] in
  (match Idx.Lifecycle.start ~batch:0 db idx with
  | exception Idx.Lifecycle.Lifecycle_error _ -> ()
  | _ -> Alcotest.fail "batch 0 accepted");
  let build = Idx.Lifecycle.start db idx in
  (* a second build of the same index cannot start *)
  match Idx.Lifecycle.start db idx with
  | exception Idx.Lifecycle.Lifecycle_error _ ->
      while Idx.Lifecycle.step build do
        ()
      done;
      check tbool "first build completes" true
        (Idx.Lifecycle.finish build = Idx.Lifecycle.Built)
  | _ -> Alcotest.fail "double start accepted"

(* ---- crash safety: the idx.backfill.* matrix ----------------------------- *)

let wal_fixture () =
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (id INT, k INT, v INT)");
  for i = 1 to 100 do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d)" i (i mod 10)
            (i * 3)))
  done;
  Core.Recovery.flush link;
  (sdb, wal, link)

let test_crash_matrix_mid_backfill () =
  List.iter
    (fun point ->
      let sdb, wal, link = wal_fixture () in
      let db = Core.Softdb.db sdb in
      let idx = shell sdb "t_k" [ "k" ] in
      Obs.Fault.arm point Obs.Fault.Crash;
      let crashed =
        try
          ignore (Idx.Lifecycle.run ~batch:16 db idx);
          false
        with Obs.Fault.Injected_crash _ -> true
      in
      Core.Txn.abandon_current ();
      Core.Recovery.kill link;
      Obs.Fault.reset ();
      check tbool (point ^ ": crashed") true crashed;
      let sdb2 = Core.Recovery.recover (Wal.records wal) in
      let db2 = Core.Softdb.db sdb2 in
      (match Database.find_index_by_name db2 "t_k" with
      | None -> Alcotest.failf "%s: index lost by recovery" point
      | Some idx2 ->
          (* the invariant: consistent, or cleanly demoted — never a
             half-built index serving probes *)
          check tbool
            (point ^ ": consistent or demoted")
            true
            ((Index.is_readable idx2 && index_consistent sdb2 idx2)
            || Index.state idx2 = Index.Demoted);
          (* every idx.backfill.* point fires before Readable is logged,
             so the recovery sweep must land on Demoted here *)
          check tbool (point ^ ": demoted") true
            (Index.state idx2 = Index.Demoted));
      let r = Core.Softdb.query_baseline sdb2 "SELECT id FROM t" in
      check tint (point ^ ": heap rows survive") 100
        (List.length r.Exec.Executor.rows);
      (* and the demoted index never backs a plan *)
      let r2 = Core.Softdb.query sdb2 "SELECT id FROM t WHERE k = 3" in
      check tint (point ^ ": queries still correct") 10
        (List.length r2.Exec.Executor.rows))
    [ "idx.backfill.start"; "idx.backfill.batch"; "idx.backfill.finish" ]

let test_shell_only_crash_recovers_write_only () =
  let sdb, wal, link = wal_fixture () in
  let _idx = shell sdb "t_k" [ "k" ] in
  Core.Recovery.flush link;
  Core.Recovery.kill link;
  (* crash before any build started *)
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  let idx2 =
    Option.get (Database.find_index_by_name (Core.Softdb.db sdb2) "t_k")
  in
  check tbool "still a write-only shell" true
    (Index.state idx2 = Index.Write_only);
  (* maintenance hooks are live on the recovered shell *)
  ignore (Core.Softdb.exec sdb2 "INSERT INTO t VALUES (101, 3, 303)");
  check tbool "shell maintained after recovery" true
    (Index.entries idx2 = 1)

let test_completed_build_replays_readable () =
  let sdb, wal, link = wal_fixture () in
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_k ON t (k) ONLINE");
  (* [exec] drives the build to completion synchronously *)
  let idx =
    Option.get (Database.find_index_by_name (Core.Softdb.db sdb) "t_k")
  in
  check tbool "built readable" true (Index.is_readable idx);
  ignore (Core.Softdb.exec sdb "INSERT INTO t VALUES (101, 3, 303)");
  Core.Recovery.flush link;
  Core.Recovery.kill link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  let idx2 =
    Option.get (Database.find_index_by_name (Core.Softdb.db sdb2) "t_k")
  in
  check tbool "readable after replay" true (Index.is_readable idx2);
  check tbool "rebuilt consistent" true (index_consistent sdb2 idx2);
  check tint "post-build insert indexed" 11
    (List.length (Index.lookup_value idx2 (Value.Int 3)))

(* ---- guarded fallback on mid-flight demotion ----------------------------- *)

let covering_sql = "SELECT k, v FROM t WHERE k = 3"

let test_midflight_demotion_falls_back () =
  let sdb = make_sdb () in
  let db = Core.Softdb.db sdb in
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_kv ON t (k, v)");
  let report = Core.Softdb.explain sdb covering_sql in
  check tbool "index_only applied" true
    (List.exists
       (fun (a : Opt.Rewrite.applied) -> a.Opt.Rewrite.rule = "index_only")
       report.Opt.Explain.applied);
  check tbool "plan guarded by idx:t_kv" true
    (List.mem "idx:t_kv" report.Opt.Explain.guards);
  check tbool "backup plan compiled" true
    (report.Opt.Explain.backup_plan <> None);
  let expected = sorted_rows (Core.Softdb.query_baseline sdb covering_sql) in
  let before =
    Obs.Metrics.counter (Core.Softdb.metrics sdb) "sc_guard_fallbacks"
  in
  (* demote in the window between optimize and execute *)
  Database.set_index_state db
    (Option.get (Database.find_index_by_name db "t_kv"))
    Index.Demoted;
  let result, fell_back = Core.Softdb.execute_report sdb report in
  check tbool "fell back to the backup plan" true fell_back;
  check tbool "backup produced the right rows" true
    (sorted_rows result = expected);
  check tint "sc_guard_fallbacks incremented" (before + 1)
    (Obs.Metrics.counter (Core.Softdb.metrics sdb) "sc_guard_fallbacks")

let test_readable_index_runs_fast_plan () =
  let sdb = make_sdb () in
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_kv ON t (k, v)");
  let report = Core.Softdb.explain sdb covering_sql in
  let result, fell_back = Core.Softdb.execute_report sdb report in
  check tbool "no fallback while readable" false fell_back;
  check tbool "fast plan rows correct" true
    (sorted_rows result
    = sorted_rows (Core.Softdb.query_baseline sdb covering_sql))

(* ---- rewrite certificates ------------------------------------------------ *)

let test_index_only_certificate_verifies () =
  let sdb = make_sdb () in
  let db = Core.Softdb.db sdb in
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_kv ON t (k, v)");
  (match Check.Cert.basis_of sdb "idx:t_kv" with
  | Check.Cert.Soft_absolute -> ()
  | _ -> Alcotest.fail "readable index must be an overturnable basis");
  let report, diags = Check.Cert.check_query sdb covering_sql in
  check tbool "index_only fired under the checker" true
    (List.exists
       (fun (a : Opt.Rewrite.applied) -> a.Opt.Rewrite.rule = "index_only")
       report.Opt.Explain.applied);
  check tbool "certificate verifies" false (Check.Diag.has_errors diags);
  Database.set_index_state db
    (Option.get (Database.find_index_by_name db "t_kv"))
    Index.Demoted;
  (match Check.Cert.basis_of sdb "idx:t_kv" with
  | Check.Cert.Invalid _ -> ()
  | _ -> Alcotest.fail "demoted index must be an invalid basis");
  (* with the index demoted the rewrite no longer fires, and the plain
     plan carries no idx premises to fail *)
  let report2, diags2 = Check.Cert.check_query sdb covering_sql in
  check tbool "rewrite gone after demotion" false
    (List.exists
       (fun (a : Opt.Rewrite.applied) -> a.Opt.Rewrite.rule = "index_only")
       report2.Opt.Explain.applied);
  check tbool "plain plan still verifies" false (Check.Diag.has_errors diags2)

(* ---- sys views and the advisor ------------------------------------------- *)

let test_sys_indexes_view () =
  let sdb = make_sdb ~rows:20 () in
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_k ON t (k)");
  let r =
    Core.Softdb.query_baseline sdb
      "SELECT name, table_name, columns, state FROM sys.indexes"
  in
  check tbool "index listed" true
    (List.exists
       (fun row ->
         Tuple.to_list row
         = [
             Value.String "t_k"; Value.String "t"; Value.String "k";
             Value.String "readable";
           ])
       r.Exec.Executor.rows);
  Database.set_index_state (Core.Softdb.db sdb)
    (Option.get (Database.find_index_by_name (Core.Softdb.db sdb) "t_k"))
    Index.Demoted;
  let r2 =
    Core.Softdb.query_baseline sdb
      "SELECT state FROM sys.indexes WHERE name = 't_k'"
  in
  check tbool "demotion visible in sys.indexes" true
    (List.map Tuple.to_list r2.Exec.Executor.rows
    = [ [ Value.String "demoted" ] ])

let test_advisor_from_query_log () =
  let sdb = make_sdb ~rows:40 () in
  (* a repeated sargable query on an unindexed column feeds the log *)
  for _ = 1 to 5 do
    ignore (Core.Softdb.query sdb "SELECT v FROM t WHERE v = 30")
  done;
  let cands = Core.Softdb.advise sdb in
  let cand =
    List.find_opt
      (fun (c : Idx.Advisor.candidate) ->
        c.Idx.Advisor.cand_table = "t" && c.Idx.Advisor.cand_columns = [ "v" ])
      cands
  in
  (match cand with
  | None -> Alcotest.fail "advisor missed the mined workload"
  | Some c ->
      check tbool "covering (index-only)" true c.Idx.Advisor.cand_covering;
      check tint "serves the logged statements" 5 c.Idx.Advisor.cand_queries;
      let stmt = Core.Softdb.advice_statement c in
      check tbool "advice is an online build" true
        (String.length stmt >= 6
        && String.sub stmt (String.length stmt - 6) 6 = "ONLINE"));
  let r =
    Core.Softdb.query_baseline sdb
      "SELECT table_name, columns FROM sys.index_advisor"
  in
  check tbool "sys.index_advisor surfaces it" true
    (List.exists
       (fun row ->
         Tuple.to_list row = [ Value.String "t"; Value.String "v" ])
       r.Exec.Executor.rows);
  (* building the advised index suppresses the candidate *)
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_v ON t (v) ONLINE");
  check tbool "indexed candidate suppressed" true
    (List.for_all
       (fun (c : Idx.Advisor.candidate) ->
         not (c.Idx.Advisor.cand_table = "t"
             && c.Idx.Advisor.cand_columns = [ "v" ]))
       (Core.Softdb.advise sdb))

let test_advisor_sc_hints () =
  let db = Database.create () in
  let schema =
    Schema.make "t"
      [
        Schema.column ~nullable:false "a" Value.TInt;
        Schema.column ~nullable:false "b" Value.TInt;
        Schema.column ~nullable:false "c" Value.TInt;
      ]
  in
  ignore (Database.create_table db schema);
  let queries =
    List.concat (List.init 3 (fun _ -> [ "SELECT a, b FROM t WHERE a = 1" ]))
  in
  (* an FD a → b makes the covering extension (a, b) free *)
  let with_fd =
    Idx.Advisor.advise db ~queries
      ~hints:
        [ Idx.Advisor.Fd { table = "t"; determinant = [ "a" ]; dependents = [ "b" ] } ]
  in
  check tbool "FD hint yields a covering candidate" true
    (List.exists
       (fun (c : Idx.Advisor.candidate) ->
         c.Idx.Advisor.cand_covering
         && c.Idx.Advisor.cand_columns = [ "a"; "b" ])
       with_fd);
  (* a band SC on the ranged column boosts the score *)
  let range_q =
    List.concat
      (List.init 3 (fun _ -> [ "SELECT c FROM t WHERE c > 5 AND c < 9" ]))
  in
  let plain = Idx.Advisor.advise db ~queries:range_q ~hints:[] in
  let banded =
    Idx.Advisor.advise db ~queries:range_q
      ~hints:[ Idx.Advisor.Band { table = "t"; column = "c"; width = 0.1 } ]
  in
  let score cands =
    match
      List.find_opt
        (fun (c : Idx.Advisor.candidate) ->
          c.Idx.Advisor.cand_columns = [ "c" ])
        cands
    with
    | Some c -> c.Idx.Advisor.cand_score
    | None -> Alcotest.fail "no candidate on the banded column"
  in
  check tbool "band hint boosts the score" true (score banded > score plain)

(* ---- plan cache: DDL staleness ------------------------------------------- *)

let test_plan_cache_execute_after_drop_index () =
  let sdb = make_sdb () in
  let cache = Core.Plan_cache.create sdb in
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_kv ON t (k, v)");
  let entry = Core.Plan_cache.prepare cache ~name:"q" covering_sql in
  check tbool "entry tracks the probed index" true
    (List.mem "t_kv" entry.Core.Plan_cache.obj_indexes);
  let r1 = Core.Plan_cache.execute cache "q" in
  ignore (Core.Softdb.exec sdb "DROP INDEX t_kv");
  (* the compiled plan is stale: execute must re-prepare, not open it *)
  let r2 = Core.Plan_cache.execute cache "q" in
  check tbool "same rows after re-preparation" true
    (sorted_rows r1 = sorted_rows r2);
  check tbool "re-preparation counted" true
    (Obs.Metrics.counter (Core.Softdb.metrics sdb)
       "plan_cache.ddl_repreparations"
    >= 1);
  check tbool "stale index reference gone" false
    (List.mem "t_kv" entry.Core.Plan_cache.obj_indexes)

let test_plan_cache_execute_after_demotion () =
  let sdb = make_sdb () in
  let cache = Core.Plan_cache.create sdb in
  ignore (Core.Softdb.exec sdb "CREATE INDEX t_kv ON t (k, v)");
  ignore (Core.Plan_cache.prepare cache ~name:"q" covering_sql);
  let r1 = Core.Plan_cache.execute cache "q" in
  Database.set_index_state (Core.Softdb.db sdb)
    (Option.get (Database.find_index_by_name (Core.Softdb.db sdb) "t_kv"))
    Index.Demoted;
  let r2 = Core.Plan_cache.execute cache "q" in
  check tbool "demotion also forces re-preparation" true
    (sorted_rows r1 = sorted_rows r2)

(* ---- registry ------------------------------------------------------------ *)

let () =
  Alcotest.run "idx"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "online build under interleaved writes" `Quick
            test_online_build_interleaved_writes;
          Alcotest.test_case "unique violation demotes, never fails writers"
            `Quick test_unique_violation_demotes_not_fails;
          Alcotest.test_case "start/batch validation" `Quick
            test_start_batch_validation;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash matrix mid-backfill" `Quick
            test_crash_matrix_mid_backfill;
          Alcotest.test_case "shell-only crash recovers write-only" `Quick
            test_shell_only_crash_recovers_write_only;
          Alcotest.test_case "completed build replays readable" `Quick
            test_completed_build_replays_readable;
        ] );
      ( "guard",
        [
          Alcotest.test_case "mid-flight demotion falls back" `Quick
            test_midflight_demotion_falls_back;
          Alcotest.test_case "readable index runs the fast plan" `Quick
            test_readable_index_runs_fast_plan;
          Alcotest.test_case "index-only certificate verifies" `Quick
            test_index_only_certificate_verifies;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "sys.indexes view" `Quick test_sys_indexes_view;
          Alcotest.test_case "advisor mines the query log" `Quick
            test_advisor_from_query_log;
          Alcotest.test_case "SC hints shape the ranking" `Quick
            test_advisor_sc_hints;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "execute after DROP INDEX re-prepares" `Quick
            test_plan_cache_execute_after_drop_index;
          Alcotest.test_case "execute after demotion re-prepares" `Quick
            test_plan_cache_execute_after_demotion;
        ] );
    ]
