(* Tests for the optimizer: interval reasoning, cardinality estimation
   with twin blending, every rewrite rule (positive and negative cases),
   the planner's access-path and lowering choices, and the global
   soundness property — rewrites never change answers. *)

open Rel
open Opt

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float

(* ---- interval reasoning ---------------------------------------------------- *)

let p = Sqlfe.Parser.parse_pred_string

let test_simplify_folds_constants () =
  check tbool "3 < 5" true (Interval.simplify_pred (p "3 < 5") = Expr.Ptrue);
  check tbool "3 > 5" true (Interval.simplify_pred (p "3 > 5") = Expr.Pfalse);
  check tbool "arith" true
    (Interval.simplify_pred (p "2 + 2 = 4") = Expr.Ptrue);
  check tbool "and short-circuit" true
    (Interval.simplify_pred (p "3 > 5 AND a = 1") = Expr.Pfalse);
  check tbool "or keeps live side" true
    (match Interval.simplify_pred (p "3 > 5 OR a = 1") with
    | Expr.Cmp (Expr.Eq, _, _) -> true
    | _ -> false)

let test_isolation () =
  (* c - 10 <= 5  ⟺  c <= 15 *)
  (match Interval.of_pred (p "c - 10 <= 5") with
  | Some (r, iv) ->
      check Alcotest.string "col" "c" r.Expr.col;
      check tbool "hi 15" true
        (iv.Interval.hi = Some { Interval.v = Value.Int 15; incl = true })
  | None -> Alcotest.fail "no isolation");
  (* 20 - c < 5  ⟺  c > 15 *)
  (match Interval.of_pred (p "20 - c < 5") with
  | Some (_, iv) ->
      check tbool "lo 15 excl" true
        (iv.Interval.lo = Some { Interval.v = Value.Int 15; incl = false })
  | None -> Alcotest.fail "no isolation flip");
  (* date arithmetic: DATE - c BETWEEN 0 AND 21 isolates c *)
  match Interval.of_pred (p "DATE '1999-12-15' - c BETWEEN 0 AND 21") with
  | Some (r, iv) ->
      check Alcotest.string "col" "c" r.Expr.col;
      check tbool "date bounds" true
        (match (iv.Interval.lo, iv.Interval.hi) with
        | Some lo, Some hi ->
            lo.Interval.v = Value.Date (Date.of_ymd 1999 11 24)
            && hi.Interval.v = Value.Date (Date.of_ymd 1999 12 15)
        | _ -> false)
  | None -> Alcotest.fail "no date isolation"

let test_interval_ops () =
  let get pred =
    match Interval.of_pred (p pred) with
    | Some (_, iv) -> iv
    | None -> Alcotest.failf "unparsed interval %s" pred
  in
  let a = get "x BETWEEN 1 AND 10" and b = get "x >= 5" in
  let i = Interval.intersect a b in
  check tbool "intersect [5,10]" true
    (i.Interval.lo = Some { Interval.v = Value.Int 5; incl = true }
    && i.Interval.hi = Some { Interval.v = Value.Int 10; incl = true });
  check tbool "contains" true (Interval.contains a i);
  check tbool "not contains" false (Interval.contains i a);
  check tbool "empty" true
    (Interval.is_empty (Interval.intersect (get "x < 3") (get "x > 7")));
  check tbool "point non-empty" false
    (Interval.is_empty (Interval.intersect (get "x <= 3") (get "x >= 3")))

let test_unsatisfiable () =
  let key_of (r : Expr.col_ref) = Some r.Expr.col in
  check tbool "contradiction" true
    (Interval.unsatisfiable ~key_of [ p "x > 10"; p "x < 5" ]);
  check tbool "satisfiable" false
    (Interval.unsatisfiable ~key_of [ p "x > 10"; p "y < 5" ]);
  check tbool "point ok" false
    (Interval.unsatisfiable ~key_of [ p "x >= 5"; p "x <= 5" ])

let test_summarize_residual () =
  let key_of (r : Expr.col_ref) = Some r.Expr.col in
  let entries, residual =
    Interval.summarize ~key_of
      [ p "x > 1"; p "x < 9"; p "y = 4"; p "x <> 3"; p "z IS NULL" ]
  in
  check tint "two columns" 2 (List.length entries);
  check tint "two residuals" 2 (List.length residual)

(* interval algebra properties *)
let gen_interval =
  let open QCheck.Gen in
  let endpoint =
    oneof
      [
        return None;
        map2
          (fun v incl -> Some { Interval.v = Value.Int v; incl })
          (int_range (-20) 20) bool;
      ]
  in
  map2 (fun lo hi -> { Interval.lo; hi }) endpoint endpoint

let member v (iv : Interval.t) =
  (match iv.Interval.lo with
  | None -> true
  | Some { Interval.v = l; incl } ->
      let c = Value.compare_total (Value.Int v) l in
      if incl then c >= 0 else c > 0)
  && (match iv.Interval.hi with
     | None -> true
     | Some { Interval.v = h; incl } ->
         let c = Value.compare_total (Value.Int v) h in
         if incl then c <= 0 else c < 0)

let interval_intersect_prop =
  QCheck.Test.make ~name:"intersect is pointwise conjunction" ~count:300
    QCheck.(triple (make gen_interval) (make gen_interval) (int_range (-25) 25))
    (fun (a, b, v) ->
      member v (Interval.intersect a b) = (member v a && member v b))

let interval_empty_prop =
  QCheck.Test.make ~name:"is_empty means no integer member" ~count:300
    (QCheck.make gen_interval)
    (fun iv ->
      if Interval.is_empty iv then
        List.for_all (fun v -> not (member v iv)) (List.init 61 (fun i -> i - 30))
      else true)

let interval_contains_prop =
  QCheck.Test.make ~name:"contains implies member subsumption" ~count:300
    QCheck.(triple (make gen_interval) (make gen_interval) (int_range (-25) 25))
    (fun (a, b, v) ->
      if Interval.contains a b then (not (member v b)) || member v a else true)

let interval_roundtrip_prop =
  QCheck.Test.make ~name:"to_pred/of_pred roundtrip" ~count:300
    (QCheck.make gen_interval)
    (fun iv ->
      QCheck.assume (not (Interval.is_empty iv));
      let r = { Expr.rel = None; col = "x" } in
      match Interval.of_pred (Interval.to_pred r iv) with
      | Some (_, iv') ->
          (* the reconstructed interval denotes the same set *)
          List.for_all
            (fun v -> member v iv = member v iv')
            (List.init 61 (fun i -> i - 30))
      | None -> Interval.is_full iv (* Ptrue has no interval form *))

(* ---- fixture: purchase-like database for rewrite/planner tests ------------- *)

let small_purchase ?(rows = 2000) ?(late = 0.01) () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows; late_fraction = late }
    db;
  Core.Softdb.runstats sdb;
  sdb

let tpcd_db () =
  let sdb = Core.Softdb.create () in
  Workload.Tpcd.load
    ~config:
      {
        Workload.Tpcd.default_config with
        customers = 200;
        orders = 800;
        sales_rows = 60;
      }
    (Core.Softdb.db sdb);
  Workload.Tpcd.create_sales
    ~config:{ Workload.Tpcd.default_config with sales_rows = 60 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let rules_fired report =
  List.map (fun a -> a.Rewrite.rule) report.Explain.applied
  |> List.sort_uniq String.compare

(* ---- join elimination -------------------------------------------------------- *)

let test_join_elimination_fires () =
  let sdb = tpcd_db () in
  List.iter
    (fun sql ->
      let base = Core.Softdb.query_baseline sdb sql in
      let opt = Core.Softdb.query sdb sql in
      let report = Core.Softdb.explain sdb sql in
      check tbool ("fired on: " ^ sql) true
        (List.mem "join_elimination" (rules_fired report));
      check tbool ("sound on: " ^ sql) true (Exec.Executor.same_rows base opt);
      check tbool "less work" true
        (opt.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned
        < base.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned))
    Workload.Queries.join_elimination_suite

let test_join_elimination_negative () =
  let sdb = tpcd_db () in
  let report = Core.Softdb.explain sdb Workload.Queries.join_elimination_negative in
  check tbool "does not fire when parent columns are used" false
    (List.mem "join_elimination" (rules_fired report));
  let base = Core.Softdb.query_baseline sdb Workload.Queries.join_elimination_negative in
  let opt = Core.Softdb.query sdb Workload.Queries.join_elimination_negative in
  check tbool "still sound" true (Exec.Executor.same_rows base opt)

let test_join_elimination_requires_fk () =
  (* same-shaped join between unrelated tables must not be eliminated *)
  let sdb = tpcd_db () in
  let sql =
    "SELECT n.n_name FROM nation n, customer c WHERE n.n_nationkey = \
     c.c_custkey"
  in
  let report = Core.Softdb.explain sdb sql in
  check tbool "no fk, no elimination" false
    (List.mem "join_elimination" (rules_fired report))

let test_join_elimination_nullable_fk_adds_not_null () =
  (* orders.o_custkey is NOT NULL in our schema, so build a nullable case *)
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE parent (pk INT PRIMARY KEY, v INT);
        CREATE TABLE child (ck INT PRIMARY KEY, fk INT,
          CONSTRAINT cfk FOREIGN KEY (fk) REFERENCES parent (pk) NOT ENFORCED);
        INSERT INTO parent VALUES (1, 10), (2, 20);
        INSERT INTO child VALUES (1, 1), (2, 2), (3, NULL);");
  Core.Softdb.runstats sdb;
  let sql = "SELECT c.ck FROM child c, parent p WHERE c.fk = p.pk" in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tint "inner join drops the null-fk row" 2
    (List.length base.Exec.Executor.rows);
  check tbool "sound with nullable fk" true (Exec.Executor.same_rows base opt)

(* ---- predicate introduction ---------------------------------------------------- *)

let test_predicate_introduction () =
  let sdb = small_purchase () in
  (* install a mined 100% diff band as an ASC *)
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"ship_asc" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b100)));
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15) in
  let report = Core.Softdb.explain sdb sql in
  check tbool "introduction fired" true
    (List.mem "predicate_introduction" (rules_fired report));
  (* plan must now use the order_date index *)
  let rec uses_index = function
    | Exec.Plan.Index_scan { index = "purchase_order_date_idx"; _ } -> true
    | Exec.Plan.Seq_scan _ | Exec.Plan.Index_scan _
    | Exec.Plan.Index_only_scan _ | Exec.Plan.Partition_scan _ ->
        false
    | Exec.Plan.Scatter_gather { children; _ } ->
        List.exists (fun (_, p) -> uses_index p) children
    | Exec.Plan.Filter { input; _ }
    | Exec.Plan.Limit { input; _ }
    | Exec.Plan.Sort { input; _ }
    | Exec.Plan.Project { input; _ }
    | Exec.Plan.Group { input; _ } ->
        uses_index input
    | Exec.Plan.Distinct i -> uses_index i
    | Exec.Plan.Nested_loop_join { left; right; _ }
    | Exec.Plan.Hash_join { left; right; _ }
    | Exec.Plan.Merge_join { left; right; _ } ->
        uses_index left || uses_index right
    | Exec.Plan.Union_all l -> List.exists uses_index l
  in
  check tbool "index path opened" true (uses_index report.Explain.plan);
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "sound" true (Exec.Executor.same_rows base opt);
  check tbool "fewer pages" true
    (opt.Exec.Executor.counters.Exec.Operators.Counters.pages_read
    < base.Exec.Executor.counters.Exec.Operators.Counters.pages_read)

let test_predicate_introduction_needs_validity () =
  (* an SSC (99%) must NOT be used for executable introduction *)
  let sdb = small_purchase () in
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b99 = Option.get (Mining.Diff_band.band_with d ~confidence:0.99) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"ship_ssc" ~table:"purchase"
       ~kind:(Core.Soft_constraint.Statistical b99.Mining.Diff_band.confidence)
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b99)));
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15) in
  let report = Core.Softdb.explain sdb sql in
  check tbool "no executable introduction from an SSC" false
    (List.mem "predicate_introduction" (rules_fired report));
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "sound" true (Exec.Executor.same_rows base opt)

(* ---- exception union ------------------------------------------------------------- *)

let setup_exception_db ?(rows = 3000) () =
  let sdb = small_purchase ~rows ~late:0.02 () in
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b99 = Option.get (Mining.Diff_band.band_with d ~confidence:0.99) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"ship_band" ~table:"purchase"
       ~kind:(Core.Soft_constraint.Statistical b99.Mining.Diff_band.confidence)
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b99)));
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_shipments FOR CONSTRAINT ship_band");
  sdb

let test_exception_union_sound () =
  let sdb = setup_exception_db () in
  List.iter
    (fun day ->
      let sql = Workload.Queries.purchase_ship_eq day in
      let report = Core.Softdb.explain sdb sql in
      check tbool "exception union fired" true
        (List.mem "exception_union" (rules_fired report));
      let base = Core.Softdb.query_baseline sdb sql in
      let opt = Core.Softdb.query sdb sql in
      check tbool "answers identical" true (Exec.Executor.same_rows base opt);
      check tbool "cheaper" true
        (opt.Exec.Executor.counters.Exec.Operators.Counters.pages_read
        < base.Exec.Executor.counters.Exec.Operators.Counters.pages_read))
    [ Date.of_ymd 1999 3 1; Date.of_ymd 1999 6 15; Date.of_ymd 1999 12 20 ]

let test_exception_union_stays_correct_under_updates () =
  let sdb = setup_exception_db () in
  let db = Core.Softdb.db sdb in
  (* insert fresh rows, half violating *)
  let rng = Stats.Rng.create 55 in
  Workload.Purchase.insert_batch ~violating:0.5 ~rng ~start_id:1_000_000
    ~count:200 db;
  let sql = Workload.Queries.purchase_ship_range (Date.of_ymd 1999 7 1)
      (Date.of_ymd 1999 7 14) in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "still identical after violating updates" true
    (Exec.Executor.same_rows base opt)

(* ---- union-all pruning -------------------------------------------------------------- *)

let test_unionall_pruning () =
  let sdb = tpcd_db () in
  let sql =
    Workload.Tpcd.sales_union_sql ~date_lo:(Date.of_ymd 1999 1 10)
      ~date_hi:(Date.of_ymd 1999 3 20)
  in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  let report = Core.Softdb.explain sdb sql in
  check tbool "pruning fired" true
    (List.mem "unionall_pruning" (rules_fired report));
  check tbool "sound" true (Exec.Executor.same_rows base opt);
  (match report.Explain.plan with
  | Exec.Plan.Union_all branches ->
      check tint "three branches survive" 3 (List.length branches)
  | _ -> Alcotest.fail "expected union all plan");
  check tbool "scans 3/12 of the rows" true
    (opt.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned * 3
    <= base.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned)

(* ---- hole trimming ---------------------------------------------------------------- *)

let holes_db () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE hleft (j INT PRIMARY KEY, a INT NOT NULL);
        CREATE TABLE hright (j INT NOT NULL, b INT NOT NULL);");
  let rng = Stats.Rng.create 31 in
  let k = ref 0 in
  while !k < 1200 do
    let a = Stats.Rng.int rng 100 and b = Stats.Rng.int rng 100 in
    (* planted hole: no pairs with a in [20,50) and b in [30,70) *)
    if not (a >= 20 && a < 50 && b >= 30 && b < 70) then begin
      incr k;
      ignore
        (Database.insert db ~table:"hleft"
           (Tuple.make [ Value.Int !k; Value.Int a ]));
      ignore
        (Database.insert db ~table:"hright"
           (Tuple.make [ Value.Int !k; Value.Int b ]))
    end
  done;
  Core.Softdb.runstats sdb;
  let left = Database.table_exn db "hleft"
  and right = Database.table_exn db "hright" in
  let h =
    Option.get
      (Mining.Join_holes.mine ~grid:25 ~left ~right ~join_left:"j"
         ~join_right:"j" ~left_col:"a" ~right_col:"b" ())
  in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"hole_sc" ~table:"hleft"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations left)
       (Core.Soft_constraint.Holes_stmt h));
  sdb

let test_hole_trimming () =
  let sdb = holes_db () in
  (* A-range inside the hole's A span; B range overlapping the hole *)
  let sql =
    "SELECT * FROM hleft l, hright r WHERE l.j = r.j AND l.a BETWEEN 25 AND \
     45 AND r.b BETWEEN 10 AND 65"
  in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  let report = Core.Softdb.explain sdb sql in
  check tbool "trimming fired" true
    (List.mem "hole_trimming" (rules_fired report));
  check tbool "sound" true (Exec.Executor.same_rows base opt)

let test_hole_trimming_empty_range () =
  let sdb = holes_db () in
  let sql =
    "SELECT * FROM hleft l, hright r WHERE l.j = r.j AND l.a BETWEEN 25 AND \
     45 AND r.b BETWEEN 35 AND 60"
  in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tint "truly empty" 0 (List.length base.Exec.Executor.rows);
  check tbool "sound" true (Exec.Executor.same_rows base opt)

(* ---- FD simplification ---------------------------------------------------------------- *)

let test_fd_simplification () =
  let sdb = tpcd_db () in
  let db = Core.Softdb.db sdb in
  let nation = Database.table_exn db "nation" in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"nation_fd" ~table:"nation"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations nation)
       (Core.Soft_constraint.Fd_stmt
          { Mining.Fd_mine.table = "nation"; lhs = [ "n_nationkey" ];
            rhs = "n_name" }));
  (* ORDER BY: second key redundant *)
  let base = Core.Softdb.query_baseline sdb Workload.Queries.fd_order_by in
  let opt = Core.Softdb.query sdb Workload.Queries.fd_order_by in
  let report = Core.Softdb.explain sdb Workload.Queries.fd_order_by in
  check tbool "fd fired on order by" true
    (List.mem "fd_simplification" (rules_fired report));
  check tbool "same ordered output" true
    (base.Exec.Executor.rows = opt.Exec.Executor.rows);
  (* GROUP BY: n_name dropped from keys, recovered via MIN *)
  let base_g = Core.Softdb.query_baseline sdb Workload.Queries.fd_group_by in
  let opt_g = Core.Softdb.query sdb Workload.Queries.fd_group_by in
  let report_g = Core.Softdb.explain sdb Workload.Queries.fd_group_by in
  check tbool "fd fired on group by" true
    (List.mem "fd_simplification" (rules_fired report_g));
  check tbool "same groups" true (Exec.Executor.same_rows base_g opt_g)

(* ---- twinning & estimation ---------------------------------------------------------- *)

let twin_db () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Workload.Project.load db;
  Core.Softdb.runstats sdb;
  let tbl = Database.table_exn db "project" in
  let d =
    Option.get (Mining.Diff_band.mine tbl ~col_hi:"end_date" ~col_lo:"start_date")
  in
  let b90 = Option.get (Mining.Diff_band.band_with d ~confidence:0.9) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"proj_band" ~table:"project"
       ~kind:(Core.Soft_constraint.Statistical b90.Mining.Diff_band.confidence)
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b90)));
  sdb

let qerror est truth =
  let est = max est 1.0 and truth = max truth 1.0 in
  if est > truth then est /. truth else truth /. est

let test_twinning_improves_estimates () =
  let sdb = twin_db () in
  let db = Core.Softdb.db sdb in
  let worst_indep = ref 0.0 and worst_twin = ref 0.0 in
  List.iter
    (fun day ->
      let sql = Workload.Queries.project_active_on day in
      let truth = float_of_int (Workload.Project.active_on db day) in
      let indep =
        (Core.Softdb.explain ~flags:Rewrite.all_off sdb sql)
          .Explain.estimated_cardinality
      in
      let twin = (Core.Softdb.explain sdb sql).Explain.estimated_cardinality in
      worst_indep := max !worst_indep (qerror indep truth);
      worst_twin := max !worst_twin (qerror twin truth))
    [
      Date.of_ymd 1998 6 1; Date.of_ymd 1998 9 1; Date.of_ymd 1999 3 1;
      Date.of_ymd 1999 9 1;
    ];
  check tbool "twinning shrinks worst-case q-error by >= 3x" true
    (!worst_twin *. 3.0 <= !worst_indep)

let test_twins_never_execute () =
  let sdb = twin_db () in
  let sql = Workload.Queries.project_active_on (Date.of_ymd 1998 9 1) in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "answers unchanged by twinning" true
    (Exec.Executor.same_rows base opt)

let test_blended_selectivity_formula () =
  (* E = c*E1 + (1-c)*E0 exactly *)
  let sdb = twin_db () in
  let env =
    { Selectivity.db = Core.Softdb.db sdb;
      stats = Core.Softdb.statistics sdb }
  in
  let regular = [ p "start_date <= DATE '1998-09-01'";
                  p "end_date >= DATE '1998-09-01'" ] in
  let twin_pred = p "start_date >= DATE '1998-08-27'" in
  let e0 = Selectivity.conjunct_selectivity env ~table:"project" regular in
  let e1 =
    Selectivity.conjunct_selectivity env ~table:"project"
      [ List.nth regular 0; twin_pred ]
  in
  let blended =
    Selectivity.blended_selectivity env ~table:"project" ~regular
      ~twins:
        [
          { Selectivity.t_pred = twin_pred; t_confidence = 0.9;
            t_replaces = Some "end_date" };
        ]
  in
  check (tfloat 1e-9) "exact blend" ((0.9 *. e1) +. (0.1 *. e0)) blended

(* ---- planner --------------------------------------------------------------------------- *)

let test_planner_access_path () =
  let sdb = small_purchase () in
  (* selective range on the indexed column -> index scan *)
  let r1 =
    Core.Softdb.explain sdb
      "SELECT * FROM purchase WHERE order_date BETWEEN DATE '1999-06-01' AND \
       DATE '1999-06-03'"
  in
  (match r1.Explain.plan with
  | Exec.Plan.Index_scan _ -> ()
  | pl -> Alcotest.failf "expected index scan, got %s" (Exec.Plan.to_string pl));
  (* unselective range -> seq scan *)
  let r2 =
    Core.Softdb.explain sdb
      "SELECT * FROM purchase WHERE order_date >= DATE '1999-01-15'"
  in
  match r2.Explain.plan with
  | Exec.Plan.Seq_scan _ -> ()
  | pl -> Alcotest.failf "expected seq scan, got %s" (Exec.Plan.to_string pl)

let test_planner_join_order () =
  let sdb = tpcd_db () in
  (* selective filter on customer should put customer on the build side /
     start of the greedy order; mostly we check it runs and is correct *)
  let sql =
    "SELECT o.o_orderkey, c.c_name FROM orders o, customer c WHERE \
     o.o_custkey = c.c_custkey AND c.c_acctbal > 9000"
  in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "join sound" true (Exec.Executor.same_rows base opt)

let test_planner_group_order_limit () =
  let sdb = tpcd_db () in
  let sql =
    "SELECT o.o_custkey, COUNT(*) AS n, SUM(o.o_totalprice) AS total FROM \
     orders o GROUP BY o.o_custkey ORDER BY n DESC, o_custkey LIMIT 5"
  in
  let r = Core.Softdb.query sdb sql in
  check tint "limit applied" 5 (List.length r.Exec.Executor.rows);
  (* verify descending counts *)
  let counts =
    List.map (fun row -> Value.int_exn (Tuple.get row 1)) r.Exec.Executor.rows
  in
  let rec sorted_desc = function
    | a :: b :: tl -> a >= b && sorted_desc (b :: tl)
    | _ -> true
  in
  check tbool "sorted desc" true (sorted_desc counts)

(* ---- global soundness property -------------------------------------------------------- *)

(* Random single-table and two-table queries over purchase: the full
   rewrite pipeline (with ASC + SSC + exceptions installed) must never
   change answers. *)
let rewrite_soundness_prop =
  let sdb = setup_exception_db ~rows:1500 () in
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"ship_asc_prop" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b100)));
  let gen =
    QCheck.Gen.(
      let day = map (fun d -> Date.add_days Workload.Purchase.base_date d)
          (int_range 0 400) in
      let qty = int_range 1 50 in
      oneof
        [
          map
            (fun d ->
              Printf.sprintf "SELECT * FROM purchase WHERE ship_date = DATE '%s'"
                (Date.to_string d))
            day;
          map2
            (fun d1 d2 ->
              let lo = min d1 d2 and hi = max d1 d2 in
              Printf.sprintf
                "SELECT id, amount FROM purchase WHERE ship_date BETWEEN DATE \
                 '%s' AND DATE '%s' AND quantity > 10"
                (Date.to_string lo) (Date.to_string hi))
            day day;
          map2
            (fun d q ->
              Printf.sprintf
                "SELECT region, COUNT(*) AS n FROM purchase WHERE order_date \
                 <= DATE '%s' AND quantity = %d GROUP BY region ORDER BY \
                 region"
                (Date.to_string d) q)
            day qty;
        ])
  in
  QCheck.Test.make ~name:"full rewrite pipeline preserves answers" ~count:40
    (QCheck.make gen ~print:Fun.id)
    (fun sql ->
      let base = Core.Softdb.query_baseline sdb sql in
      let opt = Core.Softdb.query sdb sql in
      Exec.Executor.same_rows base opt)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "opt"
    [
      ( "interval",
        [
          Alcotest.test_case "constant folding" `Quick
            test_simplify_folds_constants;
          Alcotest.test_case "isolation" `Quick test_isolation;
          Alcotest.test_case "interval ops" `Quick test_interval_ops;
          Alcotest.test_case "unsatisfiable" `Quick test_unsatisfiable;
          Alcotest.test_case "summarize" `Quick test_summarize_residual;
        ] );
      ( "join_elimination",
        [
          Alcotest.test_case "fires and is sound" `Quick
            test_join_elimination_fires;
          Alcotest.test_case "negative: parent used" `Quick
            test_join_elimination_negative;
          Alcotest.test_case "negative: no fk" `Quick
            test_join_elimination_requires_fk;
          Alcotest.test_case "nullable fk" `Quick
            test_join_elimination_nullable_fk_adds_not_null;
        ] );
      ( "predicate_introduction",
        [
          Alcotest.test_case "opens index path" `Quick
            test_predicate_introduction;
          Alcotest.test_case "ssc not introducible" `Quick
            test_predicate_introduction_needs_validity;
        ] );
      ( "exception_union",
        [
          Alcotest.test_case "sound and cheaper" `Quick
            test_exception_union_sound;
          Alcotest.test_case "correct under violating updates" `Quick
            test_exception_union_stays_correct_under_updates;
        ] );
      ( "unionall_pruning",
        [ Alcotest.test_case "prunes to 3 branches" `Quick test_unionall_pruning ]
      );
      ( "hole_trimming",
        [
          Alcotest.test_case "trims and stays sound" `Quick test_hole_trimming;
          Alcotest.test_case "empty range" `Quick test_hole_trimming_empty_range;
        ] );
      ( "fd_simplification",
        [ Alcotest.test_case "order/group simplified" `Quick
            test_fd_simplification ] );
      ( "twinning",
        [
          Alcotest.test_case "improves estimates" `Quick
            test_twinning_improves_estimates;
          Alcotest.test_case "never executes" `Quick test_twins_never_execute;
          Alcotest.test_case "blend formula" `Quick
            test_blended_selectivity_formula;
        ] );
      ( "planner",
        [
          Alcotest.test_case "access path" `Quick test_planner_access_path;
          Alcotest.test_case "join order" `Quick test_planner_join_order;
          Alcotest.test_case "group/order/limit" `Quick
            test_planner_group_order_limit;
        ] );
      ( "interval-properties",
        qsuite
          [
            interval_intersect_prop; interval_empty_prop;
            interval_contains_prop; interval_roundtrip_prop;
          ] );
      ("soundness", qsuite [ rewrite_soundness_prop ]);
    ]
