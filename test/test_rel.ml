(* Unit and property tests for the storage substrate: dates, values,
   three-valued logic, schemas, tuples, the B+-tree, heap tables,
   indexes, the constraint checker, the catalog, and CSV round trips. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let check_raises_any msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an exception" msg
  | exception _ -> ()
let tstring = Alcotest.string

(* ---- dates ---------------------------------------------------------------- *)

let test_date_roundtrip () =
  List.iter
    (fun (y, m, d) ->
      let t = Date.of_ymd y m d in
      check (Alcotest.triple tint tint tint) "ymd" (y, m, d) (Date.to_ymd t))
    [
      (1970, 1, 1); (2000, 2, 29); (1999, 12, 31); (2001, 1, 1);
      (1900, 3, 1); (2024, 2, 29); (1, 1, 1); (9999, 12, 31);
    ]

let test_date_epoch () =
  check tint "epoch day" 0 (Date.of_ymd 1970 1 1);
  check tint "day after epoch" 1 (Date.of_ymd 1970 1 2);
  check tint "day before epoch" (-1) (Date.of_ymd 1969 12 31)

let test_date_arithmetic () =
  let d = Date.of_ymd 1999 12 15 in
  check tstring "21 days later" "2000-01-05"
    (Date.to_string (Date.add_days d 21));
  check tint "diff" 21 (Date.diff_days (Date.add_days d 21) d)

let test_date_parse () =
  check tstring "roundtrip" "1999-11-15"
    (Date.to_string (Date.of_string "1999-11-15"));
  check (Alcotest.option tint) "bad month" None
    (Option.map (fun x -> x) (Date.of_string_opt "1999-13-01"));
  check (Alcotest.option tint) "bad day" None
    (Option.map (fun x -> x) (Date.of_string_opt "1999-02-30"))

let test_date_leap () =
  check tbool "2000 leap" true (Date.is_leap_year 2000);
  check tbool "1900 not leap" false (Date.is_leap_year 1900);
  check tbool "2024 leap" true (Date.is_leap_year 2024);
  check tint "feb 2024" 29 (Date.days_in_month ~year:2024 ~month:2)

let date_qcheck =
  QCheck.Test.make ~name:"date civil<->days roundtrip" ~count:1000
    (QCheck.int_range (-700_000) 2_900_000)
    (fun days ->
      let y, m, d = Date.to_ymd days in
      Date.of_ymd y m d = days)

(* ---- values --------------------------------------------------------------- *)

let test_value_compare_total () =
  check tbool "int < int" true (Value.compare_total (Value.Int 1) (Value.Int 2) < 0);
  check tbool "int vs float equal" true
    (Value.compare_total (Value.Int 3) (Value.Float 3.0) = 0);
  check tbool "null first" true
    (Value.compare_total Value.Null (Value.Int min_int) < 0);
  check tbool "strings" true
    (Value.compare_total (Value.String "a") (Value.String "b") < 0)

let test_value_sql_compare () =
  check tbool "null incomparable" true
    (Value.compare_sql Value.Null (Value.Int 1) = None);
  check tbool "comparable" true
    (Value.compare_sql (Value.Int 1) (Value.Int 1) = Some 0)

let test_three_valued_logic () =
  let open Value in
  check tbool "T and U = U" true (truth_and True Unknown = Unknown);
  check tbool "F and U = F" true (truth_and False Unknown = False);
  check tbool "T or U = T" true (truth_or True Unknown = True);
  check tbool "F or U = U" true (truth_or False Unknown = Unknown);
  check tbool "not U = U" true (truth_not Unknown = Unknown)

let truth_gen = QCheck.oneofl [ Value.True; Value.False; Value.Unknown ]

let tvl_de_morgan =
  QCheck.Test.make ~name:"3VL De Morgan" ~count:200
    (QCheck.pair truth_gen truth_gen)
    (fun (a, b) ->
      Value.truth_not (Value.truth_and a b)
      = Value.truth_or (Value.truth_not a) (Value.truth_not b))

let test_value_arithmetic () =
  check tbool "date minus date" true
    (Value.sub (Value.Date 10) (Value.Date 3) = Value.Int 7);
  check tbool "date plus int" true
    (Value.add (Value.Date 10) (Value.Int 5) = Value.Date 15);
  check tbool "null propagates" true (Value.add Value.Null (Value.Int 1) = Value.Null);
  check tbool "div by zero is null" true
    (Value.div (Value.Int 10) (Value.Int 0) = Value.Null);
  check tbool "int widen" true (Value.mul (Value.Int 2) (Value.Float 1.5) = Value.Float 3.0)

let test_value_conforms () =
  check tbool "null ok anywhere" true (Value.conforms Value.TInt Value.Null);
  check tbool "int for float" true (Value.conforms Value.TFloat (Value.Int 3));
  check tbool "string not int" false
    (Value.conforms Value.TInt (Value.String "x"))

(* ---- expressions ----------------------------------------------------------- *)

let row_binding =
  Expr.Binding.of_schema
    (Schema.make "t"
       [
         Schema.column "a" Value.TInt;
         Schema.column "b" Value.TInt;
         Schema.column "c" Value.TString;
       ])

let row a b c = Tuple.make [ a; b; c ]

let test_expr_eval () =
  let e =
    Expr.Binop (Expr.Add, Expr.column "a", Expr.Binop (Expr.Mul, Expr.int 2, Expr.column "b"))
  in
  check tbool "a + 2b" true
    (Expr.eval row_binding e (row (Value.Int 1) (Value.Int 3) Value.Null)
    = Value.Int 7)

let test_pred_eval () =
  let p = Expr.Cmp (Expr.Gt, Expr.column "a", Expr.column "b") in
  let sat a b =
    Expr.satisfies row_binding p (row a b Value.Null)
  in
  check tbool "3 > 2" true (sat (Value.Int 3) (Value.Int 2));
  check tbool "2 > 3 false" false (sat (Value.Int 2) (Value.Int 3));
  check tbool "null unknown filters" false (sat Value.Null (Value.Int 3))

let test_check_semantics () =
  (* CHECK passes on UNKNOWN *)
  let p = Expr.Cmp (Expr.Gt, Expr.column "a", Expr.int 0) in
  check tbool "null passes check" false
    (Expr.check_violated row_binding p (row Value.Null (Value.Int 1) Value.Null));
  check tbool "violating row" true
    (Expr.check_violated row_binding p (row (Value.Int (-1)) (Value.Int 1) Value.Null))

let test_compile_agrees_with_eval () =
  let preds =
    [
      Expr.Cmp (Expr.Le, Expr.column "a", Expr.column "b");
      Expr.Between (Expr.column "a", Expr.int 0, Expr.int 10);
      Expr.In_list (Expr.column "c", [ Value.String "x"; Value.Null ]);
      Expr.Or
        ( Expr.Is_null (Expr.column "a"),
          Expr.Not (Expr.Cmp (Expr.Eq, Expr.column "b", Expr.int 5)) );
    ]
  in
  let rows =
    [
      row (Value.Int 1) (Value.Int 5) (Value.String "x");
      row Value.Null (Value.Int 5) (Value.String "y");
      row (Value.Int 11) Value.Null Value.Null;
    ]
  in
  List.iter
    (fun p ->
      let compiled = Expr.compile_pred row_binding p in
      List.iter
        (fun r ->
          check tbool "compiled = eval" true
            (compiled r = Expr.eval_pred row_binding p r))
        rows)
    preds

(* ---- B+-tree ---------------------------------------------------------------- *)

module Itree = Bptree.Make (Int)

let test_bptree_basic () =
  let t = Itree.create ~b:2 () in
  for i = 1 to 100 do
    ignore (Itree.insert t i (i * 10))
  done;
  Itree.validate t;
  check tint "length" 100 (Itree.length t);
  check (Alcotest.option tint) "find 42" (Some 420) (Itree.find t 42);
  check (Alcotest.option tint) "find 0" None (Itree.find t 0);
  check tbool "replace" true (Itree.insert t 42 0);
  check (Alcotest.option tint) "replaced" (Some 0) (Itree.find t 42);
  check tint "same length" 100 (Itree.length t)

let test_bptree_delete () =
  let t = Itree.create ~b:2 () in
  for i = 1 to 50 do
    ignore (Itree.insert t i i)
  done;
  for i = 1 to 50 do
    if i mod 2 = 0 then check tbool "removed" true (Itree.remove t i)
  done;
  Itree.validate t;
  check tint "half left" 25 (Itree.length t);
  check tbool "remove missing" false (Itree.remove t 2);
  for i = 1 to 50 do
    check tbool "parity" (i mod 2 = 1) (Itree.find t i <> None)
  done

let test_bptree_range () =
  let t = Itree.create ~b:3 () in
  List.iter (fun i -> ignore (Itree.insert t i i)) [ 5; 1; 9; 3; 7; 2; 8 ];
  let keys lo hi =
    List.map fst (Itree.range t ~lo ~hi)
  in
  check (Alcotest.list tint) "incl range" [ 3; 5; 7 ]
    (keys (Itree.Incl 3) (Itree.Incl 7));
  check (Alcotest.list tint) "excl range" [ 5 ]
    (keys (Itree.Excl 3) (Itree.Excl 7));
  check (Alcotest.list tint) "unbounded" [ 1; 2; 3; 5; 7; 8; 9 ]
    (keys Itree.Unbounded Itree.Unbounded);
  check (Alcotest.option (Alcotest.pair tint tint)) "min" (Some (1, 1))
    (Itree.min_binding t);
  check (Alcotest.option (Alcotest.pair tint tint)) "max" (Some (9, 9))
    (Itree.max_binding t)

module IntMap = Map.Make (Int)

(* the central property: against a reference map, under random
   insert/remove/replace traffic, with invariants checked throughout *)
let bptree_vs_map =
  QCheck.Test.make ~name:"bptree agrees with Map under random ops" ~count:100
    QCheck.(list (pair (int_range 0 2) (int_range 0 200)))
    (fun ops ->
      let t = Itree.create ~b:2 () in
      let m = ref IntMap.empty in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 | 1 ->
              ignore (Itree.insert t k (k * 7));
              m := IntMap.add k (k * 7) !m
          | _ ->
              ignore (Itree.remove t k);
              m := IntMap.remove k !m)
        ops;
      Itree.validate t;
      let from_tree = Itree.to_list t in
      let from_map = IntMap.bindings !m in
      from_tree = from_map)

let bptree_range_vs_map =
  QCheck.Test.make ~name:"bptree range agrees with Map filter" ~count:100
    QCheck.(triple (list (int_range 0 300)) (int_range 0 300) (int_range 0 300))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = Itree.create ~b:4 () in
      let m = ref IntMap.empty in
      List.iter
        (fun k ->
          ignore (Itree.insert t k k);
          m := IntMap.add k k !m)
        keys;
      let got = Itree.range t ~lo:(Itree.Incl lo) ~hi:(Itree.Excl hi) in
      let expected =
        IntMap.bindings !m |> List.filter (fun (k, _) -> k >= lo && k < hi)
      in
      got = expected)

(* empty ranges: every way a scan can legitimately yield nothing *)
let test_bptree_empty_ranges () =
  let empty = Itree.create ~b:2 () in
  check (Alcotest.list (Alcotest.pair tint tint)) "empty tree, unbounded" []
    (Itree.range empty ~lo:Itree.Unbounded ~hi:Itree.Unbounded);
  check tint "fold_range over empty tree" 0
    (Itree.fold_range empty ~lo:(Itree.Incl 0) ~hi:(Itree.Incl 100) ~init:0
       ~f:(fun n _ _ -> n + 1));
  let t = Itree.create ~b:2 () in
  List.iter (fun i -> ignore (Itree.insert t i i)) [ 10; 20; 30; 40; 50 ];
  let keys lo hi = List.map fst (Itree.range t ~lo ~hi) in
  check (Alcotest.list tint) "lo > hi" [] (keys (Itree.Incl 40) (Itree.Incl 20));
  check (Alcotest.list tint) "entirely below min" []
    (keys (Itree.Incl 1) (Itree.Incl 9));
  check (Alcotest.list tint) "entirely above max" []
    (keys (Itree.Incl 51) (Itree.Unbounded));
  check (Alcotest.list tint) "excl/excl adjacent keys" []
    (keys (Itree.Excl 20) (Itree.Excl 30));
  check (Alcotest.list tint) "excl/excl same key" []
    (keys (Itree.Excl 30) (Itree.Excl 30));
  check (Alcotest.list tint) "incl/excl same key" [ 30 ]
    (keys (Itree.Incl 30) (Itree.Excl 31))

(* re-inserting (replacing) keys right at node-split boundaries: with
   b:2 splits happen every few inserts, so the separator keys pushed up
   into inner nodes are exactly the keys being replaced — a replace must
   update the leaf binding without duplicating or re-splitting *)
let test_bptree_duplicates_at_split_boundaries () =
  let t = Itree.create ~b:2 () in
  for i = 1 to 64 do
    check tbool "fresh insert" false (Itree.insert t i i)
  done;
  Itree.validate t;
  (* every key gets replaced, in an order that hammers the separators *)
  for i = 64 downto 1 do
    check tbool "replace reported" true (Itree.insert t i (i * 100))
  done;
  Itree.validate t;
  check tint "length stable under replaces" 64 (Itree.length t);
  for i = 1 to 64 do
    check (Alcotest.option tint)
      (Printf.sprintf "replaced %d" i)
      (Some (i * 100)) (Itree.find t i)
  done;
  (* replace again while interleaving fresh inserts beyond the boundary *)
  for i = 1 to 64 do
    ignore (Itree.insert t i (i * 7));
    ignore (Itree.insert t (i + 1000) i)
  done;
  Itree.validate t;
  check tint "only the fresh keys grew the tree" 128 (Itree.length t)

let test_bptree_reverse_iteration () =
  let t = Itree.create ~b:3 () in
  List.iter (fun i -> ignore (Itree.insert t i (i * 2)))
    [ 5; 1; 9; 3; 7; 2; 8; 4; 6 ];
  let fwd lo hi =
    Itree.fold_range t ~lo ~hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc)
    |> List.rev
  in
  let rev lo hi =
    Itree.fold_range_rev t ~lo ~hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc)
    |> List.rev
  in
  let bounds =
    [
      (Itree.Unbounded, Itree.Unbounded);
      (Itree.Incl 3, Itree.Incl 7);
      (Itree.Excl 3, Itree.Excl 7);
      (Itree.Incl 8, Itree.Unbounded);
      (Itree.Unbounded, Itree.Excl 2);
      (Itree.Incl 7, Itree.Incl 3) (* empty *);
    ]
  in
  List.iter
    (fun (lo, hi) ->
      check
        (Alcotest.list (Alcotest.pair tint tint))
        "reverse = List.rev forward" (List.rev (fwd lo hi)) (rev lo hi))
    bounds;
  (* and on a deep tree, where descending traversal crosses many leaves *)
  let big = Itree.create ~b:2 () in
  for i = 1 to 200 do
    ignore (Itree.insert big i i)
  done;
  let desc =
    Itree.fold_range_rev big ~lo:(Itree.Incl 50) ~hi:(Itree.Excl 150) ~init:[]
      ~f:(fun acc k _ -> k :: acc)
  in
  check (Alcotest.list tint) "descending window"
    (List.init 100 (fun i -> i + 50))
    desc

(* ---- tables / indexes -------------------------------------------------------- *)

let people_schema =
  Schema.make "people"
    [
      Schema.column ~nullable:false "id" Value.TInt;
      Schema.column "name" Value.TString;
      Schema.column "age" Value.TInt;
    ]

let test_table_crud () =
  let t = Table.create people_schema in
  let r1 = Table.insert t (Tuple.make [ Value.Int 1; Value.String "ann"; Value.Int 31 ]) in
  let r2 = Table.insert t (Tuple.make [ Value.Int 2; Value.String "bob"; Value.Int 25 ]) in
  check tint "cardinality" 2 (Table.cardinality t);
  check tbool "get" true
    (Tuple.get (Table.get_exn t r1) 1 = Value.String "ann");
  Table.update t r2 (Tuple.make [ Value.Int 2; Value.String "rob"; Value.Int 26 ]);
  check tbool "updated" true
    (Tuple.get (Table.get_exn t r2) 1 = Value.String "rob");
  check tbool "delete" true (Table.delete t r1);
  check tbool "gone" true (Table.get t r1 = None);
  check tint "one left" 1 (Table.cardinality t);
  check tint "mutations counted" 4 (Table.mutations t)

let test_table_schema_enforcement () =
  let t = Table.create people_schema in
  Alcotest.check_raises "null pk" (Table.Row_error
    "null value for NOT NULL column people.id")
    (fun () ->
      ignore (Table.insert t (Tuple.make [ Value.Null; Value.Null; Value.Null ])));
  Alcotest.check_raises "arity"
    (Table.Row_error "arity mismatch: 2 values for 3 columns (table people)")
    (fun () -> ignore (Table.insert t (Tuple.make [ Value.Int 1; Value.Null ])))

let test_index_maintenance () =
  let t = Table.create people_schema in
  let rids =
    List.map
      (fun (i, n, a) ->
        Table.insert t
          (Tuple.make [ Value.Int i; Value.String n; Value.Int a ]))
      [ (1, "ann", 30); (2, "bob", 30); (3, "cid", 40) ]
  in
  let idx = Index.create ~name:"people_age" ~table:t ~columns:[ "age" ] () in
  check tint "two distinct ages" 2 (Index.distinct_keys idx);
  check tint "age 30 rids" 2
    (List.length (Index.lookup_value idx (Value.Int 30)));
  (* delete and re-check *)
  let r1 = List.hd rids in
  let row = Table.get_exn t r1 in
  ignore (Table.delete t r1);
  Index.on_delete idx r1 row;
  check tint "age 30 now 1" 1
    (List.length (Index.lookup_value idx (Value.Int 30)));
  (* range *)
  check tint "range 30..40" 2
    (List.length
       (Index.range idx ~lo:(Index.Incl (Value.Int 30))
          ~hi:(Index.Incl (Value.Int 40))))

let test_unique_index () =
  let t = Table.create people_schema in
  ignore (Table.insert t (Tuple.make [ Value.Int 1; Value.Null; Value.Null ]));
  ignore (Table.insert t (Tuple.make [ Value.Int 1; Value.Null; Value.Null ]));
  check tbool "duplicate detected" true
    (try
       ignore (Index.create ~name:"u" ~table:t ~columns:[ "id" ] ~unique:true ());
       false
     with Index.Unique_violation _ -> true)

(* ---- database + constraints --------------------------------------------------- *)

let setup_db () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "dept"
          [
            Schema.column ~nullable:false "dept_id" Value.TInt;
            Schema.column "dname" Value.TString;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "emp"
          [
            Schema.column ~nullable:false "emp_id" Value.TInt;
            Schema.column "dept_id" Value.TInt;
            Schema.column "salary" Value.TInt;
          ]));
  Database.add_constraint db
    (Icdef.make ~name:"dept_pk" ~table:"dept" (Icdef.Primary_key [ "dept_id" ]));
  Database.add_constraint db
    (Icdef.make ~name:"emp_pk" ~table:"emp" (Icdef.Primary_key [ "emp_id" ]));
  Database.add_constraint db
    (Icdef.make ~name:"emp_dept_fk" ~table:"emp"
       (Icdef.Foreign_key
          { columns = [ "dept_id" ]; ref_table = "dept";
            ref_columns = [ "dept_id" ] }));
  Database.add_constraint db
    (Icdef.make ~name:"salary_pos" ~table:"emp"
       (Icdef.Check (Expr.Cmp (Expr.Gt, Expr.column "salary", Expr.int 0))));
  ignore
    (Database.insert db ~table:"dept"
       (Tuple.make [ Value.Int 1; Value.String "eng" ]));
  db

let expect_violation name f =
  match f () with
  | exception Checker.Constraint_violation v ->
      check tstring "violated constraint" name v.Checker.constraint_name
  | _ -> Alcotest.fail "expected a constraint violation"

let test_pk_enforced () =
  let db = setup_db () in
  ignore
    (Database.insert db ~table:"emp"
       (Tuple.make [ Value.Int 1; Value.Int 1; Value.Int 100 ]));
  expect_violation "emp_pk" (fun () ->
      Database.insert db ~table:"emp"
        (Tuple.make [ Value.Int 1; Value.Int 1; Value.Int 200 ]))

let test_fk_enforced () =
  let db = setup_db () in
  expect_violation "emp_dept_fk" (fun () ->
      Database.insert db ~table:"emp"
        (Tuple.make [ Value.Int 1; Value.Int 99; Value.Int 100 ]));
  (* null FK passes *)
  ignore
    (Database.insert db ~table:"emp"
       (Tuple.make [ Value.Int 2; Value.Null; Value.Int 100 ]))

let test_fk_restricts_parent_delete () =
  let db = setup_db () in
  ignore
    (Database.insert db ~table:"emp"
       (Tuple.make [ Value.Int 1; Value.Int 1; Value.Int 100 ]));
  expect_violation "emp_dept_fk" (fun () ->
      ignore (Database.delete db ~table:"dept" 0);
      ())

let test_check_enforced () =
  let db = setup_db () in
  expect_violation "salary_pos" (fun () ->
      Database.insert db ~table:"emp"
        (Tuple.make [ Value.Int 1; Value.Int 1; Value.Int (-5) ]))

let test_informational_not_checked () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "t" [ Schema.column "a" Value.TInt ]));
  Database.add_constraint db
    (Icdef.make ~enforcement:Icdef.Informational ~name:"a_pos" ~table:"t"
       (Icdef.Check (Expr.Cmp (Expr.Gt, Expr.column "a", Expr.int 0))));
  (* a violating insert is accepted *)
  ignore (Database.insert db ~table:"t" (Tuple.make [ Value.Int (-1) ]));
  check tint "row in" 1 (Table.cardinality (Database.table_exn db "t"));
  (* but verify sees the violation *)
  let ic = Option.get (Database.find_constraint db "a_pos") in
  check tint "one violation" 1
    (Checker.violation_count (Database.checker_env db) ic)

let test_add_enforced_constraint_validates () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "t" [ Schema.column "a" Value.TInt ]));
  ignore (Database.insert db ~table:"t" (Tuple.make [ Value.Int (-1) ]));
  check tbool "rejected" true
    (try
       Database.add_constraint db
         (Icdef.make ~name:"a_pos" ~table:"t"
            (Icdef.Check (Expr.Cmp (Expr.Gt, Expr.column "a", Expr.int 0))));
       false
     with Database.Catalog_error _ -> true)

let test_mutation_listener () =
  let db = setup_db () in
  let seen = ref [] in
  Database.on_mutation db (fun m ->
      let tag =
        match m with
        | Database.Inserted _ -> "ins"
        | Database.Deleted _ -> "del"
        | Database.Updated _ -> "upd"
      in
      seen := tag :: !seen);
  let rid =
    Database.insert db ~table:"emp"
      (Tuple.make [ Value.Int 1; Value.Int 1; Value.Int 10 ])
  in
  Database.update db ~table:"emp" rid
    (Tuple.make [ Value.Int 1; Value.Int 1; Value.Int 20 ]);
  ignore (Database.delete db ~table:"emp" rid);
  check (Alcotest.list tstring) "events" [ "ins"; "upd"; "del" ]
    (List.rev !seen)

(* ---- CSV --------------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "csvt"
          [
            Schema.column "i" Value.TInt;
            Schema.column "s" Value.TString;
            Schema.column "d" Value.TDate;
            Schema.column "f" Value.TFloat;
            Schema.column "b" Value.TBool;
          ]));
  let rows =
    [
      [ Value.Int 1; Value.String "plain"; Value.Date (Date.of_ymd 1999 1 2);
        Value.Float 1.5; Value.Bool true ];
      [ Value.Int 2; Value.String "with,comma and \"quotes\""; Value.Null;
        Value.Null; Value.Bool false ];
      [ Value.Null; Value.String ""; Value.Date 0; Value.Float (-3.25);
        Value.Null ];
    ]
  in
  List.iter
    (fun r -> ignore (Database.insert db ~table:"csvt" (Tuple.make r)))
    rows;
  let path = Filename.temp_file "softdb" ".csv" in
  Csvio.export (Database.table_exn db "csvt") path;
  ignore
    (Database.create_table db
       (Schema.make "csvt2"
          [
            Schema.column "i" Value.TInt;
            Schema.column "s" Value.TString;
            Schema.column "d" Value.TDate;
            Schema.column "f" Value.TFloat;
            Schema.column "b" Value.TBool;
          ]));
  (* import expects the header names to exist in the target *)
  let n =
    Csvio.import db ~table:"csvt2"
      (let tmp2 = Filename.temp_file "softdb" ".csv" in
       let contents = In_channel.with_open_text path In_channel.input_all in
       let fixed = contents in
       Out_channel.with_open_text tmp2 (fun oc ->
           Out_channel.output_string oc fixed);
       tmp2)
  in
  check tint "imported" 3 n;
  let a = Table.to_list (Database.table_exn db "csvt") in
  let b = Table.to_list (Database.table_exn db "csvt2") in
  check tbool "identical" true (List.for_all2 Tuple.equal a b);
  Sys.remove path

(* A stray bad row must not abort the load: good rows land, each bad one
   is reported with its line number; only an all-bad file raises. *)
let test_csv_degraded_load () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "deg"
          [ Schema.column "i" Value.TInt; Schema.column "s" Value.TString ]));
  let write contents =
    let path = Filename.temp_file "softdb_deg" ".csv" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc contents);
    path
  in
  let path = write "i,s\n1,one\nnotanint,two\n3,three\n4\n5,five\n" in
  let report = Csvio.load db ~table:"deg" path in
  Sys.remove path;
  check tint "good rows loaded" 3 report.Csvio.loaded;
  check tint "stored" 3 (Table.cardinality (Database.table_exn db "deg"));
  check (Alcotest.list tint) "error line numbers" [ 3; 5 ]
    (List.map fst report.Csvio.row_errors);
  (* enforced-constraint rejections degrade the same way *)
  ignore
    (Database.create_table db
       (Schema.make "degk" [ Schema.column "k" Value.TInt ]));
  Database.add_constraint db
    (Icdef.make ~name:"degk_pk" ~table:"degk" (Icdef.Primary_key [ "k" ]));
  let path = write "k\n1\n2\n1\n3\n" in
  let report = Csvio.load db ~table:"degk" path in
  Sys.remove path;
  check tint "dup rejected, rest loaded" 3 report.Csvio.loaded;
  check tint "one violation" 1 (List.length report.Csvio.row_errors);
  (* all rows failing is a hard error *)
  let path = write "i,s\nx,a\ny,b\n" in
  check_raises_any "all rows bad" (fun () ->
      ignore (Csvio.load db ~table:"deg" path));
  Sys.remove path;
  (* a header naming an unknown column is a hard error *)
  let path = write "nosuch\n1\n" in
  check_raises_any "bad header" (fun () ->
      ignore (Csvio.load db ~table:"deg" path));
  Sys.remove path

(* random tables survive an export/import cycle exactly *)
let csv_roundtrip_prop =
  let gen_value =
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map (fun i -> Value.Int i) (int_range (-1000) 1000);
          map (fun f -> Value.Float (Float.of_int f /. 8.0)) (int_range (-800) 800);
          map (fun s -> Value.String s)
            (oneofl [ ""; "plain"; "with,comma"; "with\"quote"; "a'b";
                      "multi word" ]);
          map (fun b -> Value.Bool b) bool;
          map (fun d -> Value.Date d) (int_range (-3000) 3000);
        ])
  in
  let gen_rows =
    QCheck.Gen.(list_size (int_range 0 40)
      (map (fun (a, b, c, d, e) -> [ a; b; c; d; e ])
         (tup5 gen_value gen_value gen_value gen_value gen_value)))
  in
  QCheck.Test.make ~name:"csv export/import roundtrip" ~count:60
    (QCheck.make gen_rows)
    (fun rows ->
      (* coerce each column to a fixed type: null or the matching value *)
      let coerce ty v = if Value.conforms ty v then v else Value.Null in
      let tys =
        [ Value.TInt; Value.TFloat; Value.TString; Value.TBool; Value.TDate ]
      in
      let rows =
        List.map (fun r -> List.map2 coerce tys r) rows
      in
      let db = Database.create () in
      let cols =
        List.mapi
          (fun i ty -> Schema.column (Printf.sprintf "c%d" i) ty)
          tys
      in
      ignore (Database.create_table db (Schema.make "src" cols));
      ignore (Database.create_table db (Schema.make "dst" cols));
      List.iter
        (fun r -> ignore (Database.insert db ~table:"src" (Tuple.make r)))
        rows;
      let path = Filename.temp_file "softdb_prop" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Csvio.export (Database.table_exn db "src") path;
          let n = Csvio.import db ~table:"dst" path in
          n = List.length rows
          && List.for_all2 Tuple.equal
               (Table.to_list (Database.table_exn db "src"))
               (Table.to_list (Database.table_exn db "dst"))))

let date_shift_prop =
  QCheck.Test.make ~name:"add_days/diff_days inverse" ~count:500
    QCheck.(pair (int_range (-500000) 2000000) (int_range (-10000) 10000))
    (fun (d, n) ->
      Date.diff_days (Date.add_days d n) d = n
      && Date.add_days (Date.add_days d n) (-n) = d)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "rel"
    [
      ( "date",
        [
          Alcotest.test_case "roundtrip" `Quick test_date_roundtrip;
          Alcotest.test_case "epoch" `Quick test_date_epoch;
          Alcotest.test_case "arithmetic" `Quick test_date_arithmetic;
          Alcotest.test_case "parse" `Quick test_date_parse;
          Alcotest.test_case "leap" `Quick test_date_leap;
        ]
        @ qsuite [ date_qcheck ] );
      ( "value",
        [
          Alcotest.test_case "compare_total" `Quick test_value_compare_total;
          Alcotest.test_case "compare_sql" `Quick test_value_sql_compare;
          Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
          Alcotest.test_case "arithmetic" `Quick test_value_arithmetic;
          Alcotest.test_case "conforms" `Quick test_value_conforms;
        ]
        @ qsuite [ tvl_de_morgan ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "pred eval" `Quick test_pred_eval;
          Alcotest.test_case "check semantics" `Quick test_check_semantics;
          Alcotest.test_case "compiled agrees" `Quick
            test_compile_agrees_with_eval;
        ] );
      ( "bptree",
        [
          Alcotest.test_case "basic" `Quick test_bptree_basic;
          Alcotest.test_case "delete" `Quick test_bptree_delete;
          Alcotest.test_case "range" `Quick test_bptree_range;
          Alcotest.test_case "empty ranges" `Quick test_bptree_empty_ranges;
          Alcotest.test_case "duplicate keys at split boundaries" `Quick
            test_bptree_duplicates_at_split_boundaries;
          Alcotest.test_case "reverse iteration" `Quick
            test_bptree_reverse_iteration;
        ]
        @ qsuite [ bptree_vs_map; bptree_range_vs_map ] );
      ( "table",
        [
          Alcotest.test_case "crud" `Quick test_table_crud;
          Alcotest.test_case "schema enforcement" `Quick
            test_table_schema_enforcement;
          Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
          Alcotest.test_case "unique index" `Quick test_unique_index;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "pk enforced" `Quick test_pk_enforced;
          Alcotest.test_case "fk enforced" `Quick test_fk_enforced;
          Alcotest.test_case "fk restrict delete" `Quick
            test_fk_restricts_parent_delete;
          Alcotest.test_case "check enforced" `Quick test_check_enforced;
          Alcotest.test_case "informational unchecked" `Quick
            test_informational_not_checked;
          Alcotest.test_case "add constraint validates" `Quick
            test_add_enforced_constraint_validates;
          Alcotest.test_case "mutation listener" `Quick test_mutation_listener;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "degraded load" `Quick test_csv_degraded_load;
        ]
        @ qsuite [ csv_roundtrip_prop; date_shift_prop ] );
    ]
