(* Tests for the benchmark & plan-quality regression harness: the JSON
   codec (round-trip, canonical rendering), the measurement schema
   (versioning, merge, fingerprint), the threshold table and diff gate
   (golden pair: an equal run passes, an injected q-error / rows-scanned
   regression is caught), and end-to-end determinism of a real scenario
   executed twice. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let tfloat = Alcotest.float

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- JSON codec ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let open Benchkit.Json in
  let v =
    Obj
      [
        ("null", Null);
        ("flag", Bool true);
        ("n", Float 42.0);
        ("pi", Float 3.141592653589793);
        ("tiny", Float 1e-9);
        ("s", String "line\nbreak \"quoted\" \\ slash");
        ("xs", List [ Float 1.0; Float 2.5; String "x"; Bool false ]);
        ("nested", Obj [ ("k", List [ Null ]) ]);
      ]
  in
  let once = to_string v in
  check tbool "roundtrip preserves value" true (of_string once = v);
  check tstr "reserialization is byte-identical" once
    (to_string (of_string once));
  let pretty = to_string ~indent:2 v in
  check tbool "pretty form parses back" true (of_string pretty = v)

let test_json_canonical_numbers () =
  let open Benchkit.Json in
  check tstr "integral float has no fraction" "42" (float_to_string 42.0);
  check tstr "negative integral" "-7" (float_to_string (-7.0));
  check tstr "zero" "0" (float_to_string 0.0);
  let f = 0.1 +. 0.2 in
  check (tfloat 0.0) "%.17g round-trips exactly" f
    (to_float (of_string (float_to_string f)))

let test_json_parse_errors () =
  let open Benchkit.Json in
  let fails s =
    match of_string s with
    | exception Parse_error _ -> true
    | _ -> false
  in
  check tbool "truncated object" true (fails "{\"a\": 1");
  check tbool "bare word" true (fails "flase");
  check tbool "trailing garbage" true (fails "{} x");
  check tbool "accessor mismatch raises" true
    (match to_float (String "no") with
    | exception Parse_error _ -> true
    | _ -> false)

(* ---- measurement schema ---------------------------------------------------- *)

let result ?(scenario = "purchase/asc") ?(det = [ ("rows_scanned", 100.0) ])
    ?(wall = [ ("elapsed_ms", 5.0) ]) () =
  Benchkit.Measure.make_result ~scenario ~workload:"purchase" ~mode:"asc"
    ~deterministic:det ~wallclock:wall

let test_measure_roundtrip () =
  let open Benchkit.Measure in
  let run =
    make_run ~label:"t" ~scale:"quick"
      [
        result ~scenario:"b/one" ();
        result ~scenario:"a/two"
          ~det:[ ("z", 1.0); ("a", 2.5) ]
          ~wall:[] ();
      ]
  in
  check tstr "scenarios sorted" "a/two" (List.hd run.scenarios).scenario;
  check tstr "metrics sorted" "a"
    (fst (List.hd (List.hd run.scenarios).deterministic));
  let run' = of_json (to_json run) in
  check tbool "to_json/of_json round-trips" true (run = run');
  let path = Filename.temp_file "benchkit" ".json" in
  save path run;
  let run'' = load path in
  Sys.remove path;
  check tbool "save/load round-trips" true (run = run'')

let test_measure_schema_guard () =
  let open Benchkit.Measure in
  let j = to_json (make_run ~label:"t" ~scale:"quick" [ result () ]) in
  let bumped =
    match j with
    | Benchkit.Json.Obj fields ->
        Benchkit.Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "schema_version" then (k, Benchkit.Json.Float 99.0)
               else (k, v))
             fields)
    | _ -> Alcotest.fail "run did not serialize to an object"
  in
  check tbool "unknown schema version refused" true
    (match of_json bumped with
    | exception Schema_error _ -> true
    | _ -> false);
  check tbool "duplicate scenario ids refused" true
    (match make_run ~label:"t" ~scale:"quick" [ result (); result () ] with
    | exception Schema_error _ -> true
    | _ -> false)

let test_measure_merge_and_fingerprint () =
  let open Benchkit.Measure in
  let base =
    make_run ~label:"engine" ~scale:"quick"
      [ result (); result ~scenario:"tpcd/off" () ]
  in
  let extra =
    make_run ~label:"engine" ~scale:"quick"
      [ result ~det:[ ("rows_scanned", 999.0) ] () ]
  in
  let merged = merge base extra in
  check tint "merge keeps scenario count" 2 (List.length merged.scenarios);
  let replaced =
    List.find (fun r -> r.scenario = "purchase/asc") merged.scenarios
  in
  check (tfloat 0.0) "merge replaces same-named scenario" 999.0
    (List.assoc "rows_scanned" replaced.deterministic);
  (* fingerprints see the gated content only *)
  let relabel = { base with label = "other" } in
  let rewall =
    make_run ~label:"engine" ~scale:"quick"
      [
        result ~wall:[ ("elapsed_ms", 99.0) ] ();
        result ~scenario:"tpcd/off" ();
      ]
  in
  check tstr "label is not fingerprinted" (fingerprint base)
    (fingerprint relabel);
  check tstr "wall-clock is not fingerprinted" (fingerprint base)
    (fingerprint rewall);
  check tbool "deterministic change alters fingerprint" true
    (fingerprint base <> fingerprint merged)

(* ---- threshold table ------------------------------------------------------- *)

let test_threshold_lookup () =
  let open Benchkit.Diff in
  let t = threshold_for default_thresholds in
  check tbool "rewrite counts gate exactly" true
    ((t "rewrites.join_elimination").direction = Exact);
  check tbool "plan cache counters gate exactly" true
    ((t "plan_cache.fast_runs").direction = Exact);
  check tbool "guard fallbacks gate exactly" true
    ((t "sc_guard_fallbacks").direction = Exact);
  check tbool "rows_scanned allows slack" true
    ((t "rows_scanned").direction = Higher_worse);
  check tbool "q-error uses the q-error rule" true
    ((t "q_error.node_max").rel_slack > (t "rows_scanned").rel_slack);
  check tstr "unknown metric falls to catch-all" ""
    (t "something_novel").prefix

(* ---- the golden pair: equal run passes, injected regression caught --------- *)

let golden_old () =
  Benchkit.Measure.make_run ~label:"old" ~scale:"quick"
    [
      result ~scenario:"purchase/asc"
        ~det:
          [
            ("rows_scanned", 4000.0);
            ("q_error.node_max", 1.8);
            ("rewrites.predicate_introduction", 4.0);
          ]
        ~wall:[ ("elapsed_ms", 10.0) ] ();
      result ~scenario:"tpcd/off"
        ~det:[ ("rows_scanned", 15208.0) ]
        ~wall:[ ("elapsed_ms", 20.0) ] ();
    ]

let test_diff_equal_run_passes () =
  let open Benchkit.Diff in
  let run = golden_old () in
  let o = compare_runs ~old_run:run ~new_run:run () in
  check tbool "identical run passes" true (passed o);
  check tint "no regressions" 0 (List.length (regressions o));
  check tbool "all metrics compared" true (o.metrics_compared >= 5);
  let rendered = Fmt.str "%a" render o in
  check tbool "render says PASS" true (contains rendered "PASS")

let test_diff_injected_regression_caught () =
  let open Benchkit.Diff in
  let old_run = golden_old () in
  let new_run =
    Benchkit.Measure.make_run ~label:"new" ~scale:"quick"
      [
        result ~scenario:"purchase/asc"
          ~det:
            [
              ("rows_scanned", 8000.0) (* doubled: work regression *);
              ("q_error.node_max", 2.9) (* estimation got worse *);
              ("rewrites.predicate_introduction", 3.0) (* lost a rewrite *);
            ]
          ~wall:[ ("elapsed_ms", 10.0) ] ();
        result ~scenario:"tpcd/off"
          ~det:[ ("rows_scanned", 15208.0) ]
          ~wall:[ ("elapsed_ms", 20.0) ] ();
      ]
  in
  let o = compare_runs ~old_run ~new_run () in
  check tbool "injected regression fails the gate" false (passed o);
  let regressed = List.map (fun f -> f.metric) (regressions o) in
  check tbool "rows_scanned caught" true (List.mem "rows_scanned" regressed);
  check tbool "q-error caught" true (List.mem "q_error.node_max" regressed);
  check tbool "lost rewrite caught" true
    (List.mem "rewrites.predicate_introduction" regressed);
  let rendered = Fmt.str "%a" render o in
  check tbool "render says FAIL" true (contains rendered "FAIL");
  check tbool "render names the scenario" true (contains rendered "purchase/asc")

let test_diff_slack_and_improvement () =
  let open Benchkit.Diff in
  let old_run =
    Benchkit.Measure.make_run ~label:"old" ~scale:"quick"
      [ result ~det:[ ("rows_scanned", 10000.0) ] ~wall:[] () ]
  in
  let within =
    Benchkit.Measure.make_run ~label:"new" ~scale:"quick"
      [ result ~det:[ ("rows_scanned", 10200.0) ] ~wall:[] () ]
  in
  check tbool "2% growth is within work slack" true
    (passed (compare_runs ~old_run ~new_run:within ()));
  let better =
    Benchkit.Measure.make_run ~label:"new" ~scale:"quick"
      [ result ~det:[ ("rows_scanned", 5000.0) ] ~wall:[] () ]
  in
  let o = compare_runs ~old_run ~new_run:better () in
  check tbool "halved work passes" true (passed o);
  check tbool "and is reported as an improvement" true
    (List.exists (fun f -> f.verdict = Improvement) o.findings)

let test_diff_missing_scenario_fails () =
  let open Benchkit.Diff in
  let old_run = golden_old () in
  let new_run =
    Benchkit.Measure.make_run ~label:"new" ~scale:"quick"
      [ List.hd old_run.Benchkit.Measure.scenarios ]
  in
  let o = compare_runs ~old_run ~new_run () in
  check tbool "dropped scenario fails the gate" false (passed o);
  check tbool "names the missing scenario" true
    (List.mem "tpcd/off" o.missing_scenarios)

let test_diff_wallclock_never_gates () =
  let open Benchkit.Diff in
  let old_run =
    Benchkit.Measure.make_run ~label:"old" ~scale:"quick"
      [ result ~det:[] ~wall:[ ("elapsed_ms", 1.0) ] () ]
  in
  let new_run =
    Benchkit.Measure.make_run ~label:"new" ~scale:"quick"
      [ result ~det:[] ~wall:[ ("elapsed_ms", 1000.0) ] () ]
  in
  let o = compare_runs ~old_run ~new_run () in
  check tbool "1000x slower still passes" true (passed o);
  check tbool "but the drift is reported" true
    (List.exists
       (fun f -> (not f.gated) && f.verdict = Regression)
       o.findings)

(* ---- a real scenario, twice: byte-identical gated content ------------------ *)

let test_scenario_determinism () =
  match Benchkit.Scenario.find "purchase/asc" with
  | None -> Alcotest.fail "purchase/asc not in the registry"
  | Some s ->
      let r1 = s.Benchkit.Scenario.exec Benchkit.Scenario.Quick in
      let r2 = s.Benchkit.Scenario.exec Benchkit.Scenario.Quick in
      check tbool "deterministic sections byte-identical" true
        (r1.Benchkit.Measure.deterministic = r2.Benchkit.Measure.deterministic);
      let run1 =
        Benchkit.Measure.make_run ~label:"a" ~scale:"quick" [ r1 ]
      and run2 =
        Benchkit.Measure.make_run ~label:"b" ~scale:"quick" [ r2 ]
      in
      check tstr "fingerprints agree" (Benchkit.Measure.fingerprint run1)
        (Benchkit.Measure.fingerprint run2);
      check tbool "self-diff passes" true
        Benchkit.Diff.(passed (compare_runs ~old_run:run1 ~new_run:run2 ()))

let () =
  Alcotest.run "benchkit"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "canonical numbers" `Quick
            test_json_canonical_numbers;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "measure",
        [
          Alcotest.test_case "roundtrip" `Quick test_measure_roundtrip;
          Alcotest.test_case "schema guard" `Quick test_measure_schema_guard;
          Alcotest.test_case "merge & fingerprint" `Quick
            test_measure_merge_and_fingerprint;
        ] );
      ( "diff",
        [
          Alcotest.test_case "threshold lookup" `Quick test_threshold_lookup;
          Alcotest.test_case "equal run passes" `Quick
            test_diff_equal_run_passes;
          Alcotest.test_case "injected regression caught" `Quick
            test_diff_injected_regression_caught;
          Alcotest.test_case "slack & improvement" `Quick
            test_diff_slack_and_improvement;
          Alcotest.test_case "missing scenario fails" `Quick
            test_diff_missing_scenario_fails;
          Alcotest.test_case "wall-clock never gates" `Quick
            test_diff_wallclock_never_gates;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "determinism" `Quick test_scenario_determinism;
        ] );
    ]
