(* Tests for the observability & cardinality-feedback subsystem: the
   metrics registry, q-error and confidence recalibration, the query log,
   EXPLAIN ANALYZE (estimated vs. actual rows per plan node), the
   sys.* virtual tables, and the end-to-end loop where a contradicted
   SSC's catalog confidence is pulled toward the observed selectivity. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- metrics registry ------------------------------------------------------ *)

let test_metrics_counters_gauges () =
  let m = Obs.Metrics.create () in
  check tint "unknown counter is 0" 0 (Obs.Metrics.counter m "nope");
  Obs.Metrics.incr m "a";
  Obs.Metrics.incr ~by:4 m "a";
  check tint "counter accumulates" 5 (Obs.Metrics.counter m "a");
  check tbool "unknown gauge" true (Obs.Metrics.gauge m "g" = None);
  Obs.Metrics.set_gauge m "g" 2.5;
  Obs.Metrics.set_gauge m "g" 3.5;
  check (tfloat 1e-9) "gauge keeps last" 3.5
    (Option.get (Obs.Metrics.gauge m "g"));
  Obs.Metrics.reset m;
  check tint "reset clears" 0 (Obs.Metrics.counter m "a")

let test_metrics_samples_summary () =
  let m = Obs.Metrics.create () in
  check tbool "no samples -> no summary" true
    (Obs.Metrics.summary m "s" = None);
  List.iter (Obs.Metrics.observe m "s") [ 4.0; 1.0; 3.0; 2.0 ];
  check tbool "oldest first" true
    (Obs.Metrics.samples m "s" = [ 4.0; 1.0; 3.0; 2.0 ]);
  let s = Option.get (Obs.Metrics.summary m "s") in
  check tint "count" 4 s.Obs.Metrics.count;
  check (tfloat 1e-9) "mean" 2.5 s.Obs.Metrics.mean;
  check (tfloat 1e-9) "min" 1.0 s.Obs.Metrics.min_v;
  check (tfloat 1e-9) "max" 4.0 s.Obs.Metrics.max_v

let test_snapshot_deterministic_no_timings () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:7 m "c";
  Obs.Metrics.set_gauge m "g" 1.5;
  Obs.Metrics.observe m "s" 2.0;
  (* timings must never surface in the snapshot: they are wall clock *)
  let x = Obs.Metrics.time m "t.wall" (fun () -> 41 + 1) in
  check tint "time returns result" 42 x;
  check tbool "timing recorded" true
    (List.exists (fun (n, _, _) -> n = "t.wall") (Obs.Metrics.timings m));
  let snap = Obs.Metrics.snapshot m in
  check tbool "snapshot excludes timings" false
    (List.exists (fun (n, _, _) -> n = "t.wall") snap);
  check tbool "snapshot stable" true (snap = Obs.Metrics.snapshot m);
  check tbool "counter row" true (List.mem ("c", "counter", 7.0) snap);
  check tbool "gauge row" true (List.mem ("g", "gauge", 1.5) snap);
  check tbool "sample expands" true (List.mem ("s.count", "sample", 1.0) snap)

(* ---- q-error and recalibration -------------------------------------------- *)

let test_q_error () =
  check (tfloat 1e-9) "exact" 1.0
    (Obs.Feedback.q_error ~estimated:10.0 ~actual:10);
  check (tfloat 1e-9) "overestimate" 10.0
    (Obs.Feedback.q_error ~estimated:100.0 ~actual:10);
  check (tfloat 1e-9) "underestimate" 10.0
    (Obs.Feedback.q_error ~estimated:10.0 ~actual:100);
  (* both sides floored at one row: empty results don't divide by zero *)
  check (tfloat 1e-9) "empty vs empty" 1.0
    (Obs.Feedback.q_error ~estimated:0.0 ~actual:0);
  check (tfloat 1e-9) "estimate below a row" 5.0
    (Obs.Feedback.q_error ~estimated:0.2 ~actual:5)

let test_recalibrate () =
  (* within tolerance: noise, keep the stored confidence *)
  check tbool "keep" true
    (Obs.Feedback.recalibrate ~stored:0.9 ~observed:0.85 ()
     = Obs.Feedback.Keep);
  (* moderate divergence: move toward the observation, no refresh *)
  (match Obs.Feedback.recalibrate ~stored:0.5 ~observed:0.65 () with
  | Obs.Feedback.Adjust { confidence; refresh } ->
      check (tfloat 1e-9) "half-step toward observed" 0.575 confidence;
      check tbool "no refresh" false refresh
  | Obs.Feedback.Keep -> Alcotest.fail "expected Adjust");
  (* divergence beyond twice the tolerance also queues a refresh *)
  (match Obs.Feedback.recalibrate ~stored:0.4 ~observed:0.9 () with
  | Obs.Feedback.Adjust { confidence; refresh } ->
      check (tfloat 1e-9) "moved toward observed" 0.65 confidence;
      check tbool "refresh queued" true refresh
  | Obs.Feedback.Keep -> Alcotest.fail "expected Adjust");
  (* a full-rate step lands exactly on the observation *)
  (match Obs.Feedback.recalibrate ~rate:1.0 ~stored:0.2 ~observed:0.8 () with
  | Obs.Feedback.Adjust { confidence; _ } ->
      check (tfloat 1e-9) "rate 1 jumps" 0.8 confidence
  | Obs.Feedback.Keep -> Alcotest.fail "expected Adjust")

let test_query_log () =
  let log = Obs.Query_log.create ~capacity:3 () in
  check (tfloat 1e-9) "empty mean" 1.0 (Obs.Query_log.mean_q_error log);
  for i = 1 to 5 do
    ignore
      (Obs.Query_log.add log
         ~sql:(Printf.sprintf "q%d" i)
         ~estimated_rows:(float_of_int (10 * i))
         ~actual_rows:10 ~rewrites:[] ~twins:[])
  done;
  check tint "bounded" 3 (Obs.Query_log.length log);
  (match Obs.Query_log.entries log with
  | first :: _ -> check tbool "oldest kept is q3" true (first.Obs.Query_log.sql = "q3")
  | [] -> Alcotest.fail "log empty");
  check (tfloat 1e-9) "worst q-error" 5.0 (Obs.Query_log.worst_q_error log);
  let last = Option.get (Obs.Query_log.last log) in
  check (tfloat 1e-9) "last entry q-error" 5.0 last.Obs.Query_log.q_error;
  Obs.Query_log.clear log;
  check tint "cleared" 0 (Obs.Query_log.length log)

(* ---- fixture: a table with a minable difference band ----------------------- *)

(* 100 rows; 90 have hi - lo in [0, 9], 10 outliers at hi - lo = 100, so
   the 0.9-confidence band is [0, 9] and its measured coverage is 0.9. *)
let band_sdb () =
  let sdb = Core.Softdb.create () in
  ignore (Core.Softdb.exec sdb "CREATE TABLE ev (lo INT, hi INT)");
  let b = Buffer.create 1024 in
  Buffer.add_string b "INSERT INTO ev VALUES ";
  for i = 0 to 99 do
    let lo = i in
    let d = if i mod 10 = 9 then 100 else i mod 10 in
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (Printf.sprintf "(%d, %d)" lo (lo + d))
  done;
  ignore (Core.Softdb.exec sdb (Buffer.contents b));
  Core.Softdb.runstats sdb;
  sdb

let install_band_ssc sdb ~name ~confidence =
  let tbl = Database.table_exn (Core.Softdb.db sdb) "ev" in
  let d = Option.get (Mining.Diff_band.mine tbl ~col_hi:"hi" ~col_lo:"lo") in
  let band = Option.get (Mining.Diff_band.band_with d ~confidence:0.9) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name ~table:"ev"
       ~kind:(Core.Soft_constraint.Statistical confidence)
       ~installed_at_mutations:
         (Core.Sc_catalog.mutations_of (Core.Softdb.db sdb) "ev")
       (Core.Soft_constraint.Diff_stmt (d, band)))

(* a range on hi plus any predicate on lo makes the diff-band twin fire *)
let twin_sql = "SELECT * FROM ev WHERE hi >= 50 AND hi <= 60 AND lo >= 0"

(* ---- EXPLAIN ANALYZE ------------------------------------------------------- *)

let test_explain_analyze () =
  let sdb = band_sdb () in
  let baseline = Core.Softdb.query_baseline sdb twin_sql in
  let expected = List.length baseline.Exec.Executor.rows in
  match Core.Softdb.exec sdb ("EXPLAIN ANALYZE " ^ twin_sql) with
  | Core.Softdb.Analyzed a ->
      check tint "result rows" expected
        (List.length a.Opt.Explain.result.Exec.Executor.rows);
      (match a.Opt.Explain.nodes with
      | root :: _ ->
          check tint "root actual rows" expected
            root.Opt.Explain.actual_rows;
          check tbool "root q-error consistent" true
            (Float.abs
               (root.Opt.Explain.node_q_error
               -. Obs.Feedback.q_error
                    ~estimated:root.Opt.Explain.est_rows ~actual:expected)
            < 1e-9)
      | [] -> Alcotest.fail "no annotated nodes");
      check tbool "every node executed or idle" true
        (List.for_all
           (fun n -> n.Opt.Explain.actual_rows >= 0)
           a.Opt.Explain.nodes);
      let rendered = Opt.Explain.analysis_to_string a in
      check tbool "renders actual rows" true (contains rendered "actual=");
      check tbool "renders q-error" true (contains rendered "q=")
  | _ -> Alcotest.fail "expected Analyzed outcome"

(* ---- SSC confidence recalibration end to end -------------------------------- *)

let test_ssc_recalibration () =
  let sdb = band_sdb () in
  (* stored confidence 0.4 contradicts the measured coverage 0.9 *)
  install_band_ssc sdb ~name:"ev_band" ~confidence:0.4;
  (* the baseline runs first: it logs its own (twin-free) entry, and the
     twin query must be the log's last for the inspection below *)
  let baseline = Core.Softdb.query_baseline sdb twin_sql in
  let result = Core.Softdb.query sdb twin_sql in
  check tbool "twin preserved the result" true
    (Exec.Executor.same_rows baseline result);
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ev_band")
  in
  (match sc.Core.Soft_constraint.kind with
  | Core.Soft_constraint.Statistical c ->
      check (tfloat 1e-6) "confidence pulled toward observed 0.9" 0.65 c
  | Core.Soft_constraint.Absolute -> Alcotest.fail "SSC became absolute");
  check tint "one recalibration counted" 1
    (Obs.Metrics.counter (Core.Softdb.metrics sdb) "feedback.recalibrations");
  check tbool "queued for refresh" true
    (List.mem "ev_band"
       (Core.Maintenance.repair_queue (Core.Softdb.maintenance sdb)));
  (* the query log carries the observation *)
  let last = Option.get (Obs.Query_log.last (Core.Softdb.query_log sdb)) in
  (match last.Obs.Query_log.twins with
  | [ tw ] ->
      check tbool "twin names the SSC" true (tw.Obs.Query_log.sc = "ev_band");
      check (tfloat 1e-6) "stored" 0.4 tw.Obs.Query_log.stored;
      check (tfloat 1e-6) "observed" 0.9 tw.Obs.Query_log.observed;
      check (tfloat 1e-6) "adjusted" 0.65
        (Option.get tw.Obs.Query_log.adjusted)
  | _ -> Alcotest.fail "expected exactly one twin observation");
  (* a second run starts from the recalibrated 0.65: still diverging from
     0.9, so it moves again — toward, never past, the observation *)
  ignore (Core.Softdb.query sdb twin_sql);
  (match sc.Core.Soft_constraint.kind with
  | Core.Soft_constraint.Statistical c ->
      check tbool "monotone approach" true (c > 0.65 && c <= 0.9)
  | Core.Soft_constraint.Absolute -> Alcotest.fail "SSC became absolute")

let test_feedback_off_keeps_confidence () =
  let sdb = band_sdb () in
  install_band_ssc sdb ~name:"ev_band" ~confidence:0.4;
  Core.Softdb.set_feedback sdb false;
  ignore (Core.Softdb.query sdb twin_sql);
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ev_band")
  in
  (match sc.Core.Soft_constraint.kind with
  | Core.Soft_constraint.Statistical c ->
      check (tfloat 1e-9) "confidence untouched" 0.4 c
  | Core.Soft_constraint.Absolute -> Alcotest.fail "SSC became absolute");
  (* the observation is still logged, just not applied *)
  let last = Option.get (Obs.Query_log.last (Core.Softdb.query_log sdb)) in
  (match last.Obs.Query_log.twins with
  | [ tw ] -> check tbool "not adjusted" true (tw.Obs.Query_log.adjusted = None)
  | _ -> Alcotest.fail "expected one twin observation")

(* ---- sys.* virtual tables --------------------------------------------------- *)

let col result name =
  let rec idx i = function
    | [] -> Alcotest.fail ("no column " ^ name)
    | c :: _ when c = name -> i
    | _ :: rest -> idx (i + 1) rest
  in
  let i = idx 0 result.Exec.Executor.columns in
  List.map (fun row -> Tuple.get row i) result.Exec.Executor.rows

let test_sys_metrics_sql () =
  let sdb = band_sdb () in
  ignore (Core.Softdb.query sdb twin_sql);
  let r =
    Core.Softdb.query sdb
      "SELECT name, kind, value FROM sys.metrics WHERE name = \
       'queries.executed'"
  in
  (match (col r "name", col r "value") with
  | [ Value.String "queries.executed" ], [ Value.Float v ] ->
      check tbool "at least one query counted" true (v >= 1.0)
  | _ -> Alcotest.fail "expected one queries.executed row");
  (* virtual tables are read-only *)
  check tbool "insert rejected" true
    (try
       ignore
         (Core.Softdb.exec sdb "INSERT INTO sys.metrics VALUES ('x', 'c', 1)");
       false
     with Database.Catalog_error _ -> true);
  (* and their names are reserved against CREATE TABLE *)
  check tbool "create collision rejected" true
    (try
       ignore
         (Database.create_table (Core.Softdb.db sdb)
            (Schema.make "sys.metrics" [ Schema.column "a" Value.TInt ]));
       false
     with Database.Catalog_error _ -> true)

let test_sys_soft_constraints_sql () =
  let sdb = band_sdb () in
  install_band_ssc sdb ~name:"ev_band" ~confidence:0.8;
  let r =
    Core.Softdb.query sdb
      "SELECT name, kind, confidence FROM sys.soft_constraints"
  in
  (match (col r "name", col r "kind", col r "confidence") with
  | [ Value.String "ev_band" ], [ Value.String "SSC" ], [ Value.Float c ] ->
      check (tfloat 1e-9) "declared confidence surfaced" 0.8 c
  | _ -> Alcotest.fail "expected the one installed SSC")

let test_sys_query_log_sql () =
  let sdb = band_sdb () in
  ignore (Core.Softdb.query sdb twin_sql);
  let r =
    Core.Softdb.query sdb "SELECT sql, actual_rows, q_error FROM sys.query_log"
  in
  check tbool "at least the twin query logged" true
    (List.length r.Exec.Executor.rows >= 1);
  check tbool "q_error at least 1" true
    (List.for_all
       (function Value.Float q -> q >= 1.0 | _ -> false)
       (col r "q_error"))

let test_sys_plan_cache_sql () =
  let sdb = band_sdb () in
  let cache = Core.Plan_cache.create sdb in
  ignore (Core.Plan_cache.prepare cache ~name:"q1" twin_sql);
  ignore (Core.Plan_cache.execute cache "q1");
  ignore (Core.Plan_cache.execute cache "q1");
  let r =
    Core.Softdb.query sdb
      "SELECT name, valid, fast_runs, backup_runs FROM sys.plan_cache"
  in
  (match (col r "name", col r "valid", col r "fast_runs") with
  | [ Value.String "q1" ], [ Value.Bool true ], [ Value.Int 2 ] -> ()
  | _ -> Alcotest.fail "expected q1 with two fast runs");
  let s = Core.Plan_cache.stats cache in
  check tint "stats entries" 1 s.Core.Plan_cache.entries;
  check tint "stats valid" 1 s.Core.Plan_cache.valid;
  check tint "stats fast" 2 s.Core.Plan_cache.fast_runs;
  check tint "stats backup" 0 s.Core.Plan_cache.backup_runs

(* ---------------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "samples and summary" `Quick
            test_metrics_samples_summary;
          Alcotest.test_case "snapshot deterministic, no timings" `Quick
            test_snapshot_deterministic_no_timings;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "q-error" `Quick test_q_error;
          Alcotest.test_case "recalibrate verdicts" `Quick test_recalibrate;
          Alcotest.test_case "query log" `Quick test_query_log;
        ] );
      ( "explain_analyze",
        [ Alcotest.test_case "annotated plan" `Quick test_explain_analyze ] );
      ( "recalibration",
        [
          Alcotest.test_case "ssc confidence converges" `Quick
            test_ssc_recalibration;
          Alcotest.test_case "feedback off keeps confidence" `Quick
            test_feedback_off_keeps_confidence;
        ] );
      ( "sys_tables",
        [
          Alcotest.test_case "sys.metrics" `Quick test_sys_metrics_sql;
          Alcotest.test_case "sys.soft_constraints" `Quick
            test_sys_soft_constraints_sql;
          Alcotest.test_case "sys.query_log" `Quick test_sys_query_log_sql;
          Alcotest.test_case "sys.plan_cache" `Quick test_sys_plan_cache_sql;
        ] );
    ]
