(* Tests for the static-analysis subsystem (lib/check): the certificate
   checker rejects deliberately unsound certificates and accepts every
   certificate the rewriter actually emits; the catalog linter flags a
   contradictory SC pair, duplicate FDs, and dead SSCs; the lock-order
   lint catches rank inversions and unannotated sites in synthetic
   sources and passes on the real tree; the interface-coverage lint
   passes on the real tree; the differential check re-runs every
   query-suite scenario with rewrites on vs off and demands identical
   result sets; and sc_guard_fallbacks counts exactly once per guarded
   statement (multi-guard plans, re-executed invalidated cache entries). *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let errors_of diags = List.length (Check.Diag.errors diags)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let has_error_containing diags sub =
  List.exists
    (fun (d : Check.Diag.t) ->
      Check.Diag.is_error d && contains d.Check.Diag.message sub)
    diags

let has_diag_containing diags sub =
  List.exists
    (fun (d : Check.Diag.t) -> contains d.Check.Diag.message sub)
    diags

(* ---- fixtures -------------------------------------------------------------- *)

(* [late = 0.0] mines the band as absolute; a positive late fraction
   leaves violations so a sub-1.0 band stays statistical. *)
let purchase_banded ?(confidence = 1.0) ?(name = "band") ?(late = 0.0) () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:
      {
        Workload.Purchase.default_config with
        rows = 3_000;
        late_fraction = late;
        seed = 7;
      }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let band = Option.get (Mining.Diff_band.band_with d ~confidence) in
  let kind =
    if band.Mining.Diff_band.confidence >= 1.0 then
      Core.Soft_constraint.Absolute
    else Core.Soft_constraint.Statistical band.Mining.Diff_band.confidence
  in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name ~table:"purchase" ~kind
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, band)));
  sdb

let ship_eq = "SELECT * FROM purchase WHERE ship_date = DATE '1999-06-15'"

let violating_insert sdb =
  Workload.Purchase.insert_batch ~violating:1.0 ~rng:(Stats.Rng.create 97)
    ~start_id:9_000_000 ~count:1 (Core.Softdb.db sdb)

(* ---- certificate checker --------------------------------------------------- *)

(* The rewriter's own certificate on the banded fixture is sound... *)
let test_cert_sound () =
  let sdb = purchase_banded () in
  let report, diags = Check.Cert.check_query sdb ship_eq in
  check tbool "predicate_introduction fired" true
    (Opt.Explain.certificates report <> []);
  check tint "no diagnostics" 0 (List.length diags)

(* ...and hand-tampered variants of it are each rejected. *)
let test_cert_unsound () =
  let sdb = purchase_banded () in
  let report =
    Core.Softdb.optimize sdb (Sqlfe.Parser.parse_query_string ship_eq)
  in
  let c =
    match Opt.Explain.certificates report with
    | c :: _ -> c
    | [] -> Alcotest.fail "expected a certificate"
  in
  let guards = report.Opt.Explain.guards in
  let recheck ?(guards = guards) ?(has_backup = true) c =
    Check.Cert.check_certificate sdb ~guards ~has_backup c
  in
  check tint "sound as emitted" 0 (List.length (recheck c));
  check tbool "unknown premise is rejected" true
    (has_error_containing
       (recheck { c with Opt.Explain.cert_premises = [ "no_such_sc" ] })
       "no declared IC or catalog SC");
  check tbool "ASC premise outside the guard set is rejected" true
    (has_error_containing (recheck ~guards:[] c) "not in the plan's guard set");
  check tbool "guarded plan without backup is rejected" true
    (has_error_containing (recheck ~has_backup:false c) "no backup");
  check tbool "flag/delta disagreement is rejected" true
    (has_error_containing
       (recheck { c with Opt.Explain.cert_result_changing = false })
       "disagrees with the delta");
  check tbool "delta shape must match the rule" true
    (has_error_containing
       (recheck { c with Opt.Explain.cert_rule = "twinning" })
       "does not match the rule");
  check tbool "rule requiring premises may not name none" true
    (has_error_containing
       (recheck { c with Opt.Explain.cert_premises = [] })
       "requires a constraint basis");
  (* an overturned SC is no longer a valid basis *)
  violating_insert sdb;
  check tbool "overturned premise is rejected" true
    (has_error_containing (recheck c) "not usable")

let test_cert_statistical_basis () =
  let sdb = purchase_banded ~confidence:0.99 ~name:"band_ssc" ~late:0.01 () in
  let report =
    Core.Softdb.optimize sdb (Sqlfe.Parser.parse_query_string ship_eq)
  in
  (* forge a result-changing certificate resting on the statistical band *)
  let forged =
    {
      Opt.Explain.cert_rule = "predicate_introduction";
      cert_detail = "forged";
      cert_premises = [ "band_ssc" ];
      cert_delta = Opt.Rewrite.Pred_added Expr.Ptrue;
      cert_result_changing = true;
    }
  in
  let diags =
    Check.Cert.check_certificate sdb ~guards:report.Opt.Explain.guards
      ~has_backup:true forged
  in
  check tbool "statistical basis for result-changing rewrite rejected" true
    (has_error_containing diags "estimation-only basis")

(* Twins stay estimation-only: the SSC fixture's twinned query produces a
   clean report, and the checker would catch a twin leaked into the plan. *)
let test_twin_isolation () =
  let sdb = purchase_banded ~confidence:0.99 ~name:"band_ssc" ~late:0.01 () in
  let sql =
    "SELECT * FROM purchase WHERE order_date BETWEEN DATE '1999-06-01' AND \
     DATE '1999-06-30' AND ship_date <= DATE '1999-07-05'"
  in
  let report, diags = Check.Cert.check_query sdb sql in
  check tbool "twinning fired" true
    (List.exists
       (fun (c : Opt.Explain.certificate) ->
         c.Opt.Explain.cert_rule = "twinning")
       (Opt.Explain.certificates report));
  check tint "twinned report is clean" 0 (List.length diags);
  (* graft the twin into the executable plan: the checker must object *)
  let twin_pred =
    List.find_map
      (fun (c : Opt.Explain.certificate) ->
        match c.Opt.Explain.cert_delta with
        | Opt.Rewrite.Pred_twinned { pred; _ } -> Some pred
        | _ -> None)
      (Opt.Explain.certificates report)
  in
  let twin_pred = Option.get twin_pred in
  let leaked =
    {
      report with
      Opt.Explain.plan =
        Exec.Plan.Filter { input = report.Opt.Explain.plan; pred = twin_pred };
    }
  in
  check tbool "leaked twin predicate is caught" true
    (has_error_containing
       (Check.Cert.check_report sdb leaked)
       "appears among the plan's executable predicates")

(* ---- catalog linter -------------------------------------------------------- *)

let test_catalog_contradiction () =
  let sdb = Core.Softdb.create () in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (v INT)");
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE t ADD CONSTRAINT c_lo CHECK (v >= 10) SOFT");
  check tint "single check is fine" 0
    (errors_of (Check.Catalog_lint.lint sdb));
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE t ADD CONSTRAINT c_hi CHECK (v <= 5) SOFT");
  let diags = Check.Catalog_lint.lint sdb in
  check tbool "contradictory pair is an error" true
    (has_error_containing diags "contradictory")

let test_catalog_fd_dupes () =
  let sdb = Core.Softdb.create () in
  ignore (Core.Softdb.exec sdb "CREATE TABLE p (a INT, b INT, c INT)");
  let install name lhs =
    Core.Softdb.install_sc sdb
      (Core.Soft_constraint.make ~name ~table:"p" ~installed_at_mutations:0
         (Core.Soft_constraint.Fd_stmt
            { Mining.Fd_mine.table = "p"; lhs; rhs = "c" }))
  in
  install "fd_wide" [ "a"; "b" ];
  install "fd_narrow" [ "a" ];
  install "fd_narrow2" [ "a" ];
  let diags = Check.Catalog_lint.lint sdb in
  check tbool "subsumed FD flagged" true (has_diag_containing diags "subsumed");
  check tbool "duplicate FD flagged" true
    (has_diag_containing diags "duplicates");
  check tint "lint warnings are not errors" 0 (errors_of diags)

let test_catalog_dead_ssc () =
  let sdb = purchase_banded ~confidence:0.99 ~name:"band_ssc" ~late:0.01 () in
  check tint "live SSC is clean" 0 (List.length (Check.Catalog_lint.lint sdb));
  (* push the currency anchor far into the past: the §3.3 decay drives
     the usable confidence to the floor and the linter calls it dead *)
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "band_ssc")
  in
  sc.Core.Soft_constraint.installed_at_mutations <- -1_000_000;
  let diags = Check.Catalog_lint.lint sdb in
  check tbool "decayed SSC flagged as dead weight" true
    (List.exists
       (fun (d : Check.Diag.t) ->
         d.Check.Diag.severity = Check.Diag.Warning
         && d.Check.Diag.pass = "catalog")
       diags)

(* ---- lock-order lint ------------------------------------------------------- *)

let decls =
  "(* @lock-order lk.a rank=10 *)\n\
   (* @lock-order lk.b rank=20 *)\n\
   (* @lock-order lk.r rank=30 reentrant *)\n"

(* Satellite hardening: a [while <held>] clause naming an undeclared
   lock is its own error (not silently treated as rank 0), and two locks
   declaring the same rank is ambiguous. *)
let test_lock_lint_hardening () =
  let lint body = Check.Lock_lint.lint_sources [ ("hard.ml", decls ^ body) ] in
  check tbool "@acquires while-clause naming undeclared lock fails" true
    (has_error_containing
       (lint "(* @acquires lk.b while lk.zzz *)\nlet f m = Mutex.lock m\n")
       "while clause of @acquires");
  check tbool "@waits while-clause naming undeclared lock fails" true
    (has_error_containing
       (lint
          "(* @waits lk.b while lk.zzz *)\nlet f c = Condition.wait c m\n")
       "@waits while clause names undeclared lock");
  check tbool "duplicate rank under two names fails" true
    (has_error_containing
       (Check.Lock_lint.lint_sources
          [ ( "d.ml",
              "(* @lock-order lk.x rank=7 *)\n\
               (* @lock-order lk.y rank=7 *)\n" ) ])
       "duplicate rank")

let test_lock_lint_synthetic () =
  let lint body = Check.Lock_lint.lint_sources [ ("good.ml", decls ^ body) ] in
  check tint "ordered acquisition passes" 0
    (errors_of
       (lint "(* @acquires lk.b while lk.a *)\nlet f m = Mutex.lock m\n"));
  check tbool "rank inversion fails" true
    (has_error_containing
       (lint "(* @acquires lk.a while lk.b *)\nlet f m = Mutex.lock m\n")
       "lock-order violation");
  check tbool "unannotated acquisition fails" true
    (has_error_containing (lint "let f m = Mutex.lock m\n") "unannotated");
  check tbool "undeclared lock fails" true
    (has_error_containing
       (lint "(* @acquires lk.zzz *)\nlet f m = Mutex.lock m\n")
       "undeclared");
  check tint "reentrant self-acquisition passes" 0
    (errors_of
       (lint "(* @acquires lk.r while lk.r *)\nlet f m = Mutex.lock m\n"));
  check tbool "non-reentrant self-acquisition fails" true
    (has_error_containing
       (lint "(* @acquires lk.a while lk.a *)\nlet f m = Mutex.lock m\n")
       "re-acquires");
  check tbool "waiting on an undeclared lock fails" true
    (has_error_containing
       (lint "(* @waits lk.zzz *)\nlet f c = Condition.wait c\n")
       "undeclared");
  check tint "lock-ignore suppresses" 0
    (errors_of (lint "(* @lock-ignore *)\nlet f m = Mutex.lock m\n"));
  check tbool "conflicting declarations fail" true
    (has_error_containing
       (Check.Lock_lint.lint_sources
          [ ("a.ml", "(* @lock-order lk.x rank=1 *)\n");
            ("b.ml", "(* @lock-order lk.x rank=2 *)\n") ])
       "conflicting")

(* ---- guarded-by lint ------------------------------------------------------- *)

(* Sites that reference every declared rank, so none is dead and lk.a /
   lk.b are holdable guards. *)
let guard_site =
  "(* @acquires lk.b while lk.a *)\n\
   let f m = Mutex.lock m\n\
   (* @acquires lk.r while lk.r *)\n\
   let g m = Mutex.lock m\n"

let guard_lint body =
  Check.Guard_lint.lint_sources [ ("g.ml", decls ^ guard_site ^ body) ]

let test_guard_lint_synthetic () =
  check tint "guarded mutable field passes" 0
    (errors_of
       (guard_lint
          "type t = {\n  (* @guarded-by lk.a *)\n  mutable x : int;\n}\n"));
  check tint "block annotation covers every field of the record" 0
    (errors_of
       (guard_lint
          "(* @guarded-by lk.a *)\n\
           type t = {\n\
          \  mutable x : int;\n\
          \  mutable y : int;\n\
           }\n"));
  check tint "confinement waiver passes" 0
    (errors_of
       (guard_lint
          "type t = {\n\
          \  (* @guarded-by none: confined to the owner thread *)\n\
          \  mutable x : int;\n\
           }\n"));
  check tbool "unannotated mutable field fails" true
    (has_error_containing
       (guard_lint "type t = {\n  mutable x : int;\n}\n")
       "no @guarded-by annotation");
  check tbool "unannotated global ref fails" true
    (has_error_containing (guard_lint "let cache = ref 0\n")
       "no @guarded-by annotation");
  check tint "annotated global ref passes" 0
    (errors_of (guard_lint "(* @guarded-by lk.a *)\nlet cache = ref 0\n"));
  check tbool "unannotated mutable container field fails" true
    (has_error_containing
       (guard_lint "type t = {\n  tbl : (string, int) Hashtbl.t;\n}\n")
       "no @guarded-by annotation");
  check tbool "guard naming an undeclared lock fails" true
    (has_error_containing
       (guard_lint
          "type t = {\n  (* @guarded-by lk.zzz *)\n  mutable x : int;\n}\n")
       "undeclared lock");
  (* lk.c is declared and guards the field, but no @acquires/@waits site
     ever holds it: the guard is unenforceable *)
  check tbool "guard never held by any site fails" true
    (has_error_containing
       (Check.Guard_lint.lint_sources
          [ ( "g.ml",
              decls ^ "(* @lock-order lk.c rank=40 *)\n" ^ guard_site
              ^ "type t = {\n  (* @guarded-by lk.c *)\n  mutable x : int;\n}\n"
            ) ])
       "ever holds this lock");
  check tbool "rank referenced by nothing is dead" true
    (has_error_containing
       (Check.Guard_lint.lint_sources
          [ ("g.ml", decls ^ "(* @lock-order lk.dead rank=99 *)\n" ^ guard_site)
          ])
       "dead @lock-order rank")

(* ---- lockdep witness (runtime) --------------------------------------------- *)

let test_lockdep_witness () =
  Obs.Lockdep.enable ();
  Obs.Lockdep.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.Lockdep.reset ();
      Obs.Lockdep.disable ())
  @@ fun () ->
  Obs.Lockdep.acquire "w.a";
  Obs.Lockdep.acquire "w.b";
  check tint "depth tracks distinct held locks" 2
    (Obs.Lockdep.max_held_depth ());
  Obs.Lockdep.release "w.b";
  Obs.Lockdep.release "w.a";
  check tbool "ordered acquisition is violation-free" true
    (Obs.Lockdep.violations () = []);
  check tbool "edge recorded" true
    (List.exists
       (fun (h, a, _) -> h = "w.a" && a = "w.b")
       (Obs.Lockdep.edge_list ()));
  (* the reverse nesting closes a cycle in the edge graph *)
  Obs.Lockdep.acquire "w.b";
  Obs.Lockdep.acquire "w.a";
  check tbool "cycle detected live" true
    (List.exists
       (fun v -> contains v "lock-order cycle")
       (Obs.Lockdep.violations ()));
  (* re-acquiring a lock this thread already holds *)
  Obs.Lockdep.acquire "w.a";
  check tbool "non-reentrant re-acquisition detected" true
    (List.exists
       (fun v -> contains v "re-acquired non-reentrant lock w.a")
       (Obs.Lockdep.violations ()));
  let before = List.length (Obs.Lockdep.violations ()) in
  Obs.Lockdep.acquire ~reentrant:true "w.a";
  check tint "reentrant re-acquisition adds no violation" before
    (List.length (Obs.Lockdep.violations ()));
  (* the dump round-trips through the parser *)
  match Obs.Lockdep.parse (Obs.Lockdep.dump ()) with
  | None -> Alcotest.fail "dump did not parse"
  | Some g ->
      check tint "parsed edge count matches" (Obs.Lockdep.edges_observed ())
        (List.length g.Obs.Lockdep.g_edges);
      check tint "parsed depth matches" (Obs.Lockdep.max_held_depth ())
        g.Obs.Lockdep.g_max_depth;
      check tint "parsed violations match"
        (List.length (Obs.Lockdep.violations ()))
        (List.length g.Obs.Lockdep.g_violations)

let test_lockdep_disabled_is_inert () =
  Obs.Lockdep.disable ();
  Obs.Lockdep.reset ();
  Obs.Lockdep.acquire "w.z";
  Obs.Lockdep.acquire "w.y";
  check tint "disabled witness records nothing" 0
    (Obs.Lockdep.edges_observed ());
  check tbool "disabled witness has no coverage" true
    (Obs.Lockdep.lock_list () = [])

(* ---- lockdep cross-validation lint ------------------------------------------ *)

(* Shared rank table for the synthetic graphs: lk.a 10, lk.b 20,
   lk.r 30 reentrant (from [decls]). *)
let ld_sources = [ ("decls.ml", decls) ]

let ld_graph ?(cover = [ "lk.a"; "lk.b"; "lk.r" ]) ?(violations = []) edges =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "lockdep edges=%d max_held_depth=2 violations=%d\n"
       (List.length edges)
       (List.length violations));
  List.iter (fun l -> Buffer.add_string b (Printf.sprintf "lock %s\n" l)) cover;
  List.iter
    (fun (h, a, n) ->
      Buffer.add_string b (Printf.sprintf "edge %s %s %d\n" h a n))
    edges;
  List.iter
    (fun v -> Buffer.add_string b (Printf.sprintf "violation %s\n" v))
    violations;
  Buffer.contents b

let ld_lint ?cover ?violations edges =
  Check.Lockdep_lint.lint_dump ~sources:ld_sources
    (ld_graph ?cover ?violations edges)

let test_lockdep_lint_synthetic () =
  check tint "rank-ordered edge set passes" 0
    (errors_of (ld_lint [ ("lk.a", "lk.b", 3); ("lk.b", "lk.r", 1) ]));
  check tbool "observed inversion contradicts the rank table" true
    (has_error_containing
       (ld_lint [ ("lk.b", "lk.a", 2) ])
       "lock-order inversion");
  check tbool "edge naming an undeclared lock fails" true
    (has_error_containing
       (ld_lint [ ("lk.a", "lk.zzz", 1) ])
       "undeclared lock lk.zzz");
  check tbool "observed self-edge on a non-reentrant lock fails" true
    (has_error_containing
       (ld_lint [ ("lk.a", "lk.a", 1) ])
       "re-acquisition of non-reentrant lock lk.a");
  check tint "observed self-edge on a reentrant lock passes" 0
    (errors_of (ld_lint [ ("lk.r", "lk.r", 4) ]));
  check tbool "runtime violations surface verbatim" true
    (has_error_containing
       (ld_lint ~violations:[ "lock-order cycle: x -> y -> x" ] [])
       "runtime witness violation: lock-order cycle");
  check tbool "unexercised rank is stale" true
    (has_error_containing
       (ld_lint ~cover:[ "lk.a"; "lk.b" ] [ ("lk.a", "lk.b", 1) ])
       "stale rank: lk.r");
  check tint "a waived rank may stay unexercised" 0
    (errors_of
       (Check.Lockdep_lint.lint_dump
          ~sources:
            [ ( "decls.ml",
                "(* @lock-order lk.a rank=10 *)\n\
                 (* @lock-order lk.w rank=50 lockdep-waive *)\n" ) ]
          (ld_graph ~cover:[ "lk.a" ] [])));
  check tbool "garbage input is not a dump" true
    (has_error_containing
       (Check.Lockdep_lint.lint_dump ~sources:ld_sources "hello\nworld\n")
       "missing 'lockdep' header")

(* ---- the real tree --------------------------------------------------------- *)

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let test_real_tree_lints () =
  match find_root () with
  | None -> () (* not running from a build tree; covered by `softdb check` *)
  | Some root ->
      let files = Check.Driver.lock_scan_files ~root in
      check tbool "lock lint scans the srv sources" true
        (List.exists
           (fun f -> Filename.basename f = "scheduler.ml")
           files);
      check tint "real tree is lock-clean" 0
        (errors_of (Check.Lock_lint.lint_files files));
      check tint "real tree is guard-clean" 0
        (errors_of
           (Check.Guard_lint.lint_files (Check.Driver.guard_scan_files ~root)));
      check tint "every lib module has an interface" 0
        (errors_of (Check.Iface_lint.lint ~root))

(* ---- differential rewrite check -------------------------------------------- *)

(* Every query-suite scenario, rewrites on vs off, identical result sets
   — the dynamic complement of the certificate checker. *)
let test_differential_registry () =
  List.iter
    (fun (f : Benchkit.Scenario.fixture) ->
      let sdb = f.Benchkit.Scenario.fixture_setup Benchkit.Scenario.Quick in
      List.iter
        (fun sql ->
          let on = Core.Softdb.query ~flags:Opt.Rewrite.all_on sdb sql in
          let off = Core.Softdb.query_baseline sdb sql in
          check tbool
            (Printf.sprintf "%s: rewrites preserve results for %s"
               f.Benchkit.Scenario.fixture_name sql)
            true
            (Exec.Executor.same_rows on off))
        f.Benchkit.Scenario.fixture_queries)
    Benchkit.Scenario.fixtures

(* ...and the certificate checker is clean across the same registry. *)
let test_registry_certificates () =
  let fixtures =
    List.map
      (fun (f : Benchkit.Scenario.fixture) ->
        {
          Check.Driver.fx_name = f.Benchkit.Scenario.fixture_name;
          fx_sdb = f.Benchkit.Scenario.fixture_setup Benchkit.Scenario.Quick;
          fx_queries = f.Benchkit.Scenario.fixture_queries;
        })
      Benchkit.Scenario.fixtures
  in
  let report, diags = Check.Driver.run fixtures in
  check tint "registry certificates are clean" 0 (errors_of diags);
  check tbool "report renders a PASS line" true (contains report "PASS")

(* ---- sc_guard_fallbacks accounting ----------------------------------------- *)

let fallbacks sdb =
  Obs.Metrics.counter (Core.Softdb.metrics sdb) "sc_guard_fallbacks"

(* One guarded statement with several failed guards still counts once. *)
let test_fallback_once_per_statement () =
  let sdb = purchase_banded () in
  let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let band = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"band2" ~table:"purchase"
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, band)));
  let report =
    Core.Softdb.optimize sdb (Sqlfe.Parser.parse_query_string ship_eq)
  in
  check tbool "plan carries several guards" true
    (List.length (List.sort_uniq String.compare report.Opt.Explain.guards) >= 2);
  let _, fell_back = Core.Softdb.execute_report sdb report in
  check tbool "fresh plan does not fall back" false fell_back;
  check tint "no fallback counted" 0 (fallbacks sdb);
  violating_insert sdb;
  (* both bands are now overturned; the statement falls back once *)
  let _, fell_back = Core.Softdb.execute_report sdb report in
  check tbool "stale plan falls back" true fell_back;
  check tint "one fallback per guarded statement" 1 (fallbacks sdb);
  let _, _ = Core.Softdb.execute_report sdb report in
  check tint "each guarded execution counts once" 2 (fallbacks sdb)

(* A cached plan that went invalid counts its fallback once, at the
   transition — not on every later execution of the backup. *)
let test_fallback_once_per_cache_entry () =
  let sdb = purchase_banded () in
  let cache = Core.Plan_cache.create ~capacity:4 sdb in
  ignore (Core.Plan_cache.prepare cache ~name:"q" ship_eq);
  ignore (Core.Plan_cache.execute cache "q");
  check tint "valid entry: no fallback" 0 (fallbacks sdb);
  violating_insert sdb;
  for _ = 1 to 3 do
    ignore (Core.Plan_cache.execute cache "q")
  done;
  let s = Core.Plan_cache.stats cache in
  check tint "backup ran every time" 3 s.Core.Plan_cache.backup_runs;
  check tint "fallback counted once, at invalidation" 1 (fallbacks sdb)

let () =
  Alcotest.run "check"
    [
      ( "cert",
        [
          Alcotest.test_case "sound certificate accepted" `Quick
            test_cert_sound;
          Alcotest.test_case "unsound certificates rejected" `Quick
            test_cert_unsound;
          Alcotest.test_case "statistical basis rejected" `Quick
            test_cert_statistical_basis;
          Alcotest.test_case "twin isolation" `Quick test_twin_isolation;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "contradictory SC pair" `Quick
            test_catalog_contradiction;
          Alcotest.test_case "duplicate and subsumed FDs" `Quick
            test_catalog_fd_dupes;
          Alcotest.test_case "dead SSC" `Quick test_catalog_dead_ssc;
        ] );
      ( "lock",
        [
          Alcotest.test_case "synthetic orderings" `Quick
            test_lock_lint_synthetic;
          Alcotest.test_case "hardening" `Quick test_lock_lint_hardening;
          Alcotest.test_case "real tree" `Quick test_real_tree_lints;
        ] );
      ( "guard",
        [
          Alcotest.test_case "synthetic guarded-by" `Quick
            test_guard_lint_synthetic;
        ] );
      ( "lockdep",
        [
          Alcotest.test_case "runtime witness" `Quick test_lockdep_witness;
          Alcotest.test_case "disabled is inert" `Quick
            test_lockdep_disabled_is_inert;
          Alcotest.test_case "graph cross-validation" `Quick
            test_lockdep_lint_synthetic;
        ] );
      ( "differential",
        [
          Alcotest.test_case "rewrites preserve results" `Slow
            test_differential_registry;
          Alcotest.test_case "registry certificates" `Slow
            test_registry_certificates;
        ] );
      ( "fallbacks",
        [
          Alcotest.test_case "once per guarded statement" `Quick
            test_fallback_once_per_statement;
          Alcotest.test_case "once per cache entry" `Quick
            test_fallback_once_per_cache_entry;
        ] );
    ]
