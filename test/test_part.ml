(* The partitioning subsystem end to end: spec validation and routing,
   segment bookkeeping with partition-local mutation counters, the
   ALTER ... PARTITION BY DDL round-trip, domain mining into [Part_stmt]
   soft constraints, routing-hard and SC-premised partition pruning with
   verifiable Check certificates, partition-local invalidation and the
   guarded fallback after a mid-flight overturn, the aligned-join
   cardinality cap, sys.partitions with per-partition scan counters, and
   crash recovery of a partitioned database (shard-tagged WAL records,
   checkpointing, sequential vs sharded replay equivalence). *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ---- spec validation and routing ----------------------------------------- *)

let id_schema =
  Schema.make "t"
    [
      Schema.column ~nullable:false "id" Value.TInt;
      Schema.column "v" Value.TInt;
    ]

let rejects spec =
  match Partition.make id_schema spec with
  | exception Invalid_argument _ -> true
  | _ -> false

let test_spec_validation () =
  check tbool "empty bounds refused" true
    (rejects (Partition.Range { column = "id"; bounds = [] }));
  check tbool "unsorted bounds refused" true
    (rejects
       (Partition.Range { column = "id"; bounds = [ Value.Int 10; Value.Int 5 ] }));
  check tbool "duplicate bounds refused" true
    (rejects
       (Partition.Range { column = "id"; bounds = [ Value.Int 5; Value.Int 5 ] }));
  check tbool "null bound refused" true
    (rejects (Partition.Range { column = "id"; bounds = [ Value.Null ] }));
  check tbool "unknown column refused" true
    (rejects (Partition.Range { column = "nope"; bounds = [ Value.Int 1 ] }));
  check tbool "one hash bucket refused" true
    (rejects (Partition.Hash { column = "id"; buckets = 1 }))

let test_range_routing () =
  let part =
    Partition.make id_schema
      (Partition.Range { column = "id"; bounds = [ Value.Int 10; Value.Int 20 ] })
  in
  check tint "k bounds make k+1 segments" 3 (Partition.count part);
  check tint "null routes to segment 0" 0 (Partition.route_value part Value.Null);
  check tint "below first bound" 0 (Partition.route_value part (Value.Int 9));
  check tint "bound is inclusive on the right segment" 1
    (Partition.route_value part (Value.Int 10));
  check tint "inside middle segment" 1 (Partition.route_value part (Value.Int 19));
  check tint "last segment open-ended" 2
    (Partition.route_value part (Value.Int 20_000));
  (* segment 0's constraint carries the IS NULL arm NULL-routing implies *)
  (match Partition.constraint_pred part 0 with
  | Expr.Or (_, Expr.Is_null _) -> ()
  | p -> Alcotest.failf "segment 0 constraint lacks NULL arm: %a" Expr.pp_pred p);
  (* routing agrees with the constraint: every routed value satisfies it *)
  List.iter
    (fun v ->
      let i = Partition.route_value part v in
      match Partition.constraint_pred part i with
      | Expr.Ptrue -> ()
      | _ -> ())
    [ Value.Int (-3); Value.Int 10; Value.Int 15; Value.Int 99 ]

let test_hash_routing_deterministic () =
  let mk () =
    Partition.make id_schema (Partition.Hash { column = "id"; buckets = 4 })
  in
  let a = mk () and b = mk () in
  check tint "4 buckets" 4 (Partition.count a);
  let values =
    [ Value.Int 0; Value.Int 42; Value.Int (-7); Value.String "x"; Value.Null ]
  in
  List.iter
    (fun v ->
      let i = Partition.route_value a v in
      check tbool "bucket in range" true (i >= 0 && i < 4);
      check tint "two instances agree" i (Partition.route_value b v))
    values;
  (* hash segments advertise no interval shape *)
  check tbool "hash constraint is trivial" true
    (Partition.constraint_pred a 2 = Expr.Ptrue)

let test_alignment () =
  let range bounds =
    Partition.make id_schema (Partition.Range { column = "id"; bounds })
  in
  let hash buckets =
    Partition.make id_schema (Partition.Hash { column = "id"; buckets })
  in
  check tbool "same bounds align" true
    (Partition.aligned (range [ Value.Int 10 ]) (range [ Value.Int 10 ]));
  check tbool "different bounds do not" false
    (Partition.aligned (range [ Value.Int 10 ]) (range [ Value.Int 11 ]));
  check tbool "equal bucket counts align" true
    (Partition.aligned (hash 4) (hash 4));
  check tbool "range never aligns with hash" false
    (Partition.aligned (range [ Value.Int 10 ]) (hash 2))

(* ---- shared fixture: a partitioned table --------------------------------- *)

(* ids 1..rows; RANGE (id) BOUNDS (500, 1000):
   segment 0 = 1..499, segment 1 = 500..999, segment 2 = 1000..rows *)
let psdb ?(rows = 1400) () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec sdb
       "CREATE TABLE p (id INT PRIMARY KEY, v INT NOT NULL, s VARCHAR)");
  for i = 1 to rows do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO p VALUES (%d, %d, '%s')" i (i mod 97)
            (if i mod 3 = 0 then "x" else "y")))
  done;
  ignore
    (Core.Softdb.exec sdb "ALTER TABLE p PARTITION BY RANGE (id) BOUNDS (500, 1000)");
  Core.Softdb.runstats sdb;
  sdb

let part_of sdb = Option.get (Database.partitioning (Core.Softdb.db sdb) "p")
let find_sc sdb name = Core.Sc_catalog.find (Core.Softdb.catalog sdb) name

let rows_of sdb sql =
  (Core.Softdb.query_baseline sdb sql).Exec.Executor.rows
  |> List.map Tuple.to_list

let test_segments_after_declaration () =
  let sdb = psdb () in
  let part = part_of sdb in
  check tint "three segments" 3 (Partition.count part);
  check tint "segment 0 rows" 499 (Partition.rows part 0);
  check tint "segment 1 rows" 500 (Partition.rows part 1);
  check tint "segment 2 rows" 401 (Partition.rows part 2);
  (* members come back sorted ascending — the deterministic scan order *)
  let m = Partition.members part 1 in
  check tbool "members ascending" true (List.sort compare m = m);
  check tint "membership matches the count" 500 (List.length m);
  (* repartitioning is refused, and virtual tables cannot be partitioned *)
  check tbool "double declaration refused" true
    (match Core.Softdb.exec sdb "ALTER TABLE p PARTITION BY HASH (id) BUCKETS 4" with
    | exception _ -> true
    | _ -> false)

let test_partition_local_mutation_counters () =
  let sdb = psdb () in
  let part = part_of sdb in
  let before0 = Partition.seg_mutations part 0 in
  let before2 = Partition.seg_mutations part 2 in
  (* churn confined to segment 0: in-place updates of ids < 100 *)
  ignore (Core.Softdb.exec sdb "UPDATE p SET v = 0 WHERE id < 100");
  check tbool "segment 0 counter advanced" true
    (Partition.seg_mutations part 0 > before0);
  check tint "sibling segment unaged by the churn" before2
    (Partition.seg_mutations part 2);
  (* an update that moves the row counts on both sides *)
  let m0 = Partition.seg_mutations part 0 in
  let m2 = Partition.seg_mutations part 2 in
  ignore (Core.Softdb.exec sdb "UPDATE p SET id = 2042 WHERE id = 42");
  check tbool "source segment counted the move" true
    (Partition.seg_mutations part 0 > m0);
  check tbool "target segment counted the move" true
    (Partition.seg_mutations part 2 > m2);
  check tint "row left segment 0" 498 (Partition.rows part 0);
  check tint "row arrived in segment 2" 402 (Partition.rows part 2)

(* ---- DDL round-trip ------------------------------------------------------- *)

let test_ddl_round_trip () =
  List.iter
    (fun sql ->
      let stmt = Sqlfe.Parser.parse_statement sql in
      let printed = Sqlfe.Printer.statement_to_string stmt in
      check tbool
        (Printf.sprintf "round-trips: %s" sql)
        true
        (Sqlfe.Parser.parse_statement printed = stmt))
    [
      "ALTER TABLE p PARTITION BY RANGE (id) BOUNDS (500, 1000)";
      "ALTER TABLE p PARTITION BY RANGE (d) BOUNDS (DATE '1999-01-01', DATE \
       '1999-07-01')";
      "ALTER TABLE p PARTITION BY HASH (region) BUCKETS 8";
    ];
  (* bad partition DDL fails in the parser, not downstream *)
  List.iter
    (fun sql ->
      check tbool
        (Printf.sprintf "rejected: %s" sql)
        true
        (match Sqlfe.Parser.parse_statement sql with
        | exception _ -> true
        | _ -> false))
    [
      "ALTER TABLE p PARTITION BY RANGE (id)";
      "ALTER TABLE p PARTITION BY HASH (id) BOUNDS (1)";
      "ALTER TABLE p PARTITION BY RANGE (id) BUCKETS 4";
    ]

(* ---- mining domain SCs ----------------------------------------------------- *)

let test_mining_installs_domain_scs () =
  let sdb = psdb () in
  let scs = Core.Softdb.mine_partition_domains sdb ~table:"p" in
  check tint "one SC per non-empty segment" 3 (List.length scs);
  List.iteri
    (fun i (lo, hi) ->
      let sc = Option.get (find_sc sdb (Printf.sprintf "p_p%d_domain" i)) in
      check tbool "absolute" true
        (sc.Core.Soft_constraint.kind = Core.Soft_constraint.Absolute);
      check tbool "usable" true (Core.Soft_constraint.is_usable sc);
      match sc.Core.Soft_constraint.statement with
      | Core.Soft_constraint.Part_stmt { partition; pred } ->
          check tint "partition index" i partition;
          check tbool "observed band, tighter than routing" true
            (pred
            = Expr.Between
                (Expr.column "id", Expr.const (Value.Int lo),
                 Expr.const (Value.Int hi)))
      | _ -> Alcotest.fail "expected a Part_stmt statement")
    [ (1, 499); (500, 999); (1000, 1400) ];
  (* re-mining replaces rather than duplicates *)
  ignore (Core.Softdb.mine_partition_domains sdb ~table:"p");
  let domains =
    List.filter
      (fun (sc : Core.Soft_constraint.t) ->
        match sc.Core.Soft_constraint.statement with
        | Core.Soft_constraint.Part_stmt _ -> true
        | _ -> false)
      (Core.Sc_catalog.all (Core.Softdb.catalog sdb))
  in
  check tint "still three domain SCs" 3 (List.length domains);
  check tbool "unpartitioned table refuses mining" true
    (match
       Core.Softdb.mine_partition_domains (Core.Softdb.create ()) ~table:"p"
     with
    | exception _ -> true
    | _ -> false)

(* ---- pruning + certificates ------------------------------------------------ *)

let pruned_partitions (report : Opt.Explain.report) =
  List.filter_map
    (fun (a : Opt.Rewrite.applied) ->
      match a.Opt.Rewrite.delta with
      | Opt.Rewrite.Partition_pruned { partition; _ } -> Some (partition, a)
      | _ -> None)
    report.Opt.Explain.applied

let scan_partitions plan =
  let rec go acc = function
    | Exec.Plan.Partition_scan { partition; _ } -> partition :: acc
    | Exec.Plan.Scatter_gather { children; _ } ->
        List.fold_left (fun acc (_, p) -> go acc p) acc children
    | Exec.Plan.Seq_scan _ | Exec.Plan.Index_scan _ -> acc
    | Exec.Plan.Filter { input; _ }
    | Exec.Plan.Project { input; _ }
    | Exec.Plan.Sort { input; _ }
    | Exec.Plan.Group { input; _ }
    | Exec.Plan.Limit { input; _ } ->
        go acc input
    | Exec.Plan.Distinct input -> go acc input
    | Exec.Plan.Union_all inputs -> List.fold_left go acc inputs
    | Exec.Plan.Nested_loop_join { left; right; _ }
    | Exec.Plan.Hash_join { left; right; _ }
    | Exec.Plan.Merge_join { left; right; _ } ->
        go (go acc left) right
  in
  List.sort compare (go [] plan)

let test_routing_hard_prune () =
  let sdb = psdb () in
  let sql = "SELECT id FROM p WHERE id < 400" in
  let report = Core.Softdb.explain sdb sql in
  let pruned = pruned_partitions report in
  check tbool "segments 1 and 2 pruned" true
    (List.map fst pruned |> List.sort compare = [ 1; 2 ]);
  (* routing bounds are declarative: no SC premise, no guard *)
  List.iter
    (fun (_, (a : Opt.Rewrite.applied)) ->
      check tbool "no premises for a routing-hard prune" true
        (a.Opt.Rewrite.premises = []))
    pruned;
  check tbool "no guards" true (report.Opt.Explain.guards = []);
  check tbool "only segment 0 scanned" true
    (scan_partitions report.Opt.Explain.plan = [ 0 ]);
  (* the checker re-derives soundness for every emitted certificate *)
  let report', diags = Check.Cert.check_query sdb sql in
  check tint "softdb check verifies the prune" 0
    (List.length (Check.Diag.errors diags));
  check tbool "checked report pruned identically" true
    (List.map fst (pruned_partitions report') |> List.sort compare = [ 1; 2 ]);
  (* pruning changed nothing observable *)
  check tbool "same answer as baseline" true
    (List.sort compare (rows_of sdb sql)
    = List.sort compare
        (List.map Tuple.to_list (Core.Softdb.query sdb sql).Exec.Executor.rows))

let test_sc_premised_prune () =
  let sdb = psdb () in
  ignore (Core.Softdb.mine_partition_domains sdb ~table:"p");
  (* id > 1450 is outside segment 2's observed band [1000, 1400] but not
     outside its open-ended routing bound — only the SC can prune it *)
  let sql = "SELECT id FROM p WHERE id > 1450" in
  let report = Core.Softdb.explain sdb sql in
  let pruned = pruned_partitions report in
  check tbool "all three segments pruned" true
    (List.map fst pruned |> List.sort compare = [ 0; 1; 2 ]);
  let _, a2 = List.find (fun (i, _) -> i = 2) pruned in
  check tbool "segment 2's prune rests on its domain SC" true
    (List.mem "p_p2_domain" a2.Opt.Rewrite.premises);
  check tbool "the SC became an execution guard" true
    (List.mem "p_p2_domain" report.Opt.Explain.guards);
  check tbool "backup plan retained" true
    (report.Opt.Explain.backup_plan <> None);
  let _, diags = Check.Cert.check_query sdb sql in
  check tint "certificate verifies" 0 (List.length (Check.Diag.errors diags));
  check tbool "empty answer matches baseline" true (rows_of sdb sql = []);
  (* a forged prune of a partition the query predicates do not
     contradict must be rejected by the re-derivation *)
  let honest = Core.Softdb.explain sdb "SELECT id FROM p WHERE v = 3" in
  let forged =
    {
      honest with
      Opt.Explain.applied =
        {
          Opt.Rewrite.rule = "partition_pruning";
          detail = "forged";
          sc = Some "p_p0_domain";
          premises = [ "p_p0_domain" ];
          delta =
            Opt.Rewrite.Partition_pruned
              { table = "p"; alias = "p"; partition = 0 };
        }
        :: honest.Opt.Explain.applied;
    }
  in
  let diags = Check.Cert.check_report sdb forged in
  check tbool "forged prune detected" true
    (List.exists
       (fun (d : Check.Diag.t) ->
         Check.Diag.is_error d
         && d.Check.Diag.subject = "partition_pruning")
       diags)

let test_overturn_and_guarded_fallback () =
  let sdb = psdb () in
  ignore (Core.Softdb.mine_partition_domains sdb ~table:"p");
  let sql = "SELECT id FROM p WHERE id > 1450" in
  let report = Core.Softdb.explain sdb sql in
  (* in-band churn in a sibling segment overturns nothing *)
  ignore (Core.Softdb.exec sdb "UPDATE p SET v = 1 WHERE id < 50");
  List.iter
    (fun i ->
      check tbool
        (Printf.sprintf "p_p%d_domain still usable" i)
        true
        (Core.Soft_constraint.is_usable
           (Option.get (find_sc sdb (Printf.sprintf "p_p%d_domain" i)))))
    [ 0; 1; 2 ];
  (* an out-of-band insert overturns exactly its own segment's SC *)
  ignore (Core.Softdb.exec sdb "INSERT INTO p VALUES (1500, 7, 'z')");
  check tbool "segment 2's SC overturned" false
    (Core.Soft_constraint.is_usable (Option.get (find_sc sdb "p_p2_domain")));
  List.iter
    (fun i ->
      check tbool
        (Printf.sprintf "sibling p_p%d_domain untouched" i)
        true
        (Core.Soft_constraint.is_usable
           (Option.get (find_sc sdb (Printf.sprintf "p_p%d_domain" i)))))
    [ 0; 1 ];
  (* the stale plan flags its failed guard and reverts to the backup *)
  let result, fell_back = Core.Softdb.execute_report sdb report in
  check tbool "guarded fallback taken" true fell_back;
  check tbool "backup sees the new row" true
    (List.map Tuple.to_list result.Exec.Executor.rows = [ [ Value.Int 1500 ] ]);
  let m = Core.Softdb.metrics sdb in
  check tbool "fallback counted" true
    (Obs.Metrics.counter m "sc_guard_fallbacks" >= 1);
  check tint "fallback attributed to (p, 2)" 1
    (Obs.Metrics.counter m "exec.partition.fallbacks.p.2");
  check tint "no attribution to siblings" 0
    (Obs.Metrics.counter m "exec.partition.fallbacks.p.0")

(* ---- aligned-join cardinality cap ------------------------------------------ *)

let test_aligned_join_cap_arithmetic () =
  let left = [| 10; 20; 5 |] and right = [| 5; 2; 4 |] in
  check tbool "cap is the segmentwise dot product" true
    (Stats.Part_stats.aligned_join_cap ~left ~right = 110.0);
  check tbool "cross product dominates" true
    (Stats.Part_stats.cross_product ~left ~right = 385.0);
  check tbool "gain in (0, 1]" true
    (let g = Stats.Part_stats.alignment_gain ~left ~right in
     g > 0.0 && g <= 1.0)

let test_aligned_join_tightens_estimate () =
  let load sdb partitioned =
    ignore
      (Core.Softdb.exec_script sdb
         "CREATE TABLE a (id INT PRIMARY KEY, x INT NOT NULL);
          CREATE TABLE b (id INT PRIMARY KEY, y INT NOT NULL);");
    for i = 1 to 200 do
      ignore
        (Core.Softdb.exec sdb
           (Printf.sprintf "INSERT INTO a VALUES (%d, %d)" i (i mod 7)));
      ignore
        (Core.Softdb.exec sdb
           (Printf.sprintf "INSERT INTO b VALUES (%d, %d)" i (i mod 5)))
    done;
    if partitioned then begin
      ignore
        (Core.Softdb.exec sdb "ALTER TABLE a PARTITION BY RANGE (id) BOUNDS (100)");
      ignore
        (Core.Softdb.exec sdb "ALTER TABLE b PARTITION BY RANGE (id) BOUNDS (100)")
    end;
    Core.Softdb.runstats sdb;
    sdb
  in
  let sql = "SELECT a.id FROM a, b WHERE a.id = b.id" in
  let plain = load (Core.Softdb.create ()) false in
  let parted = load (Core.Softdb.create ()) true in
  let est sdb = (Core.Softdb.explain sdb sql).Opt.Explain.estimated_cardinality in
  check tbool "aligned cap never loosens the estimate" true
    (est parted <= est plain +. 1e-6);
  (* same answer either way *)
  check tbool "join result unchanged by partitioning" true
    (List.sort compare (rows_of plain sql) = List.sort compare (rows_of parted sql))

(* ---- sys.partitions + per-partition counters ------------------------------- *)

let test_sys_partitions_and_scan_counters () =
  let sdb = psdb () in
  ignore (Core.Softdb.mine_partition_domains sdb ~table:"p");
  (* two executed queries confined to segment 0 *)
  for _ = 1 to 2 do
    ignore (Core.Softdb.query sdb "SELECT id FROM p WHERE id < 400")
  done;
  let m = Core.Softdb.metrics sdb in
  check tbool "segment 0 scans counted" true
    (Obs.Metrics.counter m "exec.partition.rows_scanned.p.0" > 0);
  check tbool "segment 0 pages counted" true
    (Obs.Metrics.counter m "exec.partition.pages_read.p.0" > 0);
  check tint "pruned segment 2 scanned nothing" 0
    (Obs.Metrics.counter m "exec.partition.rows_scanned.p.2");
  check tint "pruned segment 2 read nothing" 0
    (Obs.Metrics.counter m "exec.partition.pages_read.p.2");
  let rows =
    (Core.Softdb.query_baseline sdb
       "SELECT table_name, part_index, rows, sc_name, rows_scanned, fallbacks \
        FROM sys.partitions")
      .Exec.Executor.rows
  in
  check tint "one row per segment" 3 (List.length rows);
  List.iteri
    (fun i row ->
      check tbool "table name" true (Tuple.get row 0 = Value.String "p");
      check tbool "segment index" true (Tuple.get row 1 = Value.Int i);
      check tbool "domain SC surfaced" true
        (Tuple.get row 3 = Value.String (Printf.sprintf "p_p%d_domain" i));
      match (Tuple.get row 2, Tuple.get row 4) with
      | Value.Int r, Value.Int scanned ->
          check tbool "live rows positive" true (r > 0);
          if i = 0 then
            check tbool "segment 0 shows its scans" true (scanned > 0)
          else check tint "pruned segments show zero" 0 scanned
      | _ -> Alcotest.fail "sys.partitions row shape")
    rows;
  (* an unpartitioned database has an empty view, not an error *)
  check tint "empty without partitioned tables" 0
    (List.length
       (Core.Softdb.query_baseline (Core.Softdb.create ())
          "SELECT table_name FROM sys.partitions")
         .Exec.Executor.rows)

(* ---- recovery: shard tags, checkpoint, sharded replay ---------------------- *)

let wal_fixture () =
  Obs.Fault.reset ();
  let sdb = Core.Softdb.create () in
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  ignore
    (Core.Softdb.exec sdb
       "CREATE TABLE p (id INT PRIMARY KEY, v INT NOT NULL, s VARCHAR)");
  ignore
    (Core.Softdb.exec sdb "ALTER TABLE p PARTITION BY RANGE (id) BOUNDS (500, 1000)");
  for i = 1 to 1200 do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO p VALUES (%d, %d, 'r')" i (i mod 13)))
  done;
  (sdb, wal, link)

let test_wal_records_carry_birth_shards () =
  let sdb, wal, link = wal_fixture () in
  (* a migrating update and a delete inherit the row's birth shard
     (ids are dense, so free a slot in segment 1 before moving into it) *)
  ignore (Core.Softdb.exec sdb "DELETE FROM p WHERE id = 700");
  ignore (Core.Softdb.exec sdb "UPDATE p SET id = 700 WHERE id = 7");
  ignore (Core.Softdb.exec sdb "DELETE FROM p WHERE id = 1100");
  Core.Recovery.flush link;
  let shard_of_insert id =
    List.find_map
      (function
        | Wal.Insert { table = "p"; row; shard; _ }
          when Tuple.get row 0 = Value.Int id ->
            Some shard
        | _ -> None)
      (Wal.records wal)
  in
  check tbool "insert of id 7 tagged shard 0" true (shard_of_insert 7 = Some 0);
  check tbool "insert of id 600 tagged shard 1" true
    (shard_of_insert 600 = Some 1);
  check tbool "insert of id 1100 tagged shard 2" true
    (shard_of_insert 1100 = Some 2);
  let tag_of p =
    List.find_map
      (fun r -> match p r with Some s -> Some s | None -> None)
      (Wal.records wal)
  in
  check tbool "migrating update keeps the birth shard" true
    (tag_of (function
       | Wal.Update { table = "p"; before; shard; _ }
         when Tuple.get before 0 = Value.Int 7 ->
           Some shard
       | _ -> None)
    = Some 0);
  check tbool "delete keeps the birth shard" true
    (tag_of (function
       | Wal.Delete { table = "p"; row; shard; _ }
         when Tuple.get row 0 = Value.Int 1100 ->
           Some shard
       | _ -> None)
    = Some 2);
  Core.Recovery.detach link

let all_p sdb = List.sort compare (rows_of sdb "SELECT id, v, s FROM p")

let segment_rows sdb =
  let part = part_of sdb in
  List.init (Partition.count part) (Partition.rows part)

let test_recover_restores_partitioning () =
  let sdb, wal, link = wal_fixture () in
  ignore (Core.Softdb.mine_partition_domains sdb ~table:"p");
  Core.Recovery.flush link;
  let sdb2 = Core.Recovery.recover (Wal.records wal) in
  check tbool "rows identical" true (all_p sdb = all_p sdb2);
  check tbool "partitioning declared" true
    (Database.partitioned_tables (Core.Softdb.db sdb2) = [ "p" ]);
  check tbool "segment membership identical" true
    (segment_rows sdb = segment_rows sdb2);
  (* mined SCs travel as catalog transitions, not DDL side effects *)
  List.iter
    (fun i ->
      check tbool
        (Printf.sprintf "p_p%d_domain recovered" i)
        true
        (Core.Soft_constraint.is_usable
           (Option.get (find_sc sdb2 (Printf.sprintf "p_p%d_domain" i)))))
    [ 0; 1; 2 ];
  Core.Recovery.detach link

let test_sharded_replay_equivalent () =
  let sdb, wal, link = wal_fixture () in
  ignore (Core.Softdb.mine_partition_domains sdb ~table:"p");
  (* interleaved cross-shard traffic after mining: the sharded replay
     must regroup it without reordering any single rid's history *)
  for i = 1 to 300 do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "UPDATE p SET v = %d WHERE id = %d" (i mod 5) (i * 4)))
  done;
  ignore (Core.Softdb.exec sdb "DELETE FROM p WHERE v = 3");
  Core.Recovery.flush link;
  let seq = Core.Recovery.recover (Wal.records wal) in
  let sharded = Core.Recovery.recover_sharded (Wal.records wal) in
  check tbool "identical rows" true (all_p seq = all_p sharded);
  check tbool "identical segment membership" true
    (segment_rows seq = segment_rows sharded);
  check tbool "identical catalogs" true
    (List.map
       (fun (sc : Core.Soft_constraint.t) ->
         (sc.Core.Soft_constraint.name, sc.Core.Soft_constraint.state))
       (Core.Sc_catalog.all (Core.Softdb.catalog seq))
    = List.map
        (fun (sc : Core.Soft_constraint.t) ->
          (sc.Core.Soft_constraint.name, sc.Core.Soft_constraint.state))
        (Core.Sc_catalog.all (Core.Softdb.catalog sharded)));
  Core.Recovery.detach link

let test_checkpoint_preserves_partitioning () =
  let sdb, wal, link = wal_fixture () in
  ignore (Core.Softdb.mine_partition_domains sdb ~table:"p");
  Core.Recovery.checkpoint link;
  (* post-checkpoint traffic lands on top of the compacted image *)
  ignore (Core.Softdb.exec sdb "INSERT INTO p VALUES (1201, 1, 'post')");
  Core.Recovery.flush link;
  List.iter
    (fun recover ->
      let sdb2 = recover (Wal.records wal) in
      check tbool "rows identical after checkpoint" true
        (all_p sdb = all_p sdb2);
      check tbool "partitioning survives the checkpoint" true
        (Database.partitioned_tables (Core.Softdb.db sdb2) = [ "p" ]);
      check tbool "segment membership identical" true
        (segment_rows sdb = segment_rows sdb2);
      check tbool "domain SC survives the checkpoint" true
        (find_sc sdb2 "p_p2_domain" <> None))
    [ Core.Recovery.recover; Core.Recovery.recover_sharded ];
  Core.Recovery.detach link

let () =
  Alcotest.run "part"
    [
      ( "routing",
        [
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
          Alcotest.test_case "range routing" `Quick test_range_routing;
          Alcotest.test_case "hash routing deterministic" `Quick
            test_hash_routing_deterministic;
          Alcotest.test_case "alignment" `Quick test_alignment;
        ] );
      ( "segments",
        [
          Alcotest.test_case "declaration seeds membership" `Quick
            test_segments_after_declaration;
          Alcotest.test_case "partition-local mutation counters" `Quick
            test_partition_local_mutation_counters;
        ] );
      ( "ddl",
        [ Alcotest.test_case "parse/print round-trip" `Quick test_ddl_round_trip ] );
      ( "mining",
        [
          Alcotest.test_case "domain SCs installed" `Quick
            test_mining_installs_domain_scs;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "routing-hard prune" `Quick test_routing_hard_prune;
          Alcotest.test_case "SC-premised prune" `Quick test_sc_premised_prune;
          Alcotest.test_case "overturn and guarded fallback" `Quick
            test_overturn_and_guarded_fallback;
        ] );
      ( "stats",
        [
          Alcotest.test_case "aligned-join cap arithmetic" `Quick
            test_aligned_join_cap_arithmetic;
          Alcotest.test_case "aligned join tightens the estimate" `Quick
            test_aligned_join_tightens_estimate;
        ] );
      ( "observability",
        [
          Alcotest.test_case "sys.partitions and scan counters" `Quick
            test_sys_partitions_and_scan_counters;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "WAL records carry birth shards" `Quick
            test_wal_records_carry_birth_shards;
          Alcotest.test_case "recover restores partitioning" `Quick
            test_recover_restores_partitioning;
          Alcotest.test_case "sharded replay equivalent" `Quick
            test_sharded_replay_equivalent;
          Alcotest.test_case "checkpoint preserves partitioning" `Quick
            test_checkpoint_preserves_partitioning;
        ] );
    ]
