(* Tests for the extension features: Sybase-style min/max domain tracking
   (paper §4.2 runtime parameterization), the transaction layer with
   soft-constraint reinstatement on abort (§4.1), and equality-transitivity
   constant propagation in the rewrite engine. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let rules_fired report =
  List.map (fun a -> a.Opt.Rewrite.rule) report.Opt.Explain.applied
  |> List.sort_uniq String.compare

(* ---- domain tracking (min/max SCs) --------------------------------------- *)

let domain_sdb () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE m (id INT PRIMARY KEY, v INT NOT NULL, w FLOAT, s \
        VARCHAR);
        CREATE INDEX m_v ON m (v);");
  for i = 1 to 500 do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO m VALUES (%d, %d, %f, 'x')" i
            (100 + (i mod 200))
            (float_of_int i)))
  done;
  Core.Softdb.runstats sdb;
  sdb

let test_domain_track_installs () =
  let sdb = domain_sdb () in
  let scs = Core.Domain_tracker.track sdb ~table:"m" in
  (* id, v, w are trackable; s is a string *)
  check tint "three tracked" 3 (List.length scs);
  match Core.Domain_tracker.current_range sdb ~table:"m" ~column:"v" with
  | Some (Value.Int 100, Value.Int 299) -> ()
  | Some (lo, hi) ->
      Alcotest.failf "wrong range: %s..%s" (Value.to_debug lo)
        (Value.to_debug hi)
  | None -> Alcotest.fail "no range"

let test_domain_widens_on_insert () =
  let sdb = domain_sdb () in
  ignore (Core.Domain_tracker.track sdb ~table:"m" ~columns:[ "v" ]);
  (* inserting beyond the max widens the SC instead of dropping it *)
  ignore (Core.Softdb.exec sdb "INSERT INTO m VALUES (9001, 5000, 1.0, 'y')");
  (match Core.Domain_tracker.current_range sdb ~table:"m" ~column:"v" with
  | Some (Value.Int 100, Value.Int 5000) -> ()
  | _ -> Alcotest.fail "expected widened range");
  let sc =
    Option.get
      (Core.Sc_catalog.find (Core.Softdb.catalog sdb)
         (Core.Domain_tracker.sc_name ~table:"m" ~column:"v"))
  in
  check tbool "still active" true (Core.Soft_constraint.is_usable sc)

let test_domain_proves_emptiness () =
  let sdb = domain_sdb () in
  ignore (Core.Domain_tracker.track sdb ~table:"m" ~columns:[ "v" ]);
  let sql = "SELECT * FROM m WHERE v > 10000" in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "sound" true (Exec.Executor.same_rows base opt);
  check tint "empty without touching a row" 0
    opt.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned;
  let report = Core.Softdb.explain sdb sql in
  check tbool "proved unsatisfiable" true
    (List.mem "unsatisfiable" (rules_fired report))

let test_domain_closes_open_range () =
  let sdb = domain_sdb () in
  ignore (Core.Domain_tracker.track sdb ~table:"m" ~columns:[ "v" ]);
  (* an open-ended range closes at the maintained max: the §4.2
     "abbreviate range conditions" effect *)
  let report = Core.Softdb.explain sdb "SELECT * FROM m WHERE v >= 295" in
  check tbool "introduction fired" true
    (List.mem "predicate_introduction" (rules_fired report));
  let base = Core.Softdb.query_baseline sdb "SELECT * FROM m WHERE v >= 295" in
  let opt = Core.Softdb.query sdb "SELECT * FROM m WHERE v >= 295" in
  check tbool "sound" true (Exec.Executor.same_rows base opt)

let test_domain_retighten_after_delete () =
  let sdb = domain_sdb () in
  ignore (Core.Domain_tracker.track sdb ~table:"m" ~columns:[ "v" ]);
  ignore (Core.Softdb.exec sdb "DELETE FROM m WHERE v > 200");
  (* deletes leave the range loose but valid *)
  (match Core.Domain_tracker.current_range sdb ~table:"m" ~column:"v" with
  | Some (_, Value.Int 299) -> ()
  | _ -> Alcotest.fail "expected loose range after delete");
  Core.Domain_tracker.retighten sdb ~table:"m";
  match Core.Domain_tracker.current_range sdb ~table:"m" ~column:"v" with
  | Some (Value.Int 100, Value.Int 200) -> ()
  | Some (lo, hi) ->
      Alcotest.failf "not retightened: %s..%s" (Value.to_debug lo)
        (Value.to_debug hi)
  | None -> Alcotest.fail "no range after retighten"

(* ---- transactions ---------------------------------------------------------- *)

let txn_sdb () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE acct (id INT PRIMARY KEY, bal INT NOT NULL);
        INSERT INTO acct VALUES (1, 100), (2, 200), (3, 300);");
  sdb

let balances sdb =
  (Core.Softdb.query sdb "SELECT id, bal FROM acct ORDER BY id")
    .Exec.Executor.rows |> List.map Tuple.to_list

let test_txn_commit_keeps () =
  let sdb = txn_sdb () in
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "UPDATE acct SET bal = bal - 50 WHERE id = 1");
  ignore (Core.Softdb.exec sdb "UPDATE acct SET bal = bal + 50 WHERE id = 2");
  check tint "two mutations" 2 (Core.Txn.mutation_count t);
  Core.Txn.commit t;
  check tbool "transfer applied" true
    (balances sdb
    = [
        [ Value.Int 1; Value.Int 50 ]; [ Value.Int 2; Value.Int 250 ];
        [ Value.Int 3; Value.Int 300 ];
      ])

let test_txn_rollback_restores () =
  let sdb = txn_sdb () in
  let before = balances sdb in
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "UPDATE acct SET bal = 0");
  ignore (Core.Softdb.exec sdb "DELETE FROM acct WHERE id = 2");
  ignore (Core.Softdb.exec sdb "INSERT INTO acct VALUES (4, 9)");
  Core.Txn.rollback t;
  check tbool "state restored" true (balances sdb = before)

let test_txn_atomically () =
  let sdb = txn_sdb () in
  let before = balances sdb in
  let r =
    Core.Txn.atomically sdb (fun () ->
        ignore (Core.Softdb.exec sdb "DELETE FROM acct WHERE id = 1");
        failwith "boom")
  in
  check tbool "error propagated" true
    (match r with
    | Error (Failure m) when String.equal m "boom" -> true
    | _ -> false);
  check tbool "rolled back" true (balances sdb = before);
  let r2 =
    Core.Txn.atomically sdb (fun () ->
        ignore (Core.Softdb.exec sdb "DELETE FROM acct WHERE id = 1"))
  in
  check tbool "committed" true (Result.is_ok r2);
  check tint "two accounts left" 2 (List.length (balances sdb))

let test_txn_reinstates_asc_on_abort () =
  (* the paper's §4.1 scenario: transaction B violates (overturns) an ASC,
     then aborts — the ASC must come back *)
  let sdb = txn_sdb () in
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE acct ADD CONSTRAINT bal_range CHECK (bal BETWEEN 0 AND \
        1000) SOFT");
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "bal_range")
  in
  check tbool "asc" true (Core.Soft_constraint.is_absolute sc);
  let t = Core.Txn.begin_ sdb in
  ignore (Core.Softdb.exec sdb "INSERT INTO acct VALUES (9, 50000)");
  check tbool "overturned inside txn" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
  Core.Txn.rollback t;
  check tbool "reinstated after abort" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Active);
  check tint "violation count restored" 0
    sc.Core.Soft_constraint.violation_count;
  (* and the data is consistent with the reinstated ASC *)
  let env = Database.checker_env (Core.Softdb.db sdb) in
  let ic =
    Icdef.make ~name:"bal_range" ~table:"acct"
      (Icdef.Check
         (Expr.Between (Expr.column "bal", Expr.int 0, Expr.int 1000)))
  in
  check tbool "holds after rollback" true (Checker.holds env ic)

let test_txn_rollback_keeps_exception_table_consistent () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows = 800 }
    (Core.Softdb.db sdb);
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
        order_date BETWEEN 0 AND 21) SOFT");
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_exc FOR CONSTRAINT ship_3w");
  let db = Core.Softdb.db sdb in
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ship_3w")
  in
  let handle =
    {
      Core.Exception_table.constraint_name = "ship_3w";
      base_table = "purchase";
      exception_table = "late_exc";
      check = Option.get (Core.Soft_constraint.check_pred sc);
    }
  in
  check tbool "consistent before" true
    (Core.Exception_table.consistent db handle);
  let t = Core.Txn.begin_ sdb in
  let rng = Stats.Rng.create 3 in
  Workload.Purchase.insert_batch ~violating:0.5 ~rng ~start_id:777_000
    ~count:60 db;
  check tbool "consistent inside txn" true
    (Core.Exception_table.consistent db handle);
  Core.Txn.rollback t;
  check tbool "consistent after rollback" true
    (Core.Exception_table.consistent db handle)

let test_txn_single_active () =
  let sdb = txn_sdb () in
  let t = Core.Txn.begin_ sdb in
  check tbool "second begin rejected" true
    (try
       ignore (Core.Txn.begin_ sdb);
       false
     with Core.Txn.Transaction_error _ -> true);
  Core.Txn.commit t;
  let t2 = Core.Txn.begin_ sdb in
  Core.Txn.rollback t2

(* ---- equality transitivity --------------------------------------------------- *)

let test_transitivity_derives_constant () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE ta (k INT PRIMARY KEY, x INT);
        CREATE TABLE tb (k INT PRIMARY KEY, y INT);
        CREATE INDEX tb_k ON tb (k);");
  for i = 1 to 300 do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO ta VALUES (%d, %d)" i (i * 2)));
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO tb VALUES (%d, %d)" i (i * 3)))
  done;
  Core.Softdb.runstats sdb;
  let sql = "SELECT * FROM ta a, tb b WHERE a.k = b.k AND a.k = 42" in
  let report = Core.Softdb.explain sdb sql in
  check tbool "transitivity fired" true
    (List.mem "equality_transitivity" (rules_fired report));
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "sound" true (Exec.Executor.same_rows base opt);
  check tint "one row" 1 (List.length opt.Exec.Executor.rows);
  check tbool "touches fewer rows" true
    (opt.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned
    < base.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned)

let test_transitivity_chain () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE c1 (k INT PRIMARY KEY);
        CREATE TABLE c2 (k INT PRIMARY KEY);
        CREATE TABLE c3 (k INT PRIMARY KEY);");
  for i = 1 to 50 do
    List.iter
      (fun t ->
        ignore
          (Core.Softdb.exec sdb
             (Printf.sprintf "INSERT INTO %s VALUES (%d)" t i)))
      [ "c1"; "c2"; "c3" ]
  done;
  Core.Softdb.runstats sdb;
  let sql =
    "SELECT * FROM c1 a, c2 b, c3 c WHERE a.k = b.k AND b.k = c.k AND c.k = 7"
  in
  let report = Core.Softdb.explain sdb sql in
  (* the constant must reach all three relations (fixpoint iteration) *)
  let derived =
    List.filter
      (fun (a : Opt.Rewrite.applied) ->
        a.Opt.Rewrite.rule = "equality_transitivity")
      report.Opt.Explain.applied
  in
  check tint "two derived constants" 2 (List.length derived);
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "sound" true (Exec.Executor.same_rows base opt)

(* ---- probation lifecycle (§3.2) -------------------------------------------- *)

let test_probation_invisible_then_promoted () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:
      { Workload.Purchase.default_config with rows = 1000; late_fraction = 0.0 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"prob_band" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute ~state:Core.Soft_constraint.Probation
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b100)));
  (* invisible to the optimizer while in probation *)
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15) in
  check tbool "no rewrite during probation" true
    (rules_fired (Core.Softdb.explain sdb sql) = []
    || not
         (List.mem "predicate_introduction"
            (rules_fired (Core.Softdb.explain sdb sql))));
  (* survive 100 clean mutations -> promoted *)
  let rng = Stats.Rng.create 5 in
  Workload.Purchase.insert_batch ~violating:0.0 ~rng ~start_id:600_000
    ~count:100 db;
  let m = Core.Softdb.maintenance sdb in
  let promoted, rejected = Core.Maintenance.promote_survivors ~after:100 m in
  check tint "promoted" 1 (List.length promoted);
  check tint "rejected" 0 (List.length rejected);
  check tbool "now exploited" true
    (List.mem "predicate_introduction"
       (rules_fired (Core.Softdb.explain sdb sql)))

let test_probation_rejects_violated () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:
      { Workload.Purchase.default_config with rows = 1000; late_fraction = 0.0 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  let sc =
    Core.Soft_constraint.make ~name:"prob_band2" ~table:"purchase"
      ~kind:Core.Soft_constraint.Absolute ~state:Core.Soft_constraint.Probation
      ~installed_at_mutations:(Table.mutations tbl)
      (Core.Soft_constraint.Diff_stmt (d, b100))
  in
  Core.Softdb.install_sc sdb sc;
  let rng = Stats.Rng.create 5 in
  Workload.Purchase.insert_batch ~violating:0.2 ~rng ~start_id:600_000
    ~count:100 db;
  check tbool "violations observed during probation" true
    (sc.Core.Soft_constraint.violation_count > 0);
  let m = Core.Softdb.maintenance sdb in
  let promoted, rejected = Core.Maintenance.promote_survivors ~after:100 m in
  check tint "none promoted" 0 (List.length promoted);
  check tint "one rejected" 1 (List.length rejected);
  check tbool "dropped" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Dropped)

(* ---- value-set pruning --------------------------------------------------------- *)

let test_value_set_pruning () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE ev (id INT PRIMARY KEY, region VARCHAR NOT NULL);
        INSERT INTO ev VALUES (1, 'north'), (2, 'south'), (3, 'north');");
  Core.Softdb.runstats sdb;
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "ev" in
  let vs =
    Option.get (Mining.Domain_mine.mine_value_set tbl ~column:"region")
  in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"region_set" ~table:"ev"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Ic_stmt
          (Icdef.Check (Mining.Domain_mine.value_set_to_check vs))));
  (* a constant outside the value set proves emptiness *)
  let sql = "SELECT * FROM ev WHERE region = 'mars'" in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "sound" true (Exec.Executor.same_rows base opt);
  check tint "zero rows touched" 0
    opt.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned;
  check tbool "unsat fired" true
    (List.mem "unsatisfiable" (rules_fired (Core.Softdb.explain sdb sql)));
  (* a member of the set is untouched *)
  let sql2 = "SELECT * FROM ev WHERE region = 'north'" in
  let base2 = Core.Softdb.query_baseline sdb sql2 in
  let opt2 = Core.Softdb.query sdb sql2 in
  check tbool "member sound" true (Exec.Executor.same_rows base2 opt2);
  check tint "two rows" 2 (List.length opt2.Exec.Executor.rows)

(* ---- plan cache (§4.1): invalidation + backup plans ---------------------------- *)

let plan_cache_fixture () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:
      { Workload.Purchase.default_config with rows = 3000; late_fraction = 0.0 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"cache_band" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b100)));
  sdb

let test_plan_cache_tracks_dependencies () =
  let sdb = plan_cache_fixture () in
  let cache = Core.Plan_cache.create sdb in
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15) in
  let entry = Core.Plan_cache.prepare cache ~name:"q1" sql in
  check tbool "depends on the band" true
    (List.mem "cache_band" entry.Core.Plan_cache.deps);
  let r = Core.Plan_cache.execute cache "q1" in
  check tbool "fast run counted" true
    ((Option.get (Core.Plan_cache.find cache "q1")).Core.Plan_cache.fast_runs
    = 1);
  let baseline = Core.Softdb.query_baseline sdb sql in
  check tbool "prepared result correct" true
    (Exec.Executor.same_rows baseline r)

let test_plan_cache_falls_back_on_violation () =
  let sdb = plan_cache_fixture () in
  let cache = Core.Plan_cache.create sdb in
  let day = Date.of_ymd 1999 6 15 in
  let sql = Workload.Queries.purchase_ship_eq day in
  ignore (Core.Plan_cache.prepare cache ~name:"q1" sql);
  (* overturn the ASC (drop policy) with a violating insert shipped on the
     probe day so the answer set actually changes *)
  ignore
    (Core.Softdb.exec sdb
       "INSERT INTO purchase VALUES (900001, 1, DATE '1999-01-05', DATE \
        '1999-06-15', 100.0, 3, 'north')");
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "cache_band")
  in
  check tbool "asc overturned" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
  (* the prepared fast plan would now MISS the new row (its introduced
     order_date range excludes January); the cache must revert to backup *)
  let r = Core.Plan_cache.execute cache "q1" in
  let baseline = Core.Softdb.query_baseline sdb sql in
  check tbool "backup used" true
    ((Option.get (Core.Plan_cache.find cache "q1")).Core.Plan_cache.backup_runs
    = 1);
  check tbool "still correct via backup" true
    (Exec.Executor.same_rows baseline r);
  check tbool "row visible" true
    (List.exists
       (fun row -> Rel.Tuple.get row 0 = Value.Int 900001)
       r.Exec.Executor.rows);
  (* after re-mining (async repair path) + reprepare, fast plans return *)
  Core.Maintenance.set_policy (Core.Softdb.maintenance sdb) "cache_band"
    Core.Maintenance.Async_repair;
  sc.Core.Soft_constraint.state <- Core.Soft_constraint.Violated;
  let m = Core.Softdb.maintenance sdb in
  ignore m;
  (* direct re-mine for the test *)
  let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  sc.Core.Soft_constraint.statement <- Core.Soft_constraint.Diff_stmt (d, b100);
  sc.Core.Soft_constraint.state <- Core.Soft_constraint.Active;
  Core.Plan_cache.reprepare cache;
  let r2 = Core.Plan_cache.execute cache "q1" in
  check tbool "fast again after reprepare" true
    ((Option.get (Core.Plan_cache.find cache "q1")).Core.Plan_cache.fast_runs
    >= 1);
  check tbool "correct after reprepare" true
    (Exec.Executor.same_rows (Core.Softdb.query_baseline sdb sql) r2)

let test_plan_cache_ssc_deps_do_not_invalidate () =
  (* twins are estimation-only: their staleness must not flip plans *)
  let sdb = Core.Softdb.create () in
  Workload.Project.load
    ~config:{ Workload.Project.default_config with rows = 2000 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "project" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"end_date" ~col_lo:"start_date")
  in
  let b90 = Option.get (Mining.Diff_band.band_with d ~confidence:0.9) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"proj_ssc" ~table:"project"
       ~kind:(Core.Soft_constraint.Statistical b90.Mining.Diff_band.confidence)
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b90)));
  let cache = Core.Plan_cache.create sdb in
  let sql = Workload.Queries.project_active_on (Date.of_ymd 1998 9 1) in
  let entry = Core.Plan_cache.prepare cache ~name:"p1" sql in
  check tbool "twin dep excluded" false
    (List.mem "proj_ssc" entry.Core.Plan_cache.deps);
  ignore (Core.Plan_cache.execute cache "p1");
  check tbool "fast" true (entry.Core.Plan_cache.backup_runs = 0)

(* ---- the exact [10] scenario: linear correlation opens an index ---------------- *)

let test_linear_correlation_opens_index () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE lin (id INT PRIMARY KEY, a FLOAT NOT NULL, b INT NOT \
        NULL);
        CREATE INDEX lin_a ON lin (a);");
  let db = Core.Softdb.db sdb in
  let rng = Stats.Rng.create 19 in
  for i = 1 to 3000 do
    let b = Stats.Rng.int rng 1000 in
    let a =
      (2.0 *. float_of_int b) +. 5.0 +. Stats.Rng.float_range rng (-2.0) 2.0
    in
    ignore
      (Database.insert db ~table:"lin"
         (Tuple.make [ Value.Int i; Value.Float a; Value.Int b ]))
  done;
  Core.Softdb.runstats sdb;
  (* mine the correlation and install the 100% band as an ASC *)
  let tbl = Database.table_exn db "lin" in
  let corr = Option.get (Mining.Correlation.mine tbl ~col_a:"a" ~col_b:"b") in
  check tbool "k near 2" true (Float.abs (corr.Mining.Correlation.k -. 2.0) < 0.05);
  let band = Option.get (Mining.Correlation.band_with corr ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"lin_corr" ~table:"lin"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Corr_stmt (corr, band)));
  (* the paper's query shape: a predicate on the un-indexed B *)
  List.iter
    (fun sql ->
      let report = Core.Softdb.explain sdb sql in
      check tbool ("introduction fired: " ^ sql) true
        (List.mem "predicate_introduction" (rules_fired report));
      let rec uses_index = function
        | Exec.Plan.Index_scan { index = "lin_a"; _ } -> true
        | Exec.Plan.Filter { input; _ }
        | Exec.Plan.Limit { input; _ }
        | Exec.Plan.Sort { input; _ }
        | Exec.Plan.Project { input; _ }
        | Exec.Plan.Group { input; _ } ->
            uses_index input
        | Exec.Plan.Distinct i -> uses_index i
        | Exec.Plan.Union_all l -> List.exists uses_index l
        | Exec.Plan.Nested_loop_join { left; right; _ }
        | Exec.Plan.Hash_join { left; right; _ }
        | Exec.Plan.Merge_join { left; right; _ } ->
            uses_index left || uses_index right
        | Exec.Plan.Scatter_gather { children; _ } ->
            List.exists (fun (_, p) -> uses_index p) children
        | Exec.Plan.Seq_scan _ | Exec.Plan.Index_scan _
        | Exec.Plan.Index_only_scan _ | Exec.Plan.Partition_scan _ ->
            false
      in
      check tbool ("index on a used: " ^ sql) true
        (uses_index report.Opt.Explain.plan);
      let base = Core.Softdb.query_baseline sdb sql in
      let opt = Core.Softdb.query sdb sql in
      check tbool ("sound: " ^ sql) true (Exec.Executor.same_rows base opt);
      check tbool ("cheaper: " ^ sql) true
        (opt.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned
        < base.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned))
    [
      (* equality binding: the generic check-folding path *)
      "SELECT * FROM lin WHERE b = 500";
      (* range predicate: the shape-introduction (range image) path *)
      "SELECT * FROM lin WHERE b BETWEEN 100 AND 120";
    ]

(* ---- APB-style hierarchies end to end ----------------------------------------- *)

let test_apb_hierarchy_fds () =
  let sdb = Core.Softdb.create () in
  Workload.Apb.load
    ~config:{ Workload.Apb.default_config with facts = 4000; skus = 300 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let db = Core.Softdb.db sdb in
  let product = Database.table_exn db "product" in
  (* the hierarchy must be discoverable *)
  let fds = Mining.Fd_mine.mine ~max_lhs:1 ~exclude_keys:[ "sku"; "pname" ] product in
  let has lhs rhs =
    List.exists
      (fun f -> f.Mining.Fd_mine.lhs = [ lhs ] && f.Mining.Fd_mine.rhs = rhs)
      fds
  in
  check tbool "class -> pgroup" true (has "class" "pgroup");
  check tbool "pgroup -> family" true (has "pgroup" "family");
  (* install class -> pgroup and exploit it on the rollup query *)
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"class_group_fd" ~table:"product"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations product)
       (Core.Soft_constraint.Fd_stmt
          { Mining.Fd_mine.table = "product"; lhs = [ "class" ];
            rhs = "pgroup" }));
  let sql = Workload.Apb.rollup_by_class_and_group in
  let report = Core.Softdb.explain sdb sql in
  check tbool "fd simplification fired" true
    (List.mem "fd_simplification" (rules_fired report));
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "rollup sound" true (Exec.Executor.same_rows base opt);
  (* the other APB queries stay sound too *)
  List.iter
    (fun sql ->
      let base = Core.Softdb.query_baseline sdb sql in
      let opt = Core.Softdb.query sdb sql in
      check tbool ("sound: " ^ sql) true (Exec.Executor.same_rows base opt))
    Workload.Apb.queries

let () =
  Alcotest.run "extensions"
    [
      ( "domain_tracker",
        [
          Alcotest.test_case "installs ranges" `Quick
            test_domain_track_installs;
          Alcotest.test_case "widens on insert" `Quick
            test_domain_widens_on_insert;
          Alcotest.test_case "proves emptiness" `Quick
            test_domain_proves_emptiness;
          Alcotest.test_case "closes open range" `Quick
            test_domain_closes_open_range;
          Alcotest.test_case "retighten after delete" `Quick
            test_domain_retighten_after_delete;
        ] );
      ( "txn",
        [
          Alcotest.test_case "commit keeps" `Quick test_txn_commit_keeps;
          Alcotest.test_case "rollback restores" `Quick
            test_txn_rollback_restores;
          Alcotest.test_case "atomically" `Quick test_txn_atomically;
          Alcotest.test_case "reinstates ASC on abort" `Quick
            test_txn_reinstates_asc_on_abort;
          Alcotest.test_case "exception table consistent across rollback"
            `Quick test_txn_rollback_keeps_exception_table_consistent;
          Alcotest.test_case "single active" `Quick test_txn_single_active;
        ] );
      ( "equality_transitivity",
        [
          Alcotest.test_case "derives constant" `Quick
            test_transitivity_derives_constant;
          Alcotest.test_case "chain fixpoint" `Quick test_transitivity_chain;
        ] );
      ( "probation",
        [
          Alcotest.test_case "invisible then promoted" `Quick
            test_probation_invisible_then_promoted;
          Alcotest.test_case "rejects violated" `Quick
            test_probation_rejects_violated;
        ] );
      ( "value_set",
        [ Alcotest.test_case "pruning" `Quick test_value_set_pruning ] );
      ( "linear_correlation",
        [
          Alcotest.test_case "[10]: correlation opens index" `Quick
            test_linear_correlation_opens_index;
        ] );
      ( "plan_cache",
        [
          Alcotest.test_case "tracks dependencies" `Quick
            test_plan_cache_tracks_dependencies;
          Alcotest.test_case "falls back on violation" `Quick
            test_plan_cache_falls_back_on_violation;
          Alcotest.test_case "ssc deps never invalidate" `Quick
            test_plan_cache_ssc_deps_do_not_invalidate;
        ] );
      ( "apb",
        [
          Alcotest.test_case "hierarchy FDs mined and exploited" `Slow
            test_apb_hierarchy_fds;
        ] );
    ]
