(* The serving subsystem: wire-protocol round-trips, the single-writer
   reader/writer lock, the domain-pool scheduler (admission control,
   deadlines, cancellation, multi-domain fan-out), the LRU-bounded plan
   cache, metrics thread-safety, and whole-server concurrency tests
   driven through the in-memory pipe transport — many client sessions,
   interleaved reads/writes/transactions, session isolation, admission
   rejections, and an SC overturned mid-flight falling back to the
   guarded backup plan. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ---- proto: exact round-trips -------------------------------------------- *)

let nasty = "tab\there|and\nnewline\\backslash\teven|more"

let nasty_row =
  [|
    Value.Int 42;
    Value.Null;
    Value.String nasty;
    Value.Float 0.1;
    Value.Bool true;
    Value.Date (Date.of_ymd 1999 6 15);
  |]

let all_requests : Srv.Proto.request list =
  List.mapi
    (fun i (payload : Srv.Proto.request_payload) ->
      ({ id = i * 7; payload } : Srv.Proto.request))
    [
      Srv.Proto.Hello { client = nasty };
      Srv.Proto.Statement ("SELECT * FROM t WHERE s = '" ^ nasty ^ "'");
      Srv.Proto.Prepare { handle = "h\t1"; sql = "SELECT 1" };
      Srv.Proto.Execute { handle = "h\t1" };
      Srv.Proto.Begin_txn;
      Srv.Proto.Commit_txn;
      Srv.Proto.Rollback_txn;
      Srv.Proto.Set { key = "deadline_ms"; value = "250" };
      Srv.Proto.Cancel { target = 12 };
      Srv.Proto.Ping;
      Srv.Proto.Quit;
    ]

let all_responses : Srv.Proto.response list =
  List.mapi
    (fun i (payload : Srv.Proto.response_payload) ->
      ({ id = i * 13; payload } : Srv.Proto.response))
    [
      Srv.Proto.Hello_ok { session = 3 };
      Srv.Proto.Ok_msg nasty;
      Srv.Proto.Result_set
        {
          columns = [ "a"; "weird\tcol"; "c" ];
          rows = [ nasty_row; [||]; [| Value.Int 1 |] ];
        };
      Srv.Proto.Result_set { columns = []; rows = [] };
      Srv.Proto.Affected 17;
      Srv.Proto.Explained "Scan(purchase)\n  cost=42";
      Srv.Proto.Failed
        { code = Srv.Proto.Deadline_exceeded; message = nasty };
      Srv.Proto.Rejected { retry_after_ms = 35 };
      Srv.Proto.Pong;
      Srv.Proto.Bye;
    ]

let test_request_round_trip () =
  List.iter
    (fun r ->
      let line = Srv.Proto.request_to_line r in
      check tbool "no newline in frame" false (String.contains line '\n');
      check tbool
        (Fmt.str "request round-trips: %a" Srv.Proto.pp_request r)
        true
        (Srv.Proto.request_of_line line = r))
    all_requests

let test_response_round_trip () =
  List.iter
    (fun r ->
      let line = Srv.Proto.response_to_line r in
      check tbool "no newline in frame" false (String.contains line '\n');
      check tbool
        (Fmt.str "response round-trips: %a" Srv.Proto.pp_response r)
        true
        (Srv.Proto.response_of_line line = r))
    all_responses

let test_bad_frames_rejected () =
  let bad l =
    match Srv.Proto.request_of_line l with
    | exception Srv.Proto.Protocol_error _ -> true
    | _ -> false
  in
  check tbool "empty" true (bad "");
  check tbool "no id" true (bad "stmt\tSELECT 1");
  check tbool "bad id" true (bad "Qx\tping");
  check tbool "unknown verb" true (bad "Q1\tfrobnicate");
  check tbool "truncated" true (bad "Q1\tprepare\tonly_handle");
  check tbool "response frame" true (bad "R1\tpong")

let prop_statement_round_trips =
  QCheck.Test.make ~count:200 ~name:"any statement text round-trips"
    QCheck.(pair small_nat printable_string)
    (fun (id, sql) ->
      let r : Srv.Proto.request = { id; payload = Statement sql } in
      Srv.Proto.request_of_line (Srv.Proto.request_to_line r) = r)

(* ---- rwlock: the single-writer rule --------------------------------------- *)

let soon () = Unix.gettimeofday () +. 0.05

let test_rwlock_readers_share () =
  let l = Srv.Rwlock.create () in
  check tbool "r1" true (Srv.Rwlock.acquire_read ~deadline:(soon ()) l ~session:1);
  check tbool "r2" true (Srv.Rwlock.acquire_read ~deadline:(soon ()) l ~session:2);
  check tbool "writer blocked by readers" false
    (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:3);
  Srv.Rwlock.release_read l ~session:1;
  Srv.Rwlock.release_read l ~session:2;
  check tbool "writer after release" true
    (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:3);
  Srv.Rwlock.release_write l ~session:3

let test_rwlock_writer_excludes () =
  let l = Srv.Rwlock.create () in
  check tbool "w" true (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:1);
  check tbool "other reader blocked" false
    (Srv.Rwlock.acquire_read ~deadline:(soon ()) l ~session:2);
  check tbool "other writer blocked" false
    (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:2);
  (* the owner's own reads and writes are covered by its exclusivity —
     that is what lets a transaction's statements arrive as separate
     jobs on different domains *)
  check tbool "own read ok" true
    (Srv.Rwlock.acquire_read ~deadline:(soon ()) l ~session:1);
  Srv.Rwlock.release_read l ~session:1;
  check tbool "reentrant write ok" true
    (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:1);
  Srv.Rwlock.release_write l ~session:1;
  check tbool "still held at depth 1" true (Srv.Rwlock.holds_write l ~session:1);
  Srv.Rwlock.release_write l ~session:1;
  check tbool "released" true
    (Srv.Rwlock.acquire_read ~deadline:(soon ()) l ~session:2);
  Srv.Rwlock.release_read l ~session:2

let test_rwlock_waiting_writer_blocks_new_readers () =
  let l = Srv.Rwlock.create () in
  check tbool "r1" true (Srv.Rwlock.acquire_read ~deadline:(soon ()) l ~session:1);
  let writer_got_it = ref false in
  let th =
    Thread.create
      (fun () ->
        writer_got_it :=
          Srv.Rwlock.acquire_write
            ~deadline:(Unix.gettimeofday () +. 5.0)
            l ~session:2)
      ()
  in
  (* give the writer time to register as waiting *)
  Unix.sleepf 0.05;
  check tbool "new reader blocked behind waiting writer" false
    (Srv.Rwlock.acquire_read ~deadline:(soon ()) l ~session:3);
  Srv.Rwlock.release_read l ~session:1;
  Thread.join th;
  check tbool "writer got the lock" true !writer_got_it;
  Srv.Rwlock.release_write l ~session:2

let test_rwlock_forfeit () =
  let l = Srv.Rwlock.create () in
  check tbool "w" true (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:1);
  check tbool "w again" true
    (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:1);
  Srv.Rwlock.forfeit_write l ~session:1;
  check tbool "gone whatever the depth" false
    (Srv.Rwlock.holds_write l ~session:1);
  check tbool "free for others" true
    (Srv.Rwlock.acquire_write ~deadline:(soon ()) l ~session:2);
  Srv.Rwlock.release_write l ~session:2

(* ---- a tiny latch + barrier for deterministic concurrency ----------------- *)

type latch = {
  m : Mutex.t;
  c : Condition.t;
  mutable open_ : bool;
  mutable waiters : int;
}

let latch () =
  { m = Mutex.create (); c = Condition.create (); open_ = false; waiters = 0 }

let latch_wait l =
  Mutex.lock l.m;
  l.waiters <- l.waiters + 1;
  while not l.open_ do
    Condition.wait l.c l.m
  done;
  Mutex.unlock l.m

let latch_open l =
  Mutex.lock l.m;
  l.open_ <- true;
  Condition.broadcast l.c;
  Mutex.unlock l.m

let latch_waiters l =
  Mutex.lock l.m;
  let n = l.waiters in
  Mutex.unlock l.m;
  n

(* Spin until [cond ()] holds; fail the test after [timeout_s]. *)
let eventually ?(timeout_s = 30.0) what cond =
  let d = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > d then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* A 2-party barrier: both parties must be inside [barrier_wait]
   simultaneously before either returns — the witness that two jobs
   really ran on two domains at the same time. *)
type barrier = { bm : Mutex.t; mutable arrived : int }

let barrier () = { bm = Mutex.create (); arrived = 0 }

let barrier_wait ?(timeout_s = 30.0) b =
  Mutex.lock b.bm;
  b.arrived <- b.arrived + 1;
  Mutex.unlock b.bm;
  let d = Unix.gettimeofday () +. timeout_s in
  let rec spin () =
    Mutex.lock b.bm;
    let n = b.arrived in
    Mutex.unlock b.bm;
    if n >= 2 then ()
    else if Unix.gettimeofday () > d then failwith "barrier timed out"
    else begin
      Unix.sleepf 0.001;
      spin ()
    end
  in
  spin ()

(* ---- scheduler: admission, deadlines, cancellation, fan-out --------------- *)

let mk_job ?deadline ?(cancelled = fun () -> false) ~on_done ~on_expired run =
  {
    Srv.Scheduler.session = 0;
    req_id = 0;
    enqueued_at = Unix.gettimeofday ();
    deadline;
    cancelled;
    run =
      (fun () ->
        run ();
        on_done ());
    expired = on_expired;
  }

let test_scheduler_admission_control () =
  let metrics = Obs.Metrics.create () in
  let s = Srv.Scheduler.create ~workers:1 ~queue_capacity:1 metrics in
  let l = latch () in
  let done_count = ref 0 in
  let bump () = incr done_count in
  let no_expire _ = Alcotest.fail "unexpected expiry" in
  (* job 1 occupies the single worker on the latch *)
  check tbool "job1 admitted" true
    (Srv.Scheduler.submit s
       (mk_job ~on_done:bump ~on_expired:no_expire (fun () -> latch_wait l))
    = `Admitted);
  eventually "worker on the latch" (fun () -> latch_waiters l = 1);
  (* job 2 fills the queue *)
  check tbool "job2 admitted" true
    (Srv.Scheduler.submit s
       (mk_job ~on_done:bump ~on_expired:no_expire (fun () -> ()))
    = `Admitted);
  (* job 3 is deterministically rejected, with a positive retry hint *)
  (match
     Srv.Scheduler.submit s
       (mk_job ~on_done:bump ~on_expired:no_expire (fun () -> ()))
   with
  | `Rejected ms -> check tbool "positive retry-after" true (ms >= 1)
  | _ -> Alcotest.fail "expected rejection");
  check tint "rejection counted" 1
    (Obs.Metrics.counter metrics "srv.jobs_rejected");
  latch_open l;
  eventually "both jobs complete" (fun () -> !done_count = 2);
  Srv.Scheduler.shutdown s;
  check tint "admitted" 2 (Obs.Metrics.counter metrics "srv.jobs_admitted");
  check tint "completed" 2 (Obs.Metrics.counter metrics "srv.jobs_completed")

let test_scheduler_uses_two_domains () =
  let metrics = Obs.Metrics.create () in
  let s = Srv.Scheduler.create ~workers:2 ~queue_capacity:8 metrics in
  let b = barrier () in
  let done_count = ref 0 in
  let no_expire _ = Alcotest.fail "unexpected expiry" in
  for _ = 1 to 2 do
    check tbool "barrier job admitted" true
      (Srv.Scheduler.submit s
         (mk_job
            ~on_done:(fun () -> incr done_count)
            ~on_expired:no_expire
            (fun () -> barrier_wait b))
      = `Admitted)
  done;
  (* each barrier job blocks until the other runs: completing both
     proves two jobs executed simultaneously on two domains *)
  eventually "both barrier jobs complete" (fun () -> !done_count = 2);
  check tbool "two domains executed jobs" true
    (Srv.Scheduler.domains_used s >= 2);
  Srv.Scheduler.shutdown s

let test_scheduler_deadline_and_cancel () =
  let metrics = Obs.Metrics.create () in
  let s = Srv.Scheduler.create ~workers:1 ~queue_capacity:8 metrics in
  let l = latch () in
  let no_expire _ = Alcotest.fail "unexpected expiry" in
  let expired_with = ref [] in
  let note code = expired_with := code :: !expired_with in
  ignore
    (Srv.Scheduler.submit s
       (mk_job ~on_done:(fun () -> ()) ~on_expired:no_expire (fun () ->
            latch_wait l)));
  eventually "worker on the latch" (fun () -> latch_waiters l = 1);
  (* queued with an already-expired deadline: must never run *)
  ignore
    (Srv.Scheduler.submit s
       (mk_job
          ~deadline:(Unix.gettimeofday () -. 1.0)
          ~on_done:(fun () -> Alcotest.fail "expired job ran")
          ~on_expired:note
          (fun () -> ())));
  (* queued already-cancelled: must never run *)
  ignore
    (Srv.Scheduler.submit s
       (mk_job
          ~cancelled:(fun () -> true)
          ~on_done:(fun () -> Alcotest.fail "cancelled job ran")
          ~on_expired:note
          (fun () -> ())));
  latch_open l;
  eventually "both expiries delivered" (fun () ->
      List.length !expired_with = 2);
  check tbool "deadline code delivered" true
    (List.mem Srv.Proto.Deadline_exceeded !expired_with);
  check tbool "cancel code delivered" true
    (List.mem Srv.Proto.Cancelled !expired_with);
  check tint "expired counted" 1 (Obs.Metrics.counter metrics "srv.jobs_expired");
  check tint "cancelled counted" 1
    (Obs.Metrics.counter metrics "srv.jobs_cancelled");
  Srv.Scheduler.shutdown s

let test_scheduler_shutdown_expires_queue () =
  let metrics = Obs.Metrics.create () in
  let s = Srv.Scheduler.create ~workers:1 ~queue_capacity:8 metrics in
  let l = latch () in
  let saw = ref [] in
  ignore
    (Srv.Scheduler.submit s
       (mk_job ~on_done:(fun () -> ()) ~on_expired:(fun _ -> ()) (fun () ->
            latch_wait l)));
  eventually "worker on the latch" (fun () -> latch_waiters l = 1);
  ignore
    (Srv.Scheduler.submit s
       (mk_job
          ~on_done:(fun () -> Alcotest.fail "ran after shutdown")
          ~on_expired:(fun c -> saw := c :: !saw)
          (fun () -> ())));
  (* release the latch only after stop is flagged: shutdown must drain
     the queued job as Shutting_down, not run it *)
  let th = Thread.create (fun () -> Srv.Scheduler.shutdown s) () in
  eventually "submissions refused" (fun () ->
      Srv.Scheduler.submit s
        (mk_job ~on_done:(fun () -> ()) ~on_expired:(fun _ -> ()) (fun () -> ()))
      = `Shutting_down);
  latch_open l;
  Thread.join th;
  check tbool "queued job drained as Shutting_down" true
    (!saw = [ Srv.Proto.Shutting_down ])

(* ---- plan cache: capacity + LRU ------------------------------------------- *)

let small_purchase_sdb ?(rows = 1500) () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows; late_fraction = 0.0 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let test_plan_cache_lru_eviction () =
  let sdb = small_purchase_sdb () in
  let cache = Core.Plan_cache.create ~capacity:2 sdb in
  let sql_of_day d = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 d) in
  ignore (Core.Plan_cache.prepare cache ~name:"a" (sql_of_day 1));
  ignore (Core.Plan_cache.prepare cache ~name:"b" (sql_of_day 2));
  (* touch a so b is the least recently used *)
  ignore (Core.Plan_cache.execute cache "a");
  ignore (Core.Plan_cache.prepare cache ~name:"c" (sql_of_day 3));
  check tbool "a survives (recently used)" true
    (Core.Plan_cache.find cache "a" <> None);
  check tbool "b evicted (LRU)" true (Core.Plan_cache.find cache "b" = None);
  check tbool "c present" true (Core.Plan_cache.find cache "c" <> None);
  let st = Core.Plan_cache.stats cache in
  check tint "entries at capacity" 2 st.Core.Plan_cache.entries;
  check tint "capacity reported" 2 st.Core.Plan_cache.capacity;
  check tint "eviction counted" 1 st.Core.Plan_cache.evictions;
  check tint "eviction metric" 1
    (Obs.Metrics.counter (Core.Softdb.metrics sdb) "plan_cache.evictions");
  (* sys.plan_cache exposes the recency stamps *)
  let r =
    Core.Softdb.query_baseline sdb
      "SELECT name, last_used FROM sys.plan_cache"
  in
  check tint "two sys.plan_cache rows" 2 (List.length r.Exec.Executor.rows)

let test_plan_cache_rejects_bad_capacity () =
  let sdb = small_purchase_sdb ~rows:50 () in
  check tbool "capacity 0 refused" true
    (match Core.Plan_cache.create ~capacity:0 sdb with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- metrics: thread-safety across domains -------------------------------- *)

let test_metrics_parallel_updates () =
  let m = Obs.Metrics.create () in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Metrics.incr m "par.counter";
              Obs.Metrics.add_gauge m "par.gauge" 1.0;
              Obs.Metrics.observe m "par.sample" (float_of_int ((d * i) mod 7));
              (* snapshotting is O(samples): keep it concurrent with the
                 updates but off the hot path *)
              if i mod 500 = 0 then ignore (Obs.Metrics.snapshot m)
            done))
  in
  List.iter Domain.join domains;
  check tint "no lost counter increments" (4 * per_domain)
    (Obs.Metrics.counter m "par.counter");
  check tbool "no lost gauge adjustments" true
    (Obs.Metrics.gauge m "par.gauge" = Some (float_of_int (4 * per_domain)));
  check tint "no lost samples" (4 * per_domain)
    (List.length (Obs.Metrics.samples m "par.sample"))

(* ---- whole-server tests over the pipe transport --------------------------- *)

type client = { conn : Srv.Transport.t; mutable next_id : int }

let connect server =
  let client_end, server_end = Srv.Transport.pipe () in
  ignore (Srv.Server.serve_connection_async server server_end);
  { conn = client_end; next_id = 0 }

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  go 0

let send cl payload =
  cl.next_id <- cl.next_id + 1;
  cl.conn.Srv.Transport.send
    (Srv.Proto.request_to_line { Srv.Proto.id = cl.next_id; payload });
  cl.next_id

let recv cl =
  match cl.conn.Srv.Transport.recv () with
  | None -> Alcotest.fail "connection closed unexpectedly"
  | Some line -> Srv.Proto.response_of_line line

(* Synchronous call: send, await the matching response. *)
let rpc cl payload =
  let id = send cl payload in
  let r = recv cl in
  check tint "response correlates" id r.Srv.Proto.id;
  r.Srv.Proto.payload

(* Synchronous call with retry on admission rejection. *)
let rec rpc_retry cl payload =
  match rpc cl payload with
  | Srv.Proto.Rejected { retry_after_ms } ->
      Unix.sleepf (float_of_int retry_after_ms /. 1000.0);
      rpc_retry cl payload
  | p -> p

let quit cl =
  (match rpc cl Srv.Proto.Quit with
  | Srv.Proto.Bye -> ()
  | p -> Alcotest.failf "expected bye, got %a" Srv.Proto.pp_response
           { Srv.Proto.id = 0; payload = p });
  cl.conn.Srv.Transport.close ()

let scalar_int = function
  | Srv.Proto.Result_set { rows = [ [| Value.Int n |] ]; _ } -> n
  | p ->
      Alcotest.failf "expected a single int, got %a" Srv.Proto.pp_response
        { Srv.Proto.id = 0; payload = p }

let is_ok = function
  | Srv.Proto.Ok_msg _ | Srv.Proto.Hello_ok _ -> true
  | _ -> false

let count_purchases cl =
  scalar_int (rpc_retry cl (Srv.Proto.Statement "SELECT COUNT(*) FROM purchase"))

(* Eight clients hammer one server through pipes: point reads, range
   reads, prepared executes, and rollback-only write transactions.  Two
   of the clients additionally meet on a barrier inside a virtual-table
   generator, which can only resolve if their two queries execute
   simultaneously on two worker domains. *)
let test_concurrent_sessions () =
  let sdb = small_purchase_sdb () in
  let b = barrier () in
  Database.register_virtual (Core.Softdb.db sdb) ~name:"sys.rendezvous"
    ~schema:
      (Schema.make "sys.rendezvous"
         [ Schema.column ~nullable:false "arrived" Value.TInt ])
    (fun () ->
      barrier_wait b;
      [ Tuple.make [ Value.Int 2 ] ]);
  let server = Srv.Server.create ~workers:2 ~queue_capacity:64 sdb in
  let n_clients = 8 and n_rounds = 12 in
  let failures = Array.make n_clients None in
  let run_client c () =
    try
      let cl = connect server in
      (match rpc cl (Srv.Proto.Hello { client = Printf.sprintf "c%d" c }) with
      | Srv.Proto.Hello_ok _ -> ()
      | _ -> failwith "hello failed");
      let hot = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 3 5) in
      if not (is_ok (rpc_retry cl (Srv.Proto.Prepare { handle = "hot"; sql = hot })))
      then failwith "prepare failed";
      (* clients 0 and 1 must overlap on two domains *)
      if c < 2 then
        if
          scalar_int (rpc_retry cl (Srv.Proto.Statement "SELECT arrived FROM sys.rendezvous"))
          <> 2
        then failwith "rendezvous failed";
      for round = 1 to n_rounds do
        (match
           rpc_retry cl
             (Srv.Proto.Statement
                (Workload.Queries.purchase_ship_eq
                   (Date.of_ymd 1999 ((round mod 12) + 1) ((c mod 27) + 1))))
         with
        | Srv.Proto.Result_set _ -> ()
        | _ -> failwith "point read failed");
        (match rpc_retry cl (Srv.Proto.Execute { handle = "hot" }) with
        | Srv.Proto.Result_set _ -> ()
        | _ -> failwith "prepared execute failed");
        if round mod 4 = 0 then begin
          (* write transaction, rolled back so the data stays fixed *)
          if not (is_ok (rpc_retry cl Srv.Proto.Begin_txn)) then
            failwith "begin failed";
          (match
             rpc_retry cl
               (Srv.Proto.Statement
                  (Printf.sprintf
                     "INSERT INTO purchase VALUES (%d, 1, DATE '1999-01-05', \
                      DATE '1999-01-15', 9.0, 1, 'north')"
                     (800_000 + (c * 100) + round)))
           with
          | Srv.Proto.Affected 1 -> ()
          | _ -> failwith "txn insert failed");
          if not (is_ok (rpc_retry cl Srv.Proto.Rollback_txn)) then
            failwith "rollback failed"
        end
      done;
      quit cl
    with e -> failures.(c) <- Some (Printexc.to_string e)
  in
  let threads = List.init n_clients (fun c -> Thread.create (run_client c) ()) in
  List.iter Thread.join threads;
  Array.iteri
    (fun c f ->
      match f with
      | Some msg -> Alcotest.failf "client %d: %s" c msg
      | None -> ())
    failures;
  (* every rolled-back transaction left no trace *)
  let cl = connect server in
  check tint "all writes rolled back" 1500 (count_purchases cl);
  (* the server reports its own traffic: sys.sessions over the wire *)
  (match
     rpc_retry cl
       (Srv.Proto.Statement
          "SELECT session_id, queries, writes FROM sys.sessions")
   with
  | Srv.Proto.Result_set { rows; _ } ->
      check tbool "at least 9 sessions listed" true (List.length rows >= 9);
      let busy =
        List.filter
          (fun row ->
            match (Tuple.get row 1, Tuple.get row 2) with
            | Value.Int q, Value.Int w -> q >= n_rounds * 2 && w >= 9
            | _ -> false)
          rows
      in
      check tint "eight sessions saw full traffic" 8 (List.length busy)
  | _ -> Alcotest.fail "sys.sessions query failed");
  quit cl;
  check tbool "queries ran on >= 2 domains" true
    (Srv.Scheduler.domains_used (Srv.Server.scheduler server) >= 2);
  let m = Core.Softdb.metrics sdb in
  check tbool "jobs completed metric saw the traffic" true
    (Obs.Metrics.counter m "srv.jobs_completed" > n_clients * n_rounds);
  check tint "all sessions opened" 9 (Obs.Metrics.counter m "srv.sessions_opened");
  check tbool "prepared plan shared across sessions" true
    (Obs.Metrics.counter m "plan_cache.shared_hits" >= n_clients - 1);
  Srv.Server.shutdown server

(* Session state is private: prepared handles don't leak, transactions
   are per-session, writes serialize behind the single-writer lock. *)
let test_session_isolation () =
  let sdb = small_purchase_sdb ~rows:200 () in
  let server = Srv.Server.create ~workers:2 sdb in
  let a = connect server and bclient = connect server in
  ignore (rpc a (Srv.Proto.Hello { client = "a" }));
  ignore (rpc bclient (Srv.Proto.Hello { client = "b" }));
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 3 5) in
  check tbool "a prepares" true
    (is_ok (rpc_retry a (Srv.Proto.Prepare { handle = "mine"; sql })));
  (* the handle is session-private even though the plan is shared *)
  (match rpc_retry bclient (Srv.Proto.Execute { handle = "mine" }) with
  | Srv.Proto.Failed { code = Srv.Proto.Exec_error; _ } -> ()
  | _ -> Alcotest.fail "b must not see a's handle");
  (* commit in b is an error while b has no transaction, whatever a does *)
  check tbool "a begins" true (is_ok (rpc_retry a Srv.Proto.Begin_txn));
  (match rpc_retry bclient Srv.Proto.Commit_txn with
  | Srv.Proto.Failed { code = Srv.Proto.Txn_error; _ } -> ()
  | _ -> Alcotest.fail "b has no transaction to commit");
  (* a's in-transaction insert, then b's autocommit insert: b's write
     must wait out a's exclusive lock, then land after the rollback *)
  (match
     rpc_retry a
       (Srv.Proto.Statement
          "INSERT INTO purchase VALUES (810001, 1, DATE '1999-01-05', DATE \
           '1999-01-15', 9.0, 1, 'north')")
   with
  | Srv.Proto.Affected 1 -> ()
  | _ -> Alcotest.fail "a's txn insert failed");
  let b_insert =
    send bclient
      (Srv.Proto.Statement
         "INSERT INTO purchase VALUES (820001, 1, DATE '1999-01-05', DATE \
          '1999-01-15', 9.0, 1, 'north')")
  in
  check tbool "a rolls back" true (is_ok (rpc_retry a Srv.Proto.Rollback_txn));
  let rb = recv bclient in
  check tint "b's insert answered" b_insert rb.Srv.Proto.id;
  (match rb.Srv.Proto.payload with
  | Srv.Proto.Affected 1 -> ()
  | _ -> Alcotest.fail "b's autocommit insert failed");
  (* an exception guard_engine's explicit list misses (here
     Binding.Unresolved from a bad column name) must still answer the
     request — a silently swallowed job leaves the client waiting
     forever *)
  (match
     rpc_retry a (Srv.Proto.Statement "SELECT nosuchcol FROM purchase")
   with
  | Srv.Proto.Failed { code = Srv.Proto.Exec_error; message } ->
      check tbool "names the column" true
        (contains_substring message "nosuchcol")
  | _ -> Alcotest.fail "bad column must answer with an exec error");
  check tint "only b's row committed" 201 (count_purchases a);
  quit a;
  quit bclient;
  Srv.Server.shutdown server

(* A request whose deadline passes while another session holds the
   write lock answers Deadline_exceeded instead of stalling forever. *)
let test_deadline_under_lock_contention () =
  let sdb = small_purchase_sdb ~rows:200 () in
  let server = Srv.Server.create ~workers:2 sdb in
  let a = connect server and bclient = connect server in
  check tbool "a begins" true (is_ok (rpc_retry a Srv.Proto.Begin_txn));
  check tbool "b sets a tight deadline" true
    (is_ok (rpc bclient (Srv.Proto.Set { key = "deadline_ms"; value = "80" })));
  (match
     rpc_retry bclient
       (Srv.Proto.Statement
          "INSERT INTO purchase VALUES (830001, 1, DATE '1999-01-05', DATE \
           '1999-01-15', 9.0, 1, 'north')")
   with
  | Srv.Proto.Failed { code = Srv.Proto.Deadline_exceeded; _ } -> ()
  | p ->
      Alcotest.failf "expected deadline failure, got %a" Srv.Proto.pp_response
        { Srv.Proto.id = 0; payload = p });
  check tbool "a commits fine afterwards" true
    (is_ok (rpc_retry a Srv.Proto.Commit_txn));
  quit a;
  quit bclient;
  Srv.Server.shutdown server

(* Admission rejection and queue-time cancellation, end to end: a latch
   inside a virtual table pins the single worker, a queued request gets
   cancelled, an overflowing one gets rejected with a retry hint. *)
let test_admission_and_cancel_through_server () =
  let sdb = small_purchase_sdb ~rows:50 () in
  let l = latch () in
  Database.register_virtual (Core.Softdb.db sdb) ~name:"sys.latch"
    ~schema:
      (Schema.make "sys.latch"
         [ Schema.column ~nullable:false "ok" Value.TBool ])
    (fun () ->
      latch_wait l;
      [ Tuple.make [ Value.Bool true ] ]);
  let server = Srv.Server.create ~workers:1 ~queue_capacity:1 sdb in
  let a = connect server and bclient = connect server in
  let a_latch = send a (Srv.Proto.Statement "SELECT ok FROM sys.latch") in
  eventually "worker pinned on the latch" (fun () -> latch_waiters l = 1);
  (* fills the queue's one slot *)
  let b_queued = send bclient (Srv.Proto.Statement "SELECT COUNT(*) FROM purchase") in
  eventually "queue holds b's query" (fun () ->
      Srv.Scheduler.queue_depth (Srv.Server.scheduler server) = 1);
  (* overflow: deterministic rejection, answered inline *)
  let b_over = send bclient (Srv.Proto.Statement "SELECT COUNT(*) FROM purchase") in
  let r = recv bclient in
  check tint "rejection answers the overflowing id" b_over r.Srv.Proto.id;
  (match r.Srv.Proto.payload with
  | Srv.Proto.Rejected { retry_after_ms } ->
      check tbool "positive retry hint" true (retry_after_ms >= 1)
  | p ->
      Alcotest.failf "expected rejection, got %a" Srv.Proto.pp_response
        { Srv.Proto.id = 0; payload = p });
  (* cancel the queued query: inline ack now, Cancelled verdict at dequeue *)
  let c_id = send bclient (Srv.Proto.Cancel { target = b_queued }) in
  let r = recv bclient in
  check tint "cancel acked inline" c_id r.Srv.Proto.id;
  latch_open l;
  let r = recv bclient in
  check tint "cancelled query answered" b_queued r.Srv.Proto.id;
  (match r.Srv.Proto.payload with
  | Srv.Proto.Failed { code = Srv.Proto.Cancelled; _ } -> ()
  | p ->
      Alcotest.failf "expected cancelled, got %a" Srv.Proto.pp_response
        { Srv.Proto.id = 0; payload = p });
  let r = recv a in
  check tint "latched query finally answers" a_latch r.Srv.Proto.id;
  quit a;
  quit bclient;
  Srv.Server.shutdown server

(* The paper's §4.1 story under concurrency: session a executes through
   a prepared fast plan predicated on an absolute soft constraint;
   session b's insert overturns the ASC mid-flight; a's next execute
   must flag-and-revert to the guarded backup plan and see b's row. *)
let test_sc_overturn_falls_back_across_sessions () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:
      { Workload.Purchase.default_config with rows = 3000; late_fraction = 0.0 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"cache_band" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b100)));
  let server = Srv.Server.create ~workers:2 sdb in
  let a = connect server and bclient = connect server in
  let day = Date.of_ymd 1999 6 15 in
  let sql = Workload.Queries.purchase_ship_eq day in
  check tbool "a prepares the hot query" true
    (is_ok (rpc_retry a (Srv.Proto.Prepare { handle = "hot"; sql })));
  let rows_before =
    match rpc_retry a (Srv.Proto.Execute { handle = "hot" }) with
    | Srv.Proto.Result_set { rows; _ } -> List.length rows
    | _ -> Alcotest.fail "first execute failed"
  in
  let entry () =
    Option.get
      (Core.Plan_cache.find (Srv.Server.plan_cache server) ("sql:" ^ sql))
  in
  check tint "first run used the fast plan" 1 (entry ()).Core.Plan_cache.fast_runs;
  check tbool "fast plan depends on the band" true
    (List.mem "cache_band" (entry ()).Core.Plan_cache.deps);
  (* b overturns the ASC with a violating row shipped on the probe day *)
  (match
     rpc_retry bclient
       (Srv.Proto.Statement
          "INSERT INTO purchase VALUES (900001, 1, DATE '1999-01-05', DATE \
           '1999-06-15', 100.0, 3, 'north')")
   with
  | Srv.Proto.Affected 1 -> ()
  | _ -> Alcotest.fail "violating insert failed");
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "cache_band")
  in
  check tbool "asc overturned mid-flight" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
  (* a executes again through the same handle: guarded fallback *)
  (match rpc_retry a (Srv.Proto.Execute { handle = "hot" }) with
  | Srv.Proto.Result_set { rows; _ } ->
      check tint "backup sees the new row" (rows_before + 1) (List.length rows);
      check tbool "new row in the answer" true
        (List.exists (fun row -> Tuple.get row 0 = Value.Int 900001) rows)
  | _ -> Alcotest.fail "post-overturn execute failed");
  check tint "backup plan ran" 1 (entry ()).Core.Plan_cache.backup_runs;
  quit a;
  quit bclient;
  Srv.Server.shutdown server

(* ---- partitioned scatter-gather through the server ------------------------- *)

(* Same generator seed + same partitioning ⇒ byte-identical result
   ordering, run after run and server after server: the gather merges
   its per-partition buffers in segment order, whatever the completion
   order on the worker pool. *)
let test_scatter_gather_deterministic () =
  let mk_server () =
    let sdb = small_purchase_sdb () in
    ignore
      (Core.Softdb.exec sdb
         "ALTER TABLE purchase PARTITION BY RANGE (id) BOUNDS (500, 1000)");
    Core.Softdb.runstats sdb;
    (sdb, Srv.Server.create ~workers:4 ~queue_capacity:64 sdb)
  in
  (* server1 is created last: the executor's scatter runner is
     process-global and the most recently installed pool wins, so the
     helper-job metric must be read from server1's registry *)
  let _, server2 = mk_server () in
  let sdb1, server1 = mk_server () in
  (* touches all three segments; enough rows to interleave completions *)
  let sql = "SELECT id, amount FROM purchase WHERE quantity >= 1" in
  (match (Core.Softdb.explain sdb1 sql).Opt.Explain.plan with
  | Exec.Plan.Scatter_gather _ | Exec.Plan.Project { input = Exec.Plan.Scatter_gather _; _ } -> ()
  | p ->
      Alcotest.failf "expected a scatter-gather plan, got %s" (Exec.Plan.to_string p));
  let run server =
    let cl = connect server in
    let lines =
      List.init 3 (fun _ ->
          let id = send cl (Srv.Proto.Statement sql) in
          let r = recv cl in
          check tint "response correlates" id r.Srv.Proto.id;
          Srv.Proto.response_to_line { r with Srv.Proto.id = 0 })
    in
    quit cl;
    lines
  in
  (match run server1 with
  | [ a; b; c ] ->
      check tbool "non-empty result" true (String.length a > 40);
      check tbool "run-to-run byte-identical" true (a = b && b = c);
      (match run server2 with
      | d :: _ ->
          check tbool "server-to-server byte-identical" true (a = d)
      | [] -> Alcotest.fail "no responses from server2")
  | _ -> Alcotest.fail "expected three responses");
  (* the parallel path actually engaged: helper jobs were offered *)
  check tbool "scatter helpers submitted" true
    (Obs.Metrics.counter (Core.Softdb.metrics sdb1) "srv.scatter_helpers" > 0);
  Srv.Server.shutdown server1;
  Srv.Server.shutdown server2

(* Mid-flight partition-SC overturn: session a's prepared plan prunes
   segment 2 on the strength of its mined domain SC; session b inserts
   a row outside the mined band, overturning the SC; a's next execute
   must flag the failed guard, revert to the backup plan, and see b's
   row.  The fallback is attributed to the overturned partition. *)
let test_partition_sc_overturn_guarded_fallback () =
  let sdb = small_purchase_sdb ~rows:1400 () in
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase PARTITION BY RANGE (id) BOUNDS (500, 1000)");
  let scs = Core.Softdb.mine_partition_domains sdb ~table:"purchase" in
  check tint "three domain SCs mined" 3 (List.length scs);
  Core.Softdb.runstats sdb;
  let server = Srv.Server.create ~workers:2 sdb in
  let a = connect server and bclient = connect server in
  (* outside segment 2's observed band [1000, 1400] but inside its
     open-ended routing bound: only the SC prunes it *)
  let sql = "SELECT id FROM purchase WHERE id > 1450" in
  check tbool "a prepares the pruned query" true
    (is_ok (rpc_retry a (Srv.Proto.Prepare { handle = "pruned"; sql })));
  (match rpc_retry a (Srv.Proto.Execute { handle = "pruned" }) with
  | Srv.Proto.Result_set { rows = []; _ } -> ()
  | _ -> Alcotest.fail "pruned query must start empty");
  let entry () =
    Option.get
      (Core.Plan_cache.find (Srv.Server.plan_cache server) ("sql:" ^ sql))
  in
  check tbool "fast plan depends on the domain SC" true
    (List.mem "purchase_p2_domain" (entry ()).Core.Plan_cache.deps);
  (* b lands a row out of band; segment 2's SC overturns, siblings keep *)
  (match
     rpc_retry bclient
       (Srv.Proto.Statement
          "INSERT INTO purchase VALUES (1500, 1, DATE '1999-01-05', DATE \
           '1999-01-15', 9.0, 1, 'north')")
   with
  | Srv.Proto.Affected 1 -> ()
  | _ -> Alcotest.fail "out-of-band insert failed");
  let find name = Core.Sc_catalog.find (Core.Softdb.catalog sdb) name in
  check tbool "segment 2's SC overturned mid-flight" false
    (Core.Soft_constraint.is_usable (Option.get (find "purchase_p2_domain")));
  check tbool "sibling SCs untouched" true
    (Core.Soft_constraint.is_usable (Option.get (find "purchase_p0_domain"))
    && Core.Soft_constraint.is_usable (Option.get (find "purchase_p1_domain")));
  (* a executes the same handle again: guarded fallback sees the row *)
  (match rpc_retry a (Srv.Proto.Execute { handle = "pruned" }) with
  | Srv.Proto.Result_set { rows = [ [| Value.Int 1500 |] ]; _ } -> ()
  | p ->
      Alcotest.failf "expected b's row via the backup plan, got %a"
        Srv.Proto.pp_response { Srv.Proto.id = 0; payload = p });
  check tint "backup plan ran" 1 (entry ()).Core.Plan_cache.backup_runs;
  let m = Core.Softdb.metrics sdb in
  check tbool "fallback counted" true
    (Obs.Metrics.counter m "sc_guard_fallbacks" >= 1);
  check tint "fallback attributed to (purchase, 2)" 1
    (Obs.Metrics.counter m "exec.partition.fallbacks.purchase.2");
  quit a;
  quit bclient;
  Srv.Server.shutdown server

(* A dropped connection mid-transaction must roll back and free the
   write lock for everyone else. *)
let test_dropped_connection_releases_lock () =
  let sdb = small_purchase_sdb ~rows:200 () in
  let server = Srv.Server.create ~workers:2 sdb in
  let a = connect server and bclient = connect server in
  check tbool "a begins" true (is_ok (rpc_retry a Srv.Proto.Begin_txn));
  (match
     rpc_retry a
       (Srv.Proto.Statement
          "INSERT INTO purchase VALUES (840001, 1, DATE '1999-01-05', DATE \
           '1999-01-15', 9.0, 1, 'north')")
   with
  | Srv.Proto.Affected 1 -> ()
  | _ -> Alcotest.fail "a's insert failed");
  (* a vanishes without commit or rollback *)
  a.conn.Srv.Transport.close ();
  (* b's write goes through once the server tears a's session down *)
  (match
     rpc_retry bclient
       (Srv.Proto.Statement
          "INSERT INTO purchase VALUES (850001, 1, DATE '1999-01-05', DATE \
           '1999-01-15', 9.0, 1, 'north')")
   with
  | Srv.Proto.Affected 1 -> ()
  | _ -> Alcotest.fail "b blocked behind a dead session");
  check tint "a's orphan txn rolled back, b's row in" 201
    (count_purchases bclient);
  quit bclient;
  Srv.Server.shutdown server

(* ---- overload circuit breaker -------------------------------------------- *)

let tstr = Alcotest.string

let test_breaker_state_machine () =
  let now = ref 0.0 in
  let m = Obs.Metrics.create () in
  let cfg =
    { Srv.Breaker.failure_threshold = 3; cooldown_s = 1.0; half_open_probes = 2 }
  in
  let b = Srv.Breaker.create ~config:cfg ~clock:(fun () -> !now) m in
  check tstr "starts closed" "closed" (Srv.Breaker.state_name b);
  Srv.Breaker.record_failure b;
  Srv.Breaker.record_failure b;
  check tstr "below threshold" "closed" (Srv.Breaker.state_name b);
  Srv.Breaker.record_success b;
  Srv.Breaker.record_failure b;
  Srv.Breaker.record_failure b;
  check tstr "a success resets the run" "closed" (Srv.Breaker.state_name b);
  Srv.Breaker.record_failure b;
  check tstr "threshold trips it" "open" (Srv.Breaker.state_name b);
  check tint "one open" 1 (Srv.Breaker.opens b);
  (match Srv.Breaker.admit b with
  | `Reject ms -> check tbool "honest cooldown hint" true (ms >= 1 && ms <= 1000)
  | `Proceed -> Alcotest.fail "open breaker admitted a request");
  check tint "fast reject counted" 1 (Srv.Breaker.fast_rejects b);
  check tint "fast reject metric" 1 (Obs.Metrics.counter m "srv.breaker.fast_rejects");
  (* cooldown elapses: the next caller becomes the probe *)
  now := 1.25;
  (match Srv.Breaker.admit b with
  | `Proceed -> ()
  | `Reject _ -> Alcotest.fail "probe refused after cooldown");
  check tstr "half open" "half_open" (Srv.Breaker.state_name b);
  (* one probe at a time: a second caller is turned away *)
  (match Srv.Breaker.admit b with
  | `Reject _ -> ()
  | `Proceed -> Alcotest.fail "two probes in flight");
  Srv.Breaker.record_success b;
  (match Srv.Breaker.admit b with
  | `Proceed -> ()
  | `Reject _ -> Alcotest.fail "second probe refused");
  Srv.Breaker.record_success b;
  check tstr "probe run closes it" "closed" (Srv.Breaker.state_name b);
  check tint "close metric" 1 (Obs.Metrics.counter m "srv.breaker.closed");
  check (Alcotest.option (Alcotest.float 0.01)) "state gauge back to closed"
    (Some 0.0)
    (Obs.Metrics.gauge m "srv.breaker.state")

let test_breaker_probe_failure_reopens () =
  let now = ref 0.0 in
  let m = Obs.Metrics.create () in
  let cfg =
    { Srv.Breaker.failure_threshold = 1; cooldown_s = 1.0; half_open_probes = 2 }
  in
  let b = Srv.Breaker.create ~config:cfg ~clock:(fun () -> !now) m in
  Srv.Breaker.record_failure b;
  check tstr "tripped" "open" (Srv.Breaker.state_name b);
  now := 1.5;
  (match Srv.Breaker.admit b with
  | `Proceed -> ()
  | `Reject _ -> Alcotest.fail "probe refused");
  Srv.Breaker.record_failure b;
  check tstr "failed probe reopens" "open" (Srv.Breaker.state_name b);
  check tint "two opens" 2 (Srv.Breaker.opens b);
  (* a wedged probe (cancelled, never reported) does not stick half-open:
     after a cooldown's worth of silence the next caller takes over *)
  now := 3.0;
  (match Srv.Breaker.admit b with
  | `Proceed -> ()
  | `Reject _ -> Alcotest.fail "probe refused");
  (match Srv.Breaker.admit b with
  | `Reject _ -> ()
  | `Proceed -> Alcotest.fail "second probe while first in flight");
  now := 4.5;
  (match Srv.Breaker.admit b with
  | `Proceed -> ()
  | `Reject _ -> Alcotest.fail "stale probe wedged the breaker");
  Srv.Breaker.record_success b;
  Srv.Breaker.record_success b;
  check tstr "closes again" "closed" (Srv.Breaker.state_name b)

(* End to end: pin the single worker, fill the one queue slot, and let a
   run of admission rejections open the breaker; while open, requests
   answer Rejected without touching the scheduler; once the load drains
   and the cooldown passes, a probe closes it again. *)
let test_breaker_opens_through_server () =
  let sdb = small_purchase_sdb ~rows:50 () in
  let l = latch () in
  Database.register_virtual (Core.Softdb.db sdb) ~name:"sys.latch"
    ~schema:
      (Schema.make "sys.latch"
         [ Schema.column ~nullable:false "ok" Value.TBool ])
    (fun () ->
      latch_wait l;
      [ Tuple.make [ Value.Bool true ] ]);
  let server =
    Srv.Server.create ~workers:1 ~queue_capacity:1
      ~breaker_config:
        {
          Srv.Breaker.failure_threshold = 3;
          cooldown_s = 0.2;
          half_open_probes = 1;
        }
      sdb
  in
  let breaker = Srv.Server.breaker server in
  let a = connect server and b = connect server and c = connect server in
  let a_latch = send a (Srv.Proto.Statement "SELECT ok FROM sys.latch") in
  eventually "worker pinned on the latch" (fun () -> latch_waiters l = 1);
  let b_queued =
    send b (Srv.Proto.Statement "SELECT COUNT(*) FROM purchase")
  in
  eventually "queue holds b's query" (fun () ->
      Srv.Scheduler.queue_depth (Srv.Server.scheduler server) = 1);
  (* three straight admission rejections trip the breaker *)
  for i = 1 to 3 do
    match rpc c (Srv.Proto.Statement "SELECT COUNT(*) FROM purchase") with
    | Srv.Proto.Rejected _ -> ()
    | p ->
        Alcotest.failf "overflow %d not rejected: %a" i Srv.Proto.pp_response
          { Srv.Proto.id = 0; payload = p }
  done;
  check tstr "breaker open after the run" "open" (Srv.Breaker.state_name breaker);
  (* open breaker: fast rejection at the door, scheduler untouched *)
  (match rpc c (Srv.Proto.Statement "SELECT COUNT(*) FROM purchase") with
  | Srv.Proto.Rejected { retry_after_ms } ->
      check tbool "retry hint within the cooldown" true
        (retry_after_ms >= 1 && retry_after_ms <= 200)
  | p ->
      Alcotest.failf "open breaker answered %a" Srv.Proto.pp_response
        { Srv.Proto.id = 0; payload = p });
  check tbool "rejected at the door, not the queue" true
    (Srv.Breaker.fast_rejects breaker >= 1);
  check tint "queue never saw the fast-rejected job" 1
    (Srv.Scheduler.queue_depth (Srv.Server.scheduler server));
  (* drain the load, wait out the cooldown, and recover via the probe *)
  latch_open l;
  let r = recv a in
  check tint "latched query answers" a_latch r.Srv.Proto.id;
  let r = recv b in
  check tint "queued query answers" b_queued r.Srv.Proto.id;
  Unix.sleepf 0.25;
  check tint "probe succeeds through the reopened door" 50
    (count_purchases c);
  check tstr "breaker closed again" "closed" (Srv.Breaker.state_name breaker);
  check tint "exactly one open" 1 (Srv.Breaker.opens breaker);
  quit a;
  quit b;
  quit c;
  Srv.Server.shutdown server

(* ---- malformed-frame handling -------------------------------------------- *)

(* A malformed frame must kill only the session that sent it: final
   Failed {Parse_error} frame, then disconnect; siblings keep working. *)
let test_malformed_frame_disconnects_one_session () =
  let sdb = small_purchase_sdb ~rows:50 () in
  let server = Srv.Server.create ~workers:2 sdb in
  let healthy = connect server in
  List.iter
    (fun bad ->
      let cl = connect server in
      cl.conn.Srv.Transport.send bad;
      (match cl.conn.Srv.Transport.recv () with
      | None -> Alcotest.failf "no final error frame for %S" bad
      | Some line ->
          let r = Srv.Proto.response_of_line line in
          check tint "error frame carries id 0" 0 r.Srv.Proto.id;
          (match r.Srv.Proto.payload with
          | Srv.Proto.Failed { code = Srv.Proto.Parse_error; _ } -> ()
          | p ->
              Alcotest.failf "expected parse error for %S, got %a" bad
                Srv.Proto.pp_response
                { Srv.Proto.id = 0; payload = p }));
      (match cl.conn.Srv.Transport.recv () with
      | None -> ()
      | Some _ -> Alcotest.failf "session survived malformed frame %S" bad);
      cl.conn.Srv.Transport.close ())
    [
      "";
      "Z\t1";
      "Q\t";
      "Qx\tstmt\tSELECT 1";
      "Q1\tnosuchkind\tfoo";
      (* oversized id field: overflows int parsing *)
      "Q99999999999999999999999999\tstmt\tSELECT 1";
      "Q1\tstmt";
      "\x00\x01\xfe\xff binary junk";
    ];
  check tbool "protocol errors counted" true
    (Obs.Metrics.counter (Core.Softdb.metrics sdb) "srv.protocol_errors" >= 8);
  check tint "sibling session unharmed" 50 (count_purchases healthy);
  quit healthy;
  Srv.Server.shutdown server

(* Seeded random fuzz: arbitrary byte strings and truncated frames must
   never crash the server — each fuzzed session either gets normal
   responses (the line happened to parse) or the final-error-then-close
   treatment, and a healthy sibling stays functional throughout. *)
let test_malformed_frame_fuzz () =
  let sdb = small_purchase_sdb ~rows:50 () in
  let server = Srv.Server.create ~workers:2 sdb in
  let healthy = connect server in
  let st = Random.State.make [| 0x5eed |] in
  let sanitize s =
    String.map (function '\n' | '\r' -> 'x' | ch -> ch) s
  in
  let random_garbage () =
    sanitize
      (String.init
         (1 + Random.State.int st 64)
         (fun _ -> Char.chr (Random.State.int st 256)))
  in
  let truncated () =
    let line =
      Srv.Proto.request_to_line
        {
          Srv.Proto.id = 1 + Random.State.int st 1000;
          payload = Srv.Proto.Statement "SELECT COUNT(*) FROM purchase";
        }
    in
    String.sub line 0 (1 + Random.State.int st (String.length line - 1))
  in
  let oversized () =
    "Q" ^ string_of_int (1 + Random.State.int st 100) ^ "\tstmt\t"
    ^ String.make (1 lsl (10 + Random.State.int st 6)) 'x'
  in
  for i = 1 to 60 do
    let frame =
      match i mod 3 with
      | 0 -> random_garbage ()
      | 1 -> truncated ()
      | _ -> oversized ()
    in
    let cl = connect server in
    cl.conn.Srv.Transport.send frame;
    (match cl.conn.Srv.Transport.recv () with
    | None -> ()
    | Some line -> (
        let r = Srv.Proto.response_of_line line in
        match r.Srv.Proto.payload with
        | Srv.Proto.Failed { code = Srv.Proto.Parse_error; _ }
          when r.Srv.Proto.id = 0 -> (
            (* the protocol-level error frame: the session must close *)
            match cl.conn.Srv.Transport.recv () with
            | None -> ()
            | Some _ -> Alcotest.fail "session survived a parse error")
        | _ ->
            (* the bytes happened to parse as a frame: a normal answer
               (including a SQL-level failure on that id) is fine *)
            ()));
    cl.conn.Srv.Transport.close ()
  done;
  check tint "healthy session survives the fuzzing" 50
    (count_purchases healthy);
  quit healthy;
  Srv.Server.shutdown server

let () =
  Alcotest.run "srv"
    [
      ( "proto",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_round_trip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "bad frames rejected" `Quick
            test_bad_frames_rejected;
          QCheck_alcotest.to_alcotest prop_statement_round_trips;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer excludes, owner reenters" `Quick
            test_rwlock_writer_excludes;
          Alcotest.test_case "waiting writer blocks new readers" `Quick
            test_rwlock_waiting_writer_blocks_new_readers;
          Alcotest.test_case "forfeit clears any depth" `Quick
            test_rwlock_forfeit;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "admission control" `Quick
            test_scheduler_admission_control;
          Alcotest.test_case "fans out to two domains" `Quick
            test_scheduler_uses_two_domains;
          Alcotest.test_case "deadline + cancellation at dequeue" `Quick
            test_scheduler_deadline_and_cancel;
          Alcotest.test_case "shutdown drains the queue" `Quick
            test_scheduler_shutdown_expires_queue;
        ] );
      ( "plan_cache_lru",
        [
          Alcotest.test_case "LRU eviction at capacity" `Quick
            test_plan_cache_lru_eviction;
          Alcotest.test_case "capacity must be positive" `Quick
            test_plan_cache_rejects_bad_capacity;
        ] );
      ( "metrics_mt",
        [
          Alcotest.test_case "parallel updates lose nothing" `Quick
            test_metrics_parallel_updates;
        ] );
      ( "server",
        [
          Alcotest.test_case "eight concurrent sessions" `Quick
            test_concurrent_sessions;
          Alcotest.test_case "session isolation" `Quick test_session_isolation;
          Alcotest.test_case "deadline under lock contention" `Quick
            test_deadline_under_lock_contention;
          Alcotest.test_case "admission + cancel through the server" `Quick
            test_admission_and_cancel_through_server;
          Alcotest.test_case "SC overturned mid-flight falls back" `Quick
            test_sc_overturn_falls_back_across_sessions;
          Alcotest.test_case "dropped connection releases the lock" `Quick
            test_dropped_connection_releases_lock;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "scatter-gather is deterministic" `Quick
            test_scatter_gather_deterministic;
          Alcotest.test_case "partition SC overturn falls back" `Quick
            test_partition_sc_overturn_guarded_fallback;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "probe failure reopens" `Quick
            test_breaker_probe_failure_reopens;
          Alcotest.test_case "opens through the server" `Quick
            test_breaker_opens_through_server;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "malformed frame disconnects one session" `Quick
            test_malformed_frame_disconnects_one_session;
          Alcotest.test_case "malformed frame fuzz" `Quick
            test_malformed_frame_fuzz;
        ] );
    ]
