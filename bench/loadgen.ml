(* Load generator: drive a softdb server through the real wire protocol.

     loadgen                       in-process server, ephemeral port
     loadgen --port 5433           attack an already-running softdb serve
     loadgen --clients 8 --requests 200

   Each client is a thread with its own TCP connection and session: it
   says hello, prepares one hot query, then issues a mix of point
   selects, range selects, prepared executes, and (every 16th request)
   a small insert+rollback transaction.  Rejected requests (admission
   control) honor the server's retry-after hint and retry, so the run
   measures sustained throughput under backpressure rather than error
   rate.

   At the end: per-client and aggregate throughput, the response-kind
   histogram, and — when the server is in-process — the server's own
   metrics and its sys.sessions view fetched over the wire. *)

let ( let* ) = Option.bind

type stats = {
  mutable ok : int;
  mutable rows : int; (* result-set responses *)
  mutable affected : int;
  mutable errors : int;
  mutable rejected : int; (* admission rejections, before retry *)
  mutable latencies : float list; (* per-submit seconds, newest first *)
  mutable backoffs : float list; (* per-retry sleep seconds, newest first *)
}

let new_stats () =
  {
    ok = 0;
    rows = 0;
    affected = 0;
    errors = 0;
    rejected = 0;
    latencies = [];
    backoffs = [];
  }

(* One synchronous request/response exchange.  Responses can interleave
   across a session's pipelined requests, but this client awaits each
   answer before the next question, so ids must match. *)
let roundtrip conn (req : Srv.Proto.request) =
  conn.Srv.Transport.send (Srv.Proto.request_to_line req);
  let* line = conn.Srv.Transport.recv () in
  let resp = Srv.Proto.response_of_line line in
  if resp.Srv.Proto.id <> req.Srv.Proto.id then
    failwith
      (Printf.sprintf "response #%d for request #%d" resp.Srv.Proto.id
         req.Srv.Proto.id);
  Some resp.Srv.Proto.payload

(* Submit with retry: jittered exponential backoff seeded from the
   server's retry-after hint.  The hint alone synchronizes every
   rejected client onto the same retry instant (a thundering herd that
   re-trips the breaker); doubling per attempt spreads sustained
   overload out in time and the jitter factor (uniform in [0.5, 1.0])
   decorrelates clients rejected together.  Latency is measured across
   retries — the client-perceived wait. *)
let backoff_cap_s = 2.0

let submit stats rng conn req =
  let rec go attempt =
    match roundtrip conn req with
    | None -> None
    | Some (Srv.Proto.Rejected { retry_after_ms }) ->
        stats.rejected <- stats.rejected + 1;
        let hinted = float_of_int retry_after_ms /. 1000.0 in
        let expo = hinted *. (2.0 ** float_of_int attempt) in
        let sleep =
          Float.min backoff_cap_s (expo *. (0.5 +. Random.State.float rng 0.5))
        in
        stats.backoffs <- sleep :: stats.backoffs;
        Unix.sleepf sleep;
        go (attempt + 1)
    | Some payload -> Some payload
  in
  let t0 = Unix.gettimeofday () in
  let r = go 0 in
  stats.latencies <- (Unix.gettimeofday () -. t0) :: stats.latencies;
  r

let count stats = function
  | Srv.Proto.Result_set _ -> stats.rows <- stats.rows + 1
  | Srv.Proto.Affected _ -> stats.affected <- stats.affected + 1
  | Srv.Proto.Failed _ -> stats.errors <- stats.errors + 1
  | _ -> stats.ok <- stats.ok + 1

(* The request mix, deterministic per (client, sequence number). *)
let nth_date n =
  Rel.Date.of_ymd 1999 (1 + (n mod 12)) (1 + (n * 7 mod 28))

let nth_request client n : Srv.Proto.request_payload list =
  match n mod 16 with
  | 15 ->
      (* a small write transaction: insert one row, roll it back *)
      let cid = 900_000 + (client * 1000) + n in
      [
        Srv.Proto.Begin_txn;
        Srv.Proto.Statement
          (Printf.sprintf
             "INSERT INTO purchase VALUES (%d, 1, DATE '1999-01-05', DATE \
              '1999-01-15', 42.0, 1, 'north')"
             cid);
        Srv.Proto.Rollback_txn;
      ]
  | 7 -> [ Srv.Proto.Execute { handle = "hot" } ]
  | k when k mod 3 = 0 ->
      [
        Srv.Proto.Statement
          (Workload.Queries.purchase_ship_range (nth_date n)
             (nth_date (n + 2)));
      ]
  | _ -> [ Srv.Proto.Statement (Workload.Queries.purchase_ship_eq (nth_date n)) ]

let client_loop ~port ~requests ~seed client =
  let conn = Srv.Transport.connect ~port () in
  let stats = new_stats () in
  let rng = Random.State.make [| seed; client; 0x6261636b |] in
  let next_id = ref 0 in
  let send payload =
    incr next_id;
    submit stats rng conn { Srv.Proto.id = !next_id; payload }
  in
  let t0 = Unix.gettimeofday () in
  ignore
    (send (Srv.Proto.Hello { client = Printf.sprintf "loadgen-%d" client }));
  ignore
    (send
       (Srv.Proto.Prepare
          {
            handle = "hot";
            sql = Workload.Queries.purchase_ship_eq (nth_date client);
          }));
  let n = ref 0 in
  (try
     while !n < requests do
       List.iter
         (fun payload ->
           match send payload with
           | Some p -> count stats p
           | None -> raise Exit)
         (nth_request client !n);
       incr n
     done
   with Exit -> ());
  ignore (send Srv.Proto.Quit);
  conn.Srv.Transport.close ();
  (stats, !n, Unix.gettimeofday () -. t0)

(* --ddl-online: one more session issues CREATE INDEX ... ONLINE while
   the clients hammer — the online-build promise under real load.  The
   server drives the backfill in db-write-lock slices, so the reader
   traffic interleaves with it; the build duration and the server's
   build/demotion counters are folded into the report.  A deadline-
   expired or unique-violated build demotes instead of erroring, so the
   statement answers Ok_msg either way — the counters tell which. *)
let ddl_online_sql =
  "CREATE INDEX purchase_ship_online ON purchase (ship_date) ONLINE"

let ddl_client ~port ~seed result =
  let conn = Srv.Transport.connect ~port () in
  let stats = new_stats () in
  let rng = Random.State.make [| seed; 0xdd1 |] in
  ignore
    (submit stats rng conn
       { Srv.Proto.id = 1; payload = Srv.Proto.Hello { client = "loadgen-ddl" } });
  let t0 = Unix.gettimeofday () in
  (match
     submit stats rng conn
       { Srv.Proto.id = 2; payload = Srv.Proto.Statement ddl_online_sql }
   with
  | Some (Srv.Proto.Ok_msg msg) ->
      result := Some (Unix.gettimeofday () -. t0, msg)
  | Some (Srv.Proto.Failed { message; _ }) ->
      result := Some (Unix.gettimeofday () -. t0, "FAILED: " ^ message)
  | _ -> result := None);
  ignore (submit stats rng conn { Srv.Proto.id = 3; payload = Srv.Proto.Quit });
  conn.Srv.Transport.close ()

(* Ask the server about itself over its own protocol. *)
let print_sessions_view ~port =
  let conn = Srv.Transport.connect ~port () in
  (match
     roundtrip conn
       {
         Srv.Proto.id = 1;
         payload =
           Srv.Proto.Statement
             "SELECT session_id, name, state, queries, writes, errors FROM \
              sys.sessions";
       }
   with
  | Some (Srv.Proto.Result_set { columns; rows }) ->
      Fmt.pr "sys.sessions (over the wire):@.";
      Fmt.pr "  %s@." (String.concat " | " columns);
      List.iter
        (fun row ->
          Fmt.pr "  %s@."
            (String.concat " | "
               (List.map (Fmt.str "%a" Rel.Value.pp) (Array.to_list row))))
        rows
  | _ -> Fmt.pr "could not fetch sys.sessions@.");
  ignore (roundtrip conn { Srv.Proto.id = 2; payload = Srv.Proto.Quit });
  conn.Srv.Transport.close ()

(* Fold a summary of this run into a benchkit report.  The counters that
   depend only on the (seeded) request mix go in the deterministic
   section; latency percentiles, throughput and admission retries are
   load-dependent and stay in the report-only wallclock section. *)
let write_json ~path ~clients ~requests ~completed ~(total : stats) ~elapsed
    ~det_extra ~extra =
  let reg = Obs.Metrics.create () in
  List.iter (fun l -> Obs.Metrics.observe reg "latency_s" l) total.latencies;
  List.iter (fun b -> Obs.Metrics.observe reg "backoff_s" b) total.backoffs;
  let pct_of name q =
    match Obs.Metrics.percentile reg name q with
    | Some v -> v *. 1000.0
    | None -> 0.0
  in
  let pct q = pct_of "latency_s" q in
  let result =
    Benchkit.Measure.make_result ~scenario:"purchase/serve" ~workload:"purchase"
      ~mode:"serve"
      ~deterministic:
        ([
           ("clients", float_of_int clients);
           ("requests_per_client", float_of_int requests);
           ("requests_completed", float_of_int completed);
           ("result_sets", float_of_int total.rows);
           ("affected", float_of_int total.affected);
           ("errors", float_of_int total.errors);
         ]
        @ det_extra)
      ~wallclock:
        ([
           ("elapsed_s", elapsed);
           ("req_per_s", float_of_int completed /. elapsed);
           ("latency_p50_ms", pct 0.50);
           ("latency_p95_ms", pct 0.95);
           ("latency_p99_ms", pct 0.99);
           ("admission_retries", float_of_int total.rejected);
           ("backoff_total_s", List.fold_left ( +. ) 0.0 total.backoffs);
           ("backoff_p50_ms", pct_of "backoff_s" 0.50);
           ("backoff_p95_ms", pct_of "backoff_s" 0.95);
         ]
        @ extra)
  in
  let run =
    if Sys.file_exists path then
      let base = Benchkit.Measure.load path in
      Benchkit.Measure.merge base
        (Benchkit.Measure.make_run ~label:base.Benchkit.Measure.label
           ~scale:base.Benchkit.Measure.scale [ result ])
    else Benchkit.Measure.make_run ~label:"loadgen" ~scale:"quick" [ result ]
  in
  Benchkit.Measure.save path run;
  Fmt.pr "wrote %s@." path

let run ~port ~clients ~requests ~seed ~json ~workers ~queue ~expect_breaker
    ~ddl_online ~lockdep ~lockdep_dump =
  (* the lock-order witness must be armed before the server spins up so
     the very first acquisitions are on record *)
  let lockdep = lockdep || lockdep_dump <> None in
  if lockdep then Obs.Lockdep.enable ();
  (* in-process server when no port is given: load the purchase
     workload and listen on an ephemeral port *)
  let server =
    match port with
    | Some _ -> None
    | None ->
        let sdb = Core.Softdb.create () in
        let config = { Workload.Purchase.default_config with seed } in
        Workload.Purchase.load ~config (Core.Softdb.db sdb);
        Core.Softdb.runstats sdb;
        let server = Srv.Server.create ?workers ?queue_capacity:queue sdb in
        Some server
  in
  if expect_breaker && server = None then begin
    Fmt.epr "--expect-breaker needs the in-process server (drop --port)@.";
    exit 2
  end;
  if ddl_online && server = None then begin
    Fmt.epr "--ddl-online needs the in-process server (drop --port)@.";
    exit 2
  end;
  let port =
    match (port, server) with
    | Some p, _ -> p
    | None, Some server ->
        let p, accept_loop = Srv.Server.listen_tcp server ~port:0 in
        ignore (Thread.create accept_loop ());
        Fmt.pr "in-process server on 127.0.0.1:%d (%d worker domains)@." p
          (Srv.Scheduler.workers (Srv.Server.scheduler server));
        p
    | None, None -> assert false
  in
  let t0 = Unix.gettimeofday () in
  let slots = Array.make clients (new_stats (), 0, 0.0) in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () -> slots.(c) <- client_loop ~port ~requests ~seed c)
          ())
  in
  let ddl_result = ref None in
  let ddl_thread =
    if ddl_online then
      Some (Thread.create (fun () -> ddl_client ~port ~seed ddl_result) ())
    else None
  in
  List.iter Thread.join threads;
  Option.iter Thread.join ddl_thread;
  (* snapshot the witness here, with every client joined and before the
     introspection connection below adds bookkeeping traffic: the dump
     file and the BENCH metrics must describe the same instant.  The edge
     SET and held depth are functions of the (seeded) request mix, so
     they live in the deterministic section; per-edge counts vary with
     scheduling and stay out. *)
  let lockdep_snapshot =
    if lockdep then
      Some
        ( Obs.Lockdep.dump (),
          Obs.Lockdep.edges_observed (),
          Obs.Lockdep.max_held_depth () )
    else None
  in
  let results = Array.to_list slots in
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = new_stats () in
  let completed = ref 0 in
  List.iteri
    (fun c ((s : stats), n, dt) ->
      completed := !completed + n;
      total.ok <- total.ok + s.ok;
      total.rows <- total.rows + s.rows;
      total.affected <- total.affected + s.affected;
      total.errors <- total.errors + s.errors;
      total.rejected <- total.rejected + s.rejected;
      total.latencies <- List.rev_append s.latencies total.latencies;
      total.backoffs <- List.rev_append s.backoffs total.backoffs;
      Fmt.pr "client %2d: %4d requests in %6.2fs (%7.1f req/s)%s@." c n dt
        (float_of_int n /. dt)
        (if s.rejected > 0 then
           Printf.sprintf "  [%d retries, %.2fs backing off]" s.rejected
             (List.fold_left ( +. ) 0.0 s.backoffs)
         else ""))
    results;
  Fmt.pr "---@.";
  Fmt.pr
    "total: %d requests, %d result sets, %d affected, %d errors, %d \
     admission retries (%.2fs backing off) in %.2fs (%.1f req/s)@."
    !completed total.rows total.affected total.errors total.rejected
    (List.fold_left ( +. ) 0.0 total.backoffs)
    elapsed
    (float_of_int !completed /. elapsed);
  let extra =
    match server with
    | None -> []
    | Some server ->
        let m = Core.Softdb.metrics (Srv.Server.softdb server) in
        let breaker = Srv.Server.breaker server in
        [
          ("breaker_opens", float_of_int (Srv.Breaker.opens breaker));
          ( "breaker_fast_rejects",
            float_of_int (Srv.Breaker.fast_rejects breaker) );
          ( "deadline_kills",
            float_of_int (Obs.Metrics.counter m "srv.jobs_deadline_killed") );
        ]
        @
        if not ddl_online then []
        else
          let build_ms =
            match !ddl_result with
            | Some (dt, _) -> dt *. 1000.0
            | None -> Float.nan
          in
          [
            ("ddl.online_build_ms", build_ms);
            ( "ddl.online_builds",
              float_of_int (Obs.Metrics.counter m "idx.online_builds") );
            ( "ddl.online_demotions",
              float_of_int (Obs.Metrics.counter m "idx.online_demotions") );
          ]
  in
  (match !ddl_result with
  | Some (dt, msg) -> Fmt.pr "online DDL: %s (%.1f ms under load)@." msg
                        (dt *. 1000.0)
  | None -> if ddl_online then Fmt.pr "online DDL: no response@.");
  (match lockdep_snapshot with
  | Some (graph, edges, depth) ->
      Fmt.pr "lockdep: %d ordered edges, max held depth %d, %d violation(s)@."
        edges depth
        (List.length (Obs.Lockdep.violations ()));
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc graph;
          close_out oc;
          Fmt.pr "wrote %s@." path)
        lockdep_dump
  | None -> ());
  let det_extra =
    match lockdep_snapshot with
    | Some (_, edges, depth) ->
        [
          ("lockdep.edges_observed", float_of_int edges);
          ("lockdep.max_held_depth", float_of_int depth);
        ]
    | None -> []
  in
  (match json with
  | Some path ->
      write_json ~path ~clients ~requests ~completed:!completed ~total ~elapsed
        ~det_extra ~extra
  | None -> ());
  print_sessions_view ~port;
  (match server with
  | None -> ()
  | Some server ->
      let sdb = Srv.Server.softdb server in
      let breaker = Srv.Server.breaker server in
      Fmt.pr "---@.breaker: %s, %d opens, %d fast rejects@."
        (Srv.Breaker.state_name breaker)
        (Srv.Breaker.opens breaker)
        (Srv.Breaker.fast_rejects breaker);
      Fmt.pr "---@.server metrics:@.%a@." Obs.Metrics.pp
        (Core.Softdb.metrics sdb);
      Srv.Server.shutdown server);
  (* overload-burst gate: the breaker must have tripped, and once it
     does, overload turns into fast rejects instead of paid-for jobs
     dying of deadline expiry in the queue *)
  if expect_breaker then
    match server with
    | None -> ()
    | Some server ->
        let m = Core.Softdb.metrics (Srv.Server.softdb server) in
        let opens = Srv.Breaker.opens (Srv.Server.breaker server) in
        let kills = Obs.Metrics.counter m "srv.jobs_deadline_killed" in
        if opens < 1 then begin
          Fmt.epr "FAIL: burst did not open the breaker@.";
          exit 1
        end;
        if kills > 0 then begin
          Fmt.epr "FAIL: %d jobs died of queue deadline expiry@." kills;
          exit 1
        end;
        Fmt.pr
          "breaker gate: ok (%d opens, 0 deadline kills, %d fast rejects)@."
          opens
          (Srv.Breaker.fast_rejects (Srv.Server.breaker server))

let () =
  let port = ref None
  and clients = ref 8
  and requests = ref 64
  and seed = ref Workload.Purchase.default_config.Workload.Purchase.seed
  and json = ref None
  and workers = ref None
  and queue = ref None
  and expect_breaker = ref false
  and ddl_online = ref false
  and lockdep = ref false
  and lockdep_dump = ref None in
  let spec =
    [
      ( "--port",
        Arg.Int (fun p -> port := Some p),
        "PORT attack a running server instead of an in-process one" );
      ("--clients", Arg.Set_int clients, "N concurrent client threads (8)");
      ("--requests", Arg.Set_int requests, "N requests per client (64)");
      ( "--seed",
        Arg.Set_int seed,
        "N RNG seed for the in-process data load (7)" );
      ( "--json",
        Arg.String (fun p -> json := Some p),
        "FILE fold a p50/p95/p99 summary into FILE (merged if it exists)" );
      ( "--workers",
        Arg.Int (fun n -> workers := Some n),
        "N worker domains for the in-process server (cpu count)" );
      ( "--queue",
        Arg.Int (fun n -> queue := Some n),
        "N scheduler queue capacity for the in-process server (64)" );
      ( "--expect-breaker",
        Arg.Set expect_breaker,
        " gate: exit 1 unless the run opened the circuit breaker and no \
         queued job died of deadline expiry" );
      ( "--ddl-online",
        Arg.Set ddl_online,
        " run CREATE INDEX ... ONLINE from an extra session mid-load; \
         build duration and build/demotion counters go into the report" );
      ( "--lockdep",
        Arg.Set lockdep,
        " arm the runtime lock-order witness; the observed edge count and \
         max held depth go into the deterministic report section" );
      ( "--lockdep-dump",
        Arg.String (fun p -> lockdep_dump := Some p),
        "FILE arm the witness and write its edge-graph dump to FILE (for \
         softdb check --concurrency --lockdep-graph FILE)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen [--port PORT] [--clients N] [--requests N] [--seed N] [--json \
     FILE] [--workers N] [--queue N] [--expect-breaker] [--ddl-online] \
     [--lockdep] [--lockdep-dump FILE]";
  run ~port:!port ~clients:!clients ~requests:!requests ~seed:!seed ~json:!json
    ~workers:!workers ~queue:!queue ~expect_breaker:!expect_breaker
    ~ddl_online:!ddl_online ~lockdep:!lockdep ~lockdep_dump:!lockdep_dump
