(* The deterministic benchmark runner: execute the scenario registry and
   serialize a schema-versioned measurement report.

     dune exec bench/benchrun.exe -- --quick --out BENCH.json
     dune exec bench/benchrun.exe -- --list
     dune exec bench/benchrun.exe -- --scenario purchase/asc --scenario tpcd/asc

   The deterministic sections of the output are byte-identical across
   runs of the same commit (pinned seeds, no wall clock); compare two
   reports with `softdb benchdiff OLD NEW`. *)

let list_scenarios () =
  print_endline "scenarios:";
  List.iter
    (fun (s : Benchkit.Scenario.t) ->
      Printf.printf "  %-18s %s\n" s.Benchkit.Scenario.name
        s.Benchkit.Scenario.descr)
    Benchkit.Scenario.all

let () =
  let scale = ref Benchkit.Scenario.Quick in
  let out = ref "BENCH.json" in
  let label = ref "" in
  let only = ref [] in
  let list_only = ref false in
  let spec =
    [
      ( "--quick",
        Arg.Unit (fun () -> scale := Benchkit.Scenario.Quick),
        " small fixtures, the CI gate subset (default)" );
      ( "--full",
        Arg.Unit (fun () -> scale := Benchkit.Scenario.Full),
        " full-size fixtures" );
      ("--out", Arg.Set_string out, "FILE report path (BENCH.json)");
      ( "--label",
        Arg.Set_string label,
        "TEXT free-form run label recorded in the report (not gated)" );
      ( "--scenario",
        Arg.String (fun s -> only := s :: !only),
        "NAME run one scenario (repeatable); default: all" );
      ("--list", Arg.Set list_only, " list scenarios and exit");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "benchrun [--quick|--full] [--out FILE] [--scenario NAME]...";
  if !list_only then list_scenarios ()
  else begin
    let only = match List.rev !only with [] -> None | l -> Some l in
    let t0 = Unix.gettimeofday () in
    let run =
      try Benchkit.Scenario.run ?only ~scale:!scale ~label:!label ()
      with Invalid_argument msg ->
        prerr_endline msg;
        list_scenarios ();
        exit 2
    in
    Benchkit.Measure.save !out run;
    Printf.printf "benchrun: %d scenarios (%s scale) -> %s in %.1fs\n"
      (List.length run.Benchkit.Measure.scenarios)
      run.Benchkit.Measure.scale !out
      (Unix.gettimeofday () -. t0);
    List.iter
      (fun (r : Benchkit.Measure.scenario_result) ->
        Printf.printf "  %-18s %d deterministic metrics\n"
          r.Benchkit.Measure.scenario
          (List.length r.Benchkit.Measure.deterministic))
      run.Benchkit.Measure.scenarios
  end
