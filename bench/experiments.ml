(* The experiment harness: one function per experiment of DESIGN.md §5,
   each regenerating a paper-shaped results table.  EXPERIMENTS.md records
   the claims these tables support. *)

open Rel
open Bench_util

(* ---- fixtures --------------------------------------------------------------- *)

let tpcd_sdb () =
  let sdb = Core.Softdb.create () in
  Workload.Tpcd.load (Core.Softdb.db sdb);
  Workload.Tpcd.create_sales (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let purchase_sdb ?(rows = 20_000) ?(late = 0.01) () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows; late_fraction = late }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let project_sdb () =
  let sdb = Core.Softdb.create () in
  Workload.Project.load (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let mined_purchase_band sdb =
  Option.get
    (Mining.Diff_band.mine
       (Database.table_exn (Core.Softdb.db sdb) "purchase")
       ~col_hi:"ship_date" ~col_lo:"order_date")

let install_purchase_band sdb ~name ~confidence =
  let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
  let d = mined_purchase_band sdb in
  let band = Option.get (Mining.Diff_band.band_with d ~confidence) in
  let kind =
    if band.Mining.Diff_band.confidence >= 1.0 then Core.Soft_constraint.Absolute
    else Core.Soft_constraint.Statistical band.Mining.Diff_band.confidence
  in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name ~table:"purchase" ~kind
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, band)))

(* ============================================================================ *)
(* E1 — join elimination over referential integrity (paper §2, [6])             *)
(* ============================================================================ *)

let e1 () =
  let sdb = tpcd_sdb () in
  let rows =
    List.map
      (fun sql ->
        let off, on_, equal = compare_query sdb sql in
        [
          S (truncate_sql sql);
          I off.scanned;
          I on_.scanned;
          F1 off.time_ms;
          F1 on_.time_ms;
          F1 (speedup off.time_ms on_.time_ms);
          B equal;
        ])
      (Workload.Queries.join_elimination_suite
      @ [ Workload.Queries.join_elimination_negative ])
  in
  print_table
    ~title:
      "E1  Join elimination via RI (last row: negative control, parent \
       columns used)"
    ~header:
      [ "query"; "rows off"; "rows on"; "ms off"; "ms on"; "speedup"; "equal" ]
    rows

(* ============================================================================ *)
(* E2 — predicate introduction from a mined linear/band ASC (paper §2, [10])    *)
(* ============================================================================ *)

let e2 () =
  let sdb = purchase_sdb ~rows:60_000 () in
  let d = mined_purchase_band sdb in
  install_purchase_band sdb ~name:"ship_band_asc" ~confidence:1.0;
  let queries =
    List.map
      (fun day -> Workload.Queries.purchase_ship_eq day)
      [ Date.of_ymd 1999 3 15; Date.of_ymd 1999 6 15; Date.of_ymd 1999 11 2 ]
    @ [
        Workload.Queries.purchase_ship_range (Date.of_ymd 1999 7 1)
          (Date.of_ymd 1999 7 7);
      ]
  in
  let rows =
    List.map
      (fun sql ->
        let off, on_, equal = compare_query sdb sql in
        [
          S (truncate_sql sql);
          I off.pages;
          I on_.pages;
          F1 off.time_ms;
          F1 on_.time_ms;
          F1 (speedup off.time_ms on_.time_ms);
          B equal;
        ])
      queries
  in
  print_table
    ~title:
      "E2  Predicate introduction from a 100%-valid mined band (index on \
       order_date, none on ship_date)"
    ~header:
      [ "query"; "pages off"; "pages on"; "ms off"; "ms on"; "speedup";
        "equal" ]
    rows;
  (* the ε-threshold trade-off: tighter bands at lower confidence *)
  let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
  let band_rows =
    List.map
      (fun (b : Mining.Diff_band.band) ->
        [
          F b.Mining.Diff_band.confidence;
          F1 b.Mining.Diff_band.d_min;
          F1 b.Mining.Diff_band.d_max;
          F1 (b.Mining.Diff_band.d_max -. b.Mining.Diff_band.d_min);
          F (Mining.Diff_band.coverage tbl d b);
        ])
      d.Mining.Diff_band.bands
  in
  print_table
    ~title:
      "E2b Band width vs. confidence (the paper's \"should the database \
       also keep eps70 and eps80?\")"
    ~header:[ "confidence"; "d_min"; "d_max"; "width"; "measured coverage" ]
    band_rows;
  (* run the workload once through the facade so the metrics registry and
     query log fill, then dump them — the cardinality-feedback view *)
  List.iter (fun sql -> ignore (Core.Softdb.query sdb sql)) queries;
  print_observability sdb

(* ============================================================================ *)
(* E3 — join-hole range trimming (paper §2, [8])                                 *)
(* ============================================================================ *)

let holes_sdb ?(pairs = 6000) () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE hleft (j INT PRIMARY KEY, a INT NOT NULL);
        CREATE TABLE hright (j INT NOT NULL, b INT NOT NULL);
        CREATE INDEX hleft_a ON hleft (a);
        CREATE INDEX hright_b ON hright (b);");
  let rng = Stats.Rng.create 31 in
  let k = ref 0 in
  while !k < pairs do
    let a = Stats.Rng.int rng 100 and b = Stats.Rng.int rng 100 in
    (* two planted holes *)
    if
      not
        ((a >= 20 && a < 50 && b >= 30 && b < 70)
        || (a >= 70 && a < 95 && b >= 0 && b < 25))
    then begin
      incr k;
      ignore
        (Database.insert db ~table:"hleft"
           (Tuple.make [ Value.Int !k; Value.Int a ]));
      ignore
        (Database.insert db ~table:"hright"
           (Tuple.make [ Value.Int !k; Value.Int b ]))
    end
  done;
  Core.Softdb.runstats sdb;
  let left = Database.table_exn db "hleft"
  and right = Database.table_exn db "hright" in
  let h =
    Option.get
      (Mining.Join_holes.mine ~grid:25 ~left ~right ~join_left:"j"
         ~join_right:"j" ~left_col:"a" ~right_col:"b" ())
  in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"holes" ~table:"hleft"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations left)
       (Core.Soft_constraint.Holes_stmt h));
  (sdb, h)

let e3 () =
  let sdb, h = holes_sdb () in
  Printf.printf "\nmined: %s\n" (Fmt.str "%a" Mining.Join_holes.pp h);
  let queries =
    [
      (* A-range inside hole 1: B-range should trim *)
      "SELECT * FROM hleft l, hright r WHERE l.j = r.j AND l.a BETWEEN 25 \
       AND 45 AND r.b BETWEEN 10 AND 65";
      (* fully inside hole 1: empty *)
      "SELECT * FROM hleft l, hright r WHERE l.j = r.j AND l.a BETWEEN 25 \
       AND 45 AND r.b BETWEEN 35 AND 60";
      (* A-range inside hole 2 *)
      "SELECT * FROM hleft l, hright r WHERE l.j = r.j AND l.a BETWEEN 75 \
       AND 90 AND r.b BETWEEN 5 AND 60";
      (* control: outside all holes — no trimming effect *)
      "SELECT * FROM hleft l, hright r WHERE l.j = r.j AND l.a BETWEEN 0 \
       AND 15 AND r.b BETWEEN 75 AND 99";
    ]
  in
  let rows =
    List.map
      (fun sql ->
        let off, on_, equal = compare_query sdb sql in
        [
          S (truncate_sql ~width:70 sql);
          I off.rows;
          I off.scanned;
          I on_.scanned;
          I off.pages;
          I on_.pages;
          F1 (speedup (float_of_int off.scanned) (float_of_int on_.scanned));
          B equal;
        ])
      queries
  in
  print_table
    ~title:"E3  Join-hole range trimming (last row: control outside holes)"
    ~header:
      [ "query"; "out rows"; "scanned off"; "scanned on"; "pages off";
        "pages on"; "scan ratio"; "equal" ]
    rows

(* ============================================================================ *)
(* E4 — SSC twinning for cardinality estimation (paper §5.1)                    *)
(* ============================================================================ *)

let e4 () =
  let mk confidence_override =
    let sdb = project_sdb () in
    let tbl = Database.table_exn (Core.Softdb.db sdb) "project" in
    let d =
      Option.get
        (Mining.Diff_band.mine tbl ~col_hi:"end_date" ~col_lo:"start_date")
    in
    let band = Option.get (Mining.Diff_band.band_with d ~confidence:0.9) in
    let band =
      match confidence_override with
      | None -> band
      | Some c -> { band with Mining.Diff_band.confidence = c }
    in
    Core.Softdb.install_sc sdb
      (Core.Soft_constraint.make ~name:"proj_band" ~table:"project"
         ~kind:
           (Core.Soft_constraint.Statistical band.Mining.Diff_band.confidence)
         ~installed_at_mutations:(Table.mutations tbl)
         (Core.Soft_constraint.Diff_stmt (d, band)));
    sdb
  in
  let sdb = mk None in
  let sdb_noconf = mk (Some 1.0) in
  (* ablation: twin taken at face value, no confidence blending *)
  let days =
    [
      Date.of_ymd 1998 3 1; Date.of_ymd 1998 6 1; Date.of_ymd 1998 9 1;
      Date.of_ymd 1999 1 1; Date.of_ymd 1999 6 1; Date.of_ymd 1999 10 1;
    ]
  in
  let gm = ref (1.0, 1.0, 1.0) in
  let rows =
    List.map
      (fun day ->
        let sql = Workload.Queries.project_active_on day in
        let truth =
          float_of_int (Workload.Project.active_on (Core.Softdb.db sdb) day)
        in
        let est flags sdb =
          (Core.Softdb.explain ?flags sdb sql).Opt.Explain.estimated_cardinality
        in
        let indep = est (Some Opt.Rewrite.all_off) sdb in
        let twin_nc = est None sdb_noconf in
        let twin = est None sdb in
        let q1 = qerror indep truth
        and q2 = qerror twin_nc truth
        and q3 = qerror twin truth in
        let a, b, c = !gm in
        gm := (a *. q1, b *. q2, c *. q3);
        [
          S (Date.to_string day);
          F1 truth;
          F1 indep;
          F1 twin_nc;
          F1 twin;
          F1 q1;
          F1 q2;
          F1 q3;
        ])
      days
  in
  let n = float_of_int (List.length days) in
  let a, b, c = !gm in
  let rows =
    rows
    @ [
        [
          S "geometric mean q-error";
          S ""; S ""; S ""; S "";
          F1 (Float.pow a (1.0 /. n));
          F1 (Float.pow b (1.0 /. n));
          F1 (Float.pow c (1.0 /. n));
        ];
      ]
  in
  print_table
    ~title:
      "E4  Cardinality estimates for \"projects active on day d\" \
       (independence vs. twinned vs. twinned+confidence)"
    ~header:
      [ "day"; "truth"; "indep"; "twin"; "twin+conf"; "q-indep"; "q-twin";
        "q-t+c" ]
    rows

(* ============================================================================ *)
(* E5 — union-all branch elimination (paper §5)                                  *)
(* ============================================================================ *)

let e5 () =
  let sdb = Core.Softdb.create () in
  Workload.Tpcd.create_sales (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  let spans =
    [
      ("one month", Date.of_ymd 1999 5 5, Date.of_ymd 1999 5 25);
      ("three months", Date.of_ymd 1999 1 10, Date.of_ymd 1999 3 20);
      ("six months", Date.of_ymd 1999 4 1, Date.of_ymd 1999 9 30);
      ("full year", Date.of_ymd 1999 1 1, Date.of_ymd 1999 12 31);
    ]
  in
  let rows =
    List.map
      (fun (label, lo, hi) ->
        let sql = Workload.Tpcd.sales_union_sql ~date_lo:lo ~date_hi:hi in
        let off, on_, equal = compare_query sdb sql in
        let branches =
          match (Core.Softdb.explain sdb sql).Opt.Explain.plan with
          | Exec.Plan.Union_all l -> List.length l
          | _ -> 1
        in
        [
          S label;
          I 12;
          I branches;
          I off.scanned;
          I on_.scanned;
          F1 (speedup off.time_ms on_.time_ms);
          B equal;
        ])
      spans
  in
  print_table
    ~title:
      "E5  Union-all branch elimination over 12 monthly partitions with \
       CHECK month constraints"
    ~header:
      [ "query span"; "branches"; "kept"; "scanned off"; "scanned on";
        "speedup"; "equal" ]
    rows

(* ============================================================================ *)
(* E6 — ASC-as-AST: the late_shipments exception plan (paper §4.4)               *)
(* ============================================================================ *)

let e6 () =
  let sdb = purchase_sdb ~rows:60_000 () in
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
        order_date BETWEEN 0 AND 21) SOFT");
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_shipments FOR CONSTRAINT ship_3w");
  let db = Core.Softdb.db sdb in
  let exc = Table.cardinality (Database.table_exn db "late_shipments") in
  let total = Table.cardinality (Database.table_exn db "purchase") in
  Printf.printf "\nexception table: %d of %d rows (%.2f%%)\n" exc total
    (100.0 *. float_of_int exc /. float_of_int total);
  let days =
    [
      Date.of_ymd 1999 2 10; Date.of_ymd 1999 6 15; Date.of_ymd 1999 9 3;
      Date.of_ymd 1999 12 15;
    ]
  in
  let rows =
    List.map
      (fun day ->
        let sql = Workload.Queries.purchase_ship_eq day in
        let off, on_, equal = compare_query sdb sql in
        [
          S (Date.to_string day);
          I off.rows;
          I off.pages;
          I on_.pages;
          F1 off.time_ms;
          F1 on_.time_ms;
          F1 (speedup off.time_ms on_.time_ms);
          B equal;
        ])
      days
  in
  print_table
    ~title:
      "E6  late_shipments exception-union plan: full scan vs. introduced \
       predicate + UNION ALL exceptions"
    ~header:
      [ "ship_date ="; "out rows"; "pages off"; "pages on"; "ms off";
        "ms on"; "speedup"; "equal" ]
    rows

(* ============================================================================ *)
(* E7 — SSC currency: predicted bound vs. measured confidence (paper §3.3)       *)
(* ============================================================================ *)

let e7 () =
  (* the paper's scenario scaled 1:20 — 50k-row table, 50 updates/day of
     which a third violate the band, for 30 days *)
  let sdb = purchase_sdb ~rows:50_000 ~late:0.0 () in
  let db = Core.Softdb.db sdb in
  install_purchase_band sdb ~name:"ship_band" ~confidence:0.99;
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ship_band")
  in
  let d, band =
    match sc.Core.Soft_constraint.statement with
    | Core.Soft_constraint.Diff_stmt (d, band) -> (d, band)
    | _ -> assert false
  in
  let tbl = Database.table_exn db "purchase" in
  let rng = Stats.Rng.create 41 in
  let rows = ref [] in
  let next_id = ref 2_000_000 in
  for day = 0 to 30 do
    if day > 0 then begin
      Workload.Purchase.insert_batch ~violating:0.33 ~rng ~start_id:!next_id
        ~count:50 db;
      next_id := !next_id + 50
    end;
    if day mod 5 = 0 then begin
      let predicted = Core.Sc_catalog.current_confidence db sc in
      let measured = Mining.Diff_band.coverage tbl d band in
      rows :=
        [
          I day;
          I (day * 50);
          F predicted;
          F measured;
          B (predicted <= measured +. 1e-9);
        ]
        :: !rows
    end
  done;
  print_table
    ~title:
      "E7  SSC currency drift: predicted lower bound (c - u/N) vs. measured \
       coverage over a 30-day update stream"
    ~header:
      [ "day"; "updates"; "predicted bound"; "measured"; "bound holds" ]
    (List.rev !rows)

(* ============================================================================ *)
(* E8 — FD-based group-by / order-by simplification (paper §2, [29])             *)
(* ============================================================================ *)

let e8 () =
  let sdb = tpcd_sdb () in
  let db = Core.Softdb.db sdb in
  let nation = Database.table_exn db "nation" in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"nation_fd" ~table:"nation"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations nation)
       (Core.Soft_constraint.Fd_stmt
          { Mining.Fd_mine.table = "nation"; lhs = [ "n_nationkey" ];
            rhs = "n_name" }));
  let count_keys sdb flags sql =
    let report = Core.Softdb.explain ?flags sdb sql in
    let rec go plan =
      match plan with
      | Exec.Plan.Sort { input; keys } -> List.length keys + go input
      | Exec.Plan.Group { input; keys; _ } -> List.length keys + go input
      | Exec.Plan.Project { input; _ }
      | Exec.Plan.Filter { input; _ }
      | Exec.Plan.Limit { input; _ } ->
          go input
      | Exec.Plan.Distinct i -> go i
      | Exec.Plan.Hash_join { left; right; _ }
      | Exec.Plan.Merge_join { left; right; _ }
      | Exec.Plan.Nested_loop_join { left; right; _ } ->
          go left + go right
      | Exec.Plan.Union_all l -> List.fold_left (fun a p -> a + go p) 0 l
      | Exec.Plan.Scatter_gather { children; _ } ->
          List.fold_left (fun a (_, p) -> a + go p) 0 children
      | Exec.Plan.Seq_scan _ | Exec.Plan.Index_scan _
      | Exec.Plan.Index_only_scan _ | Exec.Plan.Partition_scan _ ->
          0
    in
    go report.Opt.Explain.plan
  in
  let rows =
    List.map
      (fun sql ->
        let off, on_, equal = compare_query sdb sql in
        [
          S (truncate_sql sql);
          I (count_keys sdb (Some Opt.Rewrite.all_off) sql);
          I (count_keys sdb None sql);
          F1 off.time_ms;
          F1 on_.time_ms;
          B equal;
        ])
      [ Workload.Queries.fd_order_by; Workload.Queries.fd_group_by ]
  in
  print_table
    ~title:
      "E8  FD simplification: redundant ORDER BY / GROUP BY keys removed \
       (n_nationkey -> n_name)"
    ~header:
      [ "query"; "sort+group keys off"; "keys on"; "ms off"; "ms on";
        "equal" ]
    rows

(* ============================================================================ *)
(* E9 — join-hole discovery is linear in the join size (paper §2, [8])           *)
(* ============================================================================ *)

let e9 () =
  let mine_at pairs =
    let sdb = Core.Softdb.create () in
    let db = Core.Softdb.db sdb in
    ignore
      (Core.Softdb.exec_script sdb
         "CREATE TABLE sleft (j INT PRIMARY KEY, a INT NOT NULL);
          CREATE TABLE sright (j INT NOT NULL, b INT NOT NULL);");
    let rng = Stats.Rng.create 61 in
    for k = 1 to pairs do
      ignore
        (Database.insert db ~table:"sleft"
           (Tuple.make [ Value.Int k; Value.Int (Stats.Rng.int rng 1000) ]));
      ignore
        (Database.insert db ~table:"sright"
           (Tuple.make [ Value.Int k; Value.Int (Stats.Rng.int rng 1000) ]))
    done;
    let left = Database.table_exn db "sleft"
    and right = Database.table_exn db "sright" in
    let h, dt =
      timed ~reps:3 (fun () ->
          Option.get
            (Mining.Join_holes.mine ~grid:32 ~left ~right ~join_left:"j"
               ~join_right:"j" ~left_col:"a" ~right_col:"b" ()))
    in
    (h, dt)
  in
  let sizes = [ 2_000; 4_000; 8_000; 16_000; 32_000 ] in
  let base = ref None in
  let rows =
    List.map
      (fun n ->
        let h, dt = mine_at n in
        let per_row = ms dt /. float_of_int n *. 1000.0 in
        (if !base = None then base := Some per_row);
        [
          I n;
          I h.Mining.Join_holes.join_rows;
          I (List.length h.Mining.Join_holes.rects);
          F1 (ms dt);
          F per_row;
          F1 (per_row /. Option.get !base);
        ])
      sizes
  in
  print_table
    ~title:
      "E9  Join-hole discovery scaling: wall time vs. join-result size \
       (us/row should stay ~flat)"
    ~header:
      [ "join rows"; "scanned"; "rects"; "ms"; "us/row"; "vs smallest" ]
    rows

(* ============================================================================ *)
(* E10 — informational constraints avoid checking cost (paper §1)                *)
(* ============================================================================ *)

let e10 () =
  let load enforcement =
    let sdb = Core.Softdb.create () in
    let (), dt =
      timed ~reps:3 (fun () ->
          let db = Database.create () in
          Workload.Tpcd.create_schema ~fk_enforcement:enforcement db;
          ignore (Workload.Tpcd.load_rows db))
    in
    ignore sdb;
    dt
  in
  let t_enforced = load Icdef.Enforced in
  let t_informational = load Icdef.Informational in
  print_table
    ~title:
      "E10 Bulk load with referential integrity + checks ENFORCED vs. \
       INFORMATIONAL (loader-verified)"
    ~header:[ "mode"; "load ms"; "speedup" ]
    [
      [ S "enforced"; F1 (ms t_enforced); F1 1.0 ];
      [
        S "informational";
        F1 (ms t_informational);
        F1 (speedup t_enforced t_informational);
      ];
    ]

(* ============================================================================ *)
(* E11 — ASC maintenance policies under violating updates (paper §4.1–§4.3)      *)
(* ============================================================================ *)

let e11 () =
  let stream_count = 2_000 and violating = 0.01 in
  let run_policy label policy =
    let sdb = purchase_sdb ~rows:8_000 ~late:0.0 () in
    let db = Core.Softdb.db sdb in
    install_purchase_band sdb ~name:"band" ~confidence:1.0;
    let sc = Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "band") in
    (match policy with
    | `Exception_table ->
        ignore
          (Core.Softdb.exec sdb
             "CREATE EXCEPTION TABLE band_exc FOR CONSTRAINT band")
    | `Drop | `Sync | `Async ->
        Core.Maintenance.set_policy (Core.Softdb.maintenance sdb) "band"
          (match policy with
          | `Drop -> Core.Maintenance.Drop
          | `Sync -> Core.Maintenance.Sync_repair
          | `Async -> Core.Maintenance.Async_repair
          | `Exception_table -> assert false));
    let rng = Stats.Rng.create 71 in
    let available = ref 0 in
    let (), dt =
      time (fun () ->
          for i = 0 to stream_count - 1 do
            Workload.Purchase.insert_batch ~violating ~rng
              ~start_id:(3_000_000 + i) ~count:1 db;
            (* usable for rewrite this instant? exception-backed ASCs stay
               usable through their union rewrite *)
            if
              Core.Soft_constraint.is_usable sc || policy = `Exception_table
            then incr available
          done;
          if policy = `Async then
            Core.Maintenance.run_repairs (Core.Softdb.maintenance sdb))
    in
    let usable_after =
      Core.Soft_constraint.is_usable sc || policy = `Exception_table
    in
    [
      S label;
      F1 (ms dt);
      F (float_of_int !available /. float_of_int stream_count);
      B usable_after;
      I sc.Core.Soft_constraint.violation_count;
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E11 ASC maintenance policies under a %d-insert stream (%.0f%% \
          violating)"
         stream_count (100.0 *. violating))
    ~header:
      [ "policy"; "ingest ms"; "availability"; "usable after"; "violations" ]
    [
      run_policy "drop on violation" `Drop;
      run_policy "synchronous repair (widen)" `Sync;
      run_policy "asynchronous repair (re-mine)" `Async;
      run_policy "exception table (ASC-as-AST)" `Exception_table;
    ]

(* ============================================================================ *)
(* E12 — the advisor end to end: mine, select, exploit (paper §3.2)              *)
(* ============================================================================ *)

let e12 () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Workload.Purchase.load db;
  Workload.Project.load db;
  Core.Softdb.runstats sdb;
  let workload =
    List.map Workload.Queries.parse Workload.Queries.advisor_workload
  in
  let outcome, dt =
    timed ~reps:1 (fun () ->
        Core.Advisor.advise ~db ~stats:(Core.Softdb.statistics sdb)
          ~catalog:(Core.Softdb.catalog sdb) ~workload ())
  in
  Printf.printf "\nadvisor: %d candidates mined and assessed in %.0f ms\n"
    outcome.Core.Advisor.candidates (ms dt);
  print_table ~title:"E12a Selected soft constraints (estimated utility)"
    ~header:[ "constraint"; "est. benefit"; "plans changed"; "upkeep"; "net" ]
    (List.map
       (fun (a : Core.Selection.assessment) ->
         [
           S a.Core.Selection.sc.Core.Soft_constraint.name;
           F1 a.Core.Selection.benefit;
           I a.Core.Selection.plans_changed;
           F1 a.Core.Selection.maintenance_cost;
           F1 a.Core.Selection.net;
         ])
       outcome.Core.Advisor.assessed);
  let rows =
    List.map
      (fun sql ->
        let off, on_, equal = compare_query sdb sql in
        [
          S (truncate_sql sql);
          I off.pages;
          I on_.pages;
          F1 (speedup (float_of_int off.pages) (float_of_int on_.pages));
          B equal;
        ])
      Workload.Queries.advisor_workload
  in
  print_table ~title:"E12b Realized workload benefit with the installed SCs"
    ~header:[ "query"; "pages off"; "pages on"; "page ratio"; "equal" ]
    rows

(* ============================================================================ *)
(* E13 — runtime min/max parameterization, Sybase-style (paper §2, §4.2)        *)
(* ============================================================================ *)

let e13 () =
  let sdb = purchase_sdb ~rows:40_000 () in
  ignore
    (Core.Domain_tracker.track sdb ~table:"purchase"
       ~columns:[ "order_date"; "quantity" ]);
  let queries =
    [
      (* beyond the maintained max: provably empty, zero rows touched *)
      ("beyond max", "SELECT * FROM purchase WHERE order_date >= DATE \
                      '2005-01-01'");
      ("below min", "SELECT * FROM purchase WHERE quantity < 1");
      (* open-ended range near the edge: closed at the maintained bound *)
      ("open range at edge",
       "SELECT * FROM purchase WHERE order_date >= DATE '1999-12-28'");
      (* control: mid-domain range — domain knowledge cannot help *)
      ("mid-domain control",
       "SELECT * FROM purchase WHERE order_date BETWEEN DATE '1999-06-01' \
        AND DATE '1999-06-05'");
    ]
  in
  let rows =
    List.map
      (fun (label, sql) ->
        let off, on_, equal = compare_query sdb sql in
        [
          S label;
          I off.rows;
          I off.scanned;
          I on_.scanned;
          I off.pages;
          I on_.pages;
          B equal;
        ])
      queries
  in
  print_table
    ~title:
      "E13 Runtime min/max parameterization (synchronously maintained \
       domain SCs, Sybase-style)"
    ~header:
      [ "query"; "out rows"; "scanned off"; "scanned on"; "pages off";
        "pages on"; "equal" ]
    rows;
  (* maintenance: the domain stays valid under inserts beyond the max *)
  let rng = Stats.Rng.create 77 in
  Workload.Purchase.insert_batch ~violating:0.0 ~rng ~start_id:5_000_000
    ~count:100 (Core.Softdb.db sdb);
  let sc =
    Option.get
      (Core.Sc_catalog.find (Core.Softdb.catalog sdb)
         (Core.Domain_tracker.sc_name ~table:"purchase" ~column:"order_date"))
  in
  Printf.printf
    "after 100 further inserts: domain SC state = %s (synchronous widening)\n"
    (Fmt.str "%a" Core.Soft_constraint.pp_state sc.Core.Soft_constraint.state)

(* ============================================================================ *)
(* E14 — rule-ablation matrix: each rewrite's contribution, no degradation      *)
(* ============================================================================ *)

let e14 () =
  (* one database exercising every pathway at once *)
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Workload.Tpcd.load
    ~config:{ Workload.Tpcd.default_config with customers = 400; orders = 2000 }
    db;
  Workload.Tpcd.create_sales db;
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows = 20_000 }
    db;
  Core.Softdb.runstats sdb;
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
        order_date BETWEEN 0 AND 21) SOFT");
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_shipments FOR CONSTRAINT ship_3w");
  let nation = Database.table_exn db "nation" in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"nation_fd" ~table:"nation"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations nation)
       (Core.Soft_constraint.Fd_stmt
          { Mining.Fd_mine.table = "nation"; lhs = [ "n_nationkey" ];
            rhs = "n_name" }));
  let suite =
    [
      List.hd Workload.Queries.join_elimination_suite;
      Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15);
      Workload.Tpcd.sales_union_sql ~date_lo:(Date.of_ymd 1999 1 10)
        ~date_hi:(Date.of_ymd 1999 3 20);
      Workload.Queries.fd_group_by;
    ]
  in
  let run_with label flags =
    let pages = ref 0 and scanned = ref 0 and all_equal = ref true in
    List.iter
      (fun sql ->
        let off = run_query ~flags:Opt.Rewrite.all_off ~reps:1 sdb sql in
        let on_ = run_query ~flags ~reps:1 sdb sql in
        pages := !pages + on_.pages;
        scanned := !scanned + on_.scanned;
        if not (Exec.Executor.same_rows off.result on_.result) then
          all_equal := false)
      suite;
    [ S label; I !scanned; I !pages; B !all_equal ]
  in
  let open Opt.Rewrite in
  print_table
    ~title:
      "E14 Rule-ablation matrix over a 4-query suite (join-elim query, \
       exception query, union-all query, FD group query)"
    ~header:[ "configuration"; "rows scanned"; "pages"; "answers equal" ]
    [
      run_with "all rules OFF (baseline)" all_off;
      run_with "all rules ON" all_on;
      run_with "- join_elimination" { all_on with join_elimination = false };
      run_with "- predicate_introduction"
        { all_on with predicate_introduction = false };
      run_with "- exception_union" { all_on with exception_union = false };
      run_with "- unionall_pruning" { all_on with unionall_pruning = false };
      run_with "- fd_simplification" { all_on with fd_simplification = false };
      run_with "- twinning (estimation only)" { all_on with twinning = false };
    ]

(* ============================================================================ *)
(* E15 — prepared plans: ASC invalidation and backup plans (paper §4.1)         *)
(* ============================================================================ *)

let e15 () =
  let sdb = purchase_sdb ~rows:20_000 ~late:0.0 () in
  install_purchase_band sdb ~name:"band" ~confidence:1.0;
  let cache = Core.Plan_cache.create sdb in
  let days =
    List.init 8 (fun i -> Date.of_ymd 1999 (1 + i) 15)
  in
  List.iteri
    (fun i day ->
      ignore
        (Core.Plan_cache.prepare cache
           ~name:(Printf.sprintf "q%d" i)
           (Workload.Queries.purchase_ship_eq day)))
    days;
  let run_all label =
    let correct = ref true and fast = ref 0 and backup = ref 0 in
    List.iteri
      (fun i day ->
        let name = Printf.sprintf "q%d" i in
        let before =
          (Option.get (Core.Plan_cache.find cache name)).Core.Plan_cache
            .backup_runs
        in
        let r = Core.Plan_cache.execute cache name in
        let base =
          Core.Softdb.query_baseline sdb (Workload.Queries.purchase_ship_eq day)
        in
        if not (Exec.Executor.same_rows base r) then correct := false;
        let e = Option.get (Core.Plan_cache.find cache name) in
        if e.Core.Plan_cache.backup_runs > before then incr backup
        else incr fast)
      days;
    [ S label; I !fast; I !backup; B !correct ]
  in
  let rows = ref [ run_all "all ASCs valid" ] in
  (* a violating insert overturns the band (drop policy) *)
  let rng = Stats.Rng.create 97 in
  Workload.Purchase.insert_batch ~violating:1.0 ~rng ~start_id:7_000_000
    ~count:1 (Core.Softdb.db sdb);
  rows := run_all "after ASC overturned (backup plans)" :: !rows;
  (* asynchronous repair re-mines; reprepare restores fast plans *)
  Core.Maintenance.run_repairs (Core.Softdb.maintenance sdb);
  let sc = Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "band") in
  (match sc.Core.Soft_constraint.state with
  | Core.Soft_constraint.Violated ->
      (* drop policy was in effect; re-mine manually for the final phase *)
      Core.Maintenance.set_policy (Core.Softdb.maintenance sdb) "band"
        Core.Maintenance.Async_repair;
      let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
      let d =
        Option.get
          (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
      in
      let b = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
      sc.Core.Soft_constraint.statement <- Core.Soft_constraint.Diff_stmt (d, b);
      sc.Core.Soft_constraint.state <- Core.Soft_constraint.Active
  | _ -> ());
  Core.Plan_cache.reprepare cache;
  rows := run_all "after re-mine + reprepare" :: !rows;
  print_table
    ~title:
      "E15 Prepared plans under ASC violation: fast plans, backup fallback, \
       recompilation (paper §4.1)"
    ~header:[ "phase"; "fast runs"; "backup runs"; "all correct" ]
    (List.rev !rows)

let all =
  [
    ("e1", "join elimination via RI [6]", e1);
    ("e2", "predicate introduction from mined bands [10]", e2);
    ("e3", "join-hole range trimming [8]", e3);
    ("e4", "SSC twinning for cardinality estimation (§5.1)", e4);
    ("e5", "union-all branch elimination (§5)", e5);
    ("e6", "late_shipments exception plan (§4.4)", e6);
    ("e7", "SSC currency drift bound (§3.3)", e7);
    ("e8", "FD group/order simplification [29]", e8);
    ("e9", "hole discovery scaling [8]", e9);
    ("e10", "informational constraints load cost (§1)", e10);
    ("e11", "ASC maintenance policies (§4.1-4.3)", e11);
    ("e12", "advisor end to end (§3.2)", e12);
    ("e13", "runtime min/max parameterization (§4.2)", e13);
    ("e14", "rule-ablation matrix", e14);
    ("e15", "prepared plans: ASC invalidation + backup (§4.1)", e15);
  ]
