(* Shared machinery for the experiment harness: wall-clock timing with
   repetition, aligned table rendering, and the standard off/on comparison
   of a query under two rewrite-flag settings. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* median of [reps] timed runs; the result of the first run is returned *)
let timed ?(reps = 5) f =
  let first = ref None in
  let samples =
    List.init reps (fun _ ->
        let r, dt = time f in
        if !first = None then first := Some r;
        dt)
    |> List.sort Float.compare
  in
  (Option.get !first, List.nth samples (reps / 2))

let ms dt = dt *. 1000.0

(* ---- table rendering --------------------------------------------------- *)

type cell = S of string | I of int | F of float | F1 of float | B of bool

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.3f" f
  | F1 f -> Printf.sprintf "%.1f" f
  | B b -> if b then "yes" else "no"

let print_table ~title ~header rows =
  let rows = List.map (List.map cell_to_string) rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line c =
    print_string "+";
    List.iter
      (fun w -> print_string (String.make (w + 2) c ^ "+"))
      widths;
    print_newline ()
  in
  let print_row cells =
    print_string "|";
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        Printf.printf " %*s |" w c)
      cells;
    print_newline ()
  in
  Printf.printf "\n%s\n" title;
  line '-';
  print_row header;
  line '=';
  List.iter print_row rows;
  line '-'

(* ---- query comparison --------------------------------------------------- *)

type run = {
  rows : int;
  pages : int;
  scanned : int;
  probes : int;
  time_ms : float; (* execution only *)
  opt_ms : float; (* parse + rewrite + plan *)
  result : Exec.Executor.result;
}

let run_query ?flags ?reps sdb sql =
  let report, opt_dt = timed ?reps (fun () -> Core.Softdb.explain ?flags sdb sql) in
  let result, dt =
    timed ?reps (fun () ->
        Exec.Executor.run (Core.Softdb.db sdb) report.Opt.Explain.plan)
  in
  {
    rows = List.length result.Exec.Executor.rows;
    pages = result.Exec.Executor.counters.Exec.Operators.Counters.pages_read;
    scanned =
      result.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned;
    probes =
      result.Exec.Executor.counters.Exec.Operators.Counters.index_probes;
    time_ms = ms dt;
    opt_ms = ms opt_dt;
    result;
  }

(* baseline (all soft-constraint machinery off) vs. optimized *)
let compare_query ?reps sdb sql =
  let off = run_query ~flags:Opt.Rewrite.all_off ?reps sdb sql in
  let on_ = run_query ?reps sdb sql in
  let equal = Exec.Executor.same_rows off.result on_.result in
  (off, on_, equal)

let speedup off on_ = if on_ <= 0.0 then Float.nan else off /. on_

let truncate_sql ?(width = 58) sql =
  let sql = String.map (fun c -> if c = '\n' then ' ' else c) sql in
  if String.length sql <= width then sql else String.sub sql 0 (width - 3) ^ "..."

let qerror est truth =
  let est = max est 1.0 and truth = max truth 1.0 in
  if est > truth then est /. truth else truth /. est

(* ---- observability dump -------------------------------------------------

   Print the facade's metrics registry and query-log summary after an
   experiment, so a bench run doubles as a smoke test of the feedback
   loop (sys.metrics / sys.query_log carry the same values). *)

let print_observability sdb =
  let m = Core.Softdb.metrics sdb in
  let log = Core.Softdb.query_log sdb in
  let rows =
    Obs.Metrics.snapshot m
    |> List.map (fun (name, kind, v) -> [ S name; S kind; F v ])
  in
  if rows <> [] then
    print_table ~title:"observability: metrics snapshot"
      ~header:[ "metric"; "kind"; "value" ]
      rows;
  Printf.printf
    "observability: %d queries logged, mean q-error %.2f, worst %.2f\n"
    (Obs.Query_log.length log)
    (Obs.Query_log.mean_q_error log)
    (Obs.Query_log.worst_q_error log)
