-- The paper's §4.4 walkthrough as a plain SQL script:
--   dune exec bin/softdb.exe -- run examples/sql/late_shipments.sql
CREATE TABLE purchase (
  id INT PRIMARY KEY,
  order_date DATE NOT NULL,
  ship_date DATE,
  amount FLOAT);
CREATE INDEX purchase_order_date ON purchase (order_date);
INSERT INTO purchase VALUES
  (1, DATE '1999-11-01', DATE '1999-11-10', 120.0),
  (2, DATE '1999-11-03', DATE '1999-11-05', 80.0),
  (3, DATE '1999-11-20', DATE '1999-12-02', 45.5),
  (4, DATE '1999-12-01', DATE '1999-12-15', 300.0),
  (5, DATE '1999-10-01', DATE '1999-12-15', 99.0), -- a late shipment
  (6, DATE '1999-12-10', DATE '1999-12-15', 10.0);
RUNSTATS purchase;
-- the business rule: products ship within three weeks (99% true)
ALTER TABLE purchase ADD CONSTRAINT ship_3w
  CHECK (ship_date - order_date BETWEEN 0 AND 21) SOFT;
-- materialize its exceptions (the ASC-as-AST device)
CREATE EXCEPTION TABLE late_shipments FOR CONSTRAINT ship_3w;
SELECT * FROM late_shipments;
-- the optimizer now answers via index + UNION ALL over the exceptions
EXPLAIN SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15';
SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15';
