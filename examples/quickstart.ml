(* Quickstart: create a database, declare constraints in every mode the
   paper describes (ENFORCED / NOT ENFORCED / SOFT), run queries, and look
   at an EXPLAIN.

     dune exec examples/quickstart.exe
*)

let show title outcome =
  Fmt.pr "== %s@." title;
  (match outcome with
  | Core.Softdb.Rows r -> Fmt.pr "%a" Exec.Executor.pp_result r
  | Core.Softdb.Affected n -> Fmt.pr "%d rows affected@." n
  | Core.Softdb.Report r -> Fmt.pr "%a" Opt.Explain.pp r
  | Core.Softdb.Analyzed a -> Fmt.pr "%a" Opt.Explain.pp_analysis a
  | Core.Softdb.Done msg -> Fmt.pr "%s@." msg);
  Fmt.pr "@."

let () =
  let sdb = Core.Softdb.create () in
  let exec sql = show sql (Core.Softdb.exec sdb sql) in

  exec
    "CREATE TABLE employee (id INT PRIMARY KEY, dept VARCHAR NOT NULL, \
     salary INT, hired DATE, CONSTRAINT salary_positive CHECK (salary > 0))";
  exec "CREATE INDEX employee_salary ON employee (salary)";
  exec
    "INSERT INTO employee VALUES (1, 'eng', 120, DATE '2020-01-15'), (2, \
     'eng', 95, DATE '2021-06-01'), (3, 'sales', 80, DATE '2019-03-20'), \
     (4, 'sales', 110, DATE '2022-11-05'), (5, 'hr', 70, DATE '2018-07-30')";

  (* a hard constraint rejects bad data *)
  (try exec "INSERT INTO employee VALUES (6, 'eng', -5, NULL)"
   with Rel.Checker.Constraint_violation v ->
     Fmt.pr "rejected as expected: %a@.@." Rel.Checker.pp_violation v);

  exec "RUNSTATS employee";
  exec "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_salary FROM employee \
        GROUP BY dept ORDER BY n DESC";

  (* a SOFT constraint: validated against the data, then available to the
     optimizer exactly like an integrity constraint — until an update
     breaks it *)
  exec
    "ALTER TABLE employee ADD CONSTRAINT salary_band CHECK (salary BETWEEN \
     50 AND 200) SOFT";
  Fmt.pr "%a@." Core.Sc_catalog.pp (Core.Softdb.catalog sdb);

  exec "EXPLAIN SELECT * FROM employee WHERE salary > 100";

  (* EXPLAIN ANALYZE executes the plan instrumented: estimated vs actual
     rows and the q-error at every node *)
  exec "EXPLAIN ANALYZE SELECT * FROM employee WHERE salary > 100";

  (* an update that violates the soft constraint does NOT fail — the soft
     constraint is dropped instead (the paper's key semantic difference) *)
  exec "UPDATE employee SET salary = 500 WHERE id = 1";
  Fmt.pr "after a violating update:@.%a@." Core.Sc_catalog.pp
    (Core.Softdb.catalog sdb)
