(* The full SC process of paper §3.2 — discovery, selection, maintenance —
   run end to end by the advisor:

   1. it inspects a query workload to find mining targets (column pairs
      that co-occur in predicates, predicate columns paired with indexed
      columns, join paths, grouped tables);
   2. it mines difference bands, linear correlations, FDs and join holes
      over those targets;
   3. it assesses every candidate's utility by re-optimizing the workload
      with and without it, nets out a maintenance-cost estimate, and
      installs the winners.

     dune exec examples/advisor_demo.exe
*)

let () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Fmt.pr "loading purchase (20k rows) and project (10k rows)...@.";
  Workload.Purchase.load db;
  Workload.Project.load db;
  Core.Softdb.runstats sdb;

  Fmt.pr "workload:@.";
  List.iter (fun q -> Fmt.pr "  %s@." q) Workload.Queries.advisor_workload;

  let workload =
    List.map Workload.Queries.parse Workload.Queries.advisor_workload
  in
  let targets = Core.Advisor.extract_targets db workload in
  Fmt.pr "@.mining targets: %d column pairs, %d join paths, %d FD tables@."
    (List.length targets.Core.Advisor.pair_targets)
    (List.length targets.Core.Advisor.hole_targets)
    (List.length targets.Core.Advisor.fd_targets);

  let outcome =
    Core.Advisor.advise ~db ~stats:(Core.Softdb.statistics sdb)
      ~catalog:(Core.Softdb.catalog sdb) ~workload ()
  in
  Fmt.pr "candidates mined: %d@." outcome.Core.Advisor.candidates;
  Fmt.pr "selected (net utility > 0):@.";
  List.iter
    (fun a -> Fmt.pr "  %a@." Core.Selection.pp_assessment a)
    outcome.Core.Advisor.assessed;

  Fmt.pr "@.installed catalog:@.%a@." Core.Sc_catalog.pp
    (Core.Softdb.catalog sdb);

  (* show the workload speedup the installed SCs deliver *)
  Fmt.pr "%-70s %10s %10s@." "query" "pages off" "pages on";
  List.iter
    (fun sql ->
      let base = Core.Softdb.query_baseline sdb sql in
      let opt = Core.Softdb.query sdb sql in
      assert (Exec.Executor.same_rows base opt);
      Fmt.pr "%-70s %10d %10d@."
        (if String.length sql > 70 then String.sub sql 0 67 ^ "..." else sql)
        base.Exec.Executor.counters.Exec.Operators.Counters.pages_read
        opt.Exec.Executor.counters.Exec.Operators.Counters.pages_read)
    Workload.Queries.advisor_workload
