(* Paper §4.1, live: prepared plans that depend on an absolute soft
   constraint, the violation that overturns it, the backup-plan fallback,
   and recompilation after repair.

     dune exec examples/prepared_plans.exe
*)

open Rel

let () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Fmt.pr "loading purchase (20k rows, no late shipments yet)...@.";
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with late_fraction = 0.0 }
    db;
  Core.Softdb.runstats sdb;

  (* mine + install the ship/order band as an ASC *)
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"ship_band" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, b100)));

  let cache = Core.Plan_cache.create sdb in
  let sql = Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15) in
  let entry = Core.Plan_cache.prepare cache ~name:"june15" sql in
  Fmt.pr "prepared: %a@." Core.Plan_cache.pp_entry entry;

  let show label =
    let r = Core.Plan_cache.execute cache "june15" in
    let base = Core.Softdb.query_baseline sdb sql in
    let e = Option.get (Core.Plan_cache.find cache "june15") in
    Fmt.pr "%-28s rows=%d pages=%d fast=%d backup=%d correct=%b@." label
      (List.length r.Exec.Executor.rows)
      r.Exec.Executor.counters.Exec.Operators.Counters.pages_read
      e.Core.Plan_cache.fast_runs e.Core.Plan_cache.backup_runs
      (Exec.Executor.same_rows base r)
  in
  show "ASC valid (fast plan)";

  Fmt.pr "@.a violating insert ships a January order on June 15...@.";
  ignore
    (Core.Softdb.exec sdb
       "INSERT INTO purchase VALUES (900001, 1, DATE '1999-01-05', DATE \
        '1999-06-15', 100.0, 3, 'north')");
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ship_band")
  in
  Fmt.pr "soft constraint is now: %a@." Core.Soft_constraint.pp sc;
  show "ASC overturned (backup)";

  Fmt.pr "@.asynchronous repair re-mines the band, then reprepare...@.";
  Core.Softdb.install_sc sdb
    (let d' =
       Option.get
         (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
     in
     let b' = Option.get (Mining.Diff_band.band_with d' ~confidence:1.0) in
     Core.Soft_constraint.make ~name:"ship_band_v2" ~table:"purchase"
       ~kind:Core.Soft_constraint.Absolute
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d', b')));
  Core.Plan_cache.reprepare cache;
  show "repaired + reprepared (fast)"
