(* The paper's §5 union-all view: twelve monthly sales tables, each with a
   CHECK constraint confining sale_date to its month, queried through a
   12-branch UNION ALL.  A query asking for January..March only needs the
   first three branches; the optimizer proves the other nine
   unsatisfiable against their branch constraints and prunes them.

     dune exec examples/union_partitions.exe
*)

open Rel

let () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Fmt.pr "creating 12 monthly sales tables with CHECK month constraints...@.";
  Workload.Tpcd.create_sales db;
  Core.Softdb.runstats sdb;

  let lo = Date.of_ymd 1999 1 10 and hi = Date.of_ymd 1999 3 20 in
  let sql = Workload.Tpcd.sales_union_sql ~date_lo:lo ~date_hi:hi in

  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  let report = Core.Softdb.explain sdb sql in

  let branches =
    match report.Opt.Explain.plan with
    | Exec.Plan.Union_all l -> List.length l
    | _ -> 1
  in
  Fmt.pr "query range: %s .. %s@." (Date.to_string lo) (Date.to_string hi);
  Fmt.pr "branches scanned: 12 -> %d@." branches;
  Fmt.pr "rows scanned:     %d -> %d@."
    base.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned
    opt.Exec.Executor.counters.Exec.Operators.Counters.rows_scanned;
  Fmt.pr "answers identical: %b (%d rows)@.@."
    (Exec.Executor.same_rows base opt)
    (List.length opt.Exec.Executor.rows);
  List.iter
    (fun a -> Fmt.pr "  %a@." Opt.Rewrite.pp_applied a)
    report.Opt.Explain.applied
