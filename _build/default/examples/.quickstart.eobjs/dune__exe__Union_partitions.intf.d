examples/union_partitions.mli:
