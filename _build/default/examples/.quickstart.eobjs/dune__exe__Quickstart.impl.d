examples/quickstart.ml: Core Exec Fmt Opt Rel
