examples/prepared_plans.ml: Core Database Date Exec Fmt List Mining Option Rel Table Workload
