examples/quickstart.mli:
