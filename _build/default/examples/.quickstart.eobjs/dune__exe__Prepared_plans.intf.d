examples/prepared_plans.mli:
