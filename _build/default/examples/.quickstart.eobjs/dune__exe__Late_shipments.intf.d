examples/late_shipments.mli:
