examples/late_shipments.ml: Core Database Exec Fmt List Opt Option Rel Stats Table Workload
