examples/project_days.mli:
