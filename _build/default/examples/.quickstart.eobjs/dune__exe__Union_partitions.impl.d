examples/union_partitions.ml: Core Date Exec Fmt List Opt Rel Workload
