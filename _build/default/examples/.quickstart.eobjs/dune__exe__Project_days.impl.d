examples/project_days.ml: Core Database Date Exec Fmt List Mining Opt Option Rel Table Workload
