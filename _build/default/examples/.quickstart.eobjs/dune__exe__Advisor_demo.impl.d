examples/advisor_demo.ml: Core Exec Fmt List String Workload
