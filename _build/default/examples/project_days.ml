(* The paper's §5/§5.1 cardinality example: "find the number of projects
   active on a given day" with

       start_date <= :d AND end_date >= :d

   Under the independence assumption the two correlated range predicates
   multiply into a wild over-estimate.  A statistical soft constraint
   "end_date - start_date <= 5 for 90% of projects" lets the optimizer
   *twin* the end_date predicate with an estimation-only predicate on
   start_date, and blend with the confidence factor — estimates collapse
   toward the truth, with answers untouched.

     dune exec examples/project_days.exe
*)

open Rel

let () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Fmt.pr "loading the project table (10k rows, 90%% finish within 5 days)...@.";
  Workload.Project.load db;
  Core.Softdb.runstats sdb;

  (* mine the difference band — discovery, the first stage of the paper's
     SC process — and install the 90% band as an SSC *)
  let tbl = Database.table_exn db "project" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"end_date" ~col_lo:"start_date")
  in
  Fmt.pr "mined: %a@.@." Mining.Diff_band.pp d;
  let band = Option.get (Mining.Diff_band.band_with d ~confidence:0.9) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"project_duration" ~table:"project"
       ~kind:(Core.Soft_constraint.Statistical band.Mining.Diff_band.confidence)
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, band)));

  Fmt.pr "%-12s %10s %12s %12s %8s %8s@." "day" "truth" "independence"
    "twinned" "q-indep" "q-twin";
  let qerr est truth =
    let est = max est 1.0 and truth = max truth 1.0 in
    if est > truth then est /. truth else truth /. est
  in
  List.iter
    (fun (y, m, dd) ->
      let day = Date.of_ymd y m dd in
      let sql = Workload.Queries.project_active_on day in
      let truth = float_of_int (Workload.Project.active_on db day) in
      let indep =
        (Core.Softdb.explain ~flags:Opt.Rewrite.all_off sdb sql)
          .Opt.Explain.estimated_cardinality
      in
      let twin =
        (Core.Softdb.explain sdb sql).Opt.Explain.estimated_cardinality
      in
      Fmt.pr "%-12s %10.0f %12.1f %12.1f %8.1f %8.1f@." (Date.to_string day)
        truth indep twin (qerr indep truth) (qerr twin truth))
    [ (1998, 3, 1); (1998, 6, 1); (1998, 9, 1); (1999, 1, 1); (1999, 6, 1) ];

  (* the twin is estimation-only: show it in the explain, and show that
     execution results are identical *)
  let sql = Workload.Queries.project_active_on (Date.of_ymd 1998 9 1) in
  Fmt.pr "@.%a@." Opt.Explain.pp (Core.Softdb.explain sdb sql);
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  Fmt.pr "answers identical: %b@." (Exec.Executor.same_rows base opt)
