(* The paper's §4.4 walkthrough, end to end: the business rule "products
   ship within three weeks" holds for ~99% of the purchase table.  Declared
   as a SOFT constraint it lands as a statistical soft constraint with the
   measured confidence; backing it with an exception table (the ASC-as-AST
   device) lets the optimizer rewrite

       SELECT * FROM purchase WHERE ship_date = :d

   into an index-driven plan UNION ALL a scan of the (tiny) exception
   table — answer-identical for any data, and far cheaper because only
   order_date is indexed.

     dune exec examples/late_shipments.exe
*)

open Rel

let () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Fmt.pr "loading the purchase table (20k rows, ~1%% late shipments)...@.";
  Workload.Purchase.load db;
  Core.Softdb.runstats sdb;

  (* declare the business rule; it does not hold absolutely, so the system
     keeps it with its measured confidence *)
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
        order_date BETWEEN 0 AND 21) SOFT");
  let sc =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ship_3w")
  in
  Fmt.pr "declared: %a@.@." Core.Soft_constraint.pp sc;

  (* materialize its exceptions — "the AST late_shipments tracks the
     exceptions (about 1%% of the tuples)" *)
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_shipments FOR CONSTRAINT ship_3w");
  Fmt.pr "late_shipments holds %d of %d rows@.@."
    (Table.cardinality (Database.table_exn db "late_shipments"))
    (Table.cardinality (Database.table_exn db "purchase"));

  let sql = "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'" in

  Fmt.pr "--- without soft constraints ---@.";
  let base = Core.Softdb.query_baseline sdb sql in
  Fmt.pr "%d rows; %a@.@."
    (List.length base.Exec.Executor.rows)
    Exec.Operators.Counters.pp base.Exec.Executor.counters;

  Fmt.pr "--- with the exception-table rewrite ---@.";
  Fmt.pr "%a@." Opt.Explain.pp (Core.Softdb.explain sdb sql);
  let opt = Core.Softdb.query sdb sql in
  Fmt.pr "%d rows; %a@.@."
    (List.length opt.Exec.Executor.rows)
    Exec.Operators.Counters.pp opt.Exec.Executor.counters;

  Fmt.pr "answers identical: %b@." (Exec.Executor.same_rows base opt);
  Fmt.pr "page reads: %d -> %d@."
    base.Exec.Executor.counters.Exec.Operators.Counters.pages_read
    opt.Exec.Executor.counters.Exec.Operators.Counters.pages_read;

  (* updates that violate the rule are simply stored as exceptions; the
     rewrite stays exactly correct *)
  Fmt.pr "@.inserting 100 new rows, half of them late...@.";
  let rng = Stats.Rng.create 2 in
  Workload.Purchase.insert_batch ~violating:0.5 ~rng ~start_id:1_000_000
    ~count:100 db;
  let base' = Core.Softdb.query_baseline sdb sql in
  let opt' = Core.Softdb.query sdb sql in
  Fmt.pr "still identical after violating updates: %b@."
    (Exec.Executor.same_rows base' opt')
