bench/experiments.ml: Bench_util Core Database Date Exec Float Fmt Icdef List Mining Opt Option Printf Rel Stats Table Tuple Value Workload
