bench/bench_util.ml: Core Exec Float List Opt Option Printf String Unix
