bench/main.mli:
