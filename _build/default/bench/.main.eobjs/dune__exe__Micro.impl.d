bench/micro.ml: Analyze Bechamel Benchmark Bptree Core Hashtbl Instance Int Lazy List Measure Printf Rel Sqlfe Staged Stats String Test Time Toolkit Value Workload
