(* The benchmark harness: regenerates every experiment table of
   EXPERIMENTS.md, plus Bechamel micro-benchmarks.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- e4 e6   # selected experiments
     dune exec bench/main.exe -- micro   # micro-benchmarks only
     dune exec bench/main.exe -- list    # what exists
*)

let list_experiments () =
  print_endline "experiments:";
  List.iter
    (fun (id, desc, _) -> Printf.printf "  %-5s %s\n" id desc)
    Experiments.all;
  print_endline "  micro bechamel micro-benchmarks"

let run_one id =
  match List.find_opt (fun (i, _, _) -> i = id) Experiments.all with
  | Some (_, desc, f) ->
      Printf.printf "\n================ %s: %s ================\n" id desc;
      f ()
  | None ->
      if id = "micro" then Micro.run ()
      else begin
        Printf.eprintf "unknown experiment %s\n" id;
        list_experiments ();
        exit 1
      end

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      List.iter (fun (id, _, _) -> run_one id) Experiments.all;
      Micro.run ()
  | _ :: [ "list" ] -> list_experiments ()
  | _ :: ids -> List.iter run_one ids
  | [] -> assert false
