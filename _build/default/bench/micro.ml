(* Bechamel micro-benchmarks of the hot paths: B+-tree operations,
   histogram estimation, SQL parsing, the full optimize pipeline, and
   query execution. *)

open Bechamel
open Toolkit
open Rel

module Itree = Bptree.Make (Int)

let prepared_tree =
  lazy
    (let t = Itree.create ~b:16 () in
     for i = 0 to 9_999 do
       ignore (Itree.insert t ((i * 7919) mod 65_536) i)
     done;
     t)

let prepared_histogram =
  lazy
    (let rng = Stats.Rng.create 5 in
     Stats.Histogram.build ~buckets:32
       (List.init 10_000 (fun _ -> Value.Int (Stats.Rng.int rng 1_000))))

let prepared_sdb =
  lazy
    (let sdb = Core.Softdb.create () in
     Workload.Purchase.load
       ~config:{ Workload.Purchase.default_config with rows = 2_000 }
       (Core.Softdb.db sdb);
     Core.Softdb.runstats sdb;
     ignore
       (Core.Softdb.exec sdb
          "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
           order_date BETWEEN 0 AND 21) SOFT");
     sdb)

let sql = "SELECT * FROM purchase WHERE ship_date = DATE '1999-06-15'"

let tests =
  [
    Test.make ~name:"bptree insert+remove"
      (Staged.stage (fun () ->
           let t = Lazy.force prepared_tree in
           ignore (Itree.insert t 999_999 0);
           ignore (Itree.remove t 999_999)));
    Test.make ~name:"bptree lookup"
      (Staged.stage (fun () ->
           ignore (Itree.find (Lazy.force prepared_tree) 7919)));
    Test.make ~name:"bptree range-100"
      (Staged.stage (fun () ->
           ignore
             (Itree.range (Lazy.force prepared_tree) ~lo:(Itree.Incl 1_000)
                ~hi:(Itree.Incl 1_100))));
    Test.make ~name:"histogram range estimate"
      (Staged.stage (fun () ->
           ignore
             (Stats.Histogram.selectivity_range
                (Lazy.force prepared_histogram)
                ~lo:(Value.Int 100, `Incl) ~hi:(Value.Int 300, `Incl) ())));
    Test.make ~name:"parse select"
      (Staged.stage (fun () -> ignore (Sqlfe.Parser.parse_statement sql)));
    Test.make ~name:"optimize (rewrite+plan)"
      (Staged.stage (fun () ->
           ignore (Core.Softdb.explain (Lazy.force prepared_sdb) sql)));
    Test.make ~name:"execute 2k-row query"
      (Staged.stage (fun () ->
           ignore (Core.Softdb.query (Lazy.force prepared_sdb) sql)));
  ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\nMicro-benchmarks (ns per run, OLS on monotonic clock)\n";
  Printf.printf "%-40s %14s %10s\n" "operation" "ns/run" "r^2";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         let est =
           match Analyze.OLS.estimates ols with
           | Some [ x ] -> Printf.sprintf "%14.1f" x
           | _ -> "             -"
         in
         let r2 =
           match Analyze.OLS.r_square ols with
           | Some r -> Printf.sprintf "%10.4f" r
           | None -> "         -"
         in
         Printf.printf "%-40s %s %s\n" name est r2)
