(* End-to-end integration tests: SQL in, rows out, through the full
   Softdb façade — DDL with ENFORCED / NOT ENFORCED / SOFT modes, DML,
   the paper's worked examples at small scale, and EXPLAIN surface. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let rows_of = function
  | Core.Softdb.Rows r -> r.Exec.Executor.rows
  | _ -> Alcotest.fail "expected rows"

let affected = function
  | Core.Softdb.Affected n -> n
  | _ -> Alcotest.fail "expected affected-count"

let test_sql_end_to_end () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE emp (id INT PRIMARY KEY, dept VARCHAR NOT NULL,
          salary INT, CONSTRAINT sal_pos CHECK (salary > 0));
        CREATE INDEX emp_sal ON emp (salary);
        INSERT INTO emp VALUES (1, 'eng', 100), (2, 'eng', 200),
          (3, 'hr', 150), (4, 'hr', NULL);");
  (* constraint rejects bad data *)
  check tbool "check fires" true
    (try
       ignore (Core.Softdb.exec sdb "INSERT INTO emp VALUES (5, 'x', -1)");
       false
     with Checker.Constraint_violation _ -> true);
  (* aggregate query *)
  let r =
    rows_of
      (Core.Softdb.exec sdb
         "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp GROUP BY \
          dept ORDER BY dept")
  in
  check tint "two groups" 2 (List.length r);
  (match r with
  | [ eng; hr ] ->
      check tbool "eng row" true
        (Tuple.to_list eng
        = [ Value.String "eng"; Value.Int 2; Value.Int 300 ]);
      check tbool "hr: null salary excluded from sum" true
        (Tuple.to_list hr = [ Value.String "hr"; Value.Int 2; Value.Int 150 ])
  | _ -> Alcotest.fail "bad groups");
  (* update + delete *)
  check tint "update" 2
    (affected (Core.Softdb.exec sdb "UPDATE emp SET salary = salary + 10 \
                                     WHERE dept = 'eng'"));
  check tint "delete" 1
    (affected (Core.Softdb.exec sdb "DELETE FROM emp WHERE salary IS NULL"));
  let r2 = rows_of (Core.Softdb.exec sdb "SELECT COUNT(*) FROM emp") in
  check tbool "three left" true
    (match r2 with [ row ] -> Tuple.get row 0 = Value.Int 3 | _ -> false)

let test_soft_ddl_validates () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE p (id INT PRIMARY KEY, lo INT, hi INT);
        INSERT INTO p VALUES (1, 0, 5), (2, 2, 9), (3, 1, 30);");
  (* holds -> ASC *)
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE p ADD CONSTRAINT ordered CHECK (hi >= lo) SOFT");
  let sc = Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ordered") in
  check tbool "validated as absolute" true (Core.Soft_constraint.is_absolute sc);
  (* does not hold -> SSC with measured confidence *)
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE p ADD CONSTRAINT narrow CHECK (hi - lo <= 10) SOFT");
  let sc2 = Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "narrow") in
  check tbool "statistical" false (Core.Soft_constraint.is_absolute sc2);
  check tbool "measured 2/3" true
    (Float.abs (Core.Soft_constraint.confidence sc2 -. (2.0 /. 3.0)) < 1e-9);
  (* declared confidence taken as-is *)
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE p ADD CONSTRAINT declared CHECK (hi < 100) SOFT \
        CONFIDENCE 0.9");
  let sc3 =
    Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "declared")
  in
  check tbool "declared confidence" true
    (Core.Soft_constraint.confidence sc3 = 0.9)

let test_informational_ddl () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE t (a INT, CONSTRAINT pos CHECK (a > 0) NOT ENFORCED);
        INSERT INTO t VALUES (-5);");
  (* accepted despite violating: informational constraints are unchecked *)
  let r = rows_of (Core.Softdb.exec sdb "SELECT * FROM t") in
  check tint "row stored" 1 (List.length r)

(* the paper's §4.4 walkthrough, end to end through SQL *)
let test_late_shipments_walkthrough () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:{ Workload.Purchase.default_config with rows = 4000 }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  (* declare the business rule as a SOFT constraint; it will not hold
     absolutely (1% late), so it lands as an SSC with measured confidence *)
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
        order_date BETWEEN 0 AND 21) SOFT");
  let sc = Option.get (Core.Sc_catalog.find (Core.Softdb.catalog sdb) "ship_3w") in
  check tbool "~99% confidence measured" true
    (let c = Core.Soft_constraint.confidence sc in
     c > 0.97 && c < 1.0);
  ignore
    (Core.Softdb.exec sdb
       "CREATE EXCEPTION TABLE late_shipments FOR CONSTRAINT ship_3w");
  let sql = "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'" in
  let base = Core.Softdb.query_baseline sdb sql in
  let opt = Core.Softdb.query sdb sql in
  check tbool "identical answers" true (Exec.Executor.same_rows base opt);
  check tbool "cheaper" true
    (opt.Exec.Executor.counters.Exec.Operators.Counters.pages_read
    < base.Exec.Executor.counters.Exec.Operators.Counters.pages_read);
  (* EXPLAIN mentions the union *)
  let report = Core.Softdb.explain sdb sql in
  check tbool "union plan" true
    (match report.Opt.Explain.plan with
    | Exec.Plan.Union_all _ -> true
    | _ -> false)

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  go 0

let test_explain_statement () =
  let sdb = Core.Softdb.create () in
  ignore (Core.Softdb.exec sdb "CREATE TABLE t (a INT)");
  match Core.Softdb.exec sdb "EXPLAIN SELECT * FROM t WHERE a > 3" with
  | Core.Softdb.Report r ->
      let text = Opt.Explain.to_string r in
      check tbool "mentions scan" true (string_contains text "SeqScan")
  | _ -> Alcotest.fail "expected report"

let test_runstats_statement () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3); RUNSTATS t;");
  check tbool "stats collected" true
    (Stats.Runstats.find (Core.Softdb.statistics sdb) "t" <> None)

let () =
  Alcotest.run "integration"
    [
      ( "sql",
        [
          Alcotest.test_case "end to end" `Quick test_sql_end_to_end;
          Alcotest.test_case "soft ddl validates" `Quick test_soft_ddl_validates;
          Alcotest.test_case "informational ddl" `Quick test_informational_ddl;
          Alcotest.test_case "runstats statement" `Quick
            test_runstats_statement;
          Alcotest.test_case "explain statement" `Quick test_explain_statement;
        ] );
      ( "paper-examples",
        [
          Alcotest.test_case "late shipments walkthrough" `Quick
            test_late_shipments_walkthrough;
        ] );
    ]
