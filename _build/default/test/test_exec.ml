(* Tests for the execution engine: every physical operator, aggregate
   semantics (nulls, empty input), join-method agreement properties, and
   the work counters the experiments report. *)

open Rel
open Exec

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let fixture () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "emp"
          [
            Schema.column ~nullable:false "id" Value.TInt;
            Schema.column "dept" Value.TInt;
            Schema.column "salary" Value.TInt;
            Schema.column "name" Value.TString;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "dept"
          [
            Schema.column ~nullable:false "did" Value.TInt;
            Schema.column "dname" Value.TString;
          ]));
  let emp_rows =
    [
      (1, Some 10, Some 100, "ann");
      (2, Some 10, Some 200, "bob");
      (3, Some 20, Some 300, "cid");
      (4, None, Some 400, "dee");
      (5, Some 30, None, "eve");
      (6, Some 20, Some 250, "fay");
    ]
  in
  List.iter
    (fun (i, d, s, n) ->
      ignore
        (Database.insert db ~table:"emp"
           (Tuple.make
              [
                Value.Int i;
                (match d with Some d -> Value.Int d | None -> Value.Null);
                (match s with Some s -> Value.Int s | None -> Value.Null);
                Value.String n;
              ])))
    emp_rows;
  List.iter
    (fun (d, n) ->
      ignore
        (Database.insert db ~table:"dept"
           (Tuple.make [ Value.Int d; Value.String n ])))
    [ (10, "eng"); (20, "sales"); (40, "empty") ];
  ignore
    (Database.create_index db ~name:"emp_salary_idx" ~table:"emp"
       ~columns:[ "salary" ] ());
  db

let run db plan = Executor.run db plan

let scan ?(filter = Expr.Ptrue) table =
  Plan.Seq_scan { table; alias = table; filter }

let test_seq_scan_filter () =
  let db = fixture () in
  let r =
    run db
      (scan ~filter:(Expr.Cmp (Expr.Ge, Expr.column "salary", Expr.int 250))
         "emp")
  in
  check tint "three rows (null filtered)" 3 (List.length r.Executor.rows);
  check tint "scanned all" 6 r.Executor.counters.Operators.Counters.rows_scanned

let test_index_scan () =
  let db = fixture () in
  let r =
    run db
      (Plan.Index_scan
         {
           table = "emp";
           alias = "emp";
           index = "emp_salary_idx";
           lo = Index.Incl (Value.Int 200);
           hi = Index.Excl (Value.Int 400);
           filter = Expr.Ptrue;
         })
  in
  check tint "three in range" 3 (List.length r.Executor.rows);
  check tint "probe counted" 1 r.Executor.counters.Operators.Counters.index_probes;
  check tbool "fewer rows touched than table" true
    (r.Executor.counters.Operators.Counters.rows_scanned < 6)

let test_project () =
  let db = fixture () in
  let r =
    run db
      (Plan.Project
         {
           input = scan "emp";
           exprs =
             [
               (Expr.column "name", "name");
               ( Expr.Binop (Expr.Mul, Expr.column "salary", Expr.int 2),
                 "double" );
             ];
         })
  in
  check (Alcotest.list Alcotest.string) "columns" [ "name"; "double" ]
    r.Executor.columns;
  check tbool "null propagates" true
    (List.exists
       (fun row -> Tuple.get row 1 = Value.Null)
       r.Executor.rows)

let join_pred =
  Expr.Cmp (Expr.Eq, Expr.column ~rel:"emp" "dept", Expr.column ~rel:"dept" "did")

let test_joins_agree () =
  let db = fixture () in
  let nlj =
    run db
      (Plan.Nested_loop_join
         { left = scan "emp"; right = scan "dept"; pred = join_pred })
  in
  let hj =
    run db
      (Plan.Hash_join
         {
           left = scan "emp";
           right = scan "dept";
           left_keys = [ Expr.column ~rel:"emp" "dept" ];
           right_keys = [ Expr.column ~rel:"dept" "did" ];
           residual = Expr.Ptrue;
         })
  in
  let mj =
    run db
      (Plan.Merge_join
         {
           left = scan "emp";
           right = scan "dept";
           left_keys = [ Expr.column ~rel:"emp" "dept" ];
           right_keys = [ Expr.column ~rel:"dept" "did" ];
           residual = Expr.Ptrue;
         })
  in
  (* 4 matching rows: emp 1,2 -> dept 10; emp 3,6 -> dept 20; emp with
     NULL dept and dept 30/40 drop out *)
  check tint "nlj rows" 4 (List.length nlj.Executor.rows);
  check tbool "hash = nlj" true (Executor.same_rows nlj hj);
  check tbool "merge = nlj" true (Executor.same_rows nlj mj)

let test_join_residual () =
  let db = fixture () in
  let r =
    run db
      (Plan.Hash_join
         {
           left = scan "emp";
           right = scan "dept";
           left_keys = [ Expr.column ~rel:"emp" "dept" ];
           right_keys = [ Expr.column ~rel:"dept" "did" ];
           residual = Expr.Cmp (Expr.Gt, Expr.column "salary", Expr.int 150);
         })
  in
  check tint "residual filters" 3 (List.length r.Executor.rows)

let test_sort () =
  let db = fixture () in
  let r =
    run db
      (Plan.Sort
         {
           input = scan "emp";
           keys =
             [
               { Plan.key = Expr.column "dept"; asc = true };
               { Plan.key = Expr.column "salary"; asc = false };
             ];
         })
  in
  let ids = List.map (fun row -> Tuple.get row 0) r.Executor.rows in
  (* nulls sort first in total order: emp 4 (null dept) leads; within dept
     10 salary desc: 2 then 1 *)
  check tbool "null dept first" true (List.hd ids = Value.Int 4);
  check tbool "salary desc within dept" true
    (let rec idx i = function
       | [] -> -1
       | x :: tl -> if x = Value.Int 2 then i else idx (i + 1) tl
     in
     idx 0 ids < (let rec idx2 i = function
                   | [] -> -1
                   | x :: tl -> if x = Value.Int 1 then i else idx2 (i + 1) tl
                 in
                 idx2 0 ids))

let group_plan db =
  ignore db;
  Plan.Group
    {
      input = scan "emp";
      keys = [ (Expr.column "dept", "_g0") ];
      aggs =
        [
          { Plan.fn = Plan.Count; arg = None; out_name = "n" };
          { Plan.fn = Plan.Sum; arg = Some (Expr.column "salary");
            out_name = "total" };
          { Plan.fn = Plan.Avg; arg = Some (Expr.column "salary");
            out_name = "avg" };
          { Plan.fn = Plan.Min; arg = Some (Expr.column "salary");
            out_name = "mn" };
          { Plan.fn = Plan.Max; arg = Some (Expr.column "salary");
            out_name = "mx" };
        ];
    }

let test_group_aggregates () =
  let db = fixture () in
  let r = run db (group_plan db) in
  check tint "four groups (incl null dept)" 4 (List.length r.Executor.rows);
  let find dept =
    List.find
      (fun row -> Value.equal_total (Tuple.get row 0) dept)
      r.Executor.rows
  in
  let d10 = find (Value.Int 10) in
  check tbool "count 10" true (Tuple.get d10 1 = Value.Int 2);
  check tbool "sum 10" true (Tuple.get d10 2 = Value.Int 300);
  check tbool "avg 10" true (Tuple.get d10 3 = Value.Float 150.0);
  let d30 = find (Value.Int 30) in
  (* eve's salary is NULL: bare COUNT counts her; SUM, AVG, MIN, MAX are null *)
  check tbool "count rows with null agg input" true (Tuple.get d30 1 = Value.Int 1);
  check tbool "sum null" true (Tuple.get d30 2 = Value.Null);
  check tbool "min null" true (Tuple.get d30 4 = Value.Null)

let test_global_aggregate_empty_input () =
  let db = fixture () in
  let r =
    run db
      (Plan.Group
         {
           input = scan ~filter:Expr.Pfalse "emp";
           keys = [];
           aggs =
             [
               { Plan.fn = Plan.Count; arg = None; out_name = "n" };
               { Plan.fn = Plan.Sum; arg = Some (Expr.column "salary");
                 out_name = "s" };
             ];
         })
  in
  check tint "one row" 1 (List.length r.Executor.rows);
  let row = List.hd r.Executor.rows in
  check tbool "count 0" true (Tuple.get row 0 = Value.Int 0);
  check tbool "sum null" true (Tuple.get row 1 = Value.Null)

let test_distinct () =
  let db = fixture () in
  let r =
    run db
      (Plan.Distinct
         (Plan.Project
            { input = scan "emp"; exprs = [ (Expr.column "dept", "dept") ] }))
  in
  check tint "distinct depts (incl null)" 4 (List.length r.Executor.rows)

let test_union_all_and_limit () =
  let db = fixture () in
  let r = run db (Plan.Union_all [ scan "emp"; scan "emp" ]) in
  check tint "doubled" 12 (List.length r.Executor.rows);
  let r2 =
    run db (Plan.Limit { input = Plan.Union_all [ scan "emp"; scan "emp" ]; n = 7 })
  in
  check tint "limited" 7 (List.length r2.Executor.rows);
  let r3 = run db (Plan.Limit { input = scan "emp"; n = 0 }) in
  check tint "limit 0 short-circuits" 0
    r3.Executor.counters.Operators.Counters.rows_scanned

(* property: hash join = nested loop join on random data *)
let joins_agree_prop =
  QCheck.Test.make ~name:"hash join = NLJ on random tables" ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 30) (pair (int_range 0 5) (int_range 0 100)))
        (list_of_size Gen.(int_range 0 30) (pair (int_range 0 5) (int_range 0 100))))
    (fun (left_rows, right_rows) ->
      let db = Database.create () in
      ignore
        (Database.create_table db
           (Schema.make "l"
              [ Schema.column "k" Value.TInt; Schema.column "v" Value.TInt ]));
      ignore
        (Database.create_table db
           (Schema.make "r"
              [ Schema.column "k" Value.TInt; Schema.column "w" Value.TInt ]));
      List.iter
        (fun (k, v) ->
          ignore
            (Database.insert db ~table:"l"
               (Tuple.make [ Value.Int k; Value.Int v ])))
        left_rows;
      List.iter
        (fun (k, w) ->
          ignore
            (Database.insert db ~table:"r"
               (Tuple.make [ Value.Int k; Value.Int w ])))
        right_rows;
      let nlj =
        run db
          (Plan.Nested_loop_join
             {
               left = scan "l";
               right = scan "r";
               pred =
                 Expr.Cmp
                   (Expr.Eq, Expr.column ~rel:"l" "k", Expr.column ~rel:"r" "k");
             })
      in
      let hj =
        run db
          (Plan.Hash_join
             {
               left = scan "l";
               right = scan "r";
               left_keys = [ Expr.column ~rel:"l" "k" ];
               right_keys = [ Expr.column ~rel:"r" "k" ];
               residual = Expr.Ptrue;
             })
      in
      let mj =
        run db
          (Plan.Merge_join
             {
               left = scan "l";
               right = scan "r";
               left_keys = [ Expr.column ~rel:"l" "k" ];
               right_keys = [ Expr.column ~rel:"r" "k" ];
               residual = Expr.Ptrue;
             })
      in
      Executor.same_rows nlj hj && Executor.same_rows nlj mj)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "exec"
    [
      ( "scan",
        [
          Alcotest.test_case "seq filter" `Quick test_seq_scan_filter;
          Alcotest.test_case "index range" `Quick test_index_scan;
          Alcotest.test_case "project" `Quick test_project;
        ] );
      ( "join",
        [
          Alcotest.test_case "methods agree" `Quick test_joins_agree;
          Alcotest.test_case "residual" `Quick test_join_residual;
        ]
        @ qsuite [ joins_agree_prop ] );
      ( "sort-group",
        [
          Alcotest.test_case "sort" `Quick test_sort;
          Alcotest.test_case "group aggregates" `Quick test_group_aggregates;
          Alcotest.test_case "global agg on empty" `Quick
            test_global_aggregate_empty_input;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "union all + limit" `Quick
            test_union_all_and_limit;
        ] );
    ]
