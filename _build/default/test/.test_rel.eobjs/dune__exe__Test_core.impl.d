test/test_core.ml: Alcotest Array Core Database Date Exec Expr Icdef List Mining Opt Option QCheck QCheck_alcotest Rel Schema Stats Table Tuple Value Workload
