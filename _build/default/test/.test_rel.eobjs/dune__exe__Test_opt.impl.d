test/test_opt.ml: Alcotest Core Database Date Exec Explain Expr Fun Interval List Mining Opt Option Printf QCheck QCheck_alcotest Rel Rewrite Selectivity Sqlfe Stats String Table Tuple Value Workload
