test/test_sqlfe.mli:
