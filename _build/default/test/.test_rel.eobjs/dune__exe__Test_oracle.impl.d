test/test_oracle.ml: Alcotest Array Core Database Exec Expr Fun Hashtbl Lazy List Opt Option Printf QCheck QCheck_alcotest Rel Sqlfe Stats String Table Tuple Value
