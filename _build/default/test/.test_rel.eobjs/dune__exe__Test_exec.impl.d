test/test_exec.ml: Alcotest Database Exec Executor Expr Gen Index List Operators Plan QCheck QCheck_alcotest Rel Schema Tuple Value
