test/test_extensions.ml: Alcotest Checker Core Database Date Exec Expr Float Icdef List Mining Opt Option Printf Rel Result Stats String Table Tuple Value Workload
