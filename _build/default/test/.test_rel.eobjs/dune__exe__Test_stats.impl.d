test/test_stats.ml: Alcotest Array Database Float Fun List Option QCheck QCheck_alcotest Rel Schema Stats Tuple Value
