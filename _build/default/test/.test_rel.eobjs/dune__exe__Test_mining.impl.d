test/test_mining.ml: Alcotest Array Gen List Mining Option QCheck QCheck_alcotest Rel Schema Stats Table Tuple Value
