test/test_integration.ml: Alcotest Checker Core Exec Float List Opt Option Rel Stats String Tuple Value Workload
