test/test_sqlfe.ml: Alcotest Date Expr Float Icdef List QCheck QCheck_alcotest Rel Sqlfe Value
