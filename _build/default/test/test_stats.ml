(* Tests for statistics: RNG determinism and distribution sanity,
   reservoir sampling, histograms (mass conservation, selectivity
   monotonicity, accuracy against ground truth), column stats, RUNSTATS. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float

(* ---- rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Stats.Rng.create 42 and b = Stats.Rng.create 42 in
  for _ = 1 to 100 do
    check tint "same stream" (Stats.Rng.int a 1000) (Stats.Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Stats.Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.int r 7 in
    check tbool "in [0,7)" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let v = Stats.Rng.float r in
    check tbool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniformity () =
  let r = Stats.Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Stats.Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      check tbool "within 5% of uniform" true
        (Float.abs (float_of_int c -. 10_000.0) < 500.0))
    buckets

let test_rng_gaussian_moments () =
  let r = Stats.Rng.create 9 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Stats.Rng.gaussian r in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check (tfloat 0.05) "mean 0" 0.0 mean;
  check (tfloat 0.05) "var 1" 1.0 var

let test_zipf () =
  let r = Stats.Rng.create 3 in
  let cum = Stats.Rng.zipf_table 10 1.0 in
  let counts = Array.make 11 0 in
  for _ = 1 to 20_000 do
    let k = Stats.Rng.zipf r cum in
    counts.(k) <- counts.(k) + 1
  done;
  check tbool "rank 1 most frequent" true (counts.(1) > counts.(2));
  check tbool "rank 2 above rank 5" true (counts.(2) > counts.(5))

(* ---- sampling ---------------------------------------------------------------- *)

let test_reservoir_size () =
  let s = Stats.Sample.create 50 in
  for i = 1 to 1000 do
    Stats.Sample.offer s i
  done;
  check tint "size capped" 50 (Stats.Sample.size s);
  check tint "seen all" 1000 (Stats.Sample.seen s);
  List.iter
    (fun x -> check tbool "element from stream" true (x >= 1 && x <= 1000))
    (Stats.Sample.to_list s)

let test_reservoir_unbiased () =
  (* offer 0..99 into capacity-10 reservoirs many times; each element
     should appear ~10% of the time *)
  let hits = Array.make 100 0 in
  for seed = 0 to 999 do
    let s = Stats.Sample.create ~seed 10 in
    for i = 0 to 99 do
      Stats.Sample.offer s i
    done;
    List.iter (fun i -> hits.(i) <- hits.(i) + 1) (Stats.Sample.to_list s)
  done;
  Array.iter
    (fun h -> check tbool "within 3x of expectation" true (h > 30 && h < 300))
    hits

(* ---- histograms ---------------------------------------------------------------- *)

let ints l = List.map (fun i -> Value.Int i) l

let test_histogram_mass () =
  let values = List.init 1000 (fun i -> i mod 97) in
  let h = Stats.Histogram.build ~buckets:16 (ints values) in
  check tint "total" 1000 (Stats.Histogram.total h);
  let bucket_sum =
    List.fold_left
      (fun acc b -> acc + b.Stats.Histogram.count)
      0 (Stats.Histogram.buckets h)
  in
  check tint "mass conserved" 1000 bucket_sum

let test_histogram_range_estimates () =
  (* uniform 0..999, estimate ranges *)
  let values = List.init 10_000 (fun i -> i mod 1000) in
  let h = Stats.Histogram.build ~buckets:32 (ints values) in
  let sel lo hi =
    Stats.Histogram.selectivity_range h
      ~lo:(Value.Int lo, `Incl) ~hi:(Value.Int hi, `Incl) ()
  in
  check (tfloat 0.03) "10% range" 0.10 (sel 100 199);
  check (tfloat 0.03) "50% range" 0.50 (sel 0 499);
  check (tfloat 0.02) "tiny range" 0.001 (sel 500 500)

let test_histogram_eq_estimates () =
  let values = List.concat_map (fun i -> List.init 10 (fun _ -> i)) (List.init 100 Fun.id) in
  let h = Stats.Histogram.build ~buckets:10 (ints values) in
  check (tfloat 0.005) "eq sel ~1/100" 0.01
    (Stats.Histogram.selectivity_eq h (Value.Int 42))

let test_histogram_skew () =
  (* heavy hitter: value 0 is half the data; equal-value runs must not
     straddle buckets *)
  let values = List.init 1000 (fun i -> if i < 500 then 0 else i) in
  let h = Stats.Histogram.build ~buckets:8 (ints values) in
  check (tfloat 0.08) "hitter eq" 0.5
    (Stats.Histogram.selectivity_eq h (Value.Int 0))

let test_histogram_empty_and_null () =
  let h = Stats.Histogram.build [] in
  check tint "empty" 0 (Stats.Histogram.total h);
  let h2 = Stats.Histogram.build [ Value.Null; Value.Null ] in
  check tint "nulls excluded" 0 (Stats.Histogram.total h2)

let histogram_mass_prop =
  QCheck.Test.make ~name:"histogram conserves mass" ~count:200
    QCheck.(pair (list (int_range (-50) 50)) (int_range 1 20))
    (fun (values, buckets) ->
      let h = Stats.Histogram.build ~buckets (ints values) in
      Stats.Histogram.total h = List.length values
      && List.fold_left
           (fun acc b -> acc + b.Stats.Histogram.count)
           0 (Stats.Histogram.buckets h)
         = List.length values)

let histogram_monotone_prop =
  QCheck.Test.make ~name:"rows_le monotone in v" ~count:200
    QCheck.(pair (list (int_range 0 100)) (pair (int_range 0 100) (int_range 0 100)))
    (fun (values, (a, b)) ->
      QCheck.assume (values <> []);
      let h = Stats.Histogram.build ~buckets:8 (ints values) in
      let lo = min a b and hi = max a b in
      Stats.Histogram.rows_le h (Value.Int lo)
      <= Stats.Histogram.rows_le h (Value.Int hi) +. 1e-9)

(* ---- column stats + runstats ----------------------------------------------------- *)

let test_col_stats () =
  let values =
    ints [ 5; 5; 5; 1; 2; 3 ] @ [ Value.Null; Value.Null ]
  in
  let cs = Stats.Col_stats.build ~column:"c" values in
  check tint "rows" 8 cs.Stats.Col_stats.row_count;
  check tint "nulls" 2 cs.Stats.Col_stats.null_count;
  check tint "ndv" 4 cs.Stats.Col_stats.distinct;
  check tbool "low" true (cs.Stats.Col_stats.low = Some (Value.Int 1));
  check tbool "high" true (cs.Stats.Col_stats.high = Some (Value.Int 5));
  check (tfloat 1e-9) "eq from frequents" (3.0 /. 8.0)
    (Stats.Col_stats.sel_eq cs (Value.Int 5));
  check (tfloat 1e-9) "null fraction" 0.25 (Stats.Col_stats.sel_is_null cs)

let test_runstats_staleness () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "t" [ Schema.column "a" Value.TInt ]));
  for i = 1 to 10 do
    ignore (Database.insert db ~table:"t" (Tuple.make [ Value.Int i ]))
  done;
  let stats = Stats.Runstats.create () in
  ignore (Stats.Runstats.runstats stats (Database.table_exn db "t"));
  check tint "fresh" 0
    (Stats.Runstats.staleness stats (Database.table_exn db "t"));
  for i = 11 to 15 do
    ignore (Database.insert db ~table:"t" (Tuple.make [ Value.Int i ]))
  done;
  check tint "five stale" 5
    (Stats.Runstats.staleness stats (Database.table_exn db "t"));
  let ts = Option.get (Stats.Runstats.find stats "t") in
  check tint "cardinality at snapshot" 10 ts.Stats.Runstats.cardinality;
  check tbool "column stats reachable" true
    (Stats.Runstats.column_stats stats ~table:"t" ~column:"a" <> None)

let test_runstats_sampled () =
  let db = Database.create () in
  ignore
    (Database.create_table db
       (Schema.make "t" [ Schema.column "a" Value.TInt ]));
  for i = 1 to 1000 do
    ignore (Database.insert db ~table:"t" (Tuple.make [ Value.Int (i mod 10) ]))
  done;
  let stats = Stats.Runstats.create () in
  let ts = Stats.Runstats.runstats ~sample:100 stats (Database.table_exn db "t") in
  check tint "exact cardinality despite sampling" 1000
    ts.Stats.Runstats.cardinality;
  let cs = Option.get (Stats.Runstats.column_stats stats ~table:"t" ~column:"a") in
  check tbool "ndv from sample close" true
    (cs.Stats.Col_stats.distinct <= 10 && cs.Stats.Col_stats.distinct >= 8)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "zipf" `Slow test_zipf;
        ] );
      ( "sample",
        [
          Alcotest.test_case "size" `Quick test_reservoir_size;
          Alcotest.test_case "unbiased" `Slow test_reservoir_unbiased;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "mass" `Quick test_histogram_mass;
          Alcotest.test_case "range estimates" `Quick
            test_histogram_range_estimates;
          Alcotest.test_case "eq estimates" `Quick test_histogram_eq_estimates;
          Alcotest.test_case "skew" `Quick test_histogram_skew;
          Alcotest.test_case "empty/null" `Quick test_histogram_empty_and_null;
        ]
        @ qsuite [ histogram_mass_prop; histogram_monotone_prop ] );
      ( "col_stats",
        [
          Alcotest.test_case "basic" `Quick test_col_stats;
          Alcotest.test_case "runstats staleness" `Quick
            test_runstats_staleness;
          Alcotest.test_case "runstats sampled" `Quick test_runstats_sampled;
        ] );
    ]
