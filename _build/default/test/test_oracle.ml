(* An independent correctness oracle for the whole engine.

   [Reference.eval] evaluates a query naively — cross products, row-by-row
   3VL filtering through Expr.satisfies, hash grouping and aggregate
   folding written directly — sharing no code with the planner or the
   physical operators.  Random queries over random data must produce the
   same multiset of rows through the full parse → rewrite → plan → execute
   pipeline, with the soft-constraint machinery both off and on. *)

open Rel

module Reference = struct
  (* evaluate one SELECT block against base tables *)
  let eval_select db (s : Sqlfe.Ast.select) : Tuple.t list =
    (* cross product of the FROM list, with the combined binding *)
    let sources =
      List.map
        (fun (r : Sqlfe.Ast.table_ref) ->
          let tbl = Database.table_exn db r.Sqlfe.Ast.table in
          let alias = Option.value r.Sqlfe.Ast.alias ~default:r.Sqlfe.Ast.table in
          (Expr.Binding.of_schema ~alias (Table.schema tbl), Table.to_list tbl))
        s.Sqlfe.Ast.from
    in
    let binding =
      List.fold_left
        (fun acc (b, _) -> Expr.Binding.concat acc b)
        [||] (List.map Fun.id sources)
    in
    let rec cross = function
      | [] -> [ [||] ]
      | (_, rows) :: rest ->
          let tails = cross rest in
          List.concat_map
            (fun row -> List.map (fun tl -> Tuple.concat row tl) tails)
            rows
    in
    let rows = cross sources in
    let rows =
      List.filter (fun row -> Expr.satisfies binding s.Sqlfe.Ast.where row) rows
    in
    (* grouping *)
    let has_agg =
      List.exists
        (function Sqlfe.Ast.Aggregate _ -> true | _ -> false)
        s.Sqlfe.Ast.items
    in
    let out_rows =
      if s.Sqlfe.Ast.group_by <> [] || has_agg then begin
        let key_of row =
          List.map (fun e -> Expr.eval binding e row) s.Sqlfe.Ast.group_by
        in
        let groups : (Value.t list, Tuple.t list ref) Hashtbl.t =
          Hashtbl.create 16
        in
        let order = ref [] in
        List.iter
          (fun row ->
            let k = key_of row in
            match Hashtbl.find_opt groups k with
            | Some l -> l := row :: !l
            | None ->
                Hashtbl.add groups k (ref [ row ]);
                order := k :: !order)
          rows;
        let groups_list =
          if s.Sqlfe.Ast.group_by = [] && Hashtbl.length groups = 0 then
            [ ([], []) ] (* global aggregate over empty input *)
          else
            List.rev_map (fun k -> (k, List.rev !(Hashtbl.find groups k))) !order
        in
        let agg fn arg members =
          match fn with
          | Sqlfe.Ast.Count -> (
              match arg with
              | None -> Value.Int (List.length members)
              | Some e ->
                  Value.Int
                    (List.length
                       (List.filter
                          (fun r ->
                            not (Value.is_null (Expr.eval binding e r)))
                          members)))
          | Sqlfe.Ast.Sum | Sqlfe.Ast.Avg | Sqlfe.Ast.Min | Sqlfe.Ast.Max -> (
              let e = Option.get arg in
              let vals =
                List.filter_map
                  (fun r ->
                    let v = Expr.eval binding e r in
                    if Value.is_null v then None else Some v)
                  members
              in
              match (vals, fn) with
              | [], _ -> Value.Null
              | vs, Sqlfe.Ast.Min ->
                  List.fold_left
                    (fun a v -> if Value.compare_total v a < 0 then v else a)
                    (List.hd vs) vs
              | vs, Sqlfe.Ast.Max ->
                  List.fold_left
                    (fun a v -> if Value.compare_total v a > 0 then v else a)
                    (List.hd vs) vs
              | vs, Sqlfe.Ast.Sum ->
                  let ints =
                    List.for_all
                      (function Value.Int _ -> true | _ -> false)
                      vs
                  in
                  let total =
                    List.fold_left (fun a v -> a +. Value.float_exn v) 0.0 vs
                  in
                  if ints then Value.Int (int_of_float total)
                  else Value.Float total
              | vs, Sqlfe.Ast.Avg ->
                  let total =
                    List.fold_left (fun a v -> a +. Value.float_exn v) 0.0 vs
                  in
                  Value.Float (total /. float_of_int (List.length vs))
              | _, Sqlfe.Ast.Count -> assert false)
        in
        List.map
          (fun (key, members) ->
            let witness = match members with r :: _ -> r | [] -> [||] in
            Tuple.make
              (List.map
                 (fun item ->
                   match item with
                   | Sqlfe.Ast.Star -> failwith "star with aggregates"
                   | Sqlfe.Ast.Scalar (e, _) -> (
                       (* must be a group key: take its value *)
                       match
                         List.find_index
                           (fun k -> k = e)
                           s.Sqlfe.Ast.group_by
                       with
                       | Some i -> List.nth key i
                       | None -> Expr.eval binding e witness)
                   | Sqlfe.Ast.Aggregate (fn, arg, _) -> agg fn arg members)
                 s.Sqlfe.Ast.items))
          groups_list
      end
      else
        List.map
          (fun row ->
            if s.Sqlfe.Ast.items = [ Sqlfe.Ast.Star ] then row
            else
              Tuple.make
                (List.map
                   (fun item ->
                     match item with
                     | Sqlfe.Ast.Star -> failwith "mixed star"
                     | Sqlfe.Ast.Scalar (e, _) -> Expr.eval binding e row
                     | Sqlfe.Ast.Aggregate _ -> assert false)
                   s.Sqlfe.Ast.items))
          rows
    in
    (* HAVING filters the projected output by output names *)
    let out_rows =
      match s.Sqlfe.Ast.having with
      | Expr.Ptrue -> out_rows
      | p ->
          let out_binding =
            Array.of_list
              (List.mapi
                 (fun i item ->
                   let name =
                     match item with
                     | Sqlfe.Ast.Star -> "*"
                     | Sqlfe.Ast.Scalar (_, Some a) -> a
                     | Sqlfe.Ast.Scalar (Expr.Col r, None) -> r.Expr.col
                     | Sqlfe.Ast.Scalar (_, None) ->
                         Printf.sprintf "expr%d" (i + 1)
                     | Sqlfe.Ast.Aggregate (_, _, Some a) -> a
                     | Sqlfe.Ast.Aggregate (fn, _, None) ->
                         Printf.sprintf "%s%d"
                           (String.lowercase_ascii (Sqlfe.Ast.agg_name fn))
                           (i + 1)
                   in
                   { Expr.Binding.qualifier = None; name; dtype = None })
                 s.Sqlfe.Ast.items)
          in
          List.filter (fun row -> Expr.satisfies out_binding p row) out_rows
    in
    let out_rows =
      if s.Sqlfe.Ast.distinct then
        List.rev
          (List.fold_left
             (fun acc r -> if List.exists (Tuple.equal r) acc then acc else r :: acc)
             [] out_rows)
      else out_rows
    in
    out_rows

  let rec eval db (q : Sqlfe.Ast.query) : Tuple.t list =
    match q with
    | Sqlfe.Ast.Select s -> eval_select db s
    | Sqlfe.Ast.Union_all qs -> List.concat_map (eval db) qs
end

(* ---- fixture + generators ---------------------------------------------------- *)

let fixture () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE t1 (a INT NOT NULL, b INT, c VARCHAR);
        CREATE TABLE t2 (k INT NOT NULL, v INT);
        CREATE INDEX t1_a ON t1 (a);
        CREATE INDEX t2_k ON t2 (k);");
  let db = Core.Softdb.db sdb in
  let rng = Stats.Rng.create 123 in
  for _ = 1 to 120 do
    ignore
      (Database.insert db ~table:"t1"
         (Tuple.make
            [
              Value.Int (Stats.Rng.int rng 20);
              (if Stats.Rng.coin rng 0.15 then Value.Null
               else Value.Int (Stats.Rng.int rng 50));
              (if Stats.Rng.coin rng 0.1 then Value.Null
               else Value.String (Stats.Rng.pick rng [| "x"; "y"; "z" |]));
            ]))
  done;
  for _ = 1 to 60 do
    ignore
      (Database.insert db ~table:"t2"
         (Tuple.make
            [
              Value.Int (Stats.Rng.int rng 20);
              (if Stats.Rng.coin rng 0.2 then Value.Null
               else Value.Int (Stats.Rng.int rng 100));
            ]))
  done;
  Core.Softdb.runstats sdb;
  (* give the rewriter something to chew on: a valid band between b and a
     would be nonsense here, so install a domain SC and a value set *)
  ignore (Core.Domain_tracker.track sdb ~table:"t1" ~columns:[ "a" ]);
  sdb

let sdb = lazy (fixture ())

let gen_query =
  let open QCheck.Gen in
  let t1col = oneofl [ "a"; "b" ] in
  let cmp = oneofl [ "="; "<>"; "<"; "<="; ">"; ">=" ] in
  let simple =
    oneof
      [
        map3
          (fun c col v -> Printf.sprintf "t1.%s %s %d" col c v)
          cmp t1col (int_range (-5) 55);
        map (fun col -> Printf.sprintf "t1.%s IS NULL" col) t1col;
        map (fun col -> Printf.sprintf "t1.%s IS NOT NULL" col) t1col;
        map2
          (fun a b ->
            Printf.sprintf "t1.a BETWEEN %d AND %d" (min a b) (max a b))
          (int_range 0 25) (int_range 0 25);
        return "t1.c IN ('x', 'q')";
        return "t1.c = 'y'";
      ]
  in
  let pred =
    oneof
      [
        simple;
        map2 (fun p q -> Printf.sprintf "(%s AND %s)" p q) simple simple;
        map2 (fun p q -> Printf.sprintf "(%s OR %s)" p q) simple simple;
        map (fun p -> Printf.sprintf "NOT (%s)" p) simple;
      ]
  in
  oneof
    [
      (* single-table select *)
      map2
        (fun p distinct ->
          Printf.sprintf "SELECT %s* FROM t1 WHERE %s"
            (if distinct then "DISTINCT " else "")
            p)
        pred bool;
      (* projection with arithmetic *)
      map
        (fun p ->
          Printf.sprintf "SELECT t1.a + 1, t1.b FROM t1 WHERE %s" p)
        pred;
      (* join *)
      map2
        (fun p q ->
          Printf.sprintf
            "SELECT t1.a, t2.v FROM t1, t2 WHERE t1.a = t2.k AND %s AND %s" p
            q)
        pred pred;
      (* aggregates *)
      map
        (fun p ->
          Printf.sprintf
            "SELECT t1.a, COUNT(*) AS n, SUM(t1.b) AS s, MIN(t1.b) AS mn, \
             MAX(t1.b) AS mx, AVG(t1.b) AS av FROM t1 WHERE %s GROUP BY t1.a"
            p)
        pred;
      (* global aggregate *)
      map
        (fun p ->
          Printf.sprintf "SELECT COUNT(*) AS n, SUM(t1.a) AS s FROM t1 WHERE %s" p)
        pred;
      (* grouped aggregate with HAVING over output names *)
      map2
        (fun p n ->
          Printf.sprintf
            "SELECT t1.a, COUNT(*) AS n FROM t1 WHERE %s GROUP BY t1.a              HAVING n >= %d"
            p n)
        pred (int_range 1 5);
      (* union all *)
      map2
        (fun p q ->
          Printf.sprintf
            "(SELECT * FROM t1 WHERE %s) UNION ALL (SELECT * FROM t1 WHERE %s)"
            p q)
        pred pred;
    ]

let same_multiset a b =
  let sort = List.sort Tuple.compare in
  List.length a = List.length b && List.for_all2 Tuple.equal (sort a) (sort b)

let oracle_prop =
  QCheck.Test.make
    ~name:"engine agrees with the naive reference evaluator" ~count:250
    (QCheck.make gen_query ~print:Fun.id)
    (fun sql ->
      let sdb = Lazy.force sdb in
      let q = Sqlfe.Parser.parse_query_string sql in
      let expected = Reference.eval (Core.Softdb.db sdb) q in
      let off = Core.Softdb.query ~flags:Opt.Rewrite.all_off sdb sql in
      let on_ = Core.Softdb.query sdb sql in
      same_multiset expected off.Exec.Executor.rows
      && same_multiset expected on_.Exec.Executor.rows)

let order_by_prop =
  (* ordered comparison for totally-ordered keys *)
  QCheck.Test.make ~name:"ORDER BY produces reference order" ~count:100
    QCheck.(int_range 0 55)
    (fun bound ->
      let sdb = Lazy.force sdb in
      let sql =
        Printf.sprintf
          "SELECT t1.a, COUNT(*) AS n FROM t1 WHERE t1.a <= %d GROUP BY t1.a \
           ORDER BY t1.a"
          bound
      in
      let r = Core.Softdb.query sdb sql in
      let keys =
        List.map (fun row -> Tuple.get row 0) r.Exec.Executor.rows
      in
      let rec ascending = function
        | a :: b :: tl -> Value.compare_total a b < 0 && ascending (b :: tl)
        | _ -> true
      in
      ascending keys)

let () =
  Alcotest.run "oracle"
    [
      ( "reference",
        List.map QCheck_alcotest.to_alcotest [ oracle_prop; order_by_prop ] );
    ]
