(* Tests for the soft-constraint facility: representation, currency decay,
   catalog lifecycle, exception-table maintenance, the violation policies
   (drop / sync repair / async repair), SSC statistics refresh, and the
   selection/advisor stages. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float

(* ---- currency model ------------------------------------------------------- *)

let test_currency_bound () =
  (* the paper's example: 1M rows, 1k updates/day -> ~3% after a month *)
  check (tfloat 1e-9) "one month drift" 0.03
    (Core.Currency.drift ~updates_since:30_000 ~table_rows:1_000_000);
  check (tfloat 1e-9) "usable confidence" 0.97
    (Core.Currency.usable_confidence ~base:1.0 ~updates_since:30_000
       ~table_rows:1_000_000);
  check (tfloat 1e-9) "floor at zero" 0.0
    (Core.Currency.usable_confidence ~base:0.5 ~updates_since:600_000
       ~table_rows:1_000_000);
  check tint "updates until floor" 30_000
    (Core.Currency.updates_until ~base:1.0 ~floor:0.97 ~table_rows:1_000_000)

let currency_is_lower_bound_prop =
  (* simulate: start with a fraction c satisfying, apply u adversarial
     updates (each can break one distinct row); measured fraction is
     always >= usable_confidence *)
  QCheck.Test.make ~name:"currency bound is a true lower bound" ~count:200
    QCheck.(triple (int_range 1 10_000) (int_range 0 5_000) (float_range 0.5 1.0))
    (fun (rows, updates, c) ->
      let satisfying = int_of_float (c *. float_of_int rows) in
      let broken = min updates satisfying in
      let measured = float_of_int (satisfying - broken) /. float_of_int rows in
      let bound =
        Core.Currency.usable_confidence
          ~base:(float_of_int satisfying /. float_of_int rows)
          ~updates_since:updates ~table_rows:rows
      in
      measured >= bound -. 1e-9)

(* ---- catalog ---------------------------------------------------------------- *)

let mk_check_sc name table pred =
  Core.Soft_constraint.make ~name ~table ~kind:Core.Soft_constraint.Absolute
    ~installed_at_mutations:0
    (Core.Soft_constraint.Ic_stmt (Icdef.Check pred))

let test_catalog_lifecycle () =
  let cat = Core.Sc_catalog.create () in
  let sc = mk_check_sc "sc1" "t" (Expr.Cmp (Expr.Gt, Expr.column "a", Expr.int 0)) in
  Core.Sc_catalog.add cat sc;
  check tbool "found" true (Core.Sc_catalog.find cat "sc1" <> None);
  check tbool "duplicate rejected" true
    (try
       Core.Sc_catalog.add cat (mk_check_sc "SC1" "t" Expr.Ptrue);
       false
     with Core.Sc_catalog.Duplicate_name _ -> true);
  check tint "usable" 1 (List.length (Core.Sc_catalog.usable cat));
  sc.Core.Soft_constraint.state <- Core.Soft_constraint.Violated;
  check tint "violated unusable" 0 (List.length (Core.Sc_catalog.usable cat));
  Core.Sc_catalog.drop cat "sc1";
  check tbool "dropped" true (Core.Sc_catalog.find cat "sc1" = None)

let test_catalog_ctx_confidence_decay () =
  let sdb = Core.Softdb.create () in
  let db = Core.Softdb.db sdb in
  Workload.Project.load
    ~config:{ Workload.Project.default_config with rows = 1000 }
    db;
  let tbl = Database.table_exn db "project" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"end_date" ~col_lo:"start_date")
  in
  let b90 = Option.get (Mining.Diff_band.band_with d ~confidence:0.9) in
  let sc =
    Core.Soft_constraint.make ~name:"pb" ~table:"project"
      ~kind:(Core.Soft_constraint.Statistical 0.9)
      ~installed_at_mutations:(Table.mutations tbl)
      (Core.Soft_constraint.Diff_stmt (d, b90))
  in
  Core.Softdb.install_sc sdb sc;
  let conf0 = Core.Sc_catalog.current_confidence db sc in
  check (tfloat 1e-9) "fresh" 0.9 conf0;
  (* 100 mutations over 1000 rows -> bound decays by 0.1 *)
  for i = 1 to 100 do
    ignore
      (Database.insert db ~table:"project"
         (Tuple.make
            [
              Value.Int (10_000 + i);
              Value.Date 0;
              Value.Date 3;
              Value.String "eng";
              Value.Null;
            ]))
  done;
  let conf1 = Core.Sc_catalog.current_confidence db sc in
  check tbool "decayed" true (conf1 < 0.85);
  (* the rewrite ctx must carry the decayed confidence *)
  let ctx = Core.Softdb.rewrite_ctx sdb in
  match ctx.Opt.Rewrite.sscs with
  | [ { Opt.Rewrite.shape = Opt.Rewrite.Diff_band (_, band); _ } ] ->
      check (tfloat 1e-6) "ctx confidence" conf1
        band.Mining.Diff_band.confidence
  | _ -> Alcotest.fail "expected one ssc in ctx"

(* ---- exception tables ---------------------------------------------------------- *)

let purchase_sdb ?(rows = 1500) ?(late = 0.02) () =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load
    ~config:
      { Workload.Purchase.default_config with rows; late_fraction = late }
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let install_band sdb ~name ~confidence =
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let band = Option.get (Mining.Diff_band.band_with d ~confidence) in
  let kind =
    if band.Mining.Diff_band.confidence >= 1.0 then
      Core.Soft_constraint.Absolute
    else Core.Soft_constraint.Statistical band.Mining.Diff_band.confidence
  in
  let sc =
    Core.Soft_constraint.make ~name ~table:"purchase" ~kind
      ~installed_at_mutations:(Table.mutations tbl)
      (Core.Soft_constraint.Diff_stmt (d, band))
  in
  Core.Softdb.install_sc sdb sc;
  sc

let test_exception_table_tracks_violators () =
  let sdb = purchase_sdb () in
  let db = Core.Softdb.db sdb in
  let sc = install_band sdb ~name:"band99" ~confidence:0.99 in
  let handle =
    Core.Exception_table.install db ~sc ~table_name:"late_exc"
  in
  check tbool "initially consistent" true
    (Core.Exception_table.consistent db handle);
  let n0 = Core.Exception_table.exception_rows db handle in
  check tbool "some initial exceptions" true (n0 > 0);
  (* violating inserts land in the exception table *)
  let rng = Stats.Rng.create 8 in
  Workload.Purchase.insert_batch ~violating:1.0 ~rng ~start_id:900_000
    ~count:25 (Core.Softdb.db sdb);
  check tbool "consistent after inserts" true
    (Core.Exception_table.consistent db handle);
  check tbool "grew" true
    (Core.Exception_table.exception_rows db handle > n0);
  (* repairing updates remove rows from the exception table *)
  let tbl = Database.table_exn db "purchase" in
  let schema = Table.schema tbl in
  let ship_pos = Schema.index_exn schema "ship_date"
  and order_pos = Schema.index_exn schema "order_date" in
  Table.iteri tbl ~f:(fun rid row ->
      match (Tuple.get row ship_pos, Tuple.get row order_pos) with
      | Value.Date s, Value.Date o when s - o > 25 ->
          let fixed = Tuple.copy row in
          fixed.(ship_pos) <- Value.Date (o + 5);
          Database.update db ~table:"purchase" rid fixed
      | _ -> ());
  check tbool "consistent after repairs" true
    (Core.Exception_table.consistent db handle);
  check tint "empty after repairing all" 0
    (Core.Exception_table.exception_rows db handle)

(* ---- maintenance policies --------------------------------------------------------- *)

let test_drop_policy () =
  let sdb = purchase_sdb ~late:0.0 () in
  let sc = install_band sdb ~name:"asc100" ~confidence:1.0 in
  check tbool "absolute" true (Core.Soft_constraint.is_absolute sc);
  let m = Core.Softdb.maintenance sdb in
  Core.Maintenance.set_policy m "asc100" Core.Maintenance.Drop;
  (* a violating insert drops it *)
  let rng = Stats.Rng.create 4 in
  Workload.Purchase.insert_batch ~violating:1.0 ~rng ~start_id:700_000 ~count:1
    (Core.Softdb.db sdb);
  check tbool "violated" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
  check tint "one violation recorded" 1 sc.Core.Soft_constraint.violation_count

let test_sync_repair_policy () =
  let sdb = purchase_sdb ~late:0.0 () in
  let sc = install_band sdb ~name:"asc_sync" ~confidence:1.0 in
  let m = Core.Softdb.maintenance sdb in
  Core.Maintenance.set_policy m "asc_sync" Core.Maintenance.Sync_repair;
  let rng = Stats.Rng.create 4 in
  Workload.Purchase.insert_batch ~violating:1.0 ~rng ~start_id:700_000 ~count:3
    (Core.Softdb.db sdb);
  check tbool "still active" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Active);
  (* the widened band must now cover the whole table *)
  (match sc.Core.Soft_constraint.statement with
  | Core.Soft_constraint.Diff_stmt (d, band) ->
      let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
      check (tfloat 1e-9) "full coverage after widening" 1.0
        (Mining.Diff_band.coverage tbl d band)
  | _ -> Alcotest.fail "wrong statement")

let test_async_repair_policy () =
  let sdb = purchase_sdb ~late:0.0 () in
  let sc = install_band sdb ~name:"asc_async" ~confidence:1.0 in
  let m = Core.Softdb.maintenance sdb in
  Core.Maintenance.set_policy m "asc_async" Core.Maintenance.Async_repair;
  let rng = Stats.Rng.create 4 in
  Workload.Purchase.insert_batch ~violating:1.0 ~rng ~start_id:700_000 ~count:2
    (Core.Softdb.db sdb);
  check tbool "violated while queued" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated);
  Core.Maintenance.run_repairs m;
  check tbool "reinstated" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Active);
  (* re-mined band covers the new data *)
  match sc.Core.Soft_constraint.statement with
  | Core.Soft_constraint.Diff_stmt (d, band) ->
      let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
      check (tfloat 1e-9) "coverage" 1.0 (Mining.Diff_band.coverage tbl d band)
  | _ -> Alcotest.fail "wrong statement"

let test_fd_violation_detection () =
  let sdb = Core.Softdb.create () in
  ignore
    (Core.Softdb.exec_script sdb
       "CREATE TABLE emp (id INT PRIMARY KEY, dept INT, dname VARCHAR);
        INSERT INTO emp VALUES (1, 10, 'eng'), (2, 10, 'eng'), (3, 20, 'hr');");
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "emp" in
  let fd = { Mining.Fd_mine.table = "emp"; lhs = [ "dept" ]; rhs = "dname" } in
  let sc =
    Core.Soft_constraint.make ~name:"dept_fd" ~table:"emp"
      ~kind:Core.Soft_constraint.Absolute
      ~installed_at_mutations:(Table.mutations tbl)
      (Core.Soft_constraint.Fd_stmt fd)
  in
  Core.Softdb.install_sc sdb sc;
  (* consistent insert keeps it *)
  ignore (Core.Softdb.exec sdb "INSERT INTO emp VALUES (4, 20, 'hr')");
  check tbool "consistent insert ok" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Active);
  (* violating insert drops it *)
  ignore (Core.Softdb.exec sdb "INSERT INTO emp VALUES (5, 20, 'legal')");
  check tbool "fd violation detected" true
    (sc.Core.Soft_constraint.state = Core.Soft_constraint.Violated)

let test_ssc_refresh () =
  let sdb = purchase_sdb ~late:0.02 () in
  let sc = install_band sdb ~name:"ssc_refresh" ~confidence:0.99 in
  (* make the data worse: 50% of new rows violate *)
  let rng = Stats.Rng.create 17 in
  Workload.Purchase.insert_batch ~violating:0.5 ~rng ~start_id:800_000
    ~count:500 (Core.Softdb.db sdb);
  let m = Core.Softdb.maintenance sdb in
  Core.Maintenance.refresh_statistics m;
  let measured = Core.Soft_constraint.confidence sc in
  (* 1500 clean + ~500 half violating => ~0.875 *)
  check tbool "confidence refreshed downward" true
    (measured < 0.95 && measured > 0.8)

(* ---- selection & advisor ------------------------------------------------------------ *)

let test_selection_ranks_useful_sc () =
  let sdb = purchase_sdb ~rows:3000 () in
  let db = Core.Softdb.db sdb in
  let tbl = Database.table_exn db "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
  let useful =
    Core.Soft_constraint.make ~name:"useful_band" ~table:"purchase"
      ~kind:Core.Soft_constraint.Absolute
      ~installed_at_mutations:(Table.mutations tbl)
      (Core.Soft_constraint.Diff_stmt (d, b100))
  in
  (* a useless SC: a domain range on a column the workload never touches *)
  let useless =
    Core.Soft_constraint.make ~name:"useless_range" ~table:"purchase"
      ~kind:Core.Soft_constraint.Absolute
      ~installed_at_mutations:(Table.mutations tbl)
      (Core.Soft_constraint.Ic_stmt
         (Icdef.Check
            (Expr.Between (Expr.column "customer", Expr.int 0, Expr.int 10_000))))
  in
  let workload =
    List.map Workload.Queries.parse
      [
        Workload.Queries.purchase_ship_eq (Date.of_ymd 1999 6 15);
        Workload.Queries.purchase_ship_range (Date.of_ymd 1999 3 1)
          (Date.of_ymd 1999 3 10);
      ]
  in
  let assessments =
    Core.Selection.assess ~db ~stats:(Core.Softdb.statistics sdb)
      ~catalog:(Core.Softdb.catalog sdb) ~workload [ useful; useless ]
  in
  let find name =
    List.find
      (fun (a : Core.Selection.assessment) ->
        a.Core.Selection.sc.Core.Soft_constraint.name = name)
      assessments
  in
  let u = find "useful_band" and z = find "useless_range" in
  check tbool "useful beats useless" true
    (u.Core.Selection.net > z.Core.Selection.net);
  check tbool "useful is net positive" true (u.Core.Selection.net > 0.0);
  let selected =
    Core.Selection.select ~db ~stats:(Core.Softdb.statistics sdb)
      ~catalog:(Core.Softdb.catalog sdb) ~workload [ useful; useless ]
  in
  check tbool "selection keeps the useful one" true
    (List.exists
       (fun (a : Core.Selection.assessment) ->
         a.Core.Selection.sc.Core.Soft_constraint.name = "useful_band")
       selected)

let test_advisor_end_to_end () =
  let sdb = purchase_sdb ~rows:3000 () in
  let db = Core.Softdb.db sdb in
  Workload.Project.load
    ~config:{ Workload.Project.default_config with rows = 2000 }
    db;
  Core.Softdb.runstats sdb;
  let workload = List.map Workload.Queries.parse Workload.Queries.advisor_workload in
  let outcome =
    Core.Advisor.advise ~db ~stats:(Core.Softdb.statistics sdb)
      ~catalog:(Core.Softdb.catalog sdb) ~workload ()
  in
  check tbool "mined candidates" true (outcome.Core.Advisor.candidates > 0);
  check tbool "installed something" true (outcome.Core.Advisor.installed <> []);
  (* the installed SCs must improve at least one workload query's cost *)
  let improved =
    List.exists
      (fun (a : Core.Selection.assessment) -> a.Core.Selection.benefit > 0.0)
      outcome.Core.Advisor.assessed
  in
  check tbool "positive benefit" true improved;
  (* and the whole pipeline still returns correct answers *)
  List.iter
    (fun sql ->
      let base = Core.Softdb.query_baseline sdb sql in
      let opt = Core.Softdb.query sdb sql in
      check tbool "advisor output sound" true (Exec.Executor.same_rows base opt))
    Workload.Queries.advisor_workload

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "core"
    [
      ( "currency",
        [ Alcotest.test_case "paper bound" `Quick test_currency_bound ]
        @ qsuite [ currency_is_lower_bound_prop ] );
      ( "catalog",
        [
          Alcotest.test_case "lifecycle" `Quick test_catalog_lifecycle;
          Alcotest.test_case "ctx confidence decay" `Quick
            test_catalog_ctx_confidence_decay;
        ] );
      ( "exception_table",
        [
          Alcotest.test_case "tracks violators" `Quick
            test_exception_table_tracks_violators;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "drop policy" `Quick test_drop_policy;
          Alcotest.test_case "sync repair widens" `Quick test_sync_repair_policy;
          Alcotest.test_case "async repair re-mines" `Quick
            test_async_repair_policy;
          Alcotest.test_case "fd violation detection" `Quick
            test_fd_violation_detection;
          Alcotest.test_case "ssc refresh" `Quick test_ssc_refresh;
        ] );
      ( "selection",
        [
          Alcotest.test_case "ranks useful above useless" `Quick
            test_selection_ranks_useful_sc;
          Alcotest.test_case "advisor end to end" `Slow test_advisor_end_to_end;
        ] );
    ]
