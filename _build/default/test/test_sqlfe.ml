(* Tests for the SQL frontend: lexing, parsing of every supported
   statement form, error reporting, and the print→parse round-trip
   property over generated queries. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

let parse = Sqlfe.Parser.parse_statement
let parse_q = Sqlfe.Parser.parse_query_string

(* ---- lexer ------------------------------------------------------------- *)

let test_lexer_basics () =
  let toks = Sqlfe.Lexer.tokenize "SELECT a, b FROM t WHERE a <= 1.5e2 -- cmt" in
  check tint "token count" 11 (List.length toks);
  check tbool "float lexed" true
    (List.exists (fun t -> t = Sqlfe.Lexer.FLOAT_LIT 150.0) toks)

let test_lexer_strings () =
  match Sqlfe.Lexer.tokenize "'it''s'" with
  | [ Sqlfe.Lexer.STRING_LIT s; Sqlfe.Lexer.EOF ] ->
      check tstring "escaped quote" "it's" s
  | _ -> Alcotest.fail "bad string lexing"

let test_lexer_operators () =
  let toks = Sqlfe.Lexer.tokenize "<> != <= >= < > =" in
  check tint "ops" 8 (List.length toks);
  check tbool "neq twice" true
    (List.filter (fun t -> t = Sqlfe.Lexer.NEQ) toks |> List.length = 2)

let test_lexer_error () =
  check tbool "bad char" true
    (try
       ignore (Sqlfe.Lexer.tokenize "select @ from t");
       false
     with Sqlfe.Lexer.Lex_error _ -> true)

(* ---- parser: queries ------------------------------------------------------ *)

let test_parse_select_shape () =
  match parse_q "SELECT a, b AS bee FROM t u WHERE a > 1 ORDER BY a LIMIT 3" with
  | Sqlfe.Ast.Select s ->
      check tint "items" 2 (List.length s.Sqlfe.Ast.items);
      check tbool "alias" true
        (match s.Sqlfe.Ast.from with
        | [ { Sqlfe.Ast.table = "t"; alias = Some "u" } ] -> true
        | _ -> false);
      check tbool "limit" true (s.Sqlfe.Ast.limit = Some 3);
      check tint "order" 1 (List.length s.Sqlfe.Ast.order_by)
  | _ -> Alcotest.fail "expected select"

let test_parse_join_folds_to_where () =
  match parse_q "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = 1" with
  | Sqlfe.Ast.Select s ->
      check tint "two tables" 2 (List.length s.Sqlfe.Ast.from);
      check tint "two conjuncts" 2
        (List.length (Expr.conjuncts s.Sqlfe.Ast.where))
  | _ -> Alcotest.fail "expected select"

let test_parse_union_all () =
  match parse_q "(SELECT * FROM a) UNION ALL (SELECT * FROM b) UNION ALL \
                 (SELECT * FROM c)" with
  | Sqlfe.Ast.Union_all qs -> check tint "branches" 3 (List.length qs)
  | _ -> Alcotest.fail "expected union all"

let test_parse_aggregates () =
  match parse_q "SELECT dept, COUNT(*) AS n, SUM(salary), MIN(age) FROM emp \
                 GROUP BY dept" with
  | Sqlfe.Ast.Select s ->
      check tint "items" 4 (List.length s.Sqlfe.Ast.items);
      check tbool "count star" true
        (List.exists
           (function
             | Sqlfe.Ast.Aggregate (Sqlfe.Ast.Count, None, Some "n") -> true
             | _ -> false)
           s.Sqlfe.Ast.items);
      check tint "group" 1 (List.length s.Sqlfe.Ast.group_by)
  | _ -> Alcotest.fail "expected select"

let test_parse_predicates () =
  let p = Sqlfe.Parser.parse_pred_string
      "a BETWEEN 1 AND 10 AND b IN (1, 2, 3) OR NOT c IS NULL" in
  (* OR binds loosest: (between AND in) OR (NOT is-null) *)
  match p with
  | Expr.Or (Expr.And _, Expr.Not (Expr.Is_null _)) -> ()
  | _ -> Alcotest.failf "bad precedence: %s" (Expr.to_string_pred p)

let test_parse_not_between () =
  match Sqlfe.Parser.parse_pred_string "a NOT BETWEEN 1 AND 2" with
  | Expr.Not (Expr.Between _) -> ()
  | _ -> Alcotest.fail "NOT BETWEEN"

let test_parse_paren_ambiguity () =
  (* parenthesized predicate vs parenthesized expression *)
  (match Sqlfe.Parser.parse_pred_string "(a = 1 AND b = 2) OR c = 3" with
  | Expr.Or (Expr.And _, Expr.Cmp _) -> ()
  | p -> Alcotest.failf "nested pred: %s" (Expr.to_string_pred p));
  match Sqlfe.Parser.parse_pred_string "(a + b) * 2 > 6" with
  | Expr.Cmp (Expr.Gt, Expr.Binop (Expr.Mul, _, _), _) -> ()
  | p -> Alcotest.failf "paren expr: %s" (Expr.to_string_pred p)

let test_parse_date_literal () =
  match Sqlfe.Parser.parse_pred_string "d >= DATE '1999-11-15'" with
  | Expr.Cmp (Expr.Ge, _, Expr.Const (Value.Date d)) ->
      check tstring "date" "1999-11-15" (Date.to_string d)
  | _ -> Alcotest.fail "date literal"

let test_parse_errors () =
  List.iter
    (fun sql ->
      check tbool sql true
        (try
           ignore (parse sql);
           false
         with Sqlfe.Parser.Parse_error _ -> true))
    [
      "SELECT FROM t";
      "SELECT * FROM";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t GROUP a";
      "INSERT INTO t VALUES";
      "CREATE TABLE t (a BADTYPE)";
      "SELECT * FROM t extra garbage +";
    ]

(* ---- parser: DDL / DML ----------------------------------------------------- *)

let test_parse_create_table_modes () =
  match
    parse
      "CREATE TABLE p (id INT PRIMARY KEY, a INT NOT NULL, CONSTRAINT c1 \
       CHECK (a > 0) NOT ENFORCED, CONSTRAINT c2 CHECK (a < 100) SOFT \
       CONFIDENCE 0.95, CONSTRAINT c3 UNIQUE (a) SOFT)"
  with
  | Sqlfe.Ast.Create_table { cols; constraints; _ } ->
      check tint "cols" 2 (List.length cols);
      check tint "constraints (incl inline pk)" 4 (List.length constraints);
      let modes = List.map (fun c -> c.Sqlfe.Ast.con_mode) constraints in
      check tbool "informational present" true
        (List.mem Sqlfe.Ast.Mode_informational modes);
      check tbool "ssc present" true
        (List.mem (Sqlfe.Ast.Mode_soft (Some 0.95)) modes);
      check tbool "asc present" true
        (List.mem (Sqlfe.Ast.Mode_soft None) modes)
  | _ -> Alcotest.fail "expected create table"

let test_parse_fk_clause () =
  match
    parse
      "ALTER TABLE emp ADD CONSTRAINT fk FOREIGN KEY (dept_id) REFERENCES \
       dept (dept_id) NOT ENFORCED"
  with
  | Sqlfe.Ast.Alter_add_constraint
      {
        con =
          {
            Sqlfe.Ast.con_body = Icdef.Foreign_key { ref_table; _ };
            con_mode;
            _;
          };
        _;
      } ->
      check tstring "ref table" "dept" ref_table;
      check tbool "informational" true (con_mode = Sqlfe.Ast.Mode_informational)
  | _ -> Alcotest.fail "expected alter add fk"

let test_parse_dml () =
  (match parse "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Sqlfe.Ast.Insert { rows; columns = Some cols; _ } ->
      check tint "rows" 2 (List.length rows);
      check tint "cols" 2 (List.length cols)
  | _ -> Alcotest.fail "insert");
  (match parse "DELETE FROM t WHERE a = 1" with
  | Sqlfe.Ast.Delete _ -> ()
  | _ -> Alcotest.fail "delete");
  match parse "UPDATE t SET a = a + 1, b = 'z' WHERE a < 5" with
  | Sqlfe.Ast.Update { assignments; _ } ->
      check tint "assignments" 2 (List.length assignments)
  | _ -> Alcotest.fail "update"

let test_parse_exception_table () =
  match parse "CREATE EXCEPTION TABLE late FOR CONSTRAINT ship_ok" with
  | Sqlfe.Ast.Create_exception_table
      { name = "late"; constraint_name = "ship_ok" } ->
      ()
  | _ -> Alcotest.fail "exception table"

let test_parse_having () =
  match parse_q "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING \
                 n > 2 ORDER BY n DESC" with
  | Sqlfe.Ast.Select s -> (
      match s.Sqlfe.Ast.having with
      | Expr.Cmp (Expr.Gt, Expr.Col { Expr.col = "n"; _ }, _) -> ()
      | p -> Alcotest.failf "bad having: %s" (Expr.to_string_pred p))
  | _ -> Alcotest.fail "expected select"

let test_parse_drop_index () =
  match parse "DROP INDEX emp_salary" with
  | Sqlfe.Ast.Drop_index "emp_salary" -> ()
  | _ -> Alcotest.fail "drop index"

let test_parse_script () =
  let stmts =
    Sqlfe.Parser.parse_script
      "CREATE TABLE a (x INT); INSERT INTO a VALUES (1); SELECT * FROM a;"
  in
  check tint "three statements" 3 (List.length stmts)

(* ---- printer round-trip ----------------------------------------------------- *)

let roundtrip_cases =
  [
    "SELECT * FROM t";
    "SELECT DISTINCT a FROM t";
    "SELECT a, b AS bee FROM t, u WHERE t.a = u.a AND b > 3 ORDER BY a DESC \
     LIMIT 10";
    "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY n DESC";
    "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING n > 2 ORDER \
     BY n DESC";
    "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN (1, 2) AND c IS NOT \
     NULL";
    "(SELECT * FROM a) UNION ALL (SELECT * FROM b)";
    "SELECT * FROM purchase WHERE ship_date = DATE '1999-12-15'";
  ]

let test_print_parse_roundtrip () =
  List.iter
    (fun sql ->
      let q1 = parse_q sql in
      let printed = Sqlfe.Printer.query_to_string q1 in
      let q2 =
        try parse_q printed
        with Sqlfe.Parser.Parse_error m ->
          Alcotest.failf "reparse of %S failed: %s" printed m
      in
      let p1 = Sqlfe.Printer.query_to_string q1
      and p2 = Sqlfe.Printer.query_to_string q2 in
      check tstring ("stable print: " ^ sql) p1 p2)
    roundtrip_cases

(* generated round-trip: random single-table selects *)
let gen_query =
  let open QCheck.Gen in
  let col = oneofl [ "a"; "b"; "c"; "d" ] in
  let value =
    oneof
      [
        map (fun i -> Value.Int i) (int_range (-50) 50);
        map (fun f -> Value.Float (Float.of_int f /. 4.0)) (int_range 0 100);
        map (fun s -> Value.String s) (oneofl [ "x"; "y z"; "q'uote" ]);
      ]
  in
  let cmp = oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
  let simple_pred =
    oneof
      [
        map3
          (fun c col v -> Expr.Cmp (c, Expr.column col, Expr.Const v))
          cmp col value;
        map (fun col -> Expr.Is_null (Expr.column col)) col;
        map3
          (fun col a b ->
            Expr.Between
              ( Expr.column col,
                Expr.Const (Value.Int (min a b)),
                Expr.Const (Value.Int (max a b)) ))
          col (int_range 0 20) (int_range 0 20);
      ]
  in
  let pred =
    frequency
      [
        (3, simple_pred);
        (1, map2 (fun a b -> Expr.And (a, b)) simple_pred simple_pred);
        (1, map2 (fun a b -> Expr.Or (a, b)) simple_pred simple_pred);
        (1, map (fun a -> Expr.Not a) simple_pred);
      ]
  in
  let items =
    oneof
      [
        return [ Sqlfe.Ast.Star ];
        map
          (fun cols ->
            List.map (fun c -> Sqlfe.Ast.Scalar (Expr.column c, None)) cols)
          (map2 (fun a b -> List.sort_uniq compare [ a; b ]) col col);
      ]
  in
  map3
    (fun items pred limit ->
      Sqlfe.Ast.Select
        {
          Sqlfe.Ast.select_defaults with
          items;
          from = [ { Sqlfe.Ast.table = "t"; alias = None } ];
          where = pred;
          limit;
        })
    items pred
    (oneof [ return None; map (fun n -> Some n) (int_range 1 100) ])

let roundtrip_prop =
  QCheck.Test.make ~name:"print/parse fixpoint on generated queries"
    ~count:300
    (QCheck.make gen_query ~print:Sqlfe.Printer.query_to_string)
    (fun q ->
      let p1 = Sqlfe.Printer.query_to_string q in
      let q2 = Sqlfe.Parser.parse_query_string p1 in
      let p2 = Sqlfe.Printer.query_to_string q2 in
      p1 = p2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sqlfe"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select shape" `Quick test_parse_select_shape;
          Alcotest.test_case "join folds" `Quick test_parse_join_folds_to_where;
          Alcotest.test_case "union all" `Quick test_parse_union_all;
          Alcotest.test_case "aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "predicate precedence" `Quick
            test_parse_predicates;
          Alcotest.test_case "not between" `Quick test_parse_not_between;
          Alcotest.test_case "paren ambiguity" `Quick test_parse_paren_ambiguity;
          Alcotest.test_case "date literal" `Quick test_parse_date_literal;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ddl-dml",
        [
          Alcotest.test_case "create table modes" `Quick
            test_parse_create_table_modes;
          Alcotest.test_case "fk clause" `Quick test_parse_fk_clause;
          Alcotest.test_case "dml" `Quick test_parse_dml;
          Alcotest.test_case "exception table" `Quick
            test_parse_exception_table;
          Alcotest.test_case "having" `Quick test_parse_having;
          Alcotest.test_case "drop index" `Quick test_parse_drop_index;
          Alcotest.test_case "script" `Quick test_parse_script;
        ] );
      ( "printer",
        [
          Alcotest.test_case "roundtrip cases" `Quick
            test_print_parse_roundtrip;
        ]
        @ qsuite [ roundtrip_prop ] );
    ]
