(* Tests for the discovery algorithms: linear regression, correlation
   bands, join holes (against a brute-force emptiness oracle), stripped
   partitions, FD mining (against brute force), domain and difference
   bands. *)

open Rel

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float

(* ---- linreg ------------------------------------------------------------- *)

let test_linreg_exact () =
  let points = Array.init 50 (fun i ->
      let x = float_of_int i in
      (x, (3.0 *. x) +. 2.0)) in
  let fit = Mining.Linreg.fit points in
  check (tfloat 1e-9) "k" 3.0 fit.Mining.Linreg.k;
  check (tfloat 1e-9) "b" 2.0 fit.Mining.Linreg.b;
  check (tfloat 1e-9) "r2" 1.0 fit.Mining.Linreg.r2;
  check (tfloat 1e-9) "band 100%" 0.0 (Mining.Linreg.band fit ~q:1.0)

let test_linreg_bands () =
  (* y = x with one outlier at +100 *)
  let points =
    Array.init 100 (fun i ->
        let x = float_of_int i in
        if i = 50 then (x, x +. 100.0) else (x, x))
  in
  let fit = Mining.Linreg.fit points in
  let b100 = Mining.Linreg.band fit ~q:1.0 and b99 = Mining.Linreg.band fit ~q:0.99 in
  check tbool "outlier dominates 100% band" true (b100 > 50.0);
  check tbool "99% band tiny" true (b99 < 5.0);
  check (tfloat 0.02) "coverage of 99% band" 0.99
    (Mining.Linreg.coverage fit ~eps:b99)

(* ---- correlation ----------------------------------------------------------- *)

let corr_table ?(rows = 500) ?(noise = 2.0) ?(outliers = 0) () =
  let schema =
    Schema.make "ct"
      [
        Schema.column "a" Value.TFloat;
        Schema.column "b" Value.TFloat;
        Schema.column "junk" Value.TString;
      ]
  in
  let t = Table.create schema in
  let rng = Stats.Rng.create 77 in
  for i = 0 to rows - 1 do
    let b = Stats.Rng.float_range rng 0.0 100.0 in
    let bump =
      if i < outliers then 500.0 else Stats.Rng.float_range rng (-.noise) noise
    in
    ignore
      (Table.insert t
         (Tuple.make
            [
              Value.Float ((2.0 *. b) +. 5.0 +. bump);
              Value.Float b;
              Value.String "x";
            ]))
  done;
  t

let test_correlation_mine () =
  let t = corr_table () in
  match Mining.Correlation.mine t ~col_a:"a" ~col_b:"b" with
  | None -> Alcotest.fail "correlation not found"
  | Some c ->
      check (tfloat 0.1) "k" 2.0 c.Mining.Correlation.k;
      check (tfloat 1.0) "b" 5.0 c.Mining.Correlation.b;
      check tbool "selective" true (c.Mining.Correlation.selectivity < 0.25);
      let band = Option.get (Mining.Correlation.band_with c ~confidence:1.0) in
      check (tfloat 0.05) "full coverage" 1.0
        (Mining.Correlation.coverage t c ~eps:band.Mining.Correlation.eps)

let test_correlation_rejects_noise () =
  (* uncorrelated data must be rejected by the selectivity threshold *)
  let schema =
    Schema.make "nt"
      [ Schema.column "a" Value.TFloat; Schema.column "b" Value.TFloat ]
  in
  let t = Table.create schema in
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 500 do
    ignore
      (Table.insert t
         (Tuple.make
            [
              Value.Float (Stats.Rng.float_range rng 0.0 100.0);
              Value.Float (Stats.Rng.float_range rng 0.0 100.0);
            ]))
  done;
  check tbool "rejected" true
    (Mining.Correlation.mine t ~col_a:"a" ~col_b:"b" = None)

let test_correlation_outlier_bands () =
  let t = corr_table ~outliers:5 () in
  match
    Mining.Correlation.mine ~max_selectivity:20.0 t ~col_a:"a" ~col_b:"b"
  with
  | None -> Alcotest.fail "should mine with loose threshold"
  | Some c ->
      let b100 = Option.get (Mining.Correlation.band_with c ~confidence:1.0) in
      let b99 = Option.get (Mining.Correlation.band_with c ~confidence:0.99) in
      check tbool "99% band much tighter" true
        (b99.Mining.Correlation.eps < b100.Mining.Correlation.eps /. 10.0)

let test_mine_table_workload_directed () =
  let t = corr_table () in
  let all = Mining.Correlation.mine_table t in
  check tbool "found both directions" true (List.length all >= 1);
  let restricted =
    Mining.Correlation.mine_table ~workload_pairs:[ ("junk", "a") ] t
  in
  check tint "workload filter excludes" 0 (List.length restricted)

(* ---- join holes --------------------------------------------------------------- *)

let holes_fixture () =
  (* left(join j, a) x right(join j, b): a in 0..99, b in 0..99, but pairs
     only where NOT (a in [40,60) and b in [40,60)) — one clear hole *)
  let ls =
    Schema.make "hl"
      [ Schema.column "j" Value.TInt; Schema.column "a" Value.TFloat ]
  and rs =
    Schema.make "hr"
      [ Schema.column "j" Value.TInt; Schema.column "b" Value.TFloat ]
  in
  let left = Table.create ls and right = Table.create rs in
  let rng = Stats.Rng.create 13 in
  let k = ref 0 in
  while Table.cardinality left < 800 do
    let a = Stats.Rng.float_range rng 0.0 100.0 in
    let b = Stats.Rng.float_range rng 0.0 100.0 in
    if not (a >= 40.0 && a < 60.0 && b >= 40.0 && b < 60.0) then begin
      incr k;
      ignore
        (Table.insert left (Tuple.make [ Value.Int !k; Value.Float a ]));
      ignore
        (Table.insert right (Tuple.make [ Value.Int !k; Value.Float b ]))
    end
  done;
  (left, right)

let test_join_holes_find_hole () =
  let left, right = holes_fixture () in
  match
    Mining.Join_holes.mine ~grid:32 ~left ~right ~join_left:"j" ~join_right:"j"
      ~left_col:"a" ~right_col:"b" ()
  with
  | None -> Alcotest.fail "no result"
  | Some h ->
      check tbool "found rectangles" true (h.Mining.Join_holes.rects <> []);
      let biggest = List.hd h.Mining.Join_holes.rects in
      (* the planted hole must be (mostly) covered by the biggest rect *)
      check tbool "covers planted hole core" true
        (biggest.Mining.Join_holes.a_lo < 45.0
        && biggest.Mining.Join_holes.a_hi > 55.0
        && biggest.Mining.Join_holes.b_lo < 45.0
        && biggest.Mining.Join_holes.b_hi > 55.0);
      (* every reported rect must be verifiably empty *)
      List.iter
        (fun r ->
          check tbool "rect empty" true
            (Mining.Join_holes.rect_is_empty h ~left ~right r))
        h.Mining.Join_holes.rects

let test_join_holes_all_rects_empty_random () =
  (* random sparse data: whatever rects come out, they must be empty *)
  let ls =
    Schema.make "hl2"
      [ Schema.column "j" Value.TInt; Schema.column "a" Value.TFloat ]
  and rs =
    Schema.make "hr2"
      [ Schema.column "j" Value.TInt; Schema.column "b" Value.TFloat ]
  in
  let left = Table.create ls and right = Table.create rs in
  let rng = Stats.Rng.create 99 in
  for k = 1 to 150 do
    ignore
      (Table.insert left
         (Tuple.make
            [ Value.Int k; Value.Float (Stats.Rng.float_range rng 0.0 10.0) ]));
    ignore
      (Table.insert right
         (Tuple.make
            [ Value.Int k; Value.Float (Stats.Rng.float_range rng 0.0 10.0) ]))
  done;
  match
    Mining.Join_holes.mine ~grid:16 ~min_area:0.0 ~left ~right ~join_left:"j"
      ~join_right:"j" ~left_col:"a" ~right_col:"b" ()
  with
  | None -> Alcotest.fail "no result"
  | Some h ->
      check tbool "some rects on sparse data" true
        (h.Mining.Join_holes.rects <> []);
      List.iter
        (fun r ->
          check tbool "rect verifiably empty" true
            (Mining.Join_holes.rect_is_empty h ~left ~right r))
        h.Mining.Join_holes.rects

(* maximality on the grid: brute-force check on small grids *)
let maximal_rects_prop =
  QCheck.Test.make ~name:"grid rects are empty and maximal" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 20) (pair (int_range 0 5) (int_range 0 5)))
    (fun points ->
      let g = 6 in
      let occupied = Array.make_matrix g g false in
      List.iter (fun (x, y) -> occupied.(y).(x) <- true) points;
      let rects = Mining.Join_holes.maximal_empty_rects occupied in
      let empty (x0, y0, x1, y1) =
        let ok = ref true in
        for y = y0 to y1 do
          for x = x0 to x1 do
            if occupied.(y).(x) then ok := false
          done
        done;
        !ok
      in
      let inside (x0, y0, x1, y1) =
        x0 >= 0 && y0 >= 0 && x1 < g && y1 < g && x0 <= x1 && y0 <= y1
      in
      let maximal (x0, y0, x1, y1) =
        let grow_left = x0 > 0 && empty (x0 - 1, y0, x1, y1) in
        let grow_right = x1 < g - 1 && empty (x0, y0, x1 + 1, y1) in
        let grow_up = y0 > 0 && empty (x0, y0 - 1, x1, y1) in
        let grow_down = y1 < g - 1 && empty (x0, y0, x1, y1 + 1) in
        not (grow_left || grow_right || grow_up || grow_down)
      in
      List.for_all
        (fun r -> inside r && empty r && maximal r)
        rects)

(* completeness: every maximal empty rect found by brute force is reported *)
let maximal_rects_complete_prop =
  QCheck.Test.make ~name:"grid rect enumeration is complete" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 12) (pair (int_range 0 4) (int_range 0 4)))
    (fun points ->
      let g = 5 in
      let occupied = Array.make_matrix g g false in
      List.iter (fun (x, y) -> occupied.(y).(x) <- true) points;
      let reported = Mining.Join_holes.maximal_empty_rects occupied in
      let empty (x0, y0, x1, y1) =
        let ok = ref true in
        for y = y0 to y1 do
          for x = x0 to x1 do
            if occupied.(y).(x) then ok := false
          done
        done;
        !ok
      in
      (* brute force all maximal empty rects *)
      let all = ref [] in
      for x0 = 0 to g - 1 do
        for y0 = 0 to g - 1 do
          for x1 = x0 to g - 1 do
            for y1 = y0 to g - 1 do
              if empty (x0, y0, x1, y1) then all := (x0, y0, x1, y1) :: !all
            done
          done
        done
      done;
      let contains (a0, b0, a1, b1) (x0, y0, x1, y1) =
        a0 <= x0 && b0 <= y0 && a1 >= x1 && b1 >= y1
      in
      let maximal =
        List.filter
          (fun r ->
            not (List.exists (fun r' -> r' <> r && contains r' r) !all))
          !all
      in
      List.for_all (fun r -> List.mem r reported) maximal)

(* ---- partitions & FDs ------------------------------------------------------------ *)

let fd_table rows =
  let schema =
    Schema.make "ft"
      [
        Schema.column "x" Value.TInt;
        Schema.column "y" Value.TInt;
        Schema.column "z" Value.TInt;
      ]
  in
  let t = Table.create schema in
  List.iter
    (fun (x, y, z) ->
      ignore
        (Table.insert t (Tuple.make [ Value.Int x; Value.Int y; Value.Int z ])))
    rows;
  t

let test_partition_basics () =
  let t = fd_table [ (1, 1, 1); (1, 1, 2); (2, 2, 3); (2, 3, 4); (3, 4, 5) ] in
  let px = Mining.Partition.of_column t 0 in
  check tint "x classes (stripped)" 2 (Mining.Partition.class_count px);
  check tint "x error" 2 (Mining.Partition.error px);
  let pxy = Mining.Partition.of_columns t [ 0; 1 ] in
  check tint "xy error" 1 (Mining.Partition.error pxy)

let test_fd_mine () =
  (* y = x * 10 functionally: x -> y; z unique so z -> everything *)
  let rows = List.init 60 (fun i -> (i mod 6, (i mod 6) * 10, i)) in
  let t = fd_table rows in
  let fds = Mining.Fd_mine.mine ~max_lhs:2 t in
  let has lhs rhs =
    List.exists
      (fun f -> f.Mining.Fd_mine.lhs = lhs && f.Mining.Fd_mine.rhs = rhs)
      fds
  in
  check tbool "x -> y" true (has [ "x" ] "y");
  check tbool "y -> x" true (has [ "y" ] "x");
  check tbool "z -> x" true (has [ "z" ] "x");
  check tbool "not x -> z" false (has [ "x" ] "z");
  (* every reported FD must actually hold *)
  List.iter
    (fun fd -> check tbool "holds" true (Mining.Fd_mine.holds t fd))
    fds

let test_fd_minimality () =
  let rows = List.init 60 (fun i -> (i mod 6, (i mod 6) * 10, i)) in
  let t = fd_table rows in
  let fds = Mining.Fd_mine.mine ~max_lhs:2 t in
  (* since x -> y holds, the non-minimal {x,z} -> y must not be reported *)
  check tbool "minimal only" false
    (List.exists
       (fun f ->
         List.length f.Mining.Fd_mine.lhs = 2 && f.Mining.Fd_mine.rhs = "y"
         && List.mem "x" f.Mining.Fd_mine.lhs)
       fds)

let fd_mine_sound_prop =
  QCheck.Test.make ~name:"mined FDs hold; missing FDs don't" ~count:60
    QCheck.(
      list_of_size
        Gen.(int_range 5 40)
        (triple (int_range 0 3) (int_range 0 3) (int_range 0 3)))
    (fun rows ->
      let t = fd_table rows in
      let fds = Mining.Fd_mine.mine ~max_lhs:1 t in
      let holds_mined =
        List.for_all (fun fd -> Mining.Fd_mine.holds t fd) fds
      in
      (* brute force single-attribute FDs *)
      let cols = [ "x"; "y"; "z" ] in
      let complete =
        List.for_all
          (fun lhs ->
            List.for_all
              (fun rhs ->
                if lhs = rhs then true
                else
                  let fd = { Mining.Fd_mine.table = "ft"; lhs = [ lhs ]; rhs } in
                  let mined =
                    List.exists
                      (fun f ->
                        f.Mining.Fd_mine.lhs = [ lhs ]
                        && f.Mining.Fd_mine.rhs = rhs)
                      fds
                  in
                  mined = Mining.Fd_mine.holds t fd)
              cols)
          cols
      in
      holds_mined && complete)

let test_fd_confidence () =
  (* x -> y holds for all but one row *)
  let rows = (0, 99, 0) :: List.init 99 (fun i -> (i mod 5, i mod 5 * 10, i)) in
  let t = fd_table rows in
  let fd = { Mining.Fd_mine.table = "ft"; lhs = [ "x" ]; rhs = "y" } in
  check tbool "broken" false (Mining.Fd_mine.holds t fd);
  check (tfloat 0.011) "confidence 0.99" 0.99 (Mining.Fd_mine.confidence t fd)

(* ---- domain & diff bands ----------------------------------------------------------- *)

let test_domain_mining () =
  let t = fd_table [ (5, 1, 1); (9, 2, 2); (7, 3, 3) ] in
  let r = Option.get (Mining.Domain_mine.mine_range t ~column:"x") in
  check tbool "lo" true (r.Mining.Domain_mine.lo = Value.Int 5);
  check tbool "hi" true (r.Mining.Domain_mine.hi = Value.Int 9);
  let vs = Option.get (Mining.Domain_mine.mine_value_set t ~column:"x") in
  check tint "three values" 3 (List.length vs.Mining.Domain_mine.values);
  check tbool "overflow" true
    (Mining.Domain_mine.mine_value_set ~max_values:2 t ~column:"x" = None)

let diff_fixture () =
  let schema =
    Schema.make "dt"
      [ Schema.column "lo" Value.TDate; Schema.column "hi" Value.TDate ]
  in
  let t = Table.create schema in
  let rng = Stats.Rng.create 21 in
  for _ = 1 to 1000 do
    let base = Stats.Rng.int rng 1000 in
    let d =
      if Stats.Rng.coin rng 0.01 then 22 + Stats.Rng.int rng 50
      else Stats.Rng.int rng 22
    in
    ignore
      (Table.insert t
         (Tuple.make [ Value.Date base; Value.Date (base + d) ]))
  done;
  t

let test_diff_band () =
  let t = diff_fixture () in
  match Mining.Diff_band.mine t ~col_hi:"hi" ~col_lo:"lo" with
  | None -> Alcotest.fail "no diff band"
  | Some d ->
      let b100 = Option.get (Mining.Diff_band.band_with d ~confidence:1.0) in
      let b95 = Option.get (Mining.Diff_band.band_with d ~confidence:0.95) in
      check tbool "100% band includes tail" true
        (b100.Mining.Diff_band.d_max >= 22.0);
      check tbool "95% band excludes tail" true
        (b95.Mining.Diff_band.d_max <= 21.0);
      check tbool "band min sane" true (b95.Mining.Diff_band.d_min >= 0.0);
      let cov = Mining.Diff_band.coverage t d b95 in
      check tbool "coverage >= 0.95" true (cov >= 0.95)

let diff_band_coverage_prop =
  QCheck.Test.make ~name:"diff band q-coverage is >= q" ~count:50
    QCheck.(list_of_size Gen.(int_range 40 120) (int_range 0 100))
    (fun diffs ->
      let schema =
        Schema.make "dq"
          [ Schema.column "lo" Value.TInt; Schema.column "hi" Value.TInt ]
      in
      let t = Table.create schema in
      List.iter
        (fun d ->
          ignore (Table.insert t (Tuple.make [ Value.Int 0; Value.Int d ])))
        diffs;
      match
        Mining.Diff_band.mine ~confidences:[ 0.9; 1.0 ] ~min_rows:1 t
          ~col_hi:"hi" ~col_lo:"lo"
      with
      | None -> false
      | Some d ->
          List.for_all
            (fun (b : Mining.Diff_band.band) ->
              Mining.Diff_band.coverage t d b
              >= b.Mining.Diff_band.confidence -. 1e-9)
            d.Mining.Diff_band.bands)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mining"
    [
      ( "linreg",
        [
          Alcotest.test_case "exact" `Quick test_linreg_exact;
          Alcotest.test_case "bands" `Quick test_linreg_bands;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "mine" `Quick test_correlation_mine;
          Alcotest.test_case "rejects noise" `Quick
            test_correlation_rejects_noise;
          Alcotest.test_case "outlier bands" `Quick
            test_correlation_outlier_bands;
          Alcotest.test_case "workload directed" `Quick
            test_mine_table_workload_directed;
        ] );
      ( "join_holes",
        [
          Alcotest.test_case "finds planted hole" `Quick
            test_join_holes_find_hole;
          Alcotest.test_case "random rects empty" `Quick
            test_join_holes_all_rects_empty_random;
        ]
        @ qsuite [ maximal_rects_prop; maximal_rects_complete_prop ] );
      ( "fd",
        [
          Alcotest.test_case "partitions" `Quick test_partition_basics;
          Alcotest.test_case "mine" `Quick test_fd_mine;
          Alcotest.test_case "minimality" `Quick test_fd_minimality;
          Alcotest.test_case "confidence" `Quick test_fd_confidence;
        ]
        @ qsuite [ fd_mine_sound_prop ] );
      ( "domain-diff",
        [
          Alcotest.test_case "domain" `Quick test_domain_mining;
          Alcotest.test_case "diff band" `Quick test_diff_band;
        ]
        @ qsuite [ diff_band_coverage_prop ] );
    ]
