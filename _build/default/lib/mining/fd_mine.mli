(** Functional-dependency discovery (paper §2: "with a good FD mining
    tool, FD information could be made available as SCs").

    A bounded levelwise search in the style of TANE: left-hand sides grow
    up to [max_lhs] attributes, [X → a] is tested by partition refinement,
    and only {e minimal} FDs are returned. *)

open Rel

type fd = { table : string; lhs : string list; rhs : string }

val pp_fd : Format.formatter -> fd -> unit

val mine : ?max_lhs:int -> ?exclude_keys:string list -> Table.t -> fd list
(** [exclude_keys] removes columns (typically declared keys) whose FDs
    the optimizer already knows. *)

val holds : Table.t -> fd -> bool
(** Does the FD hold exactly on the current data?  Revalidation oracle. *)

val confidence : Table.t -> fd -> float
(** Fraction of rows consistent with the FD (rows agreeing with their
    group's majority value) — the confidence of a statistical FD. *)
