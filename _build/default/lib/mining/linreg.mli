(** Ordinary least squares on one predictor: fit [y = k·x + b] and expose
    the residual distribution, which the correlation miner turns into
    absolute (max-residual) and statistical (quantile-residual) bands. *)

type fit = {
  k : float;
  b : float;
  n : int;
  r2 : float;  (** coefficient of determination *)
  residuals : float array;  (** [y_i − (k·x_i + b)], in input order *)
}

val fit : (float * float) array -> fit
(** Raises [Invalid_argument] with fewer than two points. *)

val band : fit -> q:float -> float
(** Smallest ε such that a [q] fraction of points satisfy
    [|residual| ≤ ε]; [q = 1.0] gives the absolute band. *)

val coverage : fit -> eps:float -> float
(** Fraction of points within [eps] of the fitted line. *)
