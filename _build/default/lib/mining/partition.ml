(* Stripped partitions (TANE): the rows of a table grouped by equal values
   under an attribute set, with singleton groups removed.  Functional
   dependency X → a holds exactly when refining the partition of X by [a]
   removes no rows from non-singleton groups, i.e. error(X) = error(X∪a). *)

open Rel

type t = {
  classes : int array list; (* row positions; every class has >= 2 rows *)
  nrows : int;
}

let error t =
  List.fold_left (fun acc c -> acc + Array.length c - 1) 0 t.classes

let class_count t = List.length t.classes

(* Partition of a single column. *)
let of_column table pos =
  let groups : (Value.t, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let n = ref 0 in
  Table.iter table ~f:(fun row ->
      let v = Tuple.get row pos in
      (match Hashtbl.find_opt groups v with
      | Some l -> l := !n :: !l
      | None -> Hashtbl.add groups v (ref [ !n ]));
      incr n);
  let classes =
    Hashtbl.fold
      (fun _ l acc ->
        match !l with
        | [] | [ _ ] -> acc
        | rows -> Array.of_list (List.rev rows) :: acc)
      groups []
  in
  { classes; nrows = !n }

(* Product of two partitions (the partition of the union attribute set),
   in O(n) with the classic two-pass marking scheme. *)
let product a b =
  let nrows = a.nrows in
  let class_of = Array.make nrows (-1) in
  List.iteri
    (fun ci rows -> Array.iter (fun r -> class_of.(r) <- ci) rows)
    a.classes;
  let out = ref [] in
  List.iter
    (fun rows ->
      (* group this b-class by the a-class of each row *)
      let sub : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun r ->
          let ci = class_of.(r) in
          if ci >= 0 then
            match Hashtbl.find_opt sub ci with
            | Some l -> l := r :: !l
            | None -> Hashtbl.add sub ci (ref [ r ]))
        rows;
      Hashtbl.iter
        (fun _ l ->
          match !l with
          | [] | [ _ ] -> ()
          | rs -> out := Array.of_list (List.rev rs) :: !out)
        sub)
    b.classes;
  { classes = !out; nrows }

let of_columns table positions =
  match positions with
  | [] -> invalid_arg "Partition.of_columns: empty attribute set"
  | p :: rest ->
      List.fold_left
        (fun acc q -> product acc (of_column table q))
        (of_column table p) rest

(* X → a, given the partition of X and of X∪{a}. *)
let refines ~lhs ~lhs_with_rhs = error lhs = error lhs_with_rhs
