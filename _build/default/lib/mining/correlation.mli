(** Mining linear correlations between column pairs, after [10]
    (paper §2): find [k], [b], and the smallest ε such that
    [A BETWEEN k·B + b − ε AND k·B + b + ε] holds for a target fraction of
    rows, accepting the correlation only when the band is {e selective}
    (2ε small relative to A's active range).

    Each accepted correlation carries several bands: the 100% band makes
    an absolute soft constraint (usable in rewrite), lower-confidence
    bands make statistical soft constraints (estimation only — the
    paper's "should the database also keep ε70 and ε80?"). *)

open Rel

type band = { confidence : float; eps : float }

type t = {
  table : string;
  col_a : string;  (** the predicted column: [A = k·B + b ± ε] *)
  col_b : string;
  k : float;
  b : float;
  r2 : float;
  rows : int;
  bands : band list;  (** descending confidence *)
  selectivity : float;  (** [2ε₁₀₀ / range A]; smaller = more useful *)
}

val mine :
  ?confidences:float list -> ?max_selectivity:float -> ?min_rows:int ->
  Table.t -> col_a:string -> col_b:string -> t option
(** [None] when either column is non-numeric (dates belong to
    {!Diff_band}), there are too few rows, or the 100% band fails the
    selectivity threshold (the paper's "threshold used as a bound for
    acceptable values for ε"). *)

val band_with : t -> confidence:float -> band option
(** The tightest band whose confidence meets the request. *)

val to_check_pred : t -> eps:float -> Expr.pred
(** The band as the check statement
    [A BETWEEN k·B + b − ε AND k·B + b + ε]. *)

val coverage : Table.t -> t -> eps:float -> float
(** Fraction of the table currently inside the ε-band (revalidation
    oracle). *)

val mine_table :
  ?confidences:float list -> ?max_selectivity:float -> ?min_rows:int ->
  ?workload_pairs:(string * string) list -> Table.t -> t list
(** Search candidate numeric pairs, ranked by selectivity;
    [workload_pairs] restricts to pairs the workload touches (paper §3.2:
    workload-directed discovery). *)

val pp : Format.formatter -> t -> unit
