(* Ordinary least squares on one predictor: fit y = k*x + b and expose the
   residual distribution, which the correlation miner turns into
   absolute (max-residual) and statistical (quantile-residual) bands. *)

type fit = {
  k : float;
  b : float;
  n : int;
  r2 : float; (* coefficient of determination *)
  residuals : float array; (* y_i - (k*x_i + b), same order as input *)
}

let fit (points : (float * float) array) =
  let n = Array.length points in
  if n < 2 then invalid_arg "Linreg.fit: need at least two points";
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    points;
  let mean_x = !sx /. float_of_int n and mean_y = !sy /. float_of_int n in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mean_x and dy = y -. mean_y in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    points;
  let k = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let b = mean_y -. (k *. mean_x) in
  let residuals = Array.map (fun (x, y) -> y -. ((k *. x) +. b)) points in
  let ss_res = Array.fold_left (fun a r -> a +. (r *. r)) 0.0 residuals in
  let r2 = if !syy = 0.0 then 1.0 else 1.0 -. (ss_res /. !syy) in
  { k; b; n; r2; residuals }

(* Smallest epsilon such that a [q] fraction of points satisfy
   |residual| <= epsilon.  [q = 1.0] gives the absolute band. *)
let band fit ~q =
  if q <= 0.0 || q > 1.0 then invalid_arg "Linreg.band: q must be in (0, 1]";
  let abs = Array.map Float.abs fit.residuals in
  Array.sort Float.compare abs;
  let n = Array.length abs in
  let idx = min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)) in
  abs.(idx)

(* Fraction of points within [eps] of the fitted line. *)
let coverage fit ~eps =
  let hits =
    Array.fold_left
      (fun acc r -> if Float.abs r <= eps then acc + 1 else acc)
      0 fit.residuals
  in
  float_of_int hits /. float_of_int (max 1 fit.n)
