(* Mining linear correlations between column pairs, after [10]
   (paper §2): find k, b, and the smallest ε such that
   A BETWEEN k·B + b − ε AND k·B + b + ε holds for a target fraction of
   rows, and accept the correlation only when the band is *selective* —
   2ε small relative to A's active range.

   Each accepted correlation carries several bands: the 100% band makes an
   absolute soft constraint (usable in rewrite), the lower-confidence
   bands make statistical soft constraints (cardinality estimation only,
   paper §3.3's "should the database also keep ε₇₀ and ε₈₀?"). *)

open Rel

type band = { confidence : float; eps : float }

type t = {
  table : string;
  col_a : string; (* the predicted column: A = k·B + b ± ε *)
  col_b : string;
  k : float;
  b : float;
  r2 : float;
  rows : int;
  bands : band list; (* descending confidence, 1.0 first when present *)
  selectivity : float; (* 2ε₁₀₀ / range(A); smaller = more useful *)
}

let numeric_position v =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | Value.Null | Value.String _ | Value.Bool _ -> None

let points_of_table table ~col_a ~col_b =
  let schema = Table.schema table in
  let ia = Schema.index_exn schema col_a
  and ib = Schema.index_exn schema col_b in
  let acc = ref [] in
  Table.iter table ~f:(fun row ->
      match
        ( numeric_position (Tuple.get row ib),
          numeric_position (Tuple.get row ia) )
      with
      | Some x, Some y -> acc := (x, y) :: !acc
      | _ -> ());
  Array.of_list !acc

(* Mine the pair (col_a, col_b) of [table].  [confidences] selects which
   bands to compute (1.0 = absolute).  Returns [None] when there are too
   few rows or the 100%% band is not selective enough per [max_selectivity]
   (the paper's "threshold used as a bound for acceptable values for ε"). *)
let mine ?(confidences = [ 1.0; 0.99; 0.95; 0.9 ]) ?(max_selectivity = 0.25)
    ?(min_rows = 32) table ~col_a ~col_b =
  (* a linear form k·B + b is only well-typed over numeric columns; date
     pairs belong to difference bands instead *)
  let schema = Table.schema table in
  let numeric_col c =
    match (Schema.column_at schema (Schema.index_exn schema c)).Schema.dtype
    with
    | Value.TInt | Value.TFloat -> true
    | Value.TDate | Value.TString | Value.TBool -> false
  in
  if not (numeric_col col_a && numeric_col col_b) then None
  else
  let points = points_of_table table ~col_a ~col_b in
  if Array.length points < min_rows then None
  else
    let fit = Linreg.fit points in
    let ys = Array.map snd points in
    let y_min = Array.fold_left min ys.(0) ys
    and y_max = Array.fold_left max ys.(0) ys in
    let range = y_max -. y_min in
    let eps100 = Linreg.band fit ~q:1.0 in
    let selectivity =
      if range <= 0.0 then 1.0 else 2.0 *. eps100 /. range
    in
    if selectivity > max_selectivity then None
    else
      let bands =
        confidences
        |> List.sort_uniq (fun a b -> Float.compare b a)
        |> List.map (fun confidence ->
               { confidence; eps = Linreg.band fit ~q:confidence })
      in
      Some
        {
          table = Table.name table;
          col_a;
          col_b;
          k = fit.Linreg.k;
          b = fit.Linreg.b;
          r2 = fit.Linreg.r2;
          rows = Array.length points;
          bands;
          selectivity;
        }

(* The tightest band whose confidence meets the request. *)
let band_with t ~confidence =
  List.filter (fun b -> b.confidence >= confidence) t.bands
  |> List.fold_left
       (fun best b ->
         match best with
         | None -> Some b
         | Some x -> if b.eps < x.eps then Some b else best)
       None

(* Express a band as the check-constraint predicate
   A BETWEEN k·B + b − ε AND k·B + b + ε (paper §2). *)
let to_check_pred t ~eps =
  let a = Expr.column t.col_a in
  let line =
    Expr.Binop
      ( Expr.Add,
        Expr.Binop (Expr.Mul, Expr.Const (Value.Float t.k), Expr.column t.col_b),
        Expr.Const (Value.Float t.b) )
  in
  Expr.Between
    ( a,
      Expr.Binop (Expr.Sub, line, Expr.Const (Value.Float eps)),
      Expr.Binop (Expr.Add, line, Expr.Const (Value.Float eps)) )

(* The fraction of the table currently inside the ε-band: used to
   revalidate a stored correlation after updates. *)
let coverage table t ~eps =
  let points = points_of_table table ~col_a:t.col_a ~col_b:t.col_b in
  if Array.length points = 0 then 1.0
  else
    let hits =
      Array.fold_left
        (fun acc (x, y) ->
          if Float.abs (y -. ((t.k *. x) +. t.b)) <= eps then acc + 1 else acc)
        0 points
    in
    float_of_int hits /. float_of_int (Array.length points)

(* Search all candidate numeric pairs of a table, returning accepted
   correlations ranked by selectivity.  [workload_pairs], when given,
   restricts the search to pairs the workload actually touches
   (paper §3.2: discovery directed by the workload). *)
let mine_table ?confidences ?max_selectivity ?min_rows ?workload_pairs table =
  let schema = Table.schema table in
  let numeric_cols =
    List.filter_map
      (fun c ->
        match c.Schema.dtype with
        | Value.TInt | Value.TFloat -> Some c.Schema.name
        | Value.TDate | Value.TString | Value.TBool -> None)
      (Schema.columns schema)
  in
  let wanted a b =
    match workload_pairs with
    | None -> true
    | Some pairs ->
        List.exists
          (fun (x, y) ->
            let eq p q = String.lowercase_ascii p = String.lowercase_ascii q in
            (eq x a && eq y b) || (eq x b && eq y a))
          pairs
  in
  let out = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b && wanted a b then
            match
              mine ?confidences ?max_selectivity ?min_rows table ~col_a:a
                ~col_b:b
            with
            | Some c -> out := c :: !out
            | None -> ())
        numeric_cols)
    numeric_cols;
  List.sort (fun x y -> Float.compare x.selectivity y.selectivity) !out

let pp ppf t =
  Fmt.pf ppf "%s: %s = %.4g*%s %+.4g (r2=%.3f, sel=%.3f)%a" t.table t.col_a
    t.k t.col_b t.b t.r2 t.selectivity
    (Fmt.list ~sep:Fmt.nop (fun ppf b ->
         Fmt.pf ppf " [%.0f%%: ±%.3g]" (100.0 *. b.confidence) b.eps))
    t.bands
