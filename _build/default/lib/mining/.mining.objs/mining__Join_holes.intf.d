lib/mining/join_holes.mli: Format Rel Table
