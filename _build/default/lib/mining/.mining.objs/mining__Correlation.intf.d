lib/mining/correlation.mli: Expr Format Rel Table
