lib/mining/join_holes.ml: Array Float Fmt Hashtbl List Rel Schema Table Tuple Value
