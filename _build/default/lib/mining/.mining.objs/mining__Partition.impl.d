lib/mining/partition.ml: Array Hashtbl List Rel Table Tuple Value
