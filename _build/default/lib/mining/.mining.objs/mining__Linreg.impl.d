lib/mining/linreg.ml: Array Float
