lib/mining/domain_mine.mli: Expr Rel Table Value
