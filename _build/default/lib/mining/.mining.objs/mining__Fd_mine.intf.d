lib/mining/fd_mine.mli: Format Rel Table
