lib/mining/partition.mli: Rel Table
