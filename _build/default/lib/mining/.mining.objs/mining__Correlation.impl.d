lib/mining/correlation.ml: Array Expr Float Fmt Linreg List Rel Schema String Table Tuple Value
