lib/mining/domain_mine.ml: Expr Hashtbl List Rel Schema Table Tuple Value
