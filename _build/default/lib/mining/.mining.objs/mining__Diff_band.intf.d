lib/mining/diff_band.mli: Expr Format Rel Table Value
