lib/mining/diff_band.ml: Array Expr Float Fmt List Rel Schema Table Tuple Value
