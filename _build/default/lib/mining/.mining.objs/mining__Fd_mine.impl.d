lib/mining/fd_mine.ml: Fmt Hashtbl List Option Partition Rel Schema String Table Tuple Value
