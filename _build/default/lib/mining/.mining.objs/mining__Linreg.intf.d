lib/mining/linreg.mli:
