(* Mining "holes" in two-dimensional join space, after [8] (paper §2):
   given a join path one ⋈ two and attributes A of [one] and B of [two],
   find maximal rectangular ranges (of A × B) over which the join returns
   no tuples.  Queries that select within a hole's A-range can then trim
   their B-range (and vice versa).

   We bucketize both axes into a g × g grid over the active domains — the
   paper's holes are likewise ranges, not points — mark cells that contain
   at least one join-result point, and enumerate all maximal empty
   rectangles of the grid.  The scan and bucketing passes are linear in
   the join-result size, which experiment E9 verifies. *)

open Rel

type rect = {
  a_lo : float;
  a_hi : float; (* half-open in value space: [a_lo, a_hi) *)
  b_lo : float;
  b_hi : float;
}

type t = {
  left_table : string;
  left_col : string; (* A *)
  right_table : string;
  right_col : string; (* B *)
  join_left : string; (* join key column of left table *)
  join_right : string;
  grid : int;
  a_min : float;
  a_max : float;
  b_min : float;
  b_max : float;
  rects : rect list; (* maximal empty rectangles, in value space *)
  join_rows : int; (* size of the join result that was scanned *)
}

let numeric v =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | Value.Null | Value.String _ | Value.Bool _ -> None

(* All (A, B) pairs of the join result, via a hash join on the key. *)
let join_points ~left ~right ~join_left ~join_right ~left_col ~right_col =
  let ls = Table.schema left and rs = Table.schema right in
  let l_key = Schema.index_exn ls join_left
  and r_key = Schema.index_exn rs join_right in
  let l_a = Schema.index_exn ls left_col
  and r_b = Schema.index_exn rs right_col in
  let build : (Value.t, float) Hashtbl.t = Hashtbl.create 1024 in
  Table.iter right ~f:(fun row ->
      let k = Tuple.get row r_key in
      if not (Value.is_null k) then
        match numeric (Tuple.get row r_b) with
        | Some b -> Hashtbl.add build k b
        | None -> ());
  let acc = ref [] in
  Table.iter left ~f:(fun row ->
      let k = Tuple.get row l_key in
      if not (Value.is_null k) then
        match numeric (Tuple.get row l_a) with
        | Some a ->
            List.iter
              (fun b -> acc := (a, b) :: !acc)
              (Hashtbl.find_all build k)
        | None -> ());
  !acc

(* --- maximal empty rectangles of a boolean grid ------------------------ *)

(* occupied.(y).(x) — enumerate all maximal rectangles of unoccupied
   cells.  For each row taken as the bottom of a histogram of empty-cell
   heights, the monotone-stack pass yields every rectangle that cannot be
   widened or grown upward; a rectangle is kept only if it also cannot be
   grown downward (its bottom row is the last, or some cell below is
   occupied / of smaller height). *)
let maximal_empty_rects (occupied : bool array array) =
  let g_y = Array.length occupied in
  if g_y = 0 then []
  else begin
    let g_x = Array.length occupied.(0) in
    let height = Array.make g_x 0 in
    let rects = ref [] in
    for y = 0 to g_y - 1 do
      for x = 0 to g_x - 1 do
        height.(x) <- (if occupied.(y).(x) then 0 else height.(x) + 1)
      done;
      (* monotone stack of (start_x, h); emit on pop *)
      let stack = ref [] in
      let emit start_x width h =
        if h > 0 then begin
          (* grown maximally up (h is the full run height) and wide (popped
             because neighbours are shorter); keep if not extendable down *)
          let extendable_down =
            y + 1 < g_y
            &&
            let rec all_empty x =
              x >= start_x + width || ((not occupied.(y + 1).(x)) && all_empty (x + 1))
            in
            all_empty start_x
          in
          if not extendable_down then
            rects := (start_x, y - h + 1, start_x + width - 1, y) :: !rects
        end
      in
      for x = 0 to g_x do
        let h = if x = g_x then -1 else height.(x) in
        let start = ref x in
        let continue = ref true in
        while !continue do
          match !stack with
          | (sx, sh) :: tl when sh > h ->
              emit sx (x - sx) sh;
              start := sx;
              stack := tl
          | _ -> continue := false
        done;
        if x < g_x then
          match !stack with
          | (_, sh) :: _ when sh = h -> ()
          | _ -> if h > 0 then stack := (!start, h) :: !stack
      done
    done;
    (* drop rectangles contained in others (the stack pass can emit
       horizontally-nested candidates from different bottom rows) *)
    let all = !rects in
    List.filter
      (fun (x0, y0, x1, y1) ->
        not
          (List.exists
             (fun (a0, b0, a1, b1) ->
               (a0, b0, a1, b1) <> (x0, y0, x1, y1)
               && a0 <= x0 && b0 <= y0 && a1 >= x1 && b1 >= y1)
             all))
      all
  end

(* Mine holes for (left.left_col, right.right_col) across the equi-join
   [join_left = join_right].  [grid] buckets per axis; [min_area] discards
   slivers (fraction of total grid area). *)
let mine ?(grid = 64) ?(min_area = 0.005) ~left ~right ~join_left ~join_right
    ~left_col ~right_col () =
  let points =
    join_points ~left ~right ~join_left ~join_right ~left_col ~right_col
  in
  match points with
  | [] -> None
  | (a0, b0) :: _ ->
      let a_min = ref a0 and a_max = ref a0 in
      let b_min = ref b0 and b_max = ref b0 in
      List.iter
        (fun (a, b) ->
          if a < !a_min then a_min := a;
          if a > !a_max then a_max := a;
          if b < !b_min then b_min := b;
          if b > !b_max then b_max := b)
        points;
      let a_span = max (!a_max -. !a_min) 1e-9
      and b_span = max (!b_max -. !b_min) 1e-9 in
      let cell_of v lo span =
        let c = int_of_float (float_of_int grid *. ((v -. lo) /. span)) in
        max 0 (min (grid - 1) c)
      in
      let occupied = Array.make_matrix grid grid false in
      List.iter
        (fun (a, b) ->
          (* rows indexed by B (y), columns by A (x) *)
          occupied.(cell_of b !b_min b_span).(cell_of a !a_min a_span) <- true)
        points;
      let grid_rects = maximal_empty_rects occupied in
      let a_at i = !a_min +. (a_span *. float_of_int i /. float_of_int grid) in
      let b_at i = !b_min +. (b_span *. float_of_int i /. float_of_int grid) in
      let min_cells =
        int_of_float (min_area *. float_of_int (grid * grid))
      in
      let rects =
        grid_rects
        |> List.filter (fun (x0, y0, x1, y1) ->
               (x1 - x0 + 1) * (y1 - y0 + 1) >= max 1 min_cells)
        |> List.map (fun (x0, y0, x1, y1) ->
               {
                 a_lo = a_at x0;
                 a_hi = a_at (x1 + 1);
                 b_lo = b_at y0;
                 b_hi = b_at (y1 + 1);
               })
        |> List.sort (fun r1 r2 ->
               Float.compare
                 ((r2.a_hi -. r2.a_lo) *. (r2.b_hi -. r2.b_lo))
                 ((r1.a_hi -. r1.a_lo) *. (r1.b_hi -. r1.b_lo)))
      in
      Some
        {
          left_table = Table.name left;
          left_col;
          right_table = Table.name right;
          right_col;
          join_left;
          join_right;
          grid;
          a_min = !a_min;
          a_max = !a_max;
          b_min = !b_min;
          b_max = !b_max;
          rects;
          join_rows = List.length points;
        }

(* Exact verification oracle used in tests: does any join-result point
   fall strictly inside [r]?  (Boundary cells may contain points because
   bucketization is conservative only cell-wise.) *)
let rect_is_empty t ~left ~right r =
  let points =
    join_points ~left ~right ~join_left:t.join_left ~join_right:t.join_right
      ~left_col:t.left_col ~right_col:t.right_col
  in
  not
    (List.exists
       (fun (a, b) ->
         a >= r.a_lo && a < r.a_hi && b >= r.b_lo && b < r.b_hi)
       points)

let pp ppf t =
  Fmt.pf ppf "holes %s.%s x %s.%s (join %s=%s): %d rects over %d join rows"
    t.left_table t.left_col t.right_table t.right_col t.join_left
    t.join_right (List.length t.rects) t.join_rows
