(** Mining "holes" in two-dimensional join space, after [8] (paper §2):
    given a join path [one ⋈ two] and attributes A of [one] and B of
    [two], find maximal rectangular ranges of A × B over which the join
    returns no tuples.  Queries selecting within a hole's A-range can then
    trim their B-range (and vice versa) — see
    {!Opt.Rewrite.hole_trimming}.

    Both axes are bucketized into a [grid × grid] raster over the active
    domains; cells containing a join-result point are marked; maximal
    empty rectangles of the raster are enumerated.  The scan and
    bucketing passes are linear in the join-result size (experiment
    E9). *)

open Rel

type rect = {
  a_lo : float;
  a_hi : float;  (** half-open in value space: [[a_lo, a_hi)] *)
  b_lo : float;
  b_hi : float;
}

type t = {
  left_table : string;
  left_col : string;  (** A *)
  right_table : string;
  right_col : string;  (** B *)
  join_left : string;  (** join key column of the left table *)
  join_right : string;
  grid : int;
  a_min : float;
  a_max : float;
  b_min : float;
  b_max : float;
  rects : rect list;  (** maximal empty rectangles, largest first *)
  join_rows : int;  (** size of the join result scanned *)
}

val maximal_empty_rects : bool array array -> (int * int * int * int) list
(** Enumerate all maximal all-[false] rectangles [(x0, y0, x1, y1)]
    (inclusive) of a raster — exposed for the property tests, which check
    emptiness, maximality, and completeness against brute force. *)

val mine :
  ?grid:int -> ?min_area:float -> left:Table.t -> right:Table.t ->
  join_left:string -> join_right:string -> left_col:string ->
  right_col:string -> unit -> t option
(** [None] when the join result is empty.  [min_area] (fraction of the
    raster) discards slivers. *)

val rect_is_empty : t -> left:Table.t -> right:Table.t -> rect -> bool
(** Exact verification oracle: no join-result point inside the
    rectangle. *)

val pp : Format.formatter -> t -> unit
