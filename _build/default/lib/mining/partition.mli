(** Stripped partitions (TANE): the rows of a table grouped by equal
    values under an attribute set, with singleton groups removed.

    Functional dependency [X → a] holds exactly when refining the
    partition of [X] by [a] removes no rows from non-singleton groups,
    i.e. [error X = error (X ∪ a)]. *)

open Rel

type t = {
  classes : int array list;  (** row positions; every class has ≥ 2 rows *)
  nrows : int;
}

val error : t -> int
(** Σ(|class| − 1): rows that would have to change for the attribute set
    to be a key. *)

val class_count : t -> int

val of_column : Table.t -> int -> t
(** Partition by one column (by position). *)

val product : t -> t -> t
(** Partition of the union attribute set, O(n). *)

val of_columns : Table.t -> int list -> t

val refines : lhs:t -> lhs_with_rhs:t -> bool
(** The FD test: [X → a] given the partitions of [X] and [X ∪ {a}]. *)
