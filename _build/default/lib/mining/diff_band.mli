(** Column-difference bands: the paper's running example (§4.4) is
    "ship_date is between order_date and three weeks later", i.e.
    [0 ≤ ship_date − order_date ≤ 21] for ~99% of rows.  For a column pair
    this miner finds the tightest [d_min, d_max] interval on
    [col_hi − col_lo] at each requested confidence (a sliding-window
    narrowest-interval search over the sorted differences). *)

open Rel

type band = { confidence : float; d_min : float; d_max : float }

type t = {
  table : string;
  col_hi : string;  (** the constrained expression is [col_hi − col_lo] *)
  col_lo : string;
  rows : int;
  bands : band list;  (** descending confidence *)
}

val compatible_dtypes : Value.dtype -> Value.dtype -> bool
(** A difference is only meaningful between two dates or two numerics. *)

val mine :
  ?confidences:float list -> ?min_rows:int -> Table.t -> col_hi:string ->
  col_lo:string -> t option
(** [None] on incompatible column types or too few rows. *)

val to_check_pred : t -> band -> Expr.pred
(** [CHECK (col_hi − col_lo BETWEEN d_min AND d_max)], with exact bounds
    (integral differences print as integers; rounding would break a 100%
    band's validity). *)

val band_with : t -> confidence:float -> band option
(** The narrowest band whose confidence meets the request. *)

val coverage : Table.t -> t -> band -> float
(** Fraction of rows currently inside the band (revalidation oracle). *)

val pp : Format.formatter -> t -> unit
