(* Column-difference bands: the paper's running example (§4.4) is
   "ship_date is between order_date and three weeks later", i.e.
   0 <= ship_date − order_date <= 21 for 99% of rows.  This miner finds,
   for a column pair (hi, lo), the tightest [d_min, d_max] interval on
   hi − lo at each requested confidence. *)

open Rel

type band = { confidence : float; d_min : float; d_max : float }

type t = {
  table : string;
  col_hi : string; (* the constrained expression is col_hi - col_lo *)
  col_lo : string;
  rows : int;
  bands : band list; (* descending confidence *)
}

let numeric v =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | Value.Null | Value.String _ | Value.Bool _ -> None

(* a difference is only meaningful between two dates or two numerics *)
let compatible_dtypes a b =
  match (a, b) with
  | Value.TDate, Value.TDate -> true
  | (Value.TInt | Value.TFloat), (Value.TInt | Value.TFloat) -> true
  | _ -> false

let mine ?(confidences = [ 1.0; 0.99; 0.95; 0.9 ]) ?(min_rows = 32) table
    ~col_hi ~col_lo =
  let schema = Table.schema table in
  let ih = Schema.index_exn schema col_hi
  and il = Schema.index_exn schema col_lo in
  if
    not
      (compatible_dtypes
         (Schema.column_at schema ih).Schema.dtype
         (Schema.column_at schema il).Schema.dtype)
  then None
  else
  let diffs = ref [] in
  Table.iter table ~f:(fun row ->
      match (numeric (Tuple.get row ih), numeric (Tuple.get row il)) with
      | Some h, Some l -> diffs := (h -. l) :: !diffs
      | _ -> ());
  let diffs = Array.of_list !diffs in
  let n = Array.length diffs in
  if n < min_rows then None
  else begin
    Array.sort Float.compare diffs;
    (* tightest interval containing a q fraction: slide a window of
       ceil(q*n) rows and take the narrowest *)
    let band_for q =
      let w = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let best = ref (diffs.(0), diffs.(n - 1)) in
      for i = 0 to n - w do
        let lo = diffs.(i) and hi = diffs.(i + w - 1) in
        let blo, bhi = !best in
        if hi -. lo < bhi -. blo then best := (lo, hi)
      done;
      let d_min, d_max = !best in
      { confidence = q; d_min; d_max }
    in
    let bands =
      confidences
      |> List.sort_uniq (fun a b -> Float.compare b a)
      |> List.map band_for
    in
    Some { table = Table.name table; col_hi; col_lo; rows = n; bands }
  end

(* CHECK (col_hi - col_lo BETWEEN d_min AND d_max).  Bounds are exact:
   integral differences (dates, ints) print as integers, anything else
   keeps the full float — rounding here would silently exclude edge rows
   and break the band's validity claim. *)
let to_check_pred t (b : band) =
  let diff =
    Expr.Binop (Expr.Sub, Expr.column t.col_hi, Expr.column t.col_lo)
  in
  let bound x =
    if Float.is_integer x then Expr.Const (Value.Int (int_of_float x))
    else Expr.Const (Value.Float x)
  in
  Expr.Between (diff, bound b.d_min, bound b.d_max)

let band_with t ~confidence =
  List.filter (fun b -> b.confidence >= confidence) t.bands
  |> List.fold_left
       (fun best b ->
         match best with
         | None -> Some b
         | Some x ->
             if b.d_max -. b.d_min < x.d_max -. x.d_min then Some b else best)
       None

(* Fraction of rows currently inside the band: revalidation oracle. *)
let coverage table t (b : band) =
  let schema = Table.schema table in
  let ih = Schema.index_exn schema t.col_hi
  and il = Schema.index_exn schema t.col_lo in
  let total = ref 0 and hits = ref 0 in
  Table.iter table ~f:(fun row ->
      match (numeric (Tuple.get row ih), numeric (Tuple.get row il)) with
      | Some h, Some l ->
          incr total;
          let d = h -. l in
          if d >= b.d_min && d <= b.d_max then incr hits
      | _ -> ());
  if !total = 0 then 1.0 else float_of_int !hits /. float_of_int !total

let pp ppf t =
  Fmt.pf ppf "%s: %s - %s in%a" t.table t.col_hi t.col_lo
    (Fmt.list ~sep:Fmt.nop (fun ppf b ->
         Fmt.pf ppf " [%.0f%%: %.3g..%.3g]" (100.0 *. b.confidence) b.d_min
           b.d_max))
    t.bands
