(** Domain constraints: per-column min/max ranges (Sybase's built-in
    "soft constraint" class, paper §2) and small value sets, expressed as
    CHECK predicates so the generic rewrite machinery can use them. *)

open Rel

type range_sc = { table : string; column : string; lo : Value.t; hi : Value.t }

type value_set_sc = { table : string; column : string; values : Value.t list }

val mine_range : Table.t -> column:string -> range_sc option
(** [None] when the column is entirely null (or the table empty). *)

val mine_value_set :
  ?max_values:int -> Table.t -> column:string -> value_set_sc option
(** [None] when the column has more than [max_values] distinct values. *)

val range_to_check : range_sc -> Expr.pred
val value_set_to_check : value_set_sc -> Expr.pred

val mine_all_ranges : Table.t -> range_sc list
