(* Domain constraints: per-column min/max ranges (Sybase's built-in "soft
   constraint" class, paper §2) and small value sets, expressed as CHECK
   predicates so the generic rewrite machinery can use them. *)

open Rel

type range_sc = { table : string; column : string; lo : Value.t; hi : Value.t }

type value_set_sc = { table : string; column : string; values : Value.t list }

let mine_range table ~column =
  let schema = Table.schema table in
  let pos = Schema.index_exn schema column in
  let lo = ref Value.Null and hi = ref Value.Null in
  Table.iter table ~f:(fun row ->
      let v = Tuple.get row pos in
      if not (Value.is_null v) then begin
        if Value.is_null !lo || Value.compare_total v !lo < 0 then lo := v;
        if Value.is_null !hi || Value.compare_total v !hi > 0 then hi := v
      end);
  if Value.is_null !lo then None
  else Some { table = Table.name table; column; lo = !lo; hi = !hi }

let mine_value_set ?(max_values = 16) table ~column =
  let schema = Table.schema table in
  let pos = Schema.index_exn schema column in
  let seen = Hashtbl.create 64 in
  let overflow = ref false in
  Table.iter table ~f:(fun row ->
      if not !overflow then begin
        let v = Tuple.get row pos in
        if not (Value.is_null v) then
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            if Hashtbl.length seen > max_values then overflow := true
          end
      end);
  if !overflow || Hashtbl.length seen = 0 then None
  else
    Some
      {
        table = Table.name table;
        column;
        values =
          Hashtbl.fold (fun v () acc -> v :: acc) seen []
          |> List.sort Value.compare_total;
      }

let range_to_check (r : range_sc) =
  Expr.Between (Expr.column r.column, Expr.Const r.lo, Expr.Const r.hi)

let value_set_to_check (s : value_set_sc) =
  Expr.In_list (Expr.column s.column, s.values)

let mine_all_ranges table =
  List.filter_map
    (fun c -> mine_range table ~column:c.Schema.name)
    (Schema.columns (Table.schema table))
