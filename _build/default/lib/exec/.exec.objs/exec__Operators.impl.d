lib/exec/operators.ml: Array Database Expr Fmt Hashtbl Index List Option Plan Printf Rel Table Tuple Value
