lib/exec/operators.mli: Database Format Plan Rel Tuple
