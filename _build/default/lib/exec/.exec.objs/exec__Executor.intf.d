lib/exec/executor.mli: Database Format Operators Plan Rel Tuple
