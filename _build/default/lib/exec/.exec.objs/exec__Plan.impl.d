lib/exec/plan.ml: Array Database Expr Fmt Index List Rel String Table Value
