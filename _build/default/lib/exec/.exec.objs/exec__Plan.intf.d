lib/exec/plan.mli: Database Expr Format Index Rel
