lib/exec/executor.ml: Array Expr Fmt List Operators Plan Rel Tuple
