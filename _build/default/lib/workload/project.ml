(* The paper's §5 example: a [project] table with start_date / end_date
   where durations are short (most projects complete within [max_days]),
   so predicates on both dates are heavily correlated and the
   independence assumption under-estimates badly — the motivating case
   for SSC twinning. *)

open Rel

type config = {
  rows : int;
  days : int; (* start_date spread *)
  max_days : int; (* project duration bound for the bulk *)
  long_fraction : float; (* projects running longer than max_days *)
  seed : int;
}

let default_config =
  { rows = 10_000; days = 730; max_days = 5; long_fraction = 0.1; seed = 11 }

let base_date = Date.of_ymd 1998 1 1

let schema =
  Schema.make "project"
    [
      Schema.column ~nullable:false "id" Value.TInt;
      Schema.column ~nullable:false "start_date" Value.TDate;
      Schema.column ~nullable:false "end_date" Value.TDate;
      Schema.column ~nullable:false "dept" Value.TString;
      Schema.column "budget" Value.TFloat;
    ]

let depts = [| "eng"; "sales"; "hr"; "ops"; "legal" |]

let load ?(config = default_config) db =
  ignore (Database.create_table db schema);
  Database.add_constraint db
    (Icdef.make ~name:"project_pk" ~table:"project" (Icdef.Primary_key [ "id" ]));
  ignore
    (Database.create_index db ~name:"project_start_idx" ~table:"project"
       ~columns:[ "start_date" ] ());
  ignore
    (Database.create_index db ~name:"project_end_idx" ~table:"project"
       ~columns:[ "end_date" ] ());
  let rng = Stats.Rng.create config.seed in
  for i = 1 to config.rows do
    let start = Date.add_days base_date (Stats.Rng.int rng config.days) in
    let long = Stats.Rng.coin rng config.long_fraction in
    let duration =
      if long then config.max_days + 1 + Stats.Rng.int rng 60
      else Stats.Rng.int rng (config.max_days + 1)
    in
    ignore
      (Database.insert db ~table:"project"
         (Tuple.make
            [
              Value.Int i;
              Value.Date start;
              Value.Date (Date.add_days start duration);
              Value.String (Stats.Rng.pick rng depts);
              Value.Float (1000.0 +. Stats.Rng.float_range rng 0.0 99_000.0);
            ]))
  done

(* Ground truth for E4: projects active on [day]. *)
let active_on db day =
  let tbl = Database.table_exn db "project" in
  let schema = Table.schema tbl in
  let s = Schema.index_exn schema "start_date"
  and e = Schema.index_exn schema "end_date" in
  Table.fold tbl ~init:0 ~f:(fun acc _ row ->
      match (Tuple.get row s, Tuple.get row e) with
      | Value.Date sd, Value.Date ed when sd <= day && ed >= day -> acc + 1
      | _ -> acc)
