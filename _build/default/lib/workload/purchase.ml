(* The paper's running example (§4.4): a [purchase] table where
   "for 99% of tuples, the ship date is between the order date and three
   weeks later" — with a small population of late shipments that the
   exception table tracks, plus amount/quantity columns for correlation
   and grouping workloads.

   Columns:
     id        INT PRIMARY KEY
     customer  INT          (skewed over [1, customers])
     order_date  DATE NOT NULL   (uniform over [base, base+days))
     ship_date   DATE            (order_date + delay; delay <= 21 for the
                                  on-time ~99%, 22..90 for the late tail)
     amount    FLOAT         (linearly correlated with quantity)
     quantity  INT
     region    VARCHAR       (small domain)
*)

open Rel

let regions = [| "north"; "south"; "east"; "west" |]

let base_date = Date.of_ymd 1999 1 1

type config = {
  rows : int;
  days : int; (* order_date spread *)
  late_fraction : float; (* fraction shipped later than 21 days *)
  customers : int;
  seed : int;
}

let default_config =
  { rows = 20_000; days = 365; late_fraction = 0.01; customers = 500; seed = 7 }

let schema =
  Schema.make "purchase"
    [
      Schema.column ~nullable:false "id" Value.TInt;
      Schema.column ~nullable:false "customer" Value.TInt;
      Schema.column ~nullable:false "order_date" Value.TDate;
      Schema.column "ship_date" Value.TDate;
      Schema.column "amount" Value.TFloat;
      Schema.column ~nullable:false "quantity" Value.TInt;
      Schema.column ~nullable:false "region" Value.TString;
    ]

let row_of rng cfg i =
  let order = Date.add_days base_date (Stats.Rng.int rng cfg.days) in
  let late = Stats.Rng.coin rng cfg.late_fraction in
  let delay =
    if late then 22 + Stats.Rng.int rng 69 else Stats.Rng.int rng 22
  in
  let quantity = 1 + Stats.Rng.int rng 50 in
  (* amount = 9.99 * quantity + noise in [-5, 5] *)
  let amount =
    (9.99 *. float_of_int quantity) +. Stats.Rng.float_range rng (-5.0) 5.0
  in
  Tuple.make
    [
      Value.Int i;
      Value.Int (1 + Stats.Rng.int rng cfg.customers);
      Value.Date order;
      Value.Date (Date.add_days order delay);
      Value.Float amount;
      Value.Int quantity;
      Value.String (Stats.Rng.pick rng regions);
    ]

(* Load into [db]; creates the table, its PK (enforced, index-backed) and
   an index on order_date — but deliberately NO index on ship_date, which
   is the access-path asymmetry the paper's example turns on. *)
let load ?(config = default_config) db =
  ignore (Database.create_table db schema);
  Database.add_constraint db
    (Icdef.make ~name:"purchase_pk" ~table:"purchase"
       (Icdef.Primary_key [ "id" ]));
  ignore
    (Database.create_index db ~name:"purchase_id_idx" ~table:"purchase"
       ~columns:[ "id" ] ~unique:true ());
  ignore
    (Database.create_index db ~name:"purchase_order_date_idx"
       ~table:"purchase" ~columns:[ "order_date" ] ());
  let rng = Stats.Rng.create config.seed in
  for i = 1 to config.rows do
    ignore (Database.insert db ~table:"purchase" (row_of rng config i))
  done

(* A stream of further inserts (for staleness/maintenance experiments):
   [violating] controls the fraction shipped late. *)
let insert_batch ?(violating = 0.0) ~rng ~start_id ~count db =
  for i = start_id to start_id + count - 1 do
    let order =
      Date.add_days base_date (Stats.Rng.int rng default_config.days)
    in
    let late = Stats.Rng.coin rng violating in
    let delay =
      if late then 22 + Stats.Rng.int rng 69 else Stats.Rng.int rng 22
    in
    let quantity = 1 + Stats.Rng.int rng 50 in
    let amount =
      (9.99 *. float_of_int quantity) +. Stats.Rng.float_range rng (-5.0) 5.0
    in
    ignore
      (Database.insert db ~table:"purchase"
         (Tuple.make
            [
              Value.Int i;
              Value.Int (1 + Stats.Rng.int rng default_config.customers);
              Value.Date order;
              Value.Date (Date.add_days order delay);
              Value.Float amount;
              Value.Int quantity;
              Value.String (Stats.Rng.pick rng regions);
            ]))
  done
