(* An APB-1-like OLAP star schema — the other benchmark family the paper's
   companion work [6] evaluated on.  Dimensions carry the hierarchies
   APB-1 is known for, and hierarchies are exactly functional
   dependencies (sku → class → group → family; day → month → quarter →
   year), which makes this the natural stress workload for FD mining and
   FD-based group-by/order-by simplification. *)

open Rel

type config = {
  skus : int;
  classes : int;
  groups : int;
  days : int;
  customers : int;
  facts : int;
  seed : int;
}

let default_config =
  {
    skus = 1_000;
    classes = 100;
    groups = 20;
    days = 365;
    customers = 200;
    facts = 20_000;
    seed = 51;
  }

let base_day = Date.of_ymd 1999 1 1

let create_schema db =
  ignore
    (Database.create_table db
       (Schema.make "product"
          [
            Schema.column ~nullable:false "sku" Value.TInt;
            Schema.column ~nullable:false "class" Value.TInt;
            Schema.column ~nullable:false "pgroup" Value.TInt;
            Schema.column ~nullable:false "family" Value.TInt;
            Schema.column ~nullable:false "pname" Value.TString;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "timedim"
          [
            Schema.column ~nullable:false "day" Value.TDate;
            Schema.column ~nullable:false "month" Value.TInt;
            Schema.column ~nullable:false "quarter" Value.TInt;
            Schema.column ~nullable:false "year" Value.TInt;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "sales"
          [
            Schema.column ~nullable:false "sku" Value.TInt;
            Schema.column ~nullable:false "day" Value.TDate;
            Schema.column ~nullable:false "customer" Value.TInt;
            Schema.column ~nullable:false "units" Value.TInt;
            Schema.column ~nullable:false "dollars" Value.TFloat;
          ]));
  List.iter
    (fun (name, table, cols) ->
      Database.add_constraint db
        (Icdef.make ~name ~table (Icdef.Primary_key cols));
      ignore
        (Database.create_index db ~name:(name ^ "_idx") ~table ~columns:cols
           ~unique:true ()))
    [ ("product_pk", "product", [ "sku" ]); ("timedim_pk", "timedim", [ "day" ]) ];
  List.iter
    (fun (name, table, cols, ref_table, ref_cols) ->
      Database.add_constraint db
        (Icdef.make ~enforcement:Icdef.Informational ~name ~table
           (Icdef.Foreign_key
              { columns = cols; ref_table; ref_columns = ref_cols })))
    [
      ("sales_product_fk", "sales", [ "sku" ], "product", [ "sku" ]);
      ("sales_time_fk", "sales", [ "day" ], "timedim", [ "day" ]);
    ];
  ignore
    (Database.create_index db ~name:"sales_day_idx" ~table:"sales"
       ~columns:[ "day" ] ())

let load ?(config = default_config) db =
  create_schema db;
  let rng = Stats.Rng.create config.seed in
  (* the product hierarchy: sku -> class -> group -> family, deterministic
     so the FDs hold exactly *)
  for sku = 1 to config.skus do
    let cls = sku mod config.classes in
    let grp = cls mod config.groups in
    let fam = grp mod 5 in
    ignore
      (Database.insert db ~table:"product"
         (Tuple.make
            [
              Value.Int sku;
              Value.Int cls;
              Value.Int grp;
              Value.Int fam;
              Value.String (Printf.sprintf "product%04d" sku);
            ]))
  done;
  for d = 0 to config.days - 1 do
    let day = Date.add_days base_day d in
    let _, m, _ = Date.to_ymd day in
    ignore
      (Database.insert db ~table:"timedim"
         (Tuple.make
            [
              Value.Date day;
              Value.Int m;
              Value.Int (((m - 1) / 3) + 1);
              Value.Int (Date.year day);
            ]))
  done;
  for _ = 1 to config.facts do
    let units = 1 + Stats.Rng.int rng 20 in
    ignore
      (Database.insert db ~table:"sales"
         (Tuple.make
            [
              Value.Int (1 + Stats.Rng.int rng config.skus);
              Value.Date (Date.add_days base_day (Stats.Rng.int rng config.days));
              Value.Int (1 + Stats.Rng.int rng config.customers);
              Value.Int units;
              Value.Float (float_of_int units *. Stats.Rng.float_range rng 5.0 50.0);
            ]))
  done

(* OLAP queries whose GROUP BY / ORDER BY lists carry hierarchy-redundant
   columns — the FD-simplification targets. *)
let rollup_by_class_and_group =
  "SELECT p.class, p.pgroup, COUNT(*) AS n, SUM(s.units) AS units FROM \
   sales s, product p WHERE s.sku = p.sku GROUP BY p.class, p.pgroup ORDER \
   BY p.class"

let order_by_day_and_month =
  "SELECT t.day, t.month, t.quarter FROM timedim t ORDER BY t.day, t.month, \
   t.quarter"

let monthly_revenue =
  "SELECT t.month, SUM(s.dollars) AS revenue FROM sales s, timedim t WHERE \
   s.day = t.day GROUP BY t.month ORDER BY t.month"

let queries =
  [ rollup_by_class_and_group; order_by_day_and_month; monthly_revenue ]
