(** The paper's running example (§4.4): a [purchase] table where "for 99%
    of tuples, the ship date is between the order date and three weeks
    later" — with a small population of late shipments for the exception
    table to track, plus amount/quantity columns for correlation and
    grouping workloads.

    Columns: [id INT] (PK), [customer INT], [order_date DATE NOT NULL]
    (indexed), [ship_date DATE] (deliberately {e not} indexed — the
    access-path asymmetry the example turns on), [amount FLOAT]
    (linearly correlated with quantity), [quantity INT],
    [region VARCHAR]. *)

open Rel

type config = {
  rows : int;
  days : int;  (** order_date spread *)
  late_fraction : float;  (** fraction shipped later than 21 days *)
  customers : int;
  seed : int;
}

val default_config : config
(** 20k rows over 1999, 1% late. *)

val base_date : Date.t
(** 1999-01-01. *)

val schema : Schema.t

val load : ?config:config -> Database.t -> unit
(** Create the table, PK (enforced, index-backed) and the order_date
    index, and populate it deterministically. *)

val insert_batch :
  ?violating:float -> rng:Stats.Rng.t -> start_id:int -> count:int ->
  Database.t -> unit
(** A stream of further inserts for staleness / maintenance experiments;
    [violating] is the fraction shipped late. *)
