(** A scaled-down TPC-D-like star schema — the workload family of the
    experiments in [6] (paper §2): region → nation → customer → orders →
    lineitem with declared referential integrity and check constraints,
    so join elimination and predicate introduction have the same raw
    material the original evaluation used.

    Also builds the §5 union-all scenario: twelve monthly [sales_mm]
    tables, each carrying a CHECK constraint confining sale_date to its
    month, queried through a 12-branch UNION ALL. *)

open Rel

type config = {
  customers : int;
  orders : int;
  lineitems_per_order : int;  (** average; actual 1..2× *)
  sales_rows : int;  (** per monthly sales table *)
  seed : int;
}

val default_config : config

val create_schema : ?fk_enforcement:Icdef.enforcement -> Database.t -> unit
(** Tables, keys (index-backed), RI and check constraints.
    [fk_enforcement] defaults to [Informational] — the paper's
    data-warehouse loader scenario (§1); experiment E10 compares it with
    [Enforced]. *)

val load_rows : ?config:config -> Database.t -> int
(** Populate deterministically; returns the lineitem count. *)

val load : ?config:config -> Database.t -> unit
(** {!create_schema} + {!load_rows}. *)

val month_table : int -> string
(** ["sales_01"] … ["sales_12"]. *)

val sales_year : int

val create_sales : ?config:config -> Database.t -> unit

val sales_union_sql : date_lo:Date.t -> date_hi:Date.t -> string
(** The 12-branch UNION ALL query over a date range. *)
