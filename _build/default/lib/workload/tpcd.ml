(* A scaled-down TPC-D-like star schema — the workload family of the
   experiments in [6] (paper §2): region → nation → customer → orders →
   lineitem with declared referential integrity and check constraints, so
   join elimination and predicate introduction have the same raw material
   the original evaluation used.

   Also builds the §5 union-all scenario: twelve monthly [sales_<mm>]
   tables, each carrying a CHECK constraint confining sale_date to its
   month, queried through a 12-branch UNION ALL. *)

open Rel

type config = {
  customers : int;
  orders : int;
  lineitems_per_order : int; (* average; actual 1..2x *)
  sales_rows : int; (* per monthly sales table *)
  seed : int;
}

let default_config =
  {
    customers = 1_000;
    orders = 5_000;
    lineitems_per_order = 3;
    sales_rows = 400;
    seed = 23;
  }

let region_names = [| "africa"; "america"; "asia"; "europe"; "mideast" |]

let order_base = Date.of_ymd 1998 1 1
let order_days = 730

let statuses = [| "O"; "F"; "P" |]

(* [fk_enforcement] selects whether referential integrity and check
   constraints are checked on load or merely declared — experiment E10
   compares the two (paper §1's data-warehouse loader scenario). *)
let create_schema ?(fk_enforcement = Icdef.Informational) db =
  ignore
    (Database.create_table db
       (Schema.make "region"
          [
            Schema.column ~nullable:false "r_regionkey" Value.TInt;
            Schema.column ~nullable:false "r_name" Value.TString;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "nation"
          [
            Schema.column ~nullable:false "n_nationkey" Value.TInt;
            Schema.column ~nullable:false "n_name" Value.TString;
            Schema.column ~nullable:false "n_regionkey" Value.TInt;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "customer"
          [
            Schema.column ~nullable:false "c_custkey" Value.TInt;
            Schema.column ~nullable:false "c_name" Value.TString;
            Schema.column ~nullable:false "c_nationkey" Value.TInt;
            Schema.column ~nullable:false "c_acctbal" Value.TFloat;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "orders"
          [
            Schema.column ~nullable:false "o_orderkey" Value.TInt;
            Schema.column ~nullable:false "o_custkey" Value.TInt;
            Schema.column ~nullable:false "o_orderdate" Value.TDate;
            Schema.column ~nullable:false "o_totalprice" Value.TFloat;
            Schema.column ~nullable:false "o_orderstatus" Value.TString;
          ]));
  ignore
    (Database.create_table db
       (Schema.make "lineitem"
          [
            Schema.column ~nullable:false "l_orderkey" Value.TInt;
            Schema.column ~nullable:false "l_linenumber" Value.TInt;
            Schema.column ~nullable:false "l_quantity" Value.TInt;
            Schema.column ~nullable:false "l_extendedprice" Value.TFloat;
            Schema.column ~nullable:false "l_shipdate" Value.TDate;
            Schema.column ~nullable:false "l_receiptdate" Value.TDate;
          ]));
  (* keys *)
  List.iter
    (fun (name, table, cols) ->
      Database.add_constraint db
        (Icdef.make ~name ~table (Icdef.Primary_key cols));
      ignore
        (Database.create_index db
           ~name:(table ^ "_pk_idx_" ^ String.concat "_" cols)
           ~table ~columns:cols ~unique:true ()))
    [
      ("region_pk", "region", [ "r_regionkey" ]);
      ("nation_pk", "nation", [ "n_nationkey" ]);
      ("customer_pk", "customer", [ "c_custkey" ]);
      ("orders_pk", "orders", [ "o_orderkey" ]);
    ];
  Database.add_constraint db
    (Icdef.make ~name:"lineitem_pk" ~table:"lineitem"
       (Icdef.Primary_key [ "l_orderkey"; "l_linenumber" ]));
  ignore
    (Database.create_index db ~name:"lineitem_pk_idx" ~table:"lineitem"
       ~columns:[ "l_orderkey"; "l_linenumber" ] ~unique:true ());
  (* referential integrity — informational by default: loader-verified, as
     in the paper's data-warehouse scenario (§1) *)
  List.iter
    (fun (name, table, cols, ref_table, ref_cols) ->
      Database.add_constraint db
        (Icdef.make ~enforcement:fk_enforcement ~name ~table
           (Icdef.Foreign_key
              { columns = cols; ref_table; ref_columns = ref_cols })))
    [
      ("nation_region_fk", "nation", [ "n_regionkey" ], "region",
       [ "r_regionkey" ]);
      ("customer_nation_fk", "customer", [ "c_nationkey" ], "nation",
       [ "n_nationkey" ]);
      ("orders_customer_fk", "orders", [ "o_custkey" ], "customer",
       [ "c_custkey" ]);
      ("lineitem_orders_fk", "lineitem", [ "l_orderkey" ], "orders",
       [ "o_orderkey" ]);
    ];
  (* benchmark-style check constraints *)
  Database.add_constraint db
    (Icdef.make ~enforcement:fk_enforcement ~name:"lineitem_qty_check"
       ~table:"lineitem"
       (Icdef.Check
          (Expr.Between
             (Expr.column "l_quantity", Expr.int 1, Expr.int 50))));
  (* secondary indexes *)
  ignore
    (Database.create_index db ~name:"orders_custkey_idx" ~table:"orders"
       ~columns:[ "o_custkey" ] ());
  ignore
    (Database.create_index db ~name:"orders_orderdate_idx" ~table:"orders"
       ~columns:[ "o_orderdate" ] ());
  ignore
    (Database.create_index db ~name:"lineitem_orderkey_idx" ~table:"lineitem"
       ~columns:[ "l_orderkey" ] ());
  ignore
    (Database.create_index db ~name:"lineitem_receipt_idx" ~table:"lineitem"
       ~columns:[ "l_receiptdate" ] ())

let load_rows ?(config = default_config) db =
  let rng = Stats.Rng.create config.seed in
  Array.iteri
    (fun i name ->
      ignore
        (Database.insert db ~table:"region"
           (Tuple.make [ Value.Int i; Value.String name ])))
    region_names;
  for n = 0 to 24 do
    ignore
      (Database.insert db ~table:"nation"
         (Tuple.make
            [
              Value.Int n;
              Value.String (Printf.sprintf "nation%02d" n);
              Value.Int (n mod 5);
            ]))
  done;
  for c = 1 to config.customers do
    ignore
      (Database.insert db ~table:"customer"
         (Tuple.make
            [
              Value.Int c;
              Value.String (Printf.sprintf "customer%05d" c);
              Value.Int (Stats.Rng.int rng 25);
              Value.Float (Stats.Rng.float_range rng (-999.0) 9999.0);
            ]))
  done;
  let lineitem_count = ref 0 in
  for o = 1 to config.orders do
    let odate = Date.add_days order_base (Stats.Rng.int rng order_days) in
    let nlines = 1 + Stats.Rng.int rng (2 * config.lineitems_per_order) in
    let total = ref 0.0 in
    let lines =
      List.init nlines (fun ln ->
          let qty = 1 + Stats.Rng.int rng 50 in
          let price = float_of_int qty *. Stats.Rng.float_range rng 900. 1100. in
          total := !total +. price;
          let ship = Date.add_days odate (1 + Stats.Rng.int rng 60) in
          let receipt = Date.add_days ship (1 + Stats.Rng.int rng 30) in
          Tuple.make
            [
              Value.Int o;
              Value.Int (ln + 1);
              Value.Int qty;
              Value.Float price;
              Value.Date ship;
              Value.Date receipt;
            ])
    in
    ignore
      (Database.insert db ~table:"orders"
         (Tuple.make
            [
              Value.Int o;
              Value.Int (1 + Stats.Rng.int rng config.customers);
              Value.Date odate;
              Value.Float !total;
              Value.String (Stats.Rng.pick rng statuses);
            ]));
    List.iter
      (fun row ->
        incr lineitem_count;
        ignore (Database.insert db ~table:"lineitem" row))
      lines
  done;
  !lineitem_count

let load ?config db =
  create_schema db;
  ignore (load_rows ?config db)

(* ---- the union-all monthly partition scenario (paper §5) ----------------- *)

let month_table m = Printf.sprintf "sales_%02d" m

let sales_year = 1999

let create_sales ?(config = default_config) db =
  let rng = Stats.Rng.create (config.seed + 1) in
  for m = 1 to 12 do
    let name = month_table m in
    ignore
      (Database.create_table db
         (Schema.make name
            [
              Schema.column ~nullable:false "sale_id" Value.TInt;
              Schema.column ~nullable:false "sale_date" Value.TDate;
              Schema.column ~nullable:false "amount" Value.TFloat;
              Schema.column ~nullable:false "store" Value.TInt;
            ]));
    (* the branch constraint: this month's range *)
    Database.add_constraint db
      (Icdef.make ~enforcement:Icdef.Informational
         ~name:(name ^ "_month_check") ~table:name
         (Icdef.Check
            (Expr.Between
               ( Expr.column "sale_date",
                 Expr.date (Date.first_of_month ~year:sales_year ~month:m),
                 Expr.date (Date.last_of_month ~year:sales_year ~month:m) ))));
    let first = Date.first_of_month ~year:sales_year ~month:m in
    let ndays = Date.days_in_month ~year:sales_year ~month:m in
    for i = 1 to config.sales_rows do
      ignore
        (Database.insert db ~table:name
           (Tuple.make
              [
                Value.Int ((m * 1_000_000) + i);
                Value.Date (Date.add_days first (Stats.Rng.int rng ndays));
                Value.Float (Stats.Rng.float_range rng 1.0 500.0);
                Value.Int (1 + Stats.Rng.int rng 20);
              ]))
    done
  done

(* the 12-branch UNION ALL view text over a date range *)
let sales_union_sql ~date_lo ~date_hi =
  let branch m =
    Printf.sprintf
      "(SELECT sale_id, sale_date, amount, store FROM %s WHERE sale_date \
       BETWEEN DATE '%s' AND DATE '%s')"
      (month_table m) (Date.to_string date_lo) (Date.to_string date_hi)
  in
  String.concat " UNION ALL " (List.init 12 (fun i -> branch (i + 1)))
