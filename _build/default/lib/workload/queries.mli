(** Query suites for the experiments: SQL text shared by benches, tests
    and examples. *)

open Rel

val join_elimination_suite : string list
(** E1: FK joins whose parent contributes nothing but its key. *)

val join_elimination_negative : string
(** Control: the parent's columns {e are} used. *)

val purchase_ship_eq : Date.t -> string
val purchase_ship_range : Date.t -> Date.t -> string

val project_active_on : Date.t -> string
(** The paper's "projects active on a given day" (E4). *)

val project_completed_within : int -> string

val fd_order_by : string
val fd_group_by : string

val advisor_workload : string list

val parse : string -> Sqlfe.Ast.query
