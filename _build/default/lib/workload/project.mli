(** The paper's §5 example: a [project] table with start_date / end_date
    where most durations are short, so predicates on both dates are
    heavily correlated and the independence assumption under-estimates
    badly — the motivating case for SSC twinning. *)

open Rel

type config = {
  rows : int;
  days : int;  (** start_date spread *)
  max_days : int;  (** duration bound for the bulk of projects *)
  long_fraction : float;  (** projects running longer than [max_days] *)
  seed : int;
}

val default_config : config
(** 10k rows, 90% within 5 days. *)

val base_date : Date.t
val schema : Schema.t

val load : ?config:config -> Database.t -> unit

val active_on : Database.t -> Date.t -> int
(** Ground truth for experiment E4: projects with
    [start_date ≤ d ≤ end_date]. *)
