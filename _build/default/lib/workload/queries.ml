(* Query suites for the experiments: each returns SQL text so benches,
   tests and examples share exactly the same statements. *)

open Rel

(* E1: FK joins where the parent contributes nothing but its key —
   join-eliminable under referential integrity. *)
let join_elimination_suite =
  [
    (* orders ⋈ customer, customer unused beyond the key *)
    "SELECT o.o_orderkey, o.o_totalprice FROM orders o, customer c WHERE \
     o.o_custkey = c.c_custkey AND o.o_totalprice > 100000";
    (* lineitem ⋈ orders, orders unused *)
    "SELECT l.l_orderkey, l.l_quantity FROM lineitem l, orders o WHERE \
     l.l_orderkey = o.o_orderkey AND l.l_quantity >= 49";
    (* three-way chain: both parents eliminable *)
    "SELECT l.l_extendedprice FROM lineitem l, orders o, customer c WHERE \
     l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND \
     l.l_quantity = 50";
  ]

(* a control: the parent's columns ARE used, so elimination must not fire *)
let join_elimination_negative =
  "SELECT o.o_orderkey, c.c_name FROM orders o, customer c WHERE \
   o.o_custkey = c.c_custkey AND o.o_totalprice > 100000"

(* E2: the [10] pattern — predicate on the un-indexed column of a
   correlated pair (amount has no index; quantity neither, but amount is
   predicted by quantity... the exploitable direction is a predicate on
   quantity introducing a range on an indexed amount).  For the purchase
   table the indexed column is order_date and the correlated pair is
   (order_date, ship_date) via the diff band. *)
let purchase_ship_eq day =
  Printf.sprintf "SELECT * FROM purchase WHERE ship_date = DATE '%s'"
    (Date.to_string day)

let purchase_ship_range lo hi =
  Printf.sprintf
    "SELECT * FROM purchase WHERE ship_date BETWEEN DATE '%s' AND DATE '%s'"
    (Date.to_string lo) (Date.to_string hi)

(* E4: the paper's cardinality example — projects active on a day *)
let project_active_on day =
  Printf.sprintf
    "SELECT * FROM project WHERE start_date <= DATE '%s' AND end_date >= \
     DATE '%s'"
    (Date.to_string day) (Date.to_string day)

let project_completed_within days =
  Printf.sprintf
    "SELECT * FROM project WHERE end_date - start_date <= %d" days

(* E8: group/order with FD-redundant columns; in purchase, region is
   functionally determined by customer iff each customer buys in one
   region — we mine the real FDs instead of assuming.  The classic case
   uses the TPC-D nation table: n_nationkey -> n_name. *)
let fd_order_by =
  "SELECT n.n_nationkey, n.n_name FROM nation n ORDER BY n.n_nationkey, \
   n.n_name"

let fd_group_by =
  "SELECT n.n_nationkey, n.n_name, COUNT(*) AS cnt FROM customer c, nation \
   n WHERE c.c_nationkey = n.n_nationkey GROUP BY n.n_nationkey, n.n_name"

(* E12: a mixed advisor workload over purchase + project *)
let advisor_workload =
  [
    "SELECT * FROM purchase WHERE ship_date = DATE '1999-06-15'";
    "SELECT * FROM purchase WHERE ship_date BETWEEN DATE '1999-03-01' AND \
     DATE '1999-03-07'";
    "SELECT * FROM project WHERE start_date <= DATE '1998-09-01' AND \
     end_date >= DATE '1998-09-01'";
    "SELECT * FROM purchase WHERE amount > 480 AND quantity >= 48";
  ]

let parse sql = Sqlfe.Parser.parse_query_string sql
