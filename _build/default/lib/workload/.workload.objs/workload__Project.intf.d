lib/workload/project.mli: Database Date Rel Schema
