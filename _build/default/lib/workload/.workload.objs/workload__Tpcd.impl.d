lib/workload/tpcd.ml: Array Database Date Expr Icdef List Printf Rel Schema Stats String Tuple Value
