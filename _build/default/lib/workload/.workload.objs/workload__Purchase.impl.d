lib/workload/purchase.ml: Database Date Icdef Rel Schema Stats Tuple Value
