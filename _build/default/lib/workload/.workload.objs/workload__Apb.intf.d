lib/workload/apb.mli: Database Date Rel
