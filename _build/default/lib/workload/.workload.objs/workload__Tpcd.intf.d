lib/workload/tpcd.mli: Database Date Icdef Rel
