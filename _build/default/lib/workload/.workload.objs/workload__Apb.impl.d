lib/workload/apb.ml: Database Date Icdef List Printf Rel Schema Stats Tuple Value
