lib/workload/purchase.mli: Database Date Rel Schema Stats
