lib/workload/queries.mli: Date Rel Sqlfe
