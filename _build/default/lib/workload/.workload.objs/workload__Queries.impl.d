lib/workload/queries.ml: Date Printf Rel Sqlfe
