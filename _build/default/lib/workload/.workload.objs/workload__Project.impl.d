lib/workload/project.ml: Database Date Icdef Rel Schema Stats Table Tuple Value
