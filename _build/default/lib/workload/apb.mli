(** An APB-1-like OLAP star schema — the other benchmark family the
    paper's companion work [6] evaluated on.  Dimension tables carry the
    hierarchies APB-1 is known for, and hierarchies are exactly
    functional dependencies (sku → class → group → family; day → month →
    quarter → year), making this the natural stress workload for FD
    mining and FD-based group-by/order-by simplification. *)

open Rel

type config = {
  skus : int;
  classes : int;
  groups : int;
  days : int;
  customers : int;
  facts : int;
  seed : int;
}

val default_config : config

val base_day : Date.t

val load : ?config:config -> Database.t -> unit
(** Create and populate [product], [timedim] and [sales] with exact
    hierarchy FDs. *)

(** {1 Queries with hierarchy-redundant GROUP BY / ORDER BY lists} *)

val rollup_by_class_and_group : string
val order_by_day_and_month : string
val monthly_revenue : string
val queries : string list
