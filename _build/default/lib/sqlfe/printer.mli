(** SQL pretty-printer: renders ASTs back to parseable text.  The property
    test [print ∘ parse ∘ print = print] keeps it honest. *)

val pp_query : Format.formatter -> Ast.query -> unit
val query_to_string : Ast.query -> string

val pp_statement : Format.formatter -> Ast.statement -> unit
val statement_to_string : Ast.statement -> string
