lib/sqlfe/lexer.ml: Buffer Hashtbl List Printf String
