lib/sqlfe/parser.mli: Ast Rel
