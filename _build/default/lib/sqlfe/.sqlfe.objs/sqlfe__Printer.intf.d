lib/sqlfe/printer.mli: Ast Format
