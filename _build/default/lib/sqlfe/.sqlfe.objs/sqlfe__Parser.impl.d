lib/sqlfe/parser.ml: Array Ast Date Expr Icdef Lexer List Option Printf Rel String Value
