lib/sqlfe/ast.ml: Expr Icdef List Rel Value
