lib/sqlfe/lexer.mli:
