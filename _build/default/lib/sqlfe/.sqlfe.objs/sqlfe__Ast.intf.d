lib/sqlfe/ast.mli: Expr Icdef Rel Value
