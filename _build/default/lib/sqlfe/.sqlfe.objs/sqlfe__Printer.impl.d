lib/sqlfe/printer.ml: Ast Expr Fmt Icdef Rel Value
