(** Hand-written SQL lexer.

    Keywords are case-insensitive (exposed uppercase); identifiers keep
    their spelling.  String literals use single quotes with [''] escaping;
    [--] starts a line comment. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | KW of string  (** uppercase keyword *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ  (** [<>] or [!=] *)
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int
(** Message and byte position. *)

val tokenize : string -> token list
(** The full token stream, ending with [EOF]. *)

val string_of_token : token -> string
(** For error messages. *)
