(** Recursive-descent parser for the SQL subset (see {!Ast} for what is
    representable).

    Notable syntax beyond vanilla SQL-92 queries/DDL/DML:
    - constraint modes: [NOT ENFORCED] (informational),
      [SOFT [CONFIDENCE c]] (soft constraints, paper §3);
    - [CREATE EXCEPTION TABLE t FOR CONSTRAINT c] (ASC-as-AST, §4.4);
    - [RUNSTATS [table]];
    - [EXPLAIN query];
    - [DATE 'YYYY-MM-DD'] literals and a tolerated [n DAYS] unit noise. *)

exception Parse_error of string

val parse_statement : string -> Ast.statement
(** One statement, optionally [;]-terminated; raises {!Parse_error} (or
    {!Lexer.Lex_error}) on bad input, including trailing garbage. *)

val parse_query_string : string -> Ast.query
(** Like {!parse_statement} but requires a SELECT / UNION ALL query. *)

val parse_script : string -> Ast.statement list
(** A [;]-separated sequence of statements. *)

val parse_pred_string : string -> Rel.Expr.pred
(** A bare predicate, for tests and tools. *)
