(** Reservoir sampling (Vitter's algorithm R): a uniform fixed-size sample
    of a stream of unknown length.  RUNSTATS feeds table scans through
    this to bound histogram construction cost on large tables. *)

type 'a t

val create : ?seed:int -> int -> 'a t
(** [create capacity]; raises [Invalid_argument] when
    [capacity <= 0]. *)

val offer : 'a t -> 'a -> unit
val seen : 'a t -> int
val size : 'a t -> int

val to_list : 'a t -> 'a list
(** The current sample, at most [capacity] elements. *)

val of_iter : ?seed:int -> capacity:int -> (('a -> unit) -> unit) -> 'a t
(** One-shot convenience over an iterator. *)
