(** RUNSTATS: build and cache per-table statistics, as DB2's utility of
    the same name does.  Each snapshot remembers the table's mutation
    counter at collection time, which the soft-constraint currency model
    (paper §3.3) compares against to bound drift. *)

open Rel

type table_stats = {
  table : string;
  cardinality : int;
  collected_at_mutations : int;
  columns : (string * Col_stats.t) list;
}

type t

val create : unit -> t

val collect : ?histogram_buckets:int -> ?sample:int -> Table.t -> table_stats
(** Build statistics without caching; [sample] bounds the rows inspected
    for histograms (cardinality is still exact). *)

val runstats : ?histogram_buckets:int -> ?sample:int -> t -> Table.t ->
  table_stats
(** Collect and cache. *)

val runstats_all : ?histogram_buckets:int -> ?sample:int -> t -> Database.t ->
  unit

val find : t -> string -> table_stats option

val column_stats : t -> table:string -> column:string -> Col_stats.t option

val staleness : t -> Table.t -> int
(** Mutations the table has absorbed since its snapshot (the table's full
    mutation count when no snapshot exists). *)

val pp_table_stats : Format.formatter -> table_stats -> unit
