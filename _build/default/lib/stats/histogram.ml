(* Equi-depth histograms over column values, the workhorse of selectivity
   estimation (paper §5: "frequency and histogram statistics").

   A histogram is built from a sorted multiset of non-null values.  Bucket
   [i] covers (lo_i, hi_i] (the first bucket includes its lower bound) and
   records its row count and distinct count.  Estimation interpolates
   uniformly within a bucket. *)

open Rel

type bucket = {
  lo : Value.t; (* exclusive, except for the very first bucket *)
  hi : Value.t; (* inclusive *)
  count : int;
  distinct : int;
}

type t = {
  buckets : bucket array;
  total : int; (* non-null rows represented *)
}

let empty = { buckets = [||]; total = 0 }

let total t = t.total
let buckets t = Array.to_list t.buckets

(* [values] need not be sorted; nulls must already be excluded. *)
let build ?(buckets = 32) values =
  let values = List.filter (fun v -> not (Value.is_null v)) values in
  let arr = Array.of_list values in
  Array.sort Value.compare_total arr;
  let n = Array.length arr in
  if n = 0 then empty
  else begin
    let nbuckets = max 1 (min buckets n) in
    let out = ref [] in
    let start = ref 0 in
    for b = 0 to nbuckets - 1 do
      (* target end index for bucket b (equi-depth) *)
      let stop = ref (n * (b + 1) / nbuckets) in
      if !stop > !start then begin
        (* extend so equal values never straddle buckets *)
        while
          !stop < n && Value.equal_total arr.(!stop - 1) arr.(!stop)
        do
          incr stop
        done;
        let lo = if !start = 0 then arr.(0) else arr.(!start - 1) in
        let hi = arr.(!stop - 1) in
        let distinct = ref 1 in
        for i = !start + 1 to !stop - 1 do
          if not (Value.equal_total arr.(i - 1) arr.(i)) then incr distinct
        done;
        out := { lo; hi; count = !stop - !start; distinct = !distinct } :: !out;
        start := !stop
      end
    done;
    { buckets = Array.of_list (List.rev !out); total = n }
  end

let min_value t =
  if Array.length t.buckets = 0 then None else Some t.buckets.(0).lo

let max_value t =
  let n = Array.length t.buckets in
  if n = 0 then None else Some t.buckets.(n - 1).hi

(* Numeric position of a value for interpolation; strings hash-order by
   first bytes, dates/ints/floats use their natural magnitude. *)
let position v =
  match v with
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Date d -> float_of_int d
  | Value.Bool b -> if b then 1.0 else 0.0
  | Value.String s ->
      let acc = ref 0.0 in
      for i = 0 to min 7 (String.length s - 1) do
        acc := (!acc *. 256.0) +. float_of_int (Char.code s.[i])
      done;
      for _ = String.length s to 7 do
        acc := !acc *. 256.0
      done;
      !acc
  | Value.Null -> 0.0

(* fraction of bucket [b] estimated to satisfy "value <= v" *)
let bucket_fraction_le b v =
  let c = Value.compare_total v b.lo in
  if c < 0 then 0.0
  else if Value.compare_total v b.hi >= 0 then 1.0
  else
    let lo = position b.lo and hi = position b.hi and x = position v in
    if hi <= lo then 1.0 else max 0.0 (min 1.0 ((x -. lo) /. (hi -. lo)))

(* Estimated number of rows with value <= v (over represented rows). *)
let rows_le t v =
  Array.fold_left
    (fun acc b -> acc +. (float_of_int b.count *. bucket_fraction_le b v))
    0.0 t.buckets

let rows_lt t v =
  (* approximate: subtract the estimated equality mass *)
  let le = rows_le t v in
  let eq = ref 0.0 in
  Array.iter
    (fun b ->
      if
        Value.compare_total v b.lo >= 0 && Value.compare_total v b.hi <= 0
        && b.distinct > 0
      then eq := max !eq (float_of_int b.count /. float_of_int b.distinct))
    t.buckets;
  max 0.0 (le -. !eq)

let rows_eq t v =
  let hit = ref 0.0 in
  Array.iter
    (fun b ->
      let in_bucket =
        (Value.compare_total v b.hi <= 0)
        && (Value.compare_total v b.lo > 0
           || Value.equal_total v b.lo)
      in
      if in_bucket && b.distinct > 0 then
        hit := max !hit (float_of_int b.count /. float_of_int b.distinct))
    t.buckets;
  !hit

(* Selectivity of range lo..hi (either side optional / exclusive). *)
let rows_range t ?lo ?hi () =
  let upper =
    match hi with
    | None -> float_of_int t.total
    | Some (v, `Incl) -> rows_le t v
    | Some (v, `Excl) -> rows_lt t v
  in
  let lower =
    match lo with
    | None -> 0.0
    | Some (v, `Incl) -> rows_lt t v
    | Some (v, `Excl) -> rows_le t v
  in
  max 0.0 (upper -. lower)

let selectivity_range t ?lo ?hi () =
  if t.total = 0 then 0.0 else rows_range t ?lo ?hi () /. float_of_int t.total

let selectivity_eq t v =
  if t.total = 0 then 0.0 else rows_eq t v /. float_of_int t.total

let pp ppf t =
  Fmt.pf ppf "histogram(%d rows, %d buckets)" t.total (Array.length t.buckets);
  Array.iter
    (fun b ->
      Fmt.pf ppf "@.  (%a, %a]: n=%d d=%d" Value.pp b.lo Value.pp b.hi b.count
        b.distinct)
    t.buckets
