(* SplitMix64: a small, fast, high-quality deterministic PRNG.  Every
   random choice in the system (data generation, sampling, property-test
   fixtures) flows through this so experiments reproduce bit-identically
   across runs and machines. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform in [0, bound) *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* uniform in [lo, hi] inclusive *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

(* uniform in [0, 1) with 53 bits of precision *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. (float t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bernoulli with probability [p] *)
let coin t p = float t < p

(* standard normal via Box–Muller *)
let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* exponential with mean [mean] *)
let exponential t ~mean =
  let rec nonzero () =
    let u = float t in
    if u <= 1e-300 then nonzero () else u
  in
  -.mean *. log (nonzero ())

(* Zipf over {1..n} with exponent [s], via inverse-CDF table walk
   (n is expected small: distinct-value domains). *)
let zipf_table n s =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cum.(i) <- !acc)
    weights;
  cum

let zipf t cum =
  let u = float t in
  let n = Array.length cum in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cum.(mid) < u then bsearch (mid + 1) hi else bsearch lo mid
  in
  1 + bsearch 0 (n - 1)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

(* derive an independent stream (for parallel generators) *)
let split t = create (Int64.to_int (next_int64 t))
