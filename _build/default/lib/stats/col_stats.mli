(** Per-column catalog statistics, matching the classes the paper lists in
    §5: "the number of distinct values, high and low values, frequency and
    histogram statistics". *)

open Rel

type frequent = { value : Value.t; count : int }

type t = {
  column : string;
  row_count : int;  (** rows inspected *)
  null_count : int;
  distinct : int;  (** among non-null values *)
  low : Value.t option;
  high : Value.t option;
  frequent : frequent list;  (** top-k most frequent non-null values *)
  histogram : Histogram.t;
}

val build :
  ?histogram_buckets:int -> ?frequent_k:int -> column:string ->
  Value.t list -> t

val null_fraction : t -> float

(** {1 Selectivity primitives}

    Fractions of {e all} rows; null rows never qualify, as in SQL. *)

val sel_eq : t -> Value.t -> float
(** Frequent values answer exactly; otherwise the histogram; otherwise
    1/ndv. *)

val sel_range :
  t -> ?lo:Value.t * [ `Excl | `Incl ] -> ?hi:Value.t * [ `Excl | `Incl ] ->
  unit -> float

val sel_is_null : t -> float

val pp : Format.formatter -> t -> unit
