(** SplitMix64: a small, fast, high-quality deterministic PRNG.

    Every random choice in the system (data generation, sampling,
    property-test fixtures) flows through this so experiments reproduce
    bit-identically across runs and machines. *)

type t

val create : int -> t
(** Seeded stream; equal seeds produce equal streams. *)

val copy : t -> t

val next_int64 : t -> int64
(** The raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound]: uniform in [0, bound); raises [Invalid_argument] when
    [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1) with 53 bits of precision. *)

val float_range : t -> float -> float -> float

val bool : t -> bool

val coin : t -> float -> bool
(** Bernoulli with probability [p]. *)

val gaussian : t -> float
(** Standard normal (Box–Muller). *)

val exponential : t -> mean:float -> float

val zipf_table : int -> float -> float array
(** Cumulative table for a Zipf distribution over [{1..n}] with
    exponent [s]; feed to {!zipf}. *)

val zipf : t -> float array -> int

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val pick : t -> 'a array -> 'a

val split : t -> t
(** Derive an independent stream. *)
