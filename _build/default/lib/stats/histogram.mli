(** Equi-depth histograms over column values — the workhorse of
    selectivity estimation (paper §5: "frequency and histogram
    statistics").

    Bucket [i] covers [(lo_i, hi_i]] (the first bucket includes its lower
    bound) and records row and distinct counts; equal values never
    straddle buckets.  Estimation interpolates uniformly within a
    bucket. *)

open Rel

type bucket = {
  lo : Value.t; (** exclusive, except for the very first bucket *)
  hi : Value.t; (** inclusive *)
  count : int;
  distinct : int;
}

type t

val empty : t

val total : t -> int
(** Non-null rows represented. *)

val buckets : t -> bucket list

val build : ?buckets:int -> Value.t list -> t
(** Build from a multiset of values (order irrelevant, nulls excluded);
    [buckets] defaults to 32. *)

val min_value : t -> Value.t option
val max_value : t -> Value.t option

val rows_le : t -> Value.t -> float
(** Estimated rows with value ≤ v. *)

val rows_lt : t -> Value.t -> float
val rows_eq : t -> Value.t -> float

val rows_range :
  t -> ?lo:Value.t * [ `Excl | `Incl ] -> ?hi:Value.t * [ `Excl | `Incl ] ->
  unit -> float

val selectivity_range :
  t -> ?lo:Value.t * [ `Excl | `Incl ] -> ?hi:Value.t * [ `Excl | `Incl ] ->
  unit -> float
(** {!rows_range} as a fraction of {!total}. *)

val selectivity_eq : t -> Value.t -> float

val pp : Format.formatter -> t -> unit
