lib/stats/rng.mli:
