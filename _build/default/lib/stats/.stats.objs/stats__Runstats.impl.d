lib/stats/runstats.ml: Array Col_stats Database Fmt Hashtbl List Rel Sample Schema String Table Tuple
