lib/stats/col_stats.mli: Format Histogram Rel Value
