lib/stats/histogram.ml: Array Char Fmt List Rel String Value
