lib/stats/histogram.mli: Format Rel Value
