lib/stats/sample.ml: Array Rng
