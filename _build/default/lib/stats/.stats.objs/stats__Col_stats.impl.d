lib/stats/col_stats.ml: Fmt Hashtbl Histogram List Option Rel Value
