lib/stats/sample.mli:
