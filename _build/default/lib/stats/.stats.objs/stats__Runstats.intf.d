lib/stats/runstats.mli: Col_stats Database Format Rel Table
