(* RUNSTATS: build and cache per-table statistics, as DB2's utility of the
   same name does.  Each snapshot remembers the table's mutation counter at
   collection time, which is what the soft-constraint currency model
   (paper §3.3) compares against to bound drift. *)

open Rel

type table_stats = {
  table : string;
  cardinality : int;
  collected_at_mutations : int;
  columns : (string * Col_stats.t) list;
}

type t = { snapshots : (string, table_stats) Hashtbl.t }

let create () = { snapshots = Hashtbl.create 16 }

let norm = String.lowercase_ascii

(* Collect statistics for [table]; [sample] bounds the rows inspected for
   histograms (the full scan still counts cardinality exactly). *)
let collect ?(histogram_buckets = 32) ?sample table =
  let schema = Table.schema table in
  let arity = Schema.arity schema in
  let columns_values =
    match sample with
    | None ->
        let acc = Array.make arity [] in
        Table.iter table ~f:(fun row ->
            for i = 0 to arity - 1 do
              acc.(i) <- Tuple.get row i :: acc.(i)
            done);
        acc
    | Some capacity ->
        let s = Sample.create capacity in
        Table.iter table ~f:(fun row -> Sample.offer s row);
        let rows = Sample.to_list s in
        let acc = Array.make arity [] in
        List.iter
          (fun row ->
            for i = 0 to arity - 1 do
              acc.(i) <- Tuple.get row i :: acc.(i)
            done)
          rows;
        acc
  in
  let columns =
    List.mapi
      (fun i c ->
        ( c.Schema.name,
          Col_stats.build ~histogram_buckets ~column:c.Schema.name
            columns_values.(i) ))
      (Schema.columns schema)
  in
  {
    table = Table.name table;
    cardinality = Table.cardinality table;
    collected_at_mutations = Table.mutations table;
    columns;
  }

let runstats ?histogram_buckets ?sample t table =
  let stats = collect ?histogram_buckets ?sample table in
  Hashtbl.replace t.snapshots (norm stats.table) stats;
  stats

let runstats_all ?histogram_buckets ?sample t db =
  List.iter
    (fun name ->
      ignore
        (runstats ?histogram_buckets ?sample t (Database.table_exn db name)))
    (Database.table_names db)

let find t table = Hashtbl.find_opt t.snapshots (norm table)

let column_stats t ~table ~column =
  match find t table with
  | None -> None
  | Some ts ->
      List.assoc_opt (norm column)
        (List.map (fun (n, s) -> (norm n, s)) ts.columns)

(* How many mutations has [table] absorbed since its stats were taken? *)
let staleness t table =
  match find t (Table.name table) with
  | None -> Table.mutations table
  | Some ts -> max 0 (Table.mutations table - ts.collected_at_mutations)

let pp_table_stats ppf ts =
  Fmt.pf ppf "table %s: card=%d@." ts.table ts.cardinality;
  List.iter (fun (_, cs) -> Fmt.pf ppf "  %a@." Col_stats.pp cs) ts.columns
