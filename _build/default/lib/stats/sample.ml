(* Reservoir sampling (Vitter's algorithm R): a uniform fixed-size sample
   of a stream of unknown length.  RUNSTATS feeds table scans through this
   to bound histogram construction cost on large tables. *)

type 'a t = {
  rng : Rng.t;
  capacity : int;
  mutable seen : int;
  reservoir : 'a option array;
}

let create ?(seed = 42) capacity =
  if capacity <= 0 then invalid_arg "Sample.create: capacity must be positive";
  {
    rng = Rng.create seed;
    capacity;
    seen = 0;
    reservoir = Array.make capacity None;
  }

let offer t x =
  if t.seen < t.capacity then t.reservoir.(t.seen) <- Some x
  else begin
    let j = Rng.int t.rng (t.seen + 1) in
    if j < t.capacity then t.reservoir.(j) <- Some x
  end;
  t.seen <- t.seen + 1

let seen t = t.seen

let to_list t =
  Array.fold_right
    (fun slot acc -> match slot with Some x -> x :: acc | None -> acc)
    t.reservoir []

let size t = min t.seen t.capacity

(* One-shot convenience over a fold-able source. *)
let of_iter ?seed ~capacity iter =
  let t = create ?seed capacity in
  iter (fun x -> offer t x);
  t
