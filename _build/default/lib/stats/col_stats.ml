(* Per-column catalog statistics, matching the classes the paper lists in
   §5: "number of distinct values, high and low values, frequency and
   histogram statistics". *)

open Rel

type frequent = { value : Value.t; count : int }

type t = {
  column : string;
  row_count : int; (* rows inspected *)
  null_count : int;
  distinct : int; (* among non-null *)
  low : Value.t option;
  high : Value.t option;
  frequent : frequent list; (* top-k most frequent non-null values *)
  histogram : Histogram.t;
}

let null_fraction t =
  if t.row_count = 0 then 0.0
  else float_of_int t.null_count /. float_of_int t.row_count

let build ?(histogram_buckets = 32) ?(frequent_k = 10) ~column values =
  let non_null = List.filter (fun v -> not (Value.is_null v)) values in
  let row_count = List.length values in
  let null_count = row_count - List.length non_null in
  let counts = Hashtbl.create 256 in
  List.iter
    (fun v ->
      let c = Option.value (Hashtbl.find_opt counts v) ~default:0 in
      Hashtbl.replace counts v (c + 1))
    non_null;
  let distinct = Hashtbl.length counts in
  let sorted = List.sort Value.compare_total non_null in
  let low = match sorted with [] -> None | v :: _ -> Some v in
  let high =
    match List.rev sorted with [] -> None | v :: _ -> Some v
  in
  let frequent =
    Hashtbl.fold (fun value count acc -> { value; count } :: acc) counts []
    |> List.sort (fun a b ->
           match compare b.count a.count with
           | 0 -> Value.compare_total a.value b.value
           | c -> c)
    |> fun l ->
    List.filteri (fun i _ -> i < frequent_k) l
  in
  {
    column;
    row_count;
    null_count;
    distinct;
    low;
    high;
    frequent;
    histogram = Histogram.build ~buckets:histogram_buckets non_null;
  }

(* -- selectivity primitives (fractions of *all* rows, nulls excluded
      from qualifying mass as in SQL) -- *)

let sel_eq t v =
  if t.row_count = 0 then 0.0
  else
    match List.find_opt (fun f -> Value.equal_total f.value v) t.frequent with
    | Some f -> float_of_int f.count /. float_of_int t.row_count
    | None ->
        let hist_sel = Histogram.selectivity_eq t.histogram v in
        let non_null_frac = 1.0 -. null_fraction t in
        (* fall back to 1/ndv when the histogram is silent *)
        if hist_sel > 0.0 then hist_sel *. non_null_frac
        else if t.distinct = 0 then 0.0
        else non_null_frac /. float_of_int t.distinct

let sel_range t ?lo ?hi () =
  let non_null_frac = 1.0 -. null_fraction t in
  Histogram.selectivity_range t.histogram ?lo ?hi () *. non_null_frac

let sel_is_null t = null_fraction t

let pp ppf t =
  Fmt.pf ppf "%s: rows=%d nulls=%d ndv=%d low=%a high=%a" t.column t.row_count
    t.null_count t.distinct
    Fmt.(option ~none:(any "-") Value.pp)
    t.low
    Fmt.(option ~none:(any "-") Value.pp)
    t.high
