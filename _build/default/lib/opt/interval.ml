(* Interval reasoning over predicates: constant folding, substitution of
   equality-bound columns, extraction of per-column ranges from conjuncts,
   and satisfiability tests.  This is the machinery behind predicate
   introduction (folding a check constraint against query constants),
   union-all branch pruning, and join-hole range trimming. *)

open Rel

(* ---- constant folding & substitution ----------------------------------- *)

let apply_binop op a b =
  match op with
  | Expr.Add -> Value.add a b
  | Expr.Sub -> Value.sub a b
  | Expr.Mul -> Value.mul a b
  | Expr.Div -> Value.div a b

let rec fold_expr (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ | Expr.Col _ -> e
  | Expr.Binop (op, a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Expr.Const x, Expr.Const y -> (
          try Expr.Const (apply_binop op x y)
          with Value.Type_error _ -> Expr.Binop (op, Expr.Const x, Expr.Const y))
      | a', b' -> Expr.Binop (op, a', b'))
  | Expr.Neg a -> (
      match fold_expr a with
      | Expr.Const x -> (
          try Expr.Const (Value.neg x)
          with Value.Type_error _ -> Expr.Neg (Expr.Const x))
      | a' -> Expr.Neg a')

(* Substitute column references by expressions ([None] = leave). *)
let rec subst_expr (f : Expr.col_ref -> Expr.t option) (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ -> e
  | Expr.Col r -> ( match f r with Some e' -> e' | None -> e)
  | Expr.Binop (op, a, b) -> Expr.Binop (op, subst_expr f a, subst_expr f b)
  | Expr.Neg a -> Expr.Neg (subst_expr f a)

let rec subst_pred f (p : Expr.pred) : Expr.pred =
  match p with
  | Expr.Cmp (c, a, b) -> Expr.Cmp (c, subst_expr f a, subst_expr f b)
  | Expr.Between (a, lo, hi) ->
      Expr.Between (subst_expr f a, subst_expr f lo, subst_expr f hi)
  | Expr.In_list (a, vs) -> Expr.In_list (subst_expr f a, vs)
  | Expr.Is_null a -> Expr.Is_null (subst_expr f a)
  | Expr.Is_not_null a -> Expr.Is_not_null (subst_expr f a)
  | Expr.And (p, q) -> Expr.And (subst_pred f p, subst_pred f q)
  | Expr.Or (p, q) -> Expr.Or (subst_pred f p, subst_pred f q)
  | Expr.Not p -> Expr.Not (subst_pred f p)
  | Expr.Ptrue | Expr.Pfalse -> p

(* Fold a predicate: fold sub-expressions, decide constant comparisons,
   and simplify boolean structure.  Comparisons over NULL fold to false
   (for WHERE purposes, Unknown filters like False). *)
let rec simplify_pred (p : Expr.pred) : Expr.pred =
  match p with
  | Expr.Cmp (c, a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Expr.Const x, Expr.Const y -> (
          match Value.compare_sql x y with
          | None -> Expr.Pfalse
          | Some n ->
              let holds =
                match c with
                | Expr.Eq -> n = 0
                | Expr.Ne -> n <> 0
                | Expr.Lt -> n < 0
                | Expr.Le -> n <= 0
                | Expr.Gt -> n > 0
                | Expr.Ge -> n >= 0
              in
              if holds then Expr.Ptrue else Expr.Pfalse)
      | a', b' -> Expr.Cmp (c, a', b'))
  | Expr.Between (a, lo, hi) -> (
      let a' = fold_expr a and lo' = fold_expr lo and hi' = fold_expr hi in
      match (a', lo', hi') with
      | Expr.Const _, Expr.Const _, Expr.Const _ ->
          simplify_pred
            (Expr.And (Expr.Cmp (Expr.Ge, a', lo'), Expr.Cmp (Expr.Le, a', hi')))
      | _ -> Expr.Between (a', lo', hi'))
  | Expr.In_list (a, vs) -> Expr.In_list (fold_expr a, vs)
  | Expr.Is_null a -> Expr.Is_null (fold_expr a)
  | Expr.Is_not_null a -> Expr.Is_not_null (fold_expr a)
  | Expr.And (p, q) -> (
      match (simplify_pred p, simplify_pred q) with
      | Expr.Pfalse, _ | _, Expr.Pfalse -> Expr.Pfalse
      | Expr.Ptrue, q' -> q'
      | p', Expr.Ptrue -> p'
      | p', q' -> Expr.And (p', q'))
  | Expr.Or (p, q) -> (
      match (simplify_pred p, simplify_pred q) with
      | Expr.Ptrue, _ | _, Expr.Ptrue -> Expr.Ptrue
      | Expr.Pfalse, q' -> q'
      | p', Expr.Pfalse -> p'
      | p', q' -> Expr.Or (p', q'))
  | Expr.Not p -> (
      match simplify_pred p with
      | Expr.Ptrue -> Expr.Pfalse
      | Expr.Pfalse -> Expr.Ptrue
      | p' -> Expr.Not p')
  | Expr.Ptrue | Expr.Pfalse -> p

(* ---- intervals ---------------------------------------------------------- *)

type endpoint = { v : Value.t; incl : bool }

type t = { lo : endpoint option; hi : endpoint option }
(* [None] endpoint = unbounded on that side *)

let full = { lo = None; hi = None }

let point v = { lo = Some { v; incl = true }; hi = Some { v; incl = true } }

let is_full t = t.lo = None && t.hi = None

let tighter_lo a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y ->
      let c = Value.compare_total x.v y.v in
      if c > 0 then Some x
      else if c < 0 then Some y
      else Some { v = x.v; incl = x.incl && y.incl }

let tighter_hi a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y ->
      let c = Value.compare_total x.v y.v in
      if c < 0 then Some x
      else if c > 0 then Some y
      else Some { v = x.v; incl = x.incl && y.incl }

let intersect a b = { lo = tighter_lo a.lo b.lo; hi = tighter_hi a.hi b.hi }

let is_empty t =
  match (t.lo, t.hi) with
  | Some lo, Some hi -> (
      match Value.compare_total lo.v hi.v with
      | c when c > 0 -> true
      | 0 -> not (lo.incl && hi.incl)
      | _ -> false)
  | _ -> false

(* a ⊇ b *)
let contains a b =
  let lo_ok =
    match (a.lo, b.lo) with
    | None, _ -> true
    | Some _, None -> false
    | Some x, Some y -> (
        match Value.compare_total x.v y.v with
        | c when c < 0 -> true
        | 0 -> x.incl || not y.incl
        | _ -> false)
  in
  let hi_ok =
    match (a.hi, b.hi) with
    | None, _ -> true
    | Some _, None -> false
    | Some x, Some y -> (
        match Value.compare_total x.v y.v with
        | c when c > 0 -> true
        | 0 -> x.incl || not y.incl
        | _ -> false)
  in
  lo_ok && hi_ok

(* ---- extraction from conjuncts ------------------------------------------ *)

(* Isolate the single column of a linear comparison: rewrite shapes like
   [const − col ≤ v], [col + const > v], [col − const BETWEEN a AND b]
   into [col cmp const'] using value arithmetic (which understands date ±
   days).  Returns the predicate unchanged when no isolation applies. *)
let rec isolate_cmp c lhs (v : Value.t) : (Expr.cmp * Expr.col_ref * Value.t) option =
  match lhs with
  | Expr.Col r -> Some (c, r, v)
  | Expr.Binop (Expr.Sub, e, Expr.Const k) -> (
      (* e − k cmp v  ⟺  e cmp v + k *)
      try isolate_cmp c e (Value.add v k) with Value.Type_error _ -> None)
  | Expr.Binop (Expr.Sub, Expr.Const k, e) -> (
      (* k − e cmp v  ⟺  e cmp' k − v *)
      try isolate_cmp (Expr.cmp_flip c) e (Value.sub k v)
      with Value.Type_error _ -> None)
  | Expr.Binop (Expr.Add, e, Expr.Const k)
  | Expr.Binop (Expr.Add, Expr.Const k, e) -> (
      try isolate_cmp c e (Value.sub v k) with Value.Type_error _ -> None)
  | Expr.Neg e -> (
      try isolate_cmp (Expr.cmp_flip c) e (Value.neg v)
      with Value.Type_error _ -> None)
  | Expr.Binop (Expr.Mul, Expr.Const k, e)
  | Expr.Binop (Expr.Mul, e, Expr.Const k) -> (
      (* k·e cmp v ⟺ e cmp v/k (k > 0) or flipped (k < 0); integer division
         would lose precision, so only fold when both are floats *)
      match (k, v) with
      | Value.Float kf, (Value.Float _ | Value.Int _) when kf <> 0.0 ->
          let v' = Value.Float (Value.float_exn v /. kf) in
          isolate_cmp (if kf > 0.0 then c else Expr.cmp_flip c) e v'
      | _ -> None)
  | _ -> None

(* Recognize a single-column range conjunct (after isolation).  Returns
   the column and the interval it imposes; conjuncts of any other shape
   are not range-recognizable. *)
let rec of_pred (p : Expr.pred) : (Expr.col_ref * t) option =
  let mk_cmp c r v =
    match c with
    | Expr.Eq -> Some (r, point v)
    | Expr.Lt -> Some (r, { lo = None; hi = Some { v; incl = false } })
    | Expr.Le -> Some (r, { lo = None; hi = Some { v; incl = true } })
    | Expr.Gt -> Some (r, { lo = Some { v; incl = false }; hi = None })
    | Expr.Ge -> Some (r, { lo = Some { v; incl = true }; hi = None })
    | Expr.Ne -> None
  in
  match simplify_pred p with
  | Expr.Cmp (c, lhs, Expr.Const v) -> (
      match isolate_cmp c lhs v with
      | Some (c', r, v') -> mk_cmp c' r v'
      | None -> None)
  | Expr.Cmp (c, Expr.Const v, rhs) -> (
      match isolate_cmp (Expr.cmp_flip c) rhs v with
      | Some (c', r, v') -> mk_cmp c' r v'
      | None -> None)
  | Expr.Between (Expr.Col r, Expr.Const lo, Expr.Const hi) ->
      Some
        (r, { lo = Some { v = lo; incl = true }; hi = Some { v = hi; incl = true } })
  | Expr.Between (e, Expr.Const lo, Expr.Const hi) -> (
      (* decompose, isolate each side, and re-merge when both land on the
         same column *)
      match
        ( of_pred (Expr.Cmp (Expr.Ge, e, Expr.Const lo)),
          of_pred (Expr.Cmp (Expr.Le, e, Expr.Const hi)) )
      with
      | Some (r1, iv1), Some (r2, iv2) when Expr.col_ref_equal r1 r2 ->
          Some (r1, intersect iv1 iv2)
      | _ -> None)
  | Expr.And (p, q) -> (
      (* a conjunction of two ranges on the same column is a range *)
      match (of_pred p, of_pred q) with
      | Some (r1, iv1), Some (r2, iv2) when Expr.col_ref_equal r1 r2 ->
          Some (r1, intersect iv1 iv2)
      | _ -> None)
  | _ -> None


(* Rebuild the predicate a (column, interval) pair denotes. *)
let to_pred (r : Expr.col_ref) (t : t) : Expr.pred =
  let col = Expr.Col r in
  match (t.lo, t.hi) with
  | None, None -> Expr.Ptrue
  | Some lo, Some hi
    when lo.incl && hi.incl && Value.equal_total lo.v hi.v ->
      Expr.Cmp (Expr.Eq, col, Expr.Const lo.v)
  | Some lo, Some hi when lo.incl && hi.incl ->
      Expr.Between (col, Expr.Const lo.v, Expr.Const hi.v)
  | lo, hi ->
      let lo_pred =
        match lo with
        | None -> Expr.Ptrue
        | Some { v; incl = true } -> Expr.Cmp (Expr.Ge, col, Expr.Const v)
        | Some { v; incl = false } -> Expr.Cmp (Expr.Gt, col, Expr.Const v)
      in
      let hi_pred =
        match hi with
        | None -> Expr.Ptrue
        | Some { v; incl = true } -> Expr.Cmp (Expr.Le, col, Expr.Const v)
        | Some { v; incl = false } -> Expr.Cmp (Expr.Lt, col, Expr.Const v)
      in
      Expr.conjoin (Expr.conjuncts lo_pred @ Expr.conjuncts hi_pred)

(* Isolated single-column form of a conjunct, for display and so that
   introduced predicates are visibly sargable: [col BETWEEN a AND b] etc.
   when recognizable, the input otherwise. *)
let normalize (p : Expr.pred) : Expr.pred =
  match of_pred p with Some (r, iv) -> to_pred r iv | None -> p

(* Per-column interval summary of a conjunct list.  [key_of] canonicalizes
   column references (e.g. resolves aliases); conjuncts that are not
   single-column ranges are returned as residuals. *)
let summarize ~key_of (preds : Expr.pred list) :
    (string * (Expr.col_ref * t)) list * Expr.pred list =
  let table : (string, Expr.col_ref * t) Hashtbl.t = Hashtbl.create 8 in
  let residual = ref [] in
  List.iter
    (fun p ->
      match of_pred p with
      | Some (r, iv) -> (
          match key_of r with
          | Some key -> (
              match Hashtbl.find_opt table key with
              | Some (r0, iv0) ->
                  Hashtbl.replace table key (r0, intersect iv0 iv)
              | None -> Hashtbl.replace table key (r, iv))
          | None -> residual := p :: !residual)
      | None -> residual := p :: !residual)
    preds;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  (List.sort (fun (a, _) (b, _) -> String.compare a b) entries,
   List.rev !residual)

(* Is the conjunction of [preds] unsatisfiable by interval reasoning
   alone?  (Sound: [true] really means no row can satisfy them.) *)
let unsatisfiable ~key_of preds =
  let entries, _ = summarize ~key_of preds in
  List.exists (fun (_, (_, iv)) -> is_empty iv) entries
  || List.exists (fun p -> simplify_pred p = Expr.Pfalse) preds

(* The equality bindings among conjuncts: column = constant. *)
let const_bindings (preds : Expr.pred list) : (Expr.col_ref * Value.t) list =
  List.filter_map
    (fun p ->
      match simplify_pred p with
      | Expr.Cmp (Expr.Eq, Expr.Col r, Expr.Const v)
      | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Col r) ->
          Some (r, v)
      | _ -> None)
    preds

let pp_endpoint ppf = function
  | None -> Fmt.string ppf "inf"
  | Some { v; incl } -> Fmt.pf ppf "%a%s" Value.pp v (if incl then "" else "!")

let pp ppf t = Fmt.pf ppf "[%a, %a]" pp_endpoint t.lo pp_endpoint t.hi
