open Exec
(* EXPLAIN: end-to-end optimization of a parsed query with a readable
   trace — the rewritten statement, the rules that fired, the twin
   predicates the cardinality model saw, estimates, and the physical
   plan. *)

type report = {
  original : Sqlfe.Ast.query;
  logical : Logical.t;
  rewritten : Logical.t;
  applied : Rewrite.applied list;
  estimated_cardinality : float;
  plan : Plan.t;
  estimated_cost : float;
}

let optimize (ctx : Rewrite.ctx) (penv : Planner.env) (q : Sqlfe.Ast.query) :
    report =
  let logical = Logical.of_query q in
  let rewritten, applied = Rewrite.rewrite ctx logical in
  let plan, cost = Planner.plan_query penv rewritten in
  {
    original = q;
    logical;
    rewritten;
    applied;
    estimated_cardinality =
      Selectivity.query_cardinality (Planner.sel_env penv) rewritten;
    plan;
    estimated_cost = cost;
  }

let pp ppf r =
  Fmt.pf ppf "original : %s@." (Sqlfe.Printer.query_to_string r.original);
  Fmt.pf ppf "rewritten: %s@."
    (Sqlfe.Printer.query_to_string (Logical.to_query r.rewritten));
  (match r.applied with
  | [] -> Fmt.pf ppf "rewrites : (none)@."
  | rules ->
      Fmt.pf ppf "rewrites :@.";
      List.iter (fun a -> Fmt.pf ppf "  - %a@." Rewrite.pp_applied a) rules);
  let rec twins ppf = function
    | Logical.Block b ->
        List.iter
          (fun (p : Logical.pred_item) ->
            if p.Logical.estimation_only then
              Fmt.pf ppf "  ~ %a@." Logical.pp_pred_item p)
          b.Logical.preds
    | Logical.Union ts -> List.iter (twins ppf) ts
  in
  twins ppf r.rewritten;
  Fmt.pf ppf "est. rows: %.1f  est. cost: %.1f@." r.estimated_cardinality
    r.estimated_cost;
  Fmt.pf ppf "plan:@.%a" (Plan.pp ~indent:2) r.plan

let to_string r = Fmt.str "%a" pp r
