(** EXPLAIN: end-to-end optimization of a parsed query with a readable
    trace — the rewritten statement, the rules that fired, the twin
    predicates the cardinality model saw, estimates, and the physical
    plan. *)

type report = {
  original : Sqlfe.Ast.query;
  logical : Logical.t;
  rewritten : Logical.t;
  applied : Rewrite.applied list;
  estimated_cardinality : float;
  plan : Exec.Plan.t;
  estimated_cost : float;
}

val optimize : Rewrite.ctx -> Planner.env -> Sqlfe.Ast.query -> report

val pp : Format.formatter -> report -> unit
val to_string : report -> string
