lib/opt/cost.ml: Float Fmt
