lib/opt/selectivity.ml: Col_stats Database Expr Hashtbl Interval List Logical Option Rel Runstats Sqlfe Stats String Table Value
