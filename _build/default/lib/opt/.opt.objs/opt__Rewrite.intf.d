lib/opt/rewrite.mli: Database Expr Format Icdef Logical Mining Rel
