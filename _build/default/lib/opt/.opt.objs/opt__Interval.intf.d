lib/opt/interval.mli: Expr Format Rel Value
