lib/opt/planner.mli: Cost Database Exec Logical Plan Rel Runstats Selectivity Stats
