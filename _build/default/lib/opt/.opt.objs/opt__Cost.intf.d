lib/opt/cost.mli: Format
