lib/opt/logical.mli: Database Expr Format Rel Sqlfe
