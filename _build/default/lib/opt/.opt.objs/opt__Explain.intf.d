lib/opt/explain.mli: Exec Format Logical Planner Rewrite Sqlfe
