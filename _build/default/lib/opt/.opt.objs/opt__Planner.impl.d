lib/opt/planner.ml: Cost Database Exec Expr Fmt Hashtbl Index Interval List Logical Option Plan Printf Rel Runstats Selectivity Sqlfe Stats String Table
