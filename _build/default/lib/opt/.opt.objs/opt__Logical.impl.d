lib/opt/logical.ml: Database Expr Fmt Hashtbl List Option Printf Rel Schema Sqlfe String Table
