lib/opt/selectivity.mli: Database Expr Interval Logical Rel Runstats Stats
