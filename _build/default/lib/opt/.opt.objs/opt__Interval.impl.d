lib/opt/interval.ml: Expr Fmt Hashtbl List Rel String Value
