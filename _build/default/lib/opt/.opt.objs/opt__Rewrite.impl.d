lib/opt/rewrite.ml: Database Expr Float Fmt Hashtbl Icdef Interval List Logical Mining Option Printf Rel Schema Sqlfe String Table Value
