lib/opt/explain.ml: Exec Fmt List Logical Plan Planner Rewrite Selectivity Sqlfe
