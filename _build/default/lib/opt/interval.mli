(** Interval reasoning over predicates: constant folding, substitution of
    equality-bound columns, isolation of single-column linear
    comparisons, extraction of per-column ranges from conjuncts, and
    satisfiability tests.

    This is the machinery behind predicate introduction (folding a check
    constraint against query constants), union-all branch pruning, and
    join-hole range trimming. *)

open Rel

(** {1 Folding and substitution} *)

val fold_expr : Expr.t -> Expr.t
(** Evaluate constant sub-expressions (date arithmetic included);
    ill-typed constants are left unfolded. *)

val subst_expr : (Expr.col_ref -> Expr.t option) -> Expr.t -> Expr.t
val subst_pred : (Expr.col_ref -> Expr.t option) -> Expr.pred -> Expr.pred

val simplify_pred : Expr.pred -> Expr.pred
(** Fold sub-expressions, decide constant comparisons (comparisons over
    NULL fold to [Pfalse] — WHERE semantics), and simplify boolean
    structure. *)

(** {1 Intervals} *)

type endpoint = { v : Value.t; incl : bool }

type t = { lo : endpoint option; hi : endpoint option }
(** [None] endpoint = unbounded on that side. *)

val full : t
val point : Value.t -> t
val is_full : t -> bool
val intersect : t -> t -> t
val is_empty : t -> bool

val contains : t -> t -> bool
(** [contains a b] ⟺ a ⊇ b. *)

(** {1 Recognition} *)

val isolate_cmp :
  Expr.cmp -> Expr.t -> Value.t -> (Expr.cmp * Expr.col_ref * Value.t) option
(** Isolate the single column of a linear comparison: rewrite shapes like
    [const − col ≤ v] or [col + const > v] into [col cmp const'] using
    value arithmetic (which understands date ± days). *)

val of_pred : Expr.pred -> (Expr.col_ref * t) option
(** Recognize a single-column range conjunct, after simplification and
    isolation — including [BETWEEN] over a linear expression of one
    column ([DATE 'd' − c BETWEEN 0 AND 21] isolates [c]). *)

val to_pred : Expr.col_ref -> t -> Expr.pred
(** Rebuild the predicate a (column, interval) pair denotes. *)

val normalize : Expr.pred -> Expr.pred
(** Isolated single-column form when recognizable, the input otherwise —
    used so introduced predicates are visibly sargable. *)

val summarize :
  key_of:(Expr.col_ref -> string option) -> Expr.pred list ->
  (string * (Expr.col_ref * t)) list * Expr.pred list
(** Per-column interval summary of a conjunct list: recognizable range
    conjuncts intersect into one interval per canonical column key;
    everything else is returned as residual.  [key_of] canonicalizes
    references (e.g. resolves aliases); [None] sends the conjunct to the
    residual. *)

val unsatisfiable :
  key_of:(Expr.col_ref -> string option) -> Expr.pred list -> bool
(** Sound emptiness test: [true] means no row can satisfy the
    conjunction. *)

val const_bindings : Expr.pred list -> (Expr.col_ref * Value.t) list
(** The [column = constant] equalities among the conjuncts. *)

val pp : Format.formatter -> t -> unit
