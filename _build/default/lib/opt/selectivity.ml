(* Cardinality estimation.

   Single-table estimation first *summarizes* the conjuncts into
   per-column intervals (so several range predicates on one column are
   estimated once from the histogram, not multiplied), then applies
   independence across columns and default filter factors for residual
   shapes — the same structure DB2's filter-factor model has (paper §5).

   Twinned predicates (paper §5.1) are folded in by blending: for a twin
   t with confidence c that replaces original predicate p, the twinned
   estimate E1 drops p and adds t, and the final estimate is
   c·E1 + (1−c)·E0 where E0 is the plain independence estimate — the
   "statistical adjustment based on this confidence factor" the paper
   calls for. *)

open Rel
open Stats

type env = { db : Database.t; stats : Runstats.t }

(* default filter factors, in the System-R tradition *)
let default_eq = 0.04
let default_range = 1.0 /. 3.0
let default_other = 1.0 /. 3.0

let col_stats env ~table ~column =
  Runstats.column_stats env.stats ~table ~column

let table_cardinality env table =
  match Runstats.find env.stats table with
  | Some ts -> float_of_int ts.Runstats.cardinality
  | None -> (
      match Database.find_table env.db table with
      | Some t -> float_of_int (Table.cardinality t)
      | None -> 0.0)

let ndv env ~table ~column =
  match col_stats env ~table ~column with
  | Some cs -> max 1 cs.Col_stats.distinct
  | None -> 25 (* 1/default_eq *)

(* selectivity of an interval on a column, via histogram when available *)
let interval_selectivity env ~table ~column (iv : Interval.t) =
  if Interval.is_empty iv then 0.0
  else if Interval.is_full iv then 1.0
  else
    match col_stats env ~table ~column with
    | None -> (
        match (iv.Interval.lo, iv.Interval.hi) with
        | Some l, Some h when Value.equal_total l.Interval.v h.Interval.v ->
            default_eq
        | Some _, Some _ -> default_range /. 2.0
        | _ -> default_range)
    | Some cs -> (
        match (iv.Interval.lo, iv.Interval.hi) with
        | Some l, Some h
          when l.Interval.incl && h.Interval.incl
               && Value.equal_total l.Interval.v h.Interval.v ->
            Col_stats.sel_eq cs l.Interval.v
        | lo, hi ->
            let conv side (e : Interval.endpoint option) =
              match e with
              | None -> None
              | Some { Interval.v; incl } ->
                  let mode =
                    match (side, incl) with
                    | `Lo, true -> `Incl
                    | `Lo, false -> `Excl
                    | `Hi, true -> `Incl
                    | `Hi, false -> `Excl
                  in
                  Some (v, mode)
            in
            Col_stats.sel_range cs ?lo:(conv `Lo lo) ?hi:(conv `Hi hi) ())

(* selectivity of one residual (non-interval) conjunct over one table *)
let rec residual_selectivity env ~table (p : Expr.pred) =
  match p with
  | Expr.Ptrue -> 1.0
  | Expr.Pfalse -> 0.0
  | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
      (* column = column within one table *)
      let d =
        max (ndv env ~table ~column:a.Expr.col)
          (ndv env ~table ~column:b.Expr.col)
      in
      1.0 /. float_of_int d
  | Expr.Cmp (Expr.Ne, _, _) -> 1.0 -. default_eq
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> default_range
  | Expr.Cmp (Expr.Eq, _, _) -> default_eq
  | Expr.Between (_, _, _) -> default_range /. 2.0
  | Expr.In_list (Expr.Col r, vs) -> (
      match col_stats env ~table ~column:r.Expr.col with
      | Some cs ->
          min 1.0
            (List.fold_left
               (fun acc v -> acc +. Col_stats.sel_eq cs v)
               0.0 vs)
      | None -> min 1.0 (default_eq *. float_of_int (List.length vs)))
  | Expr.In_list (_, vs) ->
      min 1.0 (default_eq *. float_of_int (List.length vs))
  | Expr.Is_null (Expr.Col r) -> (
      match col_stats env ~table ~column:r.Expr.col with
      | Some cs -> Col_stats.sel_is_null cs
      | None -> default_eq)
  | Expr.Is_null _ -> default_eq
  | Expr.Is_not_null (Expr.Col r) -> (
      match col_stats env ~table ~column:r.Expr.col with
      | Some cs -> 1.0 -. Col_stats.sel_is_null cs
      | None -> 1.0 -. default_eq)
  | Expr.Is_not_null _ -> 1.0 -. default_eq
  | Expr.And (a, b) ->
      residual_selectivity env ~table a *. residual_selectivity env ~table b
  | Expr.Or (a, b) ->
      let sa = residual_selectivity env ~table a
      and sb = residual_selectivity env ~table b in
      min 1.0 (sa +. sb -. (sa *. sb))
  | Expr.Not a -> max 0.0 (1.0 -. residual_selectivity env ~table a)

(* Plain independence estimate of a conjunct list against [table].
   Column references are assumed local to the table (callers strip
   qualifiers or pass table-local predicates). *)
let conjunct_selectivity env ~table (preds : Expr.pred list) =
  let key_of (r : Expr.col_ref) = Some (String.lowercase_ascii r.Expr.col) in
  let entries, residual = Interval.summarize ~key_of preds in
  let from_intervals =
    List.fold_left
      (fun acc (_, (r, iv)) ->
        acc *. interval_selectivity env ~table ~column:r.Expr.col iv)
      1.0 entries
  in
  let from_residual =
    List.fold_left
      (fun acc p -> acc *. residual_selectivity env ~table p)
      1.0 residual
  in
  max 0.0 (min 1.0 (from_intervals *. from_residual))

(* --- twin blending ------------------------------------------------------- *)

type twin = { t_pred : Expr.pred; t_confidence : float;
              t_replaces : string option (* column name superseded *) }

(* Selectivity of [regular] conjuncts refined by [twins]:
   E0 = sel(regular);
   E1 = sel(regular − range predicates on superseded columns + twins);
   E  = c·E1 + (1−c)·E0   with c the product of twin confidences. *)
let blended_selectivity env ~table ~regular ~twins =
  let e0 = conjunct_selectivity env ~table regular in
  match twins with
  | [] -> e0
  | _ ->
      let dropped_cols =
        List.filter_map
          (fun t -> Option.map String.lowercase_ascii t.t_replaces)
          twins
      in
      let superseded p =
        match Interval.of_pred p with
        | Some (r, _) ->
            List.mem (String.lowercase_ascii r.Expr.col) dropped_cols
        | None -> false
      in
      let kept = List.filter (fun p -> not (superseded p)) regular in
      let twinned = kept @ List.map (fun t -> t.t_pred) twins in
      let e1 = conjunct_selectivity env ~table twinned in
      let c =
        List.fold_left (fun acc t -> acc *. t.t_confidence) 1.0 twins
      in
      (c *. e1) +. ((1.0 -. c) *. e0)

(* --- whole-block estimation ---------------------------------------------- *)

(* Classify a predicate w.r.t. block sources: which aliases does it touch? *)
let aliases_of_pred db (block : Logical.block) (p : Expr.pred) =
  Expr.cols_of_pred p
  |> List.concat_map (fun r -> Logical.sources_of_col db block r)
  |> List.map (fun s -> String.lowercase_ascii s.Logical.alias)
  |> List.sort_uniq String.compare

(* Strip qualifiers so table-local estimation sees bare column names. *)
let localize p =
  Expr.map_cols_pred (fun r -> { r with Expr.rel = None }) p

type block_estimate = {
  per_table : (string * float * float) list;
      (* alias, base cardinality, selectivity *)
  join_selectivity : float;
  cardinality : float;
}

let estimate_block env (block : Logical.block) : block_estimate =
  let db = env.db in
  let exec_preds = Logical.executable_preds block in
  let est_preds = Logical.estimation_preds block in
  (* bucket executable conjuncts: per-alias vs cross-alias *)
  let local : (string, Expr.pred list) Hashtbl.t = Hashtbl.create 8 in
  let cross = ref [] in
  List.iter
    (fun (p : Logical.pred_item) ->
      match aliases_of_pred db block p.Logical.pred with
      | [ a ] ->
          Hashtbl.replace local a
            (localize p.Logical.pred
            :: Option.value (Hashtbl.find_opt local a) ~default:[])
      | _ -> cross := p.Logical.pred :: !cross)
    exec_preds;
  let twins_for alias =
    List.filter_map
      (fun (p : Logical.pred_item) ->
        match aliases_of_pred db block p.Logical.pred with
        | [ a ] when a = alias ->
            Some
              {
                t_pred = localize p.Logical.pred;
                t_confidence = p.Logical.confidence;
                t_replaces =
                  Option.map (fun r -> r.Expr.col) p.Logical.replaces;
              }
        | _ -> None)
      est_preds
  in
  let per_table =
    List.map
      (fun (s : Logical.source) ->
        let alias = String.lowercase_ascii s.Logical.alias in
        let base = table_cardinality env s.Logical.table in
        let regular =
          Option.value (Hashtbl.find_opt local alias) ~default:[]
        in
        let sel =
          blended_selectivity env ~table:s.Logical.table ~regular
            ~twins:(twins_for alias)
        in
        (s.Logical.alias, base, sel))
      block.Logical.from
  in
  (* cross-alias predicates: equi-joins use 1/max(ndv), others default *)
  let join_sel_of p =
    match p with
    | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) -> (
        let src r = Logical.sources_of_col db block r in
        match (src a, src b) with
        | [ sa ], [ sb ] ->
            let da = ndv env ~table:sa.Logical.table ~column:a.Expr.col
            and db_ = ndv env ~table:sb.Logical.table ~column:b.Expr.col in
            1.0 /. float_of_int (max da db_)
        | _ -> default_eq)
    | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) ->
        default_range
    | _ -> default_other
  in
  let join_selectivity =
    List.fold_left (fun acc p -> acc *. join_sel_of p) 1.0 !cross
  in
  let cardinality =
    List.fold_left (fun acc (_, base, sel) -> acc *. base *. sel)
      join_selectivity per_table
  in
  { per_table; join_selectivity; cardinality = max 0.0 cardinality }

(* Output cardinality including grouping/distinct/limit effects. *)
let output_cardinality env (block : Logical.block) =
  let e = estimate_block env block in
  let card = e.cardinality in
  let card =
    if block.Logical.group_by <> [] then
      (* distinct combinations of group keys, capped by input card *)
      let per_key_ndv k =
        match k with
        | Expr.Col r -> (
            match
              Logical.sources_of_col env.db block r
            with
            | [ s ] ->
                float_of_int
                  (ndv env ~table:s.Logical.table ~column:r.Expr.col)
            | _ -> 25.0)
        | _ -> 25.0
      in
      let groups =
        List.fold_left (fun acc k -> acc *. per_key_ndv k) 1.0
          block.Logical.group_by
      in
      min card groups
    else if
      List.exists
        (function Sqlfe.Ast.Aggregate _ -> true | _ -> false)
        block.Logical.items
    then 1.0
    else card
  in
  let card =
    if block.Logical.distinct then card (* approximation: no reduction *)
    else card
  in
  match block.Logical.limit with
  | Some n -> min card (float_of_int n)
  | None -> card

let rec query_cardinality env (q : Logical.t) =
  match q with
  | Logical.Block b -> output_cardinality env b
  | Logical.Union ts ->
      List.fold_left (fun acc t -> acc +. query_cardinality env t) 0.0 ts
