(* The system façade: a database with a soft-constraint catalog wired into
   its optimizer.  SQL goes in; statements execute against the catalog and
   storage; queries run through rewrite → plan → execute with every
   soft-constraint pathway available (and individually toggleable, for
   the ablation experiments). *)

open Rel

type t = {
  db : Database.t;
  stats : Stats.Runstats.t;
  catalog : Sc_catalog.t;
  maintenance : Maintenance.t;
  mutable flags : Opt.Rewrite.flags;
  mutable cost_params : Opt.Cost.params;
}

let create ?(flags = Opt.Rewrite.all_on) () =
  let db = Database.create () in
  let catalog = Sc_catalog.create () in
  let maintenance = Maintenance.attach db catalog in
  {
    db;
    stats = Stats.Runstats.create ();
    catalog;
    maintenance;
    flags;
    cost_params = Opt.Cost.default_params;
  }

let db t = t.db
let catalog t = t.catalog
let maintenance t = t.maintenance
let statistics t = t.stats

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let rewrite_ctx ?flags t =
  Sc_catalog.rewrite_ctx
    ~flags:(Option.value flags ~default:t.flags)
    t.catalog t.db

let planner_env t =
  Opt.Planner.make_env ~params:t.cost_params t.db t.stats

let runstats ?table t =
  match table with
  | None -> Stats.Runstats.runstats_all t.stats t.db
  | Some name ->
      ignore (Stats.Runstats.runstats t.stats (Database.table_exn t.db name))

(* ---- soft constraint installation ---------------------------------------- *)

let install_sc t sc =
  Sc_catalog.add t.catalog sc;
  Maintenance.track_fd t.maintenance sc

(* Install a SOFT-mode declaration from SQL: validate a would-be ASC
   against the data; declared confidences make SSCs directly. *)
let install_soft_declaration t ~name ~table ~(body : Icdef.body)
    ~(declared_confidence : float option) =
  let muts = Sc_catalog.mutations_of t.db table in
  match declared_confidence with
  | Some c when c < 1.0 ->
      install_sc t
        (Soft_constraint.make ~name ~table
           ~kind:(Soft_constraint.Statistical c) ~installed_at_mutations:muts
           (Soft_constraint.Ic_stmt body))
  | _ -> (
      (* candidate ASC: verify against the current state *)
      let ic = Icdef.make ~name ~table body in
      let env = Database.checker_env t.db in
      match Checker.verify env ic with
      | [] ->
          install_sc t
            (Soft_constraint.make ~name ~table ~kind:Soft_constraint.Absolute
               ~installed_at_mutations:muts (Soft_constraint.Ic_stmt body))
      | violations -> (
          (* not absolute: keep as an SSC with the measured confidence
             when the statement is check-shaped *)
          match body with
          | Icdef.Check _ | Icdef.Not_null _ ->
              let rows =
                max 1 (Table.cardinality (Database.table_exn t.db table))
              in
              let c =
                1.0
                -. (float_of_int (List.length violations) /. float_of_int rows)
              in
              install_sc t
                (Soft_constraint.make ~name ~table
                   ~kind:(Soft_constraint.Statistical c)
                   ~installed_at_mutations:muts (Soft_constraint.Ic_stmt body))
          | _ ->
              error
                "constraint %s does not hold (%d violations) and its class \
                 cannot be statistical"
                name (List.length violations)))

(* ---- statement execution --------------------------------------------------- *)

type outcome =
  | Rows of Exec.Executor.result
  | Affected of int
  | Report of Opt.Explain.report
  | Done of string

let fresh_constraint_name =
  let counter = ref 0 in
  fun table ->
    incr counter;
    Printf.sprintf "%s_con%d" table !counter

let eval_const_expr (e : Expr.t) : Value.t =
  try Expr.eval [||] e [||]
  with Expr.Binding.Unresolved r ->
    error "non-constant expression references column %s"
      (Fmt.str "%a" Expr.pp_col_ref r)

let add_table_constraint t ~table (con : Sqlfe.Ast.table_constraint) =
  let name =
    Option.value con.Sqlfe.Ast.con_name ~default:(fresh_constraint_name table)
  in
  match con.Sqlfe.Ast.con_mode with
  | Sqlfe.Ast.Mode_enforced ->
      Database.add_constraint t.db
        (Icdef.make ~enforcement:Icdef.Enforced ~name ~table
           con.Sqlfe.Ast.con_body)
  | Sqlfe.Ast.Mode_informational ->
      Database.add_constraint t.db
        (Icdef.make ~enforcement:Icdef.Informational ~name ~table
           con.Sqlfe.Ast.con_body)
  | Sqlfe.Ast.Mode_soft declared_confidence ->
      install_soft_declaration t ~name ~table ~body:con.Sqlfe.Ast.con_body
        ~declared_confidence

(* auto-create a unique index backing a PRIMARY KEY / UNIQUE declaration *)
let back_key_with_index t ~table (con : Sqlfe.Ast.table_constraint) =
  match (con.Sqlfe.Ast.con_mode, con.Sqlfe.Ast.con_body) with
  | ( (Sqlfe.Ast.Mode_enforced | Sqlfe.Ast.Mode_informational),
      (Icdef.Primary_key cols | Icdef.Unique cols) ) ->
      let index_name = Printf.sprintf "%s_key_%s" table (String.concat "_" cols) in
      if Database.find_index_by_name t.db index_name = None then
        ignore
          (Database.create_index t.db ~name:index_name ~table ~columns:cols
             ~unique:(con.Sqlfe.Ast.con_mode = Sqlfe.Ast.Mode_enforced) ())
  | _ -> ()

let matching_rids t ~table pred =
  let tbl = Database.table_exn t.db table in
  let binding = Expr.Binding.of_schema (Table.schema tbl) in
  let keep = Expr.compile_filter binding pred in
  List.rev
    (Table.fold tbl ~init:[] ~f:(fun acc rid row ->
         if keep row then rid :: acc else acc))

let optimize ?flags t (q : Sqlfe.Ast.query) =
  Opt.Explain.optimize (rewrite_ctx ?flags t) (planner_env t) q

let run_query ?flags t (q : Sqlfe.Ast.query) =
  let report = optimize ?flags t q in
  Exec.Executor.run t.db report.Opt.Explain.plan

let exec_statement t (stmt : Sqlfe.Ast.statement) : outcome =
  match stmt with
  | Sqlfe.Ast.Query q -> Rows (run_query t q)
  | Sqlfe.Ast.Explain q -> Report (optimize t q)
  | Sqlfe.Ast.Create_table { name; cols; constraints } ->
      let schema =
        Schema.make name
          (List.map
             (fun (c : Sqlfe.Ast.col_def) ->
               Schema.column ~nullable:(not c.Sqlfe.Ast.col_not_null)
                 c.Sqlfe.Ast.col_name c.Sqlfe.Ast.col_type)
             cols)
      in
      ignore (Database.create_table t.db schema);
      List.iter
        (fun con ->
          back_key_with_index t ~table:name con;
          add_table_constraint t ~table:name con)
        constraints;
      Done (Printf.sprintf "created table %s" name)
  | Sqlfe.Ast.Drop_table name ->
      Database.drop_table t.db name;
      Done (Printf.sprintf "dropped table %s" name)
  | Sqlfe.Ast.Drop_index name ->
      Database.drop_index t.db name;
      Done (Printf.sprintf "dropped index %s" name)
  | Sqlfe.Ast.Create_index { index_name; table; columns; unique } ->
      ignore
        (Database.create_index t.db ~name:index_name ~table ~columns ~unique ());
      Done (Printf.sprintf "created index %s" index_name)
  | Sqlfe.Ast.Alter_add_constraint { table; con } ->
      back_key_with_index t ~table con;
      add_table_constraint t ~table con;
      Done "constraint added"
  | Sqlfe.Ast.Drop_constraint { table = _; name } -> (
      match Database.find_constraint t.db name with
      | Some _ ->
          Database.drop_constraint t.db name;
          Done (Printf.sprintf "dropped constraint %s" name)
      | None -> (
          match Sc_catalog.find t.catalog name with
          | Some _ ->
              Sc_catalog.drop t.catalog name;
              Done (Printf.sprintf "dropped soft constraint %s" name)
          | None -> error "no such constraint: %s" name))
  | Sqlfe.Ast.Create_exception_table { name; constraint_name } -> (
      match Sc_catalog.find t.catalog constraint_name with
      | None -> error "no such soft constraint: %s" constraint_name
      | Some sc ->
          let handle =
            Exception_table.install t.db ~sc ~table_name:name
          in
          Sc_catalog.register_exception_table t.catalog ~constraint_name
            ~table:handle.Exception_table.exception_table;
          Done (Printf.sprintf "exception table %s tracks %s" name
                  constraint_name))
  | Sqlfe.Ast.Insert { table; columns; rows } ->
      let tbl = Database.table_exn t.db table in
      let schema = Table.schema tbl in
      let positions =
        match columns with
        | None -> List.init (Schema.arity schema) Fun.id
        | Some cols -> List.map (Schema.index_exn schema) cols
      in
      let count = ref 0 in
      List.iter
        (fun exprs ->
          if List.length exprs <> List.length positions then
            error "INSERT arity mismatch for table %s" table;
          let row = Array.make (Schema.arity schema) Value.Null in
          List.iter2
            (fun pos e -> row.(pos) <- eval_const_expr e)
            positions exprs;
          ignore (Database.insert t.db ~table (Tuple.of_array row));
          incr count)
        rows;
      Affected !count
  | Sqlfe.Ast.Delete { table; where } ->
      let rids = matching_rids t ~table where in
      List.iter (fun rid -> ignore (Database.delete t.db ~table rid)) rids;
      Affected (List.length rids)
  | Sqlfe.Ast.Update { table; assignments; where } ->
      let tbl = Database.table_exn t.db table in
      let schema = Table.schema tbl in
      let binding = Expr.Binding.of_schema schema in
      let compiled =
        List.map
          (fun (c, e) -> (Schema.index_exn schema c, Expr.compile binding e))
          assignments
      in
      let rids = matching_rids t ~table where in
      List.iter
        (fun rid ->
          let before = Table.get_exn tbl rid in
          let after = Tuple.copy before in
          List.iter (fun (pos, f) -> after.(pos) <- f before) compiled;
          Database.update t.db ~table rid after)
        rids;
      Affected (List.length rids)
  | Sqlfe.Ast.Runstats table ->
      runstats ?table t;
      Done "statistics collected"

let exec t sql = exec_statement t (Sqlfe.Parser.parse_statement sql)

let exec_script t sql =
  List.map (exec_statement t) (Sqlfe.Parser.parse_script sql)

(* Run a query string and return the rows. *)
let query ?flags t sql =
  match Sqlfe.Parser.parse_statement sql with
  | Sqlfe.Ast.Query q -> run_query ?flags t q
  | _ -> error "expected a SELECT statement"

let explain ?flags t sql =
  match Sqlfe.Parser.parse_statement sql with
  | Sqlfe.Ast.Query q | Sqlfe.Ast.Explain q -> optimize ?flags t q
  | _ -> error "expected a SELECT statement"

(* Convenience oracle used everywhere in tests and benches: the same
   query with the whole soft-constraint machinery off. *)
let query_baseline t sql = query ~flags:Opt.Rewrite.all_off t sql
