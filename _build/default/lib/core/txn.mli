(** A simple transaction layer: an undo log over catalog mutations plus a
    snapshot of the soft-constraint catalog.

    Paper §4.1 raises the interaction between ASC maintenance and
    transactions: a transaction that violates (and so overturns) an ASC
    may later abort — "is the ASC then re-instated?"  Here yes, by
    construction: {!rollback} compensates the data mutations in reverse
    order and restores every soft constraint's statement, kind, state and
    currency anchor to their values at {!begin_}.  Exception tables stay
    consistent throughout because the compensating operations flow
    through the same mutation listeners.

    One transaction at a time; row identifiers of rows deleted and
    restored by a rollback are not preserved. *)

exception Transaction_error of string

type t

val begin_ : Softdb.t -> t
(** Start recording; raises {!Transaction_error} if one is active. *)

val commit : t -> unit
(** Discard the undo log. *)

val rollback : t -> unit
(** Undo the recorded mutations (newest first) and restore the
    soft-constraint catalog snapshot. *)

val mutation_count : t -> int

val atomically : Softdb.t -> (unit -> 'a) -> ('a, exn) result
(** Run a thunk in a transaction: [Ok] commits, an exception rolls back
    and is returned as [Error]. *)
