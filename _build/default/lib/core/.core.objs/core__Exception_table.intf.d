lib/core/exception_table.mli: Database Expr Rel Soft_constraint
