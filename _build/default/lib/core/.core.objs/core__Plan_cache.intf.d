lib/core/plan_cache.mli: Exec Format Opt Softdb Sqlfe
