lib/core/plan_cache.ml: Database Exec Fmt List Opt Rel Sc_catalog Soft_constraint Softdb Sqlfe String
