lib/core/domain_tracker.mli: Rel Soft_constraint Softdb Value
