lib/core/selection.mli: Database Format Opt Rel Sc_catalog Soft_constraint Sqlfe Stats
