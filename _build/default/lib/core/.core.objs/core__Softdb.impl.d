lib/core/softdb.ml: Array Checker Database Exception_table Exec Expr Fmt Fun Icdef List Maintenance Opt Option Printf Rel Sc_catalog Schema Soft_constraint Sqlfe Stats String Table Tuple Value
