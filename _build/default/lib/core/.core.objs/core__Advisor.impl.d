lib/core/advisor.ml: Database Expr Hashtbl Icdef List Logical Mining Opt Option Printf Rel Sc_catalog Selection Soft_constraint Sqlfe String Table
