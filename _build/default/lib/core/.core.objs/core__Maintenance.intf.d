lib/core/maintenance.mli: Database Rel Sc_catalog Soft_constraint Tuple
