lib/core/sc_catalog.mli: Database Format Opt Rel Soft_constraint
