lib/core/sc_catalog.ml: Currency Database Fmt List Mining Opt Rel Soft_constraint String Table
