lib/core/txn.ml: Database Fun List Rel Sc_catalog Soft_constraint Softdb Tuple
