lib/core/domain_tracker.ml: Database Expr Icdef List Maintenance Mining Printf Rel Sc_catalog Schema Soft_constraint Softdb Table Value
