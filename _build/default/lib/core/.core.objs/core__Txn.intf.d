lib/core/txn.mli: Softdb
