lib/core/maintenance.ml: Checker Database Expr Float Hashtbl Icdef List Logs Mining Option Printf Rel Sc_catalog Schema Soft_constraint String Table Tuple Value
