lib/core/soft_constraint.mli: Expr Format Icdef Mining Rel
