lib/core/softdb.mli: Database Exec Icdef Maintenance Opt Rel Sc_catalog Soft_constraint Sqlfe Stats
