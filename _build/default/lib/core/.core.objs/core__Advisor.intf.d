lib/core/advisor.mli: Database Opt Rel Sc_catalog Selection Soft_constraint Sqlfe Stats
