lib/core/currency.mli:
