lib/core/soft_constraint.ml: Expr Fmt Icdef Mining Printf Rel
