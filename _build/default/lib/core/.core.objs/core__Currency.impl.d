lib/core/currency.ml: Float
