lib/core/exception_table.ml: Database Expr List Rel Schema Soft_constraint String Table Tuple
