lib/core/selection.ml: Exec Float Fmt Icdef List Opt Rel Sc_catalog Soft_constraint
