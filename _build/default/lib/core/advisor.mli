(** The discovery stage of the SC process (paper §3.2),
    workload-directed: "input from the optimizer, the database's
    statistics, and the workload can likely be used to direct the search
    towards those characterizations that would be most beneficial."

    The advisor parses the workload, extracts mining {!targets} — column
    pairs co-occurring in predicates, predicate columns paired with
    indexed columns (the [10] payoff case), join paths with
    range-constrained columns on both sides, grouped/ordered tables —
    mines each family, wraps the results as candidate ASCs/SSCs, and
    hands them to {!Selection}. *)

open Rel

type targets = {
  pair_targets : (string * (string * string)) list;
      (** table, (column, column) *)
  hole_targets : (string * string * string * string * string * string) list;
      (** left table, right table, join left, join right, A col, B col *)
  fd_targets : (string * string list) list;
      (** table, key columns to exclude *)
}

val extract_targets : Database.t -> Sqlfe.Ast.query list -> targets

val mine_candidates :
  ?confidences:float list -> Database.t -> targets -> Soft_constraint.t list
(** Bands at 100% become ASC candidates, lower confidences SSC
    candidates. *)

type outcome = {
  candidates : int;
  assessed : Selection.assessment list;  (** the selected subset *)
  installed : Soft_constraint.t list;
}

val advise :
  ?flags:Opt.Rewrite.flags -> ?mutations_per_workload:float -> ?k:int ->
  ?confidences:float list -> ?probation:bool -> db:Database.t ->
  stats:Stats.Runstats.t -> catalog:Sc_catalog.t ->
  workload:Sqlfe.Ast.query list -> unit -> outcome
(** Discover → select → install into [catalog].  With [probation] the
    winners are installed in the [Probation] state — monitored but not yet
    exploited — until {!Maintenance.promote_survivors} judges them
    (§3.2). *)
