(* The discovery stage of the SC process (paper §3.2), workload-directed:
   "input from the optimizer, the database's statistics, and the workload
   can likely be used to direct the search towards those characterizations
   that would be most beneficial."

   The advisor parses the workload, extracts
   - column pairs of one table that co-occur in predicates (targets for
     linear-correlation and difference-band mining, per [10]),
   - join paths with range-constrained columns on both sides (targets
     for join-hole mining, per [8]),
   - tables with GROUP BY / ORDER BY usage (targets for FD mining),
   mines each family, wraps the results as candidate ASCs/SSCs, and hands
   them to {!Selection}. *)

open Rel
open Opt

type targets = {
  pair_targets : (string * (string * string)) list; (* table, (colA, colB) *)
  hole_targets :
    (string * string * string * string * string * string) list;
      (* left table, right table, join_left, join_right, A col, B col *)
  fd_targets : (string * string list) list; (* table, key columns to skip *)
}

let norm = String.lowercase_ascii

let blocks_of_query q =
  let rec go acc = function
    | Logical.Block b -> b :: acc
    | Logical.Union ts -> List.fold_left go acc ts
  in
  go [] (Logical.of_query q)

(* columns of [alias] referenced in single-table predicates *)
let pred_cols db (block : Logical.block) =
  let tbl_cols : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (p : Logical.pred_item) ->
      List.iter
        (fun r ->
          match Logical.sources_of_col db block r with
          | [ s ] ->
              let key = norm s.Logical.table in
              let cur = Option.value (Hashtbl.find_opt tbl_cols key) ~default:[] in
              if not (List.mem (norm r.Expr.col) cur) then
                Hashtbl.replace tbl_cols key (norm r.Expr.col :: cur)
          | _ -> ())
        (Expr.cols_of_pred p.Logical.pred))
    block.Logical.preds;
  tbl_cols

let extract_targets db (workload : Sqlfe.Ast.query list) : targets =
  let pairs = ref [] and holes = ref [] and fds = ref [] in
  let add_pair table a b =
    let key = (norm table, if a < b then (a, b) else (b, a)) in
    if not (List.mem key !pairs) then pairs := key :: !pairs
  in
  List.iter
    (fun q ->
      List.iter
        (fun (block : Logical.block) ->
          let tbl_cols = pred_cols db block in
          (* per-table co-occurring predicate columns, plus each predicate
             column paired with the table's indexed columns — the paper's
             [10] payoff case is exactly "predicate on B, index on A" *)
          Hashtbl.iter
            (fun table cols ->
              List.iter
                (fun a ->
                  List.iter (fun b -> if a < b then add_pair table a b) cols)
                cols;
              let indexed =
                List.filter_map
                  (fun idx ->
                    match Rel.Index.columns idx with
                    | [ c ] -> Some (norm c)
                    | _ -> None)
                  (Database.indexes_on db table)
              in
              List.iter
                (fun a ->
                  List.iter
                    (fun b -> if a <> b then add_pair table a b)
                    indexed)
                cols)
            tbl_cols;
          (* join paths with single-table range columns on both sides *)
          List.iter
            (fun (p : Logical.pred_item) ->
              match p.Logical.pred with
              | Expr.Cmp (Expr.Eq, Expr.Col ra, Expr.Col rb) -> (
                  match
                    ( Logical.sources_of_col db block ra,
                      Logical.sources_of_col db block rb )
                  with
                  | [ sa ], [ sb ]
                    when norm sa.Logical.alias <> norm sb.Logical.alias ->
                      let cols_of s =
                        Option.value
                          (Hashtbl.find_opt (pred_cols db block)
                             (norm s.Logical.table))
                          ~default:[]
                      in
                      List.iter
                        (fun ca ->
                          List.iter
                            (fun cb ->
                              if
                                ca <> norm ra.Expr.col
                                && cb <> norm rb.Expr.col
                              then
                                let entry =
                                  ( norm sa.Logical.table,
                                    norm sb.Logical.table,
                                    norm ra.Expr.col,
                                    norm rb.Expr.col,
                                    ca,
                                    cb )
                                in
                                if not (List.mem entry !holes) then
                                  holes := entry :: !holes)
                            (cols_of sb))
                        (cols_of sa)
                  | _ -> ())
              | _ -> ())
            block.Logical.preds;
          (* group/order usage *)
          if block.Logical.group_by <> [] || block.Logical.order_by <> [] then
            List.iter
              (fun (s : Logical.source) ->
                let key = norm s.Logical.table in
                if not (List.mem_assoc key !fds) then begin
                  let keys =
                    List.concat_map
                      (fun ic ->
                        match ic.Icdef.body with
                        | Icdef.Primary_key ks | Icdef.Unique ks -> ks
                        | _ -> [])
                      (Database.constraints_on db s.Logical.table)
                  in
                  fds := (key, keys) :: !fds
                end)
              block.Logical.from)
        (blocks_of_query q))
    workload;
  { pair_targets = !pairs; hole_targets = !holes; fd_targets = !fds }

(* ---- candidate generation -------------------------------------------------- *)

let fresh_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "%s_%d" prefix !counter

let mine_candidates ?(confidences = [ 1.0; 0.99; 0.9 ]) db targets =
  let candidates = ref [] in
  let add sc = candidates := sc :: !candidates in
  let anchored table =
    match Database.find_table db table with
    | Some tbl -> Some (tbl, Table.mutations tbl)
    | None -> None
  in
  (* correlations and difference bands over predicate pairs *)
  List.iter
    (fun (table, (a, b)) ->
      match anchored table with
      | None -> ()
      | Some (tbl, muts) ->
          (match Mining.Correlation.mine ~confidences tbl ~col_a:a ~col_b:b with
          | Some corr ->
              List.iter
                (fun (band : Mining.Correlation.band) ->
                  let kind =
                    if band.Mining.Correlation.confidence >= 1.0 then
                      Soft_constraint.Absolute
                    else
                      Soft_constraint.Statistical
                        band.Mining.Correlation.confidence
                  in
                  add
                    (Soft_constraint.make
                       ~name:(fresh_name (Printf.sprintf "corr_%s_%s_%s" table a b))
                       ~table ~kind ~installed_at_mutations:muts
                       (Soft_constraint.Corr_stmt (corr, band))))
                corr.Mining.Correlation.bands
          | None -> ());
          (match Mining.Diff_band.mine ~confidences tbl ~col_hi:a ~col_lo:b with
          | Some diff ->
              List.iter
                (fun (band : Mining.Diff_band.band) ->
                  let kind =
                    if band.Mining.Diff_band.confidence >= 1.0 then
                      Soft_constraint.Absolute
                    else
                      Soft_constraint.Statistical
                        band.Mining.Diff_band.confidence
                  in
                  add
                    (Soft_constraint.make
                       ~name:(fresh_name (Printf.sprintf "diff_%s_%s_%s" table a b))
                       ~table ~kind ~installed_at_mutations:muts
                       (Soft_constraint.Diff_stmt (diff, band))))
                diff.Mining.Diff_band.bands
          | None -> ()))
    targets.pair_targets;
  (* join holes *)
  List.iter
    (fun (lt, rt, jl, jr, ca, cb) ->
      match (Database.find_table db lt, Database.find_table db rt) with
      | Some left, Some right -> (
          match
            Mining.Join_holes.mine ~left ~right ~join_left:jl ~join_right:jr
              ~left_col:ca ~right_col:cb ()
          with
          | Some h when h.Mining.Join_holes.rects <> [] ->
              add
                (Soft_constraint.make
                   ~name:(fresh_name (Printf.sprintf "holes_%s_%s" lt rt))
                   ~table:lt ~kind:Soft_constraint.Absolute
                   ~installed_at_mutations:(Table.mutations left)
                   (Soft_constraint.Holes_stmt h))
          | _ -> ())
      | _ -> ())
    targets.hole_targets;
  (* functional dependencies *)
  List.iter
    (fun (table, keys) ->
      match anchored table with
      | None -> ()
      | Some (tbl, muts) ->
          List.iter
            (fun fd ->
              add
                (Soft_constraint.make
                   ~name:
                     (fresh_name
                        (Printf.sprintf "fd_%s_%s" table fd.Mining.Fd_mine.rhs))
                   ~table ~kind:Soft_constraint.Absolute
                   ~installed_at_mutations:muts (Soft_constraint.Fd_stmt fd)))
            (Mining.Fd_mine.mine ~max_lhs:2 ~exclude_keys:keys tbl))
    targets.fd_targets;
  List.rev !candidates

(* ---- end-to-end: discover → select → install -------------------------------- *)

type outcome = {
  candidates : int;
  assessed : Selection.assessment list;
  installed : Soft_constraint.t list;
}

let advise ?flags ?mutations_per_workload ?k ?confidences
    ?(probation = false) ~db ~stats ~catalog ~workload () =
  let targets = extract_targets db workload in
  let candidates = mine_candidates ?confidences db targets in
  let selected =
    Selection.select ?flags ?mutations_per_workload ?k ~db ~stats ~catalog
      ~workload candidates
  in
  let installed =
    List.map (fun (a : Selection.assessment) -> a.Selection.sc) selected
  in
  List.iter
    (fun (sc : Soft_constraint.t) ->
      (* §3.2: optionally hold the winners back for a probationary period
         before the optimizer may rely on them *)
      if probation then sc.Soft_constraint.state <- Soft_constraint.Probation;
      Sc_catalog.add catalog sc)
    installed;
  { candidates = List.length candidates; assessed = selected; installed }
