(** The soft-constraint catalog — the registry the paper argues RDBMSs
    lack ("there is no mechanism in RDBMSs to represent such
    characterizations and to maintain them", §3.2).

    Besides storage and lookup it produces the optimizer's view: a
    {!Opt.Rewrite.ctx} assembled from every {e usable} constraint, with
    SSC confidences decayed by the currency model and exception-backed
    ASCs routed exclusively through the exception-union rule. *)

open Rel

type t = {
  mutable scs : Soft_constraint.t list;
  mutable exception_tables : (string * string) list;
      (** constraint name → exception table name *)
}

val create : unit -> t

exception Duplicate_name of string

val add : t -> Soft_constraint.t -> unit
val find : t -> string -> Soft_constraint.t option

val drop : t -> string -> unit
(** Marks the constraint [Dropped] and removes it. *)

val all : t -> Soft_constraint.t list
val on_table : t -> string -> Soft_constraint.t list

val usable : t -> Soft_constraint.t list
(** The [Active] entries. *)

val register_exception_table : t -> constraint_name:string -> table:string ->
  unit

val exception_table_for : t -> string -> string option

val mutations_of : Database.t -> string -> int
val rows_of : Database.t -> string -> int

val current_confidence : Database.t -> Soft_constraint.t -> float
(** Confidence usable {e now}: the base confidence decayed by
    {!Currency.usable_confidence} over the mutations since the anchor. *)

val rewrite_ctx : ?flags:Opt.Rewrite.flags -> t -> Database.t ->
  Opt.Rewrite.ctx

val pp : Format.formatter -> t -> unit
