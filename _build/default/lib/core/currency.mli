(** The currency model of paper §3.3: "a second dimension of statistics to
    measure the potential error in the SSC statement, based upon activity
    since the last time it was updated."

    If an SSC held with confidence [c] when its table of [N] rows was
    last inspected, and [u] mutations have happened since, then — even if
    every mutation broke the constraint for a distinct row — the fraction
    still satisfying it is at least [c − u/N].  The paper's example: 1M
    rows, 1k updates/day ⇒ ≈3% bound after a month. *)

val drift : updates_since:int -> table_rows:int -> float
(** [min 1 (u / N)]. *)

val usable_confidence : base:float -> updates_since:int -> table_rows:int ->
  float
(** [max 0 (base − drift)] — a true lower bound on the current
    confidence (verified as a property test). *)

val stale_beyond : threshold:float -> updates_since:int -> table_rows:int ->
  bool

val updates_until : base:float -> floor:float -> table_rows:int -> int
(** Mutations before the usable confidence falls below [floor]. *)
