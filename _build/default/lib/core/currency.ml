(* The currency model of paper §3.3: "a second dimension of statistics to
   measure the potential error in the SSC statement, based upon activity
   since the last time it was updated."

   If an SSC held with confidence c when its table of N rows was last
   inspected, and u mutations have happened since, then — in the worst
   case where every mutation broke the constraint for a distinct row —
   the fraction still satisfying it is at least c − u/N.  The paper's
   example: 1M rows, 1k updates/day ⇒ ≈3%% bound after a month. *)

let drift ~updates_since ~table_rows =
  if table_rows <= 0 then 1.0
  else
    min 1.0 (float_of_int (max 0 updates_since) /. float_of_int table_rows)

(* Lower bound on the confidence usable *now*. *)
let usable_confidence ~base ~updates_since ~table_rows =
  max 0.0 (base -. drift ~updates_since ~table_rows)

(* An ASC whose table has seen any mutation since validation can no longer
   be trusted for rewrite unless maintenance re-validated it; this
   predicate captures "fresh enough for estimation" instead. *)
let stale_beyond ~threshold ~updates_since ~table_rows =
  drift ~updates_since ~table_rows > threshold

(* Updates before the usable confidence falls below [floor]. *)
let updates_until ~base ~floor ~table_rows =
  if base <= floor then 0
  else int_of_float (Float.round ((base -. floor) *. float_of_int table_rows))
