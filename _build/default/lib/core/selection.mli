(** The selection stage of the SC process (paper §3.2): "the selection
    stage chooses the most promising of the discovered SCs to keep …
    based on the estimated utility of each for the optimizer with respect
    to the optimizer's capabilities, the database's statistics, and the
    workload", weighed against predicted maintenance cost.

    Benefit is measured with the optimizer itself: each workload query is
    optimized with and without the candidate installed; the estimated
    cost saved — plus credit when the candidate changed the chosen plan
    at all (an SSC can improve a plan while {e raising} its estimate) —
    is the utility. *)

open Rel

type assessment = {
  sc : Soft_constraint.t;
  benefit : float;  (** estimated cost saved across the workload *)
  plans_changed : int;  (** queries whose physical plan differed *)
  maintenance_cost : float;
  net : float;
}

val maintenance_cost : ?mutations_per_workload:float -> Soft_constraint.t ->
  float
(** Class-based upkeep estimate; SSCs (asynchronous) are an order of
    magnitude cheaper than ASCs (§3.3). *)

val assess :
  ?flags:Opt.Rewrite.flags -> ?mutations_per_workload:float ->
  db:Database.t -> stats:Stats.Runstats.t -> catalog:Sc_catalog.t ->
  workload:Sqlfe.Ast.query list -> Soft_constraint.t list -> assessment list

val select :
  ?flags:Opt.Rewrite.flags -> ?mutations_per_workload:float -> ?k:int ->
  db:Database.t -> stats:Stats.Runstats.t -> catalog:Sc_catalog.t ->
  workload:Sqlfe.Ast.query list -> Soft_constraint.t list -> assessment list
(** The [k] best candidates with positive net utility, best first. *)

val pp_assessment : Format.formatter -> assessment -> unit
