(** Sybase-style min/max soft constraints (paper §2 and §4.2): "Sybase
    will maintain max and min information for a table attribute …
    available as 'constraint' information to the optimizer which can
    abbreviate range conditions in a query.  The 'SCs' are maintained
    synchronously … so serve as ASCs."

    A tracked column gets an ASC [CHECK (col BETWEEN lo AND hi)] on its
    current extremes, maintained with the synchronous-widening policy: an
    insert outside the range widens the statement in O(1) instead of
    violating it, so the SC is valid at every instant — the §4.2
    requirement that "the ASC has to be available whenever the query is
    executed".  The optimizer then abbreviates range conditions: a query
    range beyond the domain proves emptiness; an open-ended range closes
    at the maintained bound. *)

open Rel

val sc_name : table:string -> column:string -> string

val track :
  ?columns:string list -> Softdb.t -> table:string -> Soft_constraint.t list
(** Install min/max SCs for the given columns (default: every
    numeric/date column), with the widening policy set.  Columns that are
    entirely NULL are skipped. *)

val current_range :
  Softdb.t -> table:string -> column:string -> (Value.t * Value.t) option
(** The maintained [lo, hi] while the SC is active. *)

val retighten : Softdb.t -> table:string -> unit
(** Deletes can leave the maintained range looser than the data (sound,
    sub-optimal); re-mine the exact extremes — the asynchronous "return
    to optimal characterization" of §4.3. *)
