lib/rel/value.mli: Date Format
