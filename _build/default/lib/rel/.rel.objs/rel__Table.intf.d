lib/rel/table.mli: Schema Tuple
