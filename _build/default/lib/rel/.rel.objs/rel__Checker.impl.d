lib/rel/checker.ml: Expr Fmt Hashtbl Icdef Index List Printf Schema String Table Tuple Value
