lib/rel/csvio.ml: Array Buffer Database Date Fun In_channel List Printf Schema String Table Tuple Value
