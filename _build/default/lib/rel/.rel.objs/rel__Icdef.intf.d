lib/rel/icdef.mli: Expr Format
