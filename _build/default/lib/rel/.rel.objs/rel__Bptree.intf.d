lib/rel/bptree.mli:
