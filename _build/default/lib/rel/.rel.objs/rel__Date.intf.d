lib/rel/date.mli: Format
