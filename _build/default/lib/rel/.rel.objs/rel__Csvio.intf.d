lib/rel/csvio.mli: Database Table
