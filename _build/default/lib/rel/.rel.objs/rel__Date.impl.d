lib/rel/date.ml: Fmt Printf Stdlib String
