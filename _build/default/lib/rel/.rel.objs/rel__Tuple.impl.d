lib/rel/tuple.ml: Array Fmt Printf Schema Stdlib Value
