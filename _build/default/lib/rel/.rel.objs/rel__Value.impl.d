lib/rel/value.ml: Date Float Fmt Hashtbl Printf Stdlib String
