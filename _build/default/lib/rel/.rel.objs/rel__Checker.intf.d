lib/rel/checker.mli: Format Icdef Index Table Tuple
