lib/rel/database.mli: Checker Format Icdef Index Schema Table Tuple
