lib/rel/database.ml: Checker Fmt Hashtbl Icdef Index List Printf Schema String Table Tuple Value
