lib/rel/table.ml: Array List Printf Schema Tuple
