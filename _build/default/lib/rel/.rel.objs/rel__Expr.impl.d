lib/rel/expr.ml: Array Fmt List Option Schema String Tuple Value
