lib/rel/icdef.ml: Expr Fmt List String
