lib/rel/expr.mli: Date Format Schema Tuple Value
