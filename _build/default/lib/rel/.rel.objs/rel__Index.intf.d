lib/rel/index.mli: Table Tuple Value
