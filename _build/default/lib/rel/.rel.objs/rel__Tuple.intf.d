lib/rel/tuple.mli: Format Schema Value
