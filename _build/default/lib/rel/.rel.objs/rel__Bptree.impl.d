lib/rel/bptree.ml: Array List Option Printf
