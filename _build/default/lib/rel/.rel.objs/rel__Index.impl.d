lib/rel/index.ml: Array Bptree Fmt List Option Printf Schema Stdlib Table Tuple Value
