(** Table schemas: ordered, named, typed columns. *)

type column = { name : string; dtype : Value.dtype; nullable : bool }

type t = { table : string; columns : column array }

val column : ?nullable:bool -> string -> Value.dtype -> column
(** [column ?nullable name dtype]; [nullable] defaults to [true]. *)

val make : string -> column list -> t
(** Raises [Invalid_argument] on duplicate column names
    (case-insensitive). *)

val arity : t -> int
val columns : t -> column list
val column_at : t -> int -> column
val column_names : t -> string list

val find_index : t -> string -> int option
(** Case-insensitive position lookup. *)

val index_exn : t -> string -> int
(** Raises [Invalid_argument] when the column does not exist. *)

val dtype_of : t -> string -> Value.dtype
(** Type of a column by name; raises like {!index_exn}. *)

val pp : Format.formatter -> t -> unit
