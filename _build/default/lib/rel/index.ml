(* Secondary indexes over heap tables: a B+-tree keyed on the projected
   column values, mapping each distinct key to the sorted list of rids
   holding it.  Composite keys compare lexicographically via
   {!Tuple.compare}. *)

module Key_tree = Bptree.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = {
  name : string;
  table : string;
  columns : string list; (* indexed column names, in key order *)
  positions : int array; (* their positions in the table schema *)
  unique : bool;
  tree : Table.rid list Key_tree.t;
}

exception Unique_violation of string

let key_of t row = Tuple.project row t.positions

let create ~name ~table ~columns ?(unique = false) () =
  let schema = Table.schema table in
  let positions =
    Array.of_list (List.map (Schema.index_exn schema) columns)
  in
  let t =
    {
      name;
      table = Table.name table;
      columns;
      positions;
      unique;
      tree = Key_tree.create ~b:32 ();
    }
  in
  (* bulk-build from existing rows *)
  Table.iteri table ~f:(fun rid row ->
      let key = key_of t row in
      let existing =
        Option.value (Key_tree.find t.tree key) ~default:[]
      in
      if unique && existing <> [] then
        raise
          (Unique_violation
             (Printf.sprintf "unique index %s: duplicate key %s" name
                (Fmt.str "%a" Tuple.pp key)));
      ignore (Key_tree.insert t.tree key (rid :: existing)));
  t

let name t = t.name
let table_name t = t.table
let columns t = t.columns
let is_unique t = t.unique
let distinct_keys t = Key_tree.length t.tree

(* Maintenance hooks called by {!Database} on every table mutation. *)

let on_insert t rid row =
  let key = key_of t row in
  let existing = Option.value (Key_tree.find t.tree key) ~default:[] in
  if t.unique && existing <> [] then
    raise
      (Unique_violation
         (Printf.sprintf "unique index %s: duplicate key %s" t.name
            (Fmt.str "%a" Tuple.pp key)));
  ignore (Key_tree.insert t.tree key (rid :: existing))

let on_delete t rid row =
  let key = key_of t row in
  match Key_tree.find t.tree key with
  | None -> ()
  | Some rids -> (
      match List.filter (fun r -> r <> rid) rids with
      | [] -> ignore (Key_tree.remove t.tree key)
      | remaining -> ignore (Key_tree.insert t.tree key remaining))

let on_update t rid ~before ~after =
  if not (Tuple.equal (key_of t before) (key_of t after)) then begin
    on_delete t rid before;
    on_insert t rid after
  end

(* Probes. *)

let lookup t key = Option.value (Key_tree.find t.tree key) ~default:[]

let lookup_value t v = lookup t (Tuple.of_array [| v |])

type bound = Unbounded | Incl of Value.t | Excl of Value.t

let to_tree_bound = function
  | Unbounded -> Key_tree.Unbounded
  | Incl v -> Key_tree.Incl (Tuple.of_array [| v |])
  | Excl v -> Key_tree.Excl (Tuple.of_array [| v |])

(* Range scan over a single-column index (or the leading column of a
   composite one — in which case callers must treat results as a superset
   only when the index is single-column; we restrict to single-column). *)
let range t ~lo ~hi =
  if Array.length t.positions <> 1 then
    invalid_arg "Index.range: range probes require a single-column index";
  Key_tree.fold_range t.tree ~lo:(to_tree_bound lo) ~hi:(to_tree_bound hi)
    ~init:[]
    ~f:(fun acc _ rids -> List.rev_append rids acc)
  |> List.sort_uniq Stdlib.compare

let fold_range t ~lo ~hi ~init ~f =
  if Array.length t.positions <> 1 then
    invalid_arg "Index.fold_range: requires a single-column index";
  Key_tree.fold_range t.tree ~lo:(to_tree_bound lo) ~hi:(to_tree_bound hi)
    ~init
    ~f:(fun acc key rids -> f acc (Tuple.get key 0) rids)

let min_key t = Option.map fst (Key_tree.min_binding t.tree)
let max_key t = Option.map fst (Key_tree.max_binding t.tree)
