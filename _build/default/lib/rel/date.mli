(** Calendar dates.

    A date is a count of days since the civil epoch 1970-01-01 (negative
    before it).  The representation is deliberately transparent: day
    arithmetic ([t + n]) is ubiquitous in workload generators and the
    optimizer's interval reasoning. *)

type t = int
(** Days since 1970-01-01 (proleptic Gregorian). *)

val epoch : t
(** 1970-01-01. *)

val days_from_civil : year:int -> month:int -> day:int -> t
(** Exact conversion from a civil date (Hinnant's era algorithm). *)

val civil_from_days : t -> int * int * int
(** Inverse of {!days_from_civil}: [(year, month, day)]. *)

val is_leap_year : int -> bool

val days_in_month : year:int -> month:int -> int
(** Raises [Invalid_argument] if [month] is outside 1..12. *)

val of_ymd : int -> int -> int -> t
(** [of_ymd year month day].  Raises [Invalid_argument] on an invalid
    civil date (bad month, or day outside the month). *)

val to_ymd : t -> int * int * int

val year : t -> int
val month : t -> int
val day : t -> int

val add_days : t -> int -> t
val diff_days : t -> t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val min_date : t
(** 0001-01-01. *)

val max_date : t
(** 9999-12-31. *)

val weekday : t -> int
(** 0 = Monday … 6 = Sunday. *)

val to_string : t -> string
(** ISO [YYYY-MM-DD]. *)

val of_string : string -> t
(** Parses ISO [YYYY-MM-DD]; raises [Invalid_argument] otherwise. *)

val of_string_opt : string -> t option

val pp : Format.formatter -> t -> unit

val first_of_month : year:int -> month:int -> t
val last_of_month : year:int -> month:int -> t
