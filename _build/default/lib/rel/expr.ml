(* Scalar expressions and predicates over named column references.

   This is the lingua franca of the whole system: SQL parses into it, check
   and soft constraints are stated in it, the optimizer rewrites it, and
   the executor compiles it against a concrete tuple layout ({!Binding}).

   Predicates evaluate under SQL three-valued logic ({!Value.truth}). *)

type col_ref = { rel : string option; col : string }

let col ?rel name = { rel; col = name }

let col_ref_equal a b =
  String.lowercase_ascii a.col = String.lowercase_ascii b.col
  &&
  match (a.rel, b.rel) with
  | None, _ | _, None -> true (* unqualified matches any qualifier *)
  | Some x, Some y -> String.lowercase_ascii x = String.lowercase_ascii y

let pp_col_ref ppf r =
  match r.rel with
  | None -> Fmt.string ppf r.col
  | Some q -> Fmt.pf ppf "%s.%s" q r.col

type binop = Add | Sub | Mul | Div

type t =
  | Const of Value.t
  | Col of col_ref
  | Binop of binop * t * t
  | Neg of t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Cmp of cmp * t * t
  | Between of t * t * t (* expr BETWEEN lo AND hi *)
  | In_list of t * Value.t list
  | Is_null of t
  | Is_not_null of t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Ptrue
  | Pfalse

(* -------------------------------------------------------------------- *)
(* Constructors & structural helpers *)

let const v = Const v
let int i = Const (Value.Int i)
let str s = Const (Value.String s)
let date d = Const (Value.Date d)
let column ?rel name = Col (col ?rel name)

let cmp_negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let cmp_flip = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | Ptrue -> []
  | p -> [ p ]

let conjoin = function
  | [] -> Ptrue
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let rec cols_of_expr = function
  | Const _ -> []
  | Col r -> [ r ]
  | Binop (_, a, b) -> cols_of_expr a @ cols_of_expr b
  | Neg a -> cols_of_expr a

let rec cols_of_pred = function
  | Cmp (_, a, b) -> cols_of_expr a @ cols_of_expr b
  | Between (a, lo, hi) -> cols_of_expr a @ cols_of_expr lo @ cols_of_expr hi
  | In_list (a, _) -> cols_of_expr a
  | Is_null a | Is_not_null a -> cols_of_expr a
  | And (p, q) | Or (p, q) -> cols_of_pred p @ cols_of_pred q
  | Not p -> cols_of_pred p
  | Ptrue | Pfalse -> []

(* Substitute column references (used by rewrites to requalify). *)
let rec map_cols_expr f = function
  | Const v -> Const v
  | Col r -> Col (f r)
  | Binop (op, a, b) -> Binop (op, map_cols_expr f a, map_cols_expr f b)
  | Neg a -> Neg (map_cols_expr f a)

let rec map_cols_pred f = function
  | Cmp (c, a, b) -> Cmp (c, map_cols_expr f a, map_cols_expr f b)
  | Between (a, lo, hi) ->
      Between (map_cols_expr f a, map_cols_expr f lo, map_cols_expr f hi)
  | In_list (a, vs) -> In_list (map_cols_expr f a, vs)
  | Is_null a -> Is_null (map_cols_expr f a)
  | Is_not_null a -> Is_not_null (map_cols_expr f a)
  | And (p, q) -> And (map_cols_pred f p, map_cols_pred f q)
  | Or (p, q) -> Or (map_cols_pred f p, map_cols_pred f q)
  | Not p -> Not (map_cols_pred f p)
  | (Ptrue | Pfalse) as p -> p

(* -------------------------------------------------------------------- *)
(* Pretty-printing (SQL-ish) *)

let string_of_binop = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let string_of_cmp = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Col r -> pp_col_ref ppf r
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp a (string_of_binop op) pp b
  | Neg a -> Fmt.pf ppf "(-%a)" pp a

let rec pp_pred ppf = function
  | Cmp (c, a, b) -> Fmt.pf ppf "%a %s %a" pp a (string_of_cmp c) pp b
  | Between (a, lo, hi) ->
      Fmt.pf ppf "%a BETWEEN %a AND %a" pp a pp lo pp hi
  | In_list (a, vs) ->
      Fmt.pf ppf "%a IN (%a)" pp a
        (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
        vs
  | Is_null a -> Fmt.pf ppf "%a IS NULL" pp a
  | Is_not_null a -> Fmt.pf ppf "%a IS NOT NULL" pp a
  | And (p, q) -> Fmt.pf ppf "(%a AND %a)" pp_pred p pp_pred q
  | Or (p, q) -> Fmt.pf ppf "(%a OR %a)" pp_pred p pp_pred q
  | Not p -> Fmt.pf ppf "NOT (%a)" pp_pred p
  | Ptrue -> Fmt.string ppf "TRUE"
  | Pfalse -> Fmt.string ppf "FALSE"

let to_string_pred p = Fmt.str "%a" pp_pred p

(* -------------------------------------------------------------------- *)
(* Compilation against a tuple layout *)

module Binding = struct
  (* The layout of a tuple flowing through an operator: for each position,
     the qualifier (table name or alias) and column name that produced it,
     plus its declared type when known. *)
  type slot = {
    qualifier : string option;
    name : string;
    dtype : Value.dtype option;
  }

  type t = slot array

  let of_schema ?alias (schema : Schema.t) : t =
    let qualifier = Some (Option.value alias ~default:schema.Schema.table) in
    Array.map
      (fun c ->
        { qualifier; name = c.Schema.name; dtype = Some c.Schema.dtype })
      schema.Schema.columns

  let concat (a : t) (b : t) : t = Array.append a b

  let arity (t : t) = Array.length t

  let slot_matches r (s : slot) =
    String.lowercase_ascii s.name = String.lowercase_ascii r.col
    &&
    match r.rel with
    | None -> true
    | Some q -> (
        match s.qualifier with
        | None -> false
        | Some sq -> String.lowercase_ascii sq = String.lowercase_ascii q)

  exception Unresolved of col_ref
  exception Ambiguous of col_ref

  let resolve (t : t) r =
    let hits = ref [] in
    Array.iteri (fun i s -> if slot_matches r s then hits := i :: !hits) t;
    match !hits with
    | [ i ] -> i
    | [] -> raise (Unresolved r)
    | _ :: _ :: _ ->
        (* allow the same physical column exposed twice only if identical
           name+qualifier would be a layout bug; report ambiguity *)
        raise (Ambiguous r)

  let resolve_opt t r = try Some (resolve t r) with Unresolved _ -> None

  let pp ppf (t : t) =
    Fmt.pf ppf "[%a]"
      (Fmt.array ~sep:(Fmt.any "; ") (fun ppf s ->
           match s.qualifier with
           | None -> Fmt.string ppf s.name
           | Some q -> Fmt.pf ppf "%s.%s" q s.name))
      t
end

let rec eval (binding : Binding.t) e (row : Tuple.t) : Value.t =
  match e with
  | Const v -> v
  | Col r -> Tuple.get row (Binding.resolve binding r)
  | Binop (op, a, b) -> (
      let va = eval binding a row and vb = eval binding b row in
      match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb)
  | Neg a -> Value.neg (eval binding a row)

let rec eval_pred (binding : Binding.t) p (row : Tuple.t) : Value.truth =
  match p with
  | Ptrue -> Value.True
  | Pfalse -> Value.False
  | Cmp (c, a, b) -> (
      let va = eval binding a row and vb = eval binding b row in
      match Value.compare_sql va vb with
      | None -> Value.Unknown
      | Some n ->
          Value.truth_of_bool
            (match c with
            | Eq -> n = 0
            | Ne -> n <> 0
            | Lt -> n < 0
            | Le -> n <= 0
            | Gt -> n > 0
            | Ge -> n >= 0))
  | Between (a, lo, hi) ->
      eval_pred binding (And (Cmp (Ge, a, lo), Cmp (Le, a, hi))) row
  | In_list (a, vs) ->
      let va = eval binding a row in
      if Value.is_null va then Value.Unknown
      else if List.exists (fun v -> Value.equal_total va v) vs then Value.True
      else if List.exists Value.is_null vs then Value.Unknown
      else Value.False
  | Is_null a -> Value.truth_of_bool (Value.is_null (eval binding a row))
  | Is_not_null a ->
      Value.truth_of_bool (not (Value.is_null (eval binding a row)))
  | And (p, q) ->
      Value.truth_and (eval_pred binding p row) (eval_pred binding q row)
  | Or (p, q) ->
      Value.truth_or (eval_pred binding p row) (eval_pred binding q row)
  | Not p -> Value.truth_not (eval_pred binding p row)

(* Compiled forms: column references are resolved to positions once, so the
   per-row cost is a closure call rather than a binding search.  The
   executor uses these on every operator. *)

let rec compile (binding : Binding.t) e : Tuple.t -> Value.t =
  match e with
  | Const v -> fun _ -> v
  | Col r ->
      let i = Binding.resolve binding r in
      fun row -> Tuple.get row i
  | Binop (op, a, b) ->
      let fa = compile binding a and fb = compile binding b in
      let g =
        match op with
        | Add -> Value.add
        | Sub -> Value.sub
        | Mul -> Value.mul
        | Div -> Value.div
      in
      fun row -> g (fa row) (fb row)
  | Neg a ->
      let fa = compile binding a in
      fun row -> Value.neg (fa row)

let compile_cmp c =
  match c with
  | Eq -> fun n -> n = 0
  | Ne -> fun n -> n <> 0
  | Lt -> fun n -> n < 0
  | Le -> fun n -> n <= 0
  | Gt -> fun n -> n > 0
  | Ge -> fun n -> n >= 0

let rec compile_pred (binding : Binding.t) p : Tuple.t -> Value.truth =
  match p with
  | Ptrue -> fun _ -> Value.True
  | Pfalse -> fun _ -> Value.False
  | Cmp (c, a, b) ->
      let fa = compile binding a and fb = compile binding b in
      let test = compile_cmp c in
      fun row -> (
        match Value.compare_sql (fa row) (fb row) with
        | None -> Value.Unknown
        | Some n -> Value.truth_of_bool (test n))
  | Between (a, lo, hi) ->
      compile_pred binding (And (Cmp (Ge, a, lo), Cmp (Le, a, hi)))
  | In_list (a, vs) ->
      let fa = compile binding a in
      let has_null = List.exists Value.is_null vs in
      fun row ->
        let va = fa row in
        if Value.is_null va then Value.Unknown
        else if List.exists (fun v -> Value.equal_total va v) vs then
          Value.True
        else if has_null then Value.Unknown
        else Value.False
  | Is_null a ->
      let fa = compile binding a in
      fun row -> Value.truth_of_bool (Value.is_null (fa row))
  | Is_not_null a ->
      let fa = compile binding a in
      fun row -> Value.truth_of_bool (not (Value.is_null (fa row)))
  | And (p, q) ->
      let fp = compile_pred binding p and fq = compile_pred binding q in
      fun row -> Value.truth_and (fp row) (fq row)
  | Or (p, q) ->
      let fp = compile_pred binding p and fq = compile_pred binding q in
      fun row -> Value.truth_or (fp row) (fq row)
  | Not p ->
      let fp = compile_pred binding p in
      fun row -> Value.truth_not (fp row)

let compile_filter binding p =
  let fp = compile_pred binding p in
  fun row -> Value.truth_to_bool (fp row)

(* A predicate *satisfies* a row when it evaluates to [True]; SQL WHERE
   discards both [False] and [Unknown]. *)
let satisfies binding p row = Value.truth_to_bool (eval_pred binding p row)

(* Check-constraint semantics differ: a row *violates* a check only when
   the predicate is [False]; [Unknown] passes (SQL standard). *)
let check_violated binding p row =
  match eval_pred binding p row with
  | Value.False -> true
  | Value.True | Value.Unknown -> false
