(** Secondary indexes over heap tables: a B+-tree keyed on the projected
    column values, mapping each distinct key to the rids holding it.
    Composite keys compare lexicographically. *)

type t

exception Unique_violation of string

val create :
  name:string -> table:Table.t -> columns:string list -> ?unique:bool ->
  unit -> t
(** Bulk-build from the table's current rows.  Raises {!Unique_violation}
    when [unique] and a duplicate key exists. *)

val name : t -> string
val table_name : t -> string
val columns : t -> string list
val is_unique : t -> bool

val distinct_keys : t -> int
(** Number of distinct key values currently indexed. *)

val key_of : t -> Tuple.t -> Tuple.t
(** The index key of a table row (projection onto the key columns). *)

(** {1 Maintenance} — called by {!Database} on every table mutation. *)

val on_insert : t -> Table.rid -> Tuple.t -> unit
val on_delete : t -> Table.rid -> Tuple.t -> unit
val on_update : t -> Table.rid -> before:Tuple.t -> after:Tuple.t -> unit

(** {1 Probes} *)

val lookup : t -> Tuple.t -> Table.rid list
(** Rids with exactly this (composite) key. *)

val lookup_value : t -> Value.t -> Table.rid list
(** Single-column convenience. *)

type bound = Unbounded | Incl of Value.t | Excl of Value.t

val range : t -> lo:bound -> hi:bound -> Table.rid list
(** Sorted rids whose key is within the bounds.  Only valid on
    single-column indexes (raises [Invalid_argument] otherwise). *)

val fold_range :
  t -> lo:bound -> hi:bound -> init:'a ->
  f:('a -> Value.t -> Table.rid list -> 'a) -> 'a

val min_key : t -> Tuple.t option
val max_key : t -> Tuple.t option
