(* Rows are immutable-by-convention arrays of values.  Most of the engine
   treats tuples as opaque; only storage mutates them in place (updates). *)

type t = Value.t array

let make = Array.of_list
let arity = Array.length
let get (t : t) i = t.(i)
let to_list = Array.to_list
let of_array (a : Value.t array) : t = a
let copy = Array.copy

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && (let n = Array.length a in
      let rec loop i = i >= n || (Value.equal_total a.(i) b.(i) && loop (i + 1)) in
      loop 0)

let compare (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then Stdlib.compare (Array.length a) (Array.length b)
    else
      match Value.compare_total a.(i) b.(i) with 0 -> loop (i + 1) | c -> c
  in
  loop 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let project (t : t) idxs = Array.map (fun i -> t.(i)) idxs

let concat (a : t) (b : t) : t = Array.append a b

(* Validate a tuple against a schema: arity, types (with int→float
   widening applied in place of the original value), and NOT NULL. *)
let conform (schema : Schema.t) (t : t) : (t, string) result =
  if arity t <> Schema.arity schema then
    Error
      (Printf.sprintf "arity mismatch: %d values for %d columns (table %s)"
         (arity t) (Schema.arity schema) schema.Schema.table)
  else
    let n = arity t in
    let out = Array.copy t in
    let rec loop i =
      if i >= n then Ok out
      else
        let c = Schema.column_at schema i in
        let v = t.(i) in
        if Value.is_null v && not c.Schema.nullable then
          Error
            (Printf.sprintf "null value for NOT NULL column %s.%s"
               schema.Schema.table c.Schema.name)
        else if not (Value.conforms c.Schema.dtype v) then
          Error
            (Printf.sprintf "type mismatch for column %s.%s: expected %s, got %s"
               schema.Schema.table c.Schema.name
               (Value.dtype_name c.Schema.dtype)
               (Value.to_debug v))
        else begin
          out.(i) <- Value.coerce c.Schema.dtype v;
          loop (i + 1)
        end
    in
    loop 0

let pp ppf t =
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") Value.pp) (to_list t)
