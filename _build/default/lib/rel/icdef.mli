(** Integrity constraint declarations.

    {!enforcement} captures the paper's spectrum (§1):
    - [Enforced] — a normal IC, checked on every mutation;
    - [Informational] — declared but never checked (an external promise
      holds it), still fully usable by the optimizer.

    Soft constraints (ASCs/SSCs) are {e not} declared here: they live in
    the soft-constraint catalog ({!Core.Sc_catalog}) with their own
    lifecycle, but reuse {!body} for their statements. *)

type enforcement = Enforced | Informational

type body =
  | Primary_key of string list
  | Unique of string list
  | Foreign_key of {
      columns : string list;
      ref_table : string;
      ref_columns : string list;
    }
  | Check of Expr.pred
  | Not_null of string

type t = {
  name : string;
  table : string;
  body : body;
  enforcement : enforcement;
}

val make : ?enforcement:enforcement -> name:string -> table:string -> body -> t
(** [enforcement] defaults to [Enforced]. *)

val is_enforced : t -> bool

val columns_of_body : body -> string list
(** The columns a constraint constrains (sorted, for [Check]). *)

val pp_body : Format.formatter -> body -> unit
val pp : Format.formatter -> t -> unit
