(** Rows: arrays of values, immutable by convention.

    The representation is transparent because storage (and only storage)
    updates slots in place; everything else treats tuples as values. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t
val to_list : t -> Value.t list
val of_array : Value.t array -> t
val copy : t -> t

val equal : t -> t -> bool
(** Pointwise {!Value.equal_total}. *)

val compare : t -> t -> int
(** Lexicographic {!Value.compare_total}; shorter tuples first on ties. *)

val hash : t -> int

val project : t -> int array -> t
(** [project row positions] extracts the given slots, in order. *)

val concat : t -> t -> t

val conform : Schema.t -> t -> (t, string) result
(** Validate against a schema: arity, types (with int→float widening
    applied in the returned copy), and NOT NULL.  The error is a
    human-readable reason. *)

val pp : Format.formatter -> t -> unit
