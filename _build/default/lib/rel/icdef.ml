(* Integrity constraint declarations.

   [enforcement] captures the paper's spectrum (§1):
   - [Enforced]       — a normal IC, checked on every mutation;
   - [Informational]  — declared but never checked (an external promise
     holds it), still fully usable by the optimizer.

   Soft constraints (ASCs/SSCs) are *not* declared here: they live in the
   soft-constraint catalog ({!Core.Sc_catalog}) with their own lifecycle,
   but reuse [body] for their statements. *)

type enforcement = Enforced | Informational

type body =
  | Primary_key of string list
  | Unique of string list
  | Foreign_key of {
      columns : string list;
      ref_table : string;
      ref_columns : string list;
    }
  | Check of Expr.pred
  | Not_null of string

type t = {
  name : string;
  table : string;
  body : body;
  enforcement : enforcement;
}

let make ?(enforcement = Enforced) ~name ~table body =
  { name; table; body; enforcement }

let is_enforced t = t.enforcement = Enforced

let columns_of_body = function
  | Primary_key cols | Unique cols -> cols
  | Foreign_key { columns; _ } -> columns
  | Check p ->
      List.map (fun r -> r.Expr.col) (Expr.cols_of_pred p)
      |> List.sort_uniq String.compare
  | Not_null c -> [ c ]

let pp_body ppf = function
  | Primary_key cols ->
      Fmt.pf ppf "PRIMARY KEY (%a)" Fmt.(list ~sep:(any ", ") string) cols
  | Unique cols ->
      Fmt.pf ppf "UNIQUE (%a)" Fmt.(list ~sep:(any ", ") string) cols
  | Foreign_key { columns; ref_table; ref_columns } ->
      Fmt.pf ppf "FOREIGN KEY (%a) REFERENCES %s (%a)"
        Fmt.(list ~sep:(any ", ") string)
        columns ref_table
        Fmt.(list ~sep:(any ", ") string)
        ref_columns
  | Check p -> Fmt.pf ppf "CHECK (%a)" Expr.pp_pred p
  | Not_null c -> Fmt.pf ppf "NOT NULL (%s)" c

let pp ppf t =
  Fmt.pf ppf "CONSTRAINT %s ON %s %a%s" t.name t.table pp_body t.body
    (match t.enforcement with
    | Enforced -> ""
    | Informational -> " NOT ENFORCED (informational)")
