(** CSV import/export for tables: comma-separated, double-quote escaping,
    header row of column names.  NULL is the empty unquoted field; an
    empty string is [""]. *)

exception Parse_error of string

val export : Table.t -> string -> unit
(** Write the table (header + rows) to a file. *)

val import : Database.t -> table:string -> string -> int
(** Load a CSV file into an existing table via the catalog (so enforced
    constraints and index maintenance apply).  The header must name a
    subset of the table's columns; missing columns become NULL.  Values
    parse according to the column's declared type.  Returns the number of
    rows inserted; raises {!Parse_error} on malformed input. *)
