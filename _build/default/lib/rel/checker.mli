(** Enforcement of integrity constraints on mutations.

    Decoupled from the catalog: the checker receives an {!env} of lookup
    callbacks, so {!Database} can wire it to live tables and indexes while
    tests can drive it with stubs.  Informational constraints (paper §1)
    are skipped by callers filtering on {!Icdef.is_enforced}; {!verify}
    ignores enforcement so the soft-constraint facility can validate any
    statement against the data. *)

type env = {
  find_table : string -> Table.t option;
  find_index : string -> string list -> Index.t option;
      (** a unique/PK lookup accelerator: given table and columns *)
}

type violation = { constraint_name : string; reason : string }

val pp_violation : Format.formatter -> violation -> unit

exception Constraint_violation of violation
(** Raised by {!Database}'s mutation API when an enforced constraint would
    be broken. *)

val check_row :
  env -> Icdef.t -> Table.t -> Tuple.t -> ?exclude:Table.rid -> unit ->
  violation option
(** Would inserting (or, with [exclude], updating) this row violate the
    constraint?  Key constraints use an index when {!env.find_index}
    provides one, a scan otherwise.  SQL semantics: UNIQUE ignores rows
    with NULL key parts; a NULL foreign key passes; CHECK passes on
    UNKNOWN. *)

val check_no_dangling_children :
  env -> all_constraints:Icdef.t list -> parent:Table.t -> Tuple.t ->
  violation option
(** Would deleting this parent row (or moving its key) strand child rows
    of some enforced FK?  RESTRICT semantics. *)

val verify : env -> Icdef.t -> (Table.rid * violation) list
(** Every violating row of the constraint over the current state,
    regardless of enforcement mode — the validation oracle for declaring
    soft constraints and building exception tables.  For key constraints
    this reports each member of a duplicate group beyond the first. *)

val holds : env -> Icdef.t -> bool
val violation_count : env -> Icdef.t -> int
