(** SQL values, their dynamic types, and three-valued logic.

    [Null] participates in SQL three-valued logic: comparisons against it
    are {!truth.Unknown}.  Ordering inside indexes and sorts uses the
    {e total} order {!compare_total} in which [Null] sorts first;
    predicate evaluation goes through {!compare_sql}, which surfaces
    unknowns. *)

type dtype = TInt | TFloat | TString | TBool | TDate
(** Column types. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of Date.t

type truth = True | False | Unknown
(** SQL's three-valued logic. *)

val dtype_name : dtype -> string
(** SQL spelling, e.g. [TDate] is ["DATE"]. *)

val dtype_of_string : string -> dtype option
(** Accepts the usual SQL type synonyms ([INTEGER], [DOUBLE], …). *)

val type_of : t -> dtype option
(** [None] for [Null]. *)

val is_null : t -> bool

val conforms : dtype -> t -> bool
(** Is this value storable in a column of this type?  [Null] conforms to
    every type; [Int] additionally conforms to [TFloat] (widening). *)

val coerce : dtype -> t -> t
(** Apply the widening {!conforms} permits (int → float). *)

val as_float : t -> float
(** Numeric value of an [Int] or [Float]; raises [Invalid_argument]
    otherwise. *)

val compare_total : t -> t -> int
(** Total order: [Null] first, then numerics (ints and floats compare by
    magnitude), dates, strings; different runtime types order by a fixed
    rank.  Used by indexes, sorts, and grouping. *)

val equal_total : t -> t -> bool

val compare_sql : t -> t -> int option
(** SQL comparison: [None] when either side is [Null]. *)

val truth_of_bool : bool -> truth
val truth_not : truth -> truth
val truth_and : truth -> truth -> truth
val truth_or : truth -> truth -> truth

val truth_to_bool : truth -> bool
(** WHERE semantics: only [True] qualifies. *)

val pp_truth : Format.formatter -> truth -> unit

exception Type_error of string
(** Raised by the arithmetic below on ill-typed operands (e.g.
    [String + Int]). *)

(** {1 Arithmetic}

    Integer operations stay integral; any float operand promotes.
    [Date ± Int] shifts by days; [Date - Date] is an [Int] day count.
    [Null] propagates; integer division by zero yields [Null]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

val escape_sql_string : string -> string
(** Double embedded single quotes, for SQL literal syntax. *)

val to_debug : t -> string
(** SQL-literal rendering, e.g. [DATE '1999-12-15'], ['it''s']. *)

val to_string : t -> string
(** Alias of {!to_debug}. *)

val pp : Format.formatter -> t -> unit

val hash : t -> int
(** Consistent with {!equal_total} (an [Int] and the equal [Float] hash
    alike). *)

(** {1 Checked projections} — raise {!Type_error} on mismatch. *)

val int_exn : t -> int
val float_exn : t -> float
val string_exn : t -> string
val bool_exn : t -> bool
val date_exn : t -> Date.t
