(* Enforcement of integrity constraints on mutations.

   The checker is deliberately decoupled from the catalog: it receives an
   [env] of lookup callbacks, so {!Database} can wire it to live tables and
   indexes while tests can drive it with stubs.  Informational constraints
   (paper §1) are skipped here by construction — callers filter on
   {!Icdef.is_enforced} — but {!verify} ignores enforcement so that the
   soft-constraint facility can validate *any* statement against the data. *)

type env = {
  find_table : string -> Table.t option;
  (* a unique/pk lookup accelerator: given table and columns, an index *)
  find_index : string -> string list -> Index.t option;
}

type violation = { constraint_name : string; reason : string }

let violation name fmt =
  Printf.ksprintf (fun reason -> { constraint_name = name; reason }) fmt

let pp_violation ppf v =
  Fmt.pf ppf "constraint %s violated: %s" v.constraint_name v.reason

exception Constraint_violation of violation

let key_values schema row cols =
  List.map (fun c -> Tuple.get row (Schema.index_exn schema c)) cols

(* Does [table] contain a row (other than [exclude]) whose [cols] equal
   [vals]?  Uses an index when available. *)
let exists_with_key env table cols vals ?exclude () =
  match env.find_index (Table.name table) cols with
  | Some idx ->
      let rids = Index.lookup idx (Tuple.make vals) in
      List.exists (fun rid -> Some rid <> exclude) rids
  | None ->
      let schema = Table.schema table in
      let found = ref false in
      Table.iteri table ~f:(fun rid row ->
          if (not !found) && Some rid <> exclude then
            let vs = key_values schema row cols in
            if List.for_all2 Value.equal_total vs vals then found := true);
      !found

(* --- per-constraint checks on a candidate row ------------------------- *)

let check_key_like env ~kind ic table cols row ?exclude () =
  let schema = Table.schema table in
  let vals = key_values schema row cols in
  let any_null = List.exists Value.is_null vals in
  if any_null then
    if kind = `Primary then
      Some (violation ic.Icdef.name "primary key column is NULL")
    else None (* SQL UNIQUE ignores rows with NULL key parts *)
  else if exists_with_key env table cols vals ?exclude () then
    Some
      (violation ic.Icdef.name "duplicate key (%s)"
         (String.concat ", " (List.map Value.to_debug vals)))
  else None

let check_foreign_key env ic ~columns ~ref_table ~ref_columns table row =
  let schema = Table.schema table in
  let vals = key_values schema row columns in
  if List.exists Value.is_null vals then None (* SQL: null FK passes *)
  else
    match env.find_table ref_table with
    | None ->
        Some (violation ic.Icdef.name "referenced table %s missing" ref_table)
    | Some parent ->
        if exists_with_key env parent ref_columns vals () then None
        else
          Some
            (violation ic.Icdef.name
               "no row in %s with (%s) = (%s)" ref_table
               (String.concat ", " ref_columns)
               (String.concat ", " (List.map Value.to_debug vals)))

let check_row env ic table row ?exclude () =
  let schema = Table.schema table in
  let binding = Expr.Binding.of_schema schema in
  match ic.Icdef.body with
  | Icdef.Primary_key cols ->
      check_key_like env ~kind:`Primary ic table cols row ?exclude ()
  | Icdef.Unique cols ->
      check_key_like env ~kind:`Unique ic table cols row ?exclude ()
  | Icdef.Foreign_key { columns; ref_table; ref_columns } ->
      check_foreign_key env ic ~columns ~ref_table ~ref_columns table row
  | Icdef.Check p ->
      if Expr.check_violated binding p row then
        Some
          (violation ic.Icdef.name "CHECK (%s) is false for row %s"
             (Expr.to_string_pred p)
             (Fmt.str "%a" Tuple.pp row))
      else None
  | Icdef.Not_null c ->
      let v = Tuple.get row (Schema.index_exn schema c) in
      if Value.is_null v then
        Some (violation ic.Icdef.name "column %s is NULL" c)
      else None

(* A delete from (or key-update of) a parent table must not strand child
   rows of any enforced FK pointing at it. *)
let check_no_dangling_children env ~all_constraints ~parent row =
  let parent_name = Table.name parent in
  let parent_schema = Table.schema parent in
  let offending = ref None in
  List.iter
    (fun ic ->
      if !offending = None && Icdef.is_enforced ic then
        match ic.Icdef.body with
        | Icdef.Foreign_key { columns; ref_table; ref_columns }
          when String.lowercase_ascii ref_table
               = String.lowercase_ascii parent_name -> (
            let vals = key_values parent_schema row ref_columns in
            if not (List.exists Value.is_null vals) then
              match env.find_table ic.Icdef.table with
              | None -> ()
              | Some child ->
                  if exists_with_key env child columns vals () then
                    offending :=
                      Some
                        (violation ic.Icdef.name
                           "rows in %s still reference key (%s)"
                           ic.Icdef.table
                           (String.concat ", "
                              (List.map Value.to_debug vals))))
        | Icdef.Primary_key _ | Icdef.Unique _ | Icdef.Foreign_key _
        | Icdef.Check _ | Icdef.Not_null _ ->
            ())
    all_constraints;
  !offending

(* --- bulk verification (ignores enforcement mode) ---------------------- *)

(* Return every (rid, violation) pair for [ic] over the current state.
   Used to validate candidate soft constraints and to (re)build exception
   tables.  For key-like constraints this reports *all* members of each
   duplicate group beyond the first. *)
let verify env ic =
  match env.find_table ic.Icdef.table with
  | None -> []
  | Some table -> (
      let schema = Table.schema table in
      match ic.Icdef.body with
      | Icdef.Primary_key cols | Icdef.Unique cols ->
          let seen = Hashtbl.create 256 in
          Table.fold table ~init:[] ~f:(fun acc rid row ->
              let vals = key_values schema row cols in
              if List.exists Value.is_null vals then
                if ic.Icdef.body = Icdef.Primary_key cols then
                  (rid, violation ic.Icdef.name "primary key column is NULL")
                  :: acc
                else acc
              else
                let key = Tuple.make vals in
                if Hashtbl.mem seen key then
                  (rid, violation ic.Icdef.name "duplicate key") :: acc
                else begin
                  Hashtbl.add seen key ();
                  acc
                end)
          |> List.rev
      | Icdef.Foreign_key { columns; ref_table; ref_columns } ->
          Table.fold table ~init:[] ~f:(fun acc rid row ->
              match
                check_foreign_key env ic ~columns ~ref_table ~ref_columns
                  table row
              with
              | Some v -> (rid, v) :: acc
              | None -> acc)
          |> List.rev
      | Icdef.Check p ->
          let binding = Expr.Binding.of_schema schema in
          Table.fold table ~init:[] ~f:(fun acc rid row ->
              if Expr.check_violated binding p row then
                (rid, violation ic.Icdef.name "check is false") :: acc
              else acc)
          |> List.rev
      | Icdef.Not_null c ->
          let pos = Schema.index_exn schema c in
          Table.fold table ~init:[] ~f:(fun acc rid row ->
              if Value.is_null (Tuple.get row pos) then
                (rid, violation ic.Icdef.name "column %s is NULL" c) :: acc
              else acc)
          |> List.rev)

let holds env ic = verify env ic = []

let violation_count env ic = List.length (verify env ic)
