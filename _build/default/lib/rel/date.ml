(* Calendar dates represented as a count of days since the civil epoch
   1970-01-01 (negative before).  The proleptic-Gregorian conversion uses
   Howard Hinnant's era-based algorithm, which is exact over the full [int]
   range we care about. *)

type t = int

let epoch = 0

(* Conversion between (year, month, day) and day counts. *)

let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let m' = if month > 2 then month - 3 else month + 9 in
  let doy = (((153 * m') + 2) / 5) + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let is_leap_year year =
  year mod 4 = 0 && (year mod 100 <> 0 || year mod 400 = 0)

let days_in_month ~year ~month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year year then 29 else 28
  | _ -> invalid_arg "Date.days_in_month: month out of range"

let of_ymd year month day =
  if month < 1 || month > 12 then invalid_arg "Date.of_ymd: bad month";
  if day < 1 || day > days_in_month ~year ~month then
    invalid_arg "Date.of_ymd: bad day";
  days_from_civil ~year ~month ~day

let to_ymd t = civil_from_days t

let year t =
  let y, _, _ = to_ymd t in
  y

let month t =
  let _, m, _ = to_ymd t in
  m

let day t =
  let _, _, d = to_ymd t in
  d

let add_days t n = t + n
let diff_days a b = a - b
let compare : t -> t -> int = Stdlib.compare
let equal (a : t) (b : t) = a = b
let min_date = days_from_civil ~year:1 ~month:1 ~day:1
let max_date = days_from_civil ~year:9999 ~month:12 ~day:31

(* 1970-01-01 was a Thursday; weekday 0 = Monday ... 6 = Sunday. *)
let weekday t = ((t mod 7) + 7 + 3) mod 7

let to_string t =
  let y, m, d = to_ymd t in
  Printf.sprintf "%04d-%02d-%02d" y m d

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Date.of_string: %S" s) in
  if String.length s <> 10 || s.[4] <> '-' || s.[7] <> '-' then fail ();
  let int_of sub =
    match int_of_string_opt sub with Some v -> v | None -> fail ()
  in
  let y = int_of (String.sub s 0 4) in
  let m = int_of (String.sub s 5 2) in
  let d = int_of (String.sub s 8 2) in
  of_ymd y m d

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None
let pp ppf t = Fmt.string ppf (to_string t)

let first_of_month ~year ~month = of_ymd year month 1

let last_of_month ~year ~month = of_ymd year month (days_in_month ~year ~month)
