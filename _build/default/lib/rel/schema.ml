(* Table schemas: ordered, named, typed columns. *)

type column = { name : string; dtype : Value.dtype; nullable : bool }

type t = { table : string; columns : column array }

let column ?(nullable = true) name dtype = { name; dtype; nullable }

let make table columns =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = String.lowercase_ascii c.name in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %s" c.name);
      Hashtbl.add seen key ())
    columns;
  { table; columns = Array.of_list columns }

let arity t = Array.length t.columns
let columns t = Array.to_list t.columns
let column_at t i = t.columns.(i)
let column_names t = Array.to_list (Array.map (fun c -> c.name) t.columns)

let find_index t name =
  let lname = String.lowercase_ascii name in
  let n = Array.length t.columns in
  let rec loop i =
    if i >= n then None
    else if String.lowercase_ascii t.columns.(i).name = lname then Some i
    else loop (i + 1)
  in
  loop 0

let index_exn t name =
  match find_index t name with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Schema: no column %s in table %s" name t.table)

let dtype_of t name = (column_at t (index_exn t name)).dtype

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.table
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf c ->
         Fmt.pf ppf "%s %s%s" c.name
           (Value.dtype_name c.dtype)
           (if c.nullable then "" else " NOT NULL")))
    (columns t)
