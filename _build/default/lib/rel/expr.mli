(** Scalar expressions and predicates over named column references — the
    lingua franca of the system.  SQL parses into it, check and soft
    constraints are stated in it, the optimizer rewrites it, and the
    executor compiles it against a concrete tuple layout ({!Binding}).

    Predicates evaluate under SQL three-valued logic
    ({!Value.truth}). *)

type col_ref = { rel : string option; col : string }
(** A column reference, optionally qualified by a table name or alias. *)

val col : ?rel:string -> string -> col_ref

val col_ref_equal : col_ref -> col_ref -> bool
(** Case-insensitive; an unqualified reference matches any qualifier. *)

val pp_col_ref : Format.formatter -> col_ref -> unit

type binop = Add | Sub | Mul | Div

type t =
  | Const of Value.t
  | Col of col_ref
  | Binop of binop * t * t
  | Neg of t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Cmp of cmp * t * t
  | Between of t * t * t  (** [Between (e, lo, hi)] ⟺ [lo <= e <= hi]. *)
  | In_list of t * Value.t list
  | Is_null of t
  | Is_not_null of t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Ptrue
  | Pfalse

(** {1 Constructors and structural helpers} *)

val const : Value.t -> t
val int : int -> t
val str : string -> t
val date : Date.t -> t
val column : ?rel:string -> string -> t

val cmp_negate : cmp -> cmp
(** Logical negation: [¬(a < b) ⟺ a >= b]. *)

val cmp_flip : cmp -> cmp
(** Operand swap: [a < b ⟺ b > a]. *)

val conjuncts : pred -> pred list
(** Flatten top-level conjunctions; [Ptrue] flattens to []. *)

val conjoin : pred list -> pred

val cols_of_expr : t -> col_ref list
val cols_of_pred : pred -> col_ref list

val map_cols_expr : (col_ref -> col_ref) -> t -> t

val map_cols_pred : (col_ref -> col_ref) -> pred -> pred
(** Substitute column references, e.g. to requalify a table-local check
    constraint onto a query alias. *)

val string_of_binop : binop -> string
val string_of_cmp : cmp -> string
val pp : Format.formatter -> t -> unit
val pp_pred : Format.formatter -> pred -> unit
val to_string_pred : pred -> string

(** {1 Tuple layouts}

    The layout of a tuple flowing through an operator: for each position,
    the qualifier and column name that produced it.  Expressions are
    resolved against a binding once and then evaluated per row. *)

module Binding : sig
  type slot = {
    qualifier : string option;
    name : string;
    dtype : Value.dtype option;
  }

  type t = slot array

  val of_schema : ?alias:string -> Schema.t -> t
  (** One slot per column, qualified by [alias] (default: the table
      name). *)

  val concat : t -> t -> t
  val arity : t -> int

  exception Unresolved of col_ref
  exception Ambiguous of col_ref

  val resolve : t -> col_ref -> int
  (** Position of the slot a reference names; raises {!Unresolved} /
      {!Ambiguous}. *)

  val resolve_opt : t -> col_ref -> int option
  val pp : Format.formatter -> t -> unit
end

(** {1 Evaluation} *)

val eval : Binding.t -> t -> Tuple.t -> Value.t
val eval_pred : Binding.t -> pred -> Tuple.t -> Value.truth

(** {1 Compilation}

    Column references are resolved to positions once; the per-row cost is
    a closure call.  The executor uses these on every operator. *)

val compile : Binding.t -> t -> Tuple.t -> Value.t
val compile_pred : Binding.t -> pred -> Tuple.t -> Value.truth

val compile_filter : Binding.t -> pred -> Tuple.t -> bool
(** WHERE semantics: keep the row only when the predicate is [True]. *)

val satisfies : Binding.t -> pred -> Tuple.t -> bool
(** Uninterpreted {!eval_pred} + {!Value.truth_to_bool}. *)

val check_violated : Binding.t -> pred -> Tuple.t -> bool
(** CHECK-constraint semantics: a row violates only when the predicate is
    [False] — [Unknown] passes (SQL standard).  The distinction matters
    for rewrite soundness; see {!Opt.Rewrite}. *)
