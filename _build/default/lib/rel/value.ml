(* SQL values and their dynamic types.

   [Null] participates in SQL three-valued logic: comparisons against it are
   [Unknown].  For ordering inside indexes and sorts we use a *total* order
   [compare_total] in which [Null] sorts first; predicate evaluation instead
   goes through [compare_sql] which surfaces unknowns. *)

type dtype = TInt | TFloat | TString | TBool | TDate

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of Date.t

type truth = True | False | Unknown

let dtype_name = function
  | TInt -> "INT"
  | TFloat -> "FLOAT"
  | TString -> "VARCHAR"
  | TBool -> "BOOLEAN"
  | TDate -> "DATE"

let dtype_of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Some TInt
  | "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" -> Some TFloat
  | "VARCHAR" | "CHAR" | "TEXT" | "STRING" -> Some TString
  | "BOOLEAN" | "BOOL" -> Some TBool
  | "DATE" -> Some TDate
  | _ -> None

let type_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | String _ -> Some TString
  | Bool _ -> Some TBool
  | Date _ -> Some TDate

let is_null = function Null -> true | _ -> false

(* A value [v] is acceptable for a column of type [ty] if it is null or of
   exactly that type (ints are accepted for float columns and widened). *)
let conforms ty v =
  match (ty, v) with
  | _, Null -> true
  | TInt, Int _ -> true
  | TFloat, (Float _ | Int _) -> true
  | TString, String _ -> true
  | TBool, Bool _ -> true
  | TDate, Date _ -> true
  | (TInt | TFloat | TString | TBool | TDate), _ -> false

let coerce ty v =
  match (ty, v) with
  | TFloat, Int i -> Float (float_of_int i)
  | _, v -> v

(* Rank used by the total order when values of different runtime types meet
   (possible only in heterogeneous contexts such as sort keys over
   mis-typed data; we keep it deterministic rather than raising). *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* numerics compare together *)
  | Date _ -> 3
  | String _ -> 4

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> invalid_arg "Value.as_float"

let compare_total a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | (Int _ | Float _), (Int _ | Float _) ->
      Stdlib.compare (as_float a) (as_float b)
  | String x, String y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Date x, Date y -> Date.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal_total a b = compare_total a b = 0

(* SQL comparison: [None] when either side is null, otherwise the ordering. *)
let compare_sql a b =
  match (a, b) with Null, _ | _, Null -> None | _ -> Some (compare_total a b)

let truth_of_bool b = if b then True else False

let truth_not = function True -> False | False -> True | Unknown -> Unknown

let truth_and a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let truth_or a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let truth_to_bool = function True -> true | False | Unknown -> false

let pp_truth ppf t =
  Fmt.string ppf
    (match t with True -> "true" | False -> "false" | Unknown -> "unknown")

(* Arithmetic.  Integer ops stay integral; any float operand promotes.
   Date ± int shifts by days; date − date yields an int day count. *)

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* SQL-literal syntax: single quotes in strings are doubled *)
let escape_sql_string s =
  if String.contains s '\'' then
    String.concat "''" (String.split_on_char '\'' s)
  else s

let to_debug = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> Printf.sprintf "'%s'" (escape_sql_string s)
  | Bool b -> if b then "TRUE" else "FALSE"
  | Date d -> Printf.sprintf "DATE '%s'" (Date.to_string d)

let add a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x + y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (as_float a +. as_float b)
  | Date d, Int n | Int n, Date d -> Date (Date.add_days d n)
  | _ -> type_error "cannot add %s and %s" (to_debug a) (to_debug b)

and sub a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x - y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (as_float a -. as_float b)
  | Date d, Int n -> Date (Date.add_days d (-n))
  | Date d1, Date d2 -> Int (Date.diff_days d1 d2)
  | _ -> type_error "cannot subtract %s from %s" (to_debug b) (to_debug a)

and mul a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x * y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (as_float a *. as_float b)
  | _ -> type_error "cannot multiply %s and %s" (to_debug a) (to_debug b)

and div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> Null
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) ->
      let d = as_float b in
      if d = 0.0 then Null else Float (as_float a /. d)
  | _ -> type_error "cannot divide %s by %s" (to_debug a) (to_debug b)

and neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | v -> type_error "cannot negate %s" (to_debug v)

let to_string = to_debug
let pp ppf v = Fmt.string ppf (to_debug v)

let hash = function
  | Null -> 0
  | Int i -> Hashtbl.hash (2, i)
  | Float f ->
      (* keep Int 3 and Float 3. hashing equal since they compare equal *)
      if Float.is_integer f && Float.abs f < 1e18 then
        Hashtbl.hash (2, int_of_float f)
      else Hashtbl.hash (2, f)
  | String s -> Hashtbl.hash (4, s)
  | Bool b -> Hashtbl.hash (1, b)
  | Date d -> Hashtbl.hash (3, d)

let int_exn = function
  | Int i -> i
  | v -> type_error "expected INT, got %s" (to_debug v)

let float_exn = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_error "expected FLOAT, got %s" (to_debug v)

let string_exn = function
  | String s -> s
  | v -> type_error "expected VARCHAR, got %s" (to_debug v)

let bool_exn = function
  | Bool b -> b
  | v -> type_error "expected BOOLEAN, got %s" (to_debug v)

let date_exn = function
  | Date d -> d
  | v -> type_error "expected DATE, got %s" (to_debug v)
