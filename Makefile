.PHONY: all build test check lint racecheck faultcheck servecheck chaoscheck \
	bench benchcheck benchbaseline partcheck partbaseline idxcheck \
	idxbaseline fmt clean

all: build

build:
	dune build

test:
	dune runtest

# the CI gate: everything compiles and every suite passes
check: build test

# the static-analysis gate: rewrite-certificate soundness over the
# scenario fixtures, the SC-catalog linter, declared lock-order analysis
# over lib/srv + friends, and interface coverage — exits non-zero on any
# error and leaves the full report in check-report.txt
lint: build
	dune exec bin/softdb.exe -- check --root . --report check-report.txt

# the concurrency-soundness gate: drive real TCP traffic (including an
# online index build) with the runtime lock-order witness armed, dump
# the observed acquisition-order edge graph, then cross-validate it
# against the declared @lock-order rank table and the @guarded-by
# annotations — red on any rank inversion, deadlock cycle, unannotated
# shared mutable state, or a declared rank the traffic never exercised
# (unless waived with a reason)
racecheck: build
	rm -f LOCKDEP.graph racecheck-report.txt
	timeout 300 dune exec bench/loadgen.exe -- --clients 4 --requests 32 \
	  --ddl-online --lockdep-dump LOCKDEP.graph
	dune exec bin/softdb.exe -- check --concurrency --root . \
	  --lockdep-graph LOCKDEP.graph --report racecheck-report.txt

# the crash matrix: a simulated crash at every registered fault point,
# recovery must land on exactly the pre- or post-transaction state
faultcheck:
	dune exec test/test_recovery.exe

# the concurrency gate: protocol round-trips, the single-writer lock,
# scheduler admission control, and 8 concurrent sessions through the
# in-memory transport — under a watchdog so a deadlock fails instead of
# hanging the build
servecheck:
	timeout 300 dune exec test/test_srv.exe

# the chaos gate: the torn-tail/bit-flip salvage matrix (part of the
# recovery suite), then an overload burst — many clients against one
# worker and a two-slot queue — that must trip the circuit breaker and
# finish with zero queued jobs dying of deadline expiry; the breaker /
# backoff counters land in CHAOS.json
chaoscheck: build
	timeout 300 dune exec test/test_recovery.exe -- test salvage
	timeout 300 dune exec test/test_recovery.exe -- test edges
	rm -f CHAOS.json
	timeout 300 dune exec bench/loadgen.exe -- --clients 12 --workers 1 \
	  --queue 2 --requests 6 --expect-breaker --json CHAOS.json

bench:
	dune exec bench/main.exe

# the plan-quality gate: run the quick scenario registry, fold in a small
# loadgen summary, and diff the result against the committed baseline —
# deterministic metrics (rows scanned, q-error, rewrite counts, plan-cache
# hits, WAL bytes) gate hard; wall-clock drift is report-only
benchcheck: build
	dune exec bench/benchrun.exe -- --quick --label ci --out BENCH.json
	dune exec bench/loadgen.exe -- --clients 4 --requests 32 --lockdep \
	  --json BENCH.json
	dune exec bin/softdb.exe -- benchdiff bench/baseline.json BENCH.json

# refresh the committed baseline after an intentional plan-quality change;
# review the diff of bench/baseline.json like any other code change
benchbaseline: build
	dune exec bench/benchrun.exe -- --quick --label baseline \
	  --out bench/baseline.json
	dune exec bench/loadgen.exe -- --clients 4 --requests 32 --lockdep \
	  --json bench/baseline.json

# the partition gate: the purchase id-range suite at 1, 4 and 8 range
# segments; the 4/8-way runs must return the same rows as the baseline
# and every pruned segment must report zero rows_scanned / pages_read —
# the per-partition counters gate with zero absolute slack
partcheck: build
	dune exec bench/benchrun.exe -- --quick --label partcheck \
	  --out PARTBENCH.json --scenario purchase/part1 \
	  --scenario purchase/part4 --scenario purchase/part8
	dune exec bin/softdb.exe -- benchdiff bench/part_baseline.json PARTBENCH.json

# refresh the partition baseline after an intentional change to the
# partitioned scenarios or the pruning planner
partbaseline: build
	dune exec bench/benchrun.exe -- --quick --label baseline \
	  --out bench/part_baseline.json --scenario purchase/part1 \
	  --scenario purchase/part4 --scenario purchase/part8

# the index gate: the online-build crash matrix (a simulated crash at
# every idx.backfill.* fault point must leave the index consistent or
# cleanly demoted), the full lib/idx suite, and the purchase/idx
# scenario diffed against its committed baseline — the index-only scan
# must keep its pages_read / rows_scanned reduction and its rewrite
# count, with zero rewrite slack
idxcheck: build
	timeout 300 dune exec test/test_idx.exe -- test crash
	timeout 300 dune exec test/test_idx.exe
	dune exec bench/benchrun.exe -- --quick --label idxcheck \
	  --out IDXBENCH.json --scenario purchase/idx
	dune exec bin/softdb.exe -- benchdiff bench/idx_baseline.json IDXBENCH.json

# refresh the index baseline after an intentional change to the covering
# scenario, the index-only planner, or the page-cost model
idxbaseline: build
	dune exec bench/benchrun.exe -- --quick --label baseline \
	  --out bench/idx_baseline.json --scenario purchase/idx

fmt:
	dune fmt

clean:
	dune clean
