.PHONY: all build test check faultcheck bench fmt clean

all: build

build:
	dune build

test:
	dune runtest

# the CI gate: everything compiles and every suite passes
check: build test

# the crash matrix: a simulated crash at every registered fault point,
# recovery must land on exactly the pre- or post-transaction state
faultcheck:
	dune exec test/test_recovery.exe

bench:
	dune exec bench/main.exe

fmt:
	dune fmt

clean:
	dune clean
