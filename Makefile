.PHONY: all build test check bench fmt clean

all: build

build:
	dune build

test:
	dune runtest

# the CI gate: everything compiles and every suite passes
check: build test

bench:
	dune exec bench/main.exe

fmt:
	dune fmt

clean:
	dune clean
