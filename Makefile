.PHONY: all build test check faultcheck servecheck bench fmt clean

all: build

build:
	dune build

test:
	dune runtest

# the CI gate: everything compiles and every suite passes
check: build test

# the crash matrix: a simulated crash at every registered fault point,
# recovery must land on exactly the pre- or post-transaction state
faultcheck:
	dune exec test/test_recovery.exe

# the concurrency gate: protocol round-trips, the single-writer lock,
# scheduler admission control, and 8 concurrent sessions through the
# in-memory transport — under a watchdog so a deadlock fails instead of
# hanging the build
servecheck:
	timeout 300 dune exec test/test_srv.exe

bench:
	dune exec bench/main.exe

fmt:
	dune fmt

clean:
	dune clean
