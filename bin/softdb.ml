(* The softdb command-line shell.

     softdb repl                      interactive SQL with soft constraints
     softdb run FILE.sql              execute a script
     softdb demo (purchase|project|tpcd|all)
                                      preload a workload, then drop to a repl
     softdb advise FILE.sql           run a workload, then rank candidate
                                      secondary indexes for it

   Every command takes --wal FILE: state is recovered from the log at
   startup and every statement is logged, so a crash (or plain exit)
   loses nothing that committed.

   Inside the repl, besides SQL:
     \catalog        show the soft-constraint catalog
     \constraints    show the (hard/informational) integrity constraints
     \advise SQL;... mine + select soft constraints for the given workload
     \iadvise        rank candidate indexes for the logged queries so far
     \off SQL        run one query with all soft-constraint machinery off
     \stats          dump the metrics registry and query-log summary
     \checkpoint     compact the WAL to a snapshot of the current state
     \quit

   EXPLAIN ANALYZE SELECT ... executes the query instrumented and prints
   the plan annotated with estimated vs actual rows and per-node q-error.
*)

let print_outcome = function
  | Core.Softdb.Rows r -> Fmt.pr "%a" Exec.Executor.pp_result r
  | Core.Softdb.Affected n -> Fmt.pr "%d rows affected@." n
  | Core.Softdb.Report r -> Fmt.pr "%a" Opt.Explain.pp r
  | Core.Softdb.Analyzed a -> Fmt.pr "%a" Opt.Explain.pp_analysis a
  | Core.Softdb.Done msg -> Fmt.pr "%s@." msg

let print_stats sdb =
  let m = Core.Softdb.metrics sdb in
  let log = Core.Softdb.query_log sdb in
  Fmt.pr "-- metrics ----------------------------------------------------@.";
  Fmt.pr "%a@." Obs.Metrics.pp m;
  Fmt.pr "-- query log --------------------------------------------------@.";
  Fmt.pr "queries logged : %d@." (Obs.Query_log.length log);
  Fmt.pr "mean q-error   : %.2f@." (Obs.Query_log.mean_q_error log);
  Fmt.pr "worst q-error  : %.2f@." (Obs.Query_log.worst_q_error log)

let handle_error f =
  try f () with
  | Sqlfe.Parser.Parse_error m -> Fmt.epr "parse error: %s@." m
  | Sqlfe.Lexer.Lex_error (m, pos) -> Fmt.epr "lex error at %d: %s@." pos m
  | Rel.Checker.Constraint_violation v ->
      Fmt.epr "%a@." Rel.Checker.pp_violation v
  | Rel.Database.Catalog_error m | Core.Softdb.Error m ->
      Fmt.epr "error: %s@." m
  | Rel.Table.Row_error m -> Fmt.epr "row error: %s@." m
  | Opt.Planner.Unplannable m -> Fmt.epr "cannot plan: %s@." m
  | Opt.Logical.Unsupported m -> Fmt.epr "unsupported: %s@." m

let rec load_demo sdb = function
  | "purchase" ->
      Workload.Purchase.load (Core.Softdb.db sdb);
      Core.Softdb.runstats sdb;
      Fmt.pr "loaded purchase (20k rows); try:@.";
      Fmt.pr
        "  ALTER TABLE purchase ADD CONSTRAINT ship_3w CHECK (ship_date - \
         order_date BETWEEN 0 AND 21) SOFT;@.";
      Fmt.pr "  CREATE EXCEPTION TABLE late_shipments FOR CONSTRAINT ship_3w;@.";
      Fmt.pr "  EXPLAIN SELECT * FROM purchase WHERE ship_date = DATE \
              '1999-12-15';@."
  | "project" ->
      Workload.Project.load (Core.Softdb.db sdb);
      Core.Softdb.runstats sdb;
      Fmt.pr "loaded project (10k rows)@."
  | "tpcd" ->
      Workload.Tpcd.load (Core.Softdb.db sdb);
      Workload.Tpcd.create_sales (Core.Softdb.db sdb);
      Core.Softdb.runstats sdb;
      Fmt.pr "loaded the TPC-D-like star schema and 12 monthly sales tables@."
  | "all" ->
      List.iter (load_demo sdb) [ "purchase"; "project"; "tpcd" ]
  | other -> Fmt.epr "unknown demo %S (purchase|project|tpcd|all)@." other

let advise sdb args =
  let sqls =
    String.split_on_char ';' args
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match sqls with
  | [] -> Fmt.epr "usage: \\advise SELECT ...; SELECT ...@."
  | _ ->
      let workload = List.map Sqlfe.Parser.parse_query_string sqls in
      let outcome =
        Core.Advisor.advise ~db:(Core.Softdb.db sdb)
          ~stats:(Core.Softdb.statistics sdb)
          ~catalog:(Core.Softdb.catalog sdb) ~workload ()
      in
      Fmt.pr "%d candidates mined@." outcome.Core.Advisor.candidates;
      List.iter
        (fun a -> Fmt.pr "  %a@." Core.Selection.pp_assessment a)
        outcome.Core.Advisor.assessed;
      Fmt.pr "%d installed@." (List.length outcome.Core.Advisor.installed)

(* The index advisor: rank candidate secondary indexes for the queries
   accumulated in sys.query_log, folding in what the SC catalog knows
   (band-bounded columns, FDs that make covering extensions free), and
   print each as a ready-to-run CREATE INDEX ... ONLINE statement. *)
let advise_indexes sdb =
  match Core.Softdb.advise sdb with
  | [] ->
      Fmt.pr
        "no index candidates — the query log is empty or every candidate \
         is already indexed@."
  | cands ->
      List.iteri
        (fun i (c : Idx.Advisor.candidate) ->
          Fmt.pr "%2d. %s(%s)%s  score %.2f  (%d quer%s) — %s@." (i + 1)
            c.Idx.Advisor.cand_table
            (String.concat ", " c.Idx.Advisor.cand_columns)
            (if c.Idx.Advisor.cand_covering then " covering" else "")
            c.Idx.Advisor.cand_score c.Idx.Advisor.cand_queries
            (if c.Idx.Advisor.cand_queries = 1 then "y" else "ies")
            c.Idx.Advisor.cand_reason;
          Fmt.pr "      %s;@." (Core.Softdb.advice_statement c))
        cands

let exec_line ?link sdb line =
  let line = String.trim line in
  if line = "" then ()
  else if String.length line > 0 && line.[0] = '\\' then begin
    let cmd, rest =
      match String.index_opt line ' ' with
      | Some i ->
          ( String.sub line 0 i,
            String.sub line (i + 1) (String.length line - i - 1) )
      | None -> (line, "")
    in
    match cmd with
    | "\\catalog" -> Fmt.pr "%a@." Core.Sc_catalog.pp (Core.Softdb.catalog sdb)
    | "\\constraints" ->
        List.iter
          (fun ic -> Fmt.pr "  %a@." Rel.Icdef.pp ic)
          (Rel.Database.constraints (Core.Softdb.db sdb))
    | "\\advise" -> handle_error (fun () -> advise sdb rest)
    | "\\iadvise" -> handle_error (fun () -> advise_indexes sdb)
    | "\\off" ->
        handle_error (fun () ->
            print_outcome
              (Core.Softdb.Rows (Core.Softdb.query_baseline sdb rest)))
    | "\\demo" -> load_demo sdb rest
    | "\\stats" -> print_stats sdb
    | "\\checkpoint" -> (
        match link with
        | Some l ->
            handle_error (fun () ->
                Core.Recovery.checkpoint l;
                Fmt.pr "checkpointed@.")
        | None -> Fmt.epr "no WAL attached (start with --wal FILE)@.")
    | "\\quit" | "\\q" ->
        Option.iter Core.Recovery.detach link;
        exit 0
    | other -> Fmt.epr "unknown command %s@." other
  end
  else handle_error (fun () -> print_outcome (Core.Softdb.exec sdb line))

let repl ?link sdb =
  Fmt.pr
    "softdb — soft constraints in a relational optimizer.  SQL statements \
     end at end of line; \\quit to leave, \\demo purchase to load data.@.";
  let rec loop () =
    Fmt.pr "softdb> %!";
    match In_channel.input_line stdin with
    | None -> Option.iter Core.Recovery.detach link
    | Some line ->
        exec_line ?link sdb line;
        loop ()
  in
  loop ()

let run_script sdb ~stats path =
  let text = In_channel.with_open_text path In_channel.input_all in
  handle_error (fun () ->
      List.iter print_outcome (Core.Softdb.exec_script sdb text));
  if stats then print_stats sdb

(* --wal FILE: recover state from the log, then keep logging into it.
   Demo loads bulk-insert through the storage layer directly, so a
   checkpoint right after the load compacts the log into a coherent
   snapshot (schema + rows) the next startup can replay. *)
let with_wal ?(salvage = false) wal_path f =
  match wal_path with
  | None -> f (Core.Softdb.create ()) None
  | Some path ->
      let mode =
        if salvage then Core.Recovery.Salvage else Core.Recovery.Strict
      in
      let sdb, link, report = Core.Recovery.resume ~mode path in
      Fmt.pr "recovered state from %s@." path;
      if report.Core.Recovery.torn_tail then
        Fmt.pr "  torn tail: quarantined %d bytes to %s@."
          report.Core.Recovery.quarantined_bytes
          (Option.value ~default:"-" report.Core.Recovery.salvage_path);
      (match report.Core.Recovery.dropped_txns with
      | [] -> ()
      | dropped ->
          Fmt.pr "  interior corruption: dropped txns %s (see sys.recovery)@."
            (String.concat "," (List.map string_of_int dropped)));
      f sdb (Some link)

(* softdb serve --port PORT: the multi-session TCP server.  The accept
   loop runs on the main thread until SIGINT/SIGTERM, which flips to a
   clean shutdown: listener closed, scheduler drained, domains joined,
   WAL detached. *)
let serve ?wal_link sdb ~port ~workers ~queue ~demo =
  Option.iter
    (fun w -> if w <> "" then load_demo sdb w)
    demo;
  let server = Srv.Server.create ?workers ~queue_capacity:queue sdb in
  let actual_port, accept_loop = Srv.Server.listen_tcp server ~port in
  let stop () =
    Fmt.pr "@.shutting down...@.";
    Srv.Server.shutdown server;
    Option.iter Core.Recovery.detach wal_link;
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop ()));
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop ()));
  Fmt.pr "softdb serving on 127.0.0.1:%d (%d worker domains, queue %d)@."
    actual_port
    (Srv.Scheduler.workers (Srv.Server.scheduler server))
    queue;
  accept_loop ();
  Srv.Server.shutdown server;
  Option.iter Core.Recovery.detach wal_link

(* softdb benchdiff OLD NEW: the plan-quality regression gate.  Compares
   two benchrun reports (BENCH.json) under the per-metric thresholds —
   deterministic metrics gate hard, wall clock is report-only — and
   exits 1 on regression, 2 on unreadable/incompatible input. *)
let benchdiff old_path new_path =
  match
    let old_run = Benchkit.Measure.load old_path in
    let new_run = Benchkit.Measure.load new_path in
    Benchkit.Diff.compare_runs ~old_run ~new_run ()
  with
  | outcome ->
      Fmt.pr "%a" Benchkit.Diff.render outcome;
      if not (Benchkit.Diff.passed outcome) then exit 1
  | exception Benchkit.Measure.Schema_error m ->
      Fmt.epr "benchdiff: schema error: %s@." m;
      exit 2
  | exception Benchkit.Json.Parse_error (m, off) ->
      Fmt.epr "benchdiff: malformed JSON (offset %d): %s@." off m;
      exit 2
  | exception Sys_error m ->
      Fmt.epr "benchdiff: %s@." m;
      exit 2

(* softdb check: the static soundness verifier.  Builds every query-suite
   fixture at the given scale, checks rewrite certificates and twin
   isolation against each fixture's catalog, lints the catalogs, and —
   when a source root is given (default: cwd if it holds dune-project) —
   runs the lock-order and interface-coverage lints.  Exits 1 on any
   error diagnostic; warnings are report-only. *)
let check ~root ~scale ~explain ~concurrency ~lockdep_graph ~report_file =
  let scale =
    match Benchkit.Scenario.scale_of_name scale with
    | Some s -> s
    | None ->
        Fmt.epr "check: unknown scale %S (quick|full)@." scale;
        exit 2
  in
  let root =
    match root with
    | Some r -> Some r
    | None ->
        if Sys.file_exists (Filename.concat (Sys.getcwd ()) "dune-project")
        then Some (Sys.getcwd ())
        else None
  in
  if concurrency && root = None then begin
    Fmt.epr "check: --concurrency needs a source root (--root)@.";
    exit 2
  end;
  (* --concurrency: the racecheck gate — only the concurrency passes
     (lock order, guarded-by, lockdep cross-validation), skipping the
     fixture builds so the gate stays fast *)
  let fixtures =
    if concurrency then []
    else
      List.map
        (fun (f : Benchkit.Scenario.fixture) ->
          {
            Check.Driver.fx_name = f.Benchkit.Scenario.fixture_name;
            fx_sdb = f.Benchkit.Scenario.fixture_setup scale;
            fx_queries = f.Benchkit.Scenario.fixture_queries;
          })
        Benchkit.Scenario.fixtures
  in
  let report, diags =
    Check.Driver.run ~explain ?root ?lockdep_graph fixtures
  in
  print_string report;
  Option.iter
    (fun path -> Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc report))
    report_file;
  if Check.Diag.has_errors diags then exit 1

(* ---- cmdliner wiring --------------------------------------------------- *)

open Cmdliner

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead log: recover state from $(docv) at startup (absent or \
           empty is fine), then log every statement into it.")

let salvage_arg =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "Recover in salvage mode: interior WAL corruption drops only the \
           affected transactions (quarantined to FILE.salvage, reported in \
           sys.recovery) instead of refusing to start.  A torn tail is \
           salvaged in either mode.")

let repl_cmd =
  let doc = "interactive SQL shell" in
  Cmd.v (Cmd.info "repl" ~doc)
    Term.(
      const (fun wal salvage ->
          with_wal ~salvage wal (fun sdb link -> repl ?link sdb))
      $ wal_arg $ salvage_arg)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.sql")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"dump metrics and query-log after the run")
  in
  let doc = "execute a SQL script" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun wal salvage stats f ->
          with_wal ~salvage wal (fun sdb link ->
              run_script sdb ~stats f;
              Option.iter Core.Recovery.detach link))
      $ wal_arg $ salvage_arg $ stats $ file)

let demo_cmd =
  let which =
    Arg.(value & pos 0 string "purchase" & info [] ~docv:"WORKLOAD")
  in
  let doc = "preload a demo workload (purchase|project|tpcd|all), then repl" in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(
      const (fun wal w ->
          with_wal wal (fun sdb link ->
              load_demo sdb w;
              Option.iter Core.Recovery.checkpoint link;
              repl ?link sdb))
      $ wal_arg $ which)

let serve_cmd =
  let port =
    Arg.(
      value & opt int 5433
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains (default: scaled to available cores).")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue capacity; requests beyond it are rejected with a \
             retry-after hint.")
  in
  let demo =
    Arg.(
      value
      & opt (some string) None
      & info [ "demo" ] ~docv:"WORKLOAD"
          ~doc:"Preload a demo workload (purchase|project|tpcd|all) before \
                serving.")
  in
  let doc = "serve SQL over TCP to concurrent sessions" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const (fun wal salvage port workers queue demo ->
          with_wal ~salvage wal (fun sdb link ->
              serve ?wal_link:link sdb ~port ~workers ~queue ~demo))
      $ wal_arg $ salvage_arg $ port $ workers $ queue $ demo)

let advise_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.sql")
  in
  let demo =
    Arg.(
      value
      & opt (some string) None
      & info [ "demo" ] ~docv:"WORKLOAD"
          ~doc:"Preload a demo workload (purchase|project|tpcd|all) first.")
  in
  let doc =
    "rank candidate secondary indexes for a workload: recover state \
     (--wal) and/or preload a demo and/or run a SQL script, then mine \
     sys.query_log against the soft-constraint catalog and print one \
     CREATE INDEX ... ONLINE statement per candidate"
  in
  Cmd.v (Cmd.info "advise" ~doc)
    Term.(
      const (fun wal salvage demo file ->
          with_wal ~salvage wal (fun sdb link ->
              Option.iter (load_demo sdb) demo;
              Option.iter (fun f -> run_script sdb ~stats:false f) file;
              handle_error (fun () -> advise_indexes sdb);
              Option.iter Core.Recovery.detach link))
      $ wal_arg $ salvage_arg $ demo $ file)

let benchdiff_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
  in
  let doc =
    "compare two benchmark reports (deterministic metrics gate hard, \
     wall-clock is report-only); exit 1 on regression"
  in
  Cmd.v (Cmd.info "benchdiff" ~doc)
    Term.(const benchdiff $ old_arg $ new_arg)

let check_cmd =
  let root =
    Arg.(
      value
      & opt (some dir) None
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Source root for the lock-order and interface-coverage lints \
             (default: the working directory when it holds dune-project; \
             otherwise the source lints are skipped).")
  in
  let scale =
    Arg.(
      value & opt string "quick"
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Fixture scale (quick|full) for the certificate checks.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print each fixture query's rewrite certificates.")
  in
  let report_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the check report to $(docv).")
  in
  let concurrency =
    Arg.(
      value & flag
      & info [ "concurrency" ]
          ~doc:
            "Run only the concurrency passes (lock-order, guarded-by, and \
             lockdep cross-validation when --lockdep-graph is given), \
             skipping the fixture builds — the racecheck gate.")
  in
  let lockdep_graph =
    Arg.(
      value
      & opt (some string) None
      & info [ "lockdep-graph" ] ~docv:"FILE"
          ~doc:
            "Cross-validate the lockdep edge-graph dump in $(docv) (from a \
             run with SOFTDB_LOCKDEP=1, e.g. loadgen --lockdep-dump) \
             against the static rank table.")
  in
  let doc =
    "statically verify rewrite certificates, lint the SC catalog, and check \
     lock ordering, guarded-by coverage, and observed lock behavior; exit 1 \
     on any error"
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const (fun root scale explain concurrency lockdep_graph report_file ->
          check ~root ~scale ~explain ~concurrency ~lockdep_graph
            ~report_file)
      $ root $ scale $ explain $ concurrency $ lockdep_graph $ report_file)

let main =
  let doc = "soft constraints in a relational query optimizer" in
  Cmd.group
    ~default:
      Term.(
        const (fun wal salvage ->
            with_wal ~salvage wal (fun sdb link -> repl ?link sdb))
        $ wal_arg $ salvage_arg)
    (Cmd.info "softdb" ~doc)
    [ repl_cmd; run_cmd; demo_cmd; advise_cmd; serve_cmd; benchdiff_cmd;
      check_cmd ]

let () = exit (Cmd.eval main)
