(** Secondary indexes over heap tables: a B+-tree keyed on the projected
    column values, mapping each distinct key to the rids holding it.
    Composite keys compare lexicographically.

    An index is a lifecycle-managed object: [Write_only] (maintained,
    not probed) → [Backfilling] (online build in progress) → [Readable]
    (serves probes), with [Demoted] for an index whose build was
    interrupted or whose consistency can no longer be promised.  The
    maintenance hooks are active in every live state ([Demoted] indexes
    are abandoned: unmaintained until rebuilt, and a demoted unique
    index never vetoes a write); only [Readable] indexes may serve
    probes. *)

type t

type state = Write_only | Backfilling | Readable | Demoted

val state_to_string : state -> string
val state_of_string : string -> state option

exception Unique_violation of string

val create :
  name:string -> table:Table.t -> columns:string list -> ?unique:bool ->
  unit -> t
(** Bulk-build from the table's current rows; the result is [Readable].
    Raises {!Unique_violation} when [unique] and a duplicate key exists. *)

val create_shell :
  name:string -> table:Table.t -> columns:string list -> ?unique:bool ->
  unit -> t
(** An empty [Write_only] index for the online build path: register it,
    let mutations maintain it, backfill pre-existing rows separately. *)

val name : t -> string
val table_name : t -> string
val columns : t -> string list
val is_unique : t -> bool

val state : t -> state
val set_state : t -> state -> unit

val is_readable : t -> bool
(** Only readable indexes may serve probes or back plans. *)

val distinct_keys : t -> int
(** Number of distinct key values currently indexed. *)

val entries : t -> int
(** Total (key, rid) entries currently indexed — O(keys). *)

val key_of : t -> Tuple.t -> Tuple.t
(** The index key of a table row (projection onto the key columns). *)

(** {1 Maintenance} — called by {!Database} on every table mutation.
    Insertion is idempotent per (key, rid): during an online build the
    backfill and a concurrent writer may both present the same row. *)

val on_insert : t -> Table.rid -> Tuple.t -> unit
val on_delete : t -> Table.rid -> Tuple.t -> unit
val on_update : t -> Table.rid -> before:Tuple.t -> after:Tuple.t -> unit

val backfill_insert : t -> Table.rid -> Tuple.t -> bool
(** Idempotent insertion for the online backfill; [true] when the row
    was new to the tree. *)

(** {1 Probes} *)

val lookup : t -> Tuple.t -> Table.rid list
(** Rids with exactly this (composite) key. *)

val lookup_value : t -> Value.t -> Table.rid list
(** Single-column convenience. *)

type bound = Unbounded | Incl of Value.t | Excl of Value.t

val range : t -> lo:bound -> hi:bound -> Table.rid list
(** Sorted rids whose key is within the bounds.  Only valid on
    single-column indexes (raises [Invalid_argument] otherwise). *)

val fold_range :
  t -> lo:bound -> hi:bound -> init:'a ->
  f:('a -> Value.t -> Table.rid list -> 'a) -> 'a

val fold_entries :
  t -> lo:bound -> hi:bound -> init:'a ->
  f:('a -> Tuple.t -> Table.rid list -> 'a) -> 'a
(** In-key-order iteration over (key, rids) bindings for index-only
    scans.  Bounds apply to the leading column — on a composite index
    only bindings whose leading value falls within them are yielded, so
    a leading-column probe narrows composite covering scans too. *)

val min_key : t -> Tuple.t option
val max_key : t -> Tuple.t option
