(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven, over
    plain OCaml ints masked to 32 bits.  Used by {!Wal} to checksum each
    v2 log line so recovery can tell a torn or bit-flipped record from a
    clean one. *)

val string : string -> int
(** CRC-32 of the whole string (initial value 0). *)

val update : int -> string -> int
(** Extend a running checksum: [update (string a) b = string (a ^ b)]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex, 8 digits — the on-disk form. *)

val of_hex : string -> int option
(** Parse exactly 8 hex digits; [None] otherwise. *)
