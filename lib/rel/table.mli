(** Heap table storage.

    Rows live in a growable slot array; deletion leaves a tombstone so row
    identifiers ({!rid}s) stay stable — indexes and exception tables rely
    on that.  The {!mutations} counter records every insert / update /
    delete since creation; the soft-constraint currency model (paper §3.3)
    reads it to bound statistics drift. *)

type rid = int
(** Stable row identifier. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t
val name : t -> string

val cardinality : t -> int
(** Live rows. *)

val mutations : t -> int
(** Total mutations since creation (the currency anchor). *)

exception Row_error of string
(** Schema violations (arity, type, NOT NULL) and missing rids. *)

val insert : t -> Tuple.t -> rid
(** Insert a conforming copy of the row; raises {!Row_error}.  Constraint
    checking is layered above (see {!Checker} / {!Database}). *)

val get : t -> rid -> Tuple.t option
val get_exn : t -> rid -> Tuple.t

val delete : t -> rid -> bool
(** [false] when the rid is absent (already deleted). *)

val update : t -> rid -> Tuple.t -> unit
(** Replace a live row; raises {!Row_error}. *)

val restore : t -> rid -> Tuple.t -> unit
(** Re-occupy the tombstoned slot of a previously deleted row with its
    original rid — transaction rollback relies on rid stability.  Raises
    {!Row_error} if the slot was never allocated or is occupied. *)

val place : t -> rid -> Tuple.t -> unit
(** Put a row at an exact rid, allocating slots as needed — the
    rid-faithful insert used by log replay ({!Core.Recovery}), so later
    log records keep referring to the right slots.  Raises {!Row_error}
    if the slot is occupied or the row does not conform. *)

val iteri : t -> f:(rid -> Tuple.t -> unit) -> unit
val iter : t -> f:(Tuple.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> rid -> Tuple.t -> 'a) -> 'a
val to_list : t -> Tuple.t list
val rids : t -> rid list

val clear : t -> unit
(** Remove every row (counted as mutations). *)

(** {1 Physical sizing}

    The fixed-width page model shared by the cost model and the
    executor's I/O counters. *)

val bytes_per_value : int
val page_size : int
val row_width : t -> int
val rows_per_page : t -> int
val pages : t -> int
