(* Horizontal partitioning: routing spec + per-segment bookkeeping.

   The heap stays single (rids stable); a partitioning overlays it with
   disjoint rid sets.  Everything here must be deterministic across runs
   and across crash/replay, which is why hashing is structural and
   hand-rolled rather than [Hashtbl.hash] (whose behaviour we do not
   want to depend on) and why [Null] has a fixed home (segment 0 for
   range, bucket of hash 0 for hash). *)

type spec =
  | Range of { column : string; bounds : Value.t list }
  | Hash of { column : string; buckets : int }

type segment = {
  rids : (Table.rid, unit) Hashtbl.t;
  mutable seg_mutations : int;
}

type t = {
  spec : spec;
  column : string;
  column_index : int;
  segments : segment array;
}

let invalid fmt = Printf.ksprintf invalid_arg fmt

let spec_column = function
  | Range { column; _ } -> column
  | Hash { column; _ } -> column

let spec_count = function
  | Range { bounds; _ } -> List.length bounds + 1
  | Hash { buckets; _ } -> buckets

let validate schema spec =
  let column = spec_column spec in
  (match Schema.find_index schema column with
  | Some _ -> ()
  | None ->
      invalid "partition column %s does not exist in table %s" column
        schema.Schema.table);
  match spec with
  | Range { bounds = []; _ } ->
      invalid "range partitioning needs at least one bound"
  | Range { bounds; _ } ->
      List.iter
        (fun b ->
          if Value.is_null b then invalid "partition bounds may not be NULL")
        bounds;
      let rec ascending = function
        | a :: (b :: _ as rest) ->
            if Value.compare_total a b >= 0 then
              invalid "partition bounds must be strictly ascending";
            ascending rest
        | _ -> ()
      in
      ascending bounds
  | Hash { buckets; _ } ->
      if buckets < 2 then invalid "hash partitioning needs at least 2 buckets"

let make schema spec =
  validate schema spec;
  {
    spec;
    column = spec_column spec;
    column_index = Schema.index_exn schema (spec_column spec);
    segments =
      Array.init (spec_count spec) (fun _ ->
          { rids = Hashtbl.create 64; seg_mutations = 0 });
  }

let spec t = t.spec
let column t = t.column
let count t = Array.length t.segments

(* A fixed structural hash: stable across processes, unlike the
   runtime's randomized-seed [Hashtbl.hash] configurations.  FNV-1a over
   a tag byte plus the value's canonical bytes. *)
let hash_value v =
  let fnv_prime = 0x01000193 in
  let h = ref 0x811c9dc5 in
  let feed byte = h := (!h lxor (byte land 0xff)) * fnv_prime land 0x3FFFFFFF in
  let feed_int i =
    feed i; feed (i asr 8); feed (i asr 16); feed (i asr 24)
  in
  (match v with
  | Value.Null -> feed 0
  | Value.Int i -> feed 1; feed_int i
  | Value.Float f -> feed 2; feed_int (Int64.to_int (Int64.bits_of_float f))
  | Value.String s -> feed 3; String.iter (fun c -> feed (Char.code c)) s
  | Value.Bool b -> feed 4; feed (if b then 1 else 0)
  | Value.Date d -> feed 5; feed_int (Date.diff_days d Date.epoch));
  !h

let route_value t v =
  match t.spec with
  | Hash { buckets; _ } -> hash_value v mod buckets
  | Range { bounds; _ } ->
      if Value.is_null v then 0
      else
        (* number of bounds at or below the value = segment index *)
        List.fold_left
          (fun seg b -> if Value.compare_total v b >= 0 then seg + 1 else seg)
          0 bounds

let route t row = route_value t (Tuple.get row t.column_index)

let seg t i =
  if i < 0 || i >= Array.length t.segments then
    invalid "partition %d out of range (%d segments)" i
      (Array.length t.segments);
  t.segments.(i)

let add t i rid =
  let s = seg t i in
  Hashtbl.replace s.rids rid ();
  s.seg_mutations <- s.seg_mutations + 1

let remove t i rid =
  let s = seg t i in
  Hashtbl.remove s.rids rid;
  s.seg_mutations <- s.seg_mutations + 1

let touch t i =
  let s = seg t i in
  s.seg_mutations <- s.seg_mutations + 1

let mem t i rid = Hashtbl.mem (seg t i).rids rid

let members t i =
  (* ascending rid order: segment scans must be deterministic whatever
     insertion order built the hashtable *)
  Hashtbl.fold (fun rid () acc -> rid :: acc) (seg t i).rids []
  |> List.sort compare

let rows t i = Hashtbl.length (seg t i).rids
let seg_mutations t i = (seg t i).seg_mutations

let pages t i ~rows_per_page =
  let n = rows t i in
  if n = 0 then 0 else ((n + rows_per_page - 1) / rows_per_page)

let constraint_pred t i =
  ignore (seg t i);
  match t.spec with
  | Hash _ -> Expr.Ptrue
  | Range { column; bounds } ->
      let c = Expr.column column in
      let k = List.length bounds in
      let bound n = Expr.const (List.nth bounds n) in
      if i = 0 then
        (* NULLs route to segment 0, so its constraint must admit them *)
        Expr.Or (Expr.Cmp (Expr.Lt, c, bound 0), Expr.Is_null c)
      else if i = k then Expr.Cmp (Expr.Ge, c, bound (k - 1))
      else
        Expr.And
          ( Expr.Cmp (Expr.Ge, c, bound (i - 1)),
            Expr.Cmp (Expr.Lt, c, bound i) )

let aligned a b =
  match (a.spec, b.spec) with
  | Range { bounds = ba; _ }, Range { bounds = bb; _ } ->
      List.length ba = List.length bb
      && List.for_all2 (fun x y -> Value.compare_total x y = 0) ba bb
  | Hash { buckets = x; _ }, Hash { buckets = y; _ } -> x = y
  | _ -> false

let value_to_string = function
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.String s -> Printf.sprintf "'%s'" s
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Date d -> Printf.sprintf "'%s'" (Date.to_string d)

let spec_to_string = function
  | Range { column; bounds } ->
      Printf.sprintf "RANGE (%s) BOUNDS (%s)" column
        (String.concat ", " (List.map value_to_string bounds))
  | Hash { column; buckets } ->
      Printf.sprintf "HASH (%s) BUCKETS %d" column buckets

let pp ppf t =
  Fmt.pf ppf "partitioning %s into %d segments" (spec_to_string t.spec)
    (count t)
