(* The database catalog: tables, secondary indexes, integrity constraints,
   and a mutation log hook.

   All data modification goes through this module so that (a) enforced
   constraints are checked, (b) indexes stay consistent, and (c) mutation
   listeners — the soft-constraint maintenance machinery of {!Core} — see
   every change.  Informational constraints are stored but never checked,
   exactly as in the paper (§1). *)

type mutation =
  | Inserted of { table : string; rid : Table.rid; row : Tuple.t }
  | Deleted of { table : string; rid : Table.rid; row : Tuple.t }
  | Updated of {
      table : string;
      rid : Table.rid;
      before : Tuple.t;
      after : Tuple.t;
    }

(* A virtual table materializes on demand from a generator; nothing is
   stored.  Used for the sys.* observability views. *)
type virtual_def = { vschema : Schema.t; generate : unit -> Tuple.t list }

type t = {
  tables : (string, Table.t) Hashtbl.t;
  indexes : (string, Index.t) Hashtbl.t; (* by index name *)
  virtuals : (string, virtual_def) Hashtbl.t;
  partitions : (string, Partition.t) Hashtbl.t; (* by table name *)
  mutable constraints : Icdef.t list;
  mutable listeners : (mutation -> unit) list;
  mutable index_listeners : (Index.t -> unit) list;
      (* index lifecycle transitions (write-only/backfilling/readable/
         demoted): the WAL link logs them for crash recovery *)
}

exception Catalog_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Catalog_error s)) fmt

let create () =
  {
    tables = Hashtbl.create 16;
    indexes = Hashtbl.create 16;
    virtuals = Hashtbl.create 8;
    partitions = Hashtbl.create 4;
    constraints = [];
    listeners = [];
    index_listeners = [];
  }

let norm = String.lowercase_ascii

(* ---- tables ---------------------------------------------------------- *)

let create_table t schema =
  let key = norm schema.Schema.table in
  if Hashtbl.mem t.tables key || Hashtbl.mem t.virtuals key then
    error "table %s already exists" schema.Schema.table;
  let table = Table.create schema in
  Hashtbl.replace t.tables key table;
  table

(* Registering under an existing name replaces the previous generator, so
   a fresh facade over the same database can rebind its views. *)
let register_virtual t ~name ~schema generate =
  let key = norm name in
  if Hashtbl.mem t.tables key then
    error "cannot register virtual table %s: a base table exists" name;
  Hashtbl.replace t.virtuals key { vschema = schema; generate }

let virtual_names t =
  Hashtbl.fold (fun _ v acc -> v.vschema.Schema.table :: acc) t.virtuals []
  |> List.sort String.compare

let materialize_virtual (v : virtual_def) =
  let tbl = Table.create v.vschema in
  List.iter (fun row -> ignore (Table.insert tbl row)) (v.generate ());
  tbl

let find_table t name =
  match Hashtbl.find_opt t.tables (norm name) with
  | Some _ as found -> found
  | None ->
      Option.map materialize_virtual (Hashtbl.find_opt t.virtuals (norm name))

let table_exn t name =
  match find_table t name with
  | Some table -> table
  | None -> error "no such table: %s" name

let table_names t =
  Hashtbl.fold (fun _ table acc -> Table.name table :: acc) t.tables []
  |> List.sort String.compare

let drop_table t name =
  let key = norm name in
  if not (Hashtbl.mem t.tables key) then error "no such table: %s" name;
  Hashtbl.remove t.tables key;
  let stale =
    Hashtbl.fold
      (fun iname idx acc ->
        if norm (Index.table_name idx) = key then iname :: acc else acc)
      t.indexes []
  in
  List.iter (Hashtbl.remove t.indexes) stale;
  Hashtbl.remove t.partitions key;
  t.constraints <-
    List.filter (fun ic -> norm ic.Icdef.table <> key) t.constraints

(* ---- partitioning ----------------------------------------------------- *)

(* Declaring a partitioning routes every existing row into its segment;
   from then on the mutation paths below keep segment membership exact.
   The heap is untouched — rids, indexes and scans all keep working —
   so partitioning is purely additive metadata plus bookkeeping. *)
let declare_partitioning t ~table spec =
  let key = norm table in
  if Hashtbl.mem t.virtuals key then
    error "cannot partition virtual table %s" table;
  let tbl = table_exn t table in
  if Hashtbl.mem t.partitions key then
    error "table %s is already partitioned" table;
  let part =
    try Partition.make (Table.schema tbl) spec
    with Invalid_argument m -> error "cannot partition %s: %s" table m
  in
  Table.iteri tbl ~f:(fun rid row -> Partition.add part (Partition.route part row) rid);
  Hashtbl.replace t.partitions key part;
  part

let partitioning t table = Hashtbl.find_opt t.partitions (norm table)

let partitioned_tables t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.partitions []
  |> List.sort String.compare

let route_rid t table row =
  match partitioning t table with
  | None -> -1
  | Some part -> Partition.route part row

let seg_insert t table rid row =
  match partitioning t table with
  | None -> ()
  | Some part -> Partition.add part (Partition.route part row) rid

let seg_delete t table rid row =
  match partitioning t table with
  | None -> ()
  | Some part -> Partition.remove part (Partition.route part row) rid

let seg_update t table rid ~before ~after =
  match partitioning t table with
  | None -> ()
  | Some part ->
      let src = Partition.route part before
      and dst = Partition.route part after in
      if src <> dst then begin
        Partition.remove part src rid;
        Partition.add part dst rid
      end
      else
        (* in-place churn still ages the segment's currency anchor *)
        Partition.touch part src

(* ---- indexes ---------------------------------------------------------- *)

let create_index t ~name ~table ~columns ?(unique = false) () =
  let key = norm name in
  if Hashtbl.mem t.indexes key then error "index %s already exists" name;
  let tbl = table_exn t table in
  let idx = Index.create ~name ~table:tbl ~columns ~unique () in
  Hashtbl.replace t.indexes key idx;
  idx

(* The online-build entry point: an empty write-only shell registered in
   the catalog immediately, so every mutation from this moment on
   maintains it; the backfill (lib/idx) covers the pre-existing rows. *)
let create_index_shell t ~name ~table ~columns ?(unique = false) () =
  let key = norm name in
  if Hashtbl.mem t.indexes key then error "index %s already exists" name;
  let tbl = table_exn t table in
  let idx = Index.create_shell ~name ~table:tbl ~columns ~unique () in
  Hashtbl.replace t.indexes key idx;
  idx

let find_index_by_name t name = Hashtbl.find_opt t.indexes (norm name)

let all_indexes t =
  Hashtbl.fold (fun _ idx acc -> idx :: acc) t.indexes []
  |> List.sort (fun a b -> String.compare (Index.name a) (Index.name b))

let on_index_state t f = t.index_listeners <- f :: t.index_listeners

let set_index_state t idx state =
  if Index.state idx <> state then begin
    Index.set_state idx state;
    List.iter (fun f -> f idx) t.index_listeners
  end

(* Discard and rebuild an index from the current heap contents; the
   result is readable and consistent by construction.  Used by WAL
   replay when a logged [Readable] transition is reached, and by an
   explicit repair of a demoted index. *)
let rebuild_index t name =
  let key = norm name in
  match Hashtbl.find_opt t.indexes key with
  | None -> error "no such index: %s" name
  | Some old ->
      let tbl = table_exn t (Index.table_name old) in
      let idx =
        Index.create ~name:(Index.name old) ~table:tbl
          ~columns:(Index.columns old) ~unique:(Index.is_unique old) ()
      in
      Hashtbl.replace t.indexes key idx;
      idx

let drop_index t name =
  let key = norm name in
  if not (Hashtbl.mem t.indexes key) then error "no such index: %s" name;
  Hashtbl.remove t.indexes key

let indexes_on t table =
  let key = norm table in
  Hashtbl.fold
    (fun _ idx acc ->
      if norm (Index.table_name idx) = key then idx :: acc else acc)
    t.indexes []

(* an index whose key columns are exactly [columns] (order-insensitive for
   uniqueness purposes, order-sensitive otherwise) *)
let find_index_on t table columns =
  let want = List.map norm columns in
  List.find_opt
    (fun idx -> List.map norm (Index.columns idx) = want)
    (indexes_on t table)

(* a single-column index on [column], for access-path selection *)
let find_index_on_column t table column =
  List.find_opt
    (fun idx ->
      match Index.columns idx with
      | [ c ] -> norm c = norm column
      | _ -> false)
    (indexes_on t table)

(* ---- constraints ------------------------------------------------------ *)

let checker_env t =
  {
    Checker.find_table = (fun name -> find_table t name);
    Checker.find_index =
      (fun table columns -> find_index_on t table columns);
  }

let add_constraint t ic =
  if List.exists (fun c -> norm c.Icdef.name = norm ic.Icdef.name)
       t.constraints
  then error "constraint %s already exists" ic.Icdef.name;
  ignore (table_exn t ic.Icdef.table);
  (* adding an *enforced* constraint requires the current data to satisfy
     it; informational constraints are taken on faith (the paper's
     external promise) *)
  if Icdef.is_enforced ic then begin
    match Checker.verify (checker_env t) ic with
    | [] -> ()
    | (_, v) :: _ ->
        error "cannot add constraint %s: existing data violates it (%s)"
          ic.Icdef.name v.Checker.reason
  end;
  t.constraints <- t.constraints @ [ ic ]

let drop_constraint t name =
  let before = List.length t.constraints in
  t.constraints <-
    List.filter (fun c -> norm c.Icdef.name <> norm name) t.constraints;
  if List.length t.constraints = before then
    error "no such constraint: %s" name

let constraints t = t.constraints

let constraints_on t table =
  List.filter (fun c -> norm c.Icdef.table = norm table) t.constraints

let find_constraint t name =
  List.find_opt (fun c -> norm c.Icdef.name = norm name) t.constraints

(* ---- mutation listeners ----------------------------------------------- *)

let on_mutation t f = t.listeners <- f :: t.listeners

let notify t m = List.iter (fun f -> f m) t.listeners

(* ---- data modification ------------------------------------------------ *)

let enforced_on t table =
  List.filter Icdef.is_enforced (constraints_on t table)

let check_insert_ok t table row =
  let env = checker_env t in
  List.iter
    (fun ic ->
      match Checker.check_row env ic table row () with
      | Some v -> raise (Checker.Constraint_violation v)
      | None -> ())
    (enforced_on t (Table.name table))

let writable_exn t table =
  if Hashtbl.mem t.virtuals (norm table) then
    error "table %s is a read-only virtual table" table;
  table_exn t table

let insert t ~table row =
  let tbl = writable_exn t table in
  (match Tuple.conform (Table.schema tbl) row with
  | Error msg -> raise (Table.Row_error msg)
  | Ok _ -> ());
  check_insert_ok t tbl row;
  let rid = Table.insert tbl row in
  let row = Table.get_exn tbl rid in
  (try List.iter (fun idx -> Index.on_insert idx rid row) (indexes_on t table)
   with Index.Unique_violation _ as e ->
     (* roll the heap insert back so storage and indexes agree *)
     ignore (Table.delete tbl rid);
     raise e);
  seg_insert t table rid row;
  notify t (Inserted { table = Table.name tbl; rid; row });
  rid

let delete t ~table rid =
  let tbl = writable_exn t table in
  match Table.get tbl rid with
  | None -> false
  | Some row ->
      (match
         Checker.check_no_dangling_children (checker_env t)
           ~all_constraints:t.constraints ~parent:tbl row
       with
      | Some v -> raise (Checker.Constraint_violation v)
      | None -> ());
      ignore (Table.delete tbl rid);
      List.iter (fun idx -> Index.on_delete idx rid row) (indexes_on t table);
      seg_delete t table rid row;
      notify t (Deleted { table = Table.name tbl; rid; row });
      true

let update t ~table rid row =
  let tbl = writable_exn t table in
  let before = Table.get_exn tbl rid in
  let after =
    match Tuple.conform (Table.schema tbl) row with
    | Error msg -> raise (Table.Row_error msg)
    | Ok r -> r
  in
  let env = checker_env t in
  List.iter
    (fun ic ->
      match Checker.check_row env ic tbl after ~exclude:rid () with
      | Some v -> raise (Checker.Constraint_violation v)
      | None -> ())
    (enforced_on t (Table.name tbl));
  (match
     Checker.check_no_dangling_children env ~all_constraints:t.constraints
       ~parent:tbl before
   with
  | Some v ->
      (* only a problem if the referenced key actually changed *)
      let changed =
        not (Tuple.equal before after)
        &&
        match find_constraint t v.Checker.constraint_name with
        | Some { Icdef.body = Icdef.Foreign_key { ref_columns; _ }; _ } ->
            let schema = Table.schema tbl in
            List.exists
              (fun c ->
                let i = Schema.index_exn schema c in
                not (Value.equal_total (Tuple.get before i) (Tuple.get after i)))
              ref_columns
        | _ -> false
      in
      if changed then raise (Checker.Constraint_violation v)
  | None -> ());
  Table.update tbl rid after;
  List.iter
    (fun idx -> Index.on_update idx rid ~before ~after)
    (indexes_on t table);
  seg_update t table rid ~before ~after:(Table.get_exn tbl rid);
  notify t (Updated { table = Table.name tbl; rid; before; after })

(* Bulk load: validates rows against the schema and enforced constraints
   like [insert], but amortizes listener calls; returns rids. *)
let insert_many t ~table rows = List.map (fun r -> insert t ~table r) rows

(* Compensating re-insert for transaction rollback: restores a deleted
   row under its original rid, maintains indexes and notifies listeners,
   but skips constraint checking (the pre-transaction state was already
   consistent, and intermediate undo states may not be). *)
let restore t ~table rid row =
  let tbl = table_exn t table in
  Table.restore tbl rid row;
  let row = Table.get_exn tbl rid in
  List.iter (fun idx -> Index.on_insert idx rid row) (indexes_on t table);
  seg_insert t table rid row;
  notify t (Inserted { table = Table.name tbl; rid; row })

(* ---- log replay ------------------------------------------------------- *)

(* Recovery applies committed log records to a fresh database.  The
   records describe mutations that already passed constraint checking
   when first executed, and the listeners' side effects (maintenance
   reactions, exception-table upkeep) are themselves in the log — so
   replay bypasses both checks and listeners, maintaining only storage
   and indexes.  Inserts are rid-faithful via {!Table.place}. *)

let replay_insert t ~table rid row =
  let tbl = table_exn t table in
  Table.place tbl rid row;
  let row = Table.get_exn tbl rid in
  List.iter (fun idx -> Index.on_insert idx rid row) (indexes_on t table);
  seg_insert t table rid row

let replay_delete t ~table rid =
  let tbl = table_exn t table in
  match Table.get tbl rid with
  | None -> ()
  | Some row ->
      ignore (Table.delete tbl rid);
      List.iter (fun idx -> Index.on_delete idx rid row) (indexes_on t table);
      seg_delete t table rid row

let replay_update t ~table rid row =
  let tbl = table_exn t table in
  let before = Table.get_exn tbl rid in
  Table.update tbl rid row;
  let after = Table.get_exn tbl rid in
  List.iter
    (fun idx -> Index.on_update idx rid ~before ~after)
    (indexes_on t table);
  seg_update t table rid ~before ~after

let pp ppf t =
  Fmt.pf ppf "database: %d tables, %d indexes, %d constraints"
    (Hashtbl.length t.tables) (Hashtbl.length t.indexes)
    (List.length t.constraints)
