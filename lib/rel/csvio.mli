(** CSV import/export for tables: comma-separated, double-quote escaping,
    header row of column names.  NULL is the empty unquoted field; an
    empty string is [""]. *)

exception Parse_error of string

val export : Table.t -> string -> unit
(** Write the table (header + rows) to a file. *)

type load_report = {
  loaded : int;
  row_errors : (int * string) list;
      (** physical line number (the header is line 1) and reason, for
          every row that failed to load *)
}

val load : Database.t -> table:string -> string -> load_report
(** Load a CSV file into an existing table via the catalog (so enforced
    constraints and index maintenance apply).  The header must name a
    subset of the table's columns; missing columns become NULL.  Values
    parse according to the column's declared type.

    Loading is {e degraded}, not all-or-nothing: a malformed or
    constraint-rejected row is reported in [row_errors] with its line
    number and skipped; the remaining rows still load.  Raises
    {!Parse_error} only for an empty file, a header naming an unknown
    column, or when {e every} attempted row failed. *)

val import : Database.t -> table:string -> string -> int
(** [load] returning just the loaded-row count. *)
