(* A B+-tree with unique keys, path-copying node updates under a mutable
   root.  Interior nodes hold separator keys; all bindings live in leaves.
   Branching factor [b] bounds node width: leaves and internals carry at
   most [2b - 1] keys and split at [2b]; deletion rebalances by borrowing
   from or merging with an adjacent sibling, so every node except the root
   keeps at least [b - 1] keys.

   Invariants (checked by [validate], exercised by the property tests):
   - all leaves are at the same depth;
   - keys within every node are strictly increasing;
   - for internal node with separators s_0..s_{k-1} and children c_0..c_k,
     every key in c_i is >= s_{i-1} (i > 0) and < s_i (i < k);
   - node occupancy bounds as above. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  type key = Ord.t

  type 'a node =
    | Leaf of key array * 'a array
    | Internal of key array * 'a node array

  type 'a t = { mutable root : 'a node; mutable size : int; b : int }

  let create ?(b = 16) () =
    if b < 2 then invalid_arg "Bptree.create: branching factor must be >= 2";
    { root = Leaf ([||], [||]); size = 0; b }

  let length t = t.size

  (* Position of the first index whose key is >= [k]; [len] if none. *)
  let lower_bound keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Ord.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Child index to descend into for key [k]: first separator > k decides. *)
  let child_slot seps k =
    let lo = ref 0 and hi = ref (Array.length seps) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Ord.compare seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let array_insert a i x =
    let n = Array.length a in
    let out = Array.make (n + 1) x in
    Array.blit a 0 out 0 i;
    Array.blit a i out (i + 1) (n - i);
    out

  let array_remove a i =
    let n = Array.length a in
    let out = Array.sub a 0 (n - 1) in
    Array.blit a (i + 1) out i (n - 1 - i);
    out

  let array_set a i x =
    let out = Array.copy a in
    out.(i) <- x;
    out

  let find t k =
    let rec go = function
      | Leaf (keys, vals) ->
          let i = lower_bound keys k in
          if i < Array.length keys && Ord.compare keys.(i) k = 0 then
            Some vals.(i)
          else None
      | Internal (seps, children) -> go children.(child_slot seps k)
    in
    go t.root

  let mem t k = find t k <> None

  type 'a ins = Ok_node of 'a node | Split of 'a node * key * 'a node

  let insert t k v =
    let max_keys = (2 * t.b) - 1 in
    let replaced = ref false in
    let rec go = function
      | Leaf (keys, vals) ->
          let i = lower_bound keys k in
          if i < Array.length keys && Ord.compare keys.(i) k = 0 then begin
            replaced := true;
            Ok_node (Leaf (keys, array_set vals i v))
          end
          else
            let keys = array_insert keys i k in
            let vals = array_insert vals i v in
            if Array.length keys <= max_keys then Ok_node (Leaf (keys, vals))
            else
              let mid = Array.length keys / 2 in
              let lk = Array.sub keys 0 mid
              and rk = Array.sub keys mid (Array.length keys - mid) in
              let lv = Array.sub vals 0 mid
              and rv = Array.sub vals mid (Array.length vals - mid) in
              Split (Leaf (lk, lv), rk.(0), Leaf (rk, rv))
      | Internal (seps, children) -> (
          let slot = child_slot seps k in
          match go children.(slot) with
          | Ok_node c -> Ok_node (Internal (seps, array_set children slot c))
          | Split (l, sep, r) ->
              let seps = array_insert seps slot sep in
              let children = array_set children slot l in
              let children = array_insert children (slot + 1) r in
              if Array.length seps <= max_keys then
                Ok_node (Internal (seps, children))
              else
                let mid = Array.length seps / 2 in
                let up = seps.(mid) in
                let lseps = Array.sub seps 0 mid in
                let rseps =
                  Array.sub seps (mid + 1) (Array.length seps - mid - 1)
                in
                let lch = Array.sub children 0 (mid + 1) in
                let rch =
                  Array.sub children (mid + 1)
                    (Array.length children - mid - 1)
                in
                Split (Internal (lseps, lch), up, Internal (rseps, rch)))
    in
    (match go t.root with
    | Ok_node n -> t.root <- n
    | Split (l, sep, r) -> t.root <- Internal ([| sep |], [| l; r |]));
    if not !replaced then t.size <- t.size + 1;
    !replaced

  (* Deletion.  [go] returns the updated child; the parent repairs
     underflow (fewer than [b - 1] keys) by borrowing or merging. *)

  let node_nkeys = function
    | Leaf (keys, _) -> Array.length keys
    | Internal (seps, _) -> Array.length seps

  let remove t k =
    let min_keys = t.b - 1 in
    let removed = ref false in
    (* merge or borrow child [slot] of an internal node; assumes >= 2
       children. Returns repaired (seps, children). *)
    let fix_underflow seps children slot =
      let pick_left = slot > 0 in
      let li = if pick_left then slot - 1 else slot in
      (* merge/borrow between children li and li+1 around separator li *)
      let left = children.(li) and right = children.(li + 1) in
      match (left, right) with
      | Leaf (lk, lv), Leaf (rk, rv) ->
          if Array.length lk + Array.length rk <= (2 * t.b) - 1 then
            (* merge *)
            let merged = Leaf (Array.append lk rk, Array.append lv rv) in
            let seps = array_remove seps li in
            let children = array_set children li merged in
            let children = array_remove children (li + 1) in
            (seps, children)
          else if Array.length lk > Array.length rk then
            (* borrow last of left into right *)
            let n = Array.length lk in
            let bk = lk.(n - 1) and bv = lv.(n - 1) in
            let left' = Leaf (Array.sub lk 0 (n - 1), Array.sub lv 0 (n - 1)) in
            let right' = Leaf (array_insert rk 0 bk, array_insert rv 0 bv) in
            let seps = array_set seps li bk in
            let children = array_set children li left' in
            let children = array_set children (li + 1) right' in
            (seps, children)
          else
            (* borrow first of right into left *)
            let bk = rk.(0) and bv = rv.(0) in
            let left' = Leaf (array_insert lk (Array.length lk) bk,
                              array_insert lv (Array.length lv) bv) in
            let right' = Leaf (array_remove rk 0, array_remove rv 0) in
            let seps = array_set seps li rk.(1) in
            let children = array_set children li left' in
            let children = array_set children (li + 1) right' in
            (seps, children)
      | Internal (lseps, lch), Internal (rseps, rch) ->
          let sep = seps.(li) in
          if Array.length lseps + 1 + Array.length rseps <= (2 * t.b) - 1 then
            let merged =
              Internal
                ( Array.concat [ lseps; [| sep |]; rseps ],
                  Array.append lch rch )
            in
            let seps = array_remove seps li in
            let children = array_set children li merged in
            let children = array_remove children (li + 1) in
            (seps, children)
          else if Array.length lseps > Array.length rseps then
            let n = Array.length lseps in
            let up = lseps.(n - 1) in
            let moved = lch.(Array.length lch - 1) in
            let left' =
              Internal (Array.sub lseps 0 (n - 1),
                        Array.sub lch 0 (Array.length lch - 1))
            in
            let right' =
              Internal (array_insert rseps 0 sep, array_insert rch 0 moved)
            in
            let seps = array_set seps li up in
            let children = array_set children li left' in
            let children = array_set children (li + 1) right' in
            (seps, children)
          else
            let up = rseps.(0) in
            let moved = rch.(0) in
            let left' =
              Internal
                ( array_insert lseps (Array.length lseps) sep,
                  array_insert lch (Array.length lch) moved )
            in
            let right' = Internal (array_remove rseps 0, array_remove rch 0) in
            let seps = array_set seps li up in
            let children = array_set children li left' in
            let children = array_set children (li + 1) right' in
            (seps, children)
      | _ -> assert false (* siblings are always at the same level *)
    in
    let rec go = function
      | Leaf (keys, vals) ->
          let i = lower_bound keys k in
          if i < Array.length keys && Ord.compare keys.(i) k = 0 then begin
            removed := true;
            Leaf (array_remove keys i, array_remove vals i)
          end
          else Leaf (keys, vals)
      | Internal (seps, children) ->
          let slot = child_slot seps k in
          let child = go children.(slot) in
          let children = array_set children slot child in
          if node_nkeys child >= min_keys then Internal (seps, children)
          else
            let seps, children = fix_underflow seps children slot in
            Internal (seps, children)
    in
    let root = go t.root in
    (* collapse a root that lost all separators *)
    let root =
      match root with
      | Internal ([||], children) -> children.(0)
      | other -> other
    in
    t.root <- root;
    if !removed then t.size <- t.size - 1;
    !removed

  (* In-order fold over bindings with key in [lo, hi] per the bound
     specifications. [None] bound = unbounded. *)
  type bound = Unbounded | Incl of key | Excl of key

  let above lo k =
    match lo with
    | Unbounded -> true
    | Incl b -> Ord.compare k b >= 0
    | Excl b -> Ord.compare k b > 0

  let below hi k =
    match hi with
    | Unbounded -> true
    | Incl b -> Ord.compare k b <= 0
    | Excl b -> Ord.compare k b < 0

  let fold_range t ~lo ~hi ~init ~f =
    let rec go acc = function
      | Leaf (keys, vals) ->
          let acc = ref acc in
          for i = 0 to Array.length keys - 1 do
            let k = keys.(i) in
            if above lo k && below hi k then acc := f !acc k vals.(i)
          done;
          !acc
      | Internal (seps, children) ->
          (* children [i] covers keys < seps.(i) (i < nseps) and
             >= seps.(i-1); skip children entirely out of range. *)
          let n = Array.length children in
          let acc = ref acc in
          for i = 0 to n - 1 do
            let child_min_ok =
              i = 0 || below hi seps.(i - 1)
              (* child i holds keys >= seps.(i-1); if that already exceeds
                 hi we can skip *)
            in
            let child_max_ok =
              i = n - 1 || above lo seps.(i)
              ||
              (* child i holds keys < seps.(i); if all below lo, skip *)
              match lo with
              | Unbounded -> true
              | Incl b | Excl b -> Ord.compare seps.(i) b > 0
            in
            if child_min_ok && child_max_ok then acc := go !acc children.(i)
          done;
          !acc
    in
    go init t.root

  (* Descending-order twin of [fold_range]: same bounds, same pruning,
     bindings delivered from the high end down. *)
  let fold_range_rev t ~lo ~hi ~init ~f =
    let rec go acc = function
      | Leaf (keys, vals) ->
          let acc = ref acc in
          for i = Array.length keys - 1 downto 0 do
            let k = keys.(i) in
            if above lo k && below hi k then acc := f !acc k vals.(i)
          done;
          !acc
      | Internal (seps, children) ->
          let n = Array.length children in
          let acc = ref acc in
          for i = n - 1 downto 0 do
            let child_min_ok = i = 0 || below hi seps.(i - 1) in
            let child_max_ok =
              i = n - 1 || above lo seps.(i)
              ||
              match lo with
              | Unbounded -> true
              | Incl b | Excl b -> Ord.compare seps.(i) b > 0
            in
            if child_min_ok && child_max_ok then acc := go !acc children.(i)
          done;
          !acc
    in
    go init t.root

  let fold t ~init ~f = fold_range t ~lo:Unbounded ~hi:Unbounded ~init ~f

  let iter t ~f = fold t ~init:() ~f:(fun () k v -> f k v)

  let to_list t =
    List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let range t ~lo ~hi =
    List.rev (fold_range t ~lo ~hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let min_binding t =
    let rec go = function
      | Leaf ([||], _) -> None
      | Leaf (keys, vals) -> Some (keys.(0), vals.(0))
      | Internal (_, children) -> go children.(0)
    in
    go t.root

  let max_binding t =
    let rec go = function
      | Leaf ([||], _) -> None
      | Leaf (keys, vals) ->
          let n = Array.length keys in
          Some (keys.(n - 1), vals.(n - 1))
      | Internal (_, children) -> go children.(Array.length children - 1)
    in
    go t.root

  (* Structural checker used in tests. Raises [Failure] on violation. *)
  let validate t =
    let fail fmt = Printf.ksprintf failwith fmt in
    let check_sorted keys =
      for i = 0 to Array.length keys - 2 do
        if Ord.compare keys.(i) keys.(i + 1) >= 0 then
          fail "keys not strictly increasing within node"
      done
    in
    let rec go ~is_root ~lo ~hi node =
      match node with
      | Leaf (keys, vals) ->
          if Array.length keys <> Array.length vals then
            fail "leaf keys/vals length mismatch";
          check_sorted keys;
          if (not is_root) && Array.length keys < t.b - 1 then
            fail "leaf underfull";
          if Array.length keys > (2 * t.b) - 1 then fail "leaf overfull";
          Array.iter
            (fun k ->
              if not (above lo k) then fail "leaf key below lower bound";
              if not (below hi k) then fail "leaf key above upper bound")
            keys;
          (1, Array.length keys)
      | Internal (seps, children) ->
          if Array.length children <> Array.length seps + 1 then
            fail "internal arity mismatch";
          check_sorted seps;
          if (not is_root) && Array.length seps < t.b - 1 then
            fail "internal underfull";
          if Array.length seps > (2 * t.b) - 1 then fail "internal overfull";
          let depth = ref None and count = ref 0 in
          Array.iteri
            (fun i child ->
              let clo = if i = 0 then lo else Incl seps.(i - 1) in
              let chi =
                if i = Array.length seps then hi else Excl seps.(i)
              in
              let d, c = go ~is_root:false ~lo:clo ~hi:chi child in
              count := !count + c;
              match !depth with
              | None -> depth := Some d
              | Some d0 -> if d0 <> d then fail "leaves at unequal depth")
            children;
          (1 + Option.get !depth, !count)
    in
    let _, count = go ~is_root:true ~lo:Unbounded ~hi:Unbounded t.root in
    if count <> t.size then
      fail "size field (%d) disagrees with binding count (%d)" t.size count
end
