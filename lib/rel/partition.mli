(** Horizontal partitioning: a table's rows split into disjoint segments
    by a range or hash function of one column.

    A partitioning is declarative metadata plus live bookkeeping: the
    {e spec} fixes how rows route, and each {e segment} tracks the rid
    membership, row count, and a partition-local mutation counter.  The
    heap ({!Table}) stays single — rids remain stable and every existing
    access path keeps working — while the segments give the executor
    honest per-partition I/O accounting and give the soft-constraint
    currency model (paper §3.3) a partition-local drift anchor, so one
    hot shard's churn does not age its siblings' statistics.

    Routing is total and deterministic: range partitioning sends [Null]
    and everything below the first bound to segment 0; hash partitioning
    uses a fixed structural hash (never the runtime's randomized one), so
    two runs — or a crash and its replay — agree on every row's home. *)

type spec =
  | Range of { column : string; bounds : Value.t list }
      (** [k] ascending bounds cut the column's domain into [k+1]
          segments: segment [i] holds [bounds.(i-1) <= v < bounds.(i)]
          (with the open ends at 0 and [k]). *)
  | Hash of { column : string; buckets : int }

type t

val make : Schema.t -> spec -> t
(** Validates the spec against the schema: the column must exist, range
    bounds must be non-null, strictly ascending, and non-empty, hash
    buckets must be at least 2.  Raises [Invalid_argument] otherwise. *)

val spec : t -> spec
val column : t -> string
val count : t -> int
(** Number of segments. *)

val route_value : t -> Value.t -> int
(** The segment a column value routes to. *)

val route : t -> Tuple.t -> int
(** The segment a full row routes to (reads the partition column). *)

val hash_value : Value.t -> int
(** The fixed structural hash behind hash routing, exposed so the
    planner can prune hash partitions for equality predicates. *)

(** {1 Segment membership}

    Maintained by {!Database} on every mutation; each call bumps the
    touched segment's local mutation counter. *)

val add : t -> int -> Table.rid -> unit
val remove : t -> int -> Table.rid -> unit
val mem : t -> int -> Table.rid -> bool

val members : t -> int -> Table.rid list
(** A segment's rids in ascending order — the deterministic scan order
    of {!Exec.Plan.Partition_scan}. *)

val touch : t -> int -> unit
(** Bump a segment's mutation counter without changing membership — an
    in-place update that did not move the row. *)

val rows : t -> int -> int
(** Live rows in a segment. *)

val seg_mutations : t -> int -> int
(** Mutations that touched this segment since declaration (an update
    that moves a row counts on both sides). *)

val pages : t -> int -> rows_per_page:int -> int
(** Fixed-width page count of a segment under the shared page model:
    [ceil (rows / rows_per_page)], 0 when empty. *)

val constraint_pred : t -> int -> Expr.pred
(** The partition constraint as a predicate on the bare column: what
    routing guarantees of every row in the segment.  For range
    partitioning this is the bound interval (segment 0 also admits
    [NULL], which routes there); hash segments have no interval shape,
    so their constraint is [Ptrue]. *)

val aligned : t -> t -> bool
(** Do two partitionings route equal values to equal segment numbers?
    True for range specs with identical bounds and hash specs with equal
    bucket counts (the structural hash is shared) — the precondition of
    the aligned-join cardinality cap ({!Stats.Part_stats}). *)

val spec_to_string : spec -> string
(** SQL-ish rendering, e.g. ["RANGE (c) BOUNDS (10, 20)"] — the form the
    DDL printer and [sys.partitions] both show. *)

val pp : Format.formatter -> t -> unit
