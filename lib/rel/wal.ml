(* Write-ahead logging: redo-only records over data mutations and
   soft-constraint catalog transitions, framed by begin/commit/abort.
   Memory sink for tests (durable-at-append), file sink for the CLI.

   The file format is line-oriented text: tab-separated fields, strings
   backslash-escaped, floats printed in hex ("%h") so the round-trip is
   exact.  Text rather than binary keeps crashed logs inspectable with
   standard tools, which matters more here than write amplification. *)

type sc_snapshot = {
  sc_name : string;
  sc_table : string;
  sc_absolute : bool;
  sc_confidence : float;
  sc_state : string;
  sc_anchor : int;
  sc_violations : int;
  sc_repr : string;
}

type sc_change =
  | Sc_installed of sc_snapshot
  | Sc_state of { name : string; state : string }
  | Sc_kind of { name : string; absolute : bool; confidence : float }
  | Sc_anchor of { name : string; anchor : int }
  | Sc_violations of { name : string; count : int }
  | Sc_statement of { name : string; repr : string }
  | Sc_dropped of { name : string }
  | Sc_exception of { name : string; table : string }

(* [shard] is the WAL shard tag: the partition segment whose stream the
   record belongs to, [-1] for unpartitioned tables.  Tags are assigned
   at row birth and inherited by the row's later records, so one rid's
   records always live in one shard stream and the streams can be
   replayed independently ({!Core.Recovery.recover_sharded}). *)
type record =
  | Begin of { txn : int }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Insert of {
      txn : int;
      table : string;
      rid : Table.rid;
      row : Value.t array;
      shard : int;
    }
  | Delete of {
      txn : int;
      table : string;
      rid : Table.rid;
      row : Value.t array;
      shard : int;
    }
  | Update of {
      txn : int;
      table : string;
      rid : Table.rid;
      before : Value.t array;
      after : Value.t array;
      shard : int;
    }
  | Ddl of { txn : int; sql : string }
  | Sc of { txn : int; change : sc_change }
  | Idx_state of { txn : int; name : string; state : string }
      (* an index lifecycle transition (write_only/backfilling/readable/
         demoted): replay re-derives index consistency from these — a
         [readable] transition triggers a rebuild, an index still
         backfilling when the log ends is demoted *)

exception Wal_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Wal_error s)) fmt

(* ---- fault hooks -------------------------------------------------------- *)

(* [rel] sits below [obs], so the fault harness installs itself here. *)
let fault_hook : (string -> unit) ref = ref (fun _ -> ())
let set_fault_hook f = fault_hook := f
let point name = !fault_hook name

(* The physical-write indirection: every byte the file sink emits goes
   through this hook, so {!Obs.Fault} can tear a write short
   ([Torn_write]) or flip a byte ([Bit_flip]) at the exact point the
   bytes would hit the OS.  The default is a pass-through. *)
let write_hook : (point:string -> write:(string -> unit) -> string -> unit) ref
    =
  ref (fun ~point:_ ~write s -> write s)

let set_write_hook f = write_hook := f

let fault_points =
  [ "wal.append"; "wal.io"; "wal.pre_commit"; "wal.post_commit";
    "wal.checkpoint" ]

(* ---- text codec --------------------------------------------------------- *)

(* Strings are backslash-escaped so a field never contains a literal tab
   or newline; fields join with tabs, records with newlines. *)
let escape s =
  if
    not
      (String.exists
         (fun c -> c = '\\' || c = '\t' || c = '\n' || c = '\r')
         s)
  then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape s =
  if not (String.contains s '\\') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '\\' && !i + 1 < n then begin
         (match s.[!i + 1] with
         | '\\' -> Buffer.add_char buf '\\'
         | 't' -> Buffer.add_char buf '\t'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | c -> error "bad escape '\\%c'" c);
         i := !i + 2
       end
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  end

(* Values carry a one-character type tag; floats use "%h" for an exact
   round-trip, dates their integer epoch-day representation. *)
let value_to_field = function
  | Value.Null -> "N"
  | Value.Int i -> "I" ^ string_of_int i
  | Value.Float f -> "F" ^ Printf.sprintf "%h" f
  | Value.String s -> "S" ^ escape s
  | Value.Bool b -> if b then "B1" else "B0"
  | Value.Date d -> "D" ^ string_of_int d

let value_of_field s =
  if s = "" then error "empty value field";
  let body () = String.sub s 1 (String.length s - 1) in
  match s.[0] with
  | 'N' -> Value.Null
  | 'I' -> (
      match int_of_string_opt (body ()) with
      | Some i -> Value.Int i
      | None -> error "bad int field %S" s)
  | 'F' -> (
      match float_of_string_opt (body ()) with
      | Some f -> Value.Float f
      | None -> error "bad float field %S" s)
  | 'S' -> Value.String (unescape (body ()))
  | 'B' -> (
      match body () with
      | "1" -> Value.Bool true
      | "0" -> Value.Bool false
      | _ -> error "bad bool field %S" s)
  | 'D' -> (
      match int_of_string_opt (body ()) with
      | Some d -> Value.Date d
      | None -> error "bad date field %S" s)
  | _ -> error "bad value field %S" s

let row_fields row =
  string_of_int (Array.length row)
  :: List.map value_to_field (Array.to_list row)

let int_field s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> error "expected integer, got %S" s

let float_field s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> error "expected float, got %S" s

let bool_field s =
  match s with
  | "1" -> true
  | "0" -> false
  | _ -> error "expected 0/1, got %S" s

(* consume a count-prefixed row from a field list *)
let take_row fields =
  match fields with
  | [] -> error "truncated row"
  | n :: rest ->
      let n = int_field n in
      let row = Array.make n Value.Null in
      let rest = ref rest in
      for i = 0 to n - 1 do
        match !rest with
        | [] -> error "truncated row (want %d values)" n
        | f :: tl ->
            row.(i) <- value_of_field f;
            rest := tl
      done;
      (row, !rest)

(* The shard tag is a trailing optional field: unpartitioned records
   (shard -1) keep the historical line shape, so pre-partitioning logs
   stay readable. *)
let shard_fields shard = if shard < 0 then [] else [ string_of_int shard ]

let take_shard = function
  | [] -> -1
  | [ s ] -> int_field s
  | _ -> error "trailing fields on data record"

let sc_change_fields = function
  | Sc_installed s ->
      [
        "install"; escape s.sc_name; escape s.sc_table;
        (if s.sc_absolute then "1" else "0");
        Printf.sprintf "%h" s.sc_confidence; escape s.sc_state;
        string_of_int s.sc_anchor; string_of_int s.sc_violations;
        escape s.sc_repr;
      ]
  | Sc_state { name; state } -> [ "state"; escape name; escape state ]
  | Sc_kind { name; absolute; confidence } ->
      [
        "kind"; escape name;
        (if absolute then "1" else "0");
        Printf.sprintf "%h" confidence;
      ]
  | Sc_anchor { name; anchor } ->
      [ "anchor"; escape name; string_of_int anchor ]
  | Sc_violations { name; count } ->
      [ "viol"; escape name; string_of_int count ]
  | Sc_statement { name; repr } -> [ "stmt"; escape name; escape repr ]
  | Sc_dropped { name } -> [ "drop"; escape name ]
  | Sc_exception { name; table } -> [ "exc"; escape name; escape table ]

let sc_change_of_fields = function
  | [ "install"; name; table; abs; conf; state; anchor; viol; repr ] ->
      Sc_installed
        {
          sc_name = unescape name;
          sc_table = unescape table;
          sc_absolute = bool_field abs;
          sc_confidence = float_field conf;
          sc_state = unescape state;
          sc_anchor = int_field anchor;
          sc_violations = int_field viol;
          sc_repr = unescape repr;
        }
  | [ "state"; name; state ] ->
      Sc_state { name = unescape name; state = unescape state }
  | [ "kind"; name; abs; conf ] ->
      Sc_kind
        {
          name = unescape name;
          absolute = bool_field abs;
          confidence = float_field conf;
        }
  | [ "anchor"; name; anchor ] ->
      Sc_anchor { name = unescape name; anchor = int_field anchor }
  | [ "viol"; name; count ] ->
      Sc_violations { name = unescape name; count = int_field count }
  | [ "stmt"; name; repr ] ->
      Sc_statement { name = unescape name; repr = unescape repr }
  | [ "drop"; name ] -> Sc_dropped { name = unescape name }
  | [ "exc"; name; table ] ->
      Sc_exception { name = unescape name; table = unescape table }
  | fields -> error "bad sc record: %s" (String.concat " " fields)

let record_to_line r =
  let fields =
    match r with
    | Begin { txn } -> [ "B"; string_of_int txn ]
    | Commit { txn } -> [ "C"; string_of_int txn ]
    | Abort { txn } -> [ "A"; string_of_int txn ]
    | Insert { txn; table; rid; row; shard } ->
        [ "I"; string_of_int txn; escape table; string_of_int rid ]
        @ row_fields row @ shard_fields shard
    | Delete { txn; table; rid; row; shard } ->
        [ "D"; string_of_int txn; escape table; string_of_int rid ]
        @ row_fields row @ shard_fields shard
    | Update { txn; table; rid; before; after; shard } ->
        [ "U"; string_of_int txn; escape table; string_of_int rid ]
        @ row_fields before @ row_fields after @ shard_fields shard
    | Ddl { txn; sql } -> [ "Q"; string_of_int txn; escape sql ]
    | Sc { txn; change } ->
        "S" :: string_of_int txn :: sc_change_fields change
    | Idx_state { txn; name; state } ->
        [ "X"; string_of_int txn; escape name; escape state ]
  in
  String.concat "\t" fields

let record_of_line line =
  match String.split_on_char '\t' line with
  | [ "B"; txn ] -> Begin { txn = int_field txn }
  | [ "C"; txn ] -> Commit { txn = int_field txn }
  | [ "A"; txn ] -> Abort { txn = int_field txn }
  | "I" :: txn :: table :: rid :: rest ->
      let row, extra = take_row rest in
      Insert
        {
          txn = int_field txn;
          table = unescape table;
          rid = int_field rid;
          row;
          shard = take_shard extra;
        }
  | "D" :: txn :: table :: rid :: rest ->
      let row, extra = take_row rest in
      Delete
        {
          txn = int_field txn;
          table = unescape table;
          rid = int_field rid;
          row;
          shard = take_shard extra;
        }
  | "U" :: txn :: table :: rid :: rest ->
      let before, rest = take_row rest in
      let after, extra = take_row rest in
      Update
        {
          txn = int_field txn;
          table = unescape table;
          rid = int_field rid;
          before;
          after;
          shard = take_shard extra;
        }
  | [ "Q"; txn; sql ] -> Ddl { txn = int_field txn; sql = unescape sql }
  | "S" :: txn :: rest ->
      Sc { txn = int_field txn; change = sc_change_of_fields rest }
  | [ "X"; txn; name; state ] ->
      Idx_state
        { txn = int_field txn; name = unescape name; state = unescape state }
  | _ -> error "corrupt log line: %S" line

(* ---- v2 line codec: LSN + CRC32 ----------------------------------------- *)

(* Format v2 wraps the v1 payload in an integrity header:

     L<lsn> \t <crc32-hex8> \t <v1 payload>

   The LSN increases by one per line within a file (checkpoints rewrite
   the whole file and restart at 1), and the checksum covers
   "<lsn>\t<payload>", so a torn, bit-flipped, or spliced line is
   detected rather than misparsed.  The head field "L<digits>" cannot
   collide with a v1 head tag (single letters B/C/A/I/D/U/Q/S), so v1
   logs remain readable line-by-line. *)

let line_of_record ~lsn r =
  let payload = record_to_line r in
  let lsn_s = string_of_int lsn in
  let crc = Crc32.string (lsn_s ^ "\t" ^ payload) in
  "L" ^ lsn_s ^ "\t" ^ Crc32.to_hex crc ^ "\t" ^ payload

let parse_line line =
  let v1 () =
    match record_of_line line with
    | r -> Ok (None, r)
    | exception Wal_error m -> Error m
  in
  let n = String.length line in
  if n = 0 then Error "empty line"
  else if n >= 2 && line.[0] = 'L' && line.[1] >= '0' && line.[1] <= '9' then begin
    match String.index_opt line '\t' with
    | None -> Error "v2 line truncated before checksum"
    | Some t1 -> (
        match String.index_from_opt line (t1 + 1) '\t' with
        | None -> Error "v2 line truncated before payload"
        | Some t2 -> (
            let lsn_s = String.sub line 1 (t1 - 1) in
            let crc_s = String.sub line (t1 + 1) (t2 - t1 - 1) in
            let payload = String.sub line (t2 + 1) (n - t2 - 1) in
            match (int_of_string_opt lsn_s, Crc32.of_hex crc_s) with
            | None, _ -> Error (Printf.sprintf "bad LSN field %S" lsn_s)
            | _, None -> Error (Printf.sprintf "bad checksum field %S" crc_s)
            | Some lsn, Some stored ->
                let computed = Crc32.string (lsn_s ^ "\t" ^ payload) in
                if computed <> stored then
                  Error
                    (Printf.sprintf
                       "checksum mismatch (stored %s, computed %s)"
                       (Crc32.to_hex stored) (Crc32.to_hex computed))
                else begin
                  match record_of_line payload with
                  | r -> Ok (Some lsn, r)
                  | exception Wal_error m -> Error m
                end))
  end
  else v1 ()

type scanned = {
  lineno : int;  (* 1-based, blank lines counted *)
  offset : int;  (* byte offset of the line start *)
  bytes : int;  (* line length including the newline, if present *)
  lsn : int option;  (* None for v1 lines and unparsable ones *)
  parsed : (record, string) result;
}

let scan_string contents =
  let n = String.length contents in
  let rec loop acc lineno off =
    if off >= n then List.rev acc
    else begin
      let nl =
        match String.index_from_opt contents off '\n' with
        | Some i -> i
        | None -> n
      in
      let line = String.sub contents off (nl - off) in
      let bytes = min n (nl + 1) - off in
      let acc =
        if line = "" then acc (* blank separators tolerated, as in load *)
        else begin
          let lsn, parsed =
            match parse_line line with
            | Ok (lsn, r) -> (lsn, Ok r)
            | Error m -> (None, Error m)
          in
          { lineno; offset = off; bytes; lsn; parsed } :: acc
        end
      in
      loop acc (lineno + 1) (nl + 1)
    end
  in
  loop [] 1 0

let read_file_bytes fpath =
  if not (Sys.file_exists fpath) then ""
  else In_channel.with_open_bin fpath In_channel.input_all

let scan_file fpath =
  let contents = read_file_bytes fpath in
  (contents, scan_string contents)

let txn_of = function
  | Begin { txn }
  | Commit { txn }
  | Abort { txn }
  | Insert { txn; _ }
  | Delete { txn; _ }
  | Update { txn; _ }
  | Ddl { txn; _ }
  | Sc { txn; _ }
  | Idx_state { txn; _ } ->
      txn

let committed_txns records =
  let committed = Hashtbl.create 16 in
  List.iter
    (function
      | Commit { txn } -> Hashtbl.replace committed txn ()
      | _ -> ())
    records;
  fun txn -> Hashtbl.mem committed txn

(* ---- sinks -------------------------------------------------------------- *)

type sink =
  | Memory of record list ref (* newest first *)
  | File of { fpath : string; mutable oc : out_channel option }

type t = {
  sink : sink;
  mutable next_txn : int;
  mutable next_lsn : int;
  mutable closed : bool;
}

(* Strict load: any unparsable or checksum-failing line raises.  The
   salvage-aware path ({!scan_file} + {!Core.Recovery}) classifies
   instead of raising. *)
let load_file fpath =
  let _, scanned = scan_file fpath in
  List.map
    (fun s ->
      match s.parsed with
      | Ok r -> r
      | Error m -> error "corrupt log line %d: %s" s.lineno m)
    scanned

let max_txn records =
  List.fold_left (fun acc r -> max acc (txn_of r)) 0 records

let create_memory () =
  { sink = Memory (ref []); next_txn = 1; next_lsn = 1; closed = false }

let open_file fpath =
  let _, scanned = scan_file fpath in
  let existing, max_lsn =
    List.fold_left
      (fun (acc, lsn) s ->
        match s.parsed with
        | Ok r ->
            (r :: acc, match s.lsn with Some l -> max lsn l | None -> lsn)
        | Error m -> error "corrupt log line %d: %s" s.lineno m)
      ([], 0) scanned
  in
  let existing = List.rev existing in
  let oc =
    try Some (open_out_gen [ Open_append; Open_creat ] 0o644 fpath)
    with Sys_error m -> error "cannot open log %s: %s" fpath m
  in
  {
    sink = File { fpath; oc };
    next_txn = max_txn existing + 1;
    next_lsn = max_lsn + 1;
    closed = false;
  }

let path t = match t.sink with Memory _ -> None | File f -> Some f.fpath

let check_open t = if t.closed then error "write-ahead log is closed"

let fresh_txn t =
  check_open t;
  let id = t.next_txn in
  t.next_txn <- id + 1;
  id

let file_oc fpath = function
  | Some oc -> oc
  | None -> error "log %s is closed" fpath

let append t r =
  check_open t;
  point "wal.append";
  match t.sink with
  | Memory records -> records := r :: !records
  | File f -> (
      point "wal.io";
      let oc = file_oc f.fpath f.oc in
      let lsn = t.next_lsn in
      t.next_lsn <- lsn + 1;
      let line = line_of_record ~lsn r ^ "\n" in
      try !write_hook ~point:"wal.io" ~write:(fun s -> output_string oc s) line
      with Sys_error m -> error "write to %s failed: %s" f.fpath m)

let flush t =
  match t.sink with
  | Memory _ -> ()
  | File f -> (
      match f.oc with
      | None -> ()
      | Some oc -> ( try Stdlib.flush oc with Sys_error _ -> ()))

let commit t txn =
  check_open t;
  point "wal.pre_commit";
  append t (Commit { txn });
  flush t;
  point "wal.post_commit"

let abort t txn =
  check_open t;
  append t (Abort { txn });
  flush t

let records t =
  match t.sink with
  | Memory records -> List.rev !records
  | File f ->
      flush t;
      load_file f.fpath

(* Checkpoint primitive: atomically replace the log's contents.  The file
   sink writes a sibling file and renames it over the log, so a crash
   mid-checkpoint leaves the original intact. *)
let truncate_with t new_records =
  check_open t;
  (match t.sink with
  | Memory records ->
      point "wal.checkpoint";
      records := List.rev new_records
  | File f ->
      let tmp = f.fpath ^ ".ckpt" in
      (* the rewritten file restarts the LSN sequence at 1: monotonicity
         is a per-file invariant, and the rename makes this a new file *)
      let lsn = ref 0 in
      Out_channel.with_open_text tmp (fun oc ->
          List.iter
            (fun r ->
              incr lsn;
              !write_hook ~point:"wal.checkpoint"
                ~write:(fun s -> output_string oc s)
                (line_of_record ~lsn:!lsn r ^ "\n"))
            new_records);
      point "wal.checkpoint";
      (match f.oc with
      | Some oc ->
          close_out_noerr oc;
          f.oc <- None
      | None -> ());
      Sys.rename tmp f.fpath;
      f.oc <- Some (open_out_gen [ Open_append; Open_creat ] 0o644 f.fpath);
      t.next_lsn <- !lsn + 1);
  t.next_txn <- max t.next_txn (max_txn new_records + 1)

let close t =
  if not t.closed then begin
    flush t;
    (match t.sink with
    | Memory _ -> ()
    | File f -> (
        match f.oc with
        | Some oc ->
            close_out_noerr oc;
            f.oc <- None
        | None -> ()));
    t.closed <- true
  end

(* ---- display ------------------------------------------------------------ *)

let pp_row ppf row =
  Fmt.pf ppf "(%a)"
    Fmt.(array ~sep:(any ", ") (fun ppf v -> Value.pp ppf v))
    row

let pp_shard ppf shard = if shard >= 0 then Fmt.pf ppf " @@%d" shard

let pp_record ppf = function
  | Begin { txn } -> Fmt.pf ppf "BEGIN %d" txn
  | Commit { txn } -> Fmt.pf ppf "COMMIT %d" txn
  | Abort { txn } -> Fmt.pf ppf "ABORT %d" txn
  | Insert { txn; table; rid; row; shard } ->
      Fmt.pf ppf "[%d] INSERT %s #%d %a%a" txn table rid pp_row row pp_shard
        shard
  | Delete { txn; table; rid; row; shard } ->
      Fmt.pf ppf "[%d] DELETE %s #%d %a%a" txn table rid pp_row row pp_shard
        shard
  | Update { txn; table; rid; before; after; shard } ->
      Fmt.pf ppf "[%d] UPDATE %s #%d %a -> %a%a" txn table rid pp_row before
        pp_row after pp_shard shard
  | Ddl { txn; sql } -> Fmt.pf ppf "[%d] DDL %s" txn sql
  | Sc { txn; change } ->
      Fmt.pf ppf "[%d] SC %s" txn
        (String.concat " " (sc_change_fields change))
  | Idx_state { txn; name; state } ->
      Fmt.pf ppf "[%d] IDX %s -> %s" txn name state
