(* Minimal CSV import/export for tables: comma-separated, double-quote
   escaping, header row of column names.  NULL is encoded as the empty
   unquoted field.  Values parse according to the column's declared type. *)

let escape s =
  let needs =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let field_of_value = function
  | Value.Null -> ""
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.String s -> if s = "" then "\"\"" else escape s
  | Value.Bool b -> if b then "true" else "false"
  | Value.Date d -> Date.to_string d

let write_row out row =
  output_string out
    (String.concat "," (List.map field_of_value (Tuple.to_list row)));
  output_char out '\n'

let export table path =
  let out = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () ->
      let schema = Table.schema table in
      output_string out
        (String.concat "," (List.map escape (Schema.column_names schema)));
      output_char out '\n';
      Table.iter table ~f:(fun row -> write_row out row))

(* Split one CSV record (no embedded newlines across records supported
   beyond quoted fields read by [read_record]). *)
let split_record line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted_field = ref false in
  let rec go i in_quotes =
    if i >= n then begin
      fields := (Buffer.contents buf, !quoted_field) :: !fields
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then begin
        quoted_field := true;
        go (i + 1) true
      end
      else if c = ',' then begin
        fields := (Buffer.contents buf, !quoted_field) :: !fields;
        Buffer.clear buf;
        quoted_field := false;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !fields

exception Parse_error of string

let value_of_field dtype (text, quoted) =
  if text = "" && not quoted then Value.Null
  else
    match dtype with
    | Value.TInt -> (
        match int_of_string_opt (String.trim text) with
        | Some i -> Value.Int i
        | None -> raise (Parse_error (Printf.sprintf "bad INT: %S" text)))
    | Value.TFloat -> (
        match float_of_string_opt (String.trim text) with
        | Some f -> Value.Float f
        | None -> raise (Parse_error (Printf.sprintf "bad FLOAT: %S" text)))
    | Value.TString -> Value.String text
    | Value.TBool -> (
        match String.lowercase_ascii (String.trim text) with
        | "true" | "t" | "1" -> Value.Bool true
        | "false" | "f" | "0" -> Value.Bool false
        | _ -> raise (Parse_error (Printf.sprintf "bad BOOLEAN: %S" text)))
    | Value.TDate -> (
        match Date.of_string_opt (String.trim text) with
        | Some d -> Value.Date d
        | None -> raise (Parse_error (Printf.sprintf "bad DATE: %S" text)))

type load_report = {
  loaded : int;
  row_errors : (int * string) list; (* physical line number, reason *)
}

(* Load rows from [path] into [table] via [db] (so constraints and
   indexes apply).  The header row must name a subset ordering of the
   table's columns; missing columns become NULL.

   Loading is *degraded*, not all-or-nothing: a malformed or rejected
   row is recorded with its line number and skipped, and the remaining
   rows still load.  Only a bad header or a file where every attempted
   row fails raises — a single stray line must not abort (and, before
   this was fixed, half-apply) a bulk load. *)
let load db ~table path =
  let tbl = Database.table_exn db table in
  let schema = Table.schema tbl in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match In_channel.input_line ic with
        | None -> raise (Parse_error "empty file")
        | Some line -> List.map (fun (t, _) -> String.trim t) (split_record line)
      in
      let positions =
        List.map
          (fun name ->
            match Schema.find_index schema name with
            | Some i -> i
            | None ->
                raise
                  (Parse_error
                     (Printf.sprintf "header names unknown column %S" name)))
          header
      in
      let loaded = ref 0 in
      let errors = ref [] in
      let attempted = ref 0 in
      let lineno = ref 1 in
      let fail fmt =
        Printf.ksprintf (fun m -> errors := (!lineno, m) :: !errors) fmt
      in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            incr lineno;
            if line <> "" then begin
              incr attempted;
              let fields = split_record line in
              if List.length fields <> List.length positions then
                fail "%d fields for %d columns" (List.length fields)
                  (List.length positions)
              else begin
                match
                  let row = Array.make (Schema.arity schema) Value.Null in
                  List.iter2
                    (fun pos field ->
                      let dtype = (Schema.column_at schema pos).Schema.dtype in
                      row.(pos) <- value_of_field dtype field)
                    positions fields;
                  Database.insert db ~table (Tuple.of_array row)
                with
                | _rid -> incr loaded
                | exception Parse_error m -> fail "%s" m
                | exception Checker.Constraint_violation v ->
                    fail "violates %s: %s" v.Checker.constraint_name
                      v.Checker.reason
                | exception Database.Catalog_error m -> fail "%s" m
              end
            end;
            loop ()
      in
      loop ();
      if !loaded = 0 && !errors <> [] then begin
        let line, m = List.hd (List.rev !errors) in
        raise
          (Parse_error
             (Printf.sprintf "all %d rows failed; first: line %d: %s"
                !attempted line m))
      end;
      { loaded = !loaded; row_errors = List.rev !errors })

let import db ~table path = (load db ~table path).loaded
