(** The database catalog: tables, secondary indexes, integrity
    constraints, and a mutation-log hook.

    All data modification goes through this module so that (a) enforced
    constraints are checked, (b) indexes stay consistent, and (c)
    mutation listeners — the soft-constraint maintenance machinery of
    {!Core} — see every change.  Informational constraints are stored but
    never checked, exactly as in the paper (§1). *)

type mutation =
  | Inserted of { table : string; rid : Table.rid; row : Tuple.t }
  | Deleted of { table : string; rid : Table.rid; row : Tuple.t }
  | Updated of {
      table : string;
      rid : Table.rid;
      before : Tuple.t;
      after : Tuple.t;
    }

type t

exception Catalog_error of string

val create : unit -> t

(** {1 Tables} *)

val create_table : t -> Schema.t -> Table.t

val find_table : t -> string -> Table.t option
(** Base tables are returned as stored; a registered virtual table is
    materialized afresh from its generator on every lookup. *)

val table_exn : t -> string -> Table.t

val table_names : t -> string list
(** Base tables only; see {!virtual_names}. *)

(** {1 Virtual tables}

    A virtual table is a (schema, row generator) pair — nothing is
    stored.  [find_table] materializes it on demand, which makes the
    sys.* observability views plain SQL citizens.  Virtual tables are
    read-only: mutations through this module raise {!Catalog_error}. *)

val register_virtual :
  t -> name:string -> schema:Schema.t -> (unit -> Tuple.t list) -> unit
(** Registering under an existing virtual name replaces its generator;
    registering over a base table raises {!Catalog_error}. *)

val virtual_names : t -> string list

val drop_table : t -> string -> unit
(** Also drops the table's indexes and constraints. *)

(** {1 Indexes} *)

val create_index :
  t -> name:string -> table:string -> columns:string list -> ?unique:bool ->
  unit -> Index.t

val create_index_shell :
  t -> name:string -> table:string -> columns:string list -> ?unique:bool ->
  unit -> Index.t
(** An empty [Write_only] index registered in the catalog immediately, so
    every mutation from this moment on maintains it; the online backfill
    ({!Idx.Lifecycle}) covers the pre-existing rows. *)

val find_index_by_name : t -> string -> Index.t option

val all_indexes : t -> Index.t list
(** Every index in the catalog, sorted by name. *)

val on_index_state : t -> (Index.t -> unit) -> unit
(** Register a listener invoked after every index lifecycle transition
    made through {!set_index_state} — the WAL link logs these. *)

val set_index_state : t -> Index.t -> Index.state -> unit
(** Transition an index's lifecycle state and notify the listeners
    (no-op when the state is unchanged). *)

val rebuild_index : t -> string -> Index.t
(** Discard and rebuild an index from the current heap contents; the
    result is readable and consistent by construction.  Raises
    {!Catalog_error} when no such index exists. *)

val drop_index : t -> string -> unit
val indexes_on : t -> string -> Index.t list

val find_index_on : t -> string -> string list -> Index.t option
(** An index whose key columns are exactly these, in order. *)

val find_index_on_column : t -> string -> string -> Index.t option
(** A single-column index on this column (access-path selection). *)

(** {1 Partitioning}

    A table may carry one horizontal partitioning ({!Partition}).  The
    heap stays single — rids, indexes and existing scans are untouched —
    while the mutation paths below keep per-segment rid membership,
    row counts, and partition-local mutation counters exact (including
    updates that move a row between segments, and rid-faithful replay). *)

val declare_partitioning : t -> table:string -> Partition.spec -> Partition.t
(** Routes every existing row into its segment and installs the
    bookkeeping.  Raises {!Catalog_error} on a virtual table, an already
    partitioned table, or an invalid spec. *)

val partitioning : t -> string -> Partition.t option

val partitioned_tables : t -> string list
(** Normalized names of partitioned base tables, sorted. *)

val route_rid : t -> string -> Tuple.t -> int
(** The segment this row routes to, [-1] when the table is not
    partitioned — the WAL shard tag ({!Core.Recovery}). *)

(** {1 Constraints} *)

val checker_env : t -> Checker.env

val add_constraint : t -> Icdef.t -> unit
(** Adding an {e enforced} constraint validates the current data first
    (raises {!Catalog_error} on violation); informational constraints are
    taken on faith — the paper's external promise. *)

val drop_constraint : t -> string -> unit
val constraints : t -> Icdef.t list
val constraints_on : t -> string -> Icdef.t list
val find_constraint : t -> string -> Icdef.t option

(** {1 Mutation listeners} *)

val on_mutation : t -> (mutation -> unit) -> unit
(** Register a listener invoked after every successful mutation. *)

(** {1 Data modification}

    Each operation checks the enforced constraints (raising
    {!Checker.Constraint_violation}), maintains every index, and notifies
    the listeners. *)

val insert : t -> table:string -> Tuple.t -> Table.rid
val delete : t -> table:string -> Table.rid -> bool
val update : t -> table:string -> Table.rid -> Tuple.t -> unit
val insert_many : t -> table:string -> Tuple.t list -> Table.rid list

val restore : t -> table:string -> Table.rid -> Tuple.t -> unit
(** Compensating re-insert for transaction rollback: the original rid is
    re-occupied, indexes are maintained and listeners notified, but
    constraint checking is skipped (intermediate undo states may be
    transiently inconsistent). *)

(** {1 Log replay}

    Used by {!Core.Recovery} to apply committed WAL records to a fresh
    database.  The mutations already passed constraint checking when
    first executed, and listener side effects are themselves in the log,
    so these bypass both checks and listeners — only storage and indexes
    are maintained.  Inserts are rid-faithful ({!Table.place}). *)

val replay_insert : t -> table:string -> Table.rid -> Tuple.t -> unit
val replay_delete : t -> table:string -> Table.rid -> unit
val replay_update : t -> table:string -> Table.rid -> Tuple.t -> unit

val pp : Format.formatter -> t -> unit
