(* Heap table storage.  Rows live in a growable slot array; deletion leaves
   a tombstone ([None]) so row identifiers (rids) stay stable, which the
   indexes and exception tables rely on.  [mutations] counts every
   insert/update/delete since creation — the soft-constraint currency
   model (paper §3.3) reads it to bound statistics drift. *)

type rid = int

type t = {
  schema : Schema.t;
  mutable slots : Tuple.t option array;
  mutable next_slot : int;
  mutable live : int;
  mutable mutations : int;
}

let create schema =
  { schema; slots = Array.make 16 None; next_slot = 0; live = 0; mutations = 0 }

let schema t = t.schema
let name t = t.schema.Schema.table
let cardinality t = t.live
let mutations t = t.mutations

let ensure_capacity t =
  if t.next_slot >= Array.length t.slots then begin
    let slots = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 slots 0 (Array.length t.slots);
    t.slots <- slots
  end

exception Row_error of string

(* Insert a conforming copy of [row]; raises [Row_error] on schema
   violation.  Constraint checking is layered above (see {!Checker}). *)
let insert t row =
  match Tuple.conform t.schema row with
  | Error msg -> raise (Row_error msg)
  | Ok row ->
      ensure_capacity t;
      let rid = t.next_slot in
      t.slots.(rid) <- Some row;
      t.next_slot <- rid + 1;
      t.live <- t.live + 1;
      t.mutations <- t.mutations + 1;
      rid

let get t rid =
  if rid < 0 || rid >= t.next_slot then None else t.slots.(rid)

let get_exn t rid =
  match get t rid with
  | Some row -> row
  | None -> raise (Row_error (Printf.sprintf "no row with rid %d" rid))

(* Re-occupy the tombstoned slot of a previously deleted row — transaction
   rollback needs the original rid back so older undo records still
   apply. *)
let restore t rid row =
  if rid < 0 || rid >= t.next_slot then
    raise (Row_error (Printf.sprintf "cannot restore rid %d: never allocated" rid));
  (match t.slots.(rid) with
  | Some _ ->
      raise (Row_error (Printf.sprintf "cannot restore rid %d: slot occupied" rid))
  | None -> ());
  match Tuple.conform t.schema row with
  | Error msg -> raise (Row_error msg)
  | Ok row ->
      t.slots.(rid) <- Some row;
      t.live <- t.live + 1;
      t.mutations <- t.mutations + 1

(* Place a row at an exact rid, extending the slot array as needed —
   recovery replays inserts rid-faithfully so later log records (and the
   indexes rebuilt from them) keep referring to the right slots. *)
let place t rid row =
  if rid < 0 then
    raise (Row_error (Printf.sprintf "cannot place rid %d" rid));
  (if rid < t.next_slot then
     match t.slots.(rid) with
     | Some _ ->
         raise
           (Row_error (Printf.sprintf "cannot place rid %d: slot occupied" rid))
     | None -> ());
  match Tuple.conform t.schema row with
  | Error msg -> raise (Row_error msg)
  | Ok row ->
      while rid >= Array.length t.slots do
        let slots = Array.make (2 * Array.length t.slots) None in
        Array.blit t.slots 0 slots 0 (Array.length t.slots);
        t.slots <- slots
      done;
      t.slots.(rid) <- Some row;
      t.next_slot <- max t.next_slot (rid + 1);
      t.live <- t.live + 1;
      t.mutations <- t.mutations + 1

let delete t rid =
  match get t rid with
  | None -> false
  | Some _ ->
      t.slots.(rid) <- None;
      t.live <- t.live - 1;
      t.mutations <- t.mutations + 1;
      true

let update t rid row =
  match get t rid with
  | None -> raise (Row_error (Printf.sprintf "no row with rid %d" rid))
  | Some _ -> (
      match Tuple.conform t.schema row with
      | Error msg -> raise (Row_error msg)
      | Ok row ->
          t.slots.(rid) <- Some row;
          t.mutations <- t.mutations + 1)

let iteri t ~f =
  for rid = 0 to t.next_slot - 1 do
    match t.slots.(rid) with None -> () | Some row -> f rid row
  done

let iter t ~f = iteri t ~f:(fun _ row -> f row)

let fold t ~init ~f =
  let acc = ref init in
  iteri t ~f:(fun rid row -> acc := f !acc rid row);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc _ row -> row :: acc))

let rids t = List.rev (fold t ~init:[] ~f:(fun acc rid _ -> rid :: acc))

let clear t =
  t.slots <- Array.make 16 None;
  t.next_slot <- 0;
  t.mutations <- t.mutations + t.live;
  t.live <- 0

(* Crude physical sizing used by the cost model: fixed per-value width. *)
let bytes_per_value = 16
let page_size = 4096

let row_width t = Schema.arity t.schema * bytes_per_value

let rows_per_page t = max 1 (page_size / row_width t)

let pages t = (cardinality t + rows_per_page t - 1) / rows_per_page t
