(** Write-ahead logging for durability.

    The engine is in-memory; durability comes from logging every data
    mutation and every soft-constraint catalog transition, framed by
    begin/commit/abort records, and replaying the committed frames into a
    fresh database after a crash ({!Core.Recovery}).  Two sinks:

    - a {e memory} sink (fsync-free, for tests and the fault matrix),
      where a record is durable the moment it is appended;
    - a {e file} sink (for the CLI's [--wal]), line-oriented text,
      buffered between commits and flushed by {!commit} / {!abort} /
      {!flush}.

    The log is {e redo-only}: uncommitted frames are simply skipped at
    replay, so no undo information beyond the update before-image (kept
    for debugging and consistency checks) is required.

    This module knows nothing about fault injection, but named fault
    points ({!fault_points}) are threaded through its hot paths via a
    hook that {!Obs.Fault} installs — [rel] sits below [obs] in the
    library stack, so the dependency is inverted through
    {!set_fault_hook}. *)

type sc_snapshot = {
  sc_name : string;
  sc_table : string;
  sc_absolute : bool;  (** ASC vs. SSC *)
  sc_confidence : float;  (** 1.0 for ASCs *)
  sc_state : string;  (** probation / active / violated / dropped *)
  sc_anchor : int;  (** installed_at_mutations, the currency anchor *)
  sc_violations : int;
  sc_repr : string;  (** serialized statement, see {!Core.Sc_codec} *)
}
(** A full image of one soft constraint, as installed programmatically or
    dumped by a checkpoint.  The statement representation is an opaque
    string at this layer; {!Core.Sc_codec} owns the round-trip. *)

(** A soft-constraint catalog transition.  Field-level deltas reference
    the constraint by name; {!Sc_installed} carries the full image. *)
type sc_change =
  | Sc_installed of sc_snapshot
  | Sc_state of { name : string; state : string }
  | Sc_kind of { name : string; absolute : bool; confidence : float }
  | Sc_anchor of { name : string; anchor : int }
  | Sc_violations of { name : string; count : int }
  | Sc_statement of { name : string; repr : string }
  | Sc_dropped of { name : string }
  | Sc_exception of { name : string; table : string }

(** Data records carry a {e shard tag}: the partition segment whose
    per-partition stream the record belongs to, [-1] for unpartitioned
    tables.  Tags are assigned at row birth and inherited by the row's
    later records, so one rid's records always live in one stream and
    {!Core.Recovery.recover_sharded} can replay shards independently.
    On disk the tag is a trailing optional field — records of
    unpartitioned tables keep the historical line shape. *)
type record =
  | Begin of { txn : int }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Insert of {
      txn : int;
      table : string;
      rid : Table.rid;
      row : Value.t array;
      shard : int;
    }
  | Delete of {
      txn : int;
      table : string;
      rid : Table.rid;
      row : Value.t array;
      shard : int;
    }
  | Update of {
      txn : int;
      table : string;
      rid : Table.rid;
      before : Value.t array;
      after : Value.t array;
      shard : int;
    }
  | Ddl of { txn : int; sql : string }
      (** A schema statement, logged as its printed SQL and re-executed
          deterministically at replay. *)
  | Sc of { txn : int; change : sc_change }
  | Idx_state of { txn : int; name : string; state : string }
      (** An index lifecycle transition
          ([write_only]/[backfilling]/[readable]/[demoted], see
          {!Index.state}).  Replay re-derives index consistency from
          these: a committed [readable] transition rebuilds the index
          from the recovered heap; an index left mid-backfill when the
          log ends is demoted to write-only. *)

type t

exception Wal_error of string
(** Corrupt log lines, closed-log appends, and file-sink I/O errors. *)

val create_memory : unit -> t

val open_file : string -> t
(** Open (creating if absent) a file-sink log in append mode.  Existing
    records are scanned to continue the transaction numbering. *)

val path : t -> string option
(** [None] for the memory sink. *)

val close : t -> unit

val fresh_txn : t -> int
(** Allocate the next transaction id. *)

val append : t -> record -> unit
(** Fault points: [wal.append] (both sinks), [wal.io] (file sink, before
    the physical write). *)

val commit : t -> int -> unit
(** Append the commit record and flush.  Fault points: [wal.pre_commit]
    (before the record — the frame is lost on crash) and
    [wal.post_commit] (after the flush — the frame is durable). *)

val abort : t -> int -> unit
(** Append the abort record and flush. *)

val flush : t -> unit

val records : t -> record list
(** Every record, oldest first (file sinks are flushed and re-read). *)

val load_file : string -> record list
(** Read a log file without opening it as a sink; [[]] if absent.
    Strict: raises {!Wal_error} on the first corrupt line — the
    salvage-aware path is {!scan_file} + {!Core.Recovery}. *)

val truncate_with : t -> record list -> unit
(** Atomically replace the log's contents — the checkpoint primitive.
    The file sink writes a sibling [.ckpt] file and renames it over the
    log, so a crash during checkpoint ([wal.checkpoint] fires before the
    rename) leaves the original log intact.  Transaction numbering
    restarts above the ids present in [records]. *)

val committed_txns : record list -> int -> bool
(** Membership test of the transactions with a {!Commit} record. *)

val txn_of : record -> int

val record_to_line : record -> string
(** One line, no trailing newline; the {e v1} (headerless) payload
    format.  The file sink wraps it in the v2 integrity header — see
    {!line_of_record}. *)

val record_of_line : string -> record
(** Parse a v1 payload.  Raises {!Wal_error} on corrupt input. *)

(** {1 Format v2: LSN + CRC32}

    Every line the file sink writes carries an integrity header:

    {v L<lsn> \t <crc32-hex8> \t <v1 payload> v}

    The LSN increases by one per line within a file (a checkpoint
    rewrites the file and restarts at 1) and the CRC-32 covers
    ["<lsn>\t<payload>"], so torn, bit-flipped or spliced lines are
    detected rather than misparsed.  The head field [L<digits>] cannot
    collide with a v1 head tag, so v1 logs remain readable. *)

val line_of_record : lsn:int -> record -> string
(** The v2 encoding, no trailing newline. *)

val parse_line : string -> (int option * record, string) result
(** Parse one line of either version: [Some lsn] for v2 (checksum
    verified), [None] for v1.  [Error reason] instead of an exception —
    the salvage path classifies corrupt lines, it does not die on
    them. *)

type scanned = {
  lineno : int;  (** 1-based; blank lines counted but not reported *)
  offset : int;  (** byte offset of the line start *)
  bytes : int;  (** line length including the newline, if present *)
  lsn : int option;  (** [None] for v1 and unparsable lines *)
  parsed : (record, string) result;
}
(** One physical log line with enough location information to truncate
    a torn tail byte-exactly. *)

val scan_string : string -> scanned list
(** Classify every non-blank line of a raw log image, never raising. *)

val scan_file : string -> string * scanned list
(** Read the file raw (binary, [""] if absent) and {!scan_string} it;
    returns the raw bytes alongside so salvage can quarantine them. *)

(** {1 Text codec}

    The log's field-level codec, exported for other line-oriented framed
    formats that need the same exact round-trip guarantees (the server
    wire protocol, {!Srv.Proto}): strings backslash-escaped so a field
    never contains a literal tab or newline, floats printed in hex. *)

val escape : string -> string
val unescape : string -> string
(** [unescape] raises {!Wal_error} on a malformed escape. *)

val value_to_field : Value.t -> string

val value_of_field : string -> Value.t
(** Raises {!Wal_error} on corrupt input. *)

val set_fault_hook : (string -> unit) -> unit
(** Install the fault-injection callback invoked at each named point
    (see {!Obs.Fault}); the default is a no-op. *)

val set_write_hook :
  (point:string -> write:(string -> unit) -> string -> unit) -> unit
(** Install the physical-write indirection: every byte string the file
    sink emits passes through the hook (with the fault-point name of
    the site: [wal.io] for appends, [wal.checkpoint] for the checkpoint
    rewrite), which may write it whole, truncated ([Torn_write]), or
    corrupted ([Bit_flip]) via the supplied [write].  The default
    writes the string unchanged.  The memory sink is durable-at-append
    and bypasses the hook. *)

val fault_points : string list
(** The named fault points this module fires, for harness registration:
    [wal.append], [wal.io], [wal.pre_commit], [wal.post_commit],
    [wal.checkpoint]. *)

val pp_record : Format.formatter -> record -> unit
