(** A B+-tree with unique keys.

    Nodes are path-copied under a mutable root; branching factor [b]
    bounds node width (at most [2b − 1] keys per node, at least [b − 1]
    except at the root).  Deletion rebalances by borrowing from or merging
    with an adjacent sibling.  {!Make.validate} checks every structural
    invariant and is exercised by the property tests. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type key = Ord.t

  type 'a t

  val create : ?b:int -> unit -> 'a t
  (** [b] defaults to 16; raises [Invalid_argument] when [b < 2]. *)

  val length : 'a t -> int
  (** Number of bindings, O(1). *)

  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool

  val insert : 'a t -> key -> 'a -> bool
  (** Insert or replace; returns [true] when an existing binding was
      replaced. *)

  val remove : 'a t -> key -> bool
  (** Returns [true] when the key was present. *)

  type bound = Unbounded | Incl of key | Excl of key
  (** Range endpoints for scans. *)

  val fold_range :
    'a t -> lo:bound -> hi:bound -> init:'b -> f:('b -> key -> 'a -> 'b) -> 'b
  (** In-order fold over bindings within the bounds; subtrees entirely
      outside the range are skipped (O(log n + matches)). *)

  val fold_range_rev :
    'a t -> lo:bound -> hi:bound -> init:'b -> f:('b -> key -> 'a -> 'b) -> 'b
  (** [fold_range] in descending key order: same bounds and pruning,
      bindings delivered from the high end down. *)

  val fold : 'a t -> init:'b -> f:('b -> key -> 'a -> 'b) -> 'b
  val iter : 'a t -> f:(key -> 'a -> unit) -> unit
  val to_list : 'a t -> (key * 'a) list
  val range : 'a t -> lo:bound -> hi:bound -> (key * 'a) list
  val min_binding : 'a t -> (key * 'a) option
  val max_binding : 'a t -> (key * 'a) option

  val validate : 'a t -> unit
  (** Check every invariant (sortedness, occupancy bounds, uniform leaf
      depth, separator consistency, size field); raises [Failure] with a
      description on violation. *)
end
