(* Secondary indexes over heap tables: a B+-tree keyed on the projected
   column values, mapping each distinct key to the sorted list of rids
   holding it.  Composite keys compare lexicographically via
   {!Tuple.compare}.

   An index is a lifecycle-managed object (fdb-record-layer shape):

     Write_only --start--> Backfilling --finish--> Readable
         ^                      |                      |
         |                   demote                 demote
         +------ Demoted <-----+----------------------+

   In every state the maintenance hooks keep the tree current with table
   mutations; only a [Readable] index may serve probes.  While an index
   is not readable its insertions are idempotent per (key, rid): the
   online backfill and the concurrent write path may both present the
   same row, and the tree must record it exactly once. *)

module Key_tree = Bptree.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type state = Write_only | Backfilling | Readable | Demoted

let state_to_string = function
  | Write_only -> "write_only"
  | Backfilling -> "backfilling"
  | Readable -> "readable"
  | Demoted -> "demoted"

let state_of_string = function
  | "write_only" -> Some Write_only
  | "backfilling" -> Some Backfilling
  | "readable" -> Some Readable
  | "demoted" -> Some Demoted
  | _ -> None

type t = {
  name : string;
  table : string;
  columns : string list; (* indexed column names, in key order *)
  positions : int array; (* their positions in the table schema *)
  unique : bool;
  tree : Table.rid list Key_tree.t;
  mutable state : state;
}

exception Unique_violation of string

let key_of t row = Tuple.project row t.positions

let make ~name ~table ~columns ~unique ~state =
  let schema = Table.schema table in
  let positions =
    Array.of_list (List.map (Schema.index_exn schema) columns)
  in
  {
    name;
    table = Table.name table;
    columns;
    positions;
    unique;
    tree = Key_tree.create ~b:32 ();
    state;
  }

let create ~name ~table ~columns ?(unique = false) () =
  let t = make ~name ~table ~columns ~unique ~state:Readable in
  (* bulk-build from existing rows *)
  Table.iteri table ~f:(fun rid row ->
      let key = key_of t row in
      let existing =
        Option.value (Key_tree.find t.tree key) ~default:[]
      in
      if unique && existing <> [] then
        raise
          (Unique_violation
             (Printf.sprintf "unique index %s: duplicate key %s" name
                (Fmt.str "%a" Tuple.pp key)));
      ignore (Key_tree.insert t.tree key (rid :: existing)));
  t

(* An empty shell for the online build path: registered in the catalog
   immediately so every subsequent mutation maintains it, populated with
   pre-existing rows by the backfill ({!Idx.Lifecycle}). *)
let create_shell ~name ~table ~columns ?(unique = false) () =
  make ~name ~table ~columns ~unique ~state:Write_only

let name t = t.name
let table_name t = t.table
let columns t = t.columns
let is_unique t = t.unique
let state t = t.state
let set_state t state = t.state <- state
let is_readable t = t.state = Readable
let distinct_keys t = Key_tree.length t.tree

let entries t =
  Key_tree.fold t.tree ~init:0 ~f:(fun acc _ rids ->
      acc + List.length rids)

(* Maintenance hooks called by {!Database} on every table mutation.
   A Demoted index is abandoned — its contents are untrustworthy and the
   only way back is a full rebuild, which discards them — so maintaining
   it would be wasted work, and a demoted *unique* index must never veto
   a foreground write on the strength of entries it cannot vouch for. *)

let on_insert t rid row =
  if t.state = Demoted then ()
  else
  let key = key_of t row in
  let existing = Option.value (Key_tree.find t.tree key) ~default:[] in
  if List.mem rid existing then ()
    (* already indexed: the backfill and a concurrent writer raced on
       this row; recording it once is exactly the contract *)
  else begin
    if t.unique && existing <> [] then
      raise
        (Unique_violation
           (Printf.sprintf "unique index %s: duplicate key %s" t.name
              (Fmt.str "%a" Tuple.pp key)));
    ignore (Key_tree.insert t.tree key (rid :: existing))
  end

(* The backfill's idempotent insertion: returns whether the row was new
   to the tree, so the build can count real work. *)
let backfill_insert t rid row =
  let key = key_of t row in
  let existing = Option.value (Key_tree.find t.tree key) ~default:[] in
  if List.mem rid existing then false
  else begin
    if t.unique && existing <> [] then
      raise
        (Unique_violation
           (Printf.sprintf "unique index %s: duplicate key %s" t.name
              (Fmt.str "%a" Tuple.pp key)));
    ignore (Key_tree.insert t.tree key (rid :: existing));
    true
  end

let on_delete t rid row =
  if t.state = Demoted then ()
  else
  let key = key_of t row in
  match Key_tree.find t.tree key with
  | None -> ()
  | Some rids -> (
      match List.filter (fun r -> r <> rid) rids with
      | [] -> ignore (Key_tree.remove t.tree key)
      | remaining -> ignore (Key_tree.insert t.tree key remaining))

let on_update t rid ~before ~after =
  if not (Tuple.equal (key_of t before) (key_of t after)) then begin
    on_delete t rid before;
    on_insert t rid after
  end

(* Probes. *)

let lookup t key = Option.value (Key_tree.find t.tree key) ~default:[]

let lookup_value t v = lookup t (Tuple.of_array [| v |])

type bound = Unbounded | Incl of Value.t | Excl of Value.t

let to_tree_bound = function
  | Unbounded -> Key_tree.Unbounded
  | Incl v -> Key_tree.Incl (Tuple.of_array [| v |])
  | Excl v -> Key_tree.Excl (Tuple.of_array [| v |])

(* Range scan over a single-column index (or the leading column of a
   composite one — in which case callers must treat results as a superset
   only when the index is single-column; we restrict to single-column). *)
let range t ~lo ~hi =
  if Array.length t.positions <> 1 then
    invalid_arg "Index.range: range probes require a single-column index";
  Key_tree.fold_range t.tree ~lo:(to_tree_bound lo) ~hi:(to_tree_bound hi)
    ~init:[]
    ~f:(fun acc _ rids -> List.rev_append rids acc)
  |> List.sort_uniq Stdlib.compare

let fold_range t ~lo ~hi ~init ~f =
  if Array.length t.positions <> 1 then
    invalid_arg "Index.fold_range: requires a single-column index";
  Key_tree.fold_range t.tree ~lo:(to_tree_bound lo) ~hi:(to_tree_bound hi)
    ~init
    ~f:(fun acc key rids -> f acc (Tuple.get key 0) rids)

(* Full-key iteration for index-only scans: yields each (key, rids)
   binding in key order.  Bounds apply to the leading column.  On a
   single-column index they map directly onto the tree.  On a composite
   index the tree orders keys lexicographically, so a 1-tuple [lo] is a
   sound seek point (every key whose leading value is >= lo sorts at or
   after it) — but neither [Excl lo] nor any [hi] translates exactly to
   a tuple bound, so those are enforced per binding on the leading
   value. *)
let fold_entries t ~lo ~hi ~init ~f =
  if Array.length t.positions = 1 then
    Key_tree.fold_range t.tree ~lo:(to_tree_bound lo) ~hi:(to_tree_bound hi)
      ~init ~f
  else
    let seek =
      match lo with
      | Unbounded -> Key_tree.Unbounded
      | Incl v | Excl v -> Key_tree.Incl (Tuple.of_array [| v |])
    in
    let lo_ok v =
      match lo with
      | Unbounded -> true
      | Incl b -> Value.compare_total v b >= 0
      | Excl b -> Value.compare_total v b > 0
    in
    let hi_ok v =
      match hi with
      | Unbounded -> true
      | Incl b -> Value.compare_total v b <= 0
      | Excl b -> Value.compare_total v b < 0
    in
    Key_tree.fold_range t.tree ~lo:seek ~hi:Key_tree.Unbounded ~init
      ~f:(fun acc key rids ->
        let v = Tuple.get key 0 in
        if lo_ok v && hi_ok v then f acc key rids else acc)

let min_key t = Option.map fst (Key_tree.min_binding t.tree)
let max_key t = Option.map fst (Key_tree.max_binding t.tree)
