(** Cardinality feedback: q-error and SSC confidence recalibration.

    Pure — knows nothing about catalogs or databases.  {!Core.Softdb}
    measures observed selectivities, calls {!recalibrate}, and applies
    the verdict. *)

val q_error : estimated:float -> actual:int -> float
(** Multiplicative estimation error, >= 1.0; both sides floored at one
    row so empty results don't divide by zero. *)

val default_tolerance : float
(** 0.1 — |observed − stored| below this is noise. *)

val default_rate : float
(** 0.5 — exponential-smoothing step toward the observation. *)

type verdict =
  | Keep
  | Adjust of { confidence : float; refresh : bool }
      (** [confidence] is the new catalog confidence; [refresh] asks for
          a RUNSTATS-style re-measure via the maintenance queue (set when
          the divergence exceeds twice the tolerance). *)

val recalibrate :
  ?tolerance:float -> ?rate:float -> stored:float -> observed:float ->
  unit -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
