(* A bounded in-memory log of executed queries: estimated vs. actual
   cardinality, q-error, which rewrite rules fired, and what each twinned
   SSC predicted vs. what the scan actually observed.  Feeds the
   sys.query_log virtual table and the recalibration loop. *)

type twin_observation = {
  sc : string;
  stored : float; (* confidence used during optimization *)
  observed : float; (* measured coverage after execution *)
  adjusted : float option; (* new confidence, when recalibrated *)
}

type entry = {
  seq : int;
  sql : string;
  estimated_rows : float;
  actual_rows : int;
  q_error : float;
  rewrites : string list; (* rule names that fired *)
  twins : twin_observation list;
  fell_back : bool; (* executed the guard-fallback (rewrite-free) plan *)
}

(* Sequence allocation and the entry list are guarded by one mutex: the
   log is shared across the server's worker domains, and two queries
   finishing simultaneously must still get distinct, dense seq numbers. *)
(* @guarded-by obs.query_log *)
type t = {
  capacity : int;
  lock : Mutex.t;
  mutable next_seq : int;
  mutable entries : entry list; (* newest first *)
}

let create ?(capacity = 256) () =
  { capacity; lock = Mutex.create (); next_seq = 1; entries = [] }

let locked t f =
  (* leaf lock, like obs.metrics *)
  (* @acquires obs.query_log while srv.session db.rwlock *)
  Lockdep.acquire "obs.query_log";
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      Lockdep.release "obs.query_log")
    f

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let add ?(fell_back = false) t ~sql ~estimated_rows ~actual_rows ~rewrites
    ~twins =
  locked t (fun () ->
      let entry =
        {
          seq = t.next_seq;
          sql;
          estimated_rows;
          actual_rows;
          q_error =
            Feedback.q_error ~estimated:estimated_rows ~actual:actual_rows;
          rewrites;
          twins;
          fell_back;
        }
      in
      t.next_seq <- t.next_seq + 1;
      t.entries <- take t.capacity (entry :: t.entries);
      entry)

(* oldest-first *)
let entries t = locked t (fun () -> List.rev t.entries)
let length t = locked t (fun () -> List.length t.entries)

let last t =
  locked t (fun () -> match t.entries with [] -> None | e :: _ -> Some e)

let clear t = locked t (fun () -> t.entries <- [])

let mean_q_error t =
  locked t (fun () ->
      match t.entries with
      | [] -> 1.0
      | es ->
          List.fold_left (fun acc e -> acc +. e.q_error) 0.0 es
          /. float_of_int (List.length es))

let worst_q_error t =
  locked t (fun () ->
      List.fold_left (fun acc e -> Float.max acc e.q_error) 1.0 t.entries)

let pp_entry ppf e =
  Fmt.pf ppf "#%d est=%.1f actual=%d q=%.2f%s %s" e.seq e.estimated_rows
    e.actual_rows e.q_error
    (match e.rewrites with
    | [] -> ""
    | rs -> Fmt.str " [%s]" (String.concat "," rs))
    (if e.fell_back then "(fallback) " ^ e.sql else e.sql)
