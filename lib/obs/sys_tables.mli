(** Schemas and row builders for the sys.* virtual tables.

    Registration happens in {!Core.Softdb}, which owns the metrics
    registry, query log, catalog, and plan cache; this module only fixes
    the layouts so producers and tests agree.  The soft-constraint view
    uses [table_name] rather than [table]: TABLE is a keyword. *)

open Rel

val metrics_schema : Schema.t
(** sys.metrics(name, kind, value) *)

val metrics_rows : Metrics.t -> Tuple.t list

val query_log_schema : Schema.t
(** sys.query_log(seq, sql, estimated_rows, actual_rows, q_error,
    rewrites, twins) *)

val query_log_rows : Query_log.t -> Tuple.t list

val soft_constraints_schema : Schema.t
(** sys.soft_constraints(name, table_name, kind, state, confidence,
    current_confidence, violations, statement) *)

val soft_constraint_row :
  name:string -> table_name:string -> kind:string -> state:string ->
  confidence:float option -> current_confidence:float option ->
  violations:int -> statement:string -> Tuple.t

val plan_cache_schema : Schema.t
(** sys.plan_cache(name, sql, valid, dependencies, fast_runs,
    backup_runs, last_used) — [last_used] is the cache's LRU recency
    stamp. *)

val plan_cache_row :
  name:string -> sql:string -> valid:bool -> dependencies:string list ->
  fast_runs:int -> backup_runs:int -> last_used:int -> Tuple.t

val sessions_schema : Schema.t
(** sys.sessions(session_id, name, state, in_txn, queries, writes,
    errors, prepared) — one row per server session, registered by
    {!Srv.Server}. *)

val session_row :
  session_id:int -> name:string -> state:string -> in_txn:bool ->
  queries:int -> writes:int -> errors:int -> prepared:int -> Tuple.t
