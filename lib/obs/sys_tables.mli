(** Schemas and row builders for the sys.* virtual tables.

    Registration happens in {!Core.Softdb}, which owns the metrics
    registry, query log, catalog, and plan cache; this module only fixes
    the layouts so producers and tests agree.  The soft-constraint view
    uses [table_name] rather than [table]: TABLE is a keyword. *)

open Rel

val metrics_schema : Schema.t
(** sys.metrics(name, kind, value) *)

val metrics_rows : Metrics.t -> Tuple.t list

val query_log_schema : Schema.t
(** sys.query_log(seq, sql, estimated_rows, actual_rows, q_error,
    rewrites, twins) *)

val query_log_rows : Query_log.t -> Tuple.t list

val soft_constraints_schema : Schema.t
(** sys.soft_constraints(name, table_name, kind, state, confidence,
    current_confidence, violations, statement) *)

val soft_constraint_row :
  name:string -> table_name:string -> kind:string -> state:string ->
  confidence:float option -> current_confidence:float option ->
  violations:int -> statement:string -> Tuple.t

val plan_cache_schema : Schema.t
(** sys.plan_cache(name, sql, valid, dependencies, fast_runs,
    backup_runs, last_used) — [last_used] is the cache's LRU recency
    stamp. *)

val plan_cache_row :
  name:string -> sql:string -> valid:bool -> dependencies:string list ->
  fast_runs:int -> backup_runs:int -> last_used:int -> Tuple.t

val partitions_schema : Schema.t
(** sys.partitions(table_name, part_index, spec, part_bounds, rows,
    sc_name, sc_state, rows_scanned, pages_read, fallbacks) — one row
    per partition segment of every partitioned table.  [part_index] and
    [part_bounds] dodge the PARTITION/BOUNDS keywords.
    [sc_name]/[sc_state] are NULL until a domain SC has been mined for
    the segment; [rows_scanned]/[pages_read]/[fallbacks] read the
    cumulative per-partition counters out of {!Metrics}. *)

val partition_row :
  table_name:string -> partition:int -> spec:string -> bounds:string ->
  rows:int -> sc_name:string option -> sc_state:string option ->
  rows_scanned:int -> pages_read:int -> fallbacks:int -> Tuple.t

val indexes_schema : Schema.t
(** sys.indexes(name, table_name, columns, is_unique, state, entries,
    distinct_keys) — one row per secondary index with its lifecycle
    state (write-only / backfilling / readable / demoted).  [is_unique]
    dodges the UNIQUE keyword. *)

val index_row :
  name:string -> table_name:string -> columns:string list ->
  is_unique:bool -> state:string -> entries:int -> distinct_keys:int ->
  Tuple.t

val index_advisor_schema : Schema.t
(** sys.index_advisor(rank, table_name, columns, covering, score,
    queries, reason, statement) — ranked index candidates mined from
    sys.query_log and the SC catalog by {!Idx.Advisor}; [statement] is
    the ready-to-run CREATE INDEX ... ONLINE text. *)

val index_advisor_row :
  rank:int -> table_name:string -> columns:string list -> covering:bool ->
  score:float -> queries:int -> reason:string -> statement:string -> Tuple.t

val recovery_schema : Schema.t
(** sys.recovery(mode, torn_tail, scanned_lines, applied_records,
    committed_txns, dropped_txns, corrupt_lines, quarantined_bytes,
    salvage_path) — one row describing the last WAL recovery of this
    database: Strict/Salvage mode, whether a torn tail was truncated
    and how many bytes were quarantined (to [salvage_path]), and which
    committed transactions interior corruption forced Salvage mode to
    drop ([dropped_txns] is a comma-joined id list). *)

val recovery_row :
  mode:string -> torn_tail:bool -> scanned_lines:int ->
  applied_records:int -> committed_txns:int -> dropped_txns:int list ->
  corrupt_lines:int -> quarantined_bytes:int -> salvage_path:string option ->
  Tuple.t

val lockdep_schema : Schema.t
(** sys.lockdep(held_lock, acquired_lock, times_seen) — the runtime
    witness's observed acquisition-order edges; empty unless
    {!Lockdep.enable}d. *)

val lockdep_rows : unit -> Tuple.t list

val sessions_schema : Schema.t
(** sys.sessions(session_id, name, state, in_txn, queries, writes,
    errors, prepared) — one row per server session, registered by
    {!Srv.Server}. *)

val session_row :
  session_id:int -> name:string -> state:string -> in_txn:bool ->
  queries:int -> writes:int -> errors:int -> prepared:int -> Tuple.t
