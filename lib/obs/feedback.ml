(* Cardinality feedback: q-error and SSC confidence recalibration.

   The paper maintains SSC confidence with the pessimistic currency bound
   c − u/N alone.  Executed queries give us something better: the
   *observed* selectivity of a twinned predicate.  When observation and
   stored confidence diverge beyond [tolerance], the catalog confidence
   is pulled toward the observation by [rate] (exponential smoothing), and
   a divergence beyond twice the tolerance additionally flags the SC for a
   RUNSTATS-style refresh through the maintenance repair queue.

   This module is deliberately pure — it knows nothing about catalogs or
   databases.  {!Core.Softdb} measures, calls [recalibrate], and applies
   the verdict, which keeps lib/obs at the bottom of the dependency DAG. *)

(* q-error: multiplicative estimation error, >= 1.0; both sides floored at
   one row so empty results don't divide by zero. *)
let q_error ~estimated ~actual =
  let e = Float.max 1.0 estimated
  and a = Float.max 1.0 (float_of_int actual) in
  Float.max (e /. a) (a /. e)

let default_tolerance = 0.1
let default_rate = 0.5

type verdict =
  | Keep
  | Adjust of { confidence : float; refresh : bool }

let recalibrate ?(tolerance = default_tolerance) ?(rate = default_rate)
    ~stored ~observed () =
  let diff = Float.abs (observed -. stored) in
  if diff <= tolerance then Keep
  else
    let confidence =
      Float.min 1.0 (Float.max 0.0 (stored +. (rate *. (observed -. stored))))
    in
    Adjust { confidence; refresh = diff > 2.0 *. tolerance }

let pp_verdict ppf = function
  | Keep -> Fmt.string ppf "keep"
  | Adjust { confidence; refresh } ->
      Fmt.pf ppf "adjust to %.4f%s" confidence
        (if refresh then " (refresh queued)" else "")
