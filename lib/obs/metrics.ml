(* A small in-process metrics registry.

   Three deterministic instrument kinds — counters, gauges, and sample
   series (from which equi-depth histograms and summaries are derived via
   {!Stats.Histogram}) — plus wall-clock timings, which are kept in a
   *separate* store so that everything reachable from [snapshot] is
   reproducible run-to-run: no timestamp ever leaks into a counter, a
   gauge, a sample, or a sys.metrics row.  Timings are informational
   only and surface through [pp_timings] / [timings].

   Every mutation and every read goes through one mutex, because the
   registry is shared by the server's worker domains (lib/srv): a read
   query finishing on one domain and a write statement on another both
   feed the same counters.  The lock is per-registry and held only for
   the table operation itself, so contention stays negligible next to
   query execution.

   Metric names are dotted paths ("exec.rows.scanned",
   "feedback.recalibrations"); the registry imposes no schema on them. *)

(* @guarded-by obs.metrics *)
type timing = { mutable calls : int; mutable elapsed_s : float }

(* @guarded-by obs.metrics *)
type t = {
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t; (* newest first *)
  times : (string, timing) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    samples = Hashtbl.create 16;
    times = Hashtbl.create 16;
  }

let locked t f =
  (* leaf lock: callers tick metrics from under most other subsystems'
     locks, so nothing may be acquired while this is held *)
  (* @acquires obs.metrics while srv.session db.rwlock srv.server.registry core.plan_cache core.recalibration *)
  Lockdep.acquire "obs.metrics";
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      Lockdep.release "obs.metrics")
    f

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.gauges;
      Hashtbl.reset t.samples;
      Hashtbl.reset t.times)

(* ---- counters ---------------------------------------------------------- *)

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.counters name (ref by))

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

(* ---- gauges ------------------------------------------------------------ *)

let set_gauge t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace t.gauges name (ref v))

let add_gauge t name by =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := !r +. by
      | None -> Hashtbl.replace t.gauges name (ref by))

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> Some !r
      | None -> None)

(* ---- sample series ----------------------------------------------------- *)

let observe t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.samples name with
      | Some r -> r := v :: !r
      | None -> Hashtbl.replace t.samples name (ref [ v ]))

(* oldest-first *)
let samples_unlocked t name =
  match Hashtbl.find_opt t.samples name with
  | Some r -> List.rev !r
  | None -> []

let samples t name = locked t (fun () -> samples_unlocked t name)

(* Equi-depth histogram over a sample series, reusing the engine's own
   statistics machinery. *)
let histogram ?buckets t name =
  Stats.Histogram.build ?buckets
    (List.map (fun v -> Rel.Value.Float v) (samples t name))

type summary = {
  count : int;
  sum : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
}

let summary_unlocked t name =
  match samples_unlocked t name with
  | [] -> None
  | vs ->
      let arr = Array.of_list vs in
      Array.sort compare arr;
      let n = Array.length arr in
      let sum = Array.fold_left ( +. ) 0.0 arr in
      let quantile q =
        arr.(min (n - 1) (int_of_float (q *. float_of_int n)))
      in
      Some
        {
          count = n;
          sum;
          mean = sum /. float_of_int n;
          min_v = arr.(0);
          max_v = arr.(n - 1);
          p50 = quantile 0.5;
          p95 = quantile 0.95;
        }

let summary t name = locked t (fun () -> summary_unlocked t name)

let percentile t name q =
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Metrics.percentile: q outside [0, 1]";
  locked t (fun () ->
      match samples_unlocked t name with
      | [] -> None
      | vs ->
          let arr = Array.of_list vs in
          Array.sort compare arr;
          let n = Array.length arr in
          Some arr.(min (n - 1) (int_of_float (q *. float_of_int n))))

(* ---- timings (wall clock; never part of the snapshot) ------------------- *)

let record_time t name elapsed_s =
  locked t (fun () ->
      match Hashtbl.find_opt t.times name with
      | Some tm ->
          tm.calls <- tm.calls + 1;
          tm.elapsed_s <- tm.elapsed_s +. elapsed_s
      | None -> Hashtbl.replace t.times name { calls = 1; elapsed_s })

let time t name f =
  let t0 = Sys.time () in
  Fun.protect ~finally:(fun () -> record_time t name (Sys.time () -. t0)) f

let timings t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name tm acc -> (name, tm.calls, tm.elapsed_s) :: acc)
        t.times [])
  |> List.sort compare

(* ---- snapshot ----------------------------------------------------------- *)

(* Deterministic view of every non-timing instrument: (name, kind, value),
   sorted by name.  Sample series are expanded into .count/.mean/.min/.max
   scalar rows so the snapshot stays flat and SQL-friendly. *)
let snapshot t : (string * string * float) list =
  locked t (fun () ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name r -> rows := (name, "counter", float_of_int !r) :: !rows)
        t.counters;
      Hashtbl.iter
        (fun name r -> rows := (name, "gauge", !r) :: !rows)
        t.gauges;
      Hashtbl.iter
        (fun name _ ->
          match summary_unlocked t name with
          | None -> ()
          | Some s ->
              rows :=
                (name ^ ".count", "sample", float_of_int s.count)
                :: (name ^ ".mean", "sample", s.mean)
                :: (name ^ ".min", "sample", s.min_v)
                :: (name ^ ".max", "sample", s.max_v)
                :: !rows)
        t.samples;
      List.sort compare !rows)

let pp_timings ppf t =
  List.iter
    (fun (name, calls, elapsed) ->
      Fmt.pf ppf "@.  %-32s calls=%-6d total=%.6fs" name calls elapsed)
    (timings t)

let pp ppf t =
  Fmt.pf ppf "metrics:";
  List.iter
    (fun (name, kind, v) -> Fmt.pf ppf "@.  %-32s %-8s %g" name kind v)
    (snapshot t);
  if timings t <> [] then begin
    Fmt.pf ppf "@.timings (wall clock):";
    pp_timings ppf t
  end
