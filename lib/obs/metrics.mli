(** A small in-process metrics registry.

    Counters, gauges, and sample series are deterministic and feed
    {!snapshot} (and the sys.metrics virtual table); wall-clock timings
    live in a separate store that never reaches the snapshot, so every
    test-visible value is reproducible run-to-run.  Metric names are
    dotted paths ("exec.rows.scanned"); no schema is imposed.

    Every operation is thread-safe: the registry is shared by the
    server's worker domains ({!Srv}), so mutation and snapshotting are
    serialized behind a per-registry mutex. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Counters} *)

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** 0 when never incremented. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit

val add_gauge : t -> string -> float -> unit
(** Atomic increment (negative to decrement) — a level instrument like a
    queue depth, adjusted concurrently from many workers. *)

val gauge : t -> string -> float option

(** {1 Sample series} *)

val observe : t -> string -> float -> unit

val samples : t -> string -> float list
(** Oldest first. *)

val histogram : ?buckets:int -> t -> string -> Stats.Histogram.t
(** Equi-depth histogram over a sample series, via the engine's own
    statistics machinery. *)

type summary = {
  count : int;
  sum : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
}

val summary : t -> string -> summary option
(** [None] when no samples were observed. *)

val percentile : t -> string -> float -> float option
(** [percentile t name q] with [q] in [0, 1]: the nearest-rank quantile
    of a sample series (the estimator {!summary}'s p50/p95 use), at any
    rank — loadgen reports p99 through this.  [None] when no samples
    were observed; raises [Invalid_argument] on [q] outside [0, 1]. *)

(** {1 Timings (wall clock; never part of the snapshot)} *)

val record_time : t -> string -> float -> unit
val time : t -> string -> (unit -> 'a) -> 'a

val timings : t -> (string * int * float) list
(** (name, calls, total elapsed seconds), sorted by name. *)

(** {1 Snapshot} *)

val snapshot : t -> (string * string * float) list
(** Deterministic view of every non-timing instrument: (name, kind,
    value) sorted by name.  Sample series expand into .count/.mean/.min/
    .max scalar rows so the snapshot stays flat and SQL-friendly. *)

val pp_timings : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
