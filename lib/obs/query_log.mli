(** A bounded in-memory log of executed queries: estimated vs. actual
    cardinality, q-error, which rewrite rules fired, and what each
    twinned SSC predicted vs. what execution observed.  Feeds the
    sys.query_log virtual table and the recalibration loop.

    Thread-safe: appends and reads are serialized behind a per-log
    mutex, so the server's worker domains can share one log while seq
    numbers stay distinct and dense. *)

type twin_observation = {
  sc : string;
  stored : float;  (** confidence used during optimization *)
  observed : float;  (** measured coverage after execution *)
  adjusted : float option;  (** new confidence, when recalibrated *)
}

type entry = {
  seq : int;
  sql : string;
  estimated_rows : float;
  actual_rows : int;
  q_error : float;
  rewrites : string list;  (** rule names that fired *)
  twins : twin_observation list;
  fell_back : bool;
      (** the SC-guard check failed at execution and the rewrite-free
          backup plan ran instead *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256; the oldest entries fall off. *)

val add :
  ?fell_back:bool -> t -> sql:string -> estimated_rows:float ->
  actual_rows:int -> rewrites:string list ->
  twins:twin_observation list -> entry
(** [fell_back] defaults to [false]. *)

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int
val last : t -> entry option
val clear : t -> unit
val mean_q_error : t -> float
val worst_q_error : t -> float
val pp_entry : Format.formatter -> entry -> unit
