(* Runtime lock-order witness (lockdep).

   The static lints (Check.Lock_lint / Check.Guard_lint) reason about
   the locking discipline the annotations *declare*.  This module
   observes the discipline the server actually *exhibits*: when enabled,
   every instrumented lock acquisition records, per thread, which locks
   were already held, growing an acquisition-order edge graph
   (held -> acquired) with occurrence counts.  Check.Lockdep_lint then
   cross-validates the observed graph against the declared rank table —
   every edge must go strictly uphill in rank, and every declared rank
   must have been exercised by the run (or carry [lockdep-waive]).

   Two violation classes are also caught live, without any rank table:
   - re-acquiring a lock the same thread already holds, unless the
     acquisition is marked reentrant;
   - an acquisition that closes a cycle in the edge graph — the
     canonical AB/BA deadlock shape, caught even when the interleaving
     that would actually deadlock never happens.

   Off by default; [enable] (or SOFTDB_LOCKDEP=1 in the environment)
   turns it on.  The disabled path is one Atomic.get per call site, so
   instrumentation stays resident in production builds.  State is
   process-global because the locks it tracks span subsystems that
   share no registry.

   Threads are keyed by [Thread.id]: the server mixes domains and
   threads, and distinct threads multiplexed onto one domain must not
   have their held-stacks conflated.  Release is tolerant (removing a
   name that is not on the stack is a no-op) and [pulse] records an
   acquisition without a residual hold — together these accommodate the
   one deliberately unbalanced site, the session write lock taken at
   BEGIN on one worker and released at COMMIT on another.

   Determinism contract: for a fixed request mix the *edge set*, the
   *acquired-lock set*, and the *max held depth* are structural — fixed
   by which code paths run, not by interleavings — so they are safe to
   gate in BENCH.json.  Per-edge counts are deterministic for a fixed
   workload but are excluded from the dump header to keep the headline
   numbers robust. *)

(* ---- enablement ---------------------------------------------------------- *)

(* @guarded-by none: a lone atomic read/write flag *)
let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

let () =
  match Sys.getenv_opt "SOFTDB_LOCKDEP" with
  | Some ("1" | "true" | "on") -> enable ()
  | _ -> ()

(* ---- witness state -------------------------------------------------------- *)

(* The witness's own mutex ranks above every tracked lock (it is taken
   while any of them is held) and is itself untracked — tracking it
   would recurse. *)
let state = Mutex.create ()

(* @guarded-by obs.lockdep *)
let held : (int, string list) Hashtbl.t = Hashtbl.create 64

(* @guarded-by obs.lockdep *)
let edges : (string * string, int ref) Hashtbl.t = Hashtbl.create 64

(* @guarded-by obs.lockdep *)
let succs : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64

(* @guarded-by obs.lockdep *)
let seen : (string, int ref) Hashtbl.t = Hashtbl.create 64

(* @guarded-by obs.lockdep *)
let violation_set : (string, unit) Hashtbl.t = Hashtbl.create 8

(* @guarded-by obs.lockdep *)
let max_depth = ref 0

let locked f =
  (* @acquires obs.lockdep while srv.transport.chan srv.transport.write srv.breaker srv.session db.rwlock idx.lifecycle srv.scheduler.queue srv.scatter.batch srv.rwlock.state srv.server.registry core.plan_cache core.recalibration obs.metrics obs.query_log *)
  Mutex.lock state;
  Fun.protect ~finally:(fun () -> Mutex.unlock state) f

let reset () =
  locked (fun () ->
      Hashtbl.reset held;
      Hashtbl.reset edges;
      Hashtbl.reset succs;
      Hashtbl.reset seen;
      Hashtbl.reset violation_set;
      max_depth := 0)

let add_violation msg = Hashtbl.replace violation_set msg ()

(* ---- edge graph ----------------------------------------------------------- *)

let successors name =
  match Hashtbl.find_opt succs name with
  | Some s -> List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) s [])
  | None -> []

(* Path from [src] to [dst] in the edge graph, successors visited in
   sorted order so reported cycles are deterministic. *)
let find_path src dst =
  let visited = Hashtbl.create 16 in
  let rec go node path =
    if node = dst then Some (List.rev (node :: path))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.replace visited node ();
      List.fold_left
        (fun acc nxt ->
          match acc with Some _ -> acc | None -> go nxt (node :: path))
        None (successors node)
    end
  in
  go src []

let record_edge from_lock to_lock =
  match Hashtbl.find_opt edges (from_lock, to_lock) with
  | Some r -> incr r
  | None ->
      Hashtbl.replace edges (from_lock, to_lock) (ref 1);
      let s =
        match Hashtbl.find_opt succs from_lock with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 4 in
            Hashtbl.replace succs from_lock s;
            s
      in
      Hashtbl.replace s to_lock ();
      (* a fresh edge may close a cycle: can [to_lock] reach back? *)
      if from_lock <> to_lock then
        match find_path to_lock from_lock with
        | Some path ->
            add_violation
              (Printf.sprintf "lock-order cycle: %s"
                 (String.concat " -> " (from_lock :: path)))
        | None -> ()

let mark_seen name =
  match Hashtbl.find_opt seen name with
  | Some r -> incr r
  | None -> Hashtbl.replace seen name (ref 1)

let record_acquisition stack name =
  mark_seen name;
  List.iter
    (fun h -> if h <> name then record_edge h name)
    (List.sort_uniq compare stack)

(* ---- the tracked operations ----------------------------------------------- *)

let thread_stack tid = Option.value ~default:[] (Hashtbl.find_opt held tid)

let acquire ?(reentrant = false) name =
  if enabled () then
    locked (fun () ->
        let tid = Thread.id (Thread.self ()) in
        let stack = thread_stack tid in
        if List.mem name stack && not reentrant then
          add_violation
            (Printf.sprintf "re-acquired non-reentrant lock %s" name);
        record_acquisition stack name;
        let stack = name :: stack in
        Hashtbl.replace held tid stack;
        let depth = List.length (List.sort_uniq compare stack) in
        if depth > !max_depth then max_depth := depth)

let release name =
  if enabled () then
    locked (fun () ->
        let tid = Thread.id (Thread.self ()) in
        let rec drop = function
          | [] -> [] (* tolerant: releasing an untracked hold is a no-op *)
          | h :: tl -> if h = name then tl else h :: drop tl
        in
        match drop (thread_stack tid) with
        | [] -> Hashtbl.remove held tid
        | stack -> Hashtbl.replace held tid stack)

(* An acquisition with no residual hold: records edges and coverage but
   leaves the per-thread stack untouched.  For the session write lock,
   which BEGIN acquires on one worker thread and COMMIT releases on
   another — a per-thread stack cannot carry that hold soundly. *)
let pulse name =
  if enabled () then
    locked (fun () ->
        let tid = Thread.id (Thread.self ()) in
        record_acquisition (thread_stack tid) name)

(* ---- views ---------------------------------------------------------------- *)

let edge_list () =
  locked (fun () ->
      Hashtbl.fold (fun (a, b) r acc -> (a, b, !r) :: acc) edges []
      |> List.sort compare)

let lock_list () =
  locked (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) seen []
      |> List.sort compare)

let violations () =
  locked (fun () ->
      Hashtbl.fold (fun v () acc -> v :: acc) violation_set []
      |> List.sort compare)

let edges_observed () = locked (fun () -> Hashtbl.length edges)
let max_held_depth () = locked (fun () -> !max_depth)

(* ---- dump / parse ---------------------------------------------------------- *)

(* Line-oriented, fully sorted, no timestamps or counts in the header:

     lockdep edges=<n> max_held_depth=<d> violations=<v>
     lock <name>
     edge <from> <to> <count>
     violation <message ...>
*)

let dump () =
  let b = Buffer.create 512 in
  let edges = edge_list () in
  let viols = violations () in
  Printf.bprintf b "lockdep edges=%d max_held_depth=%d violations=%d\n"
    (List.length edges)
    (max_held_depth ())
    (List.length viols);
  List.iter (fun name -> Printf.bprintf b "lock %s\n" name) (lock_list ());
  List.iter
    (fun (a, b', c) -> Printf.bprintf b "edge %s %s %d\n" a b' c)
    edges;
  List.iter (fun v -> Printf.bprintf b "violation %s\n" v) viols;
  Buffer.contents b

type graph = {
  g_locks : string list;  (* every lock the run acquired, sorted *)
  g_edges : (string * string * int) list;  (* held -> acquired, sorted *)
  g_max_depth : int;
  g_violations : string list;
}

let parse text =
  let locks = ref [] and edges = ref [] and viols = ref [] in
  let max_depth = ref 0 in
  let ok = ref false in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | "lockdep" :: fields ->
             ok := true;
             List.iter
               (fun f ->
                 match String.split_on_char '=' f with
                 | [ "max_held_depth"; v ] -> (
                     match int_of_string_opt v with
                     | Some d -> max_depth := d
                     | None -> ())
                 | _ -> ())
               fields
         | [ "lock"; name ] -> locks := name :: !locks
         | [ "edge"; a; b; c ] -> (
             match int_of_string_opt c with
             | Some c -> edges := (a, b, c) :: !edges
             | None -> ())
         | "violation" :: rest when rest <> [] ->
             viols := String.concat " " rest :: !viols
         | _ -> ())
  |> ignore;
  if not !ok then None
  else
    Some
      {
        g_locks = List.sort compare !locks;
        g_edges = List.sort compare !edges;
        g_max_depth = !max_depth;
        g_violations = List.sort compare !viols;
      }
