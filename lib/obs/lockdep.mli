(** Runtime lock-order witness: when enabled, instrumented lock sites
    record per-thread held stacks and grow an observed acquisition-order
    edge graph ((held -> acquired) with counts), catching non-reentrant
    re-acquisition and edge-graph cycles live.  {!Check.Lockdep_lint}
    cross-validates the dumped graph against the static [@lock-order]
    rank table.  Off by default; the disabled fast path is a single
    atomic read per call. *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** Also turned on at startup by [SOFTDB_LOCKDEP=1] (or [true]/[on]). *)

val reset : unit -> unit
(** Clear all witness state (stacks, edges, coverage, violations);
    leaves the enabled flag alone. *)

val acquire : ?reentrant:bool -> string -> unit
(** Record this thread acquiring the named lock: edges from every
    distinct held lock, coverage, depth, and a violation if the thread
    already holds the name and [reentrant] is false (default). *)

val release : string -> unit
(** Pop the name from this thread's stack (first occurrence); tolerant —
    a no-op if the thread does not hold it. *)

val pulse : string -> unit
(** Record an acquisition (edges + coverage) with no residual hold —
    for locks whose release happens on a different thread, e.g. the
    session write lock spanning BEGIN .. COMMIT across workers. *)

val edge_list : unit -> (string * string * int) list
(** Observed [(held, acquired, count)] edges, sorted. *)

val lock_list : unit -> string list
(** Every lock name the run acquired (via {!acquire} or {!pulse}),
    sorted — the coverage side of stale-rank detection. *)

val violations : unit -> string list
(** Live violations (re-acquisition, cycles), sorted and deduplicated. *)

val edges_observed : unit -> int
val max_held_depth : unit -> int
(** Deepest number of distinct locks any one thread held at once. *)

val dump : unit -> string
(** Deterministic line-oriented edge-graph dump (header, [lock] lines,
    [edge] lines, [violation] lines, all sorted). *)

type graph = {
  g_locks : string list;
  g_edges : (string * string * int) list;
  g_max_depth : int;
  g_violations : string list;
}

val parse : string -> graph option
(** Parse a {!dump}; [None] if the header line is missing. *)
