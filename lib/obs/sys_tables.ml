(* Schemas and row builders for the sys.* virtual tables.

   The actual registration happens in {!Core.Softdb} (which owns the
   metrics registry, query log, catalog, and plan cache); this module only
   fixes the layouts so every producer and every test agree on them.
   Column named [table_name] rather than [table]: TABLE is a keyword. *)

open Rel

let str s = Value.String s
let int i = Value.Int i
let flt f = Value.Float f
let opt_flt = function Some f -> Value.Float f | None -> Value.Null
let boolean b = Value.Bool b

(* ---- sys.metrics -------------------------------------------------------- *)

let metrics_schema =
  Schema.make "sys.metrics"
    [
      Schema.column ~nullable:false "name" Value.TString;
      Schema.column ~nullable:false "kind" Value.TString;
      Schema.column ~nullable:false "value" Value.TFloat;
    ]

let metrics_rows (m : Metrics.t) =
  List.map
    (fun (name, kind, v) -> Tuple.make [ str name; str kind; flt v ])
    (Metrics.snapshot m)

(* ---- sys.query_log ------------------------------------------------------- *)

let query_log_schema =
  Schema.make "sys.query_log"
    [
      Schema.column ~nullable:false "seq" Value.TInt;
      Schema.column ~nullable:false "sql" Value.TString;
      Schema.column ~nullable:false "estimated_rows" Value.TFloat;
      Schema.column ~nullable:false "actual_rows" Value.TInt;
      Schema.column ~nullable:false "q_error" Value.TFloat;
      Schema.column ~nullable:false "rewrites" Value.TString;
      Schema.column ~nullable:false "twins" Value.TString;
      Schema.column ~nullable:false "fell_back" Value.TBool;
    ]

let query_log_rows (l : Query_log.t) =
  List.map
    (fun (e : Query_log.entry) ->
      Tuple.make
        [
          int e.Query_log.seq;
          str e.Query_log.sql;
          flt e.Query_log.estimated_rows;
          int e.Query_log.actual_rows;
          flt e.Query_log.q_error;
          str (String.concat "," e.Query_log.rewrites);
          str
            (String.concat ","
               (List.map
                  (fun (t : Query_log.twin_observation) -> t.Query_log.sc)
                  e.Query_log.twins));
          boolean e.Query_log.fell_back;
        ])
    (Query_log.entries l)

(* ---- sys.soft_constraints ------------------------------------------------ *)

let soft_constraints_schema =
  Schema.make "sys.soft_constraints"
    [
      Schema.column ~nullable:false "name" Value.TString;
      Schema.column ~nullable:false "table_name" Value.TString;
      Schema.column ~nullable:false "kind" Value.TString;
      Schema.column ~nullable:false "state" Value.TString;
      Schema.column "confidence" Value.TFloat;
      Schema.column "current_confidence" Value.TFloat;
      Schema.column ~nullable:false "violations" Value.TInt;
      Schema.column ~nullable:false "statement" Value.TString;
    ]

let soft_constraint_row ~name ~table_name ~kind ~state ~confidence
    ~current_confidence ~violations ~statement =
  Tuple.make
    [
      str name;
      str table_name;
      str kind;
      str state;
      opt_flt confidence;
      opt_flt current_confidence;
      int violations;
      str statement;
    ]

(* ---- sys.plan_cache ------------------------------------------------------ *)

let plan_cache_schema =
  Schema.make "sys.plan_cache"
    [
      Schema.column ~nullable:false "name" Value.TString;
      Schema.column ~nullable:false "sql" Value.TString;
      Schema.column ~nullable:false "valid" Value.TBool;
      Schema.column ~nullable:false "dependencies" Value.TString;
      Schema.column ~nullable:false "fast_runs" Value.TInt;
      Schema.column ~nullable:false "backup_runs" Value.TInt;
      Schema.column ~nullable:false "last_used" Value.TInt;
    ]

let plan_cache_row ~name ~sql ~valid ~dependencies ~fast_runs ~backup_runs
    ~last_used =
  Tuple.make
    [
      str name;
      str sql;
      boolean valid;
      str (String.concat "," dependencies);
      int fast_runs;
      int backup_runs;
      int last_used;
    ]

(* ---- sys.partitions ------------------------------------------------------ *)

let partitions_schema =
  Schema.make "sys.partitions"
    [
      Schema.column ~nullable:false "table_name" Value.TString;
      (* [part_index], not [partition]: PARTITION is a keyword *)
      Schema.column ~nullable:false "part_index" Value.TInt;
      Schema.column ~nullable:false "spec" Value.TString;
      (* [part_bounds]: BOUNDS is a keyword, like PARTITION above *)
      Schema.column ~nullable:false "part_bounds" Value.TString;
      Schema.column ~nullable:false "rows" Value.TInt;
      Schema.column "sc_name" Value.TString;
      Schema.column "sc_state" Value.TString;
      Schema.column ~nullable:false "rows_scanned" Value.TInt;
      Schema.column ~nullable:false "pages_read" Value.TInt;
      Schema.column ~nullable:false "fallbacks" Value.TInt;
    ]

let opt_str = function Some s -> Value.String s | None -> Value.Null

let partition_row ~table_name ~partition ~spec ~bounds ~rows ~sc_name
    ~sc_state ~rows_scanned ~pages_read ~fallbacks =
  Tuple.make
    [
      str table_name;
      int partition;
      str spec;
      str bounds;
      int rows;
      opt_str sc_name;
      opt_str sc_state;
      int rows_scanned;
      int pages_read;
      int fallbacks;
    ]

(* ---- sys.indexes --------------------------------------------------------- *)

let indexes_schema =
  Schema.make "sys.indexes"
    [
      Schema.column ~nullable:false "name" Value.TString;
      Schema.column ~nullable:false "table_name" Value.TString;
      Schema.column ~nullable:false "columns" Value.TString;
      (* [is_unique], not [unique]: UNIQUE is a keyword *)
      Schema.column ~nullable:false "is_unique" Value.TBool;
      Schema.column ~nullable:false "state" Value.TString;
      Schema.column ~nullable:false "entries" Value.TInt;
      Schema.column ~nullable:false "distinct_keys" Value.TInt;
    ]

let index_row ~name ~table_name ~columns ~is_unique ~state ~entries
    ~distinct_keys =
  Tuple.make
    [
      str name;
      str table_name;
      str (String.concat "," columns);
      boolean is_unique;
      str state;
      int entries;
      int distinct_keys;
    ]

(* ---- sys.index_advisor --------------------------------------------------- *)

let index_advisor_schema =
  Schema.make "sys.index_advisor"
    [
      Schema.column ~nullable:false "rank" Value.TInt;
      Schema.column ~nullable:false "table_name" Value.TString;
      Schema.column ~nullable:false "columns" Value.TString;
      Schema.column ~nullable:false "covering" Value.TBool;
      Schema.column ~nullable:false "score" Value.TFloat;
      Schema.column ~nullable:false "queries" Value.TInt;
      Schema.column ~nullable:false "reason" Value.TString;
      Schema.column ~nullable:false "statement" Value.TString;
    ]

let index_advisor_row ~rank ~table_name ~columns ~covering ~score ~queries
    ~reason ~statement =
  Tuple.make
    [
      int rank;
      str table_name;
      str (String.concat "," columns);
      boolean covering;
      flt score;
      int queries;
      str reason;
      str statement;
    ]

(* ---- sys.recovery -------------------------------------------------------- *)

let recovery_schema =
  Schema.make "sys.recovery"
    [
      Schema.column ~nullable:false "mode" Value.TString;
      Schema.column ~nullable:false "torn_tail" Value.TBool;
      Schema.column ~nullable:false "scanned_lines" Value.TInt;
      Schema.column ~nullable:false "applied_records" Value.TInt;
      Schema.column ~nullable:false "committed_txns" Value.TInt;
      Schema.column ~nullable:false "dropped_txns" Value.TString;
      Schema.column ~nullable:false "corrupt_lines" Value.TInt;
      Schema.column ~nullable:false "quarantined_bytes" Value.TInt;
      Schema.column "salvage_path" Value.TString;
    ]

let recovery_row ~mode ~torn_tail ~scanned_lines ~applied_records
    ~committed_txns ~dropped_txns ~corrupt_lines ~quarantined_bytes
    ~salvage_path =
  Tuple.make
    [
      str mode;
      boolean torn_tail;
      int scanned_lines;
      int applied_records;
      int committed_txns;
      str (String.concat "," (List.map string_of_int dropped_txns));
      int corrupt_lines;
      int quarantined_bytes;
      opt_str salvage_path;
    ]

(* ---- sys.lockdep --------------------------------------------------------- *)

(* The runtime witness's observed acquisition-order edges: one row per
   (held -> acquired) pair.  Empty unless lockdep is enabled. *)
let lockdep_schema =
  Schema.make "sys.lockdep"
    [
      Schema.column ~nullable:false "held_lock" Value.TString;
      Schema.column ~nullable:false "acquired_lock" Value.TString;
      (* [times_seen], not [count]: COUNT is a keyword *)
      Schema.column ~nullable:false "times_seen" Value.TInt;
    ]

let lockdep_rows () =
  List.map
    (fun (held, acquired, count) ->
      Tuple.make [ str held; str acquired; int count ])
    (Lockdep.edge_list ())

(* ---- sys.sessions -------------------------------------------------------- *)

let sessions_schema =
  Schema.make "sys.sessions"
    [
      Schema.column ~nullable:false "session_id" Value.TInt;
      Schema.column ~nullable:false "name" Value.TString;
      Schema.column ~nullable:false "state" Value.TString;
      Schema.column ~nullable:false "in_txn" Value.TBool;
      Schema.column ~nullable:false "queries" Value.TInt;
      Schema.column ~nullable:false "writes" Value.TInt;
      Schema.column ~nullable:false "errors" Value.TInt;
      Schema.column ~nullable:false "prepared" Value.TInt;
    ]

let session_row ~session_id ~name ~state ~in_txn ~queries ~writes ~errors
    ~prepared =
  Tuple.make
    [
      int session_id;
      str name;
      str state;
      boolean in_txn;
      int queries;
      int writes;
      int errors;
      int prepared;
    ]
