(** Deterministic fault injection.

    Resilience code paths (WAL writes, transaction commit, maintenance
    reactions, checkpointing) call {!point} at named sites — e.g.
    [Fault.point "wal.pre_commit"] — which is a no-op until a test {e arms}
    the point with a failure mode:

    - [Crash] simulates process death: {!Injected_crash} is raised and,
      until {!reset}, the {!crash_pending} flag stays up, which the
      durability link ({!Core.Recovery}) uses to freeze the log exactly
      at the crash instant (a dead process appends nothing, so neither
      may the unwinding exception handlers);
    - [Io_error] raises {!Injected_io_error} once, simulating a failed
      write without stopping the world;
    - [Latency s] busy-waits [s] seconds on every pass, for timeout
      testing.

    Points self-register on first execution and can also be declared up
    front, so the crash-matrix test can iterate {!registered} without
    hard-coding the list.  The harness is global (like the faults it
    simulates); {!reset} restores a clean slate between test cases. *)

type mode = Crash | Io_error | Latency of float

exception Injected_crash of string
(** Carries the point name.  Treat as process death: the WAL link stops
    logging the moment it is raised. *)

exception Injected_io_error of string

val declare : string -> unit
(** Register a point name without executing it (idempotent). *)

val registered : unit -> string list
(** Every declared or executed point name, sorted. *)

val arm : ?after:int -> string -> mode -> unit
(** Arm [point] with a failure mode, implicitly declaring it.  [after]
    skips that many passes first (default 0: fire on the next pass).
    [Crash] and [Io_error] disarm themselves after firing once;
    [Latency] persists until {!disarm}. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm everything, clear hit counters and the {!crash_pending} flag.
    Declared names survive. *)

val point : string -> unit
(** The instrumentation site: count a hit and fire the armed mode, if
    any.  Also installed as {!Rel.Wal}'s fault hook by {!install}. *)

val hits : string -> int
(** Times [point] ran for this name since the last {!reset}. *)

val crash_pending : unit -> bool
(** True from the moment a [Crash] fires until {!reset} — the simulated
    process is dead and must not produce further durable writes. *)

val install : unit -> unit
(** Wire {!point} into {!Rel.Wal.set_fault_hook} and declare the WAL's
    points (idempotent; called by {!arm} and by {!Core.Recovery.attach}). *)
