(** Deterministic fault injection.

    Resilience code paths (WAL writes, transaction commit, maintenance
    reactions, checkpointing) call {!point} at named sites — e.g.
    [Fault.point "wal.pre_commit"] — which is a no-op until a test {e arms}
    the point with a failure mode:

    - [Crash] simulates process death: {!Injected_crash} is raised and,
      until {!reset}, the {!crash_pending} flag stays up, which the
      durability link ({!Core.Recovery}) uses to freeze the log exactly
      at the crash instant (a dead process appends nothing, so neither
      may the unwinding exception handlers);
    - [Io_error] raises {!Injected_io_error} once, simulating a failed
      write without stopping the world;
    - [Latency s] busy-waits [s] seconds on every pass, for timeout
      testing;
    - [Torn_write n] lets the next physical write at the point emit
      only its first [n] bytes, then simulates process death (the
      classic torn tail).  Fires at the WAL file sink's write hook, not
      at the point pass — arming it elsewhere is a no-op;
    - [Bit_flip i] silently flips one bit of byte [i mod length] of the
      next physical write at the point — the write "succeeds", the
      process sails on, and only recovery's checksums can tell.  Also
      write-hook only.

    Points self-register on first execution and can also be declared up
    front, so the crash-matrix test can iterate {!registered} without
    hard-coding the list.  The harness is global (like the faults it
    simulates); {!reset} restores a clean slate between test cases. *)

type mode =
  | Crash
  | Io_error
  | Latency of float
  | Torn_write of int
  | Bit_flip of int

exception Injected_crash of string
(** Carries the point name.  Treat as process death: the WAL link stops
    logging the moment it is raised. *)

exception Injected_io_error of string

val declare : string -> unit
(** Register a point name without executing it (idempotent). *)

val registered : unit -> string list
(** Every declared or executed point name, sorted. *)

val arm : ?after:int -> string -> mode -> unit
(** Arm [point] with a failure mode, implicitly declaring it.  [after]
    skips that many passes first (default 0: fire on the next pass).
    [Crash], [Io_error], [Torn_write] and [Bit_flip] disarm themselves
    after firing once; [Latency] persists until {!disarm}. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm everything, clear hit counters and the {!crash_pending} flag.
    Declared names survive. *)

val point : string -> unit
(** The instrumentation site: count a hit and fire the armed mode, if
    any.  Also installed as {!Rel.Wal}'s fault hook by {!install}. *)

val hits : string -> int
(** Times [point] ran for this name since the last {!reset}. *)

val crash_pending : unit -> bool
(** True from the moment a [Crash] fires until {!reset} — the simulated
    process is dead and must not produce further durable writes. *)

val busy_wait : float -> unit
(** Spin for approximately the given number of wall-clock seconds
    without linking unix: a spin counter calibrated once against
    [Sys.time] (clamped against wild calibrations), then iterated —
    immune to the CPU-time-vs-wall-time drift that a [Sys.time] loop
    suffers when other domains burn CPU concurrently. *)

val install : unit -> unit
(** Wire {!point} into {!Rel.Wal.set_fault_hook}, the corruption modes
    into {!Rel.Wal.set_write_hook}, and declare the WAL's points
    (idempotent; called by {!arm} and by {!Core.Recovery.attach}). *)
