(* Deterministic fault injection: named points, armed failure modes.

   The registry is global — the faults it simulates (process death, disk
   errors) are global too, and threading a harness value through every
   layer would infect interfaces that otherwise know nothing about
   testing.  [reset] restores a clean slate between test cases. *)

type mode =
  | Crash
  | Io_error
  | Latency of float
  | Torn_write of int
  | Bit_flip of int

exception Injected_crash of string
exception Injected_io_error of string

(* @guarded-by none: fault points are armed, fired, and read by the
   single-threaded test harness; the concurrent server never arms them *)
type armed = { mode : mode; mutable remaining : int }

(* @guarded-by none: harness-confined, as above *)
let declared : (string, unit) Hashtbl.t = Hashtbl.create 32

(* @guarded-by none: harness-confined, as above *)
let armed : (string, armed) Hashtbl.t = Hashtbl.create 8

(* @guarded-by none: harness-confined, as above *)
let hit_counts : (string, int ref) Hashtbl.t = Hashtbl.create 32

(* @guarded-by none: harness-confined, as above *)
let crashed = ref false

let declare name =
  if not (Hashtbl.mem declared name) then Hashtbl.add declared name ()

let registered () =
  Hashtbl.fold (fun name () acc -> name :: acc) declared []
  |> List.sort String.compare

let arm ?(after = 0) name mode =
  declare name;
  Hashtbl.replace armed name { mode; remaining = after }

let disarm name = Hashtbl.remove armed name

let reset () =
  Hashtbl.reset armed;
  Hashtbl.reset hit_counts;
  crashed := false

let hits name =
  match Hashtbl.find_opt hit_counts name with Some r -> !r | None -> 0

let crash_pending () = !crashed

(* Busy-wait rather than Unix.sleepf: [rel]/[obs] do not link unix.
   Sys.time is *process CPU time*, which races ahead of the wall clock
   whenever other domains burn CPU — under the server's domain pool an
   injected latency would end far too early.  So the clock calibrates a
   spin counter once (single-threaded enough in practice: tests arm
   latencies before spinning up load) and waits by iteration count,
   which a concurrent domain cannot shrink.  The residual drift — CPU
   frequency scaling between calibration and use — is bounded and
   acceptable for sub-second test latencies. *)
let spins_per_second =
  lazy
    (let block = 100_000 in
     let spin n =
       for _ = 1 to n do
         ignore (Sys.opaque_identity ())
       done
     in
     let t0 = Sys.time () in
     let blocks = ref 0 in
     while Sys.time () -. t0 < 0.01 do
       spin block;
       incr blocks
     done;
     let elapsed = Sys.time () -. t0 in
     let rate = float_of_int (!blocks * block) /. elapsed in
     (* clamp: a wildly off calibration (preempted mid-measurement) must
        not turn a 10ms latency into minutes of spinning *)
     Float.max 1e6 (Float.min 1e10 rate))

let busy_wait seconds =
  if seconds > 0.0 then begin
    let iters =
      int_of_float (Float.min 1e12 (seconds *. Lazy.force spins_per_second))
    in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity ())
    done
  end

let point name =
  declare name;
  (match Hashtbl.find_opt hit_counts name with
  | Some r -> incr r
  | None -> Hashtbl.add hit_counts name (ref 1));
  match Hashtbl.find_opt armed name with
  | None -> ()
  | Some a -> (
      match a.mode with
      | Torn_write _ | Bit_flip _ ->
          (* corruption modes fire at the physical write, not at the
             point pass — [write_point] consumes them *)
          ()
      | Crash | Io_error | Latency _ ->
          if a.remaining > 0 then a.remaining <- a.remaining - 1
          else begin
            match a.mode with
            | Crash ->
                Hashtbl.remove armed name;
                crashed := true;
                raise (Injected_crash name)
            | Io_error ->
                Hashtbl.remove armed name;
                raise (Injected_io_error name)
            | Latency s -> busy_wait s
            | Torn_write _ | Bit_flip _ -> assert false
          end)

(* The WAL file sink routes every physical write through here (see
   {!Rel.Wal.set_write_hook}); the corruption modes act on the byte
   string itself. *)
let write_point ~point:name ~write s =
  match Hashtbl.find_opt armed name with
  | Some a when (match a.mode with Torn_write _ | Bit_flip _ -> true | _ -> false)
    ->
      if a.remaining > 0 then begin
        a.remaining <- a.remaining - 1;
        write s
      end
      else begin
        Hashtbl.remove armed name;
        match a.mode with
        | Torn_write n ->
            (* the disk got only a prefix, then the process died *)
            let n = max 0 (min n (String.length s)) in
            if n > 0 then write (String.sub s 0 n);
            crashed := true;
            raise (Injected_crash name)
        | Bit_flip i ->
            (* silent corruption: one bit of one byte, no crash — the
               write "succeeds" and the process sails on *)
            if String.length s = 0 then write s
            else begin
              let b = Bytes.of_string s in
              let len = Bytes.length b in
              let pos = ((i mod len) + len) mod len in
              Bytes.set b pos
                (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
              write (Bytes.to_string b)
            end
        | Crash | Io_error | Latency _ -> assert false
      end
  | _ -> write s

(* @guarded-by none: harness-confined idempotent-install flag *)
let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    List.iter declare Rel.Wal.fault_points;
    Rel.Wal.set_fault_hook point;
    Rel.Wal.set_write_hook write_point
  end
