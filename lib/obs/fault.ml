(* Deterministic fault injection: named points, armed failure modes.

   The registry is global — the faults it simulates (process death, disk
   errors) are global too, and threading a harness value through every
   layer would infect interfaces that otherwise know nothing about
   testing.  [reset] restores a clean slate between test cases. *)

type mode = Crash | Io_error | Latency of float

exception Injected_crash of string
exception Injected_io_error of string

type armed = { mode : mode; mutable remaining : int }

let declared : (string, unit) Hashtbl.t = Hashtbl.create 32
let armed : (string, armed) Hashtbl.t = Hashtbl.create 8
let hit_counts : (string, int ref) Hashtbl.t = Hashtbl.create 32
let crashed = ref false

let declare name =
  if not (Hashtbl.mem declared name) then Hashtbl.add declared name ()

let registered () =
  Hashtbl.fold (fun name () acc -> name :: acc) declared []
  |> List.sort String.compare

let arm ?(after = 0) name mode =
  declare name;
  Hashtbl.replace armed name { mode; remaining = after }

let disarm name = Hashtbl.remove armed name

let reset () =
  Hashtbl.reset armed;
  Hashtbl.reset hit_counts;
  crashed := false

let hits name =
  match Hashtbl.find_opt hit_counts name with Some r -> !r | None -> 0

let crash_pending () = !crashed

(* Busy-wait rather than Unix.sleepf: [rel]/[obs] do not link unix, and
   injected latencies are fractions of a second in tests. *)
let busy_wait seconds =
  let until = Sys.time () +. seconds in
  while Sys.time () < until do
    ignore (Sys.opaque_identity ())
  done

let point name =
  declare name;
  (match Hashtbl.find_opt hit_counts name with
  | Some r -> incr r
  | None -> Hashtbl.add hit_counts name (ref 1));
  match Hashtbl.find_opt armed name with
  | None -> ()
  | Some a ->
      if a.remaining > 0 then a.remaining <- a.remaining - 1
      else begin
        match a.mode with
        | Crash ->
            Hashtbl.remove armed name;
            crashed := true;
            raise (Injected_crash name)
        | Io_error ->
            Hashtbl.remove armed name;
            raise (Injected_io_error name)
        | Latency s -> busy_wait s
      end

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    List.iter declare Rel.Wal.fault_points;
    Rel.Wal.set_fault_hook point
  end
