(* The softdb wire protocol: framed text, one message per line.

   The codec mirrors the WAL's file format (lib/rel/wal) on purpose, and
   reuses its field-level primitives: tab-separated fields, strings
   backslash-escaped so a field can never contain a literal tab or
   newline, floats in hex ("%h") so every value round-trips exactly.
   Like the WAL, a text format keeps captured traffic inspectable with
   standard tools — and lets the round-trip property be tested exactly
   ([request_of_line (request_to_line r) = r], same for responses).

   Every request carries a client-chosen correlation id; the response
   echoes it.  Responses to one connection may arrive out of request
   order (the server executes admitted requests on a worker pool), so
   the id — not arrival order — is the correlation.  Cancel and Ping are
   handled inline by the connection handler and never queue. *)

open Rel

type request_payload =
  | Hello of { client : string }
  | Statement of string (* any SQL statement, including EXPLAIN *)
  | Prepare of { handle : string; sql : string }
  | Execute of { handle : string }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Set of { key : string; value : string }
  | Cancel of { target : int }
  | Ping
  | Quit

type request = { id : int; payload : request_payload }

type error_code =
  | Parse_error
  | Exec_error
  | Txn_error
  | Deadline_exceeded
  | Cancelled
  | Session_closed
  | Shutting_down

type response_payload =
  | Hello_ok of { session : int }
  | Ok_msg of string
  | Result_set of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Explained of string (* a rendered plan report / analysis *)
  | Failed of { code : error_code; message : string }
  | Rejected of { retry_after_ms : int }
  | Pong
  | Bye

type response = { id : int; payload : response_payload }

exception Protocol_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

(* ---- field primitives (shared with the WAL codec) ------------------------ *)

let escape = Wal.escape

let unescape s =
  try Wal.unescape s with Wal.Wal_error m -> raise (Protocol_error m)

let value_to_field = Wal.value_to_field

let value_of_field s =
  try Wal.value_of_field s with Wal.Wal_error m -> raise (Protocol_error m)

let int_field s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> error "expected integer, got %S" s

let join = String.concat "\t"
let split line = String.split_on_char '\t' line

(* ---- requests ------------------------------------------------------------ *)

let request_to_line ({ id; payload } : request) =
  let fields =
    match payload with
    | Hello { client } -> [ "hello"; escape client ]
    | Statement sql -> [ "stmt"; escape sql ]
    | Prepare { handle; sql } -> [ "prepare"; escape handle; escape sql ]
    | Execute { handle } -> [ "execute"; escape handle ]
    | Begin_txn -> [ "begin" ]
    | Commit_txn -> [ "commit" ]
    | Rollback_txn -> [ "rollback" ]
    | Set { key; value } -> [ "set"; escape key; escape value ]
    | Cancel { target } -> [ "cancel"; string_of_int target ]
    | Ping -> [ "ping" ]
    | Quit -> [ "quit" ]
  in
  join (("Q" ^ string_of_int id) :: fields)

let request_of_line line : request =
  match split line with
  | head :: fields when String.length head > 1 && head.[0] = 'Q' ->
      let id = int_field (String.sub head 1 (String.length head - 1)) in
      let payload =
        match fields with
        | [ "hello"; client ] -> Hello { client = unescape client }
        | [ "stmt"; sql ] -> Statement (unescape sql)
        | [ "prepare"; handle; sql ] ->
            Prepare { handle = unescape handle; sql = unescape sql }
        | [ "execute"; handle ] -> Execute { handle = unescape handle }
        | [ "begin" ] -> Begin_txn
        | [ "commit" ] -> Commit_txn
        | [ "rollback" ] -> Rollback_txn
        | [ "set"; key; value ] ->
            Set { key = unescape key; value = unescape value }
        | [ "cancel"; target ] -> Cancel { target = int_field target }
        | [ "ping" ] -> Ping
        | [ "quit" ] -> Quit
        | _ -> error "bad request %S" line
      in
      { id; payload }
  | _ -> error "bad request frame %S" line

(* ---- responses ----------------------------------------------------------- *)

let code_to_field = function
  | Parse_error -> "parse"
  | Exec_error -> "exec"
  | Txn_error -> "txn"
  | Deadline_exceeded -> "deadline"
  | Cancelled -> "cancelled"
  | Session_closed -> "closed"
  | Shutting_down -> "shutdown"

let code_of_field = function
  | "parse" -> Parse_error
  | "exec" -> Exec_error
  | "txn" -> Txn_error
  | "deadline" -> Deadline_exceeded
  | "cancelled" -> Cancelled
  | "closed" -> Session_closed
  | "shutdown" -> Shutting_down
  | s -> error "bad error code %S" s

(* Result sets flatten into one line: column count, column names, row
   count, then each row as arity-prefixed value fields — the same
   count-prefixed shape the WAL uses for tuples. *)
let response_to_line ({ id; payload } : response) =
  let fields =
    match payload with
    | Hello_ok { session } -> [ "hello"; string_of_int session ]
    | Ok_msg m -> [ "ok"; escape m ]
    | Result_set { columns; rows } ->
        ("rows" :: string_of_int (List.length columns)
        :: List.map escape columns)
        @ (string_of_int (List.length rows)
          :: List.concat_map
               (fun row ->
                 string_of_int (Array.length row)
                 :: List.map value_to_field (Array.to_list row))
               rows)
    | Affected n -> [ "affected"; string_of_int n ]
    | Explained text -> [ "explained"; escape text ]
    | Failed { code; message } ->
        [ "error"; code_to_field code; escape message ]
    | Rejected { retry_after_ms } ->
        [ "rejected"; string_of_int retry_after_ms ]
    | Pong -> [ "pong" ]
    | Bye -> [ "bye" ]
  in
  join (("R" ^ string_of_int id) :: fields)

let take n fields =
  let rec go n acc fields =
    if n = 0 then (List.rev acc, fields)
    else
      match fields with
      | [] -> error "truncated frame"
      | f :: tl -> go (n - 1) (f :: acc) tl
  in
  go n [] fields

let take_row fields =
  match fields with
  | [] -> error "truncated row"
  | n :: rest ->
      let n = int_field n in
      let cells, rest = take n rest in
      (Array.of_list (List.map value_of_field cells), rest)

let response_of_line line : response =
  match split line with
  | head :: fields when String.length head > 1 && head.[0] = 'R' ->
      let id = int_field (String.sub head 1 (String.length head - 1)) in
      let payload =
        match fields with
        | [ "hello"; session ] -> Hello_ok { session = int_field session }
        | [ "ok"; m ] -> Ok_msg (unescape m)
        | "rows" :: ncols :: rest ->
            let cols, rest = take (int_field ncols) rest in
            let columns = List.map unescape cols in
            let nrows, rest =
              match rest with
              | n :: tl -> (int_field n, tl)
              | [] -> error "truncated result set"
            in
            let rows = ref [] in
            let rest = ref rest in
            for _ = 1 to nrows do
              let row, tl = take_row !rest in
              rows := row :: !rows;
              rest := tl
            done;
            if !rest <> [] then error "trailing fields in result set";
            Result_set { columns; rows = List.rev !rows }
        | [ "affected"; n ] -> Affected (int_field n)
        | [ "explained"; text ] -> Explained (unescape text)
        | [ "error"; code; message ] ->
            Failed { code = code_of_field code; message = unescape message }
        | [ "rejected"; ms ] -> Rejected { retry_after_ms = int_field ms }
        | [ "pong" ] -> Pong
        | [ "bye" ] -> Bye
        | _ -> error "bad response %S" line
      in
      { id; payload }
  | _ -> error "bad response frame %S" line

(* ---- pretty-printing ------------------------------------------------------ *)

let pp_error_code ppf c = Fmt.string ppf (code_to_field c)

let pp_request ppf ({ id; payload } : request) =
  match payload with
  | Hello { client } -> Fmt.pf ppf "#%d hello %s" id client
  | Statement sql -> Fmt.pf ppf "#%d stmt %s" id sql
  | Prepare { handle; sql } -> Fmt.pf ppf "#%d prepare %s: %s" id handle sql
  | Execute { handle } -> Fmt.pf ppf "#%d execute %s" id handle
  | Begin_txn -> Fmt.pf ppf "#%d begin" id
  | Commit_txn -> Fmt.pf ppf "#%d commit" id
  | Rollback_txn -> Fmt.pf ppf "#%d rollback" id
  | Set { key; value } -> Fmt.pf ppf "#%d set %s=%s" id key value
  | Cancel { target } -> Fmt.pf ppf "#%d cancel #%d" id target
  | Ping -> Fmt.pf ppf "#%d ping" id
  | Quit -> Fmt.pf ppf "#%d quit" id

let pp_response ppf ({ id; payload } : response) =
  match payload with
  | Hello_ok { session } -> Fmt.pf ppf "#%d session %d" id session
  | Ok_msg m -> Fmt.pf ppf "#%d ok %s" id m
  | Result_set { columns; rows } ->
      Fmt.pf ppf "#%d rows %d x %d" id (List.length rows)
        (List.length columns)
  | Affected n -> Fmt.pf ppf "#%d affected %d" id n
  | Explained _ -> Fmt.pf ppf "#%d explained" id
  | Failed { code; message } ->
      Fmt.pf ppf "#%d error [%a] %s" id pp_error_code code message
  | Rejected { retry_after_ms } ->
      Fmt.pf ppf "#%d rejected retry-after=%dms" id retry_after_ms
  | Pong -> Fmt.pf ppf "#%d pong" id
  | Bye -> Fmt.pf ppf "#%d bye" id
