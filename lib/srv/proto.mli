(** The softdb wire protocol: framed text, one message per line.

    The codec follows the WAL file format (and reuses its field
    primitives): tab-separated fields, backslash-escaped strings, hex
    floats — so every message round-trips exactly,
    [request_of_line (request_to_line r) = r], and captured traffic
    stays inspectable with standard tools.

    Every request carries a client-chosen correlation id echoed by its
    response; responses on one connection may arrive out of request
    order (admitted requests execute on a worker pool), so the id — not
    arrival order — is the correlation. *)

open Rel

type request_payload =
  | Hello of { client : string }
      (** Names the session; answered with {!Hello_ok}. *)
  | Statement of string  (** Any SQL statement, including EXPLAIN. *)
  | Prepare of { handle : string; sql : string }
      (** Bind a session-local handle to a shared cached plan. *)
  | Execute of { handle : string }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Set of { key : string; value : string }
      (** Session settings; "deadline_ms" bounds each request. *)
  | Cancel of { target : int }
      (** Cancel the queued request with id [target]; handled inline. *)
  | Ping  (** Handled inline; never queues. *)
  | Quit

type request = { id : int; payload : request_payload }

type error_code =
  | Parse_error
  | Exec_error
  | Txn_error
  | Deadline_exceeded
  | Cancelled
  | Session_closed
  | Shutting_down

type response_payload =
  | Hello_ok of { session : int }
  | Ok_msg of string
  | Result_set of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Explained of string  (** a rendered plan report / analysis *)
  | Failed of { code : error_code; message : string }
  | Rejected of { retry_after_ms : int }
      (** Admission control: the job queue is full — back off and
          retry. *)
  | Pong
  | Bye

type response = { id : int; payload : response_payload }

exception Protocol_error of string

val request_to_line : request -> string
(** One line, no trailing newline. *)

val request_of_line : string -> request
(** Raises {!Protocol_error} on corrupt input. *)

val response_to_line : response -> string

val response_of_line : string -> response
(** Raises {!Protocol_error} on corrupt input. *)

val pp_error_code : Format.formatter -> error_code -> unit
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
