(* A bounded job queue feeding a pool of OCaml 5 domains.

   Admission control happens at [submit]: when the queue is at capacity
   the job is rejected immediately with a retry-after hint scaled to the
   backlog, and the srv.rejected counter ticks — the client backs off
   and retries, rather than the server growing an unbounded queue under
   pressure.  Deadlines and cancellation are checked when a worker
   dequeues the job: an expired or cancelled job never starts executing
   (once running, jobs are not interrupted — cancellation is a queue
   operation, like DB2's or Postgres's soft cancel between operators,
   only coarser).

   The scheduler knows nothing about locks or sessions: jobs do their
   own locking (see {!Rwlock} and {!Session}), so the pool stays a pure
   execution resource.  The one nod to lock contention is {!Would_block}:
   a job that cannot take its lock within a short slice raises it to
   yield its worker and return to the queue tail.  Without that, a burst
   of transactions convoys — blocked BEGINs occupy every worker while
   the lock holder's own next statement starves in the queue behind
   them.  [shutdown] stops admissions, lets workers drain the queue by
   *expiring* every remaining job (each client still gets a response),
   and joins the domains. *)

exception Would_block

type job = {
  session : int;
  req_id : int;
  enqueued_at : float;
  deadline : float option; (* absolute Unix time *)
  cancelled : unit -> bool; (* checked at dequeue *)
  run : unit -> unit;
  expired : Proto.error_code -> unit; (* called instead of [run] *)
}

(* @guarded-by srv.scheduler.queue *)
type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  capacity : int;
  workers : int;
  metrics : Obs.Metrics.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  mutable domains_seen : int list; (* raw Domain ids that ran a job *)
}

let default_workers () = max 2 (min 4 (Domain.recommended_domain_count () - 1))

(* Deadline and cancellation of the job currently running on this
   domain, stashed in domain-local storage so nested fan-out — the
   scatter runner submitting partition subtasks mid-query — inherits
   them without threading context through the executor. *)
let job_ctx_key : (float option * (unit -> bool)) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (None, fun () -> false))

let current_deadline () = fst (Domain.DLS.get job_ctx_key)
let current_cancelled () = snd (Domain.DLS.get job_ctx_key)

let locked t f =
  (* the scatter runner submits helper jobs mid-query, so this mutex can
     be taken while the submitting session's locks are held *)
  (* @acquires srv.scheduler.queue while srv.session db.rwlock *)
  Obs.Lockdep.acquire "srv.scheduler.queue";
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.m;
      Obs.Lockdep.release "srv.scheduler.queue")
    f

let note_domain t =
  let id = (Domain.self () :> int) in
  locked t (fun () ->
      if not (List.mem id t.domains_seen) then
        t.domains_seen <- id :: t.domains_seen)

(* Back to the queue tail, skipping admission control (the job held a
   slot until a moment ago).  Deadline and cancellation get re-checked
   at the next dequeue, so a job that can never take its lock still
   expires on time. *)
let requeue t job =
  let verdict =
    locked t (fun () ->
        if t.stopping then `Drain
        else begin
          Queue.push job t.queue;
          Condition.signal t.nonempty;
          `Requeued
        end)
  in
  match verdict with
  | `Requeued ->
      Obs.Metrics.incr t.metrics "srv.jobs_requeued";
      Obs.Metrics.add_gauge t.metrics "srv.queue_depth" 1.0
  | `Drain ->
      Obs.Metrics.incr t.metrics "srv.jobs_expired";
      job.expired Proto.Shutting_down

let rec worker_loop t =
  (* @acquires srv.scheduler.queue *)
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    (* @waits srv.scheduler.queue *)
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.m
  else begin
    let job = Queue.pop t.queue in
    let stopping = t.stopping in
    Mutex.unlock t.m;
    Obs.Metrics.add_gauge t.metrics "srv.queue_depth" (-1.0);
    note_domain t;
    let now = Unix.gettimeofday () in
    (try
       if stopping then begin
         Obs.Metrics.incr t.metrics "srv.jobs_expired";
         job.expired Proto.Shutting_down
       end
       else if job.cancelled () then begin
         Obs.Metrics.incr t.metrics "srv.jobs_cancelled";
         job.expired Proto.Cancelled
       end
       else if
         match job.deadline with Some d -> now > d | None -> false
       then begin
         Obs.Metrics.incr t.metrics "srv.jobs_expired";
         (* distinct from jobs_expired (which shutdown drains also
            tick): admitted work that died of queue wait — the overload
            signal the circuit breaker and chaoscheck gate watch *)
         Obs.Metrics.incr t.metrics "srv.jobs_deadline_killed";
         job.expired Proto.Deadline_exceeded
       end
       else begin
         Domain.DLS.set job_ctx_key (job.deadline, job.cancelled);
         match
           Fun.protect
             ~finally:(fun () ->
               Domain.DLS.set job_ctx_key (None, fun () -> false))
             job.run
         with
         | () ->
             Obs.Metrics.record_time t.metrics "srv.queue_wait"
               (now -. job.enqueued_at);
             Obs.Metrics.record_time t.metrics "srv.query_latency"
               (Unix.gettimeofday () -. now);
             Obs.Metrics.incr t.metrics "srv.jobs_completed"
         | exception Would_block -> requeue t job
       end
     with _ ->
       (* [run]/[expired] answer the client themselves; a leak here must
          not kill the worker *)
       Obs.Metrics.incr t.metrics "srv.job_errors");
    worker_loop t
  end

let create ?workers ?(queue_capacity = 64) metrics =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  if queue_capacity < 1 then
    invalid_arg "Scheduler.create: queue_capacity must be >= 1";
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity = queue_capacity;
      workers;
      metrics;
      stopping = false;
      domains = [];
      domains_seen = [];
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.workers
let queue_depth t = locked t (fun () -> Queue.length t.queue)
let domains_used t = locked t (fun () -> List.length t.domains_seen)

(* The retry-after hint: proportional to the backlog a retrying client
   would find in front of it, amortized over the pool — deterministic
   given the queue state, so tests can pin it. *)
let retry_after_ms t = max 1 (Queue.length t.queue * 5 / t.workers)

let submit t job =
  let verdict =
    locked t (fun () ->
        if t.stopping then `Shutting_down
        else if Queue.length t.queue >= t.capacity then
          `Rejected (retry_after_ms t)
        else begin
          Queue.push job t.queue;
          Condition.signal t.nonempty;
          `Admitted
        end)
  in
  (match verdict with
  | `Admitted ->
      Obs.Metrics.incr t.metrics "srv.jobs_admitted";
      Obs.Metrics.add_gauge t.metrics "srv.queue_depth" 1.0
  | `Rejected _ -> Obs.Metrics.incr t.metrics "srv.jobs_rejected"
  | `Shutting_down -> ());
  verdict

(* Enqueue pool-assisted work the server generates for itself — scatter
   helper jobs fanning a query's partition subtasks across the pool.
   Admission control is deliberately skipped: the submitting query
   already passed it and is occupying a worker; bouncing its subtasks
   would deadlock progress against the very backlog the query is part
   of.  [false] when the pool is shutting down — the submitter then
   runs every subtask itself. *)
let submit_internal t job =
  let admitted =
    locked t (fun () ->
        if t.stopping then false
        else begin
          Queue.push job t.queue;
          Condition.signal t.nonempty;
          true
        end)
  in
  if admitted then begin
    Obs.Metrics.incr t.metrics "srv.scatter_helpers";
    Obs.Metrics.add_gauge t.metrics "srv.queue_depth" 1.0
  end;
  admitted

let shutdown t =
  let domains =
    locked t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.nonempty;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join domains
