(** The single-writer rule, as a lock.

    Read-only queries share the lock; mutations (data, schema, SC
    catalog, WAL appends) are exclusive.  The write side is owned by a
    {e session} rather than a thread: a transaction holds it from BEGIN
    to COMMIT across jobs that may land on different worker domains, and
    the owning session's nested acquisitions (reads or writes) are
    reentrant.  Waiting writers block new readers, so transactions are
    not starved.  Acquisition is deadline-bounded ([deadline] is an
    absolute Unix time; omitted means wait forever). *)

type t

val create : unit -> t

val holds_write : t -> session:int -> bool

val acquire_read : ?deadline:float -> t -> session:int -> bool
(** False iff the deadline passed.  If [session] already holds the write
    lock this is a no-op success (covered by its own exclusivity). *)

val release_read : t -> session:int -> unit

val acquire_write : ?deadline:float -> t -> session:int -> bool
(** Reentrant for the owning session (depth-counted). *)

val release_write : t -> session:int -> unit

val forfeit_write : t -> session:int -> unit
(** Drop the session's ownership whatever the depth — session teardown,
    where an abandoned transaction must not wedge the engine. *)

val read_locked : ?deadline:float -> t -> session:int -> (unit -> 'a) -> 'a option
(** Run under the read lock; [None] iff the deadline passed. *)

val write_locked : ?deadline:float -> t -> session:int -> (unit -> 'a) -> 'a option
(** Run under the write lock (acquire/release around the thunk). *)
