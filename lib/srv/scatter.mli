(** The pool-backed scatter runner (see DESIGN.md §7).

    Installs a parallel implementation of
    {!Exec.Operators.scatter_runner}: partition subtasks fan out across
    the scheduler's worker pool as helper jobs, the submitting domain
    work-steals unclaimed subtasks (so saturation degrades to
    sequential execution, never deadlock), and the submitting query's
    deadline/cancellation abandon not-yet-started subtasks with
    {!Exec.Operators.Scatter_abandoned}. *)

val run : Scheduler.t -> (unit -> unit) array -> exn option array
(** Run one batch of subtasks on the pool, returning per-subtask
    outcomes in index order. *)

val install : Scheduler.t -> unit
(** Point the executor's [scatter_runner] at [run pool].  Process-wide:
    the last installed pool wins; after its shutdown the runner still
    completes every batch on the submitting domain. *)
