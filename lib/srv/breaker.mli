(** Overload circuit breaker: closed → open → half-open → closed.

    The {!Scheduler} rejects individual jobs when its queue is full,
    but sustained overload still makes every request travel the full
    admission path, and many admitted jobs die of deadline expiry in
    the queue — paid-for work the server throws away.  The breaker
    watches the failure stream ({!record_failure}: admission rejections
    and queue deadline kills) and, after
    [config.failure_threshold] consecutive failures, {e opens}:
    {!admit} turns requests away at the door with an honest
    [retry_after_ms] equal to the remaining cooldown.  After
    [config.cooldown_s] it goes {e half-open} and lets probes through
    one at a time; [config.half_open_probes] consecutive probe
    successes close it, any probe failure re-opens it.

    Metrics: srv.breaker.failures / srv.breaker.opened /
    srv.breaker.closed / srv.breaker.fast_rejects counters and the
    srv.breaker.state gauge (0 closed, 1 open, 2 half-open).

    Thread-safe behind one leaf-level mutex ([srv.breaker] in the rank
    table): nothing is acquired while it is held, and it is only taken
    with no other lock held. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip it *)
  cooldown_s : float;  (** open → half-open delay *)
  half_open_probes : int;  (** probe successes that close it *)
}

val default_config : config
(** 8 consecutive failures, 250ms cooldown, 3 probes. *)

type t

val create : ?config:config -> ?clock:(unit -> float) -> Obs.Metrics.t -> t
(** [clock] (default [Unix.gettimeofday]) is injectable so tests drive
    the cooldown deterministically.  Raises [Invalid_argument] on a
    threshold or probe count < 1. *)

val admit : t -> [ `Proceed | `Reject of int ]
(** The door check, before the scheduler sees the job.  [`Reject
    retry_after_ms] is the fast path: answer Rejected immediately.
    When the cooldown has elapsed this transitions open → half-open and
    admits the caller as the probe. *)

val record_failure : t -> unit
(** An admission rejection or a queue deadline kill.  Trips closed →
    open at the threshold; any half-open probe failure re-opens. *)

val record_success : t -> unit
(** An admitted job ran to completion.  Resets the failure run; in
    half-open, counts toward closing. *)

val state_name : t -> string
(** ["closed"] / ["open"] / ["half_open"], as surfaced in sys.sessions
    summaries and tests. *)

val opens : t -> int
(** Times the breaker tripped open since creation. *)

val fast_rejects : t -> int
(** Requests turned away at the door since creation. *)
