(** A server session: one client's private state over the shared engine.

    Each session owns its transaction state, prepared-statement handles,
    settings and traffic counters; sessions share the {!Core.Softdb.t},
    the plan cache, and the metrics registry.  A session's pipelined
    requests are serialized by a per-session mutex (statements of one
    session run in admission order; sessions interleave freely), and
    every request follows the single-writer discipline: reads take the
    shared side of the {!Rwlock}, mutations the exclusive side, and
    BEGIN holds the exclusive side until COMMIT/ROLLBACK.

    Prepared plans are shared across sessions, keyed by SQL text: a
    handle prepared by one session binds later sessions to the same
    cache entry (ticking plan_cache.shared_hits instead of
    re-optimizing). *)

type state = Idle | Active | Closed

type t

val make :
  id:int -> sdb:Core.Softdb.t -> cache:Core.Plan_cache.t ->
  metrics:Obs.Metrics.t -> t

val id : t -> int
val name : t -> string
val in_txn : t -> bool
val setting : t -> string -> string option

val mark_cancelled : t -> int -> unit
(** Flag a queued request id; the scheduler skips it at dequeue. *)

val is_cancelled : t -> int -> bool

val handle :
  rwlock:Rwlock.t -> deadline:float option -> t ->
  Proto.request_payload -> Proto.response_payload
(** Execute one request on a worker domain.  Engine exceptions fold to
    {!Proto.Failed}; a lock wait past [deadline] folds to
    [Deadline_exceeded].  [Cancel]/[Ping]/[Quit] never reach here — the
    connection loop answers them inline. *)

val close : rwlock:Rwlock.t -> t -> unit
(** Teardown after Quit or EOF: roll back an open transaction, surrender
    write ownership, mark closed (still-queued jobs answer
    [Session_closed]). *)

val sys_row : t -> Rel.Tuple.t
(** This session's sys.sessions row. *)
