(* Connection transports: how protocol frames move.

   A connection is four closures over a frame (= one protocol line, no
   newline).  Two implementations:

   - [pipe]: a symmetric in-memory duplex built from two blocking
     queues — fully deterministic, no descriptors, no ports; the test
     harness runs many client sessions against one server inside one
     process.
   - TCP ([listen]/[accept]/[connect]): newline-delimited frames over a
     socket, for [softdb serve] and the bench load generator.

   [send] is safe to call from any domain or thread (workers complete
   jobs concurrently and answer out of order); [recv] is meant for a
   single consumer — the connection's reader loop. *)

type t = {
  send : string -> unit;
  recv : unit -> string option; (* None at end of stream *)
  close : unit -> unit;
  peer : string;
}

exception Closed

(* ---- in-memory pipe ------------------------------------------------------ *)

(* One direction: a blocking unbounded queue.  Backpressure is not this
   layer's job — the scheduler's bounded queue is where the server
   pushes back (with an explicit Rejected), so a transport that
   silently stalls producers would only hide the signal. *)
(* @guarded-by srv.transport.chan *)
type chan = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : string Queue.t;
  mutable closed : bool;
}

let chan () =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    closed = false;
  }

let chan_send c line =
  (* @acquires srv.transport.chan *)
  Obs.Lockdep.acquire "srv.transport.chan";
  Mutex.lock c.m;
  let closed = c.closed in
  if not closed then begin
    Queue.push line c.q;
    Condition.signal c.nonempty
  end;
  Mutex.unlock c.m;
  Obs.Lockdep.release "srv.transport.chan";
  if closed then raise Closed

let chan_recv c =
  (* @acquires srv.transport.chan *)
  Obs.Lockdep.acquire "srv.transport.chan";
  Mutex.lock c.m;
  while Queue.is_empty c.q && not c.closed do
    (* @waits srv.transport.chan *)
    Condition.wait c.nonempty c.m
  done;
  let r = if Queue.is_empty c.q then None else Some (Queue.pop c.q) in
  Mutex.unlock c.m;
  Obs.Lockdep.release "srv.transport.chan";
  r

let chan_close c =
  (* @acquires srv.transport.chan *)
  Obs.Lockdep.acquire "srv.transport.chan";
  Mutex.lock c.m;
  c.closed <- true;
  Condition.broadcast c.nonempty;
  Mutex.unlock c.m;
  Obs.Lockdep.release "srv.transport.chan"

let pipe () =
  let c2s = chan () (* client -> server *) and s2c = chan () in
  let close () =
    chan_close c2s;
    chan_close s2c
  in
  let client =
    {
      send = chan_send c2s;
      recv = (fun () -> chan_recv s2c);
      close;
      peer = "pipe:server";
    }
  and server =
    {
      send = chan_send s2c;
      recv = (fun () -> chan_recv c2s);
      close;
      peer = "pipe:client";
    }
  in
  (client, server)

(* ---- TCP ------------------------------------------------------------------ *)

(* Frames are newline-delimited; the protocol escapes every literal
   newline inside a field, so input_line is exact framing.  Writes are
   serialized behind a per-connection mutex because responses come from
   worker domains. *)
let of_fd fd ~peer =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wm = Mutex.create () in
  let closed = ref false in
  let send line =
    (* @acquires srv.transport.write *)
    Obs.Lockdep.acquire "srv.transport.write";
    Mutex.lock wm;
    Fun.protect
      ~finally:(fun () ->
        Mutex.unlock wm;
        Obs.Lockdep.release "srv.transport.write")
      (fun () ->
        if !closed then raise Closed;
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with Sys_error _ -> raise Closed)
  in
  let recv () = try Some (input_line ic) with End_of_file | Sys_error _ -> None in
  let close () =
    (* @acquires srv.transport.write *)
    Obs.Lockdep.acquire "srv.transport.write";
    Mutex.lock wm;
    if not !closed then begin
      closed := true;
      (try flush oc with Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    end;
    Mutex.unlock wm;
    Obs.Lockdep.release "srv.transport.write"
  in
  { send; recv; close; peer }

type listener = { lfd : Unix.file_descr; port : int }

let listen ?(host = "127.0.0.1") ~port () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd addr;
  Unix.listen lfd 64;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p (* resolves port 0 to the real one *)
    | _ -> port
  in
  { lfd; port }

let port l = l.port

let accept l =
  let fd, peer_addr = Unix.accept l.lfd in
  let peer =
    match peer_addr with
    | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX s -> s
  in
  of_fd fd ~peer

let close_listener l = try Unix.close l.lfd with Unix.Unix_error _ -> ()

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd ~peer:(Printf.sprintf "%s:%d" host port)
