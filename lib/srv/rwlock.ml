(* The single-writer rule, as a lock.

   Read-only queries fan out across the worker pool under a shared read
   lock; anything that mutates shared engine state — data, schema, the
   SC catalog, WAL appends — runs under the exclusive write lock, so
   every mutation and every WAL record stays serialized exactly as in
   the single-threaded engine.

   The write side is *owned by a session*, not by a thread or domain: a
   transaction holds the write lock from BEGIN to COMMIT/ROLLBACK, and
   the statements inside it arrive as separate jobs, possibly on
   different worker domains.  Ownership makes those nested acquisitions
   reentrant (depth-counted), and lets a session's reads inside its own
   transaction proceed under the exclusivity it already holds.

   Acquisition is deadline-bounded by polling (the stdlib Condition has
   no timed wait): waiters sleep ~1ms between attempts, which is noise
   next to query execution and keeps the implementation obviously
   correct.  Writers take priority — a waiting writer blocks new readers
   — so a transaction cannot be starved by a stream of reads. *)

(* @guarded-by srv.rwlock.state *)
type t = {
  m : Mutex.t;
  mutable readers : int;
  mutable writer : int option; (* owning session *)
  mutable writer_depth : int;
  mutable writers_waiting : int;
}

let create () =
  {
    m = Mutex.create ();
    readers = 0;
    writer = None;
    writer_depth = 0;
    writers_waiting = 0;
  }

let locked t f =
  (* the short internal state mutex; callers hold the session mutex and
     may logically hold the rwlock itself (reentrant re-acquire paths) *)
  (* @acquires srv.rwlock.state while srv.session db.rwlock *)
  Obs.Lockdep.acquire "srv.rwlock.state";
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.m;
      Obs.Lockdep.release "srv.rwlock.state")
    f

let poll_interval_s = 0.001

let holds_write t ~session =
  locked t (fun () -> t.writer = Some session)

(* Poll [try_once] until it succeeds or the deadline passes.  [deadline]
   is an absolute Unix time; [None] waits indefinitely. *)
let rec wait_for ?deadline try_once =
  if try_once () then true
  else if
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  then false
  else begin
    Unix.sleepf poll_interval_s;
    wait_for ?deadline try_once
  end

let acquire_read ?deadline t ~session =
  let try_once () =
    locked t (fun () ->
        if t.writer = Some session then true (* covered by own exclusivity *)
        else if t.writer = None && t.writers_waiting = 0 then begin
          t.readers <- t.readers + 1;
          true
        end
        else false)
  in
  wait_for ?deadline try_once

let release_read t ~session =
  locked t (fun () ->
      (* a read inside the session's own write section took no shared
         count, so there is nothing to give back *)
      if t.writer <> Some session then
        t.readers <- max 0 (t.readers - 1))

let acquire_write ?deadline t ~session =
  let registered = ref false in
  let try_once () =
    locked t (fun () ->
        if t.writer = Some session then begin
          t.writer_depth <- t.writer_depth + 1;
          true
        end
        else if t.writer = None && t.readers = 0 then begin
          t.writer <- Some session;
          t.writer_depth <- 1;
          true
        end
        else begin
          if not !registered then begin
            registered := true;
            t.writers_waiting <- t.writers_waiting + 1
          end;
          false
        end)
  in
  let ok = wait_for ?deadline try_once in
  if !registered then
    locked t (fun () -> t.writers_waiting <- t.writers_waiting - 1);
  ok

let release_write t ~session =
  locked t (fun () ->
      if t.writer = Some session then begin
        t.writer_depth <- t.writer_depth - 1;
        if t.writer_depth <= 0 then begin
          t.writer <- None;
          t.writer_depth <- 0
        end
      end)

(* Drop the session's write ownership entirely, whatever the depth — the
   session-teardown path, where a crashed transaction must not leave the
   engine wedged. *)
let forfeit_write t ~session =
  locked t (fun () ->
      if t.writer = Some session then begin
        t.writer <- None;
        t.writer_depth <- 0
      end)

(* The balanced wrappers are the lockdep instrumentation points: acquire
   and release happen on one thread, so the per-thread witness stack
   stays sound.  Reentrant by declaration — a session's reads inside its
   own write section re-enter by design.  The unbalanced BEGIN..COMMIT
   path (Session.begin_txn) records itself with Lockdep.pulse instead. *)

let read_locked ?deadline t ~session f =
  if acquire_read ?deadline t ~session then begin
    Obs.Lockdep.acquire ~reentrant:true "db.rwlock";
    Fun.protect
      ~finally:(fun () ->
        release_read t ~session;
        Obs.Lockdep.release "db.rwlock")
      f
    |> Option.some
  end
  else None

let write_locked ?deadline t ~session f =
  if acquire_write ?deadline t ~session then begin
    Obs.Lockdep.acquire ~reentrant:true "db.rwlock";
    Fun.protect
      ~finally:(fun () ->
        release_write t ~session;
        Obs.Lockdep.release "db.rwlock")
      f
    |> Option.some
  end
  else None
