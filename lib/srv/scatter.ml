(* The pool-backed scatter runner: partition-parallel execution of a
   Scatter_gather node's subtasks across the scheduler's domains.

   The executor ({!Exec.Operators}) owns the operator semantics —
   private buffers, deterministic merge, retry, partition attribution —
   and delegates only "run these thunks, give me the outcomes" through
   the [scatter_runner] injection point (exec must not depend on srv).
   This module supplies the parallel implementation:

   - the subtasks become a {!Part.Batch}: one helper job per subtask
     beyond the first is offered to the pool via
     {!Scheduler.submit_internal} (no admission control — the
     submitting query already passed it), each helper claims and runs
     whatever subtasks remain;
   - the submitting domain then *steals*: it drains unclaimed subtasks
     itself, so a saturated or shutting-down pool degrades to
     sequential execution instead of deadlocking, and finally waits
     only on claims running elsewhere;
   - the submitting query's deadline and cancellation (inherited
     through {!Scheduler.current_deadline} domain-local state) are
     checked before each subtask body: past-deadline or cancelled
     subtasks raise {!Exec.Operators.Scatter_abandoned}, which the
     executor maps to a whole-query error without retry.

   Helper jobs carry the same deadline/cancellation, so ones still
   queued when the deadline passes expire in the scheduler without ever
   touching the batch. *)

let abandon why = raise (Exec.Operators.Scatter_abandoned why)

let run pool tasks =
  let deadline = Scheduler.current_deadline () in
  let cancelled = Scheduler.current_cancelled () in
  let guarded body () =
    if cancelled () then abandon "cancelled";
    (match deadline with
    | Some d when Unix.gettimeofday () > d -> abandon "deadline exceeded"
    | Some _ | None -> ());
    body ()
  in
  let batch = Part.Batch.create (Array.map guarded tasks) in
  let now = Unix.gettimeofday () in
  for i = 2 to Array.length tasks do
    ignore
      (Scheduler.submit_internal pool
         {
           Scheduler.session = 0;
           req_id = -i;
           enqueued_at = now;
           deadline;
           cancelled;
           run = (fun () -> Part.Batch.drain batch);
           expired = (fun _ -> ());
         })
  done;
  Part.Batch.drain batch;
  Part.Batch.wait batch

let install pool = Exec.Operators.scatter_runner := run pool
