(* Overload circuit breaker: closed → open → half-open → closed.

   The scheduler already rejects individual jobs when its queue is
   full, but under a sustained overload that still means every request
   travels the full admission path and many of the admitted ones die of
   deadline expiry in the queue — work the server pays for and then
   throws away.  The breaker watches the failure stream (admission
   rejections and queue deadline kills), and after a run of consecutive
   failures it *opens*: requests are turned away at the door with an
   honest retry_after_ms equal to the remaining cooldown, costing the
   server nothing.  After the cooldown it goes *half-open* and lets
   probes through one at a time; a run of probe successes closes it
   again, any probe failure re-opens it.

   All state lives behind one leaf-level mutex: nothing else is ever
   acquired while it is held (metrics tick after the decision), and it
   is only taken with no other lock held — see the rank table in
   {!Session}. *)

type config = {
  failure_threshold : int;  (* consecutive failures that trip it *)
  cooldown_s : float;  (* open -> half-open delay *)
  half_open_probes : int;  (* probe successes that close it *)
}

let default_config =
  { failure_threshold = 8; cooldown_s = 0.25; half_open_probes = 3 }

type state = Closed | Open of { until : float } | Half_open

(* @guarded-by srv.breaker *)
type t = {
  config : config;
  metrics : Obs.Metrics.t;
  clock : unit -> float;
  m : Mutex.t;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable probe_in_flight : bool;
  mutable probe_started : float;
  mutable probe_successes : int;
  mutable opens : int;
  mutable fast_rejects : int;
}

let create ?(config = default_config) ?(clock = Unix.gettimeofday) metrics =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if config.half_open_probes < 1 then
    invalid_arg "Breaker.create: half_open_probes must be >= 1";
  {
    config;
    metrics;
    clock;
    m = Mutex.create ();
    state = Closed;
    consecutive_failures = 0;
    probe_in_flight = false;
    probe_started = 0.0;
    probe_successes = 0;
    opens = 0;
    fast_rejects = 0;
  }

let locked t f =
  (* @acquires srv.breaker *)
  Obs.Lockdep.acquire "srv.breaker";
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.m;
      Obs.Lockdep.release "srv.breaker")
    f

(* 0 closed / 1 open / 2 half-open, the sys.metrics gauge encoding *)
let state_code = function Closed -> 0 | Open _ -> 1 | Half_open -> 2
let state_label = function Closed -> "closed" | Open _ -> "open" | Half_open -> "half_open"

let set_state_gauge t s =
  Obs.Metrics.set_gauge t.metrics "srv.breaker.state"
    (float_of_int (state_code s))

let state_name t = locked t (fun () -> state_label t.state)
let opens t = locked t (fun () -> t.opens)
let fast_rejects t = locked t (fun () -> t.fast_rejects)

let retry_after_ms ~now ~until =
  max 1 (int_of_float (Float.ceil ((until -. now) *. 1000.0)))

(* Admission check, called with no other lock held (before the
   scheduler sees the job).  [`Proceed] admits; [`Reject ms] is the
   fast path: answer Rejected now, retry after [ms]. *)
let admit t =
  let now = t.clock () in
  let verdict =
    locked t (fun () ->
        match t.state with
        | Closed -> `Proceed
        | Open { until } when now < until ->
            t.fast_rejects <- t.fast_rejects + 1;
            `Reject (retry_after_ms ~now ~until)
        | Open _ ->
            (* cooldown over: half-open, and this request is the probe *)
            t.state <- Half_open;
            t.probe_successes <- 0;
            t.probe_in_flight <- true;
            t.probe_started <- now;
            `Probe
        | Half_open ->
            (* a probe that neither succeeded nor failed (cancelled,
               shutdown race) times out after a cooldown, so half-open
               cannot wedge *)
            if
              t.probe_in_flight
              && now -. t.probe_started < t.config.cooldown_s
            then begin
              t.fast_rejects <- t.fast_rejects + 1;
              `Reject
                (retry_after_ms ~now ~until:(now +. t.config.cooldown_s /. 4.))
            end
            else begin
              t.probe_in_flight <- true;
              t.probe_started <- now;
              `Probe
            end)
  in
  match verdict with
  | `Proceed -> `Proceed
  | `Probe ->
      set_state_gauge t Half_open;
      `Proceed
  | `Reject ms ->
      Obs.Metrics.incr t.metrics "srv.breaker.fast_rejects";
      `Reject ms

let trip t ~now =
  t.state <- Open { until = now +. t.config.cooldown_s };
  t.consecutive_failures <- 0;
  t.probe_in_flight <- false;
  t.probe_successes <- 0;
  t.opens <- t.opens + 1

(* A failure signal: the scheduler rejected an admission, or an admitted
   job died of deadline expiry in the queue. *)
let record_failure t =
  let now = t.clock () in
  let opened =
    locked t (fun () ->
        match t.state with
        | Open _ -> false
        | Half_open ->
            (* the probe failed: straight back to open *)
            trip t ~now;
            true
        | Closed ->
            t.consecutive_failures <- t.consecutive_failures + 1;
            if t.consecutive_failures >= t.config.failure_threshold then begin
              trip t ~now;
              true
            end
            else false)
  in
  Obs.Metrics.incr t.metrics "srv.breaker.failures";
  if opened then begin
    Obs.Metrics.incr t.metrics "srv.breaker.opened";
    set_state_gauge t (Open { until = now })
  end

(* A success signal: an admitted job ran to completion. *)
let record_success t =
  let closed =
    locked t (fun () ->
        match t.state with
        | Closed ->
            t.consecutive_failures <- 0;
            false
        | Open _ -> false
        | Half_open ->
            t.probe_in_flight <- false;
            t.probe_successes <- t.probe_successes + 1;
            if t.probe_successes >= t.config.half_open_probes then begin
              t.state <- Closed;
              t.consecutive_failures <- 0;
              true
            end
            else false)
  in
  if closed then begin
    Obs.Metrics.incr t.metrics "srv.breaker.closed";
    set_state_gauge t Closed
  end
