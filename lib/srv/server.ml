(* The multi-session server: transports in, scheduler out.

   One server wraps one shared Softdb.t with

   - a {!Scheduler}: bounded queue + domain worker pool (admission
     control, deadlines, cancellation);
   - a {!Rwlock}: the single-writer rule;
   - a shared {!Core.Plan_cache} (LRU-bounded), so prepared plans cross
     sessions;
   - a session registry surfaced as the sys.sessions virtual table —
     a server can be asked about itself over its own wire protocol.

   Each connection gets a reader loop (a lightweight systhread — the
   CPU-heavy work happens on the scheduler's domains): it decodes
   frames, answers Hello/Ping/Cancel/Quit inline, and turns everything
   else into a scheduler job whose completion sends the response from
   whichever domain ran it.  Responses therefore interleave freely on
   the wire; the correlation id orders them for the client. *)

(* @guarded-by none: owned by the connection's reader loop thread *)
type conn_state = {
  conn : Transport.t;
  session : Session.t;
  mutable open_ : bool;
}

(* @guarded-by srv.server.registry *)
type t = {
  sdb : Core.Softdb.t;
  scheduler : Scheduler.t;
  rwlock : Rwlock.t;
  cache : Core.Plan_cache.t;
  metrics : Obs.Metrics.t;
  breaker : Breaker.t;
  default_deadline_ms : int;
  m : Mutex.t;
  mutable sessions : Session.t list; (* newest first, closed ones kept *)
  mutable next_session : int;
  mutable shutting_down : bool;
  mutable listener : Transport.listener option;
}

let locked t f =
  (* held during query execution too: the sys.sessions generator runs
     under the executing session's locks *)
  (* @acquires srv.server.registry while srv.session db.rwlock *)
  Obs.Lockdep.acquire "srv.server.registry";
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.m;
      Obs.Lockdep.release "srv.server.registry")
    f

let create ?workers ?(queue_capacity = 64) ?plan_cache_capacity
    ?(default_deadline_ms = 10_000) ?breaker_config sdb =
  let metrics = Core.Softdb.metrics sdb in
  let t =
    {
      sdb;
      scheduler = Scheduler.create ?workers ~queue_capacity metrics;
      rwlock = Rwlock.create ();
      cache = Core.Plan_cache.create ?capacity:plan_cache_capacity sdb;
      metrics;
      breaker = Breaker.create ?config:breaker_config metrics;
      default_deadline_ms;
      m = Mutex.create ();
      sessions = [];
      next_session = 0;
      shutting_down = false;
      listener = None;
    }
  in
  (* sys.sessions: the registry as a SQL view.  The generator runs during
     query execution on a worker; it takes only the registry mutex, never
     a lock the executing query already holds. *)
  Rel.Database.register_virtual (Core.Softdb.db sdb) ~name:"sys.sessions"
    ~schema:Obs.Sys_tables.sessions_schema (fun () ->
      List.rev_map Session.sys_row (locked t (fun () -> t.sessions)));
  (* partition-parallel queries fan their subtasks over this server's
     worker pool *)
  Scatter.install t.scheduler;
  t

let scheduler t = t.scheduler
let breaker t = t.breaker
let rwlock t = t.rwlock
let plan_cache t = t.cache
let sessions t = locked t (fun () -> List.rev t.sessions)
let softdb t = t.sdb

let new_session t =
  locked t (fun () ->
      t.next_session <- t.next_session + 1;
      let s =
        Session.make ~id:t.next_session ~sdb:t.sdb ~cache:t.cache
          ~metrics:t.metrics
      in
      t.sessions <- s :: t.sessions;
      Obs.Metrics.incr t.metrics "srv.sessions_opened";
      s)

let session_deadline t session =
  let ms =
    match Session.setting session "deadline_ms" with
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> t.default_deadline_ms)
    | None -> t.default_deadline_ms
  in
  if ms <= 0 then None (* 0 or negative disables the deadline *)
  else Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.0))

let send_response cs (response : Proto.response) =
  try cs.conn.Transport.send (Proto.response_to_line response)
  with Transport.Closed -> cs.open_ <- false

(* ---- the connection loop -------------------------------------------------- *)

let handle_inline t cs (req : Proto.request) =
  match req.Proto.payload with
  | Proto.Ping -> send_response cs { Proto.id = req.Proto.id; payload = Proto.Pong }
  | Proto.Hello { client } ->
      let payload =
        Session.handle ~rwlock:t.rwlock ~deadline:None cs.session
          (Proto.Hello { client })
      in
      send_response cs { Proto.id = req.Proto.id; payload }
  | Proto.Cancel { target } ->
      Session.mark_cancelled cs.session target;
      send_response cs
        {
          Proto.id = req.Proto.id;
          payload = Proto.Ok_msg (Printf.sprintf "cancelled #%d" target);
        }
  | Proto.Quit ->
      cs.open_ <- false;
      send_response cs { Proto.id = req.Proto.id; payload = Proto.Bye }
  | _ -> assert false

let submit_job t cs (req : Proto.request) =
  let session = cs.session in
  let deadline = session_deadline t session in
  let job =
    {
      Scheduler.session = Session.id session;
      req_id = req.Proto.id;
      enqueued_at = Unix.gettimeofday ();
      deadline;
      cancelled = (fun () -> Session.is_cancelled session req.Proto.id);
      run =
        (fun () ->
          let payload =
            Session.handle ~rwlock:t.rwlock ~deadline session req.Proto.payload
          in
          Breaker.record_success t.breaker;
          send_response cs { Proto.id = req.Proto.id; payload });
      expired =
        (fun code ->
          let message =
            match code with
            | Proto.Deadline_exceeded -> "deadline exceeded in queue"
            | Proto.Cancelled -> "cancelled"
            | Proto.Shutting_down -> "server shutting down"
            | _ -> "not executed"
          in
          (* an admitted job that died of queue wait is the overload
             signal; cancel and shutdown say nothing about load *)
          if code = Proto.Deadline_exceeded then
            Breaker.record_failure t.breaker;
          send_response cs
            {
              Proto.id = req.Proto.id;
              payload = Proto.Failed { code; message };
            });
    }
  in
  (* the breaker is the outer door: when open it answers without the
     job ever reaching the scheduler's queue *)
  match Breaker.admit t.breaker with
  | `Reject retry_after_ms ->
      send_response cs
        { Proto.id = req.Proto.id; payload = Proto.Rejected { retry_after_ms } }
  | `Proceed -> (
      match Scheduler.submit t.scheduler job with
      | `Admitted -> ()
      | `Rejected retry_after_ms ->
          Breaker.record_failure t.breaker;
          send_response cs
            {
              Proto.id = req.Proto.id;
              payload = Proto.Rejected { retry_after_ms };
            }
      | `Shutting_down ->
          send_response cs
            {
              Proto.id = req.Proto.id;
              payload =
                Proto.Failed
                  {
                    code = Proto.Shutting_down;
                    message = "server shutting down";
                  };
            })

(* Serve one connection to completion: decode, dispatch, tear down.
   Blocking — run it on its own thread ([serve_connection_async]). *)
let serve_connection t conn =
  let session = new_session t in
  let cs = { conn; session; open_ = true } in
  let rec loop () =
    if cs.open_ then
      match conn.Transport.recv () with
      | None -> ()
      | Some line ->
          (match Proto.request_of_line line with
          | exception Proto.Protocol_error m ->
              (* a malformed frame means this client's stream is out of
                 sync — continuing to parse it would misattribute every
                 later frame.  Final error frame, then disconnect this
                 session only; siblings are untouched (each connection
                 has its own reader loop and session). *)
              Obs.Metrics.incr t.metrics "srv.protocol_errors";
              send_response cs
                {
                  Proto.id = 0;
                  payload =
                    Proto.Failed { code = Proto.Parse_error; message = m };
                };
              cs.open_ <- false
          | req -> (
              match req.Proto.payload with
              | Proto.Ping | Proto.Hello _ | Proto.Cancel _ | Proto.Quit ->
                  handle_inline t cs req
              | _ ->
                  if locked t (fun () -> t.shutting_down) then
                    send_response cs
                      {
                        Proto.id = req.Proto.id;
                        payload =
                          Proto.Failed
                            {
                              code = Proto.Shutting_down;
                              message = "server shutting down";
                            };
                      }
                  else submit_job t cs req));
          loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* the session's queued jobs answer Session_closed once [close]
         marks it; an open transaction rolls back and the write lock is
         surrendered, so a dropped client never wedges the engine *)
      Session.close ~rwlock:t.rwlock session;
      Obs.Metrics.incr t.metrics "srv.sessions_closed";
      conn.Transport.close ())
    loop

let serve_connection_async t conn =
  Thread.create (fun () -> serve_connection t conn) ()

(* ---- TCP ------------------------------------------------------------------ *)

let listen_tcp ?host t ~port =
  let listener = Transport.listen ?host ~port () in
  locked t (fun () -> t.listener <- Some listener);
  let rec accept_loop () =
    match Transport.accept listener with
    | conn ->
        ignore (serve_connection_async t conn);
        accept_loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener closed: shutdown *)
  in
  (Transport.port listener, accept_loop)

let shutdown t =
  let listener =
    locked t (fun () ->
        t.shutting_down <- true;
        let l = t.listener in
        t.listener <- None;
        l)
  in
  Option.iter Transport.close_listener listener;
  Scheduler.shutdown t.scheduler
