(** A bounded job queue feeding a pool of OCaml 5 domains.

    [submit] applies admission control: a full queue rejects immediately
    with a retry-after hint scaled to the backlog.  Deadlines and
    cancellation are checked when a worker dequeues a job — an expired
    or cancelled job never starts, and [expired] is invoked instead of
    [run] so the client still gets an answer.  The scheduler is
    lock-agnostic: jobs do their own locking ({!Rwlock}), the pool is a
    pure execution resource.

    Metrics (into the registry passed at creation): srv.jobs_admitted /
    srv.jobs_rejected / srv.jobs_completed / srv.jobs_expired /
    srv.jobs_deadline_killed (the subset of expiries caused by queue
    wait, the overload signal {!Breaker} watches) / srv.jobs_cancelled /
    srv.jobs_requeued / srv.job_errors counters, the srv.queue_depth
    gauge, and srv.queue_wait / srv.query_latency wall-clock timings. *)

exception Would_block
(** Raised by a job's [run] to yield its worker: the job returns to the
    queue tail and is retried later (deadline and cancellation
    re-checked at each dequeue).  {!Session} raises it when a lock
    cannot be taken within a short slice — blocking the worker instead
    would let a burst of transactions convoy the whole pool behind the
    write lock. *)

type job = {
  session : int;
  req_id : int;
  enqueued_at : float;
  deadline : float option;  (** absolute Unix time *)
  cancelled : unit -> bool;  (** checked at dequeue *)
  run : unit -> unit;
  expired : Proto.error_code -> unit;
      (** called instead of [run] on deadline / cancel / shutdown *)
}

type t

val default_workers : unit -> int
(** [max 2 (min 4 (recommended_domain_count - 1))]. *)

val create : ?workers:int -> ?queue_capacity:int -> Obs.Metrics.t -> t
(** Spawns the worker domains ([default_workers] when unspecified;
    queue capacity 64).  Raises [Invalid_argument] on capacity < 1. *)

val workers : t -> int
val queue_depth : t -> int

val domains_used : t -> int
(** Distinct domains that have executed at least one job — the
    fan-out witness the concurrency tests assert on. *)

val submit :
  t -> job -> [ `Admitted | `Rejected of int | `Shutting_down ]
(** [`Rejected retry_after_ms] when the queue is at capacity. *)

val submit_internal : t -> job -> bool
(** Enqueue server-generated work (scatter helper jobs), skipping
    admission control — the submitting query already passed it and
    holds a worker.  [false] when shutting down; the caller must then
    run the work itself. *)

val current_deadline : unit -> float option
val current_cancelled : unit -> unit -> bool
(** Deadline / cancellation of the job currently running on this
    domain ([None] / const-false outside a worker) — how the scatter
    runner inherits the submitting query's limits. *)

val shutdown : t -> unit
(** Stop admitting, expire whatever is still queued (each job's
    [expired] runs with {!Proto.Shutting_down}), join the domains. *)
