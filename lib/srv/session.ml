(* A server session: one client's private state over the shared engine.

   Each session owns its transaction state, its prepared-statement
   handles, its settings, and its traffic counters; everything engine-
   shared (the Softdb.t, the plan cache, the metrics registry) arrives
   by reference and is protected by its own discipline — the plan cache
   and registries by internal mutexes, data/catalog/WAL by the
   single-writer lock ({!Rwlock}).

   A session's requests can be pipelined, so two of its jobs may land on
   two worker domains at once; the per-session mutex serializes them,
   which is exactly a session's contract (statements of one session
   execute in order of admission, sessions interleave freely).

   The locking discipline, uniform across every request:
   session mutex → reader/writer lock → engine.  Reads take the shared
   side, mutating statements the exclusive side, and BEGIN takes the
   exclusive side *and keeps it* until COMMIT/ROLLBACK — the
   transaction's statements run under the ownership already held (the
   lock is session-owned and reentrant), so WAL appends and SC catalog
   transitions stay serialized while plain reads fan out between
   transactions.

   Canonical lock-rank table, machine-read by the static lock-order
   lint (Check.Lock_lint; see DESIGN.md §6 and §10).  Locks may only be
   acquired in strictly increasing rank order; every acquisition site
   declares what it takes and what is held with an [@acquires] (or
   [@waits]) annotation, and the lint fails the build on a rank
   inversion or an unannotated acquisition.  The runtime witness
   ({!Obs.Lockdep}) checks the same table against the acquisition
   orders the server actually exhibits; a rank the racecheck traffic
   cannot exercise carries [lockdep-waive] with the reason beside it.

   [srv.scheduler.queue] ranks *above* [db.rwlock]: the scatter runner
   ({!Scatter}) submits partition subtasks to the pool from inside a
   running query, i.e. while the session and read locks are held.
   Nothing acquires session or engine locks while holding the queue
   mutex (workers release it before running a job), so the high rank is
   free.  [srv.scatter.batch] sits just above it: batch bookkeeping
   happens under the same held set plus nothing else.

   [srv.breaker] is a leaf: the circuit breaker ({!Breaker}) decides
   admit/reject with nothing else held and acquires nothing while held
   (its metrics tick after the mutex is released).

   [idx.lifecycle] guards one online index build's bookkeeping
   ({!Idx.Lifecycle}): the builder takes it per batch while holding the
   session and write locks, monitors take it with nothing else held to
   read progress, so it sits just above [db.rwlock].

   @lock-order srv.transport.chan rank=10 lockdep-waive (in-memory pair transport; racecheck traffic is TCP)
   @lock-order srv.transport.write rank=12
   @lock-order srv.breaker rank=15
   @lock-order srv.session rank=20
   @lock-order db.rwlock rank=30 reentrant
   @lock-order idx.lifecycle rank=32
   @lock-order srv.scheduler.queue rank=35
   @lock-order srv.scatter.batch rank=37 lockdep-waive (scatter runs only against partitioned tables)
   @lock-order srv.rwlock.state rank=40
   @lock-order srv.server.registry rank=50
   @lock-order core.plan_cache rank=60
   @lock-order core.recalibration rank=70 lockdep-waive (needs accumulated SSC feedback to fire)
   @lock-order obs.metrics rank=80
   @lock-order obs.query_log rank=85
   @lock-order obs.lockdep rank=95 lockdep-waive (the witness's own mutex is not self-tracked)

   Prepared statements share plans across sessions: the cache key is the
   SQL text itself, so when session B prepares a query session A already
   compiled, B's handle binds to the same entry (a shared-hit metric
   ticks instead of a second optimization). *)

type state = Idle | Active | Closed

(* @guarded-by srv.session — the traffic counters are additionally read
   lock-free by [sys_row], a deliberate stale-tolerant snapshot *)
type t = {
  id : int;
  sdb : Core.Softdb.t;
  cache : Core.Plan_cache.t;
  metrics : Obs.Metrics.t;
  lock : Mutex.t;
  mutable name : string;
  mutable state : state;
  mutable txn : Core.Txn.t option;
  mutable settings : (string * string) list;
  mutable queries : int; (* read statements executed *)
  mutable writes : int; (* mutating statements executed *)
  mutable errors : int;
  prepared : (string, string) Hashtbl.t; (* handle -> shared cache key *)
  cancelled : (int, unit) Hashtbl.t; (* request ids cancelled in queue *)
}

let make ~id ~sdb ~cache ~metrics =
  {
    id;
    sdb;
    cache;
    metrics;
    lock = Mutex.create ();
    name = Printf.sprintf "session-%d" id;
    state = Idle;
    txn = None;
    settings = [];
    queries = 0;
    writes = 0;
    errors = 0;
    prepared = Hashtbl.create 8;
    cancelled = Hashtbl.create 8;
  }

let locked t f =
  (* @acquires srv.session *)
  Obs.Lockdep.acquire "srv.session";
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      Obs.Lockdep.release "srv.session")
    f

let id t = t.id
let name t = locked t (fun () -> t.name)
let in_txn t = locked t (fun () -> t.txn <> None)

let setting t key =
  locked t (fun () -> List.assoc_opt key t.settings)

let mark_cancelled t target =
  locked t (fun () -> Hashtbl.replace t.cancelled target ())

let is_cancelled t req_id =
  locked t (fun () -> Hashtbl.mem t.cancelled req_id)

let state_string t =
  match t.state with Idle -> "idle" | Active -> "active" | Closed -> "closed"

(* The sys.sessions row; counters are read without the session mutex —
   they are word-sized and a snapshot that is one query stale is fine
   for an observability view. *)
let sys_row t =
  Obs.Sys_tables.session_row ~session_id:t.id ~name:t.name
    ~state:(state_string t) ~in_txn:(t.txn <> None) ~queries:t.queries
    ~writes:t.writes ~errors:t.errors ~prepared:(Hashtbl.length t.prepared)

(* ---- statement execution -------------------------------------------------- *)

let failed code fmt =
  Printf.ksprintf (fun message -> Proto.Failed { code; message }) fmt

(* Engine exceptions, folded to protocol errors the same way the CLI
   folds them to stderr lines.  The final catch-all keeps the protocol
   invariant that every request gets a response: an exception this list
   missed must not leave the client waiting forever.  [Would_block] is
   the one exception that must escape — it is the scheduler's requeue
   signal, not an answer. *)
let guard_engine f =
  try f () with
  | Sqlfe.Parser.Parse_error m -> failed Proto.Parse_error "parse error: %s" m
  | Sqlfe.Lexer.Lex_error (m, pos) ->
      failed Proto.Parse_error "lex error at %d: %s" pos m
  | Rel.Checker.Constraint_violation v ->
      failed Proto.Exec_error "%s" (Fmt.str "%a" Rel.Checker.pp_violation v)
  | Rel.Database.Catalog_error m | Core.Softdb.Error m ->
      failed Proto.Exec_error "%s" m
  | Rel.Table.Row_error m -> failed Proto.Exec_error "row error: %s" m
  | Rel.Expr.Binding.Unresolved r ->
      failed Proto.Exec_error "unknown column: %s"
        (Fmt.str "%a" Rel.Expr.pp_col_ref r)
  | Opt.Planner.Unplannable m -> failed Proto.Exec_error "cannot plan: %s" m
  | Opt.Logical.Unsupported m -> failed Proto.Exec_error "unsupported: %s" m
  | Core.Txn.Transaction_error m -> failed Proto.Txn_error "%s" m
  | Core.Plan_cache.No_such_plan m ->
      failed Proto.Exec_error "no such prepared plan: %s" m
  | Transport.Closed -> failed Proto.Session_closed "connection closed"
  | Scheduler.Would_block as e -> raise e
  | exn -> failed Proto.Exec_error "internal error: %s" (Printexc.to_string exn)

(* Tuple.t is transparently Value.t array, so rows cross the protocol
   boundary without copying. *)
let result_to_payload (r : Exec.Executor.result) =
  Proto.Result_set
    { columns = r.Exec.Executor.columns; rows = r.Exec.Executor.rows }

let outcome_to_payload = function
  | Core.Softdb.Rows r -> result_to_payload r
  | Core.Softdb.Affected n -> Proto.Affected n
  | Core.Softdb.Report report ->
      Proto.Explained (Fmt.str "%a" Opt.Explain.pp report)
  | Core.Softdb.Analyzed a ->
      Proto.Explained (Fmt.str "%a" Opt.Explain.pp_analysis a)
  | Core.Softdb.Done msg -> Proto.Ok_msg msg

let is_read_statement = function
  | Sqlfe.Ast.Query _ | Sqlfe.Ast.Explain _ | Sqlfe.Ast.Explain_analyze _ ->
      true
  | _ -> false

(* Lock acquisition is sliced: try for [lock_slice_s], and on contention
   yield the worker ({!Scheduler.Would_block} sends the job back to the
   queue) instead of blocking it — a worker pool whose workers all wait
   on the write lock would starve the lock holder's own statements.
   Only once the request's real [deadline] passes does the wait fold
   into a Deadline_exceeded answer. *)
let lock_slice_s = 0.01

let slice_deadline deadline =
  let slice = Unix.gettimeofday () +. lock_slice_s in
  match deadline with Some d when d < slice -> d | _ -> slice

let lock_timed_out ~deadline ~write =
  match deadline with
  | Some d when Unix.gettimeofday () > d ->
      (* callers count the Failed payload into t.errors *)
      failed Proto.Deadline_exceeded "could not acquire %s lock in time"
        (if write then "write" else "read")
  | _ -> raise Scheduler.Would_block

let under_lock ~rwlock ~deadline t ~write f =
  let attempt = slice_deadline deadline in
  let locked_run =
    (* @acquires db.rwlock while srv.session *)
    if write then Rwlock.write_locked ~deadline:attempt rwlock ~session:t.id f
    else Rwlock.read_locked ~deadline:attempt rwlock ~session:t.id f
  in
  match locked_run with
  | Some payload -> payload
  | None -> lock_timed_out ~deadline ~write

(* A successful CREATE INDEX ... ONLINE returned after registering only
   the write-only shell; the session now drives the backfill itself —
   one exclusive-lock acquisition per batch, so concurrent readers
   interleave between batches, which is the ONLINE promise.  The request
   deadline bounds the whole build: on expiry the index is demoted
   (never an error — traffic continues against the write-only tree), and
   a unique violation found mid-backfill demotes the same way. *)
let drive_online_build ~rwlock ~deadline t index_name =
  let db = Core.Softdb.db t.sdb in
  match Rel.Database.find_index_by_name db index_name with
  | Some idx when Rel.Index.state idx = Rel.Index.Write_only -> (
      let build = Idx.Lifecycle.start db idx in
      let expired () =
        match deadline with
        | Some d -> Unix.gettimeofday () > d
        | None -> false
      in
      let rec drain () =
        if expired () then
          Idx.Lifecycle.demote build "online build deadline exceeded"
        else
          let stepped =
            (* @acquires db.rwlock while srv.session *)
            Rwlock.write_locked ~deadline:(slice_deadline deadline) rwlock
              ~session:t.id (fun () -> Idx.Lifecycle.step build)
          in
          match stepped with
          | Some true -> drain ()
          | Some false -> ()
          | None -> drain () (* lock contention: retry this batch *)
      in
      drain ();
      match Idx.Lifecycle.finish build with
      | Idx.Lifecycle.Built ->
          Obs.Metrics.incr t.metrics "idx.online_builds";
          Proto.Ok_msg
            (Printf.sprintf "created index %s online (%d rows backfilled)"
               index_name
               (Idx.Lifecycle.progress build).Idx.Lifecycle.p_inserted)
      | Idx.Lifecycle.Demoted_build reason ->
          Obs.Metrics.incr t.metrics "idx.online_demotions";
          Proto.Ok_msg
            (Printf.sprintf "index %s demoted during online build: %s"
               index_name reason))
  | Some _ | None ->
      (* replayed/raced to another state: nothing left to drive *)
      Proto.Ok_msg (Printf.sprintf "created index %s" index_name)

let exec_sql ~rwlock ~deadline t sql =
  guard_engine (fun () ->
      let stmt = Sqlfe.Parser.parse_statement sql in
      let write = not (is_read_statement stmt) in
      let payload =
        under_lock ~rwlock ~deadline t ~write (fun () ->
            guard_engine (fun () ->
                outcome_to_payload (Core.Softdb.exec_statement t.sdb stmt)))
      in
      let payload =
        match (stmt, payload) with
        | ( Sqlfe.Ast.Create_index { index_name; online = true; _ },
            Proto.Ok_msg _ ) ->
            guard_engine (fun () ->
                drive_online_build ~rwlock ~deadline t index_name)
        | _ -> payload
      in
      (match payload with
      | Proto.Failed _ -> t.errors <- t.errors + 1
      | _ -> if write then t.writes <- t.writes + 1 else t.queries <- t.queries + 1);
      payload)

(* Prepared plans are shared across sessions by SQL text: preparing a
   query someone else already compiled binds to the same entry. *)
let prepare ~rwlock ~deadline t ~handle sql =
  guard_engine (fun () ->
      let key = "sql:" ^ sql in
      let payload =
        under_lock ~rwlock ~deadline t ~write:false (fun () ->
            guard_engine (fun () ->
                let _, created =
                  Core.Plan_cache.find_or_prepare t.cache ~name:key sql
                in
                if not created then
                  Obs.Metrics.incr t.metrics "plan_cache.shared_hits";
                Hashtbl.replace t.prepared handle key;
                Proto.Ok_msg (Printf.sprintf "prepared %s" handle)))
      in
      payload)

let execute_prepared ~rwlock ~deadline t handle =
  match Hashtbl.find_opt t.prepared handle with
  | None -> failed Proto.Exec_error "no prepared handle %s in this session" handle
  | Some key ->
      guard_engine (fun () ->
          let payload =
            under_lock ~rwlock ~deadline t ~write:false (fun () ->
                guard_engine (fun () ->
                    (* re-prepare transparently if the shared entry was
                       LRU-evicted since this session bound the handle *)
                    (match Core.Plan_cache.find t.cache key with
                    | Some _ -> ()
                    | None ->
                        ignore
                          (Core.Plan_cache.prepare t.cache ~name:key
                             (String.sub key 4 (String.length key - 4))));
                    result_to_payload (Core.Plan_cache.execute t.cache key)))
          in
          (match payload with
          | Proto.Failed _ -> t.errors <- t.errors + 1
          | _ -> t.queries <- t.queries + 1);
          payload)

(* BEGIN takes the write lock and keeps it: the transaction's later
   statements run under this ownership, and COMMIT/ROLLBACK release it.
   A second BEGIN in the same session is an error (no nesting). *)
let begin_txn ~rwlock ~deadline t =
  if t.txn <> None then failed Proto.Txn_error "already in a transaction"
  else if
    (* @acquires db.rwlock while srv.session *)
    not
      (Rwlock.acquire_write ~deadline:(slice_deadline deadline) rwlock
         ~session:t.id)
  then lock_timed_out ~deadline ~write:true
  else begin
    (* the hold spans BEGIN..COMMIT across worker threads, so the
       witness records the acquisition without a per-thread hold *)
    Obs.Lockdep.pulse "db.rwlock";
    match guard_engine (fun () ->
        let txn = Core.Txn.begin_ t.sdb in
        t.txn <- Some txn;
        Proto.Ok_msg (Printf.sprintf "transaction %d started" (Core.Txn.id txn)))
    with
    | Proto.Failed _ as f ->
        Rwlock.release_write rwlock ~session:t.id;
        t.errors <- t.errors + 1;
        f
    | ok ->
        t.writes <- t.writes + 1;
        ok
  end

let end_txn ~rwlock t ~commit =
  match t.txn with
  | None -> failed Proto.Txn_error "no transaction in progress"
  | Some txn ->
      let payload =
        guard_engine (fun () ->
            (if commit then Core.Txn.commit txn else Core.Txn.rollback txn);
            Proto.Ok_msg
              (Printf.sprintf "transaction %d %s" (Core.Txn.id txn)
                 (if commit then "committed" else "rolled back")))
      in
      (* however the commit/rollback went, the transaction is over and
         the engine must not stay wedged behind this session *)
      t.txn <- None;
      Rwlock.release_write rwlock ~session:t.id;
      (match payload with
      | Proto.Failed _ -> t.errors <- t.errors + 1
      | _ -> t.writes <- t.writes + 1);
      payload

(* ---- request dispatch ------------------------------------------------------ *)

(* Runs on a worker domain, under this session's mutex: one session's
   pipelined jobs execute one at a time, in admission order. *)
let handle ~rwlock ~deadline t (payload : Proto.request_payload) :
    Proto.response_payload =
  locked t (fun () ->
      if t.state = Closed then
        failed Proto.Session_closed "session is closed"
      else begin
        t.state <- Active;
        Fun.protect
          ~finally:(fun () -> if t.state = Active then t.state <- Idle)
          (fun () ->
            match payload with
            | Proto.Hello { client } ->
                if client <> "" then t.name <- client;
                Proto.Hello_ok { session = t.id }
            | Proto.Statement sql -> exec_sql ~rwlock ~deadline t sql
            | Proto.Prepare { handle; sql } ->
                prepare ~rwlock ~deadline t ~handle sql
            | Proto.Execute { handle } ->
                execute_prepared ~rwlock ~deadline t handle
            | Proto.Begin_txn -> begin_txn ~rwlock ~deadline t
            | Proto.Commit_txn -> end_txn ~rwlock t ~commit:true
            | Proto.Rollback_txn -> end_txn ~rwlock t ~commit:false
            | Proto.Set { key; value } ->
                t.settings <- (key, value) :: List.remove_assoc key t.settings;
                Proto.Ok_msg (Printf.sprintf "set %s" key)
            | Proto.Cancel _ | Proto.Ping | Proto.Quit ->
                (* handled inline by the connection loop; reaching a
                   worker means a server bug, not a client error *)
                failed Proto.Exec_error "request cannot be queued")
      end)

(* Session teardown, called from the connection loop after Quit or EOF:
   roll back an open transaction, surrender any write ownership, mark
   closed so still-queued jobs answer Session_closed. *)
let close ~rwlock t =
  locked t (fun () ->
      if t.state <> Closed then begin
        (match t.txn with
        | Some txn ->
            (try Core.Txn.rollback txn
             with _ -> Core.Txn.abandon_current ());
            t.txn <- None
        | None -> ());
        Rwlock.forfeit_write rwlock ~session:t.id;
        t.state <- Closed
      end)
