(** Connection transports: how protocol frames move.

    A frame is one protocol line (no newline).  [send] may be called
    from any domain or thread — workers answer out of order — while
    [recv] expects a single consumer, the connection's reader loop. *)

type t = {
  send : string -> unit;  (** Raises {!Closed} on a closed connection. *)
  recv : unit -> string option;  (** [None] at end of stream. *)
  close : unit -> unit;  (** Idempotent. *)
  peer : string;
}

exception Closed

val pipe : unit -> t * t
(** An in-memory duplex: [(client_end, server_end)].  Deterministic, no
    descriptors — the concurrency tests run whole client/server
    topologies in one process with it.  Closing either end closes
    both. *)

(** {1 TCP} *)

type listener

val listen : ?host:string -> port:int -> unit -> listener
(** Bind and listen (default host 127.0.0.1).  [port 0] picks an
    ephemeral port; read it back with {!port}. *)

val port : listener -> int
val accept : listener -> t
val close_listener : listener -> unit
val connect : ?host:string -> port:int -> unit -> t
