(** The multi-session server.

    Wraps one shared {!Core.Softdb.t} with a {!Scheduler} (domain worker
    pool + admission control), the single-writer {!Rwlock}, a shared
    LRU-bounded {!Core.Plan_cache}, and a session registry surfaced as
    the sys.sessions virtual table.

    Connections speak the {!Proto} wire protocol over any {!Transport}.
    Each connection's reader loop decodes frames, answers
    Hello/Ping/Cancel/Quit inline, and submits everything else to the
    scheduler; responses are sent from whichever worker domain ran the
    job, interleaving freely on the wire (correlation ids order them). *)

type t

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?plan_cache_capacity:int ->
  ?default_deadline_ms:int ->
  ?breaker_config:Breaker.config ->
  Core.Softdb.t ->
  t
(** Spawns the worker domains immediately.  [default_deadline_ms]
    (default 10s) bounds each request's queue wait + execution; a
    session overrides it with [SET deadline_ms <n>] ([<= 0] disables).
    [breaker_config] tunes the overload circuit breaker
    ({!Breaker.default_config} otherwise), which fronts the scheduler:
    when open, requests are answered [Rejected] with an honest
    retry_after_ms without ever touching the queue.  Registers the
    sys.sessions virtual table on the database. *)

val serve_connection : t -> Transport.t -> unit
(** Serve one connection to completion (blocking): opens a session,
    loops on [recv], tears the session down on Quit/EOF — rolling back
    an open transaction and surrendering write ownership, so a dropped
    client never wedges the engine.  A malformed frame
    ({!Proto.Protocol_error}) gets a final [Failed Parse_error] frame
    and disconnects {e this} session only — the stream is out of sync,
    but sibling connections are untouched. *)

val serve_connection_async : t -> Transport.t -> Thread.t
(** [serve_connection] on its own thread. *)

val listen_tcp : ?host:string -> t -> port:int -> int * (unit -> unit)
(** [listen_tcp t ~port] binds (port 0 picks an ephemeral one) and
    returns [(actual_port, accept_loop)].  Run [accept_loop ()] on the
    thread that should block accepting connections; it returns when
    {!shutdown} closes the listener. *)

val shutdown : t -> unit
(** Stop accepting, close the listener, drain the scheduler (queued
    jobs answer [Shutting_down]) and join the worker domains. *)

(** {1 Introspection (tests, bench, CLI)} *)

val scheduler : t -> Scheduler.t
val breaker : t -> Breaker.t
val rwlock : t -> Rwlock.t
val plan_cache : t -> Core.Plan_cache.t
val sessions : t -> Session.t list
val softdb : t -> Core.Softdb.t
