(* The scatter-batch protocol: a fixed array of subtasks, each executed
   exactly once by whoever claims it — a pool worker that picked up a
   helper job, or the submitting domain stealing work while it waits.

   Claims are handed out through a cursor under the batch mutex, so a
   subtask can never run twice; outcomes are recorded per index and the
   last finisher broadcasts the latch.  The submitter's protocol
   ([drain] then [wait]) is deadlock-free under pool saturation by
   construction: once [drain] returns, every subtask has been *claimed*,
   and the only claims the submitter can be waiting on are subtasks
   actively running on other domains — helper jobs that expired or were
   never scheduled simply found nothing left to claim.

   The mutex is only ever held for cursor/outcome bookkeeping, never
   while a subtask runs. *)

(* @guarded-by srv.scatter.batch *)
type t = {
  tasks : (unit -> unit) array;
  outcomes : exn option array;
  mutable cursor : int; (* next unclaimed index *)
  mutable unfinished : int;
  m : Mutex.t;
  finished : Condition.t;
}

let create tasks =
  {
    tasks;
    outcomes = Array.make (Array.length tasks) None;
    cursor = 0;
    unfinished = Array.length tasks;
    m = Mutex.create ();
    finished = Condition.create ();
  }

let size t = Array.length t.tasks

let locked t f =
  (* @acquires srv.scatter.batch while srv.session db.rwlock *)
  Obs.Lockdep.acquire "srv.scatter.batch";
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.m;
      Obs.Lockdep.release "srv.scatter.batch")
    f

let claim t =
  locked t (fun () ->
      if t.cursor >= Array.length t.tasks then None
      else begin
        let i = t.cursor in
        t.cursor <- i + 1;
        Some i
      end)

let run t i =
  let outcome = try t.tasks.(i) (); None with e -> Some e in
  locked t (fun () ->
      t.outcomes.(i) <- outcome;
      t.unfinished <- t.unfinished - 1;
      if t.unfinished = 0 then Condition.broadcast t.finished)

(* claim-and-run until no subtask is unclaimed *)
let drain t =
  let rec go () =
    match claim t with
    | Some i ->
        run t i;
        go ()
    | None -> ()
  in
  go ()

let wait t =
  locked t (fun () ->
      while t.unfinished > 0 do
        (* @waits srv.scatter.batch *)
        Condition.wait t.finished t.m
      done);
  Array.copy t.outcomes
