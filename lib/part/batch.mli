(** The scatter-batch protocol: claim-flag work distribution for
    partition-parallel subtasks.

    A batch is a fixed array of subtasks, each run exactly once by
    whoever claims it.  The intended use ({!Srv.Scatter}) is: the
    submitter offers helper jobs to the worker pool, then calls
    {!drain} — stealing unclaimed subtasks onto its own domain — and
    finally {!wait}s for the claims still running elsewhere.  That order
    makes the protocol deadlock-free under pool saturation: a helper
    job that never runs just leaves its subtask for the submitter.

    The batch mutex ([srv.scatter.batch] in the lock-order table) only
    guards claim/outcome bookkeeping; subtasks run outside it. *)

type t

val create : (unit -> unit) array -> t
val size : t -> int

val claim : t -> int option
(** Hand out the next unclaimed subtask index, [None] when all are
    claimed. *)

val run : t -> int -> unit
(** Execute a claimed subtask, recording its outcome ([Some exn] if it
    raised); the last finisher releases {!wait}. Call exactly once per
    claimed index. *)

val drain : t -> unit
(** Claim and run subtasks until none are unclaimed. *)

val wait : t -> exn option array
(** Block until every subtask has finished; per-index outcomes
    ([None] = completed normally). *)
