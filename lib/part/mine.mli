(** Mining partition-domain soft constraints.

    For each segment of a partitioned table, the observed [[min, max]]
    band of the partition column over the segment's current rows — a
    {e tightened} version of the routing constraint, exact when mined
    and overturnable by later mutations.  The caller installs the
    candidates as [Part_stmt] soft constraints
    ({!Core.Softdb.mine_partition_domains}). *)

open Rel

type candidate = {
  partition : int;
  pred : Expr.pred;  (** over the partition column, unqualified *)
  seg_rows : int;  (** segment size when mined *)
}

val domains : Database.t -> table:string -> candidate list
(** One candidate per non-empty segment with at least one non-NULL
    partition-column value, ascending by partition index.  [[]] when the
    table is not partitioned. *)

val pp_candidate : Format.formatter -> candidate -> unit
