(* Mining partition-domain statements: per-segment characterizations of
   the partition column, tightened against the segment's actual rows.

   The routing constraint ({!Rel.Partition.constraint_pred}) is implied
   by the partitioning itself and holds forever; what makes a
   partition-domain SC interesting to the optimizer is the *gap* between
   the declared bound and the data — a segment declared [0, 1000) whose
   rows all fall in [0, 120] contradicts many more query predicates than
   its declaration does.  So the miner scans each segment's members and
   emits the observed [min, max] of the partition column as a BETWEEN
   statement.  Like every mined SC, the statement is absolute *now* and
   overturnable later: an out-of-band insert into the gap flips it to
   Violated and any plan guarded on it falls back.

   Hash segments get the same treatment — a hash bucket has no interval
   shape by declaration, so a mined band is the only interval knowledge
   the optimizer can ever have about it. *)

open Rel

type candidate = {
  partition : int;
  pred : Expr.pred;  (** over the partition column, unqualified *)
  seg_rows : int;  (** segment size when mined *)
}

(* Observed [min, max] of the partition column over one segment, NULLs
   skipped (a NULL routes structurally and satisfies no interval; CHECK
   semantics pass it through as UNKNOWN). *)
let segment_band tbl col_index part i =
  List.fold_left
    (fun acc rid ->
      match Table.get tbl rid with
      | None -> acc
      | Some row ->
          let v = Tuple.get row col_index in
          if Value.is_null v then acc
          else
            match acc with
            | None -> Some (v, v)
            | Some (lo, hi) ->
                Some
                  ( (if Value.compare_total v lo < 0 then v else lo),
                    if Value.compare_total v hi > 0 then v else hi ))
    None
    (Partition.members part i)

let domains db ~table =
  match Database.partitioning db table with
  | None -> []
  | Some part ->
      let tbl = Database.table_exn db table in
      let col = Partition.column part in
      let col_index = Schema.index_exn (Table.schema tbl) col in
      let cands = ref [] in
      for i = Partition.count part - 1 downto 0 do
        match segment_band tbl col_index part i with
        | None -> () (* empty, or all-NULL: nothing to tighten *)
        | Some (lo, hi) ->
            cands :=
              {
                partition = i;
                pred =
                  Expr.Between (Expr.column col, Expr.const lo, Expr.const hi);
                seg_rows = Partition.rows part i;
              }
              :: !cands
      done;
      !cands

let pp_candidate ppf c =
  Fmt.pf ppf "partition %d (%d rows): %a" c.partition c.seg_rows Expr.pp_pred
    c.pred
