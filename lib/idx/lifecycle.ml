(* Online index build: the lifecycle driver behind CREATE INDEX ... ONLINE.

   The shape follows fdb-record-layer's online indexer.  The index shell
   is registered in the catalog *before* the build starts, so from that
   moment every mutation maintains it (Write_only).  The build then walks
   the rids that existed at start time — the watermark — in bounded
   batches, inserting each surviving row idempotently.  Rows born after
   the shell (rid >= watermark) are covered by maintenance alone, and
   rows the backfill races with are deduplicated per (key, rid) inside
   {!Rel.Index}, so when the cursor passes the watermark the tree holds
   exactly the live rows and the index can be promoted to Readable.

   Batching is the concurrency story: each {!step} is meant to run under
   the owner's exclusive lock (the server takes the db write lock per
   batch), and readers interleave between batches.  The driver record
   itself is guarded by a small internal mutex — lock rank
   [idx.lifecycle], declared in lib/srv/session.ml — so another domain
   (loadgen's build monitor, sys views) can observe {!progress} and
   {!outcome} while the builder steps.

   A unique violation discovered mid-backfill demotes the index rather
   than failing the writer: the promise CREATE INDEX ONLINE makes is
   that it never blocks or breaks foreground traffic. *)

open Rel

type outcome = Built | Demoted_build of string

(* @guarded-by idx.lifecycle *)
type t = {
  db : Database.t;
  index : Index.t;
  table : Table.t;
  watermark : Table.rid;
      (* rids >= watermark were born after the shell and are covered by
         the maintenance hooks; the backfill stops here *)
  batch : int;
  lock : Mutex.t; (* guards the mutable build bookkeeping below *)
  mutable cursor : Table.rid; (* next rid to visit *)
  mutable scanned : int;
  mutable inserted : int;
  mutable outcome : outcome option;
}

let locked t f =
  (* @acquires idx.lifecycle while srv.session db.rwlock *)
  Obs.Lockdep.acquire "idx.lifecycle";
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      Obs.Lockdep.release "idx.lifecycle")
    f

type progress = {
  p_cursor : int;
  p_watermark : int;
  p_scanned : int;
  p_inserted : int;
  p_state : Index.state;
}

exception Lifecycle_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Lifecycle_error s)) fmt

let start ?(batch = 256) db index =
  (match Index.state index with
  | Write_only -> ()
  | s ->
      error "index %s: cannot start build from state %s" (Index.name index)
        (Index.state_to_string s));
  if batch <= 0 then error "index %s: batch size must be positive"
      (Index.name index);
  let table = Database.table_exn db (Index.table_name index) in
  let watermark =
    List.fold_left (fun acc rid -> max acc (rid + 1)) 0 (Table.rids table)
  in
  Database.set_index_state db index Backfilling;
  Obs.Fault.point "idx.backfill.start";
  {
    db;
    index;
    table;
    watermark;
    batch;
    lock = Mutex.create ();
    cursor = 0;
    scanned = 0;
    inserted = 0;
    outcome = None;
  }

let demote_unlocked t reason =
  Database.set_index_state t.db t.index Demoted;
  t.outcome <- Some (Demoted_build reason)

let demote t reason = locked t (fun () -> demote_unlocked t reason)

(* One bounded batch of backfill work; call under the owner's write
   lock.  Returns [true] while more batches remain. *)
let step t =
  locked t (fun () ->
      match t.outcome with
      | Some _ -> false
      | None ->
          if t.cursor >= t.watermark then false
          else begin
            Obs.Fault.point "idx.backfill.batch";
            let stop = min t.watermark (t.cursor + t.batch) in
            (try
               while t.cursor < stop do
                 let rid = t.cursor in
                 t.cursor <- rid + 1;
                 match Table.get t.table rid with
                 | None -> () (* tombstone, or deleted since start *)
                 | Some row ->
                     t.scanned <- t.scanned + 1;
                     if Index.backfill_insert t.index rid row then
                       t.inserted <- t.inserted + 1
               done
             with Index.Unique_violation msg -> demote_unlocked t msg);
            t.outcome = None && t.cursor < t.watermark
          end)

(* Promote once the cursor has passed the watermark.  Everything below
   the watermark was backfilled, everything at or above it was
   maintained from birth, so the tree is complete. *)
let finish t =
  locked t (fun () ->
      match t.outcome with
      | Some outcome -> outcome
      | None ->
          if t.cursor < t.watermark then
            error "index %s: build finish before backfill complete (%d/%d)"
              (Index.name t.index) t.cursor t.watermark;
          Obs.Fault.point "idx.backfill.finish";
          Database.set_index_state t.db t.index Readable;
          t.outcome <- Some Built;
          Built)

(* Drive a build to completion in one call — the convenience used by the
   string-level [exec] API and by replayed scripts, where there is no
   concurrent reader to yield to. *)
let run ?batch db index =
  let t = start ?batch db index in
  while step t do
    ()
  done;
  finish t

let index t = t.index
let outcome t = locked t (fun () -> t.outcome)

let progress t =
  locked t (fun () ->
      {
        p_cursor = min t.cursor t.watermark;
        p_watermark = t.watermark;
        p_scanned = t.scanned;
        p_inserted = t.inserted;
        p_state = Index.state t.index;
      })
