(** The index advisor: mine logged query texts for sargable predicate
    shapes, combine them with distilled soft-constraint facts, and rank
    candidate indexes.

    Both inputs arrive as plain data (SQL strings, hint records) so this
    library stays below [core]: {!Core.Softdb} extracts the texts from
    sys.query_log and the hints from its SC catalog, and surfaces the
    result as sys.index_advisor and [softdb advise]. *)

open Rel

(** Distilled soft-constraint facts relevant to index choice. *)
type sc_hint =
  | Band of { table : string; column : string; width : float }
      (** an ASC bounds the column in a band of relative width [width]
          — range predicates on it select contiguous key runs *)
  | Fd of { table : string; determinant : string list;
            dependents : string list }
      (** determinant → dependents: appending the dependents to an
          index keyed on the determinant adds no distinct keys, so
          covering extensions are nearly free *)

type candidate = {
  cand_table : string;
  cand_columns : string list;  (** equality columns first, then range *)
  cand_covering : bool;
      (** the index alone answers the mined blocks (index-only scan) *)
  cand_score : float;
  cand_queries : int;  (** workload statements this candidate serves *)
  cand_reason : string;
}

val advise :
  Database.t -> queries:string list -> hints:sc_hint list -> candidate list
(** Ranked best-first; deterministic (score, then name) order.
    Unparsable log entries are skipped; candidates whose key is already
    a prefix of a readable index are suppressed. *)
