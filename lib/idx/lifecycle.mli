(** Online index build: the lifecycle driver behind
    [CREATE INDEX ... ONLINE].

    Protocol: the caller registers a [Write_only] shell in the catalog
    ({!Rel.Database.create_index_shell}) so maintenance covers every row
    born from that point on, then {!start}s a build — which snapshots
    the rid watermark and transitions the index to [Backfilling] — and
    calls {!step} repeatedly, each step under the owner's exclusive
    lock, until it returns [false]; {!finish} promotes to [Readable].
    Readers interleave between steps, which is the whole point.

    Failure is demotion, not error propagation: a unique violation
    found mid-backfill leaves the index [Demoted] and the build's
    {!outcome} records why.  {!finish} on a demoted build returns the
    demotion instead of promoting. *)

open Rel

type t
(** One in-flight build. *)

type outcome = Built | Demoted_build of string

type progress = {
  p_cursor : int;  (** next rid the backfill will visit *)
  p_watermark : int;  (** first rid the backfill will {e not} visit *)
  p_scanned : int;  (** live rows examined so far *)
  p_inserted : int;  (** rows the backfill actually added *)
  p_state : Index.state;
}

exception Lifecycle_error of string
(** Protocol violations: starting from a non-[Write_only] state,
    finishing before the backfill is complete, non-positive batch. *)

val start : ?batch:int -> Database.t -> Index.t -> t
(** Snapshot the watermark and transition [Write_only] → [Backfilling].
    [batch] (default 256) bounds the rids visited per {!step}. *)

val step : t -> bool
(** Backfill one batch; [true] while more work remains.  Run each call
    under the same exclusive lock as table writes; the driver record
    itself is additionally guarded by an internal mutex (lock rank
    [idx.lifecycle]) so {!progress}/{!outcome} may be read from another
    domain mid-build.  A unique violation demotes the index and ends
    the build. *)

val finish : t -> outcome
(** Promote [Backfilling] → [Readable], or report the demotion. *)

val run : ?batch:int -> Database.t -> Index.t -> outcome
(** [start] + drain [step] + [finish] in one call, for contexts with no
    concurrent readers (scripts, WAL replay, the string [exec] API). *)

val demote : t -> string -> unit
(** Abandon the build, leaving the index [Demoted]. *)

val index : t -> Index.t
val outcome : t -> outcome option
val progress : t -> progress
