(* The index advisor: mine the query log for predicate shapes, combine
   them with what the soft-constraint catalog already knows about the
   data, and rank candidate indexes.

   Two inputs, both plain data so this library stays below core:

   - [queries]: the raw SQL texts of the logged workload (sys.query_log).
     Each is re-parsed here; per SELECT block and per referenced table we
     collect the equality columns, range columns, and every column the
     block needs from that table (the covering target).
   - [hints]: distilled soft-constraint facts.  A [Band] hint says an
     ASC bounds the column within a tight band — range predicates on it
     select contiguous key runs, exactly where a B+-tree shines.  An
     [Fd] hint says determinant → dependents holds (perhaps softly):
     appending the dependents to an index keyed on the determinant adds
     no distinct keys, so a covering index is nearly free.

   A candidate's key is equality columns first (most selective prefix),
   then range columns; its score is workload frequency × a table-size
   benefit proxy × band/covering multipliers.  Candidates whose key is
   a prefix of an existing readable index are suppressed — the advisor
   recommends work, not inventory. *)

open Rel

type sc_hint =
  | Band of { table : string; column : string; width : float }
  | Fd of { table : string; determinant : string list;
            dependents : string list }

type candidate = {
  cand_table : string;
  cand_columns : string list; (* equality columns first, then range *)
  cand_covering : bool;
  cand_score : float;
  cand_queries : int; (* workload statements this candidate serves *)
  cand_reason : string;
}

let norm = String.lowercase_ascii

(* Only base tables can carry indexes — and looking a table up through
   {!Database.find_table} materializes virtual ones, which must never
   happen here: the sys.index_advisor generator itself calls the
   advisor, so touching a sys.* view from this module would recurse. *)
let base_table db name =
  if List.exists (fun n -> norm n = name) (Database.table_names db) then
    Database.find_table db name
  else None

(* --- workload mining ---------------------------------------------------- *)

(* What one SELECT block wants from one base table. *)
(* @guarded-by none: per-call mining accumulator, confined to the
   advising thread *)
type table_use = {
  use_table : string; (* normalized base-table name *)
  mutable eq_cols : string list;
  mutable range_cols : string list;
  mutable needed : string list; (* every column the block touches *)
}

let add_uniq xs x = if List.mem x xs then xs else xs @ [ x ]

(* Resolve a column reference to (table, column) given the block's
   alias map; unqualified references resolve to the unique table whose
   schema has the column. *)
let resolve db aliases (c : Expr.col_ref) =
  let col = norm c.Expr.col in
  match c.Expr.rel with
  | Some r -> (
      match List.assoc_opt (norm r) aliases with
      | Some table -> Some (table, col)
      | None -> None)
  | None -> (
      let owners =
        List.filter
          (fun (_, table) ->
            match base_table db table with
            | Some t -> Schema.find_index (Table.schema t) col <> None
            | None -> false)
          aliases
      in
      match owners with [ (_, table) ] -> Some (table, col) | _ -> None)

let is_const = function Expr.Const _ -> true | _ -> false

(* Walk one SELECT block, recording uses per table. *)
let mine_select db (s : Sqlfe.Ast.select) =
  let aliases =
    List.map
      (fun (r : Sqlfe.Ast.table_ref) ->
        (norm (Option.value r.alias ~default:r.table), norm r.table))
      s.from
  in
  let uses = Hashtbl.create 4 in
  let use_of table =
    match Hashtbl.find_opt uses table with
    | Some u -> u
    | None ->
        let u =
          { use_table = table; eq_cols = []; range_cols = []; needed = [] }
        in
        Hashtbl.replace uses table u;
        u
  in
  let note_needed (c : Expr.col_ref) =
    match resolve db aliases c with
    | Some (table, col) ->
        let u = use_of table in
        u.needed <- add_uniq u.needed col
    | None -> ()
  in
  let note_expr e = List.iter note_needed (Expr.cols_of_expr e) in
  let note_eq c =
    match resolve db aliases c with
    | Some (table, col) ->
        let u = use_of table in
        u.eq_cols <- add_uniq u.eq_cols col
    | None -> ()
  in
  let note_range c =
    match resolve db aliases c with
    | Some (table, col) ->
        let u = use_of table in
        u.range_cols <- add_uniq u.range_cols col
    | None -> ()
  in
  (* predicates: single-column comparisons against constants are the
     sargable shapes an index can serve; join equalities count for both
     sides (index nested-loop probes). *)
  let rec walk_pred p =
    (match p with
    | Expr.Cmp (Eq, Col a, Col b) ->
        note_eq a;
        note_eq b
    | Expr.Cmp (Eq, Col a, e) when is_const e -> note_eq a
    | Expr.Cmp (Eq, e, Col a) when is_const e -> note_eq a
    | Expr.Cmp ((Lt | Le | Gt | Ge), Col a, e) when is_const e ->
        note_range a
    | Expr.Cmp ((Lt | Le | Gt | Ge), e, Col a) when is_const e ->
        note_range a
    | Expr.Between (Col a, lo, hi) when is_const lo && is_const hi ->
        note_range a
    | Expr.In_list (Col a, _) -> note_eq a
    | _ -> ());
    (* every referenced column counts toward the covering target *)
    (match p with
    | Expr.And (a, b) | Expr.Or (a, b) ->
        walk_pred a;
        walk_pred b
    | Expr.Not a -> walk_pred a
    | Expr.Cmp (_, a, b) ->
        note_expr a;
        note_expr b
    | Expr.Between (a, b, c) ->
        note_expr a;
        note_expr b;
        note_expr c
    | Expr.In_list (a, _) | Expr.Is_null a | Expr.Is_not_null a ->
        note_expr a
    | Expr.Ptrue | Expr.Pfalse -> ())
  in
  walk_pred s.where;
  walk_pred s.having;
  List.iter
    (function
      | Sqlfe.Ast.Star ->
          (* SELECT * needs every column: no index covers it usefully *)
          List.iter
            (fun (_, table) ->
              match base_table db table with
              | Some t ->
                  let u = use_of table in
                  List.iter
                    (fun c -> u.needed <- add_uniq u.needed (norm c))
                    (Schema.column_names (Table.schema t))
              | None -> ())
            aliases
      | Sqlfe.Ast.Scalar (e, _) -> note_expr e
      | Sqlfe.Ast.Aggregate (_, e, _) -> Option.iter note_expr e)
    s.items;
  List.iter note_expr s.group_by;
  List.iter (fun (o : Sqlfe.Ast.order_item) -> note_expr o.key) s.order_by;
  Hashtbl.fold (fun _ u acc -> u :: acc) uses []

let rec mine_query db = function
  | Sqlfe.Ast.Select s -> mine_select db s
  | Sqlfe.Ast.Union_all qs -> List.concat_map (mine_query db) qs

let mine_statement db = function
  | Sqlfe.Ast.Query q | Sqlfe.Ast.Explain q | Sqlfe.Ast.Explain_analyze q ->
      mine_query db q
  | _ -> []

(* --- candidate construction -------------------------------------------- *)

(* @guarded-by none: per-call candidate accumulator, like table_use *)
type accum = {
  mutable freq : int;
  mutable needed_union : string list;
}

let band_hints hints table =
  List.filter_map
    (function
      | Band { table = t; column; width } when norm t = table ->
          Some (norm column, width)
      | _ -> None)
    hints

let fd_hints hints table =
  List.filter_map
    (function
      | Fd { table = t; determinant; dependents } when norm t = table ->
          Some (List.map norm determinant, List.map norm dependents)
      | _ -> None)
    hints

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* An existing readable index already serving this key prefix? *)
let already_indexed db table key =
  List.exists
    (fun idx ->
      Index.is_readable idx
      && norm (Index.table_name idx) = table
      &&
      let have = List.map norm (Index.columns idx) in
      let rec prefix = function
        | [], _ -> true
        | _, [] -> false
        | k :: ks, h :: hs -> k = h && prefix (ks, hs)
      in
      prefix (key, have))
    (Database.all_indexes db)

let advise db ~queries ~hints =
  let acc : (string * string list, accum) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sql ->
      match Sqlfe.Parser.parse_statement sql with
      | exception _ -> () (* non-SELECT noise in the log *)
      | stmt ->
          List.iter
            (fun u ->
              let key = u.eq_cols @ u.range_cols in
              if key <> [] then begin
                let slot =
                  match Hashtbl.find_opt acc (u.use_table, key) with
                  | Some a -> a
                  | None ->
                      let a = { freq = 0; needed_union = [] } in
                      Hashtbl.replace acc (u.use_table, key) a;
                      a
                in
                slot.freq <- slot.freq + 1;
                slot.needed_union <-
                  List.fold_left add_uniq slot.needed_union u.needed
              end)
            (mine_statement db stmt))
    queries;
  let candidates =
    Hashtbl.fold
      (fun (table, key) a out ->
        if already_indexed db table key then out
        else begin
          let bands = band_hints hints table in
          let fds = fd_hints hints table in
          let reasons = ref [] in
          let note r = reasons := r :: !reasons in
          (* covering extension: first via FD (free), then directly when
             only a couple of columns are missing *)
          let missing =
            List.filter (fun c -> not (List.mem c key)) a.needed_union
          in
          let fd_cover =
            List.filter
              (fun (det, deps) -> subset det key && deps <> [])
              fds
          in
          let via_fd =
            List.concat_map
              (fun (_, deps) -> List.filter (fun d -> List.mem d missing) deps)
              fd_cover
            |> List.fold_left add_uniq []
          in
          let still_missing =
            List.filter (fun c -> not (List.mem c via_fd)) missing
          in
          let columns, covering =
            if missing = [] then (key, true)
            else if still_missing = [] then begin
              note
                (Printf.sprintf "covering via FD (%s)"
                   (String.concat "," via_fd));
              (key @ via_fd, true)
            end
            else if List.length still_missing <= 2 then begin
              if via_fd <> [] then
                note
                  (Printf.sprintf "covering via FD (%s)"
                     (String.concat "," via_fd));
              note
                (Printf.sprintf "widened by (%s) to cover"
                   (String.concat "," still_missing));
              (key @ via_fd @ still_missing, true)
            end
            else (key, false)
          in
          let banded =
            List.filter (fun c -> List.mem_assoc c bands) key
          in
          if banded <> [] then
            note
              (Printf.sprintf "tight ASC band on %s"
                 (String.concat "," banded));
          let pages =
            match base_table db table with
            | Some t -> Table.pages t
            | None -> 1
          in
          let benefit = log (float_of_int (pages + 1)) /. log 2.0 +. 1.0 in
          let score =
            float_of_int a.freq *. benefit
            *. (if banded <> [] then 1.5 else 1.0)
            *. if covering then 1.25 else 1.0
          in
          let reason =
            Printf.sprintf "%d stmts; key (%s)%s" a.freq
              (String.concat "," key)
              (match List.rev !reasons with
              | [] -> ""
              | rs -> "; " ^ String.concat "; " rs)
          in
          {
            cand_table = table;
            cand_columns = columns;
            cand_covering = covering;
            cand_score = score;
            cand_queries = a.freq;
            cand_reason = reason;
          }
          :: out
        end)
      acc []
  in
  List.sort
    (fun a b ->
      match compare b.cand_score a.cand_score with
      | 0 -> compare (a.cand_table, a.cand_columns)
                     (b.cand_table, b.cand_columns)
      | c -> c)
    candidates
